package repro

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/apps/fft"
	"repro/internal/apps/jpegcodec"
	"repro/internal/atm"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hostif"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/transport"
	"repro/internal/work"
)

// Table and figure benchmarks. Each regenerates one artifact of the
// paper's evaluation section; the modeled 1995 execution time is reported
// as the custom metric "modeled_s" (ns/op measures only how fast the
// simulation itself runs on this machine).

func benchTableCell(b *testing.B, run func() float64) {
	b.Helper()
	var modeled float64
	for i := 0; i < b.N; i++ {
		modeled = run()
	}
	b.ReportMetric(modeled, "modeled_s")
}

// BenchmarkTable1 regenerates Table 1 (matrix multiplication).
func BenchmarkTable1(b *testing.B) {
	for _, pl := range []bench.Platform{bench.Ethernet1995(), bench.NYNET1995()} {
		for _, n := range []int{1, 2, 4, 8} {
			if pl.ATM && n == 8 {
				continue // the paper reports no 8-node NYNET rows
			}
			pl, n := pl, n
			b.Run(fmt.Sprintf("%s/p4/nodes=%d", pl.Name, n), func(b *testing.B) {
				benchTableCell(b, func() float64 { return bench.MatmulP4(pl, n) })
			})
			b.Run(fmt.Sprintf("%s/ncs/nodes=%d", pl.Name, n), func(b *testing.B) {
				benchTableCell(b, func() float64 { return bench.MatmulNCS(pl, n) })
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (JPEG pipeline).
func BenchmarkTable2(b *testing.B) {
	for _, pl := range []bench.Platform{bench.Ethernet1995(), bench.NYNET1995()} {
		for _, n := range []int{2, 4, 8} {
			if pl.ATM && n == 8 {
				continue
			}
			pl, n := pl, n
			b.Run(fmt.Sprintf("%s/p4/nodes=%d", pl.Name, n), func(b *testing.B) {
				benchTableCell(b, func() float64 { return bench.JPEGP4(pl, n) })
			})
			b.Run(fmt.Sprintf("%s/ncs/nodes=%d", pl.Name, n), func(b *testing.B) {
				benchTableCell(b, func() float64 { return bench.JPEGNCS(pl, n) })
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (DIF FFT).
func BenchmarkTable3(b *testing.B) {
	for _, pl := range []bench.Platform{bench.Ethernet1995(), bench.NYNET1995()} {
		for _, n := range []int{1, 2, 4, 8} {
			if pl.ATM && n == 8 {
				continue
			}
			pl, n := pl, n
			b.Run(fmt.Sprintf("%s/p4/nodes=%d", pl.Name, n), func(b *testing.B) {
				benchTableCell(b, func() float64 { return bench.FFTP4(pl, n) })
			})
			b.Run(fmt.Sprintf("%s/ncs/nodes=%d", pl.Name, n), func(b *testing.B) {
				benchTableCell(b, func() float64 { return bench.FFTNCS(pl, n) })
			})
		}
	}
}

// BenchmarkFig2Buffers regenerates Figure 2 (parallel data transfer via
// multiple I/O buffers): modeled delivery time per buffer count.
func BenchmarkFig2Buffers(b *testing.B) {
	const size = 256 * 1024
	for _, k := range []int{1, 2, 4, 8} {
		k := k
		b.Run(fmt.Sprintf("buffers=%d", k), func(b *testing.B) {
			var rows []bench.Fig2Row
			for i := 0; i < b.N; i++ {
				rows = bench.Figure2(size, []int{k})
			}
			b.ReportMetric(rows[0].Seconds*1e3, "modeled_ms")
		})
	}
}

// BenchmarkFig3Datapath regenerates Figure 3 with real memory traffic:
// ns/op here IS the result (measured copy+checksum cost on this machine),
// alongside the counted bus accesses per word.
func BenchmarkFig3Datapath(b *testing.B) {
	const size = 64 * 1024
	app := make([]byte, size)
	for i := range app {
		app[i] = byte(i)
	}
	for _, mk := range []func(int) hostif.Datapath{
		func(n int) hostif.Datapath { return hostif.NewSocketPath(n) },
		func(n int) hostif.Datapath { return hostif.NewNCSPath(n) },
	} {
		p := mk(size)
		b.Run(p.Name(), func(b *testing.B) {
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				p.Transmit(app)
			}
			b.ReportMetric(float64(p.AccessesPerWord()), "accesses_per_word")
		})
	}
}

// BenchmarkFig4Overlap regenerates Figure 4's underlying runs (2-node
// matmul, threaded vs not) and reports the modeled times.
func BenchmarkFig4Overlap(b *testing.B) {
	pl := bench.NYNET1995()
	b.Run("p4", func(b *testing.B) {
		benchTableCell(b, func() float64 { return bench.MatmulP4(pl, 2) })
	})
	b.Run("ncs", func(b *testing.B) {
		benchTableCell(b, func() float64 { return bench.MatmulNCS(pl, 2) })
	})
}

// BenchmarkFig16Pipeline regenerates Figure 16's underlying runs (4-worker
// JPEG pipeline).
func BenchmarkFig16Pipeline(b *testing.B) {
	pl := bench.NYNET1995()
	b.Run("p4", func(b *testing.B) {
		benchTableCell(b, func() float64 { return bench.JPEGP4(pl, 4) })
	})
	b.Run("ncs", func(b *testing.B) {
		benchTableCell(b, func() float64 { return bench.JPEGNCS(pl, 4) })
	})
}

// BenchmarkATMAPIvsP4 is experiment E8: NCS Approach 2 (HSM over the ATM
// API) against Approach 1 on the table workloads.
func BenchmarkATMAPIvsP4(b *testing.B) {
	var rows []bench.E8Row
	for i := 0; i < b.N; i++ {
		rows = bench.E8ApproachTwo()
	}
	names := []string{"hsm_speedup_matmul", "hsm_speedup_jpeg"}
	for i, r := range rows {
		if i < len(names) {
			b.ReportMetric(r.Speedup, names[i])
		}
	}
}

// BenchmarkWANSweep is the WAN extension experiment.
func BenchmarkWANSweep(b *testing.B) {
	var rows []bench.WANRow
	for i := 0; i < b.N; i++ {
		rows = bench.WANSweep()
	}
	b.ReportMetric(rows[len(rows)-1].Improvement, "impr_pct_at_15ms")
}

// BenchmarkChannelThroughput measures the channel layer end to end: one
// NCS process pair over the Mem transport runs two concurrent channels —
// a high-priority "video" class and a window-flow "bulk" class — each
// carrying b.N messages. Besides ns/op it reports per-channel throughput
// and writes BENCH_channels.json so the perf trajectory of the channel
// layer is tracked run over run (CI's bench smoke job uploads it).
func BenchmarkChannelThroughput(b *testing.B) {
	const videoSize, bulkSize = 4 << 10, 32 << 10
	mem := transport.NewMem()
	mk := func(id core.ProcID) *core.Proc {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("bench%d", id), IdleTimeout: time.Minute})
		return core.New(core.Config{ID: id, RT: rt, Endpoint: mem.Attach(id, rt)})
	}
	p0, p1 := mk(0), mk(1)
	video0 := p0.Open(1, core.ChannelConfig{ID: 1, Priority: 7})
	bulk0 := p0.Open(1, core.ChannelConfig{ID: 2, Flow: core.NewWindowFlow(8)})
	video1 := p1.Open(0, core.ChannelConfig{ID: 1, Priority: 7})
	bulk1 := p1.Open(0, core.ChannelConfig{ID: 2, Flow: core.NewWindowFlow(8)})

	videoBuf := make([]byte, videoSize)
	bulkBuf := make([]byte, bulkSize)
	p0.TCreate("video", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < b.N; i++ {
			video0.Send(t, 0, videoBuf)
		}
	})
	p0.TCreate("bulk", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < b.N; i++ {
			bulk0.Send(t, 1, bulkBuf)
		}
	})
	// Receivers use RecvInto (the paper's receive-into-buffer shape): the
	// payload copies into a reusable buffer and the carrier's pooled frame
	// recycles, so the measured steady state is allocation-free end to end.
	p1.TCreate("vrecv", mts.PrioDefault, func(t *core.Thread) {
		buf := make([]byte, videoSize)
		for i := 0; i < b.N; i++ {
			video1.RecvInto(t, buf, core.Any)
		}
	})
	p1.TCreate("brecv", mts.PrioDefault, func(t *core.Thread) {
		buf := make([]byte, bulkSize)
		for i := 0; i < b.N; i++ {
			bulk1.RecvInto(t, buf, core.Any)
		}
	})

	b.SetBytes(videoSize + bulkSize)
	b.ResetTimer()
	start := time.Now()
	done := make(chan struct{}, 2)
	for _, p := range []*core.Proc{p0, p1} {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	<-done
	<-done
	elapsed := time.Since(start)
	b.StopTimer()

	secs := elapsed.Seconds()
	vMBps := float64(video0.Stats().BytesSent) / 1e6 / secs
	kMBps := float64(bulk0.Stats().BytesSent) / 1e6 / secs
	b.ReportMetric(vMBps, "video_MB/s")
	b.ReportMetric(kMBps, "bulk_MB/s")

	// Control-plane accounting comes from the *receiving* end of each
	// channel — that is where credit advertisements originate. The
	// standalone-per-message share of the windowed class is the piggyback
	// protocol's headline number (1.0 was the pre-piggyback baseline: one
	// credit frame per delivery); CI gates on it so the optimization
	// cannot silently regress.
	vr, kr := video1.Stats(), bulk1.Stats()
	standalonePerMsg := func(s core.ChannelStats) float64 {
		if s.Received == 0 {
			return 0
		}
		return float64(s.CtrlStandalone) / float64(s.Received)
	}
	b.ReportMetric(standalonePerMsg(kr), "bulk_ctrl/msg")

	type chanRow struct {
		ID            int     `json:"id"`
		Class         string  `json:"class"`
		Prio          int     `json:"priority"`
		Flow          string  `json:"flow"`
		Msgs          int64   `json:"msgs"`
		Bytes         int64   `json:"bytes"`
		MBps          float64 `json:"mb_per_s"`
		CtrlStand     int64   `json:"ctrl_standalone"`
		CtrlPiggy     int64   `json:"ctrl_piggybacked"`
		CtrlStandMsgs float64 `json:"ctrl_standalone_per_msg"`
	}
	batchCalls, batchedMsgs := mem.BatchStats()
	artifact := struct {
		Bench       string    `json:"bench"`
		GoOS        string    `json:"goos"`
		GoArch      string    `json:"goarch"`
		N           int       `json:"n"`
		ElapsedNs   int64     `json:"elapsed_ns"`
		BatchCalls  int64     `json:"batch_calls"`
		BatchedMsgs int64     `json:"batched_msgs"`
		Channels    []chanRow `json:"channels"`
	}{
		Bench: "BenchmarkChannelThroughput", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		N: b.N, ElapsedNs: elapsed.Nanoseconds(),
		BatchCalls: batchCalls, BatchedMsgs: batchedMsgs,
		Channels: []chanRow{
			{ID: 1, Class: "video", Prio: 7, Flow: video0.Stats().Flow,
				Msgs: video0.Stats().Sent, Bytes: video0.Stats().BytesSent, MBps: vMBps,
				CtrlStand: vr.CtrlStandalone, CtrlPiggy: vr.CtrlPiggybacked,
				CtrlStandMsgs: standalonePerMsg(vr)},
			{ID: 2, Class: "bulk", Prio: 0, Flow: bulk0.Stats().Flow,
				Msgs: bulk0.Stats().Sent, Bytes: bulk0.Stats().BytesSent, MBps: kMBps,
				CtrlStand: kr.CtrlStandalone, CtrlPiggy: kr.CtrlPiggybacked,
				CtrlStandMsgs: standalonePerMsg(kr)},
		},
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_channels.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// meshClasses are the two traffic classes every mesh configuration runs:
// a high-priority 8 KB "prio" class and a low-priority 32 KB "bulk" class,
// both windowed.
var meshClasses = []struct {
	name string
	id   core.ChannelID
	prio int
	size int
	win  int
}{
	{name: "prio", id: 1, prio: 6, size: 8 << 10, win: 4},
	{name: "bulk", id: 2, prio: 0, size: 32 << 10, win: 8},
}

// meshClassRow is the per-class slice of one mesh run.
type meshClassRow struct {
	Class     string  `json:"class"`
	Prio      int     `json:"priority"`
	Msgs      int64   `json:"msgs"`
	Bytes     int64   `json:"bytes"`
	MBps      float64 `json:"mb_per_s"`
	CtrlStand int64   `json:"ctrl_standalone"`
	CtrlPiggy int64   `json:"ctrl_piggybacked"`
}

// meshRun is one measured (GOMAXPROCS, lane-mode) cell of the scale sweep.
type meshRun struct {
	GoMaxProcs  int            `json:"gomaxprocs"`
	Lanes       string         `json:"lanes"` // "1" (classic) or "default"
	LaneCount   int            `json:"lane_count"`
	Skew        bool           `json:"skew,omitempty"`      // LaneHash pinned every channel to lane 0
	Rebalance   bool           `json:"rebalance,omitempty"` // skewed cell with the rebalancer left on
	N           int            `json:"n"`
	ElapsedNs   int64          `json:"elapsed_ns"`
	AggMBps     float64        `json:"agg_mb_per_s"`
	PiggyShare  float64        `json:"piggy_share"`
	DRRRounds   int64          `json:"drr_rounds"`
	Migrations  int64          `json:"migrations"`
	Steals      int64          `json:"steals"`
	BatchCalls  int64          `json:"batch_calls"`
	BatchedMsgs int64          `json:"batched_msgs"`
	Classes     []meshClassRow `json:"classes"`
}

// meshProcs is the ring size for the scale sweep: eight processes (eight
// adjacent pairs) so there is real work to spread when GOMAXPROCS grows.
const meshProcs = 8

// runScaleMesh drives one mesh configuration: meshProcs processes in a
// ring, one channel per class per direction on every adjacent pair, b.N
// messages each way (so piggybacked control gets reverse data to ride).
// lanes is passed straight into Config.SendLanes/RecvLanes: 1 forces the
// classic two-system-thread path, 0 takes the sharded default
// (min(GOMAXPROCS, 4) lanes).
func runScaleMesh(b *testing.B, lanes int) meshRun {
	const nProcs = meshProcs
	classes := meshClasses

	mem := transport.NewMem()
	procs := make([]*core.Proc, nProcs)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("mesh%d", i), IdleTimeout: time.Minute})
		procs[i] = core.New(core.Config{
			ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(core.ProcID(i), rt),
			SendLanes: lanes, RecvLanes: lanes,
		})
	}

	// chans[{i,j}][c] is proc i's end of class c toward neighbor j (ring:
	// each proc talks to its right and left neighbor on K channels).
	chans := make(map[[2]int][]*core.Channel)
	for i := 0; i < nProcs; i++ {
		j := (i + 1) % nProcs
		for _, cl := range classes {
			chans[[2]int{i, j}] = append(chans[[2]int{i, j}],
				procs[i].Open(core.ProcID(j), core.ChannelConfig{ID: cl.id, Priority: cl.prio, Flow: core.NewWindowFlow(cl.win)}))
			chans[[2]int{j, i}] = append(chans[[2]int{j, i}],
				procs[j].Open(core.ProcID(i), core.ChannelConfig{ID: cl.id, Priority: cl.prio, Flow: core.NewWindowFlow(cl.win)}))
		}
	}

	// Receiver threads are created first in a fixed order, so the thread
	// index a sender must address is computable: on proc i, the receiver
	// for (neighbor d, class c) is thread d*K + c.
	neighbors := func(i int) [2]int { return [2]int{(i + 1) % nProcs, (i - 1 + nProcs) % nProcs} }
	rxIdx := func(i, peer, c int) int {
		for d, j := range neighbors(i) {
			if j == peer {
				return d*len(classes) + c
			}
		}
		panic("bench: procs are not ring neighbors")
	}
	for i := 0; i < nProcs; i++ {
		for _, j := range neighbors(i) {
			for c, cl := range classes {
				cc, size := chans[[2]int{i, j}][c], cl.size
				procs[i].TCreate(fmt.Sprintf("rx%d.%d", j, c), mts.PrioDefault, func(t *core.Thread) {
					buf := make([]byte, size)
					for k := 0; k < b.N; k++ {
						cc.RecvInto(t, buf, core.Any)
					}
				})
			}
		}
	}
	for i := 0; i < nProcs; i++ {
		for _, j := range neighbors(i) {
			for c, cl := range classes {
				cc, size := chans[[2]int{i, j}][c], cl.size
				to := rxIdx(j, i, c)
				procs[i].TCreate(fmt.Sprintf("tx%d.%d", j, c), mts.PrioDefault, func(t *core.Thread) {
					buf := make([]byte, size)
					for k := 0; k < b.N; k++ {
						cc.Send(t, to, buf)
					}
				})
			}
		}
	}

	perIter := 0
	for _, cl := range classes {
		perIter += 2 * nProcs * cl.size // both directions on every pair
	}
	b.SetBytes(int64(perIter))
	b.ResetTimer()
	start := time.Now()
	done := make(chan struct{}, nProcs)
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	for range procs {
		<-done
	}
	elapsed := time.Since(start)
	b.StopTimer()

	rows := make([]meshClassRow, len(classes))
	for c, cl := range classes {
		rows[c] = meshClassRow{Class: cl.name, Prio: cl.prio}
		for _, list := range chans {
			s := list[c].Stats()
			rows[c].Msgs += s.Sent
			rows[c].Bytes += s.BytesSent
			rows[c].CtrlStand += s.CtrlStandalone
			rows[c].CtrlPiggy += s.CtrlPiggybacked
		}
		rows[c].MBps = float64(rows[c].Bytes) / 1e6 / elapsed.Seconds()
	}
	var aggMBps float64
	var standTotal, piggyTotal int64
	for _, r := range rows {
		aggMBps += r.MBps
		standTotal += r.CtrlStand
		piggyTotal += r.CtrlPiggy
	}
	b.ReportMetric(aggMBps, "agg_MB/s")
	piggyShare := 0.0
	if total := standTotal + piggyTotal; total > 0 {
		piggyShare = float64(piggyTotal) / float64(total)
		b.ReportMetric(piggyShare, "piggy_share")
	}

	var drrRounds, migrations, steals int64
	for _, p := range procs {
		for _, ls := range p.LaneStats() {
			drrRounds += ls.DRRRounds
			migrations += ls.MigratedOut
			steals += ls.Steals
		}
	}

	batchCalls, batchedMsgs := mem.BatchStats()
	laneMode := "default"
	if lanes == 1 {
		laneMode = "1"
	}
	return meshRun{
		GoMaxProcs: runtime.GOMAXPROCS(0), Lanes: laneMode,
		LaneCount: procs[0].Lanes(), N: b.N,
		ElapsedNs: elapsed.Nanoseconds(), AggMBps: aggMBps, PiggyShare: piggyShare,
		DRRRounds: drrRounds, Migrations: migrations, Steals: steals,
		BatchCalls: batchCalls, BatchedMsgs: batchedMsgs,
		Classes: rows,
	}
}

// runSkewPair is the skewed-lane cell of the scale sweep: two processes,
// skewChans go-back-N channels per direction, every one of them routed to
// lane 0 by Config.LaneHash — the worst-case placement the hot-lane
// rebalancer exists to repair (a two-proc pair also lands there naturally:
// the default peer-hash placement maps every channel to the same peer and
// therefore the same lane). The classes are go-back-N rather than
// windowed because only sequenced channels are migration-eligible — the
// receiver must be able to repair cross-ring reordering. rebal leaves the
// rebalancer at its default interval; false pins the skew in place
// (RebalanceInterval < 0) and measures the un-repaired baseline.
func runSkewPair(b *testing.B, rebal bool) meshRun {
	const skewChans = 6
	const payload = 8 << 10

	mem := transport.NewMem()
	procs := make([]*core.Proc, 2)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("skew%d", i), IdleTimeout: time.Minute})
		cfg := core.Config{
			ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(core.ProcID(i), rt),
			LaneHash: func(core.ProcID) int { return 0 },
		}
		if !rebal {
			cfg.RebalanceInterval = -1
		}
		procs[i] = core.New(cfg)
	}

	chans := [2][]*core.Channel{}
	for side := 0; side < 2; side++ {
		peer := core.ProcID(1 - side)
		for i := 0; i < skewChans; i++ {
			chans[side] = append(chans[side], procs[side].Open(peer, core.ChannelConfig{
				ID:       core.ChannelID(i + 1),
				Priority: i % core.NumChannelPriorities,
				Error:    core.NewGoBackN(8, 25*time.Millisecond),
			}))
		}
	}
	// Threads per side, in TCreate order: tx0, rx0, tx1, rx1, ... — so
	// channel i's receiver is user thread 2i+1 on the peer.
	for side := 0; side < 2; side++ {
		for i := 0; i < skewChans; i++ {
			c := chans[side][i]
			to := 2*i + 1
			procs[side].TCreate(fmt.Sprintf("tx%d", i), mts.PrioDefault, func(t *core.Thread) {
				buf := make([]byte, payload)
				for k := 0; k < b.N; k++ {
					c.SendTagged(t, k, to, buf)
				}
			})
			procs[side].TCreate(fmt.Sprintf("rx%d", i), mts.PrioDefault, func(t *core.Thread) {
				buf := make([]byte, payload)
				for k := 0; k < b.N; k++ {
					c.RecvInto(t, buf, core.Any)
				}
			})
		}
	}

	b.SetBytes(int64(2 * skewChans * payload))
	b.ResetTimer()
	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	for range procs {
		<-done
	}
	elapsed := time.Since(start)
	b.StopTimer()

	row := meshClassRow{Class: "gbn-pair"}
	for side := 0; side < 2; side++ {
		for _, c := range chans[side] {
			s := c.Stats()
			row.Msgs += s.Sent
			row.Bytes += s.BytesSent
			row.CtrlStand += s.CtrlStandalone
			row.CtrlPiggy += s.CtrlPiggybacked
		}
	}
	row.MBps = float64(row.Bytes) / 1e6 / elapsed.Seconds()
	piggyShare := 0.0
	if total := row.CtrlStand + row.CtrlPiggy; total > 0 {
		piggyShare = float64(row.CtrlPiggy) / float64(total)
	}
	var drrRounds, migrations, steals int64
	for _, p := range procs {
		for _, ls := range p.LaneStats() {
			drrRounds += ls.DRRRounds
			migrations += ls.MigratedOut
			steals += ls.Steals
		}
	}
	b.ReportMetric(row.MBps, "agg_MB/s")
	if rebal {
		b.ReportMetric(float64(migrations), "migrations")
	}

	return meshRun{
		GoMaxProcs: runtime.GOMAXPROCS(0), Lanes: "default",
		LaneCount: procs[0].Lanes(), Skew: true, Rebalance: rebal, N: b.N,
		ElapsedNs: elapsed.Nanoseconds(), AggMBps: row.MBps, PiggyShare: piggyShare,
		DRRRounds: drrRounds, Migrations: migrations, Steals: steals,
		Classes: []meshClassRow{row},
	}
}

// BenchmarkScaleMesh is the scale axis of the channel layer, swept across
// GOMAXPROCS {1,2,4,8} in two lane modes: the classic single send/recv
// engine pair (lanes=1, the paper's two-system-thread model) and the
// sharded default (min(GOMAXPROCS,4) lanes). Each cell reports aggregate
// and per-class throughput plus the standalone-vs-piggybacked control
// split; the whole sweep — per-core-count MB/s, scaling efficiency
// relative to the single-core sharded run, and the sharded-vs-lane1 ratio
// at each core count — lands in BENCH_scale.json so CI tracks the
// multi-core trajectory the way BENCH_channels.json tracks the single
// pair, and gates the GOMAXPROCS=4 sharded speedup.
func BenchmarkScaleMesh(b *testing.B) {
	prevG := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevG)

	cells := make(map[string]*meshRun)
	for _, gmp := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			name  string
			lanes int
		}{
			{name: "lane1", lanes: 1},
			{name: "sharded", lanes: 0},
		} {
			gmp, mode := gmp, mode
			key := fmt.Sprintf("gmp=%d/%s", gmp, mode.name)
			b.Run(key, func(b *testing.B) {
				runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prevG)
				run := runScaleMesh(b, mode.lanes)
				cells[key] = &run // last (longest) rep wins
			})
		}
	}

	// The skewed pair: every channel LaneHash-pinned to lane 0 at
	// GOMAXPROCS=4, once with the hot-lane rebalancer disabled (the
	// un-repaired baseline) and once with it on. Their ratio is the
	// recovery the rebalancer buys and is gated in CI (>= 1.3x on hosts
	// with >= 4 CPUs).
	for _, mode := range []struct {
		name  string
		rebal bool
	}{
		{name: "skewed-norebal", rebal: false},
		{name: "skewed-rebal", rebal: true},
	} {
		mode := mode
		key := "gmp=4/" + mode.name
		b.Run(key, func(b *testing.B) {
			runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prevG)
			run := runSkewPair(b, mode.rebal)
			cells[key] = &run
		})
	}

	// Derived metrics, all comparing cells from the same sweep so machine
	// speed cancels out. Scaling efficiency is the sharded aggregate at G
	// cores over G times the sharded single-core aggregate. The same-G
	// sharded-vs-lane1 ratios ride along for trend-watching; the gated
	// headline is GOMAXPROCS=4 sharded over *the* lane=1 baseline — the
	// paper's two-system-thread model at GOMAXPROCS=1 — which is the
	// multicore speedup the lane shard exists to buy (>= 1.5x in CI on
	// hosts with >= 4 CPUs; below that the sweep measures oversubscription,
	// not scaling).
	sweep := make([]meshRun, 0, len(cells))
	efficiency := make(map[string]float64)
	ratio := make(map[string]float64)
	base := cells["gmp=1/sharded"]
	lane1Base := cells["gmp=1/lane1"]
	for _, gmp := range []int{1, 2, 4, 8} {
		lane1 := cells[fmt.Sprintf("gmp=%d/lane1", gmp)]
		sharded := cells[fmt.Sprintf("gmp=%d/sharded", gmp)]
		for _, run := range []*meshRun{lane1, sharded} {
			if run != nil {
				sweep = append(sweep, *run)
			}
		}
		if sharded == nil {
			continue
		}
		gKey := fmt.Sprintf("g%d", gmp)
		if base != nil && base.AggMBps > 0 {
			efficiency[gKey] = sharded.AggMBps / (float64(gmp) * base.AggMBps)
		}
		if lane1 != nil && lane1.AggMBps > 0 {
			ratio[gKey] = sharded.AggMBps / lane1.AggMBps
		}
	}

	headline := cells["gmp=4/sharded"]
	if headline == nil {
		b.Fatal("scale sweep produced no gomaxprocs=4 sharded cell")
	}
	headlineRatio := 0.0
	if lane1Base != nil && lane1Base.AggMBps > 0 {
		headlineRatio = headline.AggMBps / lane1Base.AggMBps
	}

	// Piggyback parity: cross-channel coalescing exists so that sharding
	// does not trade away the paper's piggybacked control plane. The
	// sharded G4 piggy share over the lane1 G4 share is gated in CI
	// (>= 0.8x).
	piggyParity := 0.0
	if l1 := cells["gmp=4/lane1"]; l1 != nil && l1.PiggyShare > 0 {
		piggyParity = headline.PiggyShare / l1.PiggyShare
	}
	// Skew recovery: skewed-with-rebalance over skewed-without.
	skewRecovery := 0.0
	if nr, r := cells["gmp=4/skewed-norebal"], cells["gmp=4/skewed-rebal"]; nr != nil && r != nil && nr.AggMBps > 0 {
		skewRecovery = r.AggMBps / nr.AggMBps
		for _, run := range []*meshRun{nr, r} {
			sweep = append(sweep, *run)
		}
	}
	artifact := struct {
		Bench           string             `json:"bench"`
		GoOS            string             `json:"goos"`
		GoArch          string             `json:"goarch"`
		HostCPUs        int                `json:"host_cpus"`
		Procs           int                `json:"procs"`
		ChansPerDir     int                `json:"channels_per_pair"`
		N               int                `json:"n"`
		ElapsedNs       int64              `json:"elapsed_ns"`
		AggMBps         float64            `json:"agg_mb_per_s"`
		BatchCalls      int64              `json:"batch_calls"`
		BatchedMsgs     int64              `json:"batched_msgs"`
		Classes         []meshClassRow     `json:"classes"`
		Sweep           []meshRun          `json:"sweep"`
		ScalingEff      map[string]float64 `json:"scaling_efficiency_sharded"`
		ShardedVsLane1  map[string]float64 `json:"sharded_vs_lane1_same_g"`
		HeadlineG4Ratio float64            `json:"headline_g4_sharded_vs_lane1_baseline"`
		PiggyParityG4   float64            `json:"piggy_share_g4_sharded_vs_lane1"`
		SkewRecoveryG4  float64            `json:"skew_rebalance_recovery_g4"`
	}{
		// The legacy top-level fields carry the headline cell
		// (GOMAXPROCS=4, default lanes) so the run-over-run artifact diff
		// keeps a stable anchor.
		Bench: "BenchmarkScaleMesh", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		HostCPUs: runtime.NumCPU(),
		Procs:    meshProcs, ChansPerDir: len(meshClasses), N: headline.N,
		ElapsedNs: headline.ElapsedNs, AggMBps: headline.AggMBps,
		BatchCalls: headline.BatchCalls, BatchedMsgs: headline.BatchedMsgs,
		Classes: headline.Classes,
		Sweep:   sweep, ScalingEff: efficiency, ShardedVsLane1: ratio,
		HeadlineG4Ratio: headlineRatio,
		PiggyParityG4:   piggyParity, SkewRecoveryG4: skewRecovery,
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// collRow is one measured collective configuration in BENCH_collectives.
// MemUsPerOp is real wall time on the in-process Mem mesh — bounded by the
// host's core count, since the tree's parallel hops serialize on a small
// machine. ModeledUsPerOp is virtual time over the simulated 100 Mb/s ATM
// LAN (the repo's standard modeled metric), where each workstation's link
// and CPU are modeled independently — the algorithmic critical path the
// logarithmic rewrite targets.
type collRow struct {
	Op         string  `json:"op"`
	N          int     `json:"n"`
	Shape      string  `json:"shape"` // "tree" or "linear"
	Iters      int     `json:"iters"`
	MemUsPerOp float64 `json:"mem_us_per_op"`
	MemMBps    float64 `json:"mem_mb_per_s,omitempty"`
	ModeledUs  float64 `json:"modeled_us_per_op"`
}

// simCollective measures one collective's modeled latency: n NCS processes
// over simulated TCP on the calibrated NYNET 1995 ATM LAN (the platform
// model the Table benchmarks pin) run iters operations on a pinned
// priority channel; the result is virtual microseconds per operation.
func simCollective(op string, n, fanout, iters, payload int) float64 {
	pl := bench.NYNET1995()
	eng := sim.NewEngine()
	eng.SetMaxTime(time.Hour)
	net := netsim.NewATMLAN(eng, n, pl.ATMLAN)
	cost := pl.TCP
	procs := make([]*core.Proc, n)
	for i := 0; i < n; i++ {
		node := eng.NewNode(fmt.Sprintf("cn%d", i))
		procs[i] = core.New(core.Config{
			ID: core.ProcID(i), RT: node.RT(),
			Endpoint: tcpip.NewSimTCP(node, net, i, cost),
			Compute:  work.Sim(node),
			After:    func(d time.Duration, fn func()) { eng.Schedule(d, fn) },
		})
	}
	members := make([]core.Addr, n)
	for i := range members {
		members[i] = core.Addr{Proc: core.ProcID(i), Thread: 0}
		for j := range members {
			if i != j {
				procs[i].Open(core.ProcID(j), core.ChannelConfig{ID: 1, Priority: 6})
			}
		}
	}
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("m", mts.PrioDefault, func(t *core.Thread) {
			g := procs[i].NewGroup(members, core.GroupConfig{Channel: 1, Fanout: fanout})
			buf := make([]byte, payload)
			var data [][]byte
			if op == "alltoall" {
				data = make([][]byte, n)
				for j := range data {
					data[j] = make([]byte, payload)
				}
			}
			for k := 0; k < iters; k++ {
				switch op {
				case "barrier":
					g.Barrier(t)
				case "bcast":
					g.BcastInto(t, 0, buf)
				case "alltoall":
					g.AllToAll(t, data)
				}
			}
		})
	}
	eng.Run()
	return float64(time.Duration(eng.Now()).Microseconds()) / float64(iters)
}

// collProcs builds n NCS processes over one Mem mesh, each with its own
// runtime, a priority channel (ID 1, prio 6) opened pairwise, and the
// member list for a full group.
func collProcs(n int) (*transport.Mem, []*core.Proc, []core.Addr) {
	mem := transport.NewMem()
	procs := make([]*core.Proc, n)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("coll%d", i), IdleTimeout: time.Minute})
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(core.ProcID(i), rt)})
	}
	for i := range procs {
		for j := range procs {
			if i != j {
				procs[i].Open(core.ProcID(j), core.ChannelConfig{ID: 1, Priority: 6})
			}
		}
	}
	members := make([]core.Addr, n)
	for i := range members {
		members[i] = core.Addr{Proc: core.ProcID(i), Thread: 0}
	}
	return mem, procs, members
}

func runProcs(procs []*core.Proc) time.Duration {
	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	for range procs {
		<-done
	}
	return time.Since(start)
}

// BenchmarkCollectives measures the collective layer end to end: barrier
// latency, broadcast throughput, and all-to-all throughput at
// N ∈ {4, 8, 16}, each in tree form (binomial, Fanout 0) and linear form
// (Fanout = N — the serial root-collected baseline), all pinned to a
// priority channel. Each configuration is measured twice: wall clock on
// the Mem mesh (real, but bounded by host cores) and modeled latency over
// the simulated ATM LAN (the repo's standard virtual-time metric, where
// the tree's parallel hops count). Results accumulate into
// BENCH_collectives.json with tree-vs-linear speedups per N, so the
// logarithmic rewrite's win is tracked run over run (CI diffs and gates
// on it).
func BenchmarkCollectives(b *testing.B) {
	const bcastSize, a2aSize = 64 << 10, 8 << 10
	// The harness invokes each sub-benchmark several times with growing
	// b.N; keep only the final (longest) measurement per configuration,
	// and run the deterministic sim once per configuration.
	rowByKey := map[string]*collRow{}
	var keys []string
	simMemo := map[string]float64{}

	measure := func(b *testing.B, op string, n, fanout int, mk func(self int) func(g *core.Group, t *core.Thread)) {
		_, procs, members := collProcs(n)
		for i := 0; i < n; i++ {
			i := i
			body := mk(i)
			procs[i].TCreate("m", mts.PrioDefault, func(t *core.Thread) {
				g := procs[i].NewGroup(members, core.GroupConfig{Channel: 1, Fanout: fanout})
				for k := 0; k < b.N; k++ {
					body(g, t)
				}
			})
		}
		b.ResetTimer()
		elapsed := runProcs(procs)
		b.StopTimer()
		shape := "tree"
		if fanout >= n {
			shape = "linear"
		}
		payload := 0
		switch op {
		case "bcast":
			payload = bcastSize
		case "alltoall":
			payload = a2aSize
		}
		key := fmt.Sprintf("%s/%d/%s", op, n, shape)
		if _, ok := simMemo[key]; !ok {
			simMemo[key] = simCollective(op, n, fanout, 10, payload)
		}
		row := collRow{Op: op, N: n, Shape: shape, Iters: b.N,
			MemUsPerOp: float64(elapsed.Microseconds()) / float64(b.N),
			ModeledUs:  simMemo[key]}
		switch op {
		case "bcast":
			// Payload bytes delivered per op: N-1 members receive the root's
			// buffer.
			row.MemMBps = float64(bcastSize*(n-1)) / 1e6 / (elapsed.Seconds() / float64(b.N))
			b.SetBytes(int64(bcastSize * (n - 1)))
		case "alltoall":
			row.MemMBps = float64(a2aSize*n*(n-1)) / 1e6 / (elapsed.Seconds() / float64(b.N))
			b.SetBytes(int64(a2aSize * n * (n - 1)))
		}
		b.ReportMetric(row.MemUsPerOp, "mem_us/op")
		b.ReportMetric(row.ModeledUs, "modeled_us/op")
		if _, ok := rowByKey[key]; !ok {
			keys = append(keys, key)
		}
		rowByKey[key] = &row
	}

	for _, n := range []int{4, 8, 16} {
		for _, shape := range []struct {
			name   string
			fanout int
		}{{"tree", 0}, {"linear", 1 << 20}} {
			n, fanout := n, shape.fanout
			b.Run(fmt.Sprintf("barrier/N=%d/%s", n, shape.name), func(b *testing.B) {
				measure(b, "barrier", n, fanout, func(int) func(*core.Group, *core.Thread) {
					return func(g *core.Group, t *core.Thread) { g.Barrier(t) }
				})
			})
			b.Run(fmt.Sprintf("bcast/N=%d/%s", n, shape.name), func(b *testing.B) {
				measure(b, "bcast", n, fanout, func(int) func(*core.Group, *core.Thread) {
					buf := make([]byte, bcastSize)
					return func(g *core.Group, t *core.Thread) { g.BcastInto(t, 0, buf) }
				})
			})
			b.Run(fmt.Sprintf("alltoall/N=%d/%s", n, shape.name), func(b *testing.B) {
				measure(b, "alltoall", n, fanout, func(int) func(*core.Group, *core.Thread) {
					data := make([][]byte, n)
					for j := range data {
						data[j] = make([]byte, a2aSize)
					}
					return func(g *core.Group, t *core.Thread) { g.AllToAll(t, data) }
				})
			})
		}
	}

	// Tree-vs-linear speedups per (op, N): the headline numbers. The
	// modeled speedup is the algorithmic claim (each workstation's link and
	// CPU modeled independently, so the tree's parallel hops count); the
	// mem_wall speedup is what this host's core count lets the wall clock
	// express. The acceptance bar for the rewrite is >= 2x modeled for
	// barrier and bcast at N=16.
	var rows []collRow
	for _, k := range keys {
		rows = append(rows, *rowByKey[k])
	}
	modeled := map[string]float64{}
	memWall := map[string]float64{}
	find := func(op string, n int, shape string) *collRow {
		return rowByKey[fmt.Sprintf("%s/%d/%s", op, n, shape)]
	}
	for _, op := range []string{"barrier", "bcast", "alltoall"} {
		for _, n := range []int{4, 8, 16} {
			tr, ln := find(op, n, "tree"), find(op, n, "linear")
			if tr != nil && ln != nil && tr.ModeledUs > 0 && tr.MemUsPerOp > 0 {
				modeled[fmt.Sprintf("%s_n%d", op, n)] = ln.ModeledUs / tr.ModeledUs
				memWall[fmt.Sprintf("%s_n%d", op, n)] = ln.MemUsPerOp / tr.MemUsPerOp
			}
		}
	}
	artifact := struct {
		Bench      string             `json:"bench"`
		GoOS       string             `json:"goos"`
		GoArch     string             `json:"goarch"`
		MaxProcs   int                `json:"gomaxprocs"`
		Rows       []collRow          `json:"rows"`
		SpeedupSim map[string]float64 `json:"tree_vs_linear_speedup_modeled"`
		SpeedupMem map[string]float64 `json:"tree_vs_linear_speedup_mem_wall"`
	}{
		Bench: "BenchmarkCollectives", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
		Rows:     rows, SpeedupSim: modeled, SpeedupMem: memWall,
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_collectives.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScaleIncast is the many-to-one scale shape the ROADMAP called
// for: N senders pour windowed bulk traffic into one receiver — the
// gather/reduction arrival pattern, and the classic congestion shape. Each
// sender rides its own windowed channel; the receiver drains them from
// per-sender threads with RecvInto. BENCH_incast.json records aggregate
// and per-sender throughput (min/max spread = fairness) plus the
// control-plane split, and CI diffs it against the prior run.
func BenchmarkScaleIncast(b *testing.B) {
	const senders = 8
	const size = 32 << 10
	const window = 8

	mem := transport.NewMem()
	procs := make([]*core.Proc, senders+1)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("incast%d", i), IdleTimeout: time.Minute})
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(core.ProcID(i), rt)})
	}
	// Channel s+1 -> 0 per sender, windowed both ends.
	tx := make([]*core.Channel, senders)
	rx := make([]*core.Channel, senders)
	for s := 0; s < senders; s++ {
		tx[s] = procs[s+1].Open(0, core.ChannelConfig{ID: 1, Flow: core.NewWindowFlow(window)})
		rx[s] = procs[0].Open(core.ProcID(s+1), core.ChannelConfig{ID: 1, Flow: core.NewWindowFlow(window)})
	}
	for s := 0; s < senders; s++ {
		s := s
		procs[0].TCreate(fmt.Sprintf("rx%d", s), mts.PrioDefault, func(t *core.Thread) {
			buf := make([]byte, size)
			for k := 0; k < b.N; k++ {
				rx[s].RecvInto(t, buf, core.Any)
			}
		})
		procs[s+1].TCreate("tx", mts.PrioDefault, func(t *core.Thread) {
			buf := make([]byte, size)
			for k := 0; k < b.N; k++ {
				tx[s].Send(t, s, buf)
			}
		})
	}

	b.SetBytes(int64(senders * size))
	b.ResetTimer()
	elapsed := runProcs(procs)
	b.StopTimer()

	secs := elapsed.Seconds()
	type senderRow struct {
		Sender    int     `json:"sender"`
		Msgs      int64   `json:"msgs"`
		Bytes     int64   `json:"bytes"`
		MBps      float64 `json:"mb_per_s"`
		CtrlStand int64   `json:"ctrl_standalone"`
		CtrlPiggy int64   `json:"ctrl_piggybacked"`
	}
	var rows []senderRow
	var agg, minMBps, maxMBps float64
	var standTotal, piggyTotal int64
	for s := 0; s < senders; s++ {
		st, sr := tx[s].Stats(), rx[s].Stats()
		mbps := float64(st.BytesSent) / 1e6 / secs
		rows = append(rows, senderRow{Sender: s, Msgs: st.Sent, Bytes: st.BytesSent, MBps: mbps,
			CtrlStand: sr.CtrlStandalone, CtrlPiggy: sr.CtrlPiggybacked})
		agg += mbps
		if s == 0 || mbps < minMBps {
			minMBps = mbps
		}
		if mbps > maxMBps {
			maxMBps = mbps
		}
		standTotal += sr.CtrlStandalone
		piggyTotal += sr.CtrlPiggybacked
	}
	b.ReportMetric(agg, "agg_MB/s")
	if maxMBps > 0 {
		b.ReportMetric(minMBps/maxMBps, "fairness")
	}

	batchCalls, batchedMsgs := mem.BatchStats()
	artifact := struct {
		Bench       string      `json:"bench"`
		GoOS        string      `json:"goos"`
		GoArch      string      `json:"goarch"`
		Senders     int         `json:"senders"`
		MsgSize     int         `json:"msg_size"`
		Window      int         `json:"window"`
		N           int         `json:"n"`
		ElapsedNs   int64       `json:"elapsed_ns"`
		AggMBps     float64     `json:"agg_mb_per_s"`
		MinMBps     float64     `json:"min_sender_mb_per_s"`
		MaxMBps     float64     `json:"max_sender_mb_per_s"`
		CtrlStand   int64       `json:"ctrl_standalone"`
		CtrlPiggy   int64       `json:"ctrl_piggybacked"`
		BatchCalls  int64       `json:"batch_calls"`
		BatchedMsgs int64       `json:"batched_msgs"`
		PerSender   []senderRow `json:"per_sender"`
	}{
		Bench: "BenchmarkScaleIncast", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Senders: senders, MsgSize: size, Window: window, N: b.N,
		ElapsedNs: elapsed.Nanoseconds(), AggMBps: agg,
		MinMBps: minMBps, MaxMBps: maxMBps,
		CtrlStand: standTotal, CtrlPiggy: piggyTotal,
		BatchCalls: batchCalls, BatchedMsgs: batchedMsgs,
		PerSender: rows,
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_incast.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Virtual-time scale sweep: N ∈ {64, 256, 1024} on one event loop ----

// scale1kRow is one (workload, N, shape) measurement of the virtual-time
// scale sweep: a purely modeled number (no wall clock — the whole mesh runs
// on one discrete-event loop) plus the run's timeline hash so CI diffs can
// see any behavioral drift, not just metric drift.
type scale1kRow struct {
	Op          string  `json:"op"`
	N           int     `json:"n"`
	Shape       string  `json:"shape,omitempty"`
	ModeledUs   float64 `json:"modeled_us_per_op,omitempty"`
	ModeledMBps float64 `json:"modeled_mb_per_s,omitempty"`
	Timeline    string  `json:"timeline"`
}

// scale1kSeed seeds every workload of the sweep; `ncsbench -experiment
// scale1k` exposes it as a flag, the checked-in artifact uses 7.
const scale1kSeed = 7

// vmeshCollectiveSim runs iters collective ops (barrier or bcast) across an
// n-proc virtual mesh on the default channel and returns modeled µs/op and
// the timeline hash. Unlike simCollective this scales to four-digit N: the
// frame-granular fabric keeps O(n) links and one event per frame.
func vmeshCollectiveSim(op string, n, fanout, iters, payload int, seed int64) (float64, string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{})
	members := make([]core.Addr, n)
	for i := range members {
		members[i] = core.Addr{Proc: core.ProcID(i), Thread: 0}
	}
	for _, p := range vm.Procs {
		p := p
		p.TCreate("coll", mts.PrioDefault, func(t *core.Thread) {
			g := p.NewGroup(members, core.GroupConfig{Fanout: fanout})
			var buf []byte
			if op == "bcast" {
				buf = make([]byte, payload)
			}
			for k := 0; k < iters; k++ {
				switch op {
				case "barrier":
					g.Barrier(t)
				case "bcast":
					g.BcastInto(t, 0, buf)
				}
			}
		})
	}
	vm.Run()
	return float64(vm.Now().Nanoseconds()) / 1e3 / float64(iters), vm.TimelineHash()
}

// vmeshIncastSim pours windowed traffic from n-1 senders into proc 0 and
// returns the modeled aggregate MB/s (bounded by the receiver's downlink)
// and the timeline hash.
func vmeshIncastSim(n, msgs, size int, seed int64) (float64, string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{Flow: core.NewWindowFlow(8)})
	total := (n - 1) * msgs
	vm.Procs[0].TCreate("sink", mts.PrioDefault, func(t *core.Thread) {
		for k := 0; k < total; k++ {
			t.Recv(core.Any, core.Any)
		}
	})
	for i := 1; i < n; i++ {
		p := vm.Procs[i]
		p.TCreate("src", mts.PrioDefault, func(t *core.Thread) {
			payload := make([]byte, size)
			for k := 0; k < msgs; k++ {
				t.Send(0, 0, payload)
			}
		})
	}
	vm.Run()
	return float64(total*size) / 1e6 / vm.Now().Seconds(), vm.TimelineHash()
}

// vmeshRingSim drives a seeded neighbor-ring exchange (the all-lanes-busy
// mesh shape) and returns modeled aggregate MB/s and the timeline hash. The
// seed picks every payload size, so it is also the determinism probe: two
// calls with equal arguments must return identical hashes.
func vmeshRingSim(n, msgs int, seed int64) (float64, string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{})
	totalBytes := 0
	for i, p := range vm.Procs {
		i, p := i, p
		rng := vm.Rand(int64(i))
		sizes := make([]int, msgs)
		for k := range sizes {
			sizes[k] = 64 + rng.Intn(4096)
			totalBytes += sizes[k]
		}
		p.TCreate("ring", mts.PrioDefault, func(t *core.Thread) {
			next := core.ProcID((i + 1) % n)
			prev := core.ProcID((i - 1 + n) % n)
			for _, sz := range sizes {
				t.Send(0, next, make([]byte, sz))
			}
			for k := 0; k < msgs; k++ {
				t.Recv(core.Any, prev)
			}
		})
	}
	vm.Run()
	return float64(totalBytes) / 1e6 / vm.Now().Seconds(), vm.TimelineHash()
}

// BenchmarkScale1K is the virtual-time scale sweep the event-loop execution
// mode exists for: collectives (tree vs linear), incast, and a neighbor
// ring at N ∈ {64, 256, 1024} procs — every proc with sharded lanes, DRR,
// and coalescing — on one deterministic discrete-event loop. All metrics
// are modeled (virtual µs and MB/s); wall clock only bounds how long the
// simulation takes to compute. The headline is the tree-vs-linear
// collective advantage widening with N — ceil(log2 N) parallel hops against
// N-1 serialized ones — which BENCH_collectives.json can only show to
// N=16 because its Mem mesh needs a live goroutine per lane. The N=256 ring
// runs twice and the benchmark fails if the two timeline hashes differ: the
// determinism contract is part of the measurement, not a separate test.
// Results accumulate into BENCH_scale1k.json (CI diffs it and gates the
// N=256 speedups).
func BenchmarkScale1K(b *testing.B) {
	const bcastSize, incastSize, incastMsgs, ringMsgs = 16 << 10, 8 << 10, 4, 4
	sizes := []int{64, 256, 1024}
	// Fewer collective iterations at the largest N: dissemination barriers
	// cost n·log2(n) messages per op, and modeled values are averages, not
	// samples, so a handful of iterations suffices.
	itersFor := func(n int) int {
		if n >= 1024 {
			return 4
		}
		return 8
	}
	// The harness reruns sub-benchmarks with growing b.N; the sims are
	// deterministic, so run each configuration once and memoize.
	rowByKey := map[string]*scale1kRow{}
	var keys []string
	record := func(key string, row scale1kRow) *scale1kRow {
		if _, ok := rowByKey[key]; !ok {
			keys = append(keys, key)
			rowByKey[key] = &row
		}
		return rowByKey[key]
	}

	for _, n := range sizes {
		n := n
		for _, shape := range []struct {
			name   string
			fanout int
		}{{"tree", 0}, {"linear", 1 << 20}} {
			shape := shape
			for _, op := range []string{"barrier", "bcast"} {
				op := op
				b.Run(fmt.Sprintf("%s/N=%d/%s", op, n, shape.name), func(b *testing.B) {
					key := fmt.Sprintf("%s/%d/%s", op, n, shape.name)
					row, ok := rowByKey[key]
					if !ok {
						payload := 0
						if op == "bcast" {
							payload = bcastSize
						}
						us, tl := vmeshCollectiveSim(op, n, shape.fanout, itersFor(n), payload, scale1kSeed)
						row = record(key, scale1kRow{Op: op, N: n, Shape: shape.name, ModeledUs: us, Timeline: tl})
					}
					b.ReportMetric(row.ModeledUs, "modeled_us/op")
					b.ReportMetric(0, "ns/op")
				})
			}
		}
		b.Run(fmt.Sprintf("incast/N=%d", n), func(b *testing.B) {
			key := fmt.Sprintf("incast/%d", n)
			row, ok := rowByKey[key]
			if !ok {
				mbps, tl := vmeshIncastSim(n, incastMsgs, incastSize, scale1kSeed)
				row = record(key, scale1kRow{Op: "incast", N: n, ModeledMBps: mbps, Timeline: tl})
			}
			b.ReportMetric(row.ModeledMBps, "modeled_mb/s")
			b.ReportMetric(0, "ns/op")
		})
		b.Run(fmt.Sprintf("mesh/N=%d", n), func(b *testing.B) {
			key := fmt.Sprintf("mesh/%d", n)
			row, ok := rowByKey[key]
			if !ok {
				mbps, tl := vmeshRingSim(n, ringMsgs, scale1kSeed)
				if n == 256 {
					// Determinism gate at the acceptance scale: same seed,
					// byte-identical timeline.
					if _, tl2 := vmeshRingSim(n, ringMsgs, scale1kSeed); tl2 != tl {
						b.Fatalf("virtual mesh nondeterministic at N=%d:\n  run1 %s\n  run2 %s", n, tl, tl2)
					}
				}
				row = record(key, scale1kRow{Op: "mesh", N: n, ModeledMBps: mbps, Timeline: tl})
			}
			b.ReportMetric(row.ModeledMBps, "modeled_mb/s")
			b.ReportMetric(0, "ns/op")
		})
	}

	var rows []scale1kRow
	for _, k := range keys {
		rows = append(rows, *rowByKey[k])
	}
	speedup := map[string]float64{}
	for _, op := range []string{"barrier", "bcast"} {
		for _, n := range sizes {
			tr := rowByKey[fmt.Sprintf("%s/%d/tree", op, n)]
			ln := rowByKey[fmt.Sprintf("%s/%d/linear", op, n)]
			if tr != nil && ln != nil && tr.ModeledUs > 0 {
				speedup[fmt.Sprintf("%s_n%d", op, n)] = ln.ModeledUs / tr.ModeledUs
			}
		}
	}
	meshHash := ""
	if r := rowByKey["mesh/256"]; r != nil {
		meshHash = r.Timeline
	}
	artifact := struct {
		Bench       string             `json:"bench"`
		GoOS        string             `json:"goos"`
		GoArch      string             `json:"goarch"`
		Seed        int64              `json:"seed"`
		Rows        []scale1kRow       `json:"rows"`
		SpeedupSim  map[string]float64 `json:"tree_vs_linear_speedup_modeled"`
		DetHashN256 string             `json:"determinism_timeline_mesh_n256"`
	}{
		Bench: "BenchmarkScale1K", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Seed: scale1kSeed, Rows: rows, SpeedupSim: speedup, DetHashN256: meshHash,
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale1k.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// churnSim runs a 256-proc signaled-channel churn on the virtual-time
// mesh: every proc repeatedly dials its ring successor through a shared
// token-bucket admission policy deliberately tighter (burst 32) than the
// opening storm (256 simultaneous first dials), transfers a couple of
// messages, and closes with the full RELEASE handshake. It returns the
// modeled setup-latency distribution over successful handshakes, the
// admission rejection rate, churn throughput in channels per modeled
// second, the total leaked-state count across all procs (zero or the
// lifecycle is broken), and the run's timeline hash.
func churnSim(n, cycles, msgs int, seed int64) (latencies []float64, rejRate float64, chansPerSec float64, opens int64, leaks int, timeline string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{
		Lanes:     2,
		Admission: core.NewTokenBucketAdmission(100_000, 32),
		OnAccept: func(c *core.Channel) {
			c.Proc().TCreate("serve", mts.PrioDefault, func(th *core.Thread) {
				opener := c.PeerThread()
				c.Send(th, opener, []byte{0})
				for k := 0; k < msgs; k++ {
					c.Recv(th, core.Any)
				}
				c.Send(th, opener, []byte{1})
			})
		},
	})
	for i := 0; i < n; i++ {
		i := i
		p := vm.Procs[i]
		p.TCreate("keeper", mts.PrioDefault, func(th *core.Thread) { th.Recv(core.Any, core.Any) })
		p.TCreate("dial", mts.PrioDefault, func(th *core.Thread) {
			peer := core.ProcID((i + 1) % n)
			rng := vm.Rand(int64(i))
			for cyc := 0; cyc < cycles; cyc++ {
				var ch *core.Channel
				for ch == nil {
					start := vm.Now()
					c, err := p.OpenCall(th, peer, core.CallConfig{
						Flow:  core.NewWindowFlow(4),
						Error: core.NewGoBackN(8, 2*time.Millisecond),
					})
					if err != nil {
						continue // admission rejection; the wire round trip paces the retry
					}
					latencies = append(latencies, float64(vm.Now()-start)/float64(time.Microsecond))
					ch = c
				}
				// Announce/serve rendezvous: the server's first message
				// carries its thread index in the source address.
				_, from := ch.Recv(th, core.Any)
				for k := 0; k < msgs; k++ {
					buf := make([]byte, 1+rng.Intn(256))
					buf[0] = byte(k)
					ch.Send(th, from.Thread, buf)
				}
				ch.Recv(th, core.Any)
				if err := ch.CloseCall(th); err != nil {
					panic(err)
				}
			}
			th.Send(0, peer, []byte("bye"))
		})
	}
	vm.Run()
	var opened, setups, rejected int64
	for _, p := range vm.Procs {
		leaks += len(p.Leaks())
		st := p.Lifecycle()
		opened += st.Opened
		setups += st.SetupsSent
		rejected += st.SetupsRejected
	}
	if setups > 0 {
		rejRate = float64(rejected) / float64(setups)
	}
	if secs := vm.Now().Seconds(); secs > 0 {
		chansPerSec = float64(opened/2) / secs // each channel opens on both ends
	}
	return latencies, rejRate, chansPerSec, opened / 2, leaks, vm.TimelineHash()
}

func percentileUs(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// BenchmarkChurn is the control-plane benchmark: 256 procs × 4 signaled
// calls each (1024 full open/transfer/close cycles) under admission
// overload, on the deterministic virtual-time mesh. It reports the modeled
// SETUP→CONNECT latency distribution, the churn rate, and the admission
// rejection rate; the run is repeated from the same seed and fails on any
// timeline divergence, and any leaked lifecycle state fails it outright.
// Results persist to BENCH_churn.json (CI diffs the snapshot and gates on
// zero leaks plus a nonzero rejection rate).
func BenchmarkChurn(b *testing.B) {
	const n, cycles, msgs, seed = 256, 4, 2, 7
	lat, rejRate, cps, opens, leaks, tl := churnSim(n, cycles, msgs, seed)
	if leaks != 0 {
		b.Fatalf("churn leaked %d lifecycle entries", leaks)
	}
	if rejRate == 0 {
		b.Fatal("admission rejected nothing: the churn never overloaded the bucket")
	}
	if _, _, _, _, _, tl2 := churnSim(n, cycles, msgs, seed); tl2 != tl {
		b.Fatalf("churn nondeterministic:\n  run1 %s\n  run2 %s", tl, tl2)
	}
	sort.Float64s(lat)
	p50 := percentileUs(lat, 0.50)
	p99 := percentileUs(lat, 0.99)
	b.ReportMetric(p50, "setup_p50_modeled_us")
	b.ReportMetric(p99, "setup_p99_modeled_us")
	b.ReportMetric(cps, "modeled_chans/s")
	b.ReportMetric(rejRate, "rejection_rate")
	b.ReportMetric(0, "ns/op")

	artifact := struct {
		Bench         string  `json:"bench"`
		GoOS          string  `json:"goos"`
		GoArch        string  `json:"goarch"`
		Seed          int64   `json:"seed"`
		Procs         int     `json:"procs"`
		Channels      int64   `json:"channels"`
		SetupP50Us    float64 `json:"setup_latency_p50_modeled_us"`
		SetupP99Us    float64 `json:"setup_latency_p99_modeled_us"`
		ChansPerSec   float64 `json:"channels_per_modeled_sec"`
		RejectionRate float64 `json:"rejection_rate"`
		Leaks         int     `json:"leaks"`
		Timeline      string  `json:"determinism_timeline"`
	}{
		Bench: "BenchmarkChurn", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Seed: seed, Procs: n, Channels: opens,
		SetupP50Us: p50, SetupP99Us: p99,
		ChansPerSec: cps, RejectionRate: rejRate, Leaks: leaks, Timeline: tl,
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_churn.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// faultsSim is one deterministic kill experiment: n-1 observers each hold
// a warmed channel to the victim and park on a targeted receive; the
// victim is killed at killAt on the virtual clock; every observer's
// failure detector declares it independently and the failure sweep
// unblocks the parked receive with the typed error. Each observer's
// wakeup instant minus killAt is one detection-latency sample (detection
// and fail-fast teardown are the same sweep, so the sample covers both).
func faultsSim(n int, hb core.Heartbeat, killAt time.Duration, seed int64) (latencies []float64, typed int, leaks int, timeline string) {
	victim := core.ProcID(n - 1)
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{
		Heartbeat: hb,
		MaxTime:   time.Second,
	})
	vm.Eng.Schedule(killAt, func() { vm.Net.KillHost(int(victim)) })
	recoverTyped := func(fn func()) bool {
		ok := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					var pd *core.PeerDeadError
					if err, is := r.(error); !is || !errors.As(err, &pd) {
						panic(r)
					}
					ok = true
				}
			}()
			fn()
		}()
		return ok
	}
	for i := 0; i < n-1; i++ {
		i := i
		rng := vm.Rand(int64(i))
		vm.Procs[i].TCreate("obs", mts.PrioDefault, func(th *core.Thread) {
			th.Send(0, victim, make([]byte, 64+rng.Intn(512)))
			th.Recv(core.Any, victim) // ack: the pair is now mutually monitored
			if recoverTyped(func() { th.Recv(core.Any, victim) }) {
				latencies = append(latencies, float64(vm.Now()-killAt)/float64(time.Microsecond))
				typed++
			}
		})
	}
	vm.Procs[victim].TCreate("victim", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < n-1; k++ {
			_, from := th.Recv(core.Any, core.Any)
			th.Send(from.Thread, from.Proc, []byte{1})
		}
		if recoverTyped(func() { th.Recv(core.Any, 0) }) {
			typed++
		}
	})
	vm.Run()
	for _, p := range vm.Procs {
		leaks += len(p.Leaks())
	}
	return latencies, typed, leaks, vm.TimelineHash()
}

// BenchmarkFaults is the failure-domain benchmark: 64 procs on the
// virtual-time mesh, every observer channel-attached to one victim, the
// victim killed mid-run. It reports the modeled detection latency
// distribution (kill to typed wakeup, which includes the fail-fast
// teardown sweep) and gates on the detector's contract: every waiter
// unblocked with the typed error, p99 within the (Misses+1)*Interval
// bound plus one tick of scheduling slop, zero lifecycle leaks, and a
// byte-identical timeline on a same-seed rerun. Results persist to
// BENCH_faults.json for the CI snapshot/diff pipeline.
func BenchmarkFaults(b *testing.B) {
	const n, seed = 64, 7
	hb := core.Heartbeat{Interval: time.Millisecond, Misses: 3}
	const killAt = 5 * time.Millisecond
	boundUs := float64((time.Duration(hb.Misses+2) * hb.Interval) / time.Microsecond)
	lat, typed, leaks, tl := faultsSim(n, hb, killAt, seed)
	if leaks != 0 {
		b.Fatalf("fault teardown leaked %d lifecycle entries", leaks)
	}
	if typed != n {
		b.Fatalf("typed deaths = %d, want %d (every waiter must unblock with *PeerDeadError)", typed, n)
	}
	if _, _, _, tl2 := faultsSim(n, hb, killAt, seed); tl2 != tl {
		b.Fatalf("kill suite nondeterministic:\n  run1 %s\n  run2 %s", tl, tl2)
	}
	sort.Float64s(lat)
	p50 := percentileUs(lat, 0.50)
	p99 := percentileUs(lat, 0.99)
	if p99 > boundUs {
		b.Fatalf("detection p99 %.0fµs exceeds the modeled bound %.0fµs", p99, boundUs)
	}
	b.ReportMetric(p50, "detect_p50_modeled_us")
	b.ReportMetric(p99, "detect_p99_modeled_us")
	b.ReportMetric(float64(typed), "typed_deaths")
	b.ReportMetric(0, "ns/op")

	artifact := struct {
		Bench       string  `json:"bench"`
		GoOS        string  `json:"goos"`
		GoArch      string  `json:"goarch"`
		Seed        int64   `json:"seed"`
		Procs       int     `json:"procs"`
		IntervalUs  float64 `json:"heartbeat_interval_us"`
		Misses      int     `json:"heartbeat_misses"`
		DetectP50Us float64 `json:"detect_latency_p50_modeled_us"`
		DetectP99Us float64 `json:"detect_latency_p99_modeled_us"`
		BoundUs     float64 `json:"detect_latency_bound_modeled_us"`
		TypedDeaths int     `json:"typed_deaths"`
		Leaks       int     `json:"leaks"`
		Timeline    string  `json:"determinism_timeline"`
	}{
		Bench: "BenchmarkFaults", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Seed: seed, Procs: n,
		IntervalUs: float64(hb.Interval) / float64(time.Microsecond), Misses: hb.Misses,
		DetectP50Us: p50, DetectP99Us: p99, BoundUs: boundUs,
		TypedDeaths: typed, Leaks: leaks, Timeline: tl,
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_faults.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Micro-benchmarks of the substrates (real work, real ns/op) ---------

// BenchmarkAAL5Segment measures cell segmentation throughput.
func BenchmarkAAL5Segment(b *testing.B) {
	payload := make([]byte, 8192)
	vc := atm.VC{VCI: 100}
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := atm.Segment(vc, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAAL5Reassemble measures the receive path incl. CRC verify.
func BenchmarkAAL5Reassemble(b *testing.B) {
	payload := make([]byte, 8192)
	vc := atm.VC{VCI: 100}
	cells, _ := atm.Segment(vc, payload)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := atm.Reassemble(vc, cells); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContextSwitch measures one NCS_MTS cooperative switch.
func BenchmarkContextSwitch(b *testing.B) {
	rt := mts.New(mts.Config{Name: "bench"})
	stop := false
	for i := 0; i < 2; i++ {
		rt.Create("spinner", mts.PrioDefault, func(t *mts.Thread) {
			for !stop {
				t.Yield()
			}
		})
	}
	b.ResetTimer()
	go func() {
		// Each Dispatch is one switch; run b.N of them.
	}()
	for i := 0; i < b.N; i++ {
		rt.Dispatch()
	}
	b.StopTimer()
	stop = true
	for rt.HasRunnable() {
		rt.Dispatch()
	}
}

// BenchmarkMemTransportRoundtrip measures message marshal+deliver latency
// through the real-mode in-process transport.
func BenchmarkMemTransportRoundtrip(b *testing.B) {
	mem := transport.NewMem()
	rtA := mts.New(mts.Config{Name: "a", IdleTimeout: time.Minute})
	rtB := mts.New(mts.Config{Name: "b", IdleTimeout: time.Minute})
	epA := mem.Attach(0, rtA)
	epB := mem.Attach(1, rtB)
	payload := make([]byte, 1024)

	b.SetBytes(int64(len(payload)))
	var echo, waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) { rtB.Unblock(echo, false) })
	epA.SetHandler(func(m *transport.Message) { rtA.Unblock(waiter, false) })
	echo = rtB.Create("echo", mts.PrioDefault, func(t *mts.Thread) {
		for i := 0; i < b.N; i++ {
			t.Park("req")
			epB.Send(t, &transport.Message{From: 1, To: 0, Data: payload})
		}
	})
	waiter = rtA.Create("driver", mts.PrioDefault, func(t *mts.Thread) {
		for i := 0; i < b.N; i++ {
			epA.Send(t, &transport.Message{From: 0, To: 1, Data: payload})
			t.Park("resp")
		}
	})
	b.ResetTimer()
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
}

// BenchmarkDCTBlock measures the 8x8 forward DCT.
func BenchmarkDCTBlock(b *testing.B) {
	var src, dst jpegcodec.Block
	for i := range src {
		src[i] = float64(i%255) - 128
	}
	for i := 0; i < b.N; i++ {
		jpegcodec.FDCT(&src, &dst)
	}
}

// BenchmarkJPEGEncode measures the full codec on a 128x128 tile.
func BenchmarkJPEGEncode(b *testing.B) {
	img := jpegcodec.Synthetic(128, 128)
	b.SetBytes(int64(len(img.Pix)))
	for i := 0; i < b.N; i++ {
		jpegcodec.Encode(img, 75)
	}
}

// BenchmarkFFTKernel measures the 512-point transform the paper's Table 3
// distributes.
func BenchmarkFFTKernel(b *testing.B) {
	x := fft.RandomSignal(512, 1)
	buf := make([]complex128, len(x))
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		fft.Forward(buf)
	}
}
