// Package repro is a from-scratch Go reproduction of "A Multithreaded
// Message Passing Environment for ATM LAN/WAN" (Yadav, Reddy, Hariri, Fox;
// NPAC, Syracuse University, 1995): NCS, the NYNET Communication System.
//
// The implementation lives under internal/ — see README.md for a guided
// tour, the package map, and build/test instructions. bench_test.go in
// this directory regenerates every table and figure of the paper's
// evaluation via `go test -bench`.
package repro
