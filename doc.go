// Package repro is a from-scratch Go reproduction of "A Multithreaded
// Message Passing Environment for ATM LAN/WAN" (Yadav, Reddy, Hariri, Fox;
// NPAC, Syracuse University, 1995): NCS, the NYNET Communication System.
//
// The implementation lives under internal/ — see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the paper-vs-measured record, and README.md
// for a guided tour. bench_test.go in this directory regenerates every
// table and figure of the paper's evaluation via `go test -bench`.
package repro
