// Package repro is a from-scratch Go reproduction of "A Multithreaded
// Message Passing Environment for ATM LAN/WAN" (Yadav, Reddy, Hariri, Fox;
// NPAC, Syracuse University, 1995): NCS, the NYNET Communication System.
//
// The implementation lives under internal/ — see README.md for a guided
// tour, the package map, and build/test instructions. The heart is
// internal/core: user-level threads plus thread-addressed message passing,
// organized around per-channel QoS — the paper's NCS_init(flow, error)
// configures the default channel, and Proc.Open creates further channels,
// each with its own flow control, error control, and priority, mapped to
// its own ATM virtual circuit in the cell-level carriers. Window flow
// control speaks an absolute-credit protocol (cumulative advertisements
// plus a periodic window sync), so it survives carriers that drop control
// frames as readily as data — no traffic class needs protecting on a
// lossy fabric.
//
// The control plane piggybacks on the data plane (wire format v3): a data
// frame carries its channel's pending credit advertisement and ack as
// optional header words, with a short flush timer (Config.CtrlFlushDelay)
// falling back to standalone — and coalesced — control frames when no
// reverse data flows. The send system thread drains bursts and hands
// same-destination runs to carriers through transport.BatchSender (one
// scheduler post on Mem, one writev on real TCP, MTU-bounded cell-train
// datagrams on UDP/ATM), and Thread.RecvInto/Channel.RecvInto — the
// paper's receive-into-buffer call — recycles pooled receive frames so
// steady-state traffic allocates nothing.
//
// Threading model: the paper's one-send-one-receive system-thread pair
// per process is the lanes=1 configuration, still the default on a
// single-core host. On multicore (or with Config.SendLanes/RecvLanes),
// the pair shards into min(GOMAXPROCS, 4) lane engines; every channel is
// pinned to one lane for life (peer-hash by default, ChannelConfig.Lane
// to choose), so FIFO within a channel, strict priority among channels
// sharing a lane, and single-owner discipline state all survive the
// sharding. Application sends complete inline; arrivals flow through a
// per-lane MPSC ring (internal/ring) into the engine goroutine, which
// runs the flow/error tiers and posts wakeups back to the cooperative
// scheduler. Lane=1 passes the full test suite unchanged, and the suite
// itself runs both models in CI (-cpu=1,4 under the race detector).
//
// Channels also open dynamically by signaling, the paper's switched
// virtual circuits: Proc.OpenCall runs a blocking SETUP/CONNECT handshake
// through the ATM signaling band (channel 0), the callee admitting or
// refusing each call through Config.Admission (always-admit, token
// bucket, or per-peer cap) and handing admitted channels to
// Config.OnAccept; refusals and dead peers surface as *OpenError with a
// typed CallCause after a bounded, jittered retry schedule
// (CallConfig.SetupTimeout/Retries/Backoff). The lifecycle is
// OPENING → OPEN → CLOSING → CLOSED: Channel.CloseCall drains in-flight
// data on both ends before RELEASE/RELEASE-COMPLETE tear down VC routes,
// discipline timers, and lane state together, sends on a closing channel
// fail uniformly with *ChannelClosedError across all four disciplines,
// and Proc.Lifecycle/Proc.Leaks balance-count every resource so churn
// (the chaos suites run 1000+ open/transfer/close cycles, lossy and
// virtual-time deterministic) must quiesce leak-free.
//
// The failure domain makes peer death a typed, bounded-latency event
// rather than a hang: Config.Heartbeat arms a per-peer detector on the
// channel-0 signaling band (all timers on the Config.After seam, so it
// is deterministic under virtual time), and after Misses silent
// intervals the peer is declared dead — every channel to it force-closes
// through the drain machinery, parked sends, blocked receives, and
// in-flight collectives unblock with *PeerDeadError, VC routes and
// admission slots release, and Proc.Leaks still balances to zero.
// Carriers expose crash/partition/link-flap/blackhole fault injection
// for chaos testing, Proc.Redial wraps OpenCall in a cause-aware
// backoff policy for surviving a peer restart, Config.AcceptQueue turns
// listener overload into bounded backpressure, and
// CallConfig.IdleTimeout scopes the idle reaper per call. BenchmarkFaults
// gates modeled detection latency, typed-error coverage, and zero leaks
// in CI via BENCH_faults.json.
//
// Group communication is tree-structured and channel-aware: core.Group
// (Proc.NewGroup) precomputes a q-nomial tree and dissemination-barrier
// schedule over an agreed member list and pins every collective —
// Barrier, Bcast/BcastInto, Gather, Reduce, AllToAll — to a chosen
// channel, so a synchronization phase rides a high-priority policed VC
// while bulk exchange keeps its own class. GroupConfig.Fanout >= N
// degenerates to the old serial linear algorithms, preserved as the A/B
// baseline; the MPI and PVM filters route their collectives through
// Group. Collective fan-out is enqueued as one burst per hop and both
// sender- and receiver-side message structs recycle through pools, so a
// barrier-plus-broadcast round allocates zero bytes steady-state.
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation via `go test -bench`, plus a per-channel
// throughput benchmark that emits BENCH_channels.json, an N-procs ×
// K-channels mesh benchmark swept across GOMAXPROCS and lane modes that
// emits BENCH_scale.json, a tree-vs-linear
// collective benchmark that emits BENCH_collectives.json (wall clock on
// Mem plus modeled time on the calibrated NYNET simulation), and a
// many-to-one incast benchmark that emits BENCH_incast.json.
package repro
