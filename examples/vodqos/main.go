// Video-on-demand QOS demo (the paper's Figure 5): one NCS process pair
// runs two *channels*, each with its own flow-control and error-control
// discipline — the per-application QoS selection the paper's NCS_init
// makes, here made per traffic class on a single fabric:
//
//   - channel 1 "video": rate-paced (token bucket at the playback rate),
//     high priority — steady cadence for the viewer.
//   - channel 2 "bulk": window flow + go-back-N — reliable throughput for
//     the parallel application sharing the pair, over a transport that
//     drops 10% of *its* traffic (fault injection aimed at the bulk class
//     only).
//
// The demo shows the stream's inter-frame jitter staying tight and its
// delivery untouched while go-back-N is busy recovering the bulk stream
// next to it — channel isolation end-to-end.
//
//	go run ./examples/vodqos
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func main() {
	const (
		frames    = 60
		frameSize = 16 * 1024
		frameRate = 30.0 // frames/second
		bulkMsgs  = 64
		bulkSize  = 256 * 1024
	)

	mem := transport.NewMem()
	// Break only the bulk channel's data: drops on it must not disturb the
	// video channel sharing the process pair. (Credits ride untouched —
	// window flow relies on the error-control tier only for data.)
	mem.SetDropRate(0.10, 1995)
	mem.SetDropClass(func(m *transport.Message) bool { return m.Channel == 2 && m.Tag >= 0 })

	newProc := func(id int) *core.Proc {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("proc%d", id), IdleTimeout: 60 * time.Second})
		return core.New(core.Config{
			ID:       core.ProcID(id),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(id), rt),
		})
	}
	server := newProc(0)
	client := newProc(1)
	server.OnException(func(error) {}) // trailing-ack give-up after client exit

	gbn := func() core.ErrorControl { return core.NewGoBackN(8, 20*time.Millisecond) }
	video0 := server.Open(1, core.ChannelConfig{
		ID: 1, Priority: 7,
		Flow: core.NewRateFlow(frameRate*frameSize, frameSize),
	})
	bulk0 := server.Open(1, core.ChannelConfig{
		ID: 2, Priority: 0,
		Flow: core.NewWindowFlow(4), Error: gbn(),
	})
	video1 := client.Open(0, core.ChannelConfig{ID: 1, Priority: 7})
	bulk1 := client.Open(0, core.ChannelConfig{
		ID: 2, Priority: 0,
		Flow: core.NewWindowFlow(4), Error: gbn(),
	})

	var arrivals []time.Time
	server.TCreate("stream", mts.PrioDefault, func(t *core.Thread) {
		frame := make([]byte, frameSize)
		for i := 0; i < frames; i++ {
			video0.Send(t, 0, frame)
		}
	})
	server.TCreate("bulk", mts.PrioDefault, func(t *core.Thread) {
		blob := make([]byte, bulkSize)
		for i := 0; i < bulkMsgs; i++ {
			bulk0.Send(t, 1, blob)
		}
	})
	client.TCreate("play", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < frames; i++ {
			video1.Recv(t, core.Any)
			arrivals = append(arrivals, time.Now())
		}
	})
	client.TCreate("sink", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < bulkMsgs; i++ {
			bulk1.Recv(t, core.Any)
		}
	})

	procs := []*core.Proc{server, client}
	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	elapsed := time.Since(start)

	// Inter-frame statistics.
	var worst, sum time.Duration
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		sum += gap
		if gap > worst {
			worst = gap
		}
	}
	mean := sum / time.Duration(len(arrivals)-1)
	rate := frameRate // shed the untyped constant so the division is runtime float math
	wantGap := time.Duration(float64(time.Second) / rate)

	printStats := func(name string, s core.ChannelStats) {
		fmt.Printf("  channel %-5s flow=%-6s error=%-9s sent %3d msgs / %5.1f KB, delivered %3d msgs / %5.1f KB\n",
			name, s.Flow, s.Error, s.Sent, float64(s.BytesSent)/1024, s.Received, float64(s.BytesReceived)/1024)
	}
	fmt.Printf("VOD stream: %d frames at %.0f fps target while %d MB of lossy bulk traffic shared the proc pair\n",
		frames, frameRate, bulkMsgs*bulkSize>>20)
	fmt.Printf("  total %v, mean inter-frame gap %v (target %v), worst gap %v\n",
		elapsed.Round(time.Millisecond), mean.Round(time.Millisecond), wantGap.Round(time.Millisecond), worst.Round(time.Millisecond))
	fmt.Println("server side:")
	printStats("video", video0.Stats())
	printStats("bulk", bulk0.Stats())
	fmt.Println("client side:")
	printStats("video", video1.Stats())
	printStats("bulk", bulk1.Stats())
	fmt.Printf("bulk recovery: %d messages dropped by the fabric, %d retransmissions, video untouched\n",
		mem.Dropped(), bulk0.Error().(*core.GoBackN).Retransmissions())
	fmt.Println("rate flow held the stream cadence; window+go-back-N carried the bulk class on its own channel")
}
