// Video-on-demand QOS demo (the paper's Figure 5): one NCS process pair
// runs two *channels*, each with its own flow-control and error-control
// discipline — the per-application QoS selection the paper's NCS_init
// makes, here made per traffic class on a single fabric:
//
//   - channel 1 "video": rate-paced (token bucket at the playback rate),
//     high priority — steady cadence for the viewer.
//   - channel 2 "bulk": window flow + go-back-N — reliable throughput for
//     the parallel application sharing the pair, over a transport that
//     drops 20% of *everything* on the bulk channel: data frames, credit
//     advertisements, and go-back-N acks alike. Nothing is protected —
//     the cumulative-credit window protocol heals lost credits (any later
//     advertisement supersedes a dropped one, and the periodic window
//     sync re-advertises on idle), while go-back-N recovers the data.
//
// The demo shows the stream's inter-frame jitter staying tight and its
// delivery untouched while the bulk channel's window holds its full depth
// through heavy control-plane loss next to it — channel isolation plus
// loss-proof flow control, end-to-end.
//
//	go run ./examples/vodqos
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func main() {
	const (
		frames    = 60
		frameSize = 16 * 1024
		frameRate = 30.0 // frames/second
		bulkMsgs  = 64
		bulkSize  = 256 * 1024
	)

	mem := transport.NewMem()
	// Break the bulk channel wholesale — data AND control. Credits and
	// acks die as readily as payload frames; the credit protocol's
	// cumulative advertisements and window-sync timer absorb the loss, so
	// bulk window throughput holds while the video channel sharing the
	// process pair never notices.
	mem.SetDropRate(0.20, 1995)
	mem.SetDropClass(func(m *transport.Message) bool { return m.Channel == 2 })

	newProc := func(id int) *core.Proc {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("proc%d", id), IdleTimeout: 60 * time.Second})
		return core.New(core.Config{
			ID:       core.ProcID(id),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(id), rt),
		})
	}
	server := newProc(0)
	client := newProc(1)
	server.OnException(func(error) {}) // trailing-ack give-up after client exit

	gbn := func() core.ErrorControl { return core.NewGoBackN(8, 20*time.Millisecond) }
	video0 := server.Open(1, core.ChannelConfig{
		ID: 1, Priority: 7,
		Flow: core.NewRateFlow(frameRate*frameSize, frameSize),
	})
	bulk0 := server.Open(1, core.ChannelConfig{
		ID: 2, Priority: 0,
		Flow: core.NewWindowFlow(4), Error: gbn(),
	})
	video1 := client.Open(0, core.ChannelConfig{ID: 1, Priority: 7})
	bulk1 := client.Open(0, core.ChannelConfig{
		ID: 2, Priority: 0,
		Flow: core.NewWindowFlow(4), Error: gbn(),
	})

	var arrivals []time.Time
	server.TCreate("stream", mts.PrioDefault, func(t *core.Thread) {
		frame := make([]byte, frameSize)
		for i := 0; i < frames; i++ {
			video0.Send(t, 0, frame)
		}
	})
	server.TCreate("bulk", mts.PrioDefault, func(t *core.Thread) {
		blob := make([]byte, bulkSize)
		for i := 0; i < bulkMsgs; i++ {
			bulk0.Send(t, 1, blob)
		}
	})
	client.TCreate("play", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < frames; i++ {
			video1.Recv(t, core.Any)
			arrivals = append(arrivals, time.Now())
		}
	})
	client.TCreate("sink", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < bulkMsgs; i++ {
			bulk1.Recv(t, core.Any)
		}
	})

	procs := []*core.Proc{server, client}
	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	elapsed := time.Since(start)

	// Inter-frame statistics.
	var worst, sum time.Duration
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		sum += gap
		if gap > worst {
			worst = gap
		}
	}
	mean := sum / time.Duration(len(arrivals)-1)
	rate := frameRate // shed the untyped constant so the division is runtime float math
	wantGap := time.Duration(float64(time.Second) / rate)

	printStats := func(name string, s core.ChannelStats) {
		fmt.Printf("  channel %-5s flow=%-6s error=%-9s sent %3d msgs / %5.1f KB, delivered %3d msgs / %5.1f KB",
			name, s.Flow, s.Error, s.Sent, float64(s.BytesSent)/1024, s.Received, float64(s.BytesReceived)/1024)
		if s.Lane >= 0 {
			// Sharded mode: the lane scheduler's view of this channel.
			fmt.Printf(" [lane %d, weight %d, migrated %dx]", s.Lane, s.Weight, s.Migrations)
		}
		fmt.Println()
	}
	printLanes := func(name string, p *core.Proc) {
		ls := p.LaneStats()
		if ls == nil {
			return // classic single-lane engine (GOMAXPROCS=1): no lane scheduler
		}
		fmt.Printf("%s lanes:\n", name)
		for _, l := range ls {
			fmt.Printf("  lane %d: %d channels, piggy share %4.1f%% (%d coalesced cross-channel), %d DRR rounds, migrations %d in / %d out, %d steals\n",
				l.Lane, l.Channels, 100*l.PiggyShare, l.CtrlCoalesced, l.DRRRounds, l.MigratedIn, l.MigratedOut, l.Steals)
		}
	}
	fmt.Printf("VOD stream: %d frames at %.0f fps target while %d MB of lossy bulk traffic shared the proc pair\n",
		frames, frameRate, bulkMsgs*bulkSize>>20)
	fmt.Printf("  total %v, mean inter-frame gap %v (target %v), worst gap %v\n",
		elapsed.Round(time.Millisecond), mean.Round(time.Millisecond), wantGap.Round(time.Millisecond), worst.Round(time.Millisecond))
	fmt.Println("server side:")
	printStats("video", video0.Stats())
	printStats("bulk", bulk0.Stats())
	fmt.Println("client side:")
	printStats("video", video1.Stats())
	printStats("bulk", bulk1.Stats())
	printLanes("server", server)
	printLanes("client", client)
	bulkFlow := bulk0.Flow().(*core.WindowFlow)
	clientFlow := bulk1.Flow().(*core.WindowFlow)
	fmt.Printf("bulk recovery: %d frames dropped by the fabric (data, credits, and acks alike), %d retransmissions, video untouched\n",
		mem.Dropped(), bulk0.Error().(*core.GoBackN).Retransmissions())
	fmt.Printf("credit protocol: %d stale adverts superseded, %d periodic window syncs, %d credits uncollected at exit\n",
		bulkFlow.StaleCredits(), clientFlow.Syncs(), bulkFlow.Outstanding())
	// The bulk stream is one-way, so the client has no data frames for its
	// credits and acks to ride — the win here is pure coalescing: one
	// cumulative frame covers a burst of deliveries, where the
	// pre-coalescing protocol sent one credit AND one ack per message
	// (2.0/msg) before loss-induced re-acks.
	cs := bulk1.Stats()
	fmt.Printf("control plane: client sent %d control words piggybacked on data, %d standalone frames (%.2f per delivered message; one credit + one ack each, 2.0+, before coalescing)\n",
		cs.CtrlPiggybacked, cs.CtrlStandalone, float64(cs.CtrlStandalone)/float64(max(cs.Received, 1)))
	fmt.Println("rate flow held the stream cadence; window+go-back-N carried the bulk class through 20% loss on its own channel")
}
