// Video-on-demand QOS demo (the paper's Figure 5): two applications share
// one NCS fabric with *different flow-control threads*. The VOD stream
// selects rate-based flow control (steady pacing for playback); the bulk
// parallel application selects window-based flow control (throughput with
// bounded outstanding data). The demo shows the stream's inter-frame jitter
// staying tight while the bulk transfer proceeds.
//
//	go run ./examples/vodqos
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func main() {
	const (
		frames    = 60
		frameSize = 16 * 1024
		frameRate = 30.0 // frames/second
	)

	mem := transport.NewMem()
	newProc := func(id int, flow core.FlowControl) *core.Proc {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("proc%d", id), IdleTimeout: 60 * time.Second})
		return core.New(core.Config{
			ID:       core.ProcID(id),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(id), rt),
			Flow:     flow,
		})
	}

	// Proc 0: VOD server, rate-paced at exactly the playback rate.
	vodServer := newProc(0, core.NewRateFlow(frameRate*frameSize, frameSize))
	// Proc 1: viewer. Proc 2: bulk sender (window flow). Proc 3: bulk sink
	// — the sink runs the same window discipline because credits are
	// returned by the *receiver's* flow-control thread.
	viewer := newProc(1, nil)
	bulkSrc := newProc(2, core.NewWindowFlow(4))
	bulkDst := newProc(3, core.NewWindowFlow(4))

	var arrivals []time.Time
	vodServer.TCreate("stream", mts.PrioDefault, func(t *core.Thread) {
		frame := make([]byte, frameSize)
		for i := 0; i < frames; i++ {
			t.Send(0, 1, frame)
		}
	})
	viewer.TCreate("play", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < frames; i++ {
			t.Recv(core.Any, 0)
			arrivals = append(arrivals, time.Now())
		}
	})
	bulkSrc.TCreate("bulk", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < 64; i++ {
			t.Send(0, 3, make([]byte, 256*1024))
		}
	})
	bulkDst.TCreate("sink", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < 64; i++ {
			t.Recv(core.Any, 2)
		}
	})

	procs := []*core.Proc{vodServer, viewer, bulkSrc, bulkDst}
	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	elapsed := time.Since(start)

	// Inter-frame statistics.
	var worst, sum time.Duration
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		sum += gap
		if gap > worst {
			worst = gap
		}
	}
	mean := sum / time.Duration(len(arrivals)-1)
	rate := frameRate // shed the untyped constant so the division is runtime float math
	wantGap := time.Duration(float64(time.Second) / rate)
	fmt.Printf("VOD stream: %d frames at %.0f fps target while 16 MB of bulk traffic shared the fabric\n", frames, frameRate)
	fmt.Printf("  total %v, mean inter-frame gap %v (target %v), worst gap %v\n",
		elapsed.Round(time.Millisecond), mean.Round(time.Millisecond), wantGap.Round(time.Millisecond), worst.Round(time.Millisecond))
	fmt.Println("rate-based flow control held the stream cadence; window flow bounded the bulk sender")
}
