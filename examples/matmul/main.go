// Distributed matrix multiplication, the paper's Table 1 workload, running
// for real: a host and N workers multiply an actual matrix over the
// in-process transport, in both the p4 style (Figure 13) and the NCS
// two-thread style (Figure 14), and the results are verified against a
// sequential multiply.
//
//	go run ./examples/matmul [-dim 256] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/matmul"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/p4"
	"repro/internal/transport"
)

func main() {
	dim := flag.Int("dim", 256, "matrix dimension")
	workers := flag.Int("workers", 4, "worker processes")
	flag.Parse()

	cfg := matmul.Config{Dim: *dim, Workers: *workers, Seed: 42}
	want := matmul.Multiply(matmul.RandomMatrix(*dim, 42), matmul.RandomMatrix(*dim, 43))

	// --- p4 variant -------------------------------------------------------
	mem := transport.NewMem()
	p4procs := make([]*p4.Process, *workers+1)
	for i := range p4procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p4-%d", i), IdleTimeout: 30 * time.Second})
		p4procs[i] = p4.New(p4.Config{
			ID:       p4.ProcID(i),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(i), rt),
		})
	}
	resP4 := matmul.BuildP4(p4procs, cfg)
	start := time.Now()
	(&p4.Procgroup{Procs: p4procs}).RunReal()
	p4Wall := time.Since(start)
	if d := matmul.MaxAbsDiff(resP4.C, want); d > 1e-9 {
		panic(fmt.Sprintf("p4 result wrong by %g", d))
	}

	// --- NCS variant --------------------------------------------------------
	mem2 := transport.NewMem()
	ncsProcs := make([]*core.Proc, *workers+1)
	for i := range ncsProcs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("ncs-%d", i), IdleTimeout: 30 * time.Second})
		ncsProcs[i] = core.New(core.Config{
			ID:       core.ProcID(i),
			RT:       rt,
			Endpoint: mem2.Attach(transport.ProcID(i), rt),
		})
	}
	resNCS := matmul.BuildNCS(ncsProcs, cfg, 2)
	start = time.Now()
	runAll(ncsProcs)
	ncsWall := time.Since(start)
	if d := matmul.MaxAbsDiff(resNCS.C, want); d > 1e-9 {
		panic(fmt.Sprintf("NCS result wrong by %g", d))
	}

	fmt.Printf("C = A·B, %dx%d doubles, host + %d workers\n", *dim, *dim, *workers)
	fmt.Printf("  p4  (1 thread/process):  %8v  — verified against sequential\n", p4Wall.Round(time.Millisecond))
	fmt.Printf("  NCS (2 threads/process): %8v  — verified against sequential\n", ncsWall.Round(time.Millisecond))
}

func runAll(procs []*core.Proc) {
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
}
