// Distributed matrix multiplication, the paper's Table 1 workload, running
// for real: a host and N workers multiply an actual matrix over the
// in-process transport, in both the p4 style (Figure 13) and the NCS
// two-thread style (Figure 14), and the results are verified against a
// sequential multiply.
//
//	go run ./examples/matmul [-dim 256] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/matmul"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/p4"
	"repro/internal/transport"
)

func main() {
	dim := flag.Int("dim", 256, "matrix dimension")
	workers := flag.Int("workers", 4, "worker processes")
	flag.Parse()

	cfg := matmul.Config{Dim: *dim, Workers: *workers, Seed: 42}
	want := matmul.Multiply(matmul.RandomMatrix(*dim, 42), matmul.RandomMatrix(*dim, 43))

	// --- p4 variant -------------------------------------------------------
	mem := transport.NewMem()
	p4procs := make([]*p4.Process, *workers+1)
	for i := range p4procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p4-%d", i), IdleTimeout: 30 * time.Second})
		p4procs[i] = p4.New(p4.Config{
			ID:       p4.ProcID(i),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(i), rt),
		})
	}
	resP4 := matmul.BuildP4(p4procs, cfg)
	start := time.Now()
	(&p4.Procgroup{Procs: p4procs}).RunReal()
	p4Wall := time.Since(start)
	if d := matmul.MaxAbsDiff(resP4.C, want); d > 1e-9 {
		panic(fmt.Sprintf("p4 result wrong by %g", d))
	}

	// --- NCS variant --------------------------------------------------------
	mem2 := transport.NewMem()
	ncsProcs := make([]*core.Proc, *workers+1)
	for i := range ncsProcs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("ncs-%d", i), IdleTimeout: 30 * time.Second})
		ncsProcs[i] = core.New(core.Config{
			ID:       core.ProcID(i),
			RT:       rt,
			Endpoint: mem2.Attach(transport.ProcID(i), rt),
		})
	}
	resNCS := matmul.BuildNCS(ncsProcs, cfg, 2)
	start = time.Now()
	runAll(ncsProcs)
	ncsWall := time.Since(start)
	if d := matmul.MaxAbsDiff(resNCS.C, want); d > 1e-9 {
		panic(fmt.Sprintf("NCS result wrong by %g", d))
	}

	fmt.Printf("C = A·B, %dx%d doubles, host + %d workers\n", *dim, *dim, *workers)
	fmt.Printf("  p4  (1 thread/process):  %8v  — verified against sequential\n", p4Wall.Round(time.Millisecond))
	fmt.Printf("  NCS (2 threads/process): %8v  — verified against sequential\n", ncsWall.Round(time.Millisecond))

	// --- Collective distribution of B -------------------------------------
	// The workload's 1-to-many phase (every worker needs the whole B
	// matrix) as a collective: a Group pinned to a high-priority channel
	// broadcasts B down the binomial tree, against the old serial
	// one-Send-per-worker loop, with a pinned-channel barrier closing each
	// round. Stats come from the collective channel itself — the traffic
	// really rode the priority class.
	distributeB(*dim, *workers)
}

// distributeB times tree-vs-serial broadcast of a dim×dim float64 blob to
// every worker over a fresh mesh, collectives pinned to channel 3.
func distributeB(dim, workers int) {
	const rounds = 8
	const collChan core.ChannelID = 3
	payload := make([]byte, dim*dim*8)
	for i := range payload {
		payload[i] = byte(i)
	}

	run := func(fanout int) (time.Duration, core.ChannelStats) {
		mem := transport.NewMem()
		procs := make([]*core.Proc, workers+1)
		for i := range procs {
			rt := mts.New(mts.Config{Name: fmt.Sprintf("coll-%d", i), IdleTimeout: 30 * time.Second})
			procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
		}
		for i := range procs {
			for j := range procs {
				if i != j {
					procs[i].Open(core.ProcID(j), core.ChannelConfig{ID: collChan, Priority: 7})
				}
			}
		}
		members := make([]core.Addr, len(procs))
		for i := range members {
			members[i] = core.Addr{Proc: core.ProcID(i), Thread: 0}
		}
		for i := range procs {
			i := i
			procs[i].TCreate("dist", mts.PrioDefault, func(t *core.Thread) {
				g := procs[i].NewGroup(members, core.GroupConfig{Channel: collChan, Fanout: fanout})
				buf := make([]byte, len(payload))
				if i == 0 {
					copy(buf, payload)
				}
				for r := 0; r < rounds; r++ {
					if n := g.BcastInto(t, 0, buf); n != len(payload) {
						panic("short broadcast")
					}
					g.Barrier(t)
				}
			})
		}
		start := time.Now()
		runAll(procs)
		return time.Since(start), procs[0].DefaultChannel(1).Stats()
	}

	treeWall, treeDef := run(0)
	linWall, _ := run(1 << 20) // fanout >= N: the old serial linear path
	fmt.Printf("B distribution, %d rounds of %d KB to %d workers on priority channel %d:\n",
		rounds, len(payload)>>10, workers, collChan)
	fmt.Printf("  binomial tree + pinned barrier: %8v\n", treeWall.Round(time.Millisecond))
	fmt.Printf("  serial linear loop (baseline):  %8v\n", linWall.Round(time.Millisecond))
	if treeDef.Sent != 0 {
		panic("collective traffic leaked onto the default channel")
	}
	fmt.Println("  default channels carried 0 collective messages — the priority class took it all")
}

func runAll(procs []*core.Proc) {
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
}
