// Distributed decimation-in-frequency FFT, the paper's Table 3 workload
// (Figures 19-21), for real: a host distributes sample sets to worker
// processes (two threads each; the final butterfly exchange between a
// node's threads goes through shared memory), and every spectrum is
// verified against the direct O(M²) DFT.
//
//	go run ./examples/fft [-m 512] [-sets 4] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/fft"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func main() {
	m := flag.Int("m", 512, "sample points per set (power of two)")
	sets := flag.Int("sets", 4, "independent sample sets")
	workers := flag.Int("workers", 4, "worker processes (2 threads each)")
	flag.Parse()

	mem := transport.NewMem()
	procs := make([]*core.Proc, *workers+1)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("proc%d", i), IdleTimeout: 60 * time.Second})
		procs[i] = core.New(core.Config{
			ID:       core.ProcID(i),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(i), rt),
		})
	}

	cfg := fft.Config{M: *m, Sets: *sets, Workers: *workers, Seed: 7}
	res := fft.BuildNCS(procs, cfg)

	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	wall := time.Since(start)

	worst := 0.0
	for s, spectrum := range res.Spectra {
		want := fft.DFT(fft.RandomSignal(*m, 7+int64(s)))
		if d := fft.MaxAbsDiff(spectrum, want); d > worst {
			worst = d
		}
	}
	fmt.Printf("FFT: M=%d, %d sets, host + %d workers (2 threads each): wall %v\n",
		*m, *sets, *workers, wall.Round(time.Millisecond))
	fmt.Printf("  max |FFT - DFT| across all sets: %.2e\n", worst)
	if worst > 1e-6 {
		panic("distributed FFT diverged from the DFT oracle")
	}
	fmt.Println("verified: all spectra match the direct DFT")
}
