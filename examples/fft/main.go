// Distributed decimation-in-frequency FFT, the paper's Table 3 workload
// (Figures 19-21), for real: a host distributes sample sets to worker
// processes (two threads each; the final butterfly exchange between a
// node's threads goes through shared memory), and every spectrum is
// verified against the direct O(M²) DFT.
//
// Alongside the FFT, every process runs a phase-synchronization thread in
// a collective Group pinned to a high-priority channel: the dissemination
// barrier rides its own policed class while the FFT's bulk block exchange
// uses the default channels. Each process traces its collective lane
// (round-index marks included), and the run ends by printing the
// per-phase barrier-exit skew (max minus min across processes) computed
// from those lanes.
//
//	go run ./examples/fft [-m 512] [-sets 4] [-workers 4] [-phases 6]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/fft"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// spin burns roughly d of CPU in-thread: cooperative compute the barrier
// then has to absorb, so phases exhibit real skew.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1
	for time.Now().Before(deadline) {
		x = x*31 + 7
	}
	_ = x
}

func main() {
	m := flag.Int("m", 512, "sample points per set (power of two)")
	sets := flag.Int("sets", 4, "independent sample sets")
	workers := flag.Int("workers", 4, "worker processes (2 threads each)")
	phases := flag.Int("phases", 6, "collective synchronization phases")
	flag.Parse()

	// One wall clock shared by every runtime, so the per-process trace
	// lanes are comparable and cross-process phase skew is measurable.
	clock := vclock.NewRealClock()
	const collChan core.ChannelID = 9

	mem := transport.NewMem()
	nProcs := *workers + 1
	procs := make([]*core.Proc, nProcs)
	recorders := make([]*trace.Recorder, nProcs)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("proc%d", i), IdleTimeout: 60 * time.Second, Clock: clock})
		recorders[i] = trace.NewRecorder(clock)
		procs[i] = core.New(core.Config{
			ID:        core.ProcID(i),
			RT:        rt,
			Endpoint:  mem.Attach(transport.ProcID(i), rt),
			Tracer:    recorders[i],
			TraceName: fmt.Sprintf("p%d", i),
		})
	}
	// The collective class: high priority, its own channel toward every
	// peer, so barrier tokens overtake bulk FFT blocks in the send queues.
	for i := range procs {
		for j := range procs {
			if i != j {
				procs[i].Open(core.ProcID(j), core.ChannelConfig{ID: collChan, Priority: 7})
			}
		}
	}

	cfg := fft.Config{M: *m, Sets: *sets, Workers: *workers, Seed: 7}
	res := fft.BuildNCS(procs, cfg)

	// Phase-synchronization threads: one per process, all members of one
	// Group on the pinned channel. Staggered spin models uneven phase work.
	members := make([]core.Addr, nProcs)
	sync := make([]*core.Thread, nProcs)
	for i := range procs {
		i := i
		sync[i] = procs[i].TCreate("sync", mts.PrioDefault, func(t *core.Thread) {
			g := procs[i].NewGroup(members, core.GroupConfig{Channel: collChan})
			for ph := 0; ph < *phases; ph++ {
				t.Compute(0, func() { spin(time.Duration(1+(i+ph)%3) * time.Millisecond) })
				g.Barrier(t)
			}
		})
	}
	for i := range members {
		members[i] = core.Addr{Proc: core.ProcID(i), Thread: sync[i].Idx()}
	}

	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	wall := time.Since(start)

	worst := 0.0
	for s, spectrum := range res.Spectra {
		want := fft.DFT(fft.RandomSignal(*m, 7+int64(s)))
		if d := fft.MaxAbsDiff(spectrum, want); d > worst {
			worst = d
		}
	}
	fmt.Printf("FFT: M=%d, %d sets, host + %d workers (2 threads each): wall %v\n",
		*m, *sets, *workers, wall.Round(time.Millisecond))
	fmt.Printf("  max |FFT - DFT| across all sets: %.2e\n", worst)
	if worst > 1e-6 {
		panic("distributed FFT diverged from the DFT oracle")
	}
	fmt.Println("verified: all spectra match the direct DFT")

	// Phase skew, straight from the per-channel trace lanes: each process's
	// collective lane has one Comm segment per barrier; the spread of the
	// segment ends is how long the fastest process idled at that phase.
	rows := make([]*trace.Timeline, nProcs)
	for i, r := range recorders {
		r.CloseAll()
		rows[i] = r.Timeline(fmt.Sprintf("p%d/coll g0 ch%d", i, collChan))
		if rows[i] == nil {
			panic("collective lane missing from trace")
		}
	}
	skews := trace.PhaseSkew(rows, trace.Comm)
	fmt.Printf("collective phases on channel %d (priority 7), barrier-exit skew (max-min):\n", collChan)
	var worstSkew time.Duration
	for ph, s := range skews {
		if s > worstSkew {
			worstSkew = s
		}
		fmt.Printf("  phase %d: %8v\n", ph, s.Round(time.Microsecond))
	}
	fmt.Printf("  worst phase skew: %v over %d phases (%d round marks on p0's lane)\n",
		worstSkew.Round(time.Microsecond), len(skews), len(rows[0].Marks))
}
