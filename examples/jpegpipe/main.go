// The paper's JPEG compress/decompress pipeline (Table 2), for real: a
// synthetic continuous-tone image is split among compressor processes whose
// output streams to decompressor processes, NCS-style with two threads per
// process. Output fidelity is reported as PSNR against the original.
//
//	go run ./examples/jpegpipe [-workers 4] [-quality 75]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/jpegcodec"
	"repro/internal/apps/jpegpipe"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func main() {
	workers := flag.Int("workers", 4, "worker processes (even: half compress, half decompress)")
	quality := flag.Int("quality", 75, "codec quality 1..100")
	flag.Parse()

	const w, h = 960, 640 // ~600 KB grayscale, the paper's image size

	mem := transport.NewMem()
	procs := make([]*core.Proc, *workers+1)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("proc%d", i), IdleTimeout: 60 * time.Second})
		procs[i] = core.New(core.Config{
			ID:       core.ProcID(i),
			RT:       rt,
			Endpoint: mem.Attach(transport.ProcID(i), rt),
		})
	}

	cfg := jpegpipe.Config{W: w, H: h, Workers: *workers, Quality: *quality}
	res := jpegpipe.BuildNCS(procs, cfg)

	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	wall := time.Since(start)

	orig := jpegcodec.Synthetic(w, h)
	psnr := jpegcodec.PSNR(orig, res.Output)
	fmt.Printf("pipeline: %dx%d image (%d KB) through %d compressors + %d decompressors\n",
		w, h, w*h/1024, *workers/2, *workers/2)
	fmt.Printf("  compressed to %d KB (%.1f%% of raw), PSNR %.1f dB, wall %v\n",
		res.CompressedBytes/1024, float64(res.CompressedBytes)/float64(w*h)*100,
		psnr, wall.Round(time.Millisecond))
	if psnr < 30 {
		panic("reconstruction quality below 30 dB — pipeline corrupted the image")
	}
	fmt.Println("verified: reconstruction within codec tolerance")
}
