// Quickstart: two NCS processes on an emulated ATM fabric (real AAL5 cells
// over UDP loopback). Process 0 pings, process 1 pongs; then both measure
// how multithreading overlaps a slow transfer with computation — the
// paper's core idea in 40 lines of application code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/udpatm"
)

func main() {
	// NCS_init: one process per "workstation", joined by the ATM-over-UDP
	// fabric.
	fabric := udpatm.NewNetwork()
	procs := make([]*core.Proc, 2)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
		ep, err := fabric.Attach(transport.ProcID(i), rt)
		if err != nil {
			panic(err)
		}
		defer ep.Close()
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: ep})
	}

	// --- Part 1: ping-pong latency --------------------------------------
	const rounds = 100
	var rtt time.Duration
	procs[0].TCreate("pinger", mts.PrioDefault, func(t *core.Thread) {
		payload := []byte("ping")
		start := time.Now()
		for i := 0; i < rounds; i++ {
			t.Send(0, 1, payload)
			t.Recv(core.Any, 1)
		}
		rtt = time.Since(start) / rounds
	})
	procs[1].TCreate("ponger", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < rounds; i++ {
			data, from := t.Recv(core.Any, 0)
			t.Send(from.Thread, from.Proc, data)
		}
	})

	// --- Part 2: overlap demo --------------------------------------------
	// Process 1 runs two threads: one waits for a 1 MB block, the other
	// crunches numbers meanwhile. NCS_recv blocks only the waiting thread.
	var crunched int
	procs[1].TCreate("receiver", mts.PrioDefault, func(t *core.Thread) {
		data, _ := t.Recv(core.Any, 0)
		fmt.Printf("receiver: got %d KB while sibling crunched %d rounds\n", len(data)/1024, crunched)
	})
	procs[1].TCreate("cruncher", mts.PrioDefault, func(t *core.Thread) {
		for i := 0; i < 50; i++ {
			t.Compute(0, func() {
				s := 0.0
				for j := 0; j < 100_000; j++ {
					s += float64(j) * 1.0000001
				}
				_ = s
			})
			crunched++
			t.Yield() // cooperative: give the receive thread a chance
		}
	})
	procs[0].TCreate("bulk-sender", mts.PrioDefault, func(t *core.Thread) {
		// Addressed to process 1's thread 1, the "receiver" — thread 0 is
		// the ponger.
		t.Send(1, 1, make([]byte, 1<<20))
	})

	// NCS_start on every process.
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
	fmt.Printf("ping-pong over AAL5 cells on loopback: %v round-trip\n", rtt)
	fmt.Println("quickstart complete")
}
