package netsim

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// FrameMeshConfig parameterizes a frame-granular switched mesh (see
// NewFrameMesh).
type FrameMeshConfig struct {
	// HostLinkBps is the host<->switch payload rate.
	HostLinkBps float64
	// HostLinkProp is the host<->switch propagation delay.
	HostLinkProp time.Duration
	// SwitchLatency is the per-frame forwarding latency through the fabric.
	SwitchLatency time.Duration
}

// NewFrameMesh builds n hosts star-wired through one output-queued switch at
// *frame* granularity: a whole wire frame is one transmission unit, routed
// by Unit.DstHost instead of a provisioned VC. The cell-granular NewATMLAN
// cannot serve thousand-host meshes — its VCFor numbering addresses at most
// 255 hosts and its full VC mesh is O(n²) routes — while this fabric keeps
// O(n) links, no VC table, and one delivery event per frame, which is what
// lets a 1024-proc virtual mesh stay cheap. Serialization on the sender's
// uplink, the forwarding latency, and serialization on the receiver's
// downlink still model the NYNET per-hop costs, so contention at a hot
// receiver (incast) appears as downlink queueing exactly as on the
// cell-granular model.
func NewFrameMesh(eng *sim.Engine, n int, cfg FrameMeshConfig) *Network {
	if n < 1 {
		panic("netsim: frame mesh needs at least one host")
	}
	net := &Network{eng: eng, kind: "frame-mesh", receive: make([]Port, n)}
	down := make([]*Link, n)
	for h := 0; h < n; h++ {
		down[h] = NewLink(eng, LinkConfig{
			Name:          fmt.Sprintf("down%d", h),
			BitsPerSecond: cfg.HostLinkBps,
			Propagation:   cfg.HostLinkProp,
		}, hostPort{net, h})
	}
	// The fabric: forward each frame to the destination's downlink after
	// the switching latency. Output-queued — contention materializes on the
	// downlink's busy horizon, not here.
	demux := PortFunc(func(u Unit) {
		out := down[u.DstHost]
		if cfg.SwitchLatency > 0 {
			eng.Schedule(cfg.SwitchLatency, func() { out.Send(u) })
			return
		}
		out.Send(u)
	})
	for h := 0; h < n; h++ {
		up := NewLink(eng, LinkConfig{
			Name:          fmt.Sprintf("up%d", h),
			BitsPerSecond: cfg.HostLinkBps,
			Propagation:   cfg.HostLinkProp,
		}, demux)
		net.paths = append(net.paths, hostUplink{up})
	}
	net.down = down
	return net
}
