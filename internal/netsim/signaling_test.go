package netsim

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/mts"
	"repro/internal/sim"
)

func TestSigMessageCodec(t *testing.T) {
	m := atm.SigMessage{
		Type: atm.SigSetup, CallRef: 0x12345678,
		Caller: 3, Called: 7,
		Forward: atm.VC{VPI: 1, VCI: 300}, Backward: atm.VC{VPI: 0, VCI: 301},
	}
	got, err := atm.UnmarshalSig(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("roundtrip: %+v != %+v", got, m)
	}
}

func TestSigCodecRejectsGarbage(t *testing.T) {
	if _, err := atm.UnmarshalSig([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message accepted")
	}
	m := atm.SigMessage{Type: atm.SigSetup}.Marshal()
	m[0] = 99
	if _, err := atm.UnmarshalSig(m); err == nil {
		t.Fatal("bad type accepted")
	}
}

// buildSVCLAN wires a 3-host ATM LAN with signaling enabled and one
// Signaler per host attached as a pre-stage on the host port.
func buildSVCLAN(t *testing.T) (*sim.Engine, *Network, []*sim.Node, []*Signaler, [][]Unit) {
	t.Helper()
	eng := sim.NewEngine()
	eng.SetMaxTime(time.Minute)
	net := NewATMLAN(eng, 3, ATMLANConfig{HostLinkBps: 100e6})
	net.EnableSVC(1000)
	nodes := make([]*sim.Node, 3)
	sgs := make([]*Signaler, 3)
	data := make([][]Unit, 3)
	for h := 0; h < 3; h++ {
		h := h
		nodes[h] = eng.NewNode("host")
		sgs[h] = NewSignaler(nodes[h], net, h)
		net.AttachHost(h, PortFunc(func(u Unit) {
			if sgs[h].HandleUnit(u) {
				return
			}
			data[h] = append(data[h], u)
		}))
	}
	return eng, net, nodes, sgs, data
}

func TestPlaceCallEstablishesVC(t *testing.T) {
	eng, net, nodes, sgs, data := buildSVCLAN(t)
	var send, recv atm.VC
	nodes[0].RT().Create("caller", mts.PrioDefault, func(th *mts.Thread) {
		var err error
		send, recv, err = sgs[0].PlaceCall(th, 1)
		if err != nil {
			t.Error(err)
			return
		}
		// Use the fresh SVC immediately: one cell toward host 1.
		cell := atm.Cell{Header: atm.Header{VPI: send.VPI, VCI: send.VCI}}
		net.PathFor(0).Send(Unit{WireBytes: atm.CellSize, DstHost: 1, VC: send, Payload: cell})
	})
	eng.Run()
	if send == (atm.VC{}) || recv == (atm.VC{}) {
		t.Fatal("no VCs assigned")
	}
	if send == recv {
		t.Fatal("forward and backward VCs collide")
	}
	if len(data[1]) != 1 || data[1][0].VC != send {
		t.Fatalf("data cell not delivered on the SVC: %+v", data[1])
	}
	if len(sgs[1].Accepted()) != 1 {
		t.Fatalf("callee accepted %d calls", len(sgs[1].Accepted()))
	}
}

func TestConcurrentCallsGetDistinctVCs(t *testing.T) {
	eng, _, nodes, sgs, _ := buildSVCLAN(t)
	vcs := map[atm.VC]bool{}
	for caller := 0; caller < 2; caller++ {
		caller := caller
		nodes[caller].RT().Create("caller", mts.PrioDefault, func(th *mts.Thread) {
			s, r, err := sgs[caller].PlaceCall(th, 2)
			if err != nil {
				t.Error(err)
				return
			}
			if vcs[s] || vcs[r] {
				t.Errorf("VC reuse: %v %v", s, r)
			}
			vcs[s], vcs[r] = true, true
		})
	}
	eng.Run()
	if len(vcs) != 4 {
		t.Fatalf("expected 4 distinct VCs, got %d", len(vcs))
	}
}

func TestOnAcceptCallback(t *testing.T) {
	eng, _, nodes, sgs, _ := buildSVCLAN(t)
	var acceptedFrom int32 = -1
	sgs[2].OnAccept(func(m atm.SigMessage) { acceptedFrom = m.Caller })
	nodes[1].RT().Create("caller", mts.PrioDefault, func(th *mts.Thread) {
		sgs[1].PlaceCall(th, 2)
	})
	eng.Run()
	if acceptedFrom != 1 {
		t.Fatalf("accept callback saw caller %d, want 1", acceptedFrom)
	}
}

func TestEnableSVCRejectsEthernet(t *testing.T) {
	eng := sim.NewEngine()
	net := NewEthernetLAN(eng, 2, EthernetConfig{BitsPerSecond: 1e7})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableSVC on Ethernet accepted")
		}
	}()
	net.EnableSVC(1000)
}
