package netsim

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/mts"
	"repro/internal/sim"
)

// Switched-VC support: the switch terminates the signaling channel (VPI 0,
// VCI 5), allocates VC pairs, installs forwarding entries, and relays call
// control between hosts. Host-side, a Signaler offers the blocking
// PlaceCall the "ATM API" exposes to NCS.

// svcState is the switch-side half of signaling.
type svcState struct {
	nextVCI  uint16
	calls    map[uint32]*svcCall
	nextRef  uint32
	downlink func(host int) *Link
}

type svcCall struct {
	msg atm.SigMessage
}

// EnableSignaling turns on SVC handling at the switch. downlink maps a
// host index to the switch's output link toward it. Allocated VCIs start
// at base.
func (s *Switch) EnableSignaling(base uint16, downlink func(host int) *Link) {
	s.svc = &svcState{
		nextVCI:  base,
		calls:    make(map[uint32]*svcCall),
		downlink: downlink,
	}
}

// handleSignal processes a signaling cell at the switch.
func (s *Switch) handleSignal(u Unit) {
	cell, ok := u.Payload.(atm.Cell)
	if !ok {
		s.dropped++
		return
	}
	msg, err := atm.UnmarshalSig(sigPayload(cell))
	if err != nil {
		s.dropped++
		return
	}
	switch msg.Type {
	case atm.SigSetup:
		// Allocate the VC pair and install routes in both directions.
		fwd := atm.VC{VPI: 0, VCI: s.svc.nextVCI}
		bwd := atm.VC{VPI: 0, VCI: s.svc.nextVCI + 1}
		s.svc.nextVCI += 2
		s.Route(fwd, s.svc.downlink(int(msg.Called)))
		s.Route(bwd, s.svc.downlink(int(msg.Caller)))
		msg.Forward, msg.Backward = fwd, bwd
		s.svc.calls[msg.CallRef] = &svcCall{msg: msg}
		s.sendSignal(msg, int(msg.Called))
	case atm.SigConnect, atm.SigReject:
		// Relay the called party's answer back to the caller.
		if _, ok := s.svc.calls[msg.CallRef]; !ok {
			s.dropped++
			return
		}
		if msg.Type == atm.SigReject {
			delete(s.svc.calls, msg.CallRef)
		}
		s.sendSignal(msg, int(msg.Caller))
	case atm.SigRelease:
		if call, ok := s.svc.calls[msg.CallRef]; ok {
			delete(s.table, call.msg.Forward)
			delete(s.table, call.msg.Backward)
			delete(s.svc.calls, msg.CallRef)
		}
		msg.Type = atm.SigReleaseComplete
		s.sendSignal(msg, int(msg.Caller))
	}
}

// sendSignal emits a one-cell signaling message toward a host.
func (s *Switch) sendSignal(msg atm.SigMessage, host int) {
	s.svc.downlink(host).Send(signalUnit(msg, host))
}

// signalUnit wraps a signaling message into a single-cell unit.
func signalUnit(msg atm.SigMessage, dstHost int) Unit {
	var cell atm.Cell
	cell.Header = atm.Header{VPI: atm.SignalVC.VPI, VCI: atm.SignalVC.VCI, PT: 0x1}
	payload := msg.Marshal()
	cell.Payload[0] = byte(len(payload))
	copy(cell.Payload[1:], payload)
	return Unit{WireBytes: atm.CellSize, DstHost: dstHost, VC: atm.SignalVC, Payload: cell}
}

// sigPayload extracts the signaling bytes from a one-cell message.
func sigPayload(cell atm.Cell) []byte {
	n := int(cell.Payload[0])
	if n <= 0 || n > atm.PayloadSize-1 {
		return nil
	}
	return cell.Payload[1 : 1+n]
}

// Signaler is a host's call-control entity. It owns the host's signaling
// channel and offers blocking call placement to NCS-level code. Incoming
// calls are auto-accepted (the listener model NCS needs).
type Signaler struct {
	node *sim.Node
	net  *Network
	host int

	nextRef uint32
	waiting map[uint32]*placedCall
	// accepted records VCs handed to us by incoming SETUPs: send on
	// Backward, receive on Forward.
	accepted []atm.SigMessage
	onAccept func(atm.SigMessage)
}

type placedCall struct {
	t      *mts.Thread
	answer *atm.SigMessage
}

// NewSignaler attaches call control for a host. Signaling cells arriving at
// the host must be routed here via HandleUnit (see SimATM integration or a
// direct Port split).
func NewSignaler(node *sim.Node, net *Network, host int) *Signaler {
	return &Signaler{
		node:    node,
		net:     net,
		host:    host,
		nextRef: uint32(host+1) << 16,
		waiting: make(map[uint32]*placedCall),
	}
}

// OnAccept registers a callback for auto-accepted incoming calls.
func (sg *Signaler) OnAccept(fn func(atm.SigMessage)) { sg.onAccept = fn }

// Accepted returns the calls this host has accepted.
func (sg *Signaler) Accepted() []atm.SigMessage { return sg.accepted }

// PlaceCall parks the calling thread until the network answers with the
// VC pair for (this host -> called). It returns send (Forward) and receive
// (Backward) channels.
func (sg *Signaler) PlaceCall(t *mts.Thread, called int) (send, recv atm.VC, err error) {
	sg.nextRef++
	ref := sg.nextRef
	msg := atm.SigMessage{
		Type:    atm.SigSetup,
		CallRef: ref,
		Caller:  int32(sg.host),
		Called:  int32(called),
	}
	pc := &placedCall{t: t}
	sg.waiting[ref] = pc
	sg.net.PathFor(sg.host).Send(signalUnit(msg, -1)) // DstHost unused toward switch
	t.Park("atm call setup")
	delete(sg.waiting, ref)
	ans := pc.answer
	if ans == nil || ans.Type != atm.SigConnect {
		return atm.VC{}, atm.VC{}, fmt.Errorf("netsim: call to host %d rejected", called)
	}
	return ans.Forward, ans.Backward, nil
}

// HandleUnit processes a signaling unit delivered to this host. It reports
// whether the unit was consumed (true) or is data for the endpoint (false).
func (sg *Signaler) HandleUnit(u Unit) bool {
	if u.VC != atm.SignalVC {
		return false
	}
	cell, ok := u.Payload.(atm.Cell)
	if !ok {
		return true
	}
	msg, err := atm.UnmarshalSig(sigPayload(cell))
	if err != nil {
		return true
	}
	switch msg.Type {
	case atm.SigSetup:
		// Incoming call: auto-accept. We receive on Forward, send on
		// Backward.
		sg.accepted = append(sg.accepted, msg)
		if sg.onAccept != nil {
			sg.onAccept(msg)
		}
		answer := msg
		answer.Type = atm.SigConnect
		sg.net.PathFor(sg.host).Send(signalUnit(answer, -1))
	case atm.SigConnect, atm.SigReject, atm.SigReleaseComplete:
		if pc, ok := sg.waiting[msg.CallRef]; ok {
			m := msg
			pc.answer = &m
			sg.node.RT().Unblock(pc.t, false)
		}
	}
	return true
}
