// Package netsim models the two networks of the paper's evaluation in
// virtual time: the shared 10 Mbps Ethernet LAN of SPARC ELCs, and the
// NYNET ATM testbed (Figure 1) — hosts on 140 Mbps TAXI links into FORE
// switches, with OC-3/DS-3/OC-48 trunks for the wide-area experiments.
//
// The model is unit-granular: a transmission unit is an ATM cell or an
// Ethernet frame. Each Link is a FIFO server with a serialization rate and
// a propagation delay, so competing transfers on a shared resource (the
// Ethernet medium, a trunk between switches) serialize, while transfers on
// disjoint switched paths proceed in parallel — the structural difference
// between the two platforms that Tables 1-3 reflect.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// Unit is one transmission unit (an ATM cell or an Ethernet frame).
type Unit struct {
	// WireBytes is the size on the wire, including framing.
	WireBytes int
	// SrcHost is the transmitting host ID; the shared-Ethernet contention
	// model uses it to count distinct contending stations.
	SrcHost int
	// DstHost is the destination host ID, used by media and switches for
	// delivery and (for Ethernet) addressing.
	DstHost int
	// VC is the ATM virtual channel; zero value for Ethernet frames.
	VC atm.VC
	// Payload carries the upper layer's unit (e.g. an atm.Cell or a
	// message fragment descriptor).
	Payload any
}

// Port consumes delivered units. Deliver runs in the engine's scheduler
// domain at the unit's arrival time.
type Port interface {
	Deliver(u Unit)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(u Unit)

// Deliver implements Port.
func (f PortFunc) Deliver(u Unit) { f(u) }

// Link is a unidirectional FIFO link: units serialize at Rate and arrive
// after the propagation delay. Queueing is implicit in the busy horizon.
type Link struct {
	eng  *sim.Engine
	name string
	// bps is the usable payload bit rate.
	bps float64
	// prop is the propagation delay.
	prop time.Duration
	// perUnit is a fixed per-unit latency (switch forwarding, adapter
	// overhead) added before serialization.
	perUnit time.Duration
	dst     Port

	busyUntil vclock.Time

	// Stats.
	unitsSent int64
	bytesSent int64
	busyTime  time.Duration
}

// LinkConfig parameterizes a Link.
type LinkConfig struct {
	Name          string
	BitsPerSecond float64
	Propagation   time.Duration
	PerUnit       time.Duration
}

// NewLink creates a link delivering into dst.
func NewLink(eng *sim.Engine, cfg LinkConfig, dst Port) *Link {
	if cfg.BitsPerSecond <= 0 {
		panic("netsim: link needs positive rate")
	}
	return &Link{
		eng:     eng,
		name:    cfg.Name,
		bps:     cfg.BitsPerSecond,
		prop:    cfg.Propagation,
		perUnit: cfg.PerUnit,
		dst:     dst,
	}
}

// SetDst re-targets the link (used while wiring topologies).
func (l *Link) SetDst(p Port) { l.dst = p }

// Name returns the link label.
func (l *Link) Name() string { return l.name }

// UnitsSent returns the number of units transmitted.
func (l *Link) UnitsSent() int64 { return l.unitsSent }

// BytesSent returns the number of wire bytes transmitted.
func (l *Link) BytesSent() int64 { return l.bytesSent }

// BusyTime returns cumulative serialization time.
func (l *Link) BusyTime() time.Duration { return l.busyTime }

// Utilization returns busy time as a fraction of elapsed virtual time.
func (l *Link) Utilization() float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(l.busyTime) / float64(now)
}

// serialization returns the time to clock n bytes onto the wire.
func (l *Link) serialization(n int) time.Duration {
	return time.Duration(float64(n*8) / l.bps * float64(time.Second))
}

// Send enqueues a unit. It returns the virtual time at which the unit will
// finish serializing (the sender's channel becomes free); arrival at the
// far end is that plus propagation.
func (l *Link) Send(u Unit) vclock.Time {
	now := l.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txDone := start.Add(l.perUnit + l.serialization(u.WireBytes))
	l.busyUntil = txDone
	l.unitsSent++
	l.bytesSent += int64(u.WireBytes)
	l.busyTime += l.serialization(u.WireBytes)
	arrive := txDone.Add(l.prop)
	dst := l.dst
	l.eng.ScheduleAt(arrive, func() { dst.Deliver(u) })
	return txDone
}

// FreeAt returns when the link's transmitter becomes idle.
func (l *Link) FreeAt() vclock.Time { return l.busyUntil }

// Switch is an output-queued ATM cell switch: cells are forwarded by
// VPI/VCI to an output link after a fixed switching latency. Unknown VCs
// are counted and dropped, as a real switch would discard them.
type Switch struct {
	eng     *sim.Engine
	name    string
	latency time.Duration
	table   map[atm.VC]*Link
	dropped int64
	// svc holds switched-VC signaling state when enabled (signaling.go).
	svc *svcState
	// police holds per-VC usage parameter control (GCRA); non-conforming
	// cells are discarded and counted in policed.
	police  map[atm.VC]*atm.GCRA
	policed int64
}

// NewSwitch creates an empty switch.
func NewSwitch(eng *sim.Engine, name string, latency time.Duration) *Switch {
	return &Switch{eng: eng, name: name, latency: latency, table: make(map[atm.VC]*Link)}
}

// Route installs a forwarding entry: cells on vc leave through out.
func (s *Switch) Route(vc atm.VC, out *Link) { s.table[vc] = out }

// Unroute removes a forwarding entry; cells still in flight on vc are
// dropped on arrival, exactly as a fabric discards traffic after a circuit
// is released. Idempotent.
func (s *Switch) Unroute(vc atm.VC) { delete(s.table, vc) }

// Police installs usage parameter control on a VC: cells beyond the GCRA
// contract are discarded (drop policy; real switches may instead tag CLP).
func (s *Switch) Police(vc atm.VC, g *atm.GCRA) {
	if s.police == nil {
		s.police = make(map[atm.VC]*atm.GCRA)
	}
	s.police[vc] = g
}

// Dropped returns the number of cells discarded for want of a route.
func (s *Switch) Dropped() int64 { return s.dropped }

// Policed returns the number of cells discarded by UPC enforcement.
func (s *Switch) Policed() int64 { return s.policed }

// Deliver implements Port: an arriving cell is forwarded; signaling cells
// are terminated at the switch's call-control entity when SVCs are enabled.
func (s *Switch) Deliver(u Unit) {
	if s.svc != nil && u.VC == atm.SignalVC {
		if s.latency > 0 {
			s.eng.Schedule(s.latency, func() { s.handleSignal(u) })
		} else {
			s.handleSignal(u)
		}
		return
	}
	if g, ok := s.police[u.VC]; ok && !g.Conforms(time.Duration(s.eng.Now())) {
		s.policed++
		return
	}
	out, ok := s.table[u.VC]
	if !ok {
		s.dropped++
		return
	}
	if s.latency > 0 {
		s.eng.Schedule(s.latency, func() { out.Send(u) })
	} else {
		out.Send(u)
	}
}

// Ethernet is a shared half-duplex medium: every frame from every host
// serializes on one channel. This is the structural property that makes the
// paper's Ethernet rows degrade as node count grows (Table 2's p4 column
// gets *worse* with more nodes).
type Ethernet struct {
	eng *sim.Engine
	// medium is the single shared channel; frames from all hosts pass
	// through it.
	medium *Link
	hosts  map[int]Port
	slot   time.Duration
	// pendingUntil tracks, per source host, when its queued frames will
	// have finished serializing; hosts with a future horizon are
	// "contending".
	pendingUntil map[int]vclock.Time
	backoffTime  time.Duration
}

// EthernetConfig parameterizes the medium.
type EthernetConfig struct {
	BitsPerSecond float64       // payload-effective rate
	Propagation   time.Duration // end-to-end propagation
	PerFrame      time.Duration // preamble + inter-frame gap
	// ContentionSlot, when positive, approximates CSMA/CD collision
	// backoff: each frame pays one slot per *other* station that has
	// frames outstanding on the medium at enqueue time. Zero disables
	// the model (the calibrated platforms default to off; the Table 2
	// divergence ablation turns it on).
	ContentionSlot time.Duration
}

// NewEthernet creates the shared medium.
func NewEthernet(eng *sim.Engine, cfg EthernetConfig) *Ethernet {
	e := &Ethernet{
		eng:          eng,
		hosts:        make(map[int]Port),
		slot:         cfg.ContentionSlot,
		pendingUntil: make(map[int]vclock.Time),
	}
	e.medium = NewLink(eng, LinkConfig{
		Name:          "ether",
		BitsPerSecond: cfg.BitsPerSecond,
		Propagation:   cfg.Propagation,
		PerUnit:       cfg.PerFrame,
	}, PortFunc(e.deliverToHost))
	return e
}

// Attach registers a host's receive port.
func (e *Ethernet) Attach(hostID int, p Port) { e.hosts[hostID] = p }

// Send transmits a frame to its destination host across the shared medium,
// paying collision backoff when other stations are contending.
func (e *Ethernet) Send(u Unit) vclock.Time {
	if e.slot > 0 {
		now := e.eng.Now()
		contenders := 0
		for h, until := range e.pendingUntil {
			if h != u.SrcHost && until > now {
				contenders++
			}
		}
		if contenders > 0 {
			// Backoff occupies the medium: model it as stretching this
			// frame's serialization.
			penalty := time.Duration(contenders) * e.slot
			e.backoffTime += penalty
			u.WireBytes += int(float64(penalty) / float64(time.Second) * e.medium.bps / 8)
		}
	}
	done := e.medium.Send(u)
	if e.slot > 0 {
		e.pendingUntil[u.SrcHost] = done
	}
	return done
}

// BackoffTime reports cumulative modelled collision backoff.
func (e *Ethernet) BackoffTime() time.Duration { return e.backoffTime }

// Medium exposes the shared channel for utilization reporting.
func (e *Ethernet) Medium() *Link { return e.medium }

func (e *Ethernet) deliverToHost(u Unit) {
	if p, ok := e.hosts[u.DstHost]; ok {
		p.Deliver(u)
	}
}

// Path is what a host-level transport needs: somewhere to put units bound
// for another host, with the network deciding how they get there.
type Path interface {
	// Send transmits a unit toward u.DstHost and returns the local
	// transmitter-free time.
	Send(u Unit) vclock.Time
	// FreeAt returns when the local transmitter is next idle.
	FreeAt() vclock.Time
}

// hostUplink is a host's private uplink into a switch (ATM topologies).
type hostUplink struct{ link *Link }

func (h hostUplink) Send(u Unit) vclock.Time { return h.link.Send(u) }
func (h hostUplink) FreeAt() vclock.Time     { return h.link.FreeAt() }

// sharedMedium adapts Ethernet to Path.
type sharedMedium struct{ e *Ethernet }

func (s sharedMedium) Send(u Unit) vclock.Time { return s.e.Send(u) }
func (s sharedMedium) FreeAt() vclock.Time     { return s.e.medium.FreeAt() }

// Network is a wired topology: per-host transmit paths and receive ports.
type Network struct {
	eng      *sim.Engine
	paths    []Path
	fpaths   []Path // fault-checking wrappers around paths, built lazily
	receive  []Port // set by AttachHost
	kind     string
	switches []*Switch
	ether    *Ethernet
	// down maps host index to the switch downlink toward it (single-
	// switch ATM LANs); signaling uses it to wire dynamic routes.
	down []*Link

	// Fault state (crash/partition injection for the failure-domain chaos
	// suites). killed hosts blackhole all traffic in both directions; cut
	// drops directed host pairs. Enforced at the send side (faultPath,
	// where the true source is known even for cell units that leave
	// Unit.SrcHost zero) and again at delivery (hostPort, so units already
	// in flight when a host is killed are discarded on arrival).
	killed     map[int]bool
	cut        map[[2]int]bool
	faultDrops int64
}

// KillHost crashes host h: every unit to or from it is silently dropped
// until ReviveHost. Idempotent.
func (n *Network) KillHost(h int) {
	if n.killed == nil {
		n.killed = make(map[int]bool)
	}
	n.killed[h] = true
}

// ReviveHost undoes KillHost. Idempotent.
func (n *Network) ReviveHost(h int) { delete(n.killed, h) }

// Partition cuts the link between hosts a and b in both directions; traffic
// to and from every other host is unaffected. Idempotent.
func (n *Network) Partition(a, b int) {
	if n.cut == nil {
		n.cut = make(map[[2]int]bool)
	}
	n.cut[[2]int{a, b}] = true
	n.cut[[2]int{b, a}] = true
}

// Heal undoes Partition for the pair. Idempotent.
func (n *Network) Heal(a, b int) {
	delete(n.cut, [2]int{a, b})
	delete(n.cut, [2]int{b, a})
}

// ScheduleFlap schedules a link flap: the a<->b pair partitions `after`
// from now and heals `dur` later, all in virtual time.
func (n *Network) ScheduleFlap(a, b int, after, dur time.Duration) {
	n.eng.Schedule(after, func() { n.Partition(a, b) })
	n.eng.Schedule(after+dur, func() { n.Heal(a, b) })
}

// FaultDrops returns the number of units discarded by crash/partition
// injection.
func (n *Network) FaultDrops() int64 { return n.faultDrops }

// faultPath wraps a host's transmit path with the crash/partition check:
// the wrapper knows the true transmitting host, which the unit itself may
// not carry (cell-granular NICs leave SrcHost zero).
type faultPath struct {
	n     *Network
	src   int
	inner Path
}

func (fp faultPath) Send(u Unit) vclock.Time {
	n := fp.n
	if n.killed[fp.src] || n.killed[u.DstHost] || n.cut[[2]int{fp.src, u.DstHost}] {
		n.faultDrops++
		// Nothing serializes: the transmitter is free immediately.
		return fp.inner.FreeAt()
	}
	return fp.inner.Send(u)
}

func (fp faultPath) FreeAt() vclock.Time { return fp.inner.FreeAt() }

// Kind returns a label ("ethernet", "nynet-lan", "nynet-wan").
func (n *Network) Kind() string { return n.kind }

// Hosts returns the number of attached host slots.
func (n *Network) Hosts() int { return len(n.paths) }

// PathFor returns host h's transmit path (wrapped with the fault check, so
// callers may cache it: kill/partition state is read per send).
func (n *Network) PathFor(h int) Path {
	if n.fpaths == nil {
		n.fpaths = make([]Path, len(n.paths))
		for i, p := range n.paths {
			n.fpaths[i] = faultPath{n: n, src: i, inner: p}
		}
	}
	return n.fpaths[h]
}

// AttachHost sets host h's receive port. Delivery stays funneled through
// hostPort (even on the shared Ethernet) so the fault check sees every
// arriving unit.
func (n *Network) AttachHost(h int, p Port) {
	n.receive[h] = p
	if n.ether != nil {
		n.ether.Attach(h, hostPort{n, h})
	}
}

// Switches returns the topology's switches (empty for Ethernet).
func (n *Network) Switches() []*Switch { return n.switches }

// EthernetMedium returns the shared channel, or nil for switched nets.
func (n *Network) EthernetMedium() *Link {
	if n.ether == nil {
		return nil
	}
	return n.ether.Medium()
}

// hostPort forwards deliveries to whatever the host attached later.
type hostPort struct {
	net *Network
	id  int
}

func (hp hostPort) Deliver(u Unit) {
	if hp.net.killed[hp.id] {
		hp.net.faultDrops++
		return
	}
	if p := hp.net.receive[hp.id]; p != nil {
		p.Deliver(u)
	}
}

// VCFor returns the conventional VC used for traffic from host src to host
// dst in generated topologies: VPI 0, VCI = 64 + src*256 + dst. VCI space
// is 16 bits, so up to 255 hosts are addressable — far beyond the paper's 8.
func VCFor(src, dst int) atm.VC {
	return atm.VC{VPI: 0, VCI: uint16(64 + src*256 + dst)}
}

// VCForChan returns the VC carrying NCS channel ch from src to dst: the
// channel ID becomes the VPI over the same VCI mesh, so every channel of a
// host pair rides its own virtual circuit (the paper's one-QoS-per-VC
// model, §4). Channel 0 is identical to VCFor — the default channel rides
// the pre-provisioned mesh.
func VCForChan(src, dst int, ch uint16) atm.VC {
	return atm.VC{VPI: uint8(ch), VCI: uint16(64 + src*256 + dst)}
}

// InstallChannelRoutes provisions the full-mesh routes for channel ch's
// VPI on a single-switch ATM LAN, mirroring what NewATMLAN installs for
// the default mesh (VPI 0). Call once per explicit channel ID in use; a
// cell arriving on an unprovisioned VC is dropped by the switch, exactly
// as a real fabric discards traffic without a circuit.
func (n *Network) InstallChannelRoutes(ch uint16) {
	if n.kind != "nynet-lan" || len(n.switches) != 1 || n.down == nil {
		panic("netsim: InstallChannelRoutes requires a single-switch ATM LAN")
	}
	hosts := len(n.down)
	for s := 0; s < hosts; s++ {
		for d := s + 1; d < hosts; d++ {
			n.InstallChannelRoute(s, d, ch)
		}
	}
}

// InstallChannelRoute provisions the pair of directed routes carrying NCS
// channel ch between hosts a and b on a single-switch ATM LAN — the
// per-call analogue of InstallChannelRoutes, used by signaled channel
// setup. Idempotent.
func (n *Network) InstallChannelRoute(a, b int, ch uint16) {
	if n.kind != "nynet-lan" || len(n.switches) != 1 || n.down == nil {
		panic("netsim: InstallChannelRoute requires a single-switch ATM LAN")
	}
	if a == b {
		return
	}
	sw := n.switches[0]
	sw.Route(VCForChan(a, b, ch), n.down[b])
	sw.Route(VCForChan(b, a, ch), n.down[a])
}

// RemoveChannelRoute releases the pair of directed routes installed by
// InstallChannelRoute; cells still in flight on the VC are discarded by
// the switch. Idempotent.
func (n *Network) RemoveChannelRoute(a, b int, ch uint16) {
	if n.kind != "nynet-lan" || len(n.switches) != 1 || n.down == nil {
		panic("netsim: RemoveChannelRoute requires a single-switch ATM LAN")
	}
	if a == b {
		return
	}
	sw := n.switches[0]
	sw.Unroute(VCForChan(a, b, ch))
	sw.Unroute(VCForChan(b, a, ch))
}

// NewEthernetLAN builds the paper's comparison platform: n hosts on one
// shared 10 Mbps Ethernet.
func NewEthernetLAN(eng *sim.Engine, n int, cfg EthernetConfig) *Network {
	net := &Network{eng: eng, kind: "ethernet", receive: make([]Port, n)}
	net.ether = NewEthernet(eng, cfg)
	for h := 0; h < n; h++ {
		net.paths = append(net.paths, sharedMedium{net.ether})
		net.ether.Attach(h, hostPort{net, h})
	}
	return net
}

// ATMLANConfig parameterizes a single-switch ATM LAN (the SUN/ATM LAN of
// §2: IPXs into one FORE switch over 140 Mbps TAXI).
type ATMLANConfig struct {
	HostLinkBps   float64       // host<->switch payload rate (TAXI)
	HostLinkProp  time.Duration // host<->switch propagation
	SwitchLatency time.Duration // per-cell forwarding latency
}

// NewATMLAN builds n hosts star-wired to one switch, with full-mesh VC
// routes installed.
func NewATMLAN(eng *sim.Engine, n int, cfg ATMLANConfig) *Network {
	net := &Network{eng: eng, kind: "nynet-lan", receive: make([]Port, n)}
	sw := NewSwitch(eng, "fore0", cfg.SwitchLatency)
	net.switches = []*Switch{sw}
	// Downlinks: switch -> host.
	down := make([]*Link, n)
	for h := 0; h < n; h++ {
		down[h] = NewLink(eng, LinkConfig{
			Name:          fmt.Sprintf("down%d", h),
			BitsPerSecond: cfg.HostLinkBps,
			Propagation:   cfg.HostLinkProp,
		}, hostPort{net, h})
	}
	// Uplinks: host -> switch.
	for h := 0; h < n; h++ {
		up := NewLink(eng, LinkConfig{
			Name:          fmt.Sprintf("up%d", h),
			BitsPerSecond: cfg.HostLinkBps,
			Propagation:   cfg.HostLinkProp,
		}, sw)
		net.paths = append(net.paths, hostUplink{up})
	}
	// Full mesh of VCs.
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				sw.Route(VCFor(s, d), down[d])
			}
		}
	}
	net.down = down
	return net
}

// EnableSVC turns on switched-VC signaling for a single-switch ATM LAN;
// dynamically allocated VCIs start at base (keep it clear of the VCFor
// mesh). It panics on non-LAN topologies.
func (n *Network) EnableSVC(base uint16) {
	if n.kind != "nynet-lan" || len(n.switches) != 1 || n.down == nil {
		panic("netsim: EnableSVC requires a single-switch ATM LAN")
	}
	n.switches[0].EnableSignaling(base, func(h int) *Link { return n.down[h] })
}

// ATMWANConfig parameterizes a two-site wide-area topology: each site is an
// ATM LAN, and the sites are joined by a trunk (e.g. DS-3 with wide-area
// propagation, the upstate-downstate NYNET path).
type ATMWANConfig struct {
	LAN       ATMLANConfig
	TrunkBps  float64
	TrunkProp time.Duration
}

// NewATMWAN builds 2*halfN hosts split across two switches joined by a
// trunk. Hosts [0,halfN) are at site A, [halfN, 2*halfN) at site B.
func NewATMWAN(eng *sim.Engine, halfN int, cfg ATMWANConfig) *Network {
	n := 2 * halfN
	net := &Network{eng: eng, kind: "nynet-wan", receive: make([]Port, n)}
	swA := NewSwitch(eng, "foreA", cfg.LAN.SwitchLatency)
	swB := NewSwitch(eng, "foreB", cfg.LAN.SwitchLatency)
	net.switches = []*Switch{swA, swB}

	site := func(h int) int {
		if h < halfN {
			return 0
		}
		return 1
	}
	sw := func(i int) *Switch {
		if i == 0 {
			return swA
		}
		return swB
	}

	down := make([]*Link, n)
	for h := 0; h < n; h++ {
		down[h] = NewLink(eng, LinkConfig{
			Name:          fmt.Sprintf("down%d", h),
			BitsPerSecond: cfg.LAN.HostLinkBps,
			Propagation:   cfg.LAN.HostLinkProp,
		}, hostPort{net, h})
		up := NewLink(eng, LinkConfig{
			Name:          fmt.Sprintf("up%d", h),
			BitsPerSecond: cfg.LAN.HostLinkBps,
			Propagation:   cfg.LAN.HostLinkProp,
		}, sw(site(h)))
		net.paths = append(net.paths, hostUplink{up})
	}
	trunkAB := NewLink(eng, LinkConfig{Name: "trunkAB", BitsPerSecond: cfg.TrunkBps, Propagation: cfg.TrunkProp}, swB)
	trunkBA := NewLink(eng, LinkConfig{Name: "trunkBA", BitsPerSecond: cfg.TrunkBps, Propagation: cfg.TrunkProp}, swA)

	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			vc := VCFor(s, d)
			if site(s) == site(d) {
				sw(site(s)).Route(vc, down[d])
				continue
			}
			if site(s) == 0 {
				swA.Route(vc, trunkAB)
				swB.Route(vc, down[d])
			} else {
				swB.Route(vc, trunkBA)
				swA.Route(vc, down[d])
			}
		}
	}
	return net
}
