package netsim

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/sim"
)

func TestSwitchPolicesVC(t *testing.T) {
	eng := sim.NewEngine()
	net := NewATMLAN(eng, 2, ATMLANConfig{HostLinkBps: 100e6})
	sw := net.Switches()[0]

	var delivered int
	net.AttachHost(1, PortFunc(func(u Unit) { delivered++ }))

	// Contract: 1000 cells/s, burst 10. Offer 100 back-to-back cells.
	vc := VCFor(0, 1)
	sw.Police(vc, atm.NewGCRA(1000, 10))
	for i := 0; i < 100; i++ {
		net.PathFor(0).Send(Unit{WireBytes: atm.CellSize, SrcHost: 0, DstHost: 1, VC: vc})
	}
	eng.Run()
	// 100 cells serialize in ~42 µs at 100 Mbps — essentially one burst.
	// The policer admits the burst credit plus a couple of earned slots.
	if delivered > 15 {
		t.Fatalf("policer admitted %d of 100 burst cells", delivered)
	}
	if sw.Policed() != int64(100-delivered) {
		t.Fatalf("policed = %d, delivered = %d", sw.Policed(), delivered)
	}
}

func TestPolicingSparesOtherVCs(t *testing.T) {
	eng := sim.NewEngine()
	net := NewATMLAN(eng, 3, ATMLANConfig{HostLinkBps: 100e6})
	sw := net.Switches()[0]
	var toB, toC int
	net.AttachHost(1, PortFunc(func(u Unit) { toB++ }))
	net.AttachHost(2, PortFunc(func(u Unit) { toC++ }))

	sw.Police(VCFor(0, 1), atm.NewGCRA(100, 1)) // tight contract on 0->1 only
	for i := 0; i < 50; i++ {
		net.PathFor(0).Send(Unit{WireBytes: atm.CellSize, SrcHost: 0, DstHost: 1, VC: VCFor(0, 1)})
		net.PathFor(0).Send(Unit{WireBytes: atm.CellSize, SrcHost: 0, DstHost: 2, VC: VCFor(0, 2)})
	}
	eng.Run()
	if toC != 50 {
		t.Fatalf("unpoliced VC lost cells: %d of 50", toC)
	}
	if toB >= 50 {
		t.Fatalf("policed VC delivered everything (%d)", toB)
	}
}

func TestConformingStreamUnharmed(t *testing.T) {
	eng := sim.NewEngine()
	net := NewATMLAN(eng, 2, ATMLANConfig{HostLinkBps: 100e6})
	sw := net.Switches()[0]
	var delivered int
	net.AttachHost(1, PortFunc(func(u Unit) { delivered++ }))

	vc := VCFor(0, 1)
	sw.Police(vc, atm.NewGCRA(10000, 2)) // 10k cells/s
	// Offer cells at exactly 5k cells/s (half the contract) via spaced
	// sends driven by engine events.
	const n = 20
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(i)*200*time.Microsecond, func() {
			net.PathFor(0).Send(Unit{WireBytes: atm.CellSize, SrcHost: 0, DstHost: 1, VC: vc})
		})
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("conforming stream lost cells: %d of %d", delivered, n)
	}
	if sw.Policed() != 0 {
		t.Fatalf("policed %d conforming cells", sw.Policed())
	}
}
