package netsim

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// collector records delivered units with their arrival times.
type collector struct {
	eng   *sim.Engine
	units []Unit
	times []vclock.Time
}

func (c *collector) Deliver(u Unit) {
	c.units = append(c.units, u)
	c.times = append(c.times, c.eng.Now())
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	eng := sim.NewEngine()
	col := &collector{eng: eng}
	// 1000 bytes at 8000 bps = 1 s serialization; 0.5 s propagation.
	l := NewLink(eng, LinkConfig{BitsPerSecond: 8000, Propagation: 500 * time.Millisecond}, col)
	l.Send(Unit{WireBytes: 1000})
	eng.Run()
	if len(col.times) != 1 {
		t.Fatalf("%d deliveries", len(col.times))
	}
	want := vclock.Time(1500 * time.Millisecond)
	if col.times[0] != want {
		t.Fatalf("arrival = %v, want %v", col.times[0].Seconds(), want.Seconds())
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	eng := sim.NewEngine()
	col := &collector{eng: eng}
	l := NewLink(eng, LinkConfig{BitsPerSecond: 8000}, col)
	// Two back-to-back units serialize one after the other.
	l.Send(Unit{WireBytes: 1000, DstHost: 1})
	l.Send(Unit{WireBytes: 1000, DstHost: 2})
	eng.Run()
	if col.times[0] != vclock.Time(1*time.Second) || col.times[1] != vclock.Time(2*time.Second) {
		t.Fatalf("arrivals = %v,%v; want 1s,2s", col.times[0].Seconds(), col.times[1].Seconds())
	}
	if col.units[0].DstHost != 1 || col.units[1].DstHost != 2 {
		t.Fatal("FIFO order violated")
	}
	if l.UnitsSent() != 2 || l.BytesSent() != 2000 {
		t.Fatalf("stats: units=%d bytes=%d", l.UnitsSent(), l.BytesSent())
	}
}

func TestLinkPerUnitOverhead(t *testing.T) {
	eng := sim.NewEngine()
	col := &collector{eng: eng}
	l := NewLink(eng, LinkConfig{BitsPerSecond: 8000, PerUnit: 100 * time.Millisecond}, col)
	l.Send(Unit{WireBytes: 1000})
	eng.Run()
	if col.times[0] != vclock.Time(1100*time.Millisecond) {
		t.Fatalf("arrival = %v, want 1.1s", col.times[0].Seconds())
	}
}

func TestSwitchForwardsByVC(t *testing.T) {
	eng := sim.NewEngine()
	colA := &collector{eng: eng}
	colB := &collector{eng: eng}
	sw := NewSwitch(eng, "sw", 0)
	la := NewLink(eng, LinkConfig{BitsPerSecond: 1e6}, colA)
	lb := NewLink(eng, LinkConfig{BitsPerSecond: 1e6}, colB)
	vcA := atm.VC{VCI: 100}
	vcB := atm.VC{VCI: 200}
	sw.Route(vcA, la)
	sw.Route(vcB, lb)
	sw.Deliver(Unit{WireBytes: 53, VC: vcA})
	sw.Deliver(Unit{WireBytes: 53, VC: vcB})
	sw.Deliver(Unit{WireBytes: 53, VC: atm.VC{VCI: 999}}) // no route
	eng.Run()
	if len(colA.units) != 1 || len(colB.units) != 1 {
		t.Fatalf("deliveries: A=%d B=%d", len(colA.units), len(colB.units))
	}
	if sw.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sw.Dropped())
	}
}

func TestEthernetSharedMediumSerializes(t *testing.T) {
	eng := sim.NewEngine()
	net := NewEthernetLAN(eng, 3, EthernetConfig{BitsPerSecond: 8000})
	col := &collector{eng: eng}
	net.AttachHost(2, col)
	// Hosts 0 and 1 transmit simultaneously to host 2: frames serialize on
	// the shared wire, so the second arrives a full frame time later.
	net.PathFor(0).Send(Unit{WireBytes: 1000, DstHost: 2})
	net.PathFor(1).Send(Unit{WireBytes: 1000, DstHost: 2})
	eng.Run()
	if len(col.times) != 2 {
		t.Fatalf("%d deliveries", len(col.times))
	}
	if col.times[0] != vclock.Time(1*time.Second) || col.times[1] != vclock.Time(2*time.Second) {
		t.Fatalf("arrivals %v,%v; want 1s,2s", col.times[0].Seconds(), col.times[1].Seconds())
	}
}

func TestATMLANParallelPaths(t *testing.T) {
	eng := sim.NewEngine()
	net := NewATMLAN(eng, 4, ATMLANConfig{HostLinkBps: 8000})
	col2 := &collector{eng: eng}
	col3 := &collector{eng: eng}
	net.AttachHost(2, col2)
	net.AttachHost(3, col3)
	// Disjoint pairs 0->2 and 1->3 proceed in parallel on a switch —
	// unlike the Ethernet case above, both arrive at 1 s.
	net.PathFor(0).Send(Unit{WireBytes: 1000, DstHost: 2, VC: VCFor(0, 2)})
	net.PathFor(1).Send(Unit{WireBytes: 1000, DstHost: 3, VC: VCFor(1, 3)})
	eng.Run()
	if len(col2.times) != 1 || len(col3.times) != 1 {
		t.Fatalf("deliveries: %d,%d", len(col2.times), len(col3.times))
	}
	// Downlink adds its own serialization: uplink 1s + downlink 1s = 2s.
	want := vclock.Time(2 * time.Second)
	if col2.times[0] != want || col3.times[0] != want {
		t.Fatalf("arrivals %v,%v; want both %v (parallel)", col2.times[0].Seconds(), col3.times[0].Seconds(), want.Seconds())
	}
}

func TestATMLANFanInQueuesOnDownlink(t *testing.T) {
	eng := sim.NewEngine()
	net := NewATMLAN(eng, 3, ATMLANConfig{HostLinkBps: 8000})
	col := &collector{eng: eng}
	net.AttachHost(2, col)
	// Both senders target host 2: uplinks are parallel but the downlink
	// serializes, so arrivals are 2s and 3s.
	net.PathFor(0).Send(Unit{WireBytes: 1000, DstHost: 2, VC: VCFor(0, 2)})
	net.PathFor(1).Send(Unit{WireBytes: 1000, DstHost: 2, VC: VCFor(1, 2)})
	eng.Run()
	if col.times[0] != vclock.Time(2*time.Second) || col.times[1] != vclock.Time(3*time.Second) {
		t.Fatalf("arrivals %v,%v; want 2s,3s", col.times[0].Seconds(), col.times[1].Seconds())
	}
}

func TestATMWANCrossSiteTrunk(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ATMWANConfig{
		LAN:       ATMLANConfig{HostLinkBps: 1e6},
		TrunkBps:  1e6,
		TrunkProp: 10 * time.Millisecond,
	}
	net := NewATMWAN(eng, 2, cfg) // hosts 0,1 site A; 2,3 site B
	col := &collector{eng: eng}
	net.AttachHost(3, col)
	net.PathFor(0).Send(Unit{WireBytes: 125, DstHost: 3, VC: VCFor(0, 3)})
	eng.Run()
	if len(col.units) != 1 {
		t.Fatal("cross-site unit not delivered")
	}
	// 3 serializations of 1ms each + 10ms trunk propagation = 13ms.
	want := vclock.Time(13 * time.Millisecond)
	if col.times[0] != want {
		t.Fatalf("arrival = %v, want %v", col.times[0].Seconds(), want.Seconds())
	}
}

func TestATMWANSameSiteAvoidsTrunk(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ATMWANConfig{
		LAN:       ATMLANConfig{HostLinkBps: 1e6},
		TrunkBps:  1e3, // absurdly slow trunk; same-site must not touch it
		TrunkProp: time.Hour,
	}
	net := NewATMWAN(eng, 2, cfg)
	col := &collector{eng: eng}
	net.AttachHost(1, col)
	net.PathFor(0).Send(Unit{WireBytes: 125, DstHost: 1, VC: VCFor(0, 1)})
	eng.Run()
	want := vclock.Time(2 * time.Millisecond)
	if col.times[0] != want {
		t.Fatalf("same-site arrival = %v, want %v", col.times[0].Seconds(), want.Seconds())
	}
}

func TestLinkUtilization(t *testing.T) {
	eng := sim.NewEngine()
	col := &collector{eng: eng}
	l := NewLink(eng, LinkConfig{BitsPerSecond: 8000}, col)
	l.Send(Unit{WireBytes: 1000}) // 1 s busy
	eng.Schedule(2*time.Second, func() {})
	eng.Run()
	if u := l.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestVCForDistinct(t *testing.T) {
	seen := map[atm.VC]bool{}
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			vc := VCFor(s, d)
			if seen[vc] {
				t.Fatalf("VC collision at %d->%d", s, d)
			}
			seen[vc] = true
		}
	}
}

// TestChannelRoutePairInstallRemove: the per-call provisioning used by the
// signaled channel lifecycle. Installing a pair routes exactly the two
// directed VCs of one (host pair, channel); removing them makes the switch
// discard subsequent cells, as a real fabric does once a circuit is torn
// down.
func TestChannelRoutePairInstallRemove(t *testing.T) {
	eng := sim.NewEngine()
	net := NewATMLAN(eng, 3, ATMLANConfig{HostLinkBps: 100e6})
	var got [3][]Unit
	for h := 0; h < 3; h++ {
		h := h
		net.AttachHost(h, PortFunc(func(u Unit) { got[h] = append(got[h], u) }))
	}
	sw := net.Switches()[0]
	net.InstallChannelRoute(0, 1, 5)
	sw.Deliver(Unit{WireBytes: 53, DstHost: 1, VC: VCForChan(0, 1, 5)})
	sw.Deliver(Unit{WireBytes: 53, DstHost: 0, VC: VCForChan(1, 0, 5)})
	// The pair (0,2) was never provisioned for channel 5.
	sw.Deliver(Unit{WireBytes: 53, DstHost: 2, VC: VCForChan(0, 2, 5)})
	eng.Run()
	if len(got[0]) != 1 || len(got[1]) != 1 || len(got[2]) != 0 {
		t.Fatalf("deliveries = %d,%d,%d; want 1,1,0", len(got[0]), len(got[1]), len(got[2]))
	}
	if d := sw.Dropped(); d != 1 {
		t.Fatalf("switch dropped %d, want 1 (the unprovisioned pair)", d)
	}
	net.RemoveChannelRoute(0, 1, 5)
	sw.Deliver(Unit{WireBytes: 53, DstHost: 1, VC: VCForChan(0, 1, 5)})
	sw.Deliver(Unit{WireBytes: 53, DstHost: 0, VC: VCForChan(1, 0, 5)})
	eng.Run()
	if len(got[0]) != 1 || len(got[1]) != 1 {
		t.Fatal("cells delivered after the channel's routes were removed")
	}
	if d := sw.Dropped(); d != 3 {
		t.Fatalf("switch dropped %d, want 3 after teardown", d)
	}
	// The default mesh (channel 0) is untouched by per-channel teardown.
	sw.Deliver(Unit{WireBytes: 53, DstHost: 1, VC: VCFor(0, 1)})
	eng.Run()
	if len(got[1]) != 2 {
		t.Fatal("default-mesh VC no longer routed after channel teardown")
	}
}
