package mts

import (
	"strings"
	"testing"
	"time"
)

func TestOnSwitchHook(t *testing.T) {
	var switched []string
	rt := New(Config{
		Name:        "hooked",
		IdleTimeout: time.Second,
		OnSwitch:    func(th *Thread) { switched = append(switched, th.Name()) },
	})
	rt.Create("a", PrioDefault, func(th *Thread) { th.Yield() })
	rt.Create("b", PrioDefault, func(th *Thread) {})
	rt.Run()
	// a, b, a again after the yield.
	if len(switched) != 3 || switched[0] != "a" || switched[1] != "b" || switched[2] != "a" {
		t.Fatalf("switch sequence = %v", switched)
	}
}

func TestThreadLookup(t *testing.T) {
	rt := New(Config{Name: "lookup", IdleTimeout: time.Second})
	a := rt.Create("a", 3, func(th *Thread) {})
	if got := rt.Thread(a.ID()); got != a {
		t.Fatal("Thread(id) did not return the thread")
	}
	if rt.Thread(99) != nil || rt.Thread(-1) != nil {
		t.Fatal("out-of-range lookup not nil")
	}
	if a.Priority() != 3 || a.Name() != "a" || a.Runtime() != rt {
		t.Fatal("accessors wrong")
	}
}

func TestDumpStateShowsBlockReason(t *testing.T) {
	rt := New(Config{Name: "dump", IdleTimeout: time.Second})
	rt.Create("stuck", PrioDefault, func(th *Thread) { th.Park("waiting for godot") })
	rt.Dispatch()
	dump := rt.DumpState()
	if !strings.Contains(dump, "waiting for godot") || !strings.Contains(dump, "stuck") {
		t.Fatalf("dump missing details:\n%s", dump)
	}
	rt.Kill()
}

func TestSwitchCountAdvances(t *testing.T) {
	rt := New(Config{Name: "sw", IdleTimeout: time.Second})
	rt.Create("a", PrioDefault, func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Yield()
		}
	})
	rt.Run()
	if rt.Switches() < 6 {
		t.Fatalf("switches = %d, want >= 6", rt.Switches())
	}
}

func TestCurrentIsNilOutsideDispatch(t *testing.T) {
	rt := New(Config{Name: "cur", IdleTimeout: time.Second})
	var insideCur *Thread
	th := rt.Create("a", PrioDefault, func(t2 *Thread) { insideCur = rt.Current() })
	rt.Run()
	if insideCur != th {
		t.Fatal("Current() inside body != the running thread")
	}
	if rt.Current() != nil {
		t.Fatal("Current() after Run should be nil")
	}
}

func TestPriorityOutOfRangePanics(t *testing.T) {
	rt := New(Config{Name: "bad"})
	defer func() {
		if recover() == nil {
			t.Fatal("priority 16 accepted")
		}
	}()
	rt.Create("x", NumPriorities, func(th *Thread) {})
}

func TestYieldOutsideThreadPanics(t *testing.T) {
	rt := New(Config{Name: "panic", IdleTimeout: time.Second})
	th := rt.Create("a", PrioDefault, func(t2 *Thread) {})
	rt.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Yield from outside the thread accepted")
		}
	}()
	th.Yield()
}
