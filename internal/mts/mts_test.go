package mts

import (
	"testing"
	"testing/quick"
	"time"
)

func newTestRT() *Runtime {
	return New(Config{Name: "test", IdleTimeout: 5 * time.Second})
}

func TestSingleThreadRuns(t *testing.T) {
	rt := newTestRT()
	ran := false
	rt.Create("t0", PrioDefault, func(*Thread) { ran = true })
	rt.Run()
	if !ran {
		t.Fatal("thread body never ran")
	}
	if rt.Live() != 0 {
		t.Fatalf("Live = %d after Run", rt.Live())
	}
}

func TestCreationOrderWithinPriority(t *testing.T) {
	rt := newTestRT()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		rt.Create("t", PrioDefault, func(*Thread) { order = append(order, i) })
	}
	rt.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("run order %v, want creation order", order)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	rt := newTestRT()
	var order []string
	rt.Create("low", 10, func(*Thread) { order = append(order, "low") })
	rt.Create("high", 2, func(*Thread) { order = append(order, "high") })
	rt.Create("mid", 5, func(*Thread) { order = append(order, "mid") })
	rt.Run()
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestYieldRoundRobin(t *testing.T) {
	rt := newTestRT()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		rt.Create("t", PrioDefault, func(th *Thread) {
			for rep := 0; rep < 3; rep++ {
				order = append(order, i)
				th.Yield()
			}
		})
	}
	rt.Run()
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", order, want)
		}
	}
}

func TestParkUnblock(t *testing.T) {
	rt := newTestRT()
	var events []string
	var sleeper *Thread
	sleeper = rt.Create("sleeper", PrioDefault, func(th *Thread) {
		events = append(events, "sleeping")
		th.Park("wait for waker")
		events = append(events, "woken")
	})
	rt.Create("waker", PrioDefault, func(th *Thread) {
		events = append(events, "waking")
		rt.Unblock(sleeper, false)
	})
	rt.Run()
	want := []string{"sleeping", "waking", "woken"}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestUnblockFrontRunsFirst(t *testing.T) {
	rt := newTestRT()
	var order []string
	var a *Thread
	a = rt.Create("a", PrioDefault, func(th *Thread) {
		th.Park("hold")
		order = append(order, "a")
	})
	rt.Create("b", PrioDefault, func(th *Thread) {
		// a is blocked; c is queued behind b. Waking a to the *front*
		// must run it before c.
		rt.Unblock(a, true)
	})
	rt.Create("c", PrioDefault, func(th *Thread) {
		order = append(order, "c")
	})
	rt.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "c" {
		t.Fatalf("order = %v, want [a c]", order)
	}
}

func TestUnblockNonBlockedIsNoop(t *testing.T) {
	rt := newTestRT()
	var th0 *Thread
	th0 = rt.Create("t0", PrioDefault, func(th *Thread) {
		if rt.Unblock(th0, false) {
			t.Error("Unblock of running thread returned true")
		}
	})
	rt.Run()
}

func TestExternalPostWakeup(t *testing.T) {
	rt := newTestRT()
	done := false
	var waiter *Thread
	waiter = rt.Create("waiter", PrioDefault, func(th *Thread) {
		th.Park("external io")
		done = true
	})
	go func() {
		time.Sleep(10 * time.Millisecond)
		rt.Post(func() { rt.Unblock(waiter, false) })
	}()
	rt.Run()
	if !done {
		t.Fatal("waiter never woke from external post")
	}
}

func TestSleep(t *testing.T) {
	rt := newTestRT()
	start := time.Now()
	rt.Create("s", PrioDefault, func(th *Thread) { th.Sleep(20 * time.Millisecond) })
	rt.Run()
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >=20ms", d)
	}
}

func TestDeadlockPanics(t *testing.T) {
	rt := New(Config{Name: "dl", IdleTimeout: 30 * time.Millisecond})
	rt.Create("stuck", PrioDefault, func(th *Thread) { th.Park("never") })
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked Run did not panic")
		}
		// The stuck thread's goroutine is still parked; reap it.
		rt.Kill()
	}()
	rt.Run()
}

func TestCreateFromRunningThread(t *testing.T) {
	rt := newTestRT()
	var order []string
	rt.Create("parent", PrioDefault, func(th *Thread) {
		order = append(order, "parent")
		rt.Create("child", PrioDefault, func(*Thread) {
			order = append(order, "child")
		})
	})
	rt.Run()
	if len(order) != 2 || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
}

func TestJoin(t *testing.T) {
	rt := newTestRT()
	var order []string
	worker := rt.Create("worker", PrioDefault, func(th *Thread) {
		th.Yield()
		order = append(order, "worker done")
	})
	rt.Create("joiner", PrioDefault, func(th *Thread) {
		Join(th, worker)
		order = append(order, "joined")
	})
	rt.Run()
	if len(order) != 2 || order[0] != "worker done" || order[1] != "joined" {
		t.Fatalf("order = %v", order)
	}
}

func TestJoinFinishedThreadReturnsImmediately(t *testing.T) {
	rt := newTestRT()
	worker := rt.Create("worker", 0, func(*Thread) {})
	ok := false
	rt.Create("joiner", 5, func(th *Thread) {
		Join(th, worker) // worker (higher prio) already done
		ok = true
	})
	rt.Run()
	if !ok {
		t.Fatal("join of finished thread hung")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	rt := newTestRT()
	mu := NewMutex(rt)
	inCS := 0
	maxCS := 0
	for i := 0; i < 4; i++ {
		rt.Create("t", PrioDefault, func(th *Thread) {
			mu.Lock(th)
			inCS++
			if inCS > maxCS {
				maxCS = inCS
			}
			th.Yield() // try to let others violate the CS
			inCS--
			mu.Unlock(th)
		})
	}
	rt.Run()
	if maxCS != 1 {
		t.Fatalf("max concurrent critical-section occupancy = %d, want 1", maxCS)
	}
	if mu.Locked() {
		t.Fatal("mutex left locked")
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	rt := newTestRT()
	mu := NewMutex(rt)
	cond := NewCond(mu)
	woken := 0
	for i := 0; i < 3; i++ {
		rt.Create("waiter", PrioDefault, func(th *Thread) {
			mu.Lock(th)
			cond.Wait(th)
			woken++
			mu.Unlock(th)
		})
	}
	rt.Create("signaler", PrioLowest, func(th *Thread) {
		cond.Signal()
		th.Yield()
		if woken != 1 {
			t.Errorf("after Signal woken = %d, want 1", woken)
		}
		cond.Broadcast()
	})
	rt.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestSemaphore(t *testing.T) {
	rt := newTestRT()
	sem := NewSemaphore(rt, 2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		rt.Create("t", PrioDefault, func(th *Thread) {
			sem.Wait(th)
			active++
			if active > maxActive {
				maxActive = active
			}
			th.Yield()
			active--
			sem.Signal()
		})
	}
	rt.Run()
	if maxActive != 2 {
		t.Fatalf("max active = %d, want 2", maxActive)
	}
	if sem.Count() != 2 {
		t.Fatalf("final count = %d, want 2", sem.Count())
	}
}

func TestSemaphoreTryWait(t *testing.T) {
	rt := newTestRT()
	sem := NewSemaphore(rt, 1)
	rt.Create("t", PrioDefault, func(th *Thread) {
		if !sem.TryWait() {
			t.Error("TryWait with count 1 failed")
		}
		if sem.TryWait() {
			t.Error("TryWait with count 0 succeeded")
		}
	})
	rt.Run()
}

func TestBarrier(t *testing.T) {
	rt := newTestRT()
	const n = 4
	bar := NewBarrier(rt, n)
	phase := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		rt.Create("t", PrioDefault, func(th *Thread) {
			for p := 0; p < 3; p++ {
				phase[i] = p
				bar.Await(th)
				// After the barrier everyone must be in phase p.
				for j := 0; j < n; j++ {
					if phase[j] != p {
						t.Errorf("thread %d at phase %d while %d at %d", j, phase[j], i, p)
					}
				}
				bar.Await(th)
			}
		})
	}
	rt.Run()
	if bar.Generation() != 6 {
		t.Fatalf("generations = %d, want 6", bar.Generation())
	}
}

func TestChanBufferedFIFO(t *testing.T) {
	rt := newTestRT()
	ch := NewChan[int](rt, 2)
	var got []int
	rt.Create("producer", PrioDefault, func(th *Thread) {
		for i := 0; i < 5; i++ {
			ch.Send(th, i)
		}
	})
	rt.Create("consumer", PrioDefault, func(th *Thread) {
		for i := 0; i < 5; i++ {
			got = append(got, ch.Recv(th))
		}
	})
	rt.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO 0..4", got)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	rt := newTestRT()
	ch := NewChan[string](rt, 0)
	var got string
	rt.Create("recv", PrioDefault, func(th *Thread) { got = ch.Recv(th) })
	rt.Create("send", PrioDefault, func(th *Thread) { ch.Send(th, "hello") })
	rt.Run()
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestChanTryOps(t *testing.T) {
	rt := newTestRT()
	ch := NewChan[int](rt, 1)
	rt.Create("t", PrioDefault, func(th *Thread) {
		if _, ok := ch.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !ch.TrySend(1) {
			t.Error("TrySend with room failed")
		}
		if ch.TrySend(2) {
			t.Error("TrySend on full chan succeeded")
		}
		if v, ok := ch.TryRecv(); !ok || v != 1 {
			t.Errorf("TryRecv = %d,%v, want 1,true", v, ok)
		}
	})
	rt.Run()
}

func TestKillReapsThreads(t *testing.T) {
	rt := newTestRT()
	started := rt.Create("parked", PrioDefault, func(th *Thread) {
		th.Park("forever")
		t.Error("killed thread resumed body")
	})
	neverRan := rt.Create("never", PrioLowest, func(th *Thread) {
		t.Error("never-dispatched thread ran during Kill")
	})
	// Dispatch once so "parked" actually parks, then kill everything.
	rt.Dispatch()
	rt.Kill()
	if started.State() != StateDone || neverRan.State() != StateDone {
		t.Fatalf("states after Kill: %v %v", started.State(), neverRan.State())
	}
	if rt.Live() != 0 {
		t.Fatalf("Live = %d after Kill", rt.Live())
	}
}

func TestDumpStateMentionsThreads(t *testing.T) {
	rt := newTestRT()
	rt.Create("alpha", 3, func(th *Thread) {})
	s := rt.DumpState()
	if len(s) == 0 {
		t.Fatal("empty dump")
	}
}

// TestQuickRoundRobinFairness: threads at one priority level that always
// yield are dispatched within 1 of each other, for any thread count and
// yield count.
func TestQuickRoundRobinFairness(t *testing.T) {
	f := func(nThreads, rounds uint8) bool {
		n := int(nThreads%6) + 2
		r := int(rounds%20) + 1
		rt := newTestRT()
		for i := 0; i < n; i++ {
			rt.Create("t", PrioDefault, func(th *Thread) {
				for k := 0; k < r; k++ {
					th.Yield()
				}
			})
		}
		rt.Run()
		min, max := 1<<30, 0
		for _, th := range rt.Threads() {
			d := th.Dispatches()
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPriorityNeverInverted: a higher-priority runnable thread is
// always dispatched before any lower-priority thread, for random priority
// assignments.
func TestQuickPriorityNeverInverted(t *testing.T) {
	f := func(prios []uint8) bool {
		if len(prios) == 0 || len(prios) > 12 {
			return true
		}
		rt := newTestRT()
		var order []int
		for _, p := range prios {
			p := int(p) % NumPriorities
			rt.Create("t", p, func(th *Thread) {
				order = append(order, p)
			})
		}
		rt.Run()
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBlockUnblockConservation: random park/unblock traffic never loses
// a thread — every thread eventually finishes.
func TestQuickBlockUnblockConservation(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%5) + 2
		rt := newTestRT()
		threads := make([]*Thread, n)
		delivered := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			threads[i] = rt.Create("w", PrioDefault, func(th *Thread) {
				// Park only if the predecessor's token hasn't already
				// arrived (classic lost-wakeup guard).
				if i > 0 && !delivered[i] {
					th.Park("wait for predecessor")
				}
				if i+1 < n {
					delivered[i+1] = true
					rt.Unblock(threads[i+1], false)
				}
			})
		}
		rt.Run()
		return rt.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
