// Package mts implements NCS_MTS, the multithreaded subsystem of the NYNET
// Communication System (paper §4.1).
//
// The paper builds NCS_MTS on QuickThreads, a user-space thread toolkit: all
// threads live inside one conventional process, the host OS knows nothing
// about them, and scheduling is non-preemptive — a thread runs until it
// blocks or yields at an NCS call. NCS_MTS adds what QuickThreads lacks:
// scheduling (16 priority levels, round-robin within a level, doubly-linked
// ready rings and blocked queue, Figure 9) and synchronization.
//
// This package reproduces those semantics on top of goroutines. Each Thread
// is carried by a goroutine, but a per-Runtime scheduler owns a single CPU
// token: exactly one thread executes at any instant, context switches happen
// only at explicit calls (Yield, Park, Exit, and the messaging calls layered
// above), and the dispatch order is the paper's deterministic priority +
// round-robin. Go's preemptive parallelism is deliberately not inherited —
// the whole point of the paper's overlap argument is the behaviour of
// cooperative threads on a single 1995-era processor.
//
// A Runtime can be driven two ways:
//
//   - Run(): a self-contained real-time loop (used by examples and real-mode
//     tests). External completions (network I/O, timers) enter through Post.
//   - Dispatch()/DispatchThread(): single-step primitives used by the
//     discrete-event simulation engine (internal/sim), which interleaves
//     thread execution with virtual-time network events.
package mts

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/list"
	"repro/internal/vclock"
)

// NumPriorities is the number of scheduler priority levels. The paper's
// current implementation has N = 16.
const NumPriorities = 16

// Priority levels used by convention across the repo. Lower value = higher
// priority. System threads (send/receive/flow/error control) outrank user
// compute threads so a completed transfer is noticed at the next switch.
const (
	PrioSystem  = 0
	PrioFlow    = 1
	PrioDefault = 8
	PrioLowest  = NumPriorities - 1
)

// State is a thread's scheduler state. The paper names three states
// (blocked, runnable, running); New and Done bracket the lifecycle.
type State uint8

// Thread states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateDone
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ThreadID identifies a thread within its Runtime. IDs are dense and start
// at 0 in creation order, matching the paper's tid handles.
type ThreadID int

// ErrKilled is the panic payload used to unwind a killed thread's goroutine.
type killedSignal struct{}

// Thread is a single NCS_MTS thread. All methods must be called from the
// thread's own body (they operate on "the current thread").
type Thread struct {
	id    ThreadID
	name  string
	prio  int
	state State
	rt    *Runtime

	node list.Node // link into ready ring or blocked queue

	gate    chan struct{} // resume signal; buffered(1)
	body    func(*Thread)
	spawned bool
	killed  bool

	blockReason string
	// dispatches counts how many times the scheduler gave this thread the
	// CPU; the fairness property test uses it.
	dispatches int
	// joiners are threads parked in Join on this thread; woken at exit.
	joiners []*Thread
}

// ID returns the thread's identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Priority returns the thread's scheduling priority (0 = highest).
func (t *Thread) Priority() int { return t.prio }

// State returns the thread's current scheduler state.
func (t *Thread) State() State { return t.state }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Dispatches returns how many times this thread has been given the CPU.
func (t *Thread) Dispatches() int { return t.dispatches }

// BlockReason returns the reason string of the current/last Park.
func (t *Thread) BlockReason() string { return t.blockReason }

// Config parameterizes a Runtime.
type Config struct {
	// Name labels the runtime in panics and dumps (e.g. "node3").
	Name string
	// Clock supplies time; defaults to a RealClock.
	Clock vclock.Clock
	// IdleTimeout bounds how long Run waits for an external event while
	// threads are blocked. Zero means wait forever. Tests and examples set
	// it so a lost wakeup fails loudly instead of hanging.
	IdleTimeout time.Duration
	// OnSwitch, if set, is invoked at every context switch with the thread
	// being switched in. The trace package uses it to build timelines.
	OnSwitch func(t *Thread)
}

// Runtime is the per-process scheduler: the paper's "run-time system" that
// realizes threads within a conventional process.
type Runtime struct {
	name  string
	clock vclock.Clock

	ready   [NumPriorities]list.List
	blocked list.List

	threads []*Thread
	live    int // threads not yet Done
	cur     *Thread

	parked      chan struct{} // thread -> scheduler handoff
	external    chan func()
	idleTimeout time.Duration
	onSwitch    func(t *Thread)

	// asyncQ is the unbounded companion to external: PostAsync appends under
	// asyncMu and signals asyncTok (cap 1, non-blocking send), so producers
	// that must never stall — the NCS lane engines, which may be holding a
	// lane lock a scheduler-domain thread wants — have a wait-free entry
	// point. Run and drainExternal drain it alongside external.
	asyncMu    sync.Mutex
	asyncQ     []func()
	asyncSpare []func() // recycled drain buffer, so steady state allocates nothing
	asyncTok   chan struct{}

	switches int
	running  bool

	// wg tracks thread goroutines so Kill can wait for clean unwinding.
	wg sync.WaitGroup
}

// New creates a Runtime.
func New(cfg Config) *Runtime {
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewRealClock()
	}
	rt := &Runtime{
		name:        cfg.Name,
		clock:       cfg.Clock,
		parked:      make(chan struct{}, 1),
		external:    make(chan func(), 1024),
		asyncTok:    make(chan struct{}, 1),
		idleTimeout: cfg.IdleTimeout,
		onSwitch:    cfg.OnSwitch,
	}
	return rt
}

// Name returns the runtime's label.
func (rt *Runtime) Name() string { return rt.name }

// Clock returns the runtime's clock.
func (rt *Runtime) Clock() vclock.Clock { return rt.clock }

// Now is shorthand for Clock().Now().
func (rt *Runtime) Now() vclock.Time { return rt.clock.Now() }

// Switches returns the number of context switches performed.
func (rt *Runtime) Switches() int { return rt.switches }

// Live returns the number of threads that have not finished.
func (rt *Runtime) Live() int { return rt.live }

// Current returns the currently running thread, or nil when the scheduler
// itself holds the CPU.
func (rt *Runtime) Current() *Thread { return rt.cur }

// Threads returns all threads ever created, in creation order.
func (rt *Runtime) Threads() []*Thread { return rt.threads }

// Thread returns the thread with the given id, or nil.
func (rt *Runtime) Thread(id ThreadID) *Thread {
	if int(id) < 0 || int(id) >= len(rt.threads) {
		return nil
	}
	return rt.threads[id]
}

// Create registers a new thread with the given priority; the paper's
// NCS_t_create. The body starts executing at the thread's first dispatch.
// Create may be called before Run/Start or from a running thread.
func (rt *Runtime) Create(name string, prio int, body func(*Thread)) *Thread {
	if prio < 0 || prio >= NumPriorities {
		panic(fmt.Sprintf("mts: priority %d out of range [0,%d)", prio, NumPriorities))
	}
	t := &Thread{
		id:    ThreadID(len(rt.threads)),
		name:  name,
		prio:  prio,
		state: StateRunnable,
		rt:    rt,
		gate:  make(chan struct{}, 1),
		body:  body,
	}
	t.node.Value = t
	rt.threads = append(rt.threads, t)
	rt.live++
	rt.ready[prio].PushBack(&t.node)
	return t
}

// HasRunnable reports whether any thread is ready to run.
func (rt *Runtime) HasRunnable() bool {
	for i := range rt.ready {
		if !rt.ready[i].Empty() {
			return true
		}
	}
	return false
}

// nextRunnable removes and returns the next thread by priority + RR order.
func (rt *Runtime) nextRunnable() *Thread {
	for i := range rt.ready {
		if n := rt.ready[i].PopFront(); n != nil {
			return n.Value.(*Thread)
		}
	}
	return nil
}

// Dispatch runs the next runnable thread until it parks, yields, or exits.
// It returns false if no thread was runnable. It must be called from the
// scheduler domain (the goroutine running Run, or the sim engine).
func (rt *Runtime) Dispatch() bool {
	t := rt.nextRunnable()
	if t == nil {
		return false
	}
	rt.runThread(t)
	return true
}

// DispatchThread forces a specific runnable thread to run next, bypassing
// queue order. The sim engine uses it to return the CPU to a thread that
// "held" it across a modelled compute burst (non-preemptive semantics).
// It panics if the thread is not runnable.
func (rt *Runtime) DispatchThread(t *Thread) {
	if t.state != StateRunnable {
		panic(fmt.Sprintf("mts(%s): DispatchThread of %s thread %q", rt.name, t.state, t.name))
	}
	t.node.Remove()
	rt.runThread(t)
}

func (rt *Runtime) runThread(t *Thread) {
	t.state = StateRunning
	t.dispatches++
	rt.switches++
	rt.cur = t
	if rt.onSwitch != nil {
		rt.onSwitch(t)
	}
	if !t.spawned {
		t.spawned = true
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killedSignal); ok {
						// Clean unwind of a killed thread: mark done
						// and hand the CPU back.
						t.retire()
						rt.parked <- struct{}{}
						return
					}
					panic(r)
				}
			}()
			<-t.gate
			t.body(t)
			t.retire()
			rt.parked <- struct{}{}
		}()
	}
	t.gate <- struct{}{}
	<-rt.parked
	rt.cur = nil
}

// retire marks the thread finished and wakes any joiners. It runs in the
// thread's goroutine while it still conceptually holds the CPU, so touching
// scheduler state is safe.
func (t *Thread) retire() {
	t.state = StateDone
	t.rt.live--
	for _, j := range t.joiners {
		t.rt.Unblock(j, false)
	}
	t.joiners = nil
}

// park suspends the current thread with the given state transition already
// applied, hands the CPU to the scheduler, and returns when redispatched.
func (t *Thread) park() {
	t.rt.parked <- struct{}{}
	<-t.gate
	if t.killed {
		panic(killedSignal{})
	}
	t.state = StateRunning
}

// Yield moves the current thread to the back of its priority ring and
// switches to the next runnable thread (round-robin step).
func (t *Thread) Yield() {
	t.mustBeCurrent("Yield")
	t.state = StateRunnable
	t.rt.ready[t.prio].PushBack(&t.node)
	t.park()
}

// Park blocks the current thread on the blocked queue with a reason for
// debugging ("recv msg", "send done", ...). Another thread or an external
// event must Unblock it. This is the paper's blocking mechanism that
// "synchronizes a thread with some event".
func (t *Thread) Park(reason string) {
	t.mustBeCurrent("Park")
	t.state = StateBlocked
	t.blockReason = reason
	t.rt.blocked.PushBack(&t.node)
	t.park()
}

// Unblock moves a blocked thread to its ready ring; the paper's
// NCS_unblock. front=true inserts at the head of the ring, used when the
// thread must regain the CPU before its peers (e.g. after a modelled compute
// burst). Unblocking a non-blocked thread is a no-op and returns false, so
// racy double wakeups are harmless.
func (rt *Runtime) Unblock(t *Thread, front bool) bool {
	if t.state != StateBlocked {
		return false
	}
	t.node.Remove()
	t.state = StateRunnable
	t.blockReason = ""
	if front {
		rt.ready[t.prio].PushFront(&t.node)
	} else {
		rt.ready[t.prio].PushBack(&t.node)
	}
	return true
}

// Post schedules fn to run in the scheduler domain. It is the only Runtime
// entry point that is safe to call from foreign goroutines (UDP readers,
// timers): fn executes between dispatches inside Run. In sim mode, the
// engine never needs Post because events already fire in the engine
// goroutine.
func (rt *Runtime) Post(fn func()) {
	rt.external <- fn
}

// PostAsync is like Post but never blocks the caller: the function is
// appended to an unbounded queue instead of a bounded channel. It exists
// for producers that may hold a lock a scheduler-domain thread also takes
// (the sharded NCS lane engines): if such a producer blocked on a full
// external channel while Run waited on the thread that wants the lock, the
// process would deadlock. fn still executes in the scheduler domain,
// between dispatches, with the same ordering guarantees as Post relative
// to other PostAsync calls.
func (rt *Runtime) PostAsync(fn func()) {
	rt.asyncMu.Lock()
	rt.asyncQ = append(rt.asyncQ, fn)
	rt.asyncMu.Unlock()
	select {
	case rt.asyncTok <- struct{}{}:
	default:
	}
}

// drainAsync runs all functions queued by PostAsync. Scheduler domain only.
func (rt *Runtime) drainAsync() {
	for {
		rt.asyncMu.Lock()
		if len(rt.asyncQ) == 0 {
			rt.asyncMu.Unlock()
			return
		}
		q := rt.asyncQ
		rt.asyncQ = rt.asyncSpare[:0]
		rt.asyncMu.Unlock()
		for _, fn := range q {
			fn()
		}
		for i := range q {
			q[i] = nil
		}
		rt.asyncSpare = q
	}
}

// After runs fn in the scheduler domain once d of real time has elapsed.
// Only meaningful under a real clock; the sim engine provides virtual-time
// timers instead.
func (rt *Runtime) After(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { rt.Post(fn) })
}

// Sleep blocks the current thread for d of real time. Sim-mode code should
// use the engine's virtual Sleep instead.
func (t *Thread) Sleep(d time.Duration) {
	t.mustBeCurrent("Sleep")
	rt := t.rt
	rt.After(d, func() { rt.Unblock(t, false) })
	t.Park("sleep")
}

// Run executes threads until all have finished: the paper's NCS_start. It
// drains externally Posted wakeups between dispatches and waits for them
// when no thread is runnable. It panics on deadlock (blocked threads, no
// runnable work, and no external event within IdleTimeout).
func (rt *Runtime) Run() {
	if rt.running {
		panic("mts: Run called reentrantly")
	}
	rt.running = true
	defer func() { rt.running = false }()

	// One reusable timer bounds every idle wait; allocating a fresh
	// time.After per wait would put garbage on the scheduler's hot path.
	var idle *time.Timer
	for rt.live > 0 {
		// Drain pending external completions first so I/O wakeups take
		// effect at the earliest switch point.
		rt.drainExternal()
		if rt.Dispatch() {
			continue
		}
		// Nothing runnable: wait for the outside world.
		if rt.idleTimeout > 0 {
			if idle == nil {
				idle = time.NewTimer(rt.idleTimeout)
			} else {
				idle.Reset(rt.idleTimeout)
			}
			select {
			case fn := <-rt.external:
				if !idle.Stop() {
					// Drain a concurrent expiry so the next Reset is
					// clean (harmless no-op under Go 1.23+ semantics).
					select {
					case <-idle.C:
					default:
					}
				}
				fn()
			case <-rt.asyncTok:
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				rt.drainAsync()
			case <-idle.C:
				panic(fmt.Sprintf("mts(%s): deadlock — %d live threads, none runnable after %v\n%s",
					rt.name, rt.live, rt.idleTimeout, rt.DumpState()))
			}
		} else {
			select {
			case fn := <-rt.external:
				fn()
			case <-rt.asyncTok:
				rt.drainAsync()
			}
		}
	}
}

func (rt *Runtime) drainExternal() {
	rt.drainAsync()
	for {
		select {
		case fn := <-rt.external:
			fn()
		default:
			return
		}
	}
}

// Kill terminates all unfinished threads by unwinding their goroutines, then
// waits for them to exit. It must be called from the scheduler domain with
// no thread running. It exists so tests and tools can tear down a runtime
// whose threads are parked forever.
func (rt *Runtime) Kill() {
	for _, t := range rt.threads {
		if t.state == StateDone || !t.spawned {
			if t.state != StateDone {
				// Never ran: just retire it.
				t.node.Remove()
				t.state = StateDone
				rt.live--
			}
			continue
		}
		if t.state == StateRunning {
			panic("mts: Kill with a thread running")
		}
		t.node.Remove()
		t.killed = true
		t.gate <- struct{}{}
		<-rt.parked
	}
	rt.wg.Wait()
}

// DumpState renders scheduler state for deadlock diagnostics.
func (rt *Runtime) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime %q: %d threads, %d live, %d switches\n", rt.name, len(rt.threads), rt.live, rt.switches)
	ts := append([]*Thread(nil), rt.threads...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	for _, t := range ts {
		fmt.Fprintf(&b, "  t%-3d %-20s prio=%-2d %-8s", t.id, t.name, t.prio, t.state)
		if t.state == StateBlocked {
			fmt.Fprintf(&b, " on %q", t.blockReason)
		}
		fmt.Fprintf(&b, " dispatches=%d\n", t.dispatches)
	}
	return b.String()
}

func (t *Thread) mustBeCurrent(op string) {
	if t.rt.cur != t {
		panic(fmt.Sprintf("mts(%s): %s called from outside thread %q (current=%v)",
			t.rt.name, op, t.name, t.rt.cur))
	}
}
