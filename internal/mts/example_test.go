package mts_test

import (
	"fmt"
	"time"

	"repro/internal/mts"
)

// Example shows the cooperative scheduling contract: threads run one at a
// time, in priority order, switching only at explicit yield points.
func Example() {
	rt := mts.New(mts.Config{Name: "demo", IdleTimeout: time.Second})
	rt.Create("low", 10, func(t *mts.Thread) {
		fmt.Println("low priority runs last")
	})
	rt.Create("high", 2, func(t *mts.Thread) {
		fmt.Println("high priority runs first")
		t.Yield()
		fmt.Println("high again after the yield (round robin has no peer)")
	})
	rt.Run()
	// Output:
	// high priority runs first
	// high again after the yield (round robin has no peer)
	// low priority runs last
}

// ExampleSemaphore shows the paper's wait/signal synchronization class.
func ExampleSemaphore() {
	rt := mts.New(mts.Config{Name: "sem", IdleTimeout: time.Second})
	sem := mts.NewSemaphore(rt, 0)
	rt.Create("waiter", mts.PrioDefault, func(t *mts.Thread) {
		sem.Wait(t)
		fmt.Println("signalled")
	})
	rt.Create("signaller", mts.PrioDefault, func(t *mts.Thread) {
		fmt.Println("signalling")
		sem.Signal()
	})
	rt.Run()
	// Output:
	// signalling
	// signalled
}
