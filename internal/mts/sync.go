package mts

import "fmt"

// This file implements the paper's synchronization class of primitives
// (§3.1: "barrier, wait, signal") for threads inside one process. The
// cross-process barrier is layered in internal/core on top of messaging.
//
// All primitives run entirely in the scheduler domain — a primitive's method
// is only ever called by the current thread — so no Go-level locking is
// needed; waiters are parked on the runtime's blocked queue and remembered
// by pointer.

// Mutex is a FIFO mutual-exclusion lock between threads of one runtime.
type Mutex struct {
	rt      *Runtime
	owner   *Thread
	waiters []*Thread
}

// NewMutex returns an unlocked mutex.
func NewMutex(rt *Runtime) *Mutex { return &Mutex{rt: rt} }

// Lock acquires the mutex, parking the calling thread if it is held.
func (m *Mutex) Lock(t *Thread) {
	t.mustBeCurrent("Mutex.Lock")
	if m.owner == nil {
		m.owner = t
		return
	}
	if m.owner == t {
		panic("mts: recursive Mutex.Lock")
	}
	m.waiters = append(m.waiters, t)
	t.Park("mutex")
}

// Unlock releases the mutex, handing it to the longest-waiting thread.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		panic("mts: Mutex.Unlock by non-owner")
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	m.rt.Unblock(next, false)
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a condition variable associated with a Mutex.
type Cond struct {
	mu      *Mutex
	waiters []*Thread
}

// NewCond returns a condition variable bound to mu.
func NewCond(mu *Mutex) *Cond { return &Cond{mu: mu} }

// Wait atomically releases the mutex and parks the thread until Signal or
// Broadcast, then reacquires the mutex before returning.
func (c *Cond) Wait(t *Thread) {
	if c.mu.owner != t {
		panic("mts: Cond.Wait without holding mutex")
	}
	c.waiters = append(c.waiters, t)
	c.mu.Unlock(t)
	t.Park("cond")
	c.mu.Lock(t)
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.mu.rt.Unblock(w, false)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.mu.rt.Unblock(w, false)
	}
	c.waiters = nil
}

// Semaphore is a counting semaphore; the paper's wait/signal pair.
type Semaphore struct {
	rt      *Runtime
	count   int
	waiters []*Thread
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(rt *Runtime, initial int) *Semaphore {
	if initial < 0 {
		panic("mts: negative semaphore count")
	}
	return &Semaphore{rt: rt, count: initial}
}

// Wait (P) decrements the count, parking while it is zero.
func (s *Semaphore) Wait(t *Thread) {
	t.mustBeCurrent("Semaphore.Wait")
	if s.count > 0 {
		s.count--
		return
	}
	s.waiters = append(s.waiters, t)
	t.Park("sem wait")
}

// TryWait decrements without blocking; it reports whether it succeeded.
func (s *Semaphore) TryWait() bool {
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Signal (V) increments the count or hands the unit to the oldest waiter.
// It may be called from the scheduler domain outside any thread (e.g. an
// event handler), so it takes no thread argument.
func (s *Semaphore) Signal() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.rt.Unblock(w, false)
		return
	}
	s.count++
}

// Count returns the available units.
func (s *Semaphore) Count() int { return s.count }

// Barrier blocks threads until n of them have arrived, then releases the
// whole generation at once. It is reusable across generations.
type Barrier struct {
	rt      *Runtime
	n       int
	arrived []*Thread
	gen     int
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(rt *Runtime, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("mts: barrier size %d", n))
	}
	return &Barrier{rt: rt, n: n}
}

// Await parks the thread until the generation completes. The last arrival
// does not park; it wakes the rest and returns immediately.
func (b *Barrier) Await(t *Thread) {
	t.mustBeCurrent("Barrier.Await")
	if len(b.arrived)+1 == b.n {
		for _, w := range b.arrived {
			b.rt.Unblock(w, false)
		}
		b.arrived = b.arrived[:0]
		b.gen++
		return
	}
	b.arrived = append(b.arrived, t)
	gen := b.gen
	t.Park("barrier")
	if b.gen == gen {
		panic("mts: barrier woke waiter without generation advance")
	}
}

// Generation returns how many times the barrier has completed.
func (b *Barrier) Generation() int { return b.gen }

// Join parks the calling thread until target finishes. Multiple joiners are
// allowed; joining a finished thread returns immediately.
func Join(t *Thread, target *Thread) {
	t.mustBeCurrent("Join")
	if target.state == StateDone {
		return
	}
	if target == t {
		panic("mts: thread joining itself")
	}
	target.joiners = append(target.joiners, t)
	t.Park("join " + target.name)
}

// Chan is a bounded FIFO channel between threads of one runtime, in the
// spirit of the shared-memory mailboxes QuickThreads applications used. A
// capacity of 0 gives rendezvous semantics.
type Chan[T any] struct {
	rt       *Runtime
	cap      int
	buf      []T
	senders  []*Thread // parked senders (cap reached / awaiting rendezvous)
	sendVals []T
	recvers  []*Thread
	recvSlot []*T
}

// NewChan returns a channel with the given capacity.
func NewChan[T any](rt *Runtime, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("mts: negative channel capacity")
	}
	return &Chan[T]{rt: rt, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, parking while the buffer is full (or, for capacity 0,
// until a receiver arrives).
func (c *Chan[T]) Send(t *Thread, v T) {
	t.mustBeCurrent("Chan.Send")
	// Direct handoff to a parked receiver.
	if len(c.recvers) > 0 {
		r := c.recvers[0]
		c.recvers = c.recvers[1:]
		slot := c.recvSlot[0]
		c.recvSlot = c.recvSlot[1:]
		*slot = v
		c.rt.Unblock(r, false)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	c.senders = append(c.senders, t)
	c.sendVals = append(c.sendVals, v)
	t.Park("chan send")
}

// TrySend delivers v without blocking; it reports whether it succeeded.
func (c *Chan[T]) TrySend(v T) bool {
	if len(c.recvers) > 0 {
		r := c.recvers[0]
		c.recvers = c.recvers[1:]
		slot := c.recvSlot[0]
		c.recvSlot = c.recvSlot[1:]
		*slot = v
		c.rt.Unblock(r, false)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv returns the next value, parking while the channel is empty.
func (c *Chan[T]) Recv(t *Thread) T {
	t.mustBeCurrent("Chan.Recv")
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now refill the freed slot.
		if len(c.senders) > 0 {
			s := c.senders[0]
			c.senders = c.senders[1:]
			c.buf = append(c.buf, c.sendVals[0])
			c.sendVals = c.sendVals[1:]
			c.rt.Unblock(s, false)
		}
		return v
	}
	if len(c.senders) > 0 {
		// Rendezvous: take directly from the oldest parked sender.
		s := c.senders[0]
		c.senders = c.senders[1:]
		v := c.sendVals[0]
		c.sendVals = c.sendVals[1:]
		c.rt.Unblock(s, false)
		return v
	}
	var slot T
	c.recvers = append(c.recvers, t)
	c.recvSlot = append(c.recvSlot, &slot)
	t.Park("chan recv")
	return slot
}

// TryRecv returns the next value without blocking.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.senders) > 0 {
			s := c.senders[0]
			c.senders = c.senders[1:]
			c.buf = append(c.buf, c.sendVals[0])
			c.sendVals = c.sendVals[1:]
			c.rt.Unblock(s, false)
		}
		return v, true
	}
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[1:]
		v = c.sendVals[0]
		c.sendVals = c.sendVals[1:]
		c.rt.Unblock(s, false)
		return v, true
	}
	return v, false
}
