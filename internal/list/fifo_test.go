package list

import "testing"

func TestFIFOOrderAndPeek(t *testing.T) {
	var f FIFO[int]
	if f.Size() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 1; i <= 5; i++ {
		f.Push(i)
	}
	if f.Peek() != 1 {
		t.Fatalf("Peek = %d, want 1", f.Peek())
	}
	if f.Pop() != 1 || f.Peek() != 2 {
		t.Fatal("Peek did not track the head after Pop")
	}
	// Peek must not consume: repeated peeks see the same head.
	if f.Peek() != 2 || f.Peek() != 2 || f.Size() != 4 {
		t.Fatal("Peek consumed an element")
	}
	for want := 2; want <= 5; want++ {
		if got := f.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if f.Size() != 0 {
		t.Fatalf("Size = %d after draining", f.Size())
	}
}

func TestFIFOPrependThenPeek(t *testing.T) {
	var f FIFO[string]
	f.Push("c")
	f.Push("d")
	f.Prepend([]string{"a", "b"})
	if f.Peek() != "a" {
		t.Fatalf("Peek = %q after Prepend, want \"a\"", f.Peek())
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		if got := f.Pop(); got != want {
			t.Fatalf("Pop = %q, want %q", got, want)
		}
	}
}
