package list

// FIFO is a slice-backed head-indexed queue: Pop advances the head instead
// of re-slicing, so the backing array is reused once the queue drains
// rather than abandoned to the allocator. It complements the intrusive
// lists in this package for elements that are not link-embeddable (plain
// values, pooled buffers). The zero value is an empty queue. Not safe for
// concurrent use; callers serialize access.
type FIFO[T any] struct {
	q    []T
	head int
}

// Size returns the number of queued elements.
func (f *FIFO[T]) Size() int { return len(f.q) - f.head }

// Push appends v to the tail.
func (f *FIFO[T]) Push(v T) { f.q = append(f.q, v) }

// Pop removes and returns the head element; the vacated slot is zeroed so
// the backing array does not pin popped values. Callers check Size first.
func (f *FIFO[T]) Pop() T {
	var zero T
	v := f.q[f.head]
	f.q[f.head] = zero
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return v
}

// Peek returns the head element without removing it. Callers check Size
// first; pacing disciplines use it to size the wakeup timer for the oldest
// deferred request without dequeuing it.
func (f *FIFO[T]) Peek() T { return f.q[f.head] }

// Prepend inserts vs ahead of everything queued (loss-recovery flushes
// that must be processed before entries queued behind them).
func (f *FIFO[T]) Prepend(vs []T) {
	if len(vs) == 0 {
		return
	}
	f.q = append(append(make([]T, 0, len(vs)+f.Size()), vs...), f.q[f.head:]...)
	f.head = 0
}
