package list

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type elem struct {
	id   int
	node Node
}

func newElem(id int) *elem {
	e := &elem{id: id}
	e.node.Value = e
	return e
}

func ids(l *List) []int {
	var out []int
	l.Do(func(n *Node) { out = append(out, n.Value.(*elem).id) })
	return out
}

func TestEmptyList(t *testing.T) {
	l := New()
	if !l.Empty() || l.Len() != 0 {
		t.Fatalf("new list not empty: len=%d", l.Len())
	}
	if l.Front() != nil || l.Back() != nil {
		t.Fatal("Front/Back of empty list should be nil")
	}
	if l.PopFront() != nil || l.PopBack() != nil {
		t.Fatal("Pop of empty list should be nil")
	}
	if !l.CheckInvariants() {
		t.Fatal("empty list fails invariants")
	}
}

func TestPushPopOrder(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.PushBack(&newElem(i).node)
	}
	want := []int{0, 1, 2, 3, 4}
	got := ids(l)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Front().Value.(*elem).id != 0 || l.Back().Value.(*elem).id != 4 {
		t.Fatal("Front/Back wrong")
	}
	if n := l.PopFront(); n.Value.(*elem).id != 0 {
		t.Fatalf("PopFront = %d, want 0", n.Value.(*elem).id)
	}
	if n := l.PopBack(); n.Value.(*elem).id != 4 {
		t.Fatalf("PopBack = %d, want 4", n.Value.(*elem).id)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
}

func TestPushFront(t *testing.T) {
	l := New()
	l.PushBack(&newElem(1).node)
	l.PushFront(&newElem(0).node)
	got := ids(l)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", got)
	}
}

func TestInteriorRemove(t *testing.T) {
	l := New()
	var nodes []*Node
	for i := 0; i < 5; i++ {
		e := newElem(i)
		nodes = append(nodes, &e.node)
		l.PushBack(&e.node)
	}
	nodes[2].Remove()
	got := ids(l)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if nodes[2].InList() {
		t.Fatal("removed node still claims membership")
	}
	// Double remove is a no-op.
	nodes[2].Remove()
	if l.Len() != 4 {
		t.Fatal("double remove corrupted length")
	}
}

func TestRotateFrontToBack(t *testing.T) {
	l := New()
	for i := 0; i < 3; i++ {
		l.PushBack(&newElem(i).node)
	}
	n := l.RotateFrontToBack()
	if n.Value.(*elem).id != 0 {
		t.Fatalf("rotated %d, want 0", n.Value.(*elem).id)
	}
	got := ids(l)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestRotateSingleAndEmpty(t *testing.T) {
	l := New()
	if l.RotateFrontToBack() != nil {
		t.Fatal("rotate of empty list should be nil")
	}
	e := newElem(7)
	l.PushBack(&e.node)
	if n := l.RotateFrontToBack(); n.Value.(*elem).id != 7 {
		t.Fatal("rotate of singleton should return the element")
	}
	if l.Len() != 1 {
		t.Fatal("rotate of singleton changed length")
	}
}

func TestFind(t *testing.T) {
	l := New()
	for i := 0; i < 8; i++ {
		l.PushBack(&newElem(i).node)
	}
	n := l.Find(func(n *Node) bool { return n.Value.(*elem).id == 5 })
	if n == nil || n.Value.(*elem).id != 5 {
		t.Fatal("Find failed to locate element 5")
	}
	if l.Find(func(n *Node) bool { return false }) != nil {
		t.Fatal("Find of absent element should be nil")
	}
}

func TestDoublePushPanics(t *testing.T) {
	l := New()
	e := newElem(1)
	l.PushBack(&e.node)
	defer func() {
		if recover() == nil {
			t.Fatal("PushBack of linked node did not panic")
		}
	}()
	l.PushBack(&e.node)
}

func TestMoveBetweenLists(t *testing.T) {
	a, b := New(), New()
	e := newElem(9)
	a.PushBack(&e.node)
	e.node.Remove()
	b.PushBack(&e.node)
	if a.Len() != 0 || b.Len() != 1 {
		t.Fatalf("move failed: a=%d b=%d", a.Len(), b.Len())
	}
	if !a.CheckInvariants() || !b.CheckInvariants() {
		t.Fatal("invariants broken after move")
	}
}

// TestQuickRandomOps drives a random operation sequence against a reference
// slice model and checks structural invariants throughout.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64, opCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New()
		var model []*elem
		pool := make([]*elem, 64)
		for i := range pool {
			pool[i] = newElem(i)
		}
		for op := 0; op < int(opCount); op++ {
			switch rng.Intn(5) {
			case 0: // PushBack a detached element
				if e := pickDetached(rng, pool); e != nil {
					l.PushBack(&e.node)
					model = append(model, e)
				}
			case 1: // PushFront
				if e := pickDetached(rng, pool); e != nil {
					l.PushFront(&e.node)
					model = append([]*elem{e}, model...)
				}
			case 2: // PopFront
				n := l.PopFront()
				if (n == nil) != (len(model) == 0) {
					return false
				}
				if n != nil {
					if n.Value.(*elem) != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3: // Remove random interior
				if len(model) > 0 {
					i := rng.Intn(len(model))
					model[i].node.Remove()
					model = append(model[:i], model[i+1:]...)
				}
			case 4: // Rotate
				l.RotateFrontToBack()
				if len(model) > 1 {
					model = append(model[1:], model[0])
				}
			}
			if !l.CheckInvariants() || l.Len() != len(model) {
				return false
			}
		}
		// Final order must match the model.
		got := ids(l)
		for i, e := range model {
			if got[i] != e.id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func pickDetached(rng *rand.Rand, pool []*elem) *elem {
	start := rng.Intn(len(pool))
	for i := 0; i < len(pool); i++ {
		e := pool[(start+i)%len(pool)]
		if !e.node.InList() {
			return e
		}
	}
	return nil
}
