// Package list implements the intrusive doubly-linked queue structures the
// paper uses for the NCS_MTS scheduler (Figure 9): a circular ready ring per
// priority level and a doubly-linked blocked queue.
//
// The lists are intrusive: elements embed a Node and are linked in place, so
// moving a thread between the blocked queue and a ready ring is O(1) with no
// allocation, exactly the property the paper cites for choosing doubly linked
// lists ("to speed up search operation during unblocking of threads").
package list

// Node is the embeddable link. The zero value is a detached node.
type Node struct {
	next, prev *Node
	list       *List
	// Value points back at the owning element (typically the struct the
	// Node is embedded in). It is set once by the owner and never touched
	// by this package.
	Value any
}

// InList reports whether the node is currently linked into some list.
func (n *Node) InList() bool { return n.list != nil }

// List is a doubly-linked queue with O(1) push/pop at both ends and O(1)
// removal of an interior node. It is not safe for concurrent use; the MTS
// scheduler serializes all access.
type List struct {
	root Node // sentinel; root.next = head, root.prev = tail
	size int
}

// New returns an initialized empty list.
func New() *List {
	l := &List{}
	l.Init()
	return l
}

// Init (re)initializes the list to empty. Nodes previously linked are not
// touched; callers must not reuse them without re-pushing.
func (l *List) Init() {
	l.root.next = &l.root
	l.root.prev = &l.root
	l.root.list = l
	l.size = 0
}

func (l *List) lazyInit() {
	if l.root.next == nil {
		l.Init()
	}
}

// Len returns the number of linked nodes.
func (l *List) Len() int { return l.size }

// Empty reports whether the list has no nodes.
func (l *List) Empty() bool { return l.size == 0 }

// Front returns the head node, or nil if the list is empty.
func (l *List) Front() *Node {
	if l.size == 0 {
		return nil
	}
	return l.root.next
}

// Back returns the tail node, or nil if the list is empty.
func (l *List) Back() *Node {
	if l.size == 0 {
		return nil
	}
	return l.root.prev
}

// PushBack appends n at the tail. It panics if n is already in a list: a
// thread must never be on two scheduler queues at once, and silently
// relinking would corrupt both rings.
func (l *List) PushBack(n *Node) {
	l.lazyInit()
	if n.list != nil {
		panic("list: PushBack of node already in a list")
	}
	at := l.root.prev
	n.prev = at
	n.next = &l.root
	at.next = n
	l.root.prev = n
	n.list = l
	l.size++
}

// PushFront inserts n at the head. Panics if n is already in a list.
func (l *List) PushFront(n *Node) {
	l.lazyInit()
	if n.list != nil {
		panic("list: PushFront of node already in a list")
	}
	at := l.root.next
	n.next = at
	n.prev = &l.root
	at.prev = n
	l.root.next = n
	n.list = l
	l.size++
}

// Remove unlinks n from whatever list it is in. It is a no-op for a detached
// node, so callers can unconditionally Remove before re-queueing.
func (n *Node) Remove() {
	l := n.list
	if l == nil {
		return
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.next = nil
	n.prev = nil
	n.list = nil
	l.size--
}

// PopFront removes and returns the head node, or nil if empty.
func (l *List) PopFront() *Node {
	n := l.Front()
	if n != nil {
		n.Remove()
	}
	return n
}

// PopBack removes and returns the tail node, or nil if empty.
func (l *List) PopBack() *Node {
	n := l.Back()
	if n != nil {
		n.Remove()
	}
	return n
}

// RotateFrontToBack moves the head node to the tail, implementing the
// round-robin step of the paper's per-priority circular queue. It returns
// the node that was rotated, or nil if the list has fewer than one element.
func (l *List) RotateFrontToBack() *Node {
	if l.size <= 1 {
		return l.Front()
	}
	n := l.PopFront()
	l.PushBack(n)
	return n
}

// Do calls f on each node value from head to tail. f must not modify the
// list; use Collect if the loop body needs to relink nodes.
func (l *List) Do(f func(*Node)) {
	if l.size == 0 {
		return
	}
	for n := l.root.next; n != &l.root; n = n.next {
		f(n)
	}
}

// Collect returns the linked nodes head-to-tail as a slice. The slice is a
// snapshot; mutating the list afterwards is safe.
func (l *List) Collect() []*Node {
	out := make([]*Node, 0, l.size)
	l.Do(func(n *Node) { out = append(out, n) })
	return out
}

// Find returns the first node for which pred returns true, or nil. This is
// the blocked-queue search the paper optimizes with the doubly linked list.
func (l *List) Find(pred func(*Node) bool) *Node {
	if l.size == 0 {
		return nil
	}
	for n := l.root.next; n != &l.root; n = n.next {
		if pred(n) {
			return n
		}
	}
	return nil
}

// CheckInvariants verifies ring consistency: following next from the
// sentinel visits exactly Len nodes and returns to the sentinel, and
// prev pointers mirror next pointers. It returns false on any violation.
// It exists for property-based tests.
func (l *List) CheckInvariants() bool {
	if l.root.next == nil {
		return l.size == 0
	}
	count := 0
	for n := l.root.next; n != &l.root; n = n.next {
		if n.next.prev != n || n.prev.next != n {
			return false
		}
		if n.list != l {
			return false
		}
		count++
		if count > l.size {
			return false
		}
	}
	return count == l.size
}
