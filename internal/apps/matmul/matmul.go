// Package matmul implements the paper's first benchmark (§5.1, Table 1):
// distributed matrix multiplication C = A*B under the host-node model, in
// two variants:
//
//   - BuildP4: the single-threaded p4 program of Figure 13 — the host
//     sends B and a block of A's rows to each node, every node computes its
//     block of C, and the host collects results. A node blocked in p4_recv
//     computes nothing.
//   - BuildNCS: the two-threads-per-process NCS program of Figure 14 — B is
//     sent to each node once (threads share the address space), each host
//     thread feeds the matching node thread its half of the rows, and a
//     node thread starts computing as soon as *its* rows arrive while its
//     sibling's rows are still in flight.
//
// Both builders take pre-assembled processes so the same program runs in
// simulation (virtual-time cost model) and for real (actual arithmetic).
package matmul

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/numcodec"
	"repro/internal/p4"
	"repro/internal/vclock"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64 // len N*N
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) Matrix {
	return Matrix{N: n, Data: make([]float64, n*n)}
}

// RandomMatrix fills a matrix from a seeded generator.
func RandomMatrix(n int, seed int64) Matrix {
	m := NewMatrix(n)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// Row returns row i as a slice view.
func (m Matrix) Row(i int) []float64 { return m.Data[i*m.N : (i+1)*m.N] }

// MultiplyRows computes rows [lo,hi) of A*B into the corresponding rows of
// C. This is the per-node kernel of the benchmark.
func MultiplyRows(a, b Matrix, c Matrix, lo, hi int) {
	n := a.N
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		cr := c.Row(i)
		for k := 0; k < n; k++ {
			aik := ar[k]
			br := b.Row(k)
			for j := 0; j < n; j++ {
				cr[j] += aik * br[j]
			}
		}
	}
}

// Multiply computes A*B sequentially (reference for verification).
func Multiply(a, b Matrix) Matrix {
	c := NewMatrix(a.N)
	MultiplyRows(a, b, c, 0, a.N)
	return c
}

// MaxAbsDiff returns the largest elementwise difference.
func MaxAbsDiff(a, b Matrix) float64 {
	max := 0.0
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Config parameterizes one benchmark run.
type Config struct {
	// Dim is the matrix dimension (the paper uses 128).
	Dim int
	// Workers is the number of node processes (the host is extra).
	Workers int
	// OpCost is the modelled time per multiply-add, calibrated so the
	// 1-node execution matches the paper's Table 1 first row.
	OpCost time.Duration
	// Seed generates A and B.
	Seed int64
}

// rowsCost models the CPU time to compute r rows: r * N * N multiply-adds.
func (c Config) rowsCost(r int) time.Duration {
	return time.Duration(int64(r) * int64(c.Dim) * int64(c.Dim) * int64(c.OpCost))
}

// split returns the row range [lo,hi) of worker w among n workers.
func split(dim, n, w int) (lo, hi int) {
	base := dim / n
	extra := dim % n
	lo = w*base + min(w, extra)
	hi = lo + base
	if w < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Result captures a finished run.
type Result struct {
	// Elapsed is the host's start-to-finish time (virtual in sim mode).
	Elapsed time.Duration
	// C is the assembled product (meaningful in real mode only).
	C Matrix
}

// Message types for the p4 variant (the paper's DATA and RESULT).
const (
	tagData   = 1
	tagResult = 2
)

// BuildP4 installs the Figure 13 program on a host + workers procgroup.
// procs[0] is the host. The returned Result is filled in when the host
// body finishes.
func BuildP4(procs []*p4.Process, cfg Config) *Result {
	if len(procs) != cfg.Workers+1 {
		panic(fmt.Sprintf("matmul: need %d procs, got %d", cfg.Workers+1, len(procs)))
	}
	res := &Result{}
	a := RandomMatrix(cfg.Dim, cfg.Seed)
	b := RandomMatrix(cfg.Dim, cfg.Seed+1)

	host := procs[0]
	host.Go(func(t *mts.Thread) {
		start := host.RT().Now()
		bBytes := numcodec.Float64sToBytes(b.Data)
		// Distribute: whole B plus each worker's rows of A.
		for w := 0; w < cfg.Workers; w++ {
			lo, hi := split(cfg.Dim, cfg.Workers, w)
			host.Send(t, tagData, p4.ProcID(w+1), bBytes)
			host.Send(t, tagData, p4.ProcID(w+1), numcodec.Float64sToBytes(a.Data[lo*cfg.Dim:hi*cfg.Dim]))
		}
		// Collect results.
		res.C = NewMatrix(cfg.Dim)
		for w := 0; w < cfg.Workers; w++ {
			typ, from := tagResult, p4.ProcID(w+1)
			data := host.Recv(t, &typ, &from)
			lo, hi := split(cfg.Dim, cfg.Workers, w)
			rows, err := numcodec.BytesToFloat64s(data)
			if err != nil {
				panic(err)
			}
			copy(res.C.Data[lo*cfg.Dim:hi*cfg.Dim], rows)
		}
		res.Elapsed = time.Duration(host.RT().Now() - start)
	})

	for w := 0; w < cfg.Workers; w++ {
		w := w
		node := procs[w+1]
		node.Go(func(t *mts.Thread) {
			typ, from := tagData, p4.ProcID(0)
			bData := node.Recv(t, &typ, &from)
			typ, from = tagData, p4.ProcID(0)
			aData := node.Recv(t, &typ, &from)
			lo, hi := split(cfg.Dim, cfg.Workers, w)
			rows := hi - lo
			out := make([]float64, rows*cfg.Dim)
			node.Compute(t, cfg.rowsCost(rows), func() {
				bm, _ := numcodec.BytesToFloat64s(bData)
				am, _ := numcodec.BytesToFloat64s(aData)
				bMat := Matrix{N: cfg.Dim, Data: bm}
				aMat := Matrix{N: cfg.Dim, Data: make([]float64, cfg.Dim*cfg.Dim)}
				copy(aMat.Data[lo*cfg.Dim:hi*cfg.Dim], am)
				cMat := Matrix{N: cfg.Dim, Data: make([]float64, cfg.Dim*cfg.Dim)}
				MultiplyRows(aMat, bMat, cMat, lo, hi)
				copy(out, cMat.Data[lo*cfg.Dim:hi*cfg.Dim])
			})
			node.Send(t, tagResult, 0, numcodec.Float64sToBytes(out))
		})
	}
	return res
}

// BuildNCS installs the Figure 14 program: threadsPerProc host threads each
// drive the matching thread on every node. procs[0] is the host.
func BuildNCS(procs []*core.Proc, cfg Config, threadsPerProc int) *Result {
	if len(procs) != cfg.Workers+1 {
		panic(fmt.Sprintf("matmul: need %d procs, got %d", cfg.Workers+1, len(procs)))
	}
	if threadsPerProc < 1 {
		panic("matmul: need at least one thread per process")
	}
	res := &Result{}
	a := RandomMatrix(cfg.Dim, cfg.Seed)
	b := RandomMatrix(cfg.Dim, cfg.Seed+1)
	res.C = NewMatrix(cfg.Dim)

	host := procs[0]
	var start vclock.Time
	finished := 0

	// Each worker's rows are split again among the threads.
	threadRange := func(w, k int) (lo, hi int) {
		wlo, whi := split(cfg.Dim, cfg.Workers, w)
		tlo, thi := split(whi-wlo, threadsPerProc, k)
		return wlo + tlo, wlo + thi
	}

	for k := 0; k < threadsPerProc; k++ {
		k := k
		// Later host threads run at slightly lower priority so thread 0's
		// B+A sends win queueing ties; a node's first compute thread then
		// gets its data earliest (the overlap Figure 4 depicts).
		host.TCreate(fmt.Sprintf("host-t%d", k), mts.PrioDefault+k, func(t *core.Thread) {
			if k == 0 {
				start = host.RT().Now()
			}
			bBytes := numcodec.Float64sToBytes(b.Data)
			for w := 0; w < cfg.Workers; w++ {
				// B goes to each node once, via thread 0 (all threads of
				// the node share the address space, Figure 14).
				if k == 0 {
					t.Send(0, core.ProcID(w+1), bBytes)
				}
				lo, hi := threadRange(w, k)
				t.Send(k, core.ProcID(w+1), numcodec.Float64sToBytes(a.Data[lo*cfg.Dim:hi*cfg.Dim]))
			}
			for w := 0; w < cfg.Workers; w++ {
				data, _ := t.Recv(k, core.ProcID(w+1))
				lo, hi := threadRange(w, k)
				rows, err := numcodec.BytesToFloat64s(data)
				if err != nil {
					panic(err)
				}
				copy(res.C.Data[lo*cfg.Dim:hi*cfg.Dim], rows)
				_ = hi
			}
			finished++
			if finished == threadsPerProc {
				res.Elapsed = time.Duration(host.RT().Now() - start)
			}
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		node := procs[w+1]
		// B is shared by all threads of the node.
		var bShared Matrix
		var nodeThreads []*core.Thread
		for k := 0; k < threadsPerProc; k++ {
			k := k
			th := node.TCreate(fmt.Sprintf("node%d-t%d", w, k), mts.PrioDefault, func(t *core.Thread) {
				if k == 0 {
					bData, _ := t.Recv(0, 0)
					bm, _ := numcodec.BytesToFloat64s(bData)
					bShared = Matrix{N: cfg.Dim, Data: bm}
					// Wake siblings waiting for B (shared address space).
					for _, sib := range nodeThreads[1:] {
						t.Unblock(sib)
					}
				} else {
					t.Block() // until thread 0 has B
				}
				aData, _ := t.Recv(k, 0)
				lo, hi := threadRange(w, k)
				rows := hi - lo
				out := make([]float64, rows*cfg.Dim)
				t.Compute(cfg.rowsCost(rows), func() {
					am, _ := numcodec.BytesToFloat64s(aData)
					aMat := Matrix{N: cfg.Dim, Data: make([]float64, cfg.Dim*cfg.Dim)}
					copy(aMat.Data[lo*cfg.Dim:hi*cfg.Dim], am)
					cMat := Matrix{N: cfg.Dim, Data: make([]float64, cfg.Dim*cfg.Dim)}
					MultiplyRows(aMat, bShared, cMat, lo, hi)
					copy(out, cMat.Data[lo*cfg.Dim:hi*cfg.Dim])
				})
				t.Send(k, 0, numcodec.Float64sToBytes(out))
			})
			nodeThreads = append(nodeThreads, th)
		}
	}
	return res
}

// BuildSequential returns the 1-node reference: the whole multiplication on
// one process (the paper's "1 node" rows, where p4 and NCS differ only by
// thread-maintenance overhead).
func BuildSequential(proc *p4.Process, cfg Config) *Result {
	res := &Result{}
	a := RandomMatrix(cfg.Dim, cfg.Seed)
	b := RandomMatrix(cfg.Dim, cfg.Seed+1)
	proc.Go(func(t *mts.Thread) {
		start := proc.RT().Now()
		res.C = NewMatrix(cfg.Dim)
		proc.Compute(t, cfg.rowsCost(cfg.Dim), func() {
			res.C = Multiply(a, b)
		})
		res.Elapsed = time.Duration(proc.RT().Now() - start)
	})
	return res
}
