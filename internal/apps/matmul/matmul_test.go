package matmul

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/transport"
	"repro/internal/work"
)

func TestMultiplyIdentity(t *testing.T) {
	n := 8
	a := RandomMatrix(n, 1)
	id := NewMatrix(n)
	for i := 0; i < n; i++ {
		id.Data[i*n+i] = 1
	}
	c := Multiply(a, id)
	if d := MaxAbsDiff(c, a); d != 0 {
		t.Fatalf("A*I != A (diff %g)", d)
	}
}

func TestMultiplyKnown(t *testing.T) {
	a := Matrix{N: 2, Data: []float64{1, 2, 3, 4}}
	b := Matrix{N: 2, Data: []float64{5, 6, 7, 8}}
	c := Multiply(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("C = %v, want %v", c.Data, want)
		}
	}
}

func TestMultiplyRowsPartial(t *testing.T) {
	n := 16
	a := RandomMatrix(n, 2)
	b := RandomMatrix(n, 3)
	whole := Multiply(a, b)
	part := NewMatrix(n)
	MultiplyRows(a, b, part, 4, 12)
	for i := 4 * n; i < 12*n; i++ {
		if part.Data[i] != whole.Data[i] {
			t.Fatal("partial rows differ from full multiply")
		}
	}
	for i := 0; i < 4*n; i++ {
		if part.Data[i] != 0 {
			t.Fatal("rows outside the range were touched")
		}
	}
}

func TestSplitCoversAllRows(t *testing.T) {
	f := func(dim, n uint8) bool {
		d := int(dim%64) + 1
		w := int(n%8) + 1
		covered := 0
		prevHi := 0
		for i := 0; i < w; i++ {
			lo, hi := split(d, w, i)
			if lo != prevHi {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == d && prevHi == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// realP4Group builds real-mode p4 processes over Mem.
func realP4Group(n int) []*p4.Process {
	mem := transport.NewMem()
	procs := make([]*p4.Process, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 20 * time.Second})
		procs[i] = p4.New(p4.Config{ID: p4.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
	}
	return procs
}

func realNCSGroup(n int) []*core.Proc {
	mem := transport.NewMem()
	procs := make([]*core.Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 20 * time.Second})
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
	}
	return procs
}

func runNCS(procs []*core.Proc) {
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
}

func TestDistributedP4MatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4} {
		cfg := Config{Dim: 32, Workers: workers, Seed: 5}
		procs := realP4Group(workers + 1)
		res := BuildP4(procs, cfg)
		(&p4.Procgroup{Procs: procs}).RunReal()
		want := Multiply(RandomMatrix(32, 5), RandomMatrix(32, 6))
		if d := MaxAbsDiff(res.C, want); d > 1e-12 {
			t.Fatalf("workers=%d: p4 result off by %g", workers, d)
		}
	}
}

func TestDistributedNCSMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		cfg := Config{Dim: 32, Workers: workers, Seed: 5}
		procs := realNCSGroup(workers + 1)
		res := BuildNCS(procs, cfg, 2)
		runNCS(procs)
		want := Multiply(RandomMatrix(32, 5), RandomMatrix(32, 6))
		if d := MaxAbsDiff(res.C, want); d > 1e-12 {
			t.Fatalf("workers=%d: NCS result off by %g", workers, d)
		}
	}
}

func TestNCSUnevenDims(t *testing.T) {
	// Dimension not divisible by workers*threads exercises the remainder
	// handling in split.
	cfg := Config{Dim: 30, Workers: 4, Seed: 9}
	procs := realNCSGroup(5)
	res := BuildNCS(procs, cfg, 2)
	runNCS(procs)
	want := Multiply(RandomMatrix(30, 9), RandomMatrix(30, 10))
	if d := MaxAbsDiff(res.C, want); d > 1e-12 {
		t.Fatalf("result off by %g", d)
	}
}

func TestSimModeElapsedPopulated(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.NewEthernetLAN(eng, 3, netsim.EthernetConfig{BitsPerSecond: 8e6})
	cost := tcpip.CostModel{MTU: 1460, PerMessage: time.Millisecond}
	procs := make([]*p4.Process, 3)
	for i := 0; i < 3; i++ {
		node := eng.NewNode(fmt.Sprintf("n%d", i))
		ep := tcpip.NewSimTCP(node, net, i, cost)
		procs[i] = p4.New(p4.Config{ID: p4.ProcID(i), RT: node.RT(), Endpoint: ep, Compute: work.Sim(node)})
	}
	res := BuildP4(procs, Config{Dim: 16, Workers: 2, OpCost: time.Microsecond, Seed: 1})
	eng.Run()
	if res.Elapsed <= 0 {
		t.Fatalf("sim elapsed = %v", res.Elapsed)
	}
	// 16^3 us of compute split over 2 workers = ~2ms floor.
	if res.Elapsed < 2*time.Millisecond {
		t.Fatalf("elapsed %v below compute floor", res.Elapsed)
	}
}
