package jpegcodec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCTRoundtrip(t *testing.T) {
	var src, freq, back Block
	rng := rand.New(rand.NewSource(1))
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	FDCT(&src, &freq)
	IDCT(&freq, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("IDCT(FDCT(x))[%d] = %g, want %g", i, back[i], src[i])
		}
	}
}

func TestDCTConstantBlock(t *testing.T) {
	var src, freq Block
	for i := range src {
		src[i] = 100
	}
	FDCT(&src, &freq)
	// DC of a constant block is 8*value with orthonormal scaling.
	if math.Abs(freq[0]-800) > 1e-9 {
		t.Fatalf("DC = %g, want 800", freq[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC[%d] = %g, want 0", i, freq[i])
		}
	}
}

func TestDCTEnergyPreservation(t *testing.T) {
	var src, freq Block
	rng := rand.New(rand.NewSource(2))
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	FDCT(&src, &freq)
	var es, ef float64
	for i := range src {
		es += src[i] * src[i]
		ef += freq[i] * freq[i]
	}
	if math.Abs(es-ef) > 1e-6 {
		t.Fatalf("energy %g vs %g", es, ef)
	}
}

func TestQuantTableQualityMonotone(t *testing.T) {
	q10 := NewQuantTable(10)
	q90 := NewQuantTable(90)
	for i := range q10 {
		if q10[i] < q90[i] {
			t.Fatalf("entry %d: q10=%d < q90=%d", i, q10[i], q90[i])
		}
	}
}

func TestZigzagRoundtrip(t *testing.T) {
	var levels [64]int16
	for i := range levels {
		levels[i] = int16(i * 3)
	}
	zz := Zigzag(&levels)
	back := Unzigzag(&zz)
	if back != levels {
		t.Fatal("zigzag roundtrip mismatch")
	}
	// Zigzag must be a permutation.
	seen := map[int]bool{}
	for _, v := range zigzag {
		if seen[v] {
			t.Fatal("zigzag not a permutation")
		}
		seen[v] = true
	}
}

func TestBitIORoundtrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11110000, 8)
	w.WriteBits(0b1, 1)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("first = %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0b11110000 {
		t.Fatalf("second = %b", v)
	}
	if v, _ := r.ReadBits(1); v != 1 {
		t.Fatalf("third = %b", v)
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
}

func TestHuffmanRoundtrip(t *testing.T) {
	freq := make([]int, alphabetN)
	freq[symEOB] = 100
	freq[symZRL] = 5
	freq[symRun(0, 1)] = 50
	freq[symRun(0, 2)] = 30
	freq[symRun(3, 4)] = 7
	freq[symRun(15, 12)] = 1
	code := BuildHuffman(freq)
	w := &BitWriter{}
	msg := []int{symEOB, symRun(0, 1), symRun(15, 12), symZRL, symRun(3, 4), symEOB}
	for _, s := range msg {
		code.Encode(w, s)
	}
	dec := NewDecoder(code)
	r := NewBitReader(w.Bytes())
	for i, want := range msg {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

func TestHuffmanPrefixProperty(t *testing.T) {
	freq := make([]int, alphabetN)
	rng := rand.New(rand.NewSource(3))
	for i := range freq {
		freq[i] = rng.Intn(1000)
	}
	code := BuildHuffman(freq)
	// Kraft inequality must hold.
	kraft := 0.0
	for _, l := range code.Lengths {
		if l > 0 {
			kraft += math.Pow(2, -float64(l))
		}
	}
	if kraft > 1+1e-12 {
		t.Fatalf("Kraft sum %g > 1", kraft)
	}
}

func TestQuickHuffmanRandomStreams(t *testing.T) {
	f := func(seed int64, nSyms uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		freq := make([]int, alphabetN)
		var msg []int
		for i := 0; i < int(nSyms)+1; i++ {
			s := rng.Intn(alphabetN)
			msg = append(msg, s)
			freq[s]++
		}
		code := BuildHuffman(freq)
		w := &BitWriter{}
		for _, s := range msg {
			code.Encode(w, s)
		}
		dec := NewDecoder(code)
		r := NewBitReader(w.Bytes())
		for _, want := range msg {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodePSNR(t *testing.T) {
	img := Synthetic(128, 96)
	for _, q := range []int{50, 75, 90} {
		enc := Encode(img, q)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if dec.W != img.W || dec.H != img.H {
			t.Fatalf("q=%d: size %dx%d", q, dec.W, dec.H)
		}
		psnr := PSNR(img, dec)
		if psnr < 30 {
			t.Fatalf("q=%d: PSNR %.1f dB < 30", q, psnr)
		}
	}
}

func TestHigherQualityHigherPSNRAndSize(t *testing.T) {
	img := Synthetic(128, 128)
	enc30 := Encode(img, 30)
	enc90 := Encode(img, 90)
	d30, _ := Decode(enc30)
	d90, _ := Decode(enc90)
	if PSNR(img, d90) <= PSNR(img, d30) {
		t.Fatal("quality 90 not better than 30")
	}
	if len(enc90) <= len(enc30) {
		t.Fatal("quality 90 not larger than 30")
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	img := Synthetic(256, 256)
	enc := Encode(img, 75)
	if len(enc) >= len(img.Pix)/2 {
		t.Fatalf("compressed %d of %d raw bytes: ratio too poor", len(enc), len(img.Pix))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("XXXXtooshort")); err == nil {
		t.Fatal("garbage accepted")
	}
	img := Synthetic(16, 16)
	enc := Encode(img, 75)
	if _, err := Decode(enc[:len(enc)-10]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); err != ErrNotNJPG {
		t.Fatalf("bad magic: err = %v", err)
	}
}

func TestSubRows(t *testing.T) {
	img := Synthetic(32, 32)
	part := img.SubRows(8, 16)
	if part.W != 32 || part.H != 8 {
		t.Fatalf("part size %dx%d", part.W, part.H)
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 32; x++ {
			if part.At(x, y) != img.At(x, y+8) {
				t.Fatal("SubRows copied wrong pixels")
			}
		}
	}
}

func TestFlatImageRoundtripExact(t *testing.T) {
	img := NewImage(64, 64)
	for i := range img.Pix {
		img.Pix[i] = 128
	}
	dec, err := Decode(Encode(img, 90))
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if dec.Pix[i] != 128 {
			t.Fatalf("flat image pixel %d = %d", i, dec.Pix[i])
		}
	}
}

func TestQuickCodecRandomImages(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Smooth random image: random low-frequency mixture.
		img := NewImage(32, 32)
		a, b := rng.Float64()*3, rng.Float64()*3
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				v := 128 + 100*math.Sin(a*float64(x)/32)*math.Cos(b*float64(y)/32)
				img.Set(x, y, uint8(math.Max(0, math.Min(255, v))))
			}
		}
		dec, err := Decode(Encode(img, 85))
		return err == nil && PSNR(img, dec) > 28
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
