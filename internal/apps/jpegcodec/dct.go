// Package jpegcodec is a from-scratch JPEG-style still-image codec for the
// paper's second benchmark (§5.2, Table 2). It implements the classic
// transform-coding pipeline on 8×8 blocks of a grayscale plane:
//
//	forward DCT → quantization → zigzag scan → run-length symbols →
//	canonical Huffman entropy coding
//
// and the exact inverse. It is not bitstream-compatible with ITU T.81 (no
// JFIF markers, grayscale only, one dynamic Huffman table) — the paper's
// experiment depends on the pipeline's compute and size characteristics,
// not interchange — but every stage is real and the decoder reconstructs
// the image to within quantization error (tests assert PSNR bounds).
package jpegcodec

import "math"

// BlockSize is the DCT block edge.
const BlockSize = 8

// Block is one 8×8 tile in row-major order.
type Block [BlockSize * BlockSize]float64

// cosTable[u][x] = cos((2x+1)uπ/16), the DCT-II basis.
var cosTable [BlockSize][BlockSize]float64

// alpha[u] is the DCT normalization factor.
var alpha [BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	alpha[0] = 1 / math.Sqrt2
	for u := 1; u < BlockSize; u++ {
		alpha[u] = 1
	}
}

// FDCT computes the 2-D type-II DCT of src (level-shifted samples) into
// dst, with orthonormal scaling as in T.81 Annex A.
func FDCT(src *Block, dst *Block) {
	var tmp Block
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += src[y*BlockSize+x] * cosTable[u][x]
			}
			tmp[y*BlockSize+u] = s * alpha[u] / 2
		}
	}
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y*BlockSize+u] * cosTable[v][y]
			}
			dst[v*BlockSize+u] = s * alpha[v] / 2
		}
	}
}

// IDCT computes the inverse 2-D DCT of src into dst.
func IDCT(src *Block, dst *Block) {
	var tmp Block
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += alpha[v] * src[v*BlockSize+u] * cosTable[v][y]
			}
			tmp[y*BlockSize+u] = s / 2
		}
	}
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += alpha[u] * tmp[y*BlockSize+u] * cosTable[u][x]
			}
			dst[y*BlockSize+x] = s / 2
		}
	}
}

// baseQuant is the T.81 Annex K luminance quantization table.
var baseQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// QuantTable is a scaled quantization table.
type QuantTable [64]int

// NewQuantTable scales the base table for a quality in [1,100] using the
// IJG convention.
func NewQuantTable(quality int) QuantTable {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	scale := 5000 / quality
	if quality >= 50 {
		scale = 200 - quality*2
	}
	var q QuantTable
	for i, v := range baseQuant {
		s := (v*scale + 50) / 100
		if s < 1 {
			s = 1
		}
		if s > 255 {
			s = 255
		}
		q[i] = s
	}
	return q
}

// Quantize divides DCT coefficients by the table, rounding to nearest.
func (q *QuantTable) Quantize(coeffs *Block, out *[64]int16) {
	for i := 0; i < 64; i++ {
		out[i] = int16(math.Round(coeffs[i] / float64(q[i])))
	}
}

// Dequantize multiplies quantized levels back up.
func (q *QuantTable) Dequantize(levels *[64]int16, out *Block) {
	for i := 0; i < 64; i++ {
		out[i] = float64(levels[i]) * float64(q[i])
	}
}

// zigzag[i] is the block index of the i-th coefficient in zigzag order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Zigzag reorders a block's levels into zigzag sequence.
func Zigzag(levels *[64]int16) [64]int16 {
	var out [64]int16
	for i := 0; i < 64; i++ {
		out[i] = levels[zigzag[i]]
	}
	return out
}

// Unzigzag restores block order from a zigzag sequence.
func Unzigzag(zz *[64]int16) [64]int16 {
	var out [64]int16
	for i := 0; i < 64; i++ {
		out[zigzag[i]] = zz[i]
	}
	return out
}
