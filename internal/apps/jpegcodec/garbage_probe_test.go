package jpegcodec

import (
	"math/rand"
	"testing"
)

func TestDecodeGarbageNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := Synthetic(32, 32)
	enc := Encode(img, 75)
	for trial := 0; trial < 5000; trial++ {
		b := append([]byte(nil), enc...)
		n := rng.Intn(8) + 1
		for i := 0; i < n; i++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			Decode(b)
		}()
	}
}

func TestDecodeRandomBytesNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		b := make([]byte, rng.Intn(2048)+1)
		rng.Read(b)
		if rng.Intn(2) == 0 {
			copy(b, "NJPG") // force past the magic check half the time
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			Decode(b)
		}()
	}
}
