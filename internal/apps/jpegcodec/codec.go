package jpegcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Image is a grayscale plane.
type Image struct {
	W, H int
	Pix  []uint8 // len W*H, row-major
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v uint8) { im.Pix[y*im.W+x] = v }

// SubRows returns rows [lo,hi) as an independent image (the unit the
// pipeline distributes to compressors).
func (im *Image) SubRows(lo, hi int) *Image {
	out := NewImage(im.W, hi-lo)
	copy(out.Pix, im.Pix[lo*im.W:hi*im.W])
	return out
}

// Synthetic generates a deterministic continuous-tone test image: soft
// gradients with a few disks and bars, the kind of content JPEG's DCT model
// compresses well (the paper benchmarks a 600 KB continuous-tone image).
func Synthetic(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := 96 + 64*math.Sin(2*math.Pi*fx*1.5)*math.Cos(2*math.Pi*fy)
			v += 32 * fx * fy * 255 / 255
			// A couple of disks.
			for _, c := range [][3]float64{{0.3, 0.3, 0.12}, {0.7, 0.6, 0.18}} {
				dx, dy := fx-c[0], fy-c[1]
				if dx*dx+dy*dy < c[2]*c[2] {
					v += 60 * (1 - (dx*dx+dy*dy)/(c[2]*c[2]))
				}
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Set(x, y, uint8(v))
		}
	}
	return im
}

// PSNR computes peak signal-to-noise ratio in dB between two images.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("jpegcodec: PSNR size mismatch")
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// Encoded stream layout:
//
//	magic "NJPG" | u16 W | u16 H | u8 quality |
//	alphabetN code lengths (u8 each) | u32 bit-payload length | payload
const encMagic = "NJPG"

// Errors.
var (
	ErrNotNJPG   = errors.New("jpegcodec: not an NJPG stream")
	ErrTruncated = errors.New("jpegcodec: truncated stream")
)

// Encode compresses the image at the given quality (1..100).
func Encode(im *Image, quality int) []byte {
	if im.W%BlockSize != 0 || im.H%BlockSize != 0 {
		panic(fmt.Sprintf("jpegcodec: dimensions %dx%d not multiples of %d", im.W, im.H, BlockSize))
	}
	q := NewQuantTable(quality)

	// Pass 1: transform all blocks, collect symbols + frequencies.
	type blockSyms struct {
		syms []int
		amps []struct {
			bits uint32
			n    uint
		}
	}
	bw, bh := im.W/BlockSize, im.H/BlockSize
	freq := make([]int, alphabetN)
	all := make([]blockSyms, 0, bw*bh)
	prevDC := int16(0)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			var px, coeffs Block
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					px[y*BlockSize+x] = float64(im.At(bx*BlockSize+x, by*BlockSize+y)) - 128
				}
			}
			FDCT(&px, &coeffs)
			var levels [64]int16
			q.Quantize(&coeffs, &levels)
			zz := Zigzag(&levels)
			// DC differential coding, as in T.81.
			dc := zz[0]
			zz[0] = dc - prevDC
			prevDC = dc

			var bs blockSyms
			emit := func(run int, level int16) {
				s := sizeClass(level)
				sym := symRun(run, s)
				bs.syms = append(bs.syms, sym)
				freq[sym]++
				// Amplitude: T.81 convention — negative levels stored as
				// level-1 in s bits (one's complement style).
				v := level
				if v < 0 {
					v += int16(1<<uint(s)) - 1
				}
				bs.amps = append(bs.amps, struct {
					bits uint32
					n    uint
				}{uint32(v), uint(s)})
			}
			run := 0
			// Treat the DC difference as run 0 (emit even when zero by
			// using size class of 0 → handled as EOB shortcut below).
			if zz[0] != 0 {
				emit(0, zz[0])
			} else {
				bs.syms = append(bs.syms, symZRL+0) // placeholder? no —
				// A zero DC difference still needs a symbol: encode it as
				// run 0 / size 1 with amplitude bit 0 representing 0? T.81
				// uses size-0 DC; we reserve symEOB for it.
				bs.syms = bs.syms[:len(bs.syms)-1]
				bs.syms = append(bs.syms, symEOB)
				freq[symEOB]++
				bs.amps = append(bs.amps, struct {
					bits uint32
					n    uint
				}{0, 0})
			}
			for i := 1; i < 64; i++ {
				if zz[i] == 0 {
					run++
					continue
				}
				for run > maxRun {
					bs.syms = append(bs.syms, symZRL)
					freq[symZRL]++
					bs.amps = append(bs.amps, struct {
						bits uint32
						n    uint
					}{0, 0})
					run -= 16
				}
				emit(run, zz[i])
				run = 0
			}
			if run > 0 {
				bs.syms = append(bs.syms, symEOB)
				freq[symEOB]++
				bs.amps = append(bs.amps, struct {
					bits uint32
					n    uint
				}{0, 0})
			}
			all = append(all, bs)
		}
	}

	code := BuildHuffman(freq)
	w := &BitWriter{}
	for _, bs := range all {
		for i, s := range bs.syms {
			code.Encode(w, s)
			if bs.amps[i].n > 0 {
				w.WriteBits(bs.amps[i].bits, bs.amps[i].n)
			}
		}
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(payload)+alphabetN+16)
	out = append(out, encMagic...)
	out = binary.BigEndian.AppendUint16(out, uint16(im.W))
	out = binary.BigEndian.AppendUint16(out, uint16(im.H))
	out = append(out, byte(quality))
	out = append(out, code.Lengths...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return out
}

// Decode reconstructs an image from an Encode stream.
func Decode(data []byte) (*Image, error) {
	if len(data) < 4+2+2+1+alphabetN+4 {
		return nil, ErrTruncated
	}
	if string(data[:4]) != encMagic {
		return nil, ErrNotNJPG
	}
	wpx := int(binary.BigEndian.Uint16(data[4:]))
	hpx := int(binary.BigEndian.Uint16(data[6:]))
	quality := int(data[8])
	// Header sanity: encoded images are whole 8×8 blocks, and a corrupt
	// header must not drive a huge allocation.
	if wpx == 0 || hpx == 0 || wpx%BlockSize != 0 || hpx%BlockSize != 0 || wpx*hpx > 1<<26 {
		return nil, fmt.Errorf("jpegcodec: implausible dimensions %dx%d", wpx, hpx)
	}
	lengths := make([]uint8, alphabetN)
	copy(lengths, data[9:9+alphabetN])
	if err := validateLengths(lengths); err != nil {
		return nil, err
	}
	off := 9 + alphabetN
	plen := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if len(data) < off+plen {
		return nil, ErrTruncated
	}
	payload := data[off : off+plen]

	h := &HuffmanCode{Lengths: lengths}
	h.assign()
	dec := NewDecoder(h)
	r := NewBitReader(payload)
	q := NewQuantTable(quality)
	im := NewImage(wpx, hpx)

	bw, bh := wpx/BlockSize, hpx/BlockSize
	prevDC := int16(0)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			var zz [64]int16
			// DC.
			sym, err := dec.Decode(r)
			if err != nil {
				return nil, err
			}
			pos := 1
			if sym != symEOB {
				run, size := symDecode(sym)
				if run != 0 {
					return nil, fmt.Errorf("jpegcodec: DC symbol with run %d", run)
				}
				amp, err := r.ReadBits(uint(size))
				if err != nil {
					return nil, err
				}
				zz[0] = decodeAmp(amp, size)
			}
			// AC until EOB or position 64.
			for pos < 64 {
				sym, err := dec.Decode(r)
				if err != nil {
					return nil, err
				}
				if sym == symEOB {
					break
				}
				if sym == symZRL {
					pos += 16
					continue
				}
				run, size := symDecode(sym)
				pos += run
				if pos >= 64 {
					return nil, fmt.Errorf("jpegcodec: coefficient index %d out of range", pos)
				}
				amp, err := r.ReadBits(uint(size))
				if err != nil {
					return nil, err
				}
				zz[pos] = decodeAmp(amp, size)
				pos++
			}
			zz[0] += prevDC
			prevDC = zz[0]

			levels := Unzigzag(&zz)
			var coeffs, px Block
			q.Dequantize(&levels, &coeffs)
			IDCT(&coeffs, &px)
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					v := math.Round(px[y*BlockSize+x] + 128)
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					im.Set(bx*BlockSize+x, by*BlockSize+y, uint8(v))
				}
			}
		}
	}
	return im, nil
}

func decodeAmp(amp uint32, size int) int16 {
	v := int16(amp)
	if v < int16(1<<uint(size-1)) {
		v -= int16(1<<uint(size)) - 1
	}
	return v
}
