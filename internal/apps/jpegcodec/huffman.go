package jpegcodec

import (
	"errors"
	"fmt"
	"sort"
)

// Entropy layer: the zigzag level sequence is turned into (zero-run, level)
// symbols, and symbols are coded with a canonical Huffman code built from
// the image's own statistics and stored in the header. This mirrors JPEG's
// run-length + Huffman design while staying self-contained.

// Symbol values: levels are mapped to a small alphabet by value class.
//
//	symEOB          end of block (remaining coefficients zero)
//	symZRL          run of 16 zeros
//	symRun(r, s)    r zeros (0..15) followed by a level of size class s
//
// The size class s is the number of magnitude bits (1..12); the magnitude
// bits themselves are written raw after the symbol, as in T.81.
const (
	symEOB    = 0
	symZRL    = 1
	symBase   = 2
	maxRun    = 15
	maxSize   = 12
	alphabetN = symBase + 16*maxSize
)

func symRun(run, size int) int { return symBase + run*maxSize + (size - 1) }

func symDecode(sym int) (run, size int) {
	v := sym - symBase
	return v / maxSize, v%maxSize + 1
}

// sizeClass returns the magnitude bit count of v (v != 0).
func sizeClass(v int16) int {
	m := v
	if m < 0 {
		m = -m
	}
	s := 0
	for m > 0 {
		s++
		m >>= 1
	}
	return s
}

// BitWriter packs bits MSB-first.
type BitWriter struct {
	buf  []byte
	cur  byte
	nbit uint
}

// WriteBits appends the low n bits of v, MSB first.
func (w *BitWriter) WriteBits(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | byte(v>>uint(i)&1)
		w.nbit++
		if w.nbit == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nbit = 0, 0
		}
	}
}

// Bytes flushes (padding with zero bits) and returns the stream.
func (w *BitWriter) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nbit))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// BitReader unpacks bits MSB-first.
type BitReader struct {
	buf []byte
	pos int
	bit uint
}

// NewBitReader wraps a buffer.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ErrOutOfBits reports stream exhaustion.
var ErrOutOfBits = errors.New("jpegcodec: bit stream exhausted")

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint32, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	v := uint32(r.buf[r.pos] >> (7 - r.bit) & 1)
	r.bit++
	if r.bit == 8 {
		r.bit, r.pos = 0, r.pos+1
	}
	return v, nil
}

// ReadBits returns the next n bits MSB-first.
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// HuffmanCode is a canonical prefix code over the symbol alphabet.
type HuffmanCode struct {
	// Lengths[s] is the code length of symbol s (0 = unused).
	Lengths []uint8
	codes   []uint32
}

// maxCodeLen bounds code lengths so the header stays compact and decode
// tables small.
const maxCodeLen = 16

// BuildHuffman constructs a canonical code from symbol frequencies using
// package-merge-free length-limited construction: standard Huffman, then
// length clamping with Kraft repair (sufficient for this alphabet size).
func BuildHuffman(freq []int) *HuffmanCode {
	n := len(freq)
	lengths := make([]uint8, n)

	type node struct {
		w           int
		sym         int // -1 for internal
		left, right *node
	}
	var heap []*node
	for s, f := range freq {
		if f > 0 {
			heap = append(heap, &node{w: f, sym: s})
		}
	}
	switch len(heap) {
	case 0:
		return &HuffmanCode{Lengths: lengths}
	case 1:
		lengths[heap[0].sym] = 1
		h := &HuffmanCode{Lengths: lengths}
		h.assign()
		return h
	}
	less := func(i, j int) bool { return heap[i].w < heap[j].w }
	for len(heap) > 1 {
		sort.Slice(heap, less)
		a, b := heap[0], heap[1]
		heap = append(heap[2:], &node{w: a.w + b.w, sym: -1, left: a, right: b})
	}
	var walk func(n *node, depth uint8)
	walk = func(nd *node, depth uint8) {
		if nd.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[nd.sym] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(heap[0], 0)

	clampLengths(lengths)
	h := &HuffmanCode{Lengths: lengths}
	h.assign()
	return h
}

// clampLengths limits lengths to maxCodeLen and repairs the Kraft sum.
func clampLengths(lengths []uint8) {
	over := false
	for i, l := range lengths {
		if l > maxCodeLen {
			lengths[i] = maxCodeLen
			over = true
		}
	}
	if !over {
		return
	}
	// Kraft sum in units of 2^-maxCodeLen.
	kraft := 0
	for _, l := range lengths {
		if l > 0 {
			kraft += 1 << (maxCodeLen - l)
		}
	}
	// While over-full, lengthen the longest-but-shortenable codes.
	for kraft > 1<<maxCodeLen {
		for i := range lengths {
			if lengths[i] > 0 && lengths[i] < maxCodeLen {
				lengths[i]++
				kraft -= 1 << (maxCodeLen - lengths[i])
				if kraft <= 1<<maxCodeLen {
					break
				}
			}
		}
	}
}

// assign derives canonical codewords from lengths.
func (h *HuffmanCode) assign() {
	type sl struct {
		sym int
		l   uint8
	}
	var used []sl
	for s, l := range h.Lengths {
		if l > 0 {
			used = append(used, sl{s, l})
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].l != used[j].l {
			return used[i].l < used[j].l
		}
		return used[i].sym < used[j].sym
	})
	h.codes = make([]uint32, len(h.Lengths))
	code := uint32(0)
	prev := uint8(0)
	for _, e := range used {
		code <<= e.l - prev
		prev = e.l
		h.codes[e.sym] = code
		code++
	}
}

// Encode writes symbol s to the bit stream.
func (h *HuffmanCode) Encode(w *BitWriter, s int) {
	l := h.Lengths[s]
	if l == 0 {
		panic(fmt.Sprintf("jpegcodec: encoding symbol %d with no code", s))
	}
	w.WriteBits(h.codes[s], uint(l))
}

// Decoder is a canonical-code bit decoder.
type Decoder struct {
	h *HuffmanCode
	// firstCode[l], firstSym[l]: canonical decoding tables per length.
	firstCode [maxCodeLen + 1]uint32
	count     [maxCodeLen + 1]int
	symsByLen [][]int
}

// NewDecoder builds decode tables for the code.
func NewDecoder(h *HuffmanCode) *Decoder {
	d := &Decoder{h: h, symsByLen: make([][]int, maxCodeLen+1)}
	type sl struct {
		sym int
		l   uint8
	}
	var used []sl
	for s, l := range h.Lengths {
		if l > 0 {
			used = append(used, sl{s, l})
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].l != used[j].l {
			return used[i].l < used[j].l
		}
		return used[i].sym < used[j].sym
	})
	code := uint32(0)
	prev := uint8(0)
	for _, e := range used {
		code <<= e.l - prev
		prev = e.l
		if d.count[e.l] == 0 {
			d.firstCode[e.l] = code
		}
		d.count[e.l]++
		d.symsByLen[e.l] = append(d.symsByLen[e.l], e.sym)
		code++
	}
	return d
}

// ErrBadCode reports an invalid codeword in the stream.
var ErrBadCode = errors.New("jpegcodec: invalid Huffman codeword")

// ErrBadLengths reports a code-length table that cannot form a valid
// prefix code (out-of-range lengths or an over-full Kraft sum) — the check
// a decoder must run on untrusted headers before building tables.
var ErrBadLengths = errors.New("jpegcodec: invalid Huffman length table")

// validateLengths checks that every length fits the decoder's tables and
// that the Kraft inequality holds.
func validateLengths(lengths []uint8) error {
	kraft := 0
	any := false
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if l > maxCodeLen {
			return ErrBadLengths
		}
		any = true
		kraft += 1 << (maxCodeLen - l)
	}
	if any && kraft > 1<<maxCodeLen {
		return ErrBadLengths
	}
	return nil
}

// Decode reads one symbol.
func (d *Decoder) Decode(r *BitReader) (int, error) {
	var code uint32
	for l := 1; l <= maxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if d.count[l] > 0 {
			idx := int(code - d.firstCode[l])
			if idx >= 0 && idx < d.count[l] {
				return d.symsByLen[l][idx], nil
			}
		}
	}
	return 0, ErrBadCode
}
