package jpegpipe

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps/jpegcodec"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/p4"
	"repro/internal/transport"
)

func realP4Group(n int) []*p4.Process {
	mem := transport.NewMem()
	procs := make([]*p4.Process, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 30 * time.Second})
		procs[i] = p4.New(p4.Config{ID: p4.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
	}
	return procs
}

func realNCSGroup(n int) []*core.Proc {
	mem := transport.NewMem()
	procs := make([]*core.Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 30 * time.Second})
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
	}
	return procs
}

func runNCS(procs []*core.Proc) {
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
}

func TestP4PipelineReconstructs(t *testing.T) {
	for _, workers := range []int{2, 4} {
		cfg := Config{W: 128, H: 64, Workers: workers, Quality: 80}
		procs := realP4Group(workers + 1)
		res := BuildP4(procs, cfg)
		(&p4.Procgroup{Procs: procs}).RunReal()
		orig := jpegcodec.Synthetic(128, 64)
		if psnr := jpegcodec.PSNR(orig, res.Output); psnr < 30 {
			t.Fatalf("workers=%d: PSNR %.1f dB", workers, psnr)
		}
		if res.CompressedBytes <= 0 || res.CompressedBytes >= 128*64 {
			t.Fatalf("workers=%d: compressed bytes %d implausible", workers, res.CompressedBytes)
		}
	}
}

func TestNCSPipelineReconstructs(t *testing.T) {
	for _, workers := range []int{2, 4} {
		cfg := Config{W: 128, H: 64, Workers: workers, Quality: 80}
		procs := realNCSGroup(workers + 1)
		res := BuildNCS(procs, cfg)
		runNCS(procs)
		orig := jpegcodec.Synthetic(128, 64)
		if psnr := jpegcodec.PSNR(orig, res.Output); psnr < 30 {
			t.Fatalf("workers=%d: PSNR %.1f dB", workers, psnr)
		}
	}
}

func TestP4AndNCSProduceSameImage(t *testing.T) {
	cfg := Config{W: 128, H: 64, Workers: 2, Quality: 80}
	p4procs := realP4Group(3)
	resP4 := BuildP4(p4procs, cfg)
	(&p4.Procgroup{Procs: p4procs}).RunReal()

	ncsProcs := realNCSGroup(3)
	resNCS := BuildNCS(ncsProcs, cfg)
	runNCS(ncsProcs)

	// Same codec, same split boundaries between compressors — but the NCS
	// variant compresses each half-share as an independent stream, so
	// pixel-exact equality is only guaranteed within each half. Compare
	// quality instead, and sizes within 25%.
	orig := jpegcodec.Synthetic(128, 64)
	pa := jpegcodec.PSNR(orig, resP4.Output)
	pb := jpegcodec.PSNR(orig, resNCS.Output)
	if pa < 30 || pb < 30 {
		t.Fatalf("PSNR p4=%.1f ncs=%.1f", pa, pb)
	}
	ratio := float64(resP4.CompressedBytes) / float64(resNCS.CompressedBytes)
	if ratio < 0.75 || ratio > 1.35 {
		t.Fatalf("compressed sizes diverge: p4=%d ncs=%d", resP4.CompressedBytes, resNCS.CompressedBytes)
	}
}

func TestValidateRejectsOddWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd worker count accepted")
		}
	}()
	Config{W: 64, H: 64, Workers: 3}.validate()
}

func TestValidateRejectsIndivisibleHeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible height accepted")
		}
	}()
	Config{W: 64, H: 50, Workers: 8}.validate()
}

func TestModelCompressedDefault(t *testing.T) {
	c := Config{}
	if got := c.modelCompressed(1000); got != 150 {
		t.Fatalf("default model ratio gave %d, want 150", got)
	}
	c.ModelRatio = 0.5
	if got := c.modelCompressed(1000); got != 500 {
		t.Fatalf("explicit ratio gave %d", got)
	}
}
