// Package jpegpipe implements the paper's second benchmark (§5.2, Table 2):
// a distributed JPEG compress/decompress pipeline over a cluster. Half the
// workers compress their share of the image while the other half
// decompress, in five stages: distribute the raw image, compress, ship the
// compressed pieces, decompress, and collect the result (Figure 15).
//
//   - BuildP4: one thread per process — each stage's blocking receive
//     leaves the processor idle (Figure 16, top).
//   - BuildNCS: two threads per process (Figures 17, 18) — thread 1 works
//     on the first half of a worker's share and thread 2 on the second, so
//     computation on one half overlaps communication of the other. The
//     master's thread 2 blocks (NCS_block) until thread 1 has read the
//     image, then both distribute their halves.
package jpegpipe

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apps/jpegcodec"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/p4"
	"repro/internal/vclock"
)

// Config parameterizes the pipeline benchmark.
type Config struct {
	// W, H are the image dimensions (the paper's 600 KB image ≈ 960×640).
	W, H int
	// Workers is the number of worker processes; must be even. Half
	// compress, half decompress. The master is extra.
	Workers int
	// Quality is the codec quality (1..100).
	Quality int

	// Cost model (sim mode): per-pixel compress/decompress CPU time and
	// per-byte image read/combine time on the master.
	CompressPerPixel   time.Duration
	DecompressPerPixel time.Duration
	MasterPerByte      time.Duration

	// ModelRatio is the compressed/raw size ratio used when the codec
	// does not actually run (pure simulation); real runs use real sizes.
	ModelRatio float64
}

func (c Config) validate() {
	if c.Workers < 2 || c.Workers%2 != 0 {
		panic(fmt.Sprintf("jpegpipe: worker count %d must be even and >= 2", c.Workers))
	}
	if c.H%(c.Workers/2) != 0 {
		panic("jpegpipe: image height must divide evenly among compressors")
	}
}

func (c Config) compressCost(pixels int) time.Duration {
	return time.Duration(int64(pixels) * int64(c.CompressPerPixel))
}

func (c Config) decompressCost(pixels int) time.Duration {
	return time.Duration(int64(pixels) * int64(c.DecompressPerPixel))
}

func (c Config) modelCompressed(pixels int) int {
	r := c.ModelRatio
	if r <= 0 {
		r = 0.15
	}
	return int(float64(pixels) * r)
}

// Result captures a finished run.
type Result struct {
	// Elapsed is the master's start-to-finish time.
	Elapsed time.Duration
	// Output is the reconstructed image (real mode).
	Output *jpegcodec.Image
	// CompressedBytes totals the compressed traffic (real mode). Read it
	// only after the run completes: in real mode the compressors run in
	// concurrent runtimes and update it through addCompressed.
	CompressedBytes int

	mu sync.Mutex
}

// addCompressed accumulates compressed traffic from concurrently running
// worker processes.
func (r *Result) addCompressed(n int) {
	r.mu.Lock()
	r.CompressedBytes += n
	r.mu.Unlock()
}

// Message tags.
const (
	tagRaw    = 1
	tagComp   = 2
	tagResult = 3
)

// BuildP4 installs the single-threaded pipeline. procs[0] is the master,
// procs[1..W/2] compress, procs[W/2+1..W] decompress; compressor i feeds
// decompressor i + W/2.
func BuildP4(procs []*p4.Process, cfg Config) *Result {
	cfg.validate()
	if len(procs) != cfg.Workers+1 {
		panic(fmt.Sprintf("jpegpipe: need %d procs, got %d", cfg.Workers+1, len(procs)))
	}
	res := &Result{}
	img := jpegcodec.Synthetic(cfg.W, cfg.H)
	nc := cfg.Workers / 2
	rowsPer := cfg.H / nc

	master := procs[0]
	master.Go(func(t *mts.Thread) {
		start := master.RT().Now()
		// Stage 0: "read" the image.
		master.Compute(t, time.Duration(int64(len(img.Pix))*int64(cfg.MasterPerByte)), nil)
		// Stage 1: distribute raw parts to compressors.
		for i := 0; i < nc; i++ {
			part := img.SubRows(i*rowsPer, (i+1)*rowsPer)
			master.Send(t, tagRaw, p4.ProcID(i+1), part.Pix)
		}
		// Stage 5: collect decompressed parts from decompressors.
		res.Output = jpegcodec.NewImage(cfg.W, cfg.H)
		for i := 0; i < nc; i++ {
			typ, from := tagResult, p4.ProcID(nc+i+1)
			data := master.Recv(t, &typ, &from)
			copy(res.Output.Pix[i*rowsPer*cfg.W:], data)
		}
		// Combine.
		master.Compute(t, time.Duration(int64(len(img.Pix))*int64(cfg.MasterPerByte)), nil)
		res.Elapsed = time.Duration(master.RT().Now() - start)
	})

	for i := 0; i < nc; i++ {
		i := i
		comp := procs[i+1]
		comp.Go(func(t *mts.Thread) {
			typ, from := tagRaw, p4.ProcID(0)
			raw := comp.Recv(t, &typ, &from)
			pixels := len(raw)
			var enc []byte
			comp.Compute(t, cfg.compressCost(pixels), func() {
				part := &jpegcodec.Image{W: cfg.W, H: pixels / cfg.W, Pix: raw}
				enc = jpegcodec.Encode(part, cfg.Quality)
			})
			if enc == nil {
				enc = make([]byte, cfg.modelCompressed(pixels))
			}
			res.addCompressed(len(enc))
			comp.Send(t, tagComp, p4.ProcID(nc+i+1), enc)
		})

		dec := procs[nc+i+1]
		dec.Go(func(t *mts.Thread) {
			typ, from := tagComp, p4.ProcID(i+1)
			enc := dec.Recv(t, &typ, &from)
			pixels := rowsPer * cfg.W
			var out []byte
			dec.Compute(t, cfg.decompressCost(pixels), func() {
				im, err := jpegcodec.Decode(enc)
				if err != nil {
					panic(err)
				}
				out = im.Pix
			})
			if out == nil {
				out = make([]byte, pixels)
			}
			dec.Send(t, tagResult, 0, out)
		})
	}
	return res
}

// BuildNCS installs the two-threads-per-process pipeline of Figures 17/18.
// The worker layout matches BuildP4; within each worker, thread 0 processes
// the upper half of its share and thread 1 the lower half.
func BuildNCS(procs []*core.Proc, cfg Config) *Result {
	cfg.validate()
	if len(procs) != cfg.Workers+1 {
		panic(fmt.Sprintf("jpegpipe: need %d procs, got %d", cfg.Workers+1, len(procs)))
	}
	if (cfg.H/(cfg.Workers/2))%2 != 0 {
		panic("jpegpipe: per-compressor rows must split between two threads")
	}
	res := &Result{}
	img := jpegcodec.Synthetic(cfg.W, cfg.H)
	nc := cfg.Workers / 2
	rowsPer := cfg.H / nc
	halfRows := rowsPer / 2

	master := procs[0]
	var start vclock.Time
	var masterThreads [2]*core.Thread
	imageRead := false
	masterDone := 0
	res.Output = jpegcodec.NewImage(cfg.W, cfg.H)

	for k := 0; k < 2; k++ {
		k := k
		masterThreads[k] = master.TCreate(fmt.Sprintf("master-t%d", k), mts.PrioDefault, func(t *core.Thread) {
			if k == 0 {
				start = master.RT().Now()
				// Thread 1 reads the image file, then unblocks thread 2
				// (Figure 17's NCS_block/NCS_unblock pair).
				t.Compute(time.Duration(int64(len(img.Pix))*int64(cfg.MasterPerByte)), nil)
				imageRead = true
				t.Unblock(masterThreads[1])
			} else {
				if !imageRead {
					t.Block()
				}
			}
			// Distribute this thread's half of every compressor's share.
			for i := 0; i < nc; i++ {
				lo := i*rowsPer + k*halfRows
				part := img.SubRows(lo, lo+halfRows)
				t.Send(k, core.ProcID(i+1), part.Pix)
			}
			// Collect from the matching decompressor threads.
			for i := 0; i < nc; i++ {
				data, _ := t.Recv(k, core.ProcID(nc+i+1))
				lo := i*rowsPer + k*halfRows
				copy(res.Output.Pix[lo*cfg.W:], data)
			}
			masterDone++
			if masterDone == 2 {
				t.Compute(time.Duration(int64(len(img.Pix))*int64(cfg.MasterPerByte)), nil)
				res.Elapsed = time.Duration(master.RT().Now() - start)
			}
		})
	}

	for i := 0; i < nc; i++ {
		i := i
		comp := procs[i+1]
		dec := procs[nc+i+1]
		for k := 0; k < 2; k++ {
			k := k
			comp.TCreate(fmt.Sprintf("comp%d-t%d", i, k), mts.PrioDefault, func(t *core.Thread) {
				raw, _ := t.Recv(k, 0)
				pixels := len(raw)
				var enc []byte
				t.Compute(cfg.compressCost(pixels), func() {
					part := &jpegcodec.Image{W: cfg.W, H: pixels / cfg.W, Pix: raw}
					enc = jpegcodec.Encode(part, cfg.Quality)
				})
				if enc == nil {
					enc = make([]byte, cfg.modelCompressed(pixels))
				}
				res.addCompressed(len(enc))
				t.Send(k, core.ProcID(nc+i+1), enc)
			})
			dec.TCreate(fmt.Sprintf("dec%d-t%d", i, k), mts.PrioDefault, func(t *core.Thread) {
				enc, _ := t.Recv(k, core.ProcID(i+1))
				pixels := halfRows * cfg.W
				var out []byte
				t.Compute(cfg.decompressCost(pixels), func() {
					im, err := jpegcodec.Decode(enc)
					if err != nil {
						panic(err)
					}
					out = im.Pix
				})
				if out == nil {
					out = make([]byte, pixels)
				}
				t.Send(k, 0, out)
			})
		}
	}
	return res
}
