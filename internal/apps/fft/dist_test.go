package fft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/p4"
	"repro/internal/transport"
)

func realP4Group(n int) []*p4.Process {
	mem := transport.NewMem()
	procs := make([]*p4.Process, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 20 * time.Second})
		procs[i] = p4.New(p4.Config{ID: p4.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
	}
	return procs
}

func realNCSGroup(n int) []*core.Proc {
	mem := transport.NewMem()
	procs := make([]*core.Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 20 * time.Second})
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(transport.ProcID(i), rt)})
	}
	return procs
}

func runNCS(procs []*core.Proc) {
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
}

func TestDistributedP4MatchesDFT(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		cfg := Config{M: 64, Sets: 2, Workers: workers, Seed: 3}
		procs := realP4Group(workers + 1)
		res := BuildP4(procs, cfg)
		(&p4.Procgroup{Procs: procs}).RunReal()
		if len(res.Spectra) != cfg.Sets {
			t.Fatalf("workers=%d: %d spectra", workers, len(res.Spectra))
		}
		for s, got := range res.Spectra {
			want := DFT(RandomSignal(cfg.M, cfg.Seed+int64(s)))
			if d := MaxAbsDiff(got, want); d > 1e-9 {
				t.Fatalf("workers=%d set=%d: off by %g", workers, s, d)
			}
		}
	}
}

func TestDistributedNCSMatchesDFT(t *testing.T) {
	for _, workers := range []int{2, 4} {
		cfg := Config{M: 128, Sets: 3, Workers: workers, Seed: 11}
		procs := realNCSGroup(workers + 1)
		res := BuildNCS(procs, cfg)
		runNCS(procs)
		if len(res.Spectra) != cfg.Sets {
			t.Fatalf("workers=%d: %d spectra", workers, len(res.Spectra))
		}
		for s, got := range res.Spectra {
			want := DFT(RandomSignal(cfg.M, cfg.Seed+int64(s)))
			if d := MaxAbsDiff(got, want); d > 1e-9 {
				t.Fatalf("workers=%d set=%d: off by %g", workers, s, d)
			}
		}
	}
}

func TestNCSLocalExchangeIsUsed(t *testing.T) {
	// With 1 worker (2 partitions), the single cross stage pairs the two
	// threads of the same node: everything goes through shared memory and
	// the result must still match.
	cfg := Config{M: 32, Sets: 1, Workers: 1, Seed: 2}
	procs := realNCSGroup(2)
	res := BuildNCS(procs, cfg)
	runNCS(procs)
	want := DFT(RandomSignal(32, 2))
	if d := MaxAbsDiff(res.Spectra[0], want); d > 1e-9 {
		t.Fatalf("thread-local exchange FFT off by %g", d)
	}
}

func TestPartnerInfoSymmetric(t *testing.T) {
	// Partners must agree: if p says (q, lower), q must say (p, upper).
	for _, tc := range []struct{ m, p int }{{64, 4}, {512, 16}} {
		B := tc.m / tc.p
		for cs := 0; 1<<cs < tc.p; cs++ {
			span := tc.m >> (cs + 1)
			for p := 0; p < tc.p; p++ {
				q, lower := partnerInfo(p, B, span)
				back, backLower := partnerInfo(q, B, span)
				if back != p || backLower == lower {
					t.Fatalf("m=%d p=%d stage=%d: partner asymmetry", tc.m, p, cs)
				}
			}
		}
	}
}

func TestBuildSequentialSpectra(t *testing.T) {
	mem := transport.NewMem()
	rt := mts.New(mts.Config{Name: "solo", IdleTimeout: 10 * time.Second})
	proc := p4.New(p4.Config{ID: 0, RT: rt, Endpoint: mem.Attach(0, rt)})
	cfg := Config{M: 64, Sets: 2, Workers: 1, Seed: 4}
	res := BuildSequential(proc, cfg)
	rt.Run()
	for s, got := range res.Spectra {
		want := DFT(RandomSignal(64, 4+int64(s)))
		if d := MaxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("set %d off by %g", s, d)
		}
	}
}
