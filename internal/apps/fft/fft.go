// Package fft implements the paper's third benchmark (§5.3, Table 3): the
// decimation-in-frequency (DIF) fast Fourier transform, sequentially and
// distributed across workstations.
//
// The distributed algorithm follows Figures 19-21: with M sample points on
// P partitions (P = N processes for p4, P = 2N threads for NCS), the first
// log2(P) butterfly stages pair elements across partitions — each pair of
// partner partitions exchanges blocks, the lower partner keeping the sums
// (X = A+B) and the upper the twiddled differences (Y = (A-B)·W^k) — and
// the remaining log2(M) - log2(P) stages are purely local. In the NCS
// variant the final exchange is between the two threads of one node and
// uses shared memory, "local among threads and does not involve remote
// communication".
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Forward computes the in-place DIF FFT of x (len must be a power of two).
// Output is in bit-reversed order until Reorder is applied; Forward applies
// Reorder itself, returning natural-order results.
func Forward(x []complex128) {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	difButterflies(x)
	Reorder(x)
}

// difButterflies runs the DIF stages, leaving bit-reversed order.
func difButterflies(x []complex128) {
	n := len(x)
	for span := n / 2; span >= 1; span /= 2 {
		for start := 0; start < n; start += 2 * span {
			for i := 0; i < span; i++ {
				a := x[start+i]
				b := x[start+i+span]
				x[start+i] = a + b
				w := cmplx.Exp(complex(0, -2*math.Pi*float64(i)/float64(2*span)))
				x[start+i+span] = (a - b) * w
			}
		}
	}
}

// Reorder permutes a bit-reversed array into natural order in place.
func Reorder(x []complex128) {
	n := len(x)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		j := reverseBits(i, bits)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

func reverseBits(v, bits int) int {
	out := 0
	for b := 0; b < bits; b++ {
		out = out<<1 | v&1
		v >>= 1
	}
	return out
}

// Inverse computes the inverse FFT in place (natural order in and out).
func Inverse(x []complex128) {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	Forward(x)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
}

// DFT computes the direct O(M²) transform, the verification oracle.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = sum
	}
	return out
}

// MaxAbsDiff returns the largest elementwise magnitude difference.
func MaxAbsDiff(a, b []complex128) float64 {
	max := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// RandomSignal generates a reproducible complex test signal.
func RandomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

// --- Partitioned stages (shared by the p4 and NCS distributed drivers) ---

// CrossStage performs one cross-partition butterfly stage on a partition's
// block. mine is this partition's block, theirs the partner's; lower says
// whether this partition holds the lower-indexed half of each pair.
// globalOffset is the index of mine[0] in the full array; span is the
// butterfly distance in points. The result replaces mine.
func CrossStage(mine, theirs []complex128, lower bool, globalOffset, span int) {
	if lower {
		for i := range mine {
			mine[i] += theirs[i]
		}
		return
	}
	for i := range mine {
		// theirs holds the lower element a, mine the upper b; the twiddle
		// index is the pair's offset within its 2·span group.
		k := (globalOffset + i) % span
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(2*span)))
		mine[i] = (theirs[i] - mine[i]) * w
	}
}

// LocalStages completes the remaining stages entirely within a partition
// whose size is block = len(x); globalOffset locates the block. After the
// cross stages, a partition holds a self-contained sub-problem of size
// len(x), so this is just a local DIF butterfly pass (no reorder).
func LocalStages(x []complex128) {
	difButterflies(x)
}

// GatherBitReversed assembles partition blocks (each internally
// bit-reversed after LocalStages) into the natural-order result. Partition
// p of P computed the sub-transform whose outputs are the frequencies
// congruent to rev(p) modulo P... — rather than reconstruct index algebra
// in two places, the drivers use this: given all blocks concatenated in
// partition order (the raw bit-reversed DIF output of the whole array),
// one global Reorder yields the natural-order spectrum.
func GatherBitReversed(blocks [][]complex128) []complex128 {
	var out []complex128
	for _, b := range blocks {
		out = append(out, b...)
	}
	Reorder(out)
	return out
}
