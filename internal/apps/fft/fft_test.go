package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestForwardMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 512} {
		x := RandomSignal(n, int64(n))
		want := DFT(x)
		got := append([]complex128(nil), x...)
		Forward(got)
		if d := MaxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: max diff %g", n, d)
		}
	}
}

func TestKnownTransform(t *testing.T) {
	// FFT of a constant signal is an impulse at DC.
	x := []complex128{1, 1, 1, 1}
	Forward(x)
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Fatalf("DC = %v, want 4", x[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestInverseRoundtrip(t *testing.T) {
	x := RandomSignal(256, 7)
	orig := append([]complex128(nil), x...)
	Forward(x)
	Inverse(x)
	if d := MaxAbsDiff(x, orig); d > 1e-10 {
		t.Fatalf("roundtrip diff %g", d)
	}
}

func TestParsevalProperty(t *testing.T) {
	x := RandomSignal(128, 3)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	Forward(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqEnergy/float64(len(x))-timeEnergy) > 1e-8 {
		t.Fatalf("Parseval violated: %g vs %g", freqEnergy/float64(len(x)), timeEnergy)
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length 6 accepted")
		}
	}()
	Forward(make([]complex128, 6))
}

func TestReverseBits(t *testing.T) {
	if reverseBits(0b001, 3) != 0b100 {
		t.Fatal("reverseBits(1,3) wrong")
	}
	if reverseBits(0b110, 3) != 0b011 {
		t.Fatal("reverseBits(6,3) wrong")
	}
}

// TestPartitionedPipelineMatchesSequential runs the same stage functions
// the distributed drivers use, single-goroutine, and checks the result
// against Forward — isolating the partition algebra from the messaging.
func TestPartitionedPipelineMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ m, p int }{{16, 2}, {64, 4}, {512, 8}, {512, 16}} {
		x := RandomSignal(tc.m, int64(tc.m+tc.p))
		want := append([]complex128(nil), x...)
		Forward(want)

		B := tc.m / tc.p
		blocks := make([][]complex128, tc.p)
		for p := 0; p < tc.p; p++ {
			blocks[p] = append([]complex128(nil), x[p*B:(p+1)*B]...)
		}
		cross := log2(tc.p)
		for cs := 0; cs < cross; cs++ {
			span := tc.m >> (cs + 1)
			// Snapshot pre-stage blocks, as the exchange would provide.
			pre := make([][]complex128, tc.p)
			for p := range blocks {
				pre[p] = append([]complex128(nil), blocks[p]...)
			}
			for p := 0; p < tc.p; p++ {
				partner, lower := partnerInfo(p, B, span)
				CrossStage(blocks[p], pre[partner], lower, p*B, span)
			}
		}
		for p := 0; p < tc.p; p++ {
			LocalStages(blocks[p])
		}
		got := GatherBitReversed(blocks)
		if d := MaxAbsDiff(got, want); d > 1e-9*float64(tc.m) {
			t.Fatalf("m=%d p=%d: max diff %g", tc.m, tc.p, d)
		}
	}
}

func TestQuickForwardLinearity(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		const n = 64
		a := RandomSignal(n, seed1)
		b := RandomSignal(n, seed2)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		Forward(a)
		Forward(b)
		Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
