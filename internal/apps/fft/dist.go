package fft

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/numcodec"
	"repro/internal/p4"
	"repro/internal/vclock"
)

// Config parameterizes the distributed FFT benchmark.
type Config struct {
	// M is the number of sample points (the paper uses 512).
	M int
	// Sets is how many independent sample sets to transform (paper: 8).
	Sets int
	// Workers is the number of node processes (the host is extra).
	Workers int
	// OpCost is the modelled time per element update (each of the log2 M
	// stages updates every element once).
	OpCost time.Duration
	// Seed generates the input signals.
	Seed int64
}

// stageCost models one butterfly stage over a block of b elements.
func (c Config) stageCost(b int) time.Duration {
	return time.Duration(int64(b) * int64(c.OpCost))
}

// Result captures a finished run.
type Result struct {
	// Elapsed is the host's start-to-finish time across all sample sets.
	Elapsed time.Duration
	// Spectra holds the natural-order output per sample set (real mode).
	Spectra [][]complex128
}

// Message tags.
const (
	tagInput  = 1
	tagBlock  = 2
	tagOutput = 3
)

// log2 returns floor(log2(v)); v must be a power of two.
func log2(v int) int {
	b := 0
	for 1<<b < v {
		b++
	}
	if 1<<b != v {
		panic(fmt.Sprintf("fft: %d is not a power of two", v))
	}
	return b
}

// partnerInfo computes, for a partition p of P holding block size B at a
// cross stage with butterfly span d, the partner partition and whether p
// holds the lower half.
func partnerInfo(p, blockSize, span int) (partner int, lower bool) {
	dist := span / blockSize
	lower = p%(2*dist) < dist
	if lower {
		return p + dist, true
	}
	return p - dist, false
}

// BuildP4 installs the Figure 19 program on procs ([0] = host, rest =
// workers). Each worker holds one partition; every cross stage exchanges
// whole blocks between partner workers over the network.
func BuildP4(procs []*p4.Process, cfg Config) *Result {
	if len(procs) != cfg.Workers+1 {
		panic(fmt.Sprintf("fft: need %d procs, got %d", cfg.Workers+1, len(procs)))
	}
	res := &Result{}
	inputs := make([][]complex128, cfg.Sets)
	for s := range inputs {
		inputs[s] = RandomSignal(cfg.M, cfg.Seed+int64(s))
	}
	P := cfg.Workers
	B := cfg.M / P
	if B*P != cfg.M {
		panic("fft: M must be divisible by worker count")
	}
	crossStages := log2(P)
	totalStages := log2(cfg.M)

	host := procs[0]
	host.Go(func(t *mts.Thread) {
		start := host.RT().Now()
		for s := 0; s < cfg.Sets; s++ {
			for w := 0; w < P; w++ {
				host.Send(t, tagInput, p4.ProcID(w+1), numcodec.Complex128sToBytes(inputs[s][w*B:(w+1)*B]))
			}
			blocks := make([][]complex128, P)
			for w := 0; w < P; w++ {
				typ, from := tagOutput, p4.ProcID(w+1)
				data := host.Recv(t, &typ, &from)
				blocks[w], _ = numcodec.BytesToComplex128s(data)
			}
			res.Spectra = append(res.Spectra, GatherBitReversed(blocks))
		}
		res.Elapsed = time.Duration(host.RT().Now() - start)
	})

	for w := 0; w < P; w++ {
		w := w
		node := procs[w+1]
		node.Go(func(t *mts.Thread) {
			for s := 0; s < cfg.Sets; s++ {
				typ, from := tagInput, p4.ProcID(0)
				data := node.Recv(t, &typ, &from)
				block, _ := numcodec.BytesToComplex128s(data)
				// Cross-partition stages.
				for cs := 0; cs < crossStages; cs++ {
					span := cfg.M >> (cs + 1)
					partner, lower := partnerInfo(w, B, span)
					node.Send(t, tagBlock, p4.ProcID(partner+1), numcodec.Complex128sToBytes(block))
					typ, from := tagBlock, p4.ProcID(partner+1)
					theirsB := node.Recv(t, &typ, &from)
					theirs, _ := numcodec.BytesToComplex128s(theirsB)
					node.Compute(t, cfg.stageCost(B), func() {
						CrossStage(block, theirs, lower, w*B, span)
					})
				}
				// Local stages.
				node.Compute(t, cfg.stageCost(B)*time.Duration(totalStages-crossStages), func() {
					LocalStages(block)
				})
				node.Send(t, tagOutput, 0, numcodec.Complex128sToBytes(block))
			}
		})
	}
	return res
}

// BuildNCS installs the Figure 20/21 program: two threads per worker, so
// 2·Workers partitions; the final cross stage pairs the two threads of one
// node and exchanges through shared memory instead of the network.
func BuildNCS(procs []*core.Proc, cfg Config) *Result {
	const T = 2 // threads per node process, as in the paper
	if len(procs) != cfg.Workers+1 {
		panic(fmt.Sprintf("fft: need %d procs, got %d", cfg.Workers+1, len(procs)))
	}
	res := &Result{}
	inputs := make([][]complex128, cfg.Sets)
	for s := range inputs {
		inputs[s] = RandomSignal(cfg.M, cfg.Seed+int64(s))
	}
	P := cfg.Workers * T
	B := cfg.M / P
	if B*P != cfg.M {
		panic("fft: M must be divisible by 2*worker count")
	}
	crossStages := log2(P)
	totalStages := log2(cfg.M)

	host := procs[0]
	var start vclock.Time
	hostDone := 0
	blocks := make([][]complex128, P)
	perSet := make([]int, cfg.Sets)

	for k := 0; k < T; k++ {
		k := k
		host.TCreate(fmt.Sprintf("host-t%d", k), mts.PrioDefault, func(t *core.Thread) {
			if k == 0 {
				start = host.RT().Now()
			}
			for s := 0; s < cfg.Sets; s++ {
				// Thread k feeds and drains partitions with thread index k.
				for w := 0; w < cfg.Workers; w++ {
					part := w*T + k
					t.Send(k, core.ProcID(w+1), numcodec.Complex128sToBytes(inputs[s][part*B:(part+1)*B]))
				}
				for w := 0; w < cfg.Workers; w++ {
					part := w*T + k
					data, _ := t.Recv(k, core.ProcID(w+1))
					blocks[part], _ = numcodec.BytesToComplex128s(data)
					perSet[s]++
					if perSet[s] == P {
						res.Spectra = append(res.Spectra, GatherBitReversed(blocks))
					}
				}
			}
			hostDone++
			if hostDone == T {
				res.Elapsed = time.Duration(host.RT().Now() - start)
			}
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		node := procs[w+1]
		// Shared-memory exchange lanes between the node's two threads,
		// one per direction (the paper's "local among threads" step).
		lane := [2]*mts.Chan[[]complex128]{
			mts.NewChan[[]complex128](node.RT(), 1),
			mts.NewChan[[]complex128](node.RT(), 1),
		}
		for k := 0; k < T; k++ {
			k := k
			node.TCreate(fmt.Sprintf("node%d-t%d", w, k), mts.PrioDefault, func(t *core.Thread) {
				part := w*T + k
				for s := 0; s < cfg.Sets; s++ {
					data, _ := t.Recv(k, 0)
					block, _ := numcodec.BytesToComplex128s(data)
					for cs := 0; cs < crossStages; cs++ {
						span := cfg.M >> (cs + 1)
						partner, lower := partnerInfo(part, B, span)
						var theirs []complex128
						if partner/T == w {
							// Sibling thread: exchange via shared memory.
							lane[k].Send(t.MT(), block)
							theirs = lane[partner%T].Recv(t.MT())
						} else {
							t.Send(partner%T, core.ProcID(partner/T+1), numcodec.Complex128sToBytes(block))
							theirsB, _ := t.Recv(partner%T, core.ProcID(partner/T+1))
							theirs, _ = numcodec.BytesToComplex128s(theirsB)
						}
						next := make([]complex128, len(block))
						copy(next, block)
						t.Compute(cfg.stageCost(B), func() {
							CrossStage(next, theirs, lower, part*B, span)
						})
						block = next
					}
					t.Compute(cfg.stageCost(B)*time.Duration(totalStages-crossStages), func() {
						LocalStages(block)
					})
					t.Send(k, 0, numcodec.Complex128sToBytes(block))
				}
			})
		}
	}
	return res
}

// BuildSequential computes all sets on one process (the 1-node rows).
func BuildSequential(proc *p4.Process, cfg Config) *Result {
	res := &Result{}
	inputs := make([][]complex128, cfg.Sets)
	for s := range inputs {
		inputs[s] = RandomSignal(cfg.M, cfg.Seed+int64(s))
	}
	totalStages := log2(cfg.M)
	proc.Go(func(t *mts.Thread) {
		start := proc.RT().Now()
		for s := 0; s < cfg.Sets; s++ {
			x := append([]complex128(nil), inputs[s]...)
			proc.Compute(t, cfg.stageCost(cfg.M)*time.Duration(totalStages), func() {
				Forward(x)
			})
			res.Spectra = append(res.Spectra, x)
		}
		res.Elapsed = time.Duration(proc.RT().Now() - start)
	})
	return res
}
