package tcpip

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/vclock"
)

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: the checksum of 00 01 f2 03 f4 f5 f6 f7 is the
	// complement of ddf2+... — verify via the defining property below and
	// a couple of fixed points.
	if got := Checksum([]byte{}); got != 0xFFFF {
		t.Fatalf("checksum(empty) = %04x, want ffff", got)
	}
	if got := Checksum([]byte{0xFF, 0xFF}); got != 0x0000 {
		t.Fatalf("checksum(ffff) = %04x, want 0000", got)
	}
}

func TestChecksumVerifyProperty(t *testing.T) {
	// Appending the checksum makes the total sum verify to zero.
	data := []byte{0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7}
	ck := Checksum(data)
	withCk := append(append([]byte{}, data...), byte(ck>>8), byte(ck))
	if got := Checksum(withCk); got != 0 {
		t.Fatalf("verification sum = %04x, want 0", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	a := Checksum([]byte{1, 2, 3})
	b := Checksum([]byte{1, 2, 3, 0})
	if a != b {
		t.Fatalf("odd-length padding mismatch: %04x vs %04x", a, b)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	orig := Checksum(data)
	data[50] ^= 0x04
	if Checksum(data) == orig {
		t.Fatal("checksum missed corruption")
	}
}

func TestCostModelArithmetic(t *testing.T) {
	c := CostModel{
		PerMessage:  time.Millisecond,
		PerByteSend: time.Microsecond,
		PerByteRecv: 2 * time.Microsecond,
		MTU:         1000,
	}
	if got := c.SendCost(500); got != time.Millisecond+500*time.Microsecond {
		t.Fatalf("SendCost = %v", got)
	}
	if got := c.RecvCost(500); got != time.Millisecond+1000*time.Microsecond {
		t.Fatalf("RecvCost = %v", got)
	}
	if c.Frames(0) != 1 || c.Frames(1000) != 1 || c.Frames(1001) != 2 {
		t.Fatal("Frames boundary arithmetic wrong")
	}
}

// buildPair constructs two simulated hosts on a private Ethernet.
func buildPair(t *testing.T, cost CostModel) (*sim.Engine, *netsim.Network, [2]*sim.Node, [2]*SimTCP) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.NewEthernetLAN(eng, 2, netsim.EthernetConfig{BitsPerSecond: 8e6})
	var nodes [2]*sim.Node
	var eps [2]*SimTCP
	for i := 0; i < 2; i++ {
		nodes[i] = eng.NewNode("host")
		eps[i] = NewSimTCP(nodes[i], net, i, cost)
	}
	return eng, net, nodes, eps
}

func TestSimTCPDelivers(t *testing.T) {
	cost := CostModel{PerMessage: time.Millisecond, PerByteSend: time.Microsecond, PerByteRecv: time.Microsecond, MTU: 1460, FrameOverhead: 58}
	eng, _, nodes, eps := buildPair(t, cost)
	var got *transport.Message
	eps[1].SetHandler(func(m *transport.Message) { got = m })
	eps[0].SetHandler(func(m *transport.Message) {})
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Tag: 9, Data: make([]byte, 5000)})
	})
	eng.Run()
	if got == nil || got.Tag != 9 || len(got.Data) != 5000 {
		t.Fatalf("got %+v", got)
	}
	if eps[0].MsgsSent() != 1 || eps[0].BytesSent() != 5000 {
		t.Fatalf("stats: %d msgs %d bytes", eps[0].MsgsSent(), eps[0].BytesSent())
	}
}

func TestSimTCPTimingComponents(t *testing.T) {
	// 1 KB payload plus the message header, MTU large, over 8 Mbps.
	// Sender CPU = PerMessage + wire_len*PerByteSend; the frame then
	// serializes after the CPU burst; delivery = CPU + wire time.
	cost := CostModel{PerMessage: time.Millisecond, PerByteSend: time.Microsecond, MTU: 8192, FrameOverhead: 58}
	eng, _, nodes, eps := buildPair(t, cost)
	var arrived vclock.Time
	eps[1].SetHandler(func(m *transport.Message) { arrived = eng.Now() })
	eps[0].SetHandler(func(m *transport.Message) {})
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, 1000)})
	})
	eng.Run()
	wireLen := 1000 + transport.HeaderSize
	cpu := cost.SendCost(wireLen)
	wire := time.Duration(float64((wireLen+58)*8) / 8e6 * 1e9)
	want := cpu + wire
	gotD := time.Duration(arrived)
	if diff := gotD - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("arrival = %v, want ~%v", gotD, want)
	}
}

func TestSimTCPSenderBlockedForDrain(t *testing.T) {
	// With a slow wire, Send must not return before serialization ends.
	cost := CostModel{PerMessage: 0, PerByteSend: 0, MTU: 100, FrameOverhead: 0}
	eng := sim.NewEngine()
	net := netsim.NewEthernetLAN(eng, 2, netsim.EthernetConfig{BitsPerSecond: 8000}) // 1 KB/s
	n0 := eng.NewNode("h0")
	n1 := eng.NewNode("h1")
	e0 := NewSimTCP(n0, net, 0, cost)
	e1 := NewSimTCP(n1, net, 1, cost)
	e0.SetHandler(func(m *transport.Message) {})
	e1.SetHandler(func(m *transport.Message) {})
	var sendDone vclock.Time
	n0.RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		// Payload sized so the wire message is exactly 1000 bytes = 1 s.
		e0.Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, 1000-transport.HeaderSize)})
		sendDone = eng.Now()
	})
	eng.Run()
	if sendDone != vclock.Time(time.Second) {
		t.Fatalf("send returned at %v, want 1s (wire drain)", sendDone.Seconds())
	}
}

func TestSimTCPFragmentation(t *testing.T) {
	cost := CostModel{MTU: 100, FrameOverhead: 10, PerMessage: 0, PerByteSend: 0}
	eng, net, nodes, eps := buildPair(t, cost)
	var got *transport.Message
	eps[1].SetHandler(func(m *transport.Message) { got = m })
	eps[0].SetHandler(func(m *transport.Message) {})
	payload := make([]byte, 950)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Data: payload})
	})
	eng.Run()
	if got == nil {
		t.Fatal("fragmented message not delivered")
	}
	for i := range payload {
		if got.Data[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	// (950+28) bytes at MTU 100 = 10 frames.
	if n := net.EthernetMedium().UnitsSent(); n != 10 {
		t.Fatalf("frames = %d, want 10", n)
	}
}

func TestSimTCPInterleavedSources(t *testing.T) {
	// Two senders to one receiver: both messages arrive intact despite
	// frame interleaving on the shared wire.
	cost := CostModel{MTU: 64, FrameOverhead: 0}
	eng := sim.NewEngine()
	net := netsim.NewEthernetLAN(eng, 3, netsim.EthernetConfig{BitsPerSecond: 8e6})
	var eps [3]*SimTCP
	var nodes [3]*sim.Node
	for i := 0; i < 3; i++ {
		nodes[i] = eng.NewNode("h")
		eps[i] = NewSimTCP(nodes[i], net, i, cost)
		eps[i].SetHandler(func(m *transport.Message) {})
	}
	var got []*transport.Message
	eps[2].SetHandler(func(m *transport.Message) { got = append(got, m) })
	for s := 0; s < 2; s++ {
		s := s
		nodes[s].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
			eps[s].Send(th, &transport.Message{From: transport.ProcID(s), To: 2, Tag: s, Data: make([]byte, 500)})
		})
	}
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("%d messages delivered, want 2", len(got))
	}
}
