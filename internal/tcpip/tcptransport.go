package tcpip

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TCPNetwork is the real-mode Normal Speed Mode carrier (paper Figure 6's
// NSM tier): NCS messages over genuine TCP connections on loopback. It
// exists for interoperability-class applications, where the paper trades
// performance for the standard protocol stack.
//
// Topology: every endpoint listens; connections are dialed lazily per
// (src, dst) pair and cached. Messages are length-prefixed wire messages.
type TCPNetwork struct {
	mu        sync.Mutex
	endpoints map[transport.ProcID]*TCPEndpoint
}

// NewTCPNetwork returns an empty mesh.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{endpoints: make(map[transport.ProcID]*TCPEndpoint)}
}

// TCPEndpoint is one process's NSM attachment.
type TCPEndpoint struct {
	net  *TCPNetwork
	proc transport.ProcID
	rt   *mts.Runtime
	ln   *net.TCPListener

	mu      sync.Mutex
	handler transport.Handler
	conns   map[transport.ProcID]*net.TCPConn
	seq     uint32
	closed  bool

	// batchBufs/batchVecs stage one SendBatch run's pooled frames and the
	// writev vector over them. Only the owning process's send system
	// thread calls Send/SendBatch, so no lock guards them.
	batchBufs []*wire.Buf
	batchVecs net.Buffers
}

// Attach creates an endpoint for proc listening on an ephemeral loopback
// port. Deliveries are Posted into rt's scheduler domain.
func (n *TCPNetwork) Attach(proc transport.ProcID, rt *mts.Runtime) (*TCPEndpoint, error) {
	ln, err := net.ListenTCP("tcp4", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("tcpip: listen: %w", err)
	}
	e := &TCPEndpoint{
		net:   n,
		proc:  proc,
		rt:    rt,
		ln:    ln,
		conns: make(map[transport.ProcID]*net.TCPConn),
	}
	n.mu.Lock()
	if _, dup := n.endpoints[proc]; dup {
		n.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("tcpip: duplicate proc %d", proc)
	}
	n.endpoints[proc] = e
	n.mu.Unlock()
	go e.acceptLoop()
	return e, nil
}

// Close shuts the listener and all connections.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[transport.ProcID]*net.TCPConn{}
	e.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return e.ln.Close()
}

// Proc implements transport.Endpoint.
func (e *TCPEndpoint) Proc() transport.ProcID { return e.proc }

// SetHandler implements transport.Endpoint.
func (e *TCPEndpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Send implements transport.Endpoint: blocking socket write, exactly the
// p4-era semantics (the calling goroutine — and so the cooperative
// runtime — is held only for the kernel copy on loopback).
func (e *TCPEndpoint) Send(t *mts.Thread, m *transport.Message) {
	if m.From != e.proc {
		panic(fmt.Sprintf("tcpip: proc %d sending as %d", e.proc, m.From))
	}
	conn, err := e.connTo(m.To)
	if err != nil {
		panic("tcpip: " + err.Error())
	}
	e.mu.Lock()
	e.seq++
	m.Seq = e.seq
	e.mu.Unlock()
	wb := frameMessage(m)
	_, err = conn.Write(wb.B)
	wire.PutBuf(wb)
	if err != nil {
		panic("tcpip: write: " + err.Error())
	}
}

// frameMessage encodes one length-prefixed wire frame into a pooled
// buffer: prefix and message share the buffer and leave in one write (no
// Nagle-provoking split). The single framing authority for Send and
// SendBatch.
func frameMessage(m *transport.Message) *wire.Buf {
	wb := wire.GetBuf(4 + m.WireSize())
	wb.B = append(wb.B, 0, 0, 0, 0)
	wb.B = m.MarshalAppend(wb.B)
	binary.BigEndian.PutUint32(wb.B[:4], uint32(len(wb.B)-4))
	return wb
}

// SendBatch implements transport.BatchSender: every frame of a
// same-destination run is length-prefixed into its own pooled buffer and
// the whole run leaves in a single writev (net.Buffers.WriteTo) — one
// syscall for the burst instead of one per message.
func (e *TCPEndpoint) SendBatch(t *mts.Thread, ms []*transport.Message) {
	if len(ms) == 0 {
		return
	}
	conn, err := e.connTo(ms[0].To)
	if err != nil {
		panic("tcpip: " + err.Error())
	}
	bufs := e.batchBufs[:0]
	vecs := e.batchVecs[:0]
	e.mu.Lock()
	for _, m := range ms {
		if m.From != e.proc {
			e.mu.Unlock()
			panic(fmt.Sprintf("tcpip: proc %d sending as %d", e.proc, m.From))
		}
		if m.To != ms[0].To {
			e.mu.Unlock()
			panic("tcpip: SendBatch run mixes destinations")
		}
		e.seq++
		m.Seq = e.seq
	}
	e.mu.Unlock()
	for _, m := range ms {
		wb := frameMessage(m)
		bufs = append(bufs, wb)
		vecs = append(vecs, wb.B)
	}
	// Keep the (possibly re-grown) scratch arrays before WriteTo consumes
	// the vector in place by advancing its slice header.
	e.batchBufs = bufs
	e.batchVecs = vecs
	_, err = vecs.WriteTo(conn)
	for i, wb := range e.batchBufs {
		wire.PutBuf(wb)
		e.batchBufs[i] = nil
		e.batchVecs[i] = nil
	}
	e.batchBufs = e.batchBufs[:0]
	e.batchVecs = e.batchVecs[:0]
	if err != nil {
		panic("tcpip: writev: " + err.Error())
	}
}

// connTo returns (dialing if needed) the connection toward dst.
func (e *TCPEndpoint) connTo(dst transport.ProcID) (*net.TCPConn, error) {
	e.mu.Lock()
	if c, ok := e.conns[dst]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	e.net.mu.Lock()
	peer, ok := e.net.endpoints[dst]
	e.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown destination proc %d", dst)
	}
	raddr := peer.ln.Addr().(*net.TCPAddr)
	conn, err := net.DialTCP("tcp4", nil, raddr)
	if err != nil {
		return nil, err
	}
	// Identify ourselves so the acceptor can map the inbound stream.
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(int32(e.proc)))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	e.mu.Lock()
	if existing, ok := e.conns[dst]; ok {
		// Lost a dial race; keep the established one.
		e.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	e.conns[dst] = conn
	e.mu.Unlock()
	return conn, nil
}

func (e *TCPEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.AcceptTCP()
		if err != nil {
			return
		}
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn *net.TCPConn) {
	defer conn.Close()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > 64<<20 {
			return // implausible frame; drop the stream
		}
		// The pooled frame travels with the message (zero-copy payload
		// alias); it recycles when the consumer copies the payload out —
		// RecvInto, a control handler — closing the pool loop.
		fb := wire.GetBuf(int(n))
		fb.B = fb.B[:n]
		if _, err := io.ReadFull(conn, fb.B); err != nil {
			wire.PutBuf(fb)
			return
		}
		m, err := wire.UnmarshalPooled(fb)
		if err != nil {
			wire.PutBuf(fb)
			return
		}
		e.rt.Post(func() {
			e.mu.Lock()
			h := e.handler
			e.mu.Unlock()
			if h != nil {
				h(m)
			}
		})
	}
}
