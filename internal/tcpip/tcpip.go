// Package tcpip models the traditional protocol path the paper's baseline
// (p4) and the NCS Normal Speed Mode run over: socket call overhead, TCP/IP
// per-byte protocol processing (the five-bus-accesses-per-word datapath of
// Figure 3a), MTU fragmentation, and the Internet checksum.
//
// In simulation the stack is a cost model: protocol processing occupies the
// sending/receiving workstation's CPU for calibrated durations while the
// wire carries MTU-sized frames through internal/netsim. The real-memory
// version of the same datapath (actual copies, counted bus accesses) lives
// in internal/hostif and backs the Figure 3 experiment.
package tcpip

import (
	"fmt"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Checksum computes the Internet checksum (RFC 1071) over b: the ones'
// complement of the ones'-complement sum of 16-bit words.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// CostModel captures the host-side expense of the socket/TCP/IP path on a
// given workstation class. Calibrated instances for the 1995 platforms live
// in internal/bench.
type CostModel struct {
	// PerMessage is the fixed cost of a send or receive: system call,
	// socket layer, protocol control block work.
	PerMessage time.Duration
	// PerByteSend is the marginal sender cost per payload byte (the
	// 5-access copy+checksum datapath of Figure 3a).
	PerByteSend time.Duration
	// PerByteRecv is the marginal receiver cost per payload byte.
	PerByteRecv time.Duration
	// MTU is the payload capacity of one wire frame.
	MTU int
	// FrameOverhead is per-frame header bytes on the wire (MAC+IP+TCP).
	FrameOverhead int
}

// SendCost returns the CPU time to push an n-byte message into the stack.
func (c CostModel) SendCost(n int) time.Duration {
	return c.PerMessage + time.Duration(n)*c.PerByteSend
}

// RecvCost returns the CPU time to pull an n-byte message out of the stack.
func (c CostModel) RecvCost(n int) time.Duration {
	return c.PerMessage + time.Duration(n)*c.PerByteRecv
}

// Frames returns how many wire frames an n-byte message needs. The
// fragmentation extents themselves come from the shared wire codec.
func (c CostModel) Frames(n int) int {
	return wire.Fragments(n, c.MTU)
}

// msgFrag is the unit payload for one TCP segment of a message.
type msgFrag struct {
	src  transport.ProcID
	seq  uint32
	last bool
	// buf holds the full marshalled message on the last fragment; the
	// pooled buffer is recycled by deliverFrame once decoded.
	buf *wire.Buf
}

// SimTCP is a transport.Endpoint that charges the cost model on the local
// CPU and carries frames through the simulated network. One per host.
type SimTCP struct {
	eng     *sim.Engine
	node    *sim.Node
	net     *netsim.Network
	host    int
	cost    CostModel
	seq     uint32
	handler transport.Handler

	// sent/received counters for experiment reporting.
	msgsSent  int64
	bytesSent int64
}

// NewSimTCP attaches a simulated TCP endpoint for the given host. The host
// index doubles as the transport.ProcID.
func NewSimTCP(node *sim.Node, net *netsim.Network, host int, cost CostModel) *SimTCP {
	if cost.MTU <= 0 {
		panic("tcpip: cost model needs MTU > 0")
	}
	e := &SimTCP{eng: node.Engine(), node: node, net: net, host: host, cost: cost}
	net.AttachHost(host, netsim.PortFunc(e.deliverFrame))
	return e
}

// Proc implements transport.Endpoint.
func (e *SimTCP) Proc() transport.ProcID { return transport.ProcID(e.host) }

// Cost returns the endpoint's cost model, so the message-passing layer can
// charge receive-side processing to the receiving thread.
func (e *SimTCP) Cost() CostModel { return e.cost }

// Node returns the endpoint's workstation.
func (e *SimTCP) Node() *sim.Node { return e.node }

// SetHandler implements transport.Endpoint.
func (e *SimTCP) SetHandler(h transport.Handler) { e.handler = h }

// MsgsSent returns the number of messages sent.
func (e *SimTCP) MsgsSent() int64 { return e.msgsSent }

// BytesSent returns payload bytes sent.
func (e *SimTCP) BytesSent() int64 { return e.bytesSent }

// Send implements transport.Endpoint: the caller's thread is charged the
// protocol cost, then parks until the final frame has serialized onto the
// local wire (a blocking socket write draining through a small socket
// buffer, as p4 over 1995 SunOS behaved).
func (e *SimTCP) Send(t *mts.Thread, m *transport.Message) {
	if m.From != e.Proc() {
		panic(fmt.Sprintf("tcpip: host %d sending as %d", e.host, m.From))
	}
	e.seq++
	m.Seq = e.seq
	wb := wire.GetBuf(m.WireSize())
	wb.B = m.MarshalAppend(wb.B)
	e.msgsSent++
	e.bytesSent += int64(len(m.Data))

	// Protocol processing occupies this CPU (checksum + copy, Figure 3a).
	e.node.Compute(t, e.cost.SendCost(len(wb.B)))

	path := e.net.PathFor(e.host)
	var lastTx = e.eng.Now()
	frames := wire.Fragments(len(wb.B), e.cost.MTU)
	for i := 0; i < frames; i++ {
		lo, hi := wire.Extent(len(wb.B), e.cost.MTU, i)
		frag := &msgFrag{src: m.From, seq: m.Seq, last: i == frames-1}
		if frag.last {
			frag.buf = wb
		}
		// Classical-IP-over-ATM: on switched topologies the IP frames ride
		// the host-pair VC; the Ethernet medium ignores the field.
		lastTx = path.Send(netsim.Unit{
			WireBytes: hi - lo + e.cost.FrameOverhead,
			SrcHost:   e.host,
			DstHost:   int(m.To),
			VC:        netsim.VCFor(e.host, int(m.To)),
			Payload:   frag,
		})
	}
	// Park until the socket buffer drains (last frame on the wire).
	if lastTx > e.eng.Now() {
		done := t
		e.eng.ScheduleAt(lastTx, func() { e.node.RT().Unblock(done, false) })
		t.Park("tcp send drain")
	}
}

// deliverFrame runs at frame arrival. TCP is in-order per connection and
// the simulated links are FIFO, so the message completes when its last
// fragment arrives.
func (e *SimTCP) deliverFrame(u netsim.Unit) {
	frag, ok := u.Payload.(*msgFrag)
	if !ok {
		panic("tcpip: foreign unit delivered to SimTCP")
	}
	if !frag.last {
		return
	}
	// Unmarshal copies the payload out, so the marshal buffer recycles
	// here — the explicit end of its send → wire → deliver lifetime.
	m, err := transport.Unmarshal(frag.buf.B)
	wire.PutBuf(frag.buf)
	if err != nil {
		panic("tcpip: corrupt wire message: " + err.Error())
	}
	if e.handler == nil {
		panic(fmt.Sprintf("tcpip: host %d has no handler", e.host))
	}
	e.handler(m)
}
