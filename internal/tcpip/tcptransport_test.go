package tcpip

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func TestTCPTransportDelivers(t *testing.T) {
	net := NewTCPNetwork()
	rtA := mts.New(mts.Config{Name: "a", IdleTimeout: 10 * time.Second})
	rtB := mts.New(mts.Config{Name: "b", IdleTimeout: 10 * time.Second})
	epA, err := net.Attach(0, rtA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := net.Attach(1, rtB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	payload := make([]byte, 50_000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	var got []byte
	var waiter *mts.Thread
	epA.SetHandler(func(m *transport.Message) {})
	epB.SetHandler(func(m *transport.Message) {
		got = m.Data
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("w", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil {
			th.Park("msg")
		}
	})
	rtA.Create("s", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Tag: 9, Data: payload})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted over TCP")
	}
}

func TestNCSOverRealTCP(t *testing.T) {
	// The NSM tier end to end: NCS processes over genuine TCP loopback.
	net := NewTCPNetwork()
	const n = 3
	procs := make([]*core.Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 10 * time.Second})
		ep, err := net.Attach(transport.ProcID(i), rt)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: ep})
	}
	// Ring: each proc sends to the next, receives from the previous.
	sums := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("ring", mts.PrioDefault, func(th *core.Thread) {
			th.Send(0, core.ProcID((i+1)%n), []byte{byte(i + 1)})
			data, _ := th.Recv(core.Any, core.ProcID((i+n-1)%n))
			sums[i] = int(data[0])
		})
	}
	done := make(chan struct{}, n)
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	for range procs {
		<-done
	}
	for i := 0; i < n; i++ {
		if sums[i] != (i+n-1)%n+1 {
			t.Fatalf("proc %d got %d", i, sums[i])
		}
	}
}

func TestTCPDuplicateProcRejected(t *testing.T) {
	net := NewTCPNetwork()
	rt := mts.New(mts.Config{Name: "x", IdleTimeout: time.Second})
	ep, err := net.Attach(5, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := net.Attach(5, rt); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	net := NewTCPNetwork()
	rt := mts.New(mts.Config{Name: "x", IdleTimeout: time.Second})
	ep, _ := net.Attach(1, rt)
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal("second close errored")
	}
}
