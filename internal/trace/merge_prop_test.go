package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

// TestQuickMergeDominance: for random thread timelines, the merged
// processor row is Compute wherever any thread computes, Comm wherever
// some thread communicates and none computes, Idle only when all are idle.
func TestQuickMergeDominance(t *testing.T) {
	f := func(seed int64, nRows, nSegs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]*Timeline, int(nRows%3)+1)
		c := vclock.NewVirtualClock()
		r := NewRecorder(c)
		names := make([]string, len(rows))
		// Build rows by replaying random state changes on a shared clock.
		now := time.Duration(0)
		for i := range rows {
			names[i] = string(rune('a' + i))
			r.Set(names[i], Idle) // every row exists from t=0
		}
		for step := 0; step < int(nSegs%10)+2; step++ {
			name := names[rng.Intn(len(names))]
			state := State(rng.Intn(3))
			r.Set(name, state)
			now += time.Duration(rng.Intn(5)+1) * time.Millisecond
			c.Advance(vclock.Time(now))
		}
		r.CloseAll()
		for i, name := range names {
			rows[i] = r.Timeline(name)
		}
		merged := Merge("m", rows)

		// Sample instants and check dominance.
		for probe := 0; probe < 50; probe++ {
			at := vclock.Time(rng.Int63n(int64(now) + 1))
			anyCompute, anyComm := false, false
			for _, tl := range rows {
				switch tl.StateAt(at) {
				case Compute:
					anyCompute = true
				case Comm:
					anyComm = true
				}
			}
			got := merged.StateAt(at)
			switch {
			case anyCompute:
				if got != Compute {
					return false
				}
			case anyComm:
				if got != Comm {
					return false
				}
			default:
				if got != Idle {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
