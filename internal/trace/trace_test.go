package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
)

// clockStepper advances a virtual clock by deltas.
type clockStepper struct {
	c   *vclock.VirtualClock
	now time.Duration
}

func newStepper() *clockStepper { return &clockStepper{c: vclock.NewVirtualClock()} }

func (s *clockStepper) adv(d time.Duration) {
	s.now += d
	s.c.Advance(vclock.Time(s.now))
}

func TestRecorderSegments(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("t0", Compute)
	s.adv(2 * time.Second)
	r.Set("t0", Comm)
	s.adv(1 * time.Second)
	r.Close("t0")
	tl := r.Timeline("t0")
	if len(tl.Segments) != 2 {
		t.Fatalf("%d segments, want 2", len(tl.Segments))
	}
	if tl.Segments[0].State != Compute || tl.Segments[0].Duration() != 2*time.Second {
		t.Fatalf("seg0 = %+v", tl.Segments[0])
	}
	if tl.Segments[1].State != Comm || tl.Segments[1].Duration() != time.Second {
		t.Fatalf("seg1 = %+v", tl.Segments[1])
	}
}

func TestSameStateCoalesces(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("t0", Compute)
	s.adv(time.Second)
	r.Set("t0", Compute) // no-op
	s.adv(time.Second)
	r.Close("t0")
	tl := r.Timeline("t0")
	if len(tl.Segments) != 1 || tl.Segments[0].Duration() != 2*time.Second {
		t.Fatalf("segments = %+v", tl.Segments)
	}
}

func TestZeroLengthSegmentsDropped(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("t0", Compute)
	r.Set("t0", Comm) // zero duration in Compute
	s.adv(time.Second)
	r.Close("t0")
	tl := r.Timeline("t0")
	if len(tl.Segments) != 1 || tl.Segments[0].State != Comm {
		t.Fatalf("segments = %+v", tl.Segments)
	}
}

func TestTotals(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("t0", Compute)
	s.adv(4 * time.Second)
	r.Set("t0", Idle)
	s.adv(1 * time.Second)
	r.Set("t0", Compute)
	s.adv(2 * time.Second)
	r.Close("t0")
	tl := r.Timeline("t0")
	if tl.TotalIn(Compute) != 6*time.Second {
		t.Fatalf("compute total = %v", tl.TotalIn(Compute))
	}
	if tl.TotalIn(Idle) != time.Second {
		t.Fatalf("idle total = %v", tl.TotalIn(Idle))
	}
}

func TestStateAt(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("t0", Comm)
	s.adv(time.Second)
	r.Close("t0")
	tl := r.Timeline("t0")
	if tl.StateAt(vclock.Time(500*time.Millisecond)) != Comm {
		t.Fatal("StateAt inside segment wrong")
	}
	if tl.StateAt(vclock.Time(2*time.Second)) != Idle {
		t.Fatal("StateAt outside segments should be Idle")
	}
}

func TestMergePriority(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	// Thread A: compute [0,2), comm [2,4). Thread B: comm [0,1), idle after.
	r.Set("a", Compute)
	r.Set("b", Comm)
	s.adv(1 * time.Second)
	r.Set("b", Idle)
	s.adv(1 * time.Second)
	r.Set("a", Comm)
	s.adv(2 * time.Second)
	r.CloseAll()
	merged := Merge("node", []*Timeline{r.Timeline("a"), r.Timeline("b")})
	// [0,2): A computes => Compute regardless of B.
	if merged.StateAt(vclock.Time(500*time.Millisecond)) != Compute {
		t.Fatal("merge should prefer Compute")
	}
	// [2,4): only comm.
	if merged.StateAt(vclock.Time(3*time.Second)) != Comm {
		t.Fatal("merge lost Comm")
	}
}

func TestRenderContainsRowsAndLegend(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("proc1", Compute)
	s.adv(time.Second)
	r.Set("proc1", Idle)
	s.adv(time.Second)
	r.CloseAll()
	out := Render([]*Timeline{r.Timeline("proc1")}, 40)
	if !strings.Contains(out, "proc1") || !strings.Contains(out, "legend") {
		t.Fatalf("render output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Fatalf("render missing glyphs:\n%s", out)
	}
}

func TestSummaryPercentages(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("p", Compute)
	s.adv(3 * time.Second)
	r.Set("p", Idle)
	s.adv(1 * time.Second)
	r.CloseAll()
	out := Summary([]*Timeline{r.Timeline("p")})
	if !strings.Contains(out, "75.0%") {
		t.Fatalf("summary = %q, want 75%% compute", out)
	}
}

func TestEmptyRender(t *testing.T) {
	out := Render(nil, 40)
	if !strings.Contains(out, "empty") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestReopenAfterClose(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("t", Compute)
	s.adv(time.Second)
	r.Close("t")
	s.adv(time.Second)
	r.Set("t", Comm)
	s.adv(time.Second)
	r.Close("t")
	tl := r.Timeline("t")
	if len(tl.Segments) != 2 {
		t.Fatalf("segments = %+v", tl.Segments)
	}
	if tl.Segments[1].From != vclock.Time(2*time.Second) {
		t.Fatal("reopened segment starts at wrong time")
	}
}

func TestMarksAnnotateRows(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	r.Set("g", Comm)
	r.Mark("g", "bar r0 n2")
	s.adv(time.Second)
	r.Mark("g", "bar r1 n1")
	r.Set("g", Idle)
	r.Close("g")
	tl := r.Timeline("g")
	if len(tl.Marks) != 2 {
		t.Fatalf("marks = %+v", tl.Marks)
	}
	if tl.Marks[0].Label != "bar r0 n2" || tl.Marks[0].At != 0 {
		t.Fatalf("first mark = %+v", tl.Marks[0])
	}
	if tl.Marks[1].At != vclock.Time(time.Second) {
		t.Fatalf("second mark = %+v", tl.Marks[1])
	}
	// Mark on a fresh row creates it.
	r.Mark("new", "x")
	if r.Timeline("new") == nil || len(r.Timeline("new").Marks) != 1 {
		t.Fatal("Mark did not create the row")
	}
}

func TestPhaseSkew(t *testing.T) {
	s := newStepper()
	r := NewRecorder(s.c)
	// Two rows, two Comm phases each; the second row exits each phase
	// later than the first by a known margin.
	phase := func(name string, busy time.Duration) {
		r.Set(name, Comm)
		s.adv(busy)
		r.Set(name, Idle)
	}
	phase("a", time.Second)           // a: phase 0 ends at 1s
	phase("b", 1500*time.Millisecond) // b: phase 0 ends at 2.5s
	phase("a", time.Second)           // a: phase 1 ends at 3.5s
	phase("b", 4500*time.Millisecond) // b: phase 1 ends at 8s
	r.CloseAll()
	rows := []*Timeline{r.Timeline("a"), r.Timeline("b")}
	skews := PhaseSkew(rows, Comm)
	if len(skews) != 2 {
		t.Fatalf("skews = %v", skews)
	}
	if skews[0] != 1500*time.Millisecond {
		t.Fatalf("phase 0 skew = %v, want 1.5s", skews[0])
	}
	if skews[1] != 4500*time.Millisecond {
		t.Fatalf("phase 1 skew = %v, want 4.5s", skews[1])
	}
	if PhaseSkew(nil, Comm) != nil {
		t.Fatal("empty rows should yield nil")
	}
}
