// Package trace records per-thread activity timelines (computation,
// communication, idle) and renders them as text Gantt charts, reproducing
// the state diagrams of the paper's Figure 4 (matmul overlap) and Figure 16
// (JPEG processor states, single- vs multithreaded).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/vclock"
)

// State is a timeline activity class, matching Figure 16's legend.
type State uint8

// Activity states.
const (
	Idle State = iota
	Compute
	Comm
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	default:
		return "?"
	}
}

// glyphs used when rendering: computation is solid, communication hatched,
// idle blank — mirroring the paper's figure legend.
var glyphs = map[State]rune{Idle: '.', Compute: '#', Comm: '~'}

// Segment is a half-open interval [From, To) spent in State.
type Segment struct {
	From, To vclock.Time
	State    State
}

// Duration returns the segment length.
func (s Segment) Duration() vclock.Duration { return s.To.Sub(s.From) }

// Mark is a labelled instant on a timeline: an annotation rather than a
// state change. The collective layer uses marks to stamp protocol
// structure — round index, subtree size — onto its lanes, so a rendered
// timeline shows not just *that* a lane was communicating but which phase
// of the algorithm it was in.
type Mark struct {
	At    vclock.Time
	Label string
}

// Timeline is one row: a thread's (or processor's) activity over time.
type Timeline struct {
	Name     string
	Segments []Segment
	// Marks are labelled instants annotating the row, in record order.
	Marks []Mark
	cur   State
	since vclock.Time
	open  bool
}

// Recorder collects timelines against a clock. Recording is mutex-guarded:
// a sharded process traces from its lane engine goroutines concurrently
// with the scheduler's thread rows. Timelines handed out (Timeline, or
// names from Names) are safe to read once their writers have stopped.
type Recorder struct {
	mu    sync.Mutex
	clock vclock.Clock
	rows  map[string]*Timeline
	order []string
}

// NewRecorder returns an empty recorder.
func NewRecorder(clock vclock.Clock) *Recorder {
	return &Recorder{clock: clock, rows: make(map[string]*Timeline)}
}

// Set switches the named row to state s as of now, closing the previous
// segment. The first Set for a row opens it.
func (r *Recorder) Set(name string, s State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	tl := r.rows[name]
	if tl == nil {
		tl = &Timeline{Name: name, cur: s, since: now, open: true}
		r.rows[name] = tl
		r.order = append(r.order, name)
		return
	}
	if !tl.open {
		tl.cur, tl.since, tl.open = s, now, true
		return
	}
	if tl.cur == s {
		return
	}
	if now > tl.since {
		tl.Segments = append(tl.Segments, Segment{From: tl.since, To: now, State: tl.cur})
	}
	tl.cur, tl.since = s, now
}

// Mark drops a labelled annotation on the named row at now, creating the
// row (Idle) if it does not exist yet.
func (r *Recorder) Mark(name, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	tl := r.rows[name]
	if tl == nil {
		tl = &Timeline{Name: name, cur: Idle, since: now, open: true}
		r.rows[name] = tl
		r.order = append(r.order, name)
	}
	tl.Marks = append(tl.Marks, Mark{At: now, Label: label})
}

// Close ends the named row's current segment at now.
func (r *Recorder) Close(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeLocked(name)
}

func (r *Recorder) closeLocked(name string) {
	now := r.clock.Now()
	tl := r.rows[name]
	if tl == nil || !tl.open {
		return
	}
	if now > tl.since {
		tl.Segments = append(tl.Segments, Segment{From: tl.since, To: now, State: tl.cur})
	}
	tl.open = false
}

// CloseAll ends every open row.
func (r *Recorder) CloseAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.rows {
		r.closeLocked(name)
	}
}

// Timeline returns the named row, or nil.
func (r *Recorder) Timeline(name string) *Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rows[name]
}

// Names returns row names in first-use order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// TotalIn returns the summed duration the row spent in state s.
func (tl *Timeline) TotalIn(s State) vclock.Duration {
	var total vclock.Duration
	for _, seg := range tl.Segments {
		if seg.State == s {
			total += seg.Duration()
		}
	}
	return total
}

// End returns the latest segment end.
func (tl *Timeline) End() vclock.Time {
	if len(tl.Segments) == 0 {
		return 0
	}
	return tl.Segments[len(tl.Segments)-1].To
}

// StateAt returns the row's state at time t (Idle outside all segments).
func (tl *Timeline) StateAt(t vclock.Time) State {
	for _, seg := range tl.Segments {
		if t >= seg.From && t < seg.To {
			return seg.State
		}
	}
	return Idle
}

// Merge produces a processor-level row from several thread rows: at each
// instant the merged state is Compute if any thread computes, else Comm if
// any communicates, else Idle. This is how Figure 16's per-processor bars
// relate to the per-thread activity underneath them.
func Merge(name string, rows []*Timeline) *Timeline {
	// Collect all boundaries.
	var cuts []vclock.Time
	for _, tl := range rows {
		for _, seg := range tl.Segments {
			cuts = append(cuts, seg.From, seg.To)
		}
	}
	if len(cuts) == 0 {
		return &Timeline{Name: name}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	out := &Timeline{Name: name}
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi <= lo {
			continue
		}
		mid := lo + (hi-lo)/2
		state := Idle
		for _, tl := range rows {
			switch tl.StateAt(mid) {
			case Compute:
				state = Compute
			case Comm:
				if state == Idle {
					state = Comm
				}
			}
		}
		n := len(out.Segments)
		if n > 0 && out.Segments[n-1].State == state && out.Segments[n-1].To == lo {
			out.Segments[n-1].To = hi
			continue
		}
		out.Segments = append(out.Segments, Segment{From: lo, To: hi, State: state})
	}
	return out
}

// Render draws rows as a Gantt chart of the given width. Legend:
// '#' computation, '~' communication, '.' idle.
func Render(rows []*Timeline, width int) string {
	if width < 10 {
		width = 10
	}
	var end vclock.Time
	for _, tl := range rows {
		if e := tl.End(); e > end {
			end = e
		}
	}
	if end == 0 {
		return "(empty trace)\n"
	}
	nameW := 0
	for _, tl := range rows {
		if len(tl.Name) > nameW {
			nameW = len(tl.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  0%s%.4fs\n", nameW, "", strings.Repeat(" ", width-8), end.Seconds())
	for _, tl := range rows {
		line := make([]rune, width)
		for i := range line {
			t := vclock.Time(float64(end) * (float64(i) + 0.5) / float64(width))
			line[i] = glyphs[tl.StateAt(t)]
		}
		fmt.Fprintf(&b, "%*s |%s|\n", nameW, tl.Name, string(line))
	}
	fmt.Fprintf(&b, "%*s  legend: #=compute ~=comm .=idle\n", nameW, "")
	return b.String()
}

// PhaseSkew measures how unevenly a set of rows leave their i-th segment
// in state s: for each phase index i present in *every* row, it reports
// max(To) - min(To) across rows. With one collective lane per process and
// one Comm segment per collective phase, this is the barrier-exit skew —
// how long the fastest process waits for the slowest, phase by phase. Rows
// must share a clock (one recorder, or recorders built on the same Clock).
func PhaseSkew(rows []*Timeline, s State) []vclock.Duration {
	if len(rows) == 0 {
		return nil
	}
	// Per row, collect the ends of its segments in state s.
	ends := make([][]vclock.Time, len(rows))
	phases := -1
	for i, tl := range rows {
		for _, seg := range tl.Segments {
			if seg.State == s {
				ends[i] = append(ends[i], seg.To)
			}
		}
		if phases < 0 || len(ends[i]) < phases {
			phases = len(ends[i])
		}
	}
	if phases <= 0 {
		return nil
	}
	out := make([]vclock.Duration, phases)
	for ph := 0; ph < phases; ph++ {
		lo, hi := ends[0][ph], ends[0][ph]
		for i := 1; i < len(ends); i++ {
			if t := ends[i][ph]; t < lo {
				lo = t
			} else if t > hi {
				hi = t
			}
		}
		out[ph] = hi.Sub(lo)
	}
	return out
}

// Summary reports per-row totals in each state, as fractions of the row's
// span — the quantitative counterpart of Figure 16.
func Summary(rows []*Timeline) string {
	var b strings.Builder
	for _, tl := range rows {
		span := tl.End()
		if len(tl.Segments) > 0 {
			span = tl.End() - tl.Segments[0].From
		}
		if span == 0 {
			continue
		}
		c := float64(tl.TotalIn(Compute)) / float64(span) * 100
		m := float64(tl.TotalIn(Comm)) / float64(span) * 100
		i := 100 - c - m
		fmt.Fprintf(&b, "%-20s compute %5.1f%%  comm %5.1f%%  idle %5.1f%%\n", tl.Name, c, m, i)
	}
	return b.String()
}
