package core

import (
	"repro/internal/list"
	"repro/internal/wire"
)

// This file is the intra-lane service discipline: deficit round robin (DRR)
// across a lane's data channels, with control kept strictly above. The
// classic single-lane path keeps the paper's strict 9-level priority pop
// untouched (prioQueue in channel.go); inside a sharded lane, strict
// priority would let one saturating high-priority channel starve a bulk
// channel on the same lane forever. DRR bounds that: each channel earns
// quantum·weight bytes of service per round, so a priority-0 bulk class
// still drains at its weight share while a priority-6 stream saturates.
//
// Two properties carry over from the strict scheduler:
//
//   - Control first. Credits, acks, retransmission re-queues, and barrier
//     control pop before any data frame — they are what reopen stalled
//     windows, so no amount of queued data may starve them. Within control,
//     FIFO.
//   - Priority still orders the round. Channels in the active ring are kept
//     sorted by descending priority, and a newly-backlogged channel of
//     higher priority takes the round cursor immediately, so a fresh
//     high-priority frame still overtakes queued bulk — it just can no
//     longer monopolize the lane across rounds.
//
// FIFO-within-channel is structural: each channel's requests live in its
// own FIFO (Channel.sq) and only the *order across channels* is
// scheduler-chosen. Discipline single-ownership is likewise untouched —
// admission still runs at pop time in serviceLocked, under the lane lock.

// drrQuantum is the byte quantum one weight unit earns per DRR round.
// Weight w therefore guarantees w·2048 bytes of service per round — about
// one small frame for weight 1, so a weight-1 channel with minimal frames
// is served every round (the starvation bound).
const drrQuantum = 2048

// reqCost is a request's service cost in bytes: header plus payload, the
// same units the per-lane load accounting uses.
func reqCost(req *sendReq) int64 { return int64(wire.HeaderSize + len(req.m.Data)) }

// laneSched is one lane's send scheduler. It is push/pop/empty-compatible
// with the prioQueue it replaced: push files a request under a level
// (ctrlLevel selects the strict control band, anything else the owning
// channel's DRR queue), pop returns the next request to service.
//
// All state is guarded by the owning lane's mutex.
type laneSched struct {
	// ctrl is the strict band above all data: control frames and anything
	// without a channel.
	ctrl list.FIFO[*sendReq]

	// active rings the channels with queued data, sorted by descending
	// priority (stable); cur is the round cursor, fresh marks that the
	// channel at cur has not yet received this round's quantum.
	active []*Channel
	cur    int
	fresh  bool

	// boost scales the per-round quantum up (uniformly — weight ratios are
	// preserved) after a full round in which no channel could afford its
	// head frame, so one oversized frame costs O(log(size/quantum)) rounds
	// of deficit accumulation instead of O(size/quantum). Reset to 1 on
	// every successful pop.
	boost  int64
	served bool

	rounds int64 // completed DRR rounds, for LaneStats
}

func (s *laneSched) push(level int, req *sendReq) {
	c := req.ch
	if level == ctrlLevel || c == nil {
		s.ctrl.Push(req)
		return
	}
	c.sq.Push(req)
	if c.inSched {
		return
	}
	c.inSched = true
	// Insert in descending priority order, after existing equals (stable).
	i := len(s.active)
	for i > 0 && s.active[i-1].priority < c.priority {
		i--
	}
	s.active = append(s.active, nil)
	copy(s.active[i+1:], s.active[i:])
	s.active[i] = c
	if i < s.cur {
		// Behind the round cursor: first service next round; keep the
		// cursor on the element it was pointing at.
		s.cur++
	} else if i == s.cur {
		// At the cursor: a higher-priority newcomer preempts the round
		// here (the sort put it at cur precisely because it outranks the
		// old occupant). Grant it a fresh quantum.
		s.fresh = true
	}
}

func (s *laneSched) empty() bool { return s.ctrl.Size() == 0 && len(s.active) == 0 }

func (s *laneSched) pop() *sendReq {
	if s.ctrl.Size() > 0 {
		return s.ctrl.Pop()
	}
	if s.boost < 1 {
		s.boost = 1
	}
	for {
		if len(s.active) == 0 {
			panic("core: pop from empty lane scheduler")
		}
		if s.cur >= len(s.active) {
			s.cur = 0
			s.fresh = true
			s.rounds++
			if !s.served && s.boost < 1<<20 {
				s.boost <<= 1
			}
			s.served = false
		}
		c := s.active[s.cur]
		if c.sq.Size() == 0 {
			// Defensive: push/pop keep active ⇔ sq non-empty in sync, but a
			// stale entry must not wedge the round.
			s.removeCur()
			continue
		}
		if s.fresh {
			c.deficit += int64(c.weight) * drrQuantum * s.boost
			s.fresh = false
		}
		if cost := reqCost(c.sq.Peek()); c.deficit >= cost {
			c.deficit -= cost
			req := c.sq.Pop()
			s.served = true
			s.boost = 1
			if c.sq.Size() == 0 {
				s.removeCur()
			}
			return req
		}
		s.cur++
		s.fresh = true
	}
}

// removeChan drops a closing channel from the active ring wherever it
// sits (no-op when it has no backlog). The cursor math mirrors push: an
// element removed before the cursor shifts the round left, and removing
// the cursor's own channel hands the (fresh) quantum to its successor.
func (s *laneSched) removeChan(c *Channel) {
	if !c.inSched {
		return
	}
	c.inSched = false
	c.deficit = 0
	for i, x := range s.active {
		if x != c {
			continue
		}
		copy(s.active[i:], s.active[i+1:])
		s.active[len(s.active)-1] = nil
		s.active = s.active[:len(s.active)-1]
		if i < s.cur {
			s.cur--
		} else if i == s.cur {
			s.fresh = true
		}
		break
	}
}

// removeCur drops the channel at the cursor from the active ring: its
// backlog is gone, so its deficit resets (classic DRR — an idle channel
// banks nothing).
func (s *laneSched) removeCur() {
	c := s.active[s.cur]
	c.deficit = 0
	c.inSched = false
	copy(s.active[s.cur:], s.active[s.cur+1:])
	s.active[len(s.active)-1] = nil
	s.active = s.active[:len(s.active)-1]
	s.fresh = true
}
