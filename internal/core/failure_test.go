package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
)

// recoverDead runs fn and returns the *PeerDeadError it panicked with, or
// nil if fn returned normally. Any other panic value propagates (and fails
// the test loudly, which is what we want for an unexpected failure mode).
func recoverDead(fn func()) (pd *PeerDeadError) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || !errors.As(err, &pd) {
				panic(r)
			}
		}
	}()
	fn()
	return
}

// hbCfg is the standard fast test detector: worst-case declaration at
// (Misses+1)*Interval = 30ms.
func hbCfg() Heartbeat { return Heartbeat{Interval: 10 * time.Millisecond, Misses: 2} }

// TestPeerCrashFaultUnblocksRecv is the tentpole end to end in real mode:
// two procs exchange a rendezvous, the carrier kills one, and every
// targeted receive parked on the dead peer unblocks with a typed
// *PeerDeadError on both sides — the killed proc's detector also declares
// the (now unreachable) survivor dead, so a crashed host's own threads are
// released too. Lifecycle ledgers stay balanced and the failure decisions
// land on the trace recorder's fail row.
func TestPeerCrashFaultUnblocksRecv(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		lanes := lanes
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			mem := transport.NewMem()
			var rec *trace.Recorder
			procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
				cfg.SendLanes, cfg.RecvLanes = lanes, lanes
				cfg.Heartbeat = hbCfg()
				if i == 0 {
					rec = trace.NewRecorder(cfg.RT.Clock())
					cfg.Tracer, cfg.TraceName = rec, "p0"
				}
			})
			ready := make(chan struct{})
			var obsErr, vicErr *PeerDeadError
			procs[0].TCreate("obs", mts.PrioDefault, func(th *Thread) {
				th.Recv(Any, 1)             // hello
				th.Send(0, 1, []byte{0xAC}) // ack: both directions now have channels
				close(ready)
				obsErr = recoverDead(func() { th.Recv(Any, 1) })
			})
			procs[1].TCreate("victim", mts.PrioDefault, func(th *Thread) {
				th.Send(0, 0, []byte("hello"))
				vicErr = recoverDead(func() {
					th.Recv(Any, 0) // ack
					th.Recv(Any, 0) // parks forever: proc 1 is about to die
				})
			})
			go func() {
				<-ready
				mem.KillHost(1)
			}()
			runReal(procs)
			if obsErr == nil || obsErr.Peer != 1 || obsErr.Local != 0 {
				t.Fatalf("survivor recv error = %v, want PeerDeadError{0->1}", obsErr)
			}
			if obsErr.Missed < 2 {
				t.Errorf("survivor error missed = %d, want >= Misses", obsErr.Missed)
			}
			if vicErr == nil || vicErr.Peer != 0 {
				t.Fatalf("victim recv error = %v, want PeerDeadError{1->0}", vicErr)
			}
			if pd := procs[0].PeerDead(1); pd == nil {
				t.Error("survivor PeerDead(1) = nil after declaration")
			}
			for i, p := range procs {
				if leaks := p.Leaks(); len(leaks) != 0 {
					t.Errorf("proc %d leaks: %v", i, leaks)
				}
			}
			tl := rec.Timeline("p0/fail")
			if tl == nil {
				t.Fatal("no p0/fail timeline recorded")
			}
			var miss, dead, forced bool
			for _, m := range tl.Marks {
				miss = miss || strings.HasPrefix(m.Label, "beat-miss p1")
				dead = dead || m.Label == "peer-dead p1"
				forced = forced || strings.HasPrefix(m.Label, "force-close")
			}
			if !miss || !dead || !forced {
				t.Errorf("fail marks missing: beat-miss=%v peer-dead=%v force-close=%v (marks %v)",
					miss, dead, forced, tl.Marks)
			}
		})
	}
}

// TestPeerCrashFaultFailsGatedSends: sends parked behind a flow-control
// window toward a peer that dies are failed through the drain machinery —
// the sender's thread unblocks and the typed cause is raised through the
// exception handler rather than lost.
func TestPeerCrashFaultFailsGatedSends(t *testing.T) {
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		cfg.Heartbeat = hbCfg()
		if i == 1 {
			cfg.OnAccept = func(c *Channel) {
				c.Proc().TCreate("serve", mts.PrioDefault, func(th *Thread) {
					c.Send(th, c.PeerThread(), []byte{1}) // announce, then consume nothing
					recoverDead(func() { th.Recv(Any, 0) })
				})
			}
		}
	})
	var exMu sync.Mutex
	var exs []error
	procs[0].OnException(func(err error) {
		exMu.Lock()
		exs = append(exs, err)
		exMu.Unlock()
	})
	ready := make(chan struct{})
	var openErr error
	sent := -1
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		ch, err := procs[0].OpenCall(th, 1, CallConfig{Flow: NewWindowFlow(1)})
		if err != nil {
			openErr = err
			return
		}
		srv := dialRendezvous(th, ch)
		close(ready)
		for k := 0; k < 4; k++ {
			// Message 1 fills the window; the rest park on the flow gate
			// until the failure sweep fails them and unblocks this thread.
			ch.Send(th, srv, []byte{byte(k)})
			sent = k
			if procs[0].PeerDead(1) != nil {
				return
			}
		}
	})
	go func() {
		<-ready
		mem.KillHost(1)
	}()
	runReal(procs)
	if openErr != nil {
		t.Fatalf("OpenCall: %v", openErr)
	}
	if sent < 1 {
		t.Fatalf("sender unblocked after %d sends, want >= 1 (gated sends must fail, not hang)", sent+1)
	}
	exMu.Lock()
	defer exMu.Unlock()
	var typed bool
	for _, err := range exs {
		var pd *PeerDeadError
		if errors.As(err, &pd) && pd.Peer == 1 {
			typed = true
		}
	}
	if !typed {
		t.Fatalf("no *PeerDeadError raised for gated sends; exceptions: %v", exs)
	}
	if leaks := procs[0].Leaks(); len(leaks) != 0 {
		t.Errorf("caller leaks: %v", leaks)
	}
}

// TestPeerCrashFaultMidCollective: a group member dies while the root is
// collecting a Gather. The root's blocked collect unblocks with the typed
// error; the surviving leaf completes its part untouched.
func TestPeerCrashFaultMidCollective(t *testing.T) {
	const n, victim = 3, 2
	mem := transport.NewMem()
	procs := sigCluster(t, n, mem, func(i int, cfg *Config) {
		cfg.Heartbeat = hbCfg()
	})
	members := collGroup(n)
	var wg sync.WaitGroup
	wg.Add(1)
	var rootErr *PeerDeadError
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
			g := procs[i].NewGroup(members, GroupConfig{})
			g.Barrier(th) // warm every member channel so the detector monitors them
			switch i {
			case victim:
				wg.Done() // crash point: the carrier kills this proc now
			case 0:
				rootErr = recoverDead(func() { g.Gather(th, 0, []byte{byte(i)}) })
			default:
				g.Gather(th, 0, []byte{byte(i)})
			}
		})
	}
	go func() {
		wg.Wait()
		mem.KillHost(victim)
	}()
	runReal(procs)
	if rootErr == nil || rootErr.Peer != victim {
		t.Fatalf("root gather error = %v, want PeerDeadError for proc %d", rootErr, victim)
	}
	if procs[0].PeerDead(victim) == nil {
		t.Error("root PeerDead(victim) = nil")
	}
	for _, i := range []int{0, 1} {
		if leaks := procs[i].Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
}

// TestPeerCrashFaultMidSetup: the callee dies before the SETUP handshake
// can complete. The failure detector (armed by OpenCall's own channel
// entry) outruns the setup retry budget, so the caller gets a fail-fast
// *OpenError with CausePeerDead instead of burning the full timeout
// ladder.
func TestPeerCrashFaultMidSetup(t *testing.T) {
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		cfg.Heartbeat = Heartbeat{Interval: 5 * time.Millisecond, Misses: 2}
	})
	mem.KillHost(1) // dead before the first SETUP
	var openErr error
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		_, openErr = procs[0].OpenCall(th, 1, CallConfig{
			SetupTimeout: 50 * time.Millisecond,
			Retries:      5,
		})
	})
	procs[1].TCreate("noop", mts.PrioDefault, func(th *Thread) {})
	runReal(procs)
	var oe *OpenError
	if !errors.As(openErr, &oe) || oe.Cause != CausePeerDead {
		t.Fatalf("OpenCall error = %v, want *OpenError{CausePeerDead}", openErr)
	}
	if procs[0].PeerDead(1) == nil {
		t.Error("caller PeerDead(1) = nil")
	}
	if leaks := procs[0].Leaks(); len(leaks) != 0 {
		t.Errorf("caller leaks: %v", leaks)
	}
}

// TestPartitionHealRedialFault: a partition splits an in-flight call, both
// sides observe the typed death, the fabric heals, and core.Redial's
// backoff ladder re-establishes a fresh signaled channel (the SETUP
// clean-slates the callee's dead-peer record). The second call then runs
// to a clean close.
func TestPartitionHealRedialFault(t *testing.T) {
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		cfg.Heartbeat = hbCfg()
		if i == 1 {
			cfg.OnAccept = func(c *Channel) {
				c.Proc().TCreate("serve", mts.PrioDefault, func(th *Thread) {
					opener := c.PeerThread()
					c.Send(th, opener, []byte{1}) // announce
					if pd := recoverDead(func() { c.Recv(th, Any) }); pd != nil {
						return // partition victim
					}
					c.Send(th, opener, []byte{2}) // served
				})
			}
		}
	})
	cut := make(chan struct{})
	var firstErr *PeerDeadError
	var redialErr, closeErr error
	var served []byte
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		defer th.Send(0, 1, []byte("bye"))
		ch, err := procs[0].OpenCall(th, 1, CallConfig{})
		if err != nil {
			redialErr = fmt.Errorf("first open: %w", err)
			return
		}
		srv := dialRendezvous(th, ch)
		close(cut) // partition lands while both ends are mid-call
		firstErr = recoverDead(func() { ch.Recv(th, srv) })
		ch2, err := procs[0].Redial(th, 1, CallConfig{
			SetupTimeout: 5 * time.Millisecond,
			Retries:      2,
		}, RedialPolicy{Attempts: 12, Base: 2 * time.Millisecond, Max: 30 * time.Millisecond})
		if err != nil {
			redialErr = err
			return
		}
		srv2 := dialRendezvous(th, ch2)
		ch2.Send(th, srv2, []byte{9})
		served, _ = ch2.Recv(th, Any)
		closeErr = ch2.CloseCall(th)
	})
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) {
		// A wildcard-source receive survives the failure sweep by design:
		// it keeps the callee open across the partition until the bye.
		th.Recv(Any, Any)
	})
	go func() {
		<-cut
		mem.Partition(0, 1)
		time.Sleep(60 * time.Millisecond)
		mem.Heal(0, 1)
	}()
	runReal(procs)
	if firstErr == nil || firstErr.Peer != 1 {
		t.Fatalf("partitioned recv error = %v, want PeerDeadError{0->1}", firstErr)
	}
	if redialErr != nil {
		t.Fatalf("Redial after heal: %v", redialErr)
	}
	if closeErr != nil {
		t.Fatalf("CloseCall on redialed channel: %v", closeErr)
	}
	if len(served) != 1 || served[0] != 2 {
		t.Fatalf("served reply = %v, want [2]", served)
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
		st := p.Lifecycle()
		if st.Opened != 2 || st.Closed != 2 {
			t.Errorf("proc %d: opened %d closed %d, want 2/2 (force-close + clean close)",
				i, st.Opened, st.Closed)
		}
	}
}

// vmeshCrashRun executes one deterministic virtual-time kill: an 8-proc
// bidirectional ring with seeded payloads, host `victim` killed at a fixed
// virtual instant, the victim and its downstream neighbor parked on
// receives only the failure sweep can end. Returns the timeline hash and
// the count of typed deaths observed.
func vmeshCrashRun(t *testing.T, seed int64) (string, int) {
	t.Helper()
	const (
		n      = 8
		victim = 3
		msgs   = 3
	)
	vm := NewVirtualMesh(n, seed, VirtualMeshConfig{
		Heartbeat: Heartbeat{Interval: 500 * time.Microsecond, Misses: 2},
		MaxTime:   time.Second,
	})
	vm.Eng.Schedule(2*time.Millisecond, func() { vm.Net.KillHost(victim) })
	typed := 0 // engine goroutine only: no lock needed
	for i := 0; i < n; i++ {
		i := i
		vm.Procs[i].TCreate("w", mts.PrioDefault, func(th *Thread) {
			if pd := recoverDead(func() {
				rng := vm.Rand(int64(i))
				next := ProcID((i + 1) % n)
				prev := ProcID((i + n - 1) % n)
				for k := 0; k < msgs; k++ {
					th.Send(0, next, make([]byte, 64+rng.Intn(1024)))
					th.Send(0, prev, make([]byte, 64+rng.Intn(1024)))
				}
				for k := 0; k < 2*msgs; k++ {
					th.Recv(Any, Any)
				}
				// The victim and its downstream neighbor then park on a
				// receive that only the failure sweep can end.
				if i == victim {
					th.Recv(Any, prev)
				} else if i == (victim+1)%n {
					th.Recv(Any, ProcID(victim))
				}
			}); pd != nil {
				typed++
			}
		})
	}
	vm.Run()
	for i, p := range vm.Procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("seed %d proc %d leaks: %v", seed, i, leaks)
		}
	}
	if pd := vm.Procs[(victim+1)%n].PeerDead(victim); pd == nil {
		t.Errorf("seed %d: neighbor never declared proc %d dead", seed, victim)
	}
	return vm.TimelineHash(), typed
}

// TestVirtualMeshPeerCrash: the kill suite is deterministic — same seed,
// byte-identical timeline hash across reruns; a different seed diverges.
// Detection, teardown, and sweep order are all on the virtual clock.
func TestVirtualMeshPeerCrash(t *testing.T) {
	h1, typed1 := vmeshCrashRun(t, 7)
	h2, typed2 := vmeshCrashRun(t, 7)
	h3, _ := vmeshCrashRun(t, 9)
	if h1 != h2 {
		t.Fatalf("same-seed kill runs diverged:\n  %s\n  %s", h1, h2)
	}
	if typed1 != typed2 {
		t.Fatalf("same-seed typed-death counts diverged: %d vs %d", typed1, typed2)
	}
	if typed1 != 2 {
		t.Errorf("typed deaths = %d, want 2 (victim + downstream neighbor)", typed1)
	}
	if h1 == h3 {
		t.Errorf("different seeds produced the same timeline hash %s", h1)
	}
}

// TestFaultChaosSeeds is the real-mode -race chaos run: three seeds, four
// procs under full-mesh seeded traffic, the victim killed mid-stream. Every
// thread — survivors flooding the dead peer, and the victim's own — must
// unblock with the typed error, and every ledger must balance.
func TestFaultChaosSeeds(t *testing.T) {
	for _, seed := range []int64{1, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n, victim = 4, 3
			mem := transport.NewMem()
			procs := sigCluster(t, n, mem, func(i int, cfg *Config) {
				cfg.Heartbeat = hbCfg()
			})
			var warm sync.WaitGroup
			warm.Add(n)
			deaths := make([]*PeerDeadError, n)
			for i := 0; i < n; i++ {
				i := i
				rng := vmRand(seed, int64(i))
				procs[i].TCreate("w", mts.PrioDefault, func(th *Thread) {
					for j := 0; j < n; j++ { // full-mesh warmup: every pair monitored
						if j != i {
							th.Send(0, ProcID(j), []byte{byte(i)})
						}
					}
					for j := 0; j < n-1; j++ {
						th.Recv(Any, Any)
					}
					warm.Done()
					deaths[i] = recoverDead(func() {
						if i == victim {
							for {
								th.Recv(Any, 0)
							}
						}
						// Burst at the dying peer (fast-path sends racing
						// the kill), then park on a receive only the
						// failure sweep can end. The park also yields the
						// cooperative scheduler so detector ticks run.
						for k := 0; k < 8; k++ {
							th.Send(0, victim, make([]byte, 1+rng.Intn(512)))
						}
						th.Recv(Any, victim)
					})
				})
			}
			go func() {
				warm.Wait()
				mem.KillHost(victim)
			}()
			runReal(procs)
			for i := 0; i < n; i++ {
				if deaths[i] == nil {
					t.Fatalf("proc %d never saw a typed death", i)
				}
				if i != victim && deaths[i].Peer != victim {
					t.Errorf("proc %d death peer = %d, want %d", i, deaths[i].Peer, victim)
				}
				if leaks := procs[i].Leaks(); len(leaks) != 0 {
					t.Errorf("proc %d leaks: %v", i, leaks)
				}
			}
		})
	}
}

// TestAcceptQueueDrains: concurrent setups beyond the immediate accept
// capacity queue on the listener and drain in arrival order — every caller
// connects, nothing is rejected, and the ledgers balance.
func TestAcceptQueueDrains(t *testing.T) {
	const callers = 3
	mem := transport.NewMem()
	procs := sigCluster(t, callers+1, mem, func(i int, cfg *Config) {
		if i == 0 {
			cfg.AcceptQueue = 8
			cfg.OnAccept = serveCalls(0)
		}
	})
	errs := make([]error, callers+1)
	for i := 1; i <= callers; i++ {
		i := i
		procs[i].TCreate("dial", mts.PrioDefault, func(th *Thread) {
			defer th.Send(0, 0, []byte("bye"))
			ch, err := procs[i].OpenCall(th, 0, CallConfig{})
			if err != nil {
				errs[i] = err
				return
			}
			ch.Recv(th, Any) // the collapsed announce/served byte
			errs[i] = ch.CloseCall(th)
		})
	}
	procs[0].TCreate("keeper", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < callers; k++ {
			th.Recv(Any, Any)
		}
	})
	runReal(procs)
	for i := 1; i <= callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	st := procs[0].Lifecycle()
	if st.SetupsAccepted != callers || st.SetupsRejected != 0 {
		t.Errorf("listener accepted %d rejected %d, want %d/0", st.SetupsAccepted, st.SetupsRejected, callers)
	}
	if st.Opened != callers || st.Closed != callers {
		t.Errorf("listener opened %d closed %d, want %d/%d", st.Opened, st.Closed, callers, callers)
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
}

// TestAcceptQueueOverflowBusy: a full accept queue rejects the overflow
// SETUP with CauseBusy instead of queueing unboundedly. The listener's
// accept drain is held (via a deferred Config.After) so two concurrent
// setups deterministically find the queue occupied: the first parks in the
// queue, the second bounces busy, and after the hold releases the queued
// one completes normally.
func TestAcceptQueueOverflowBusy(t *testing.T) {
	mem := transport.NewMem()
	var hmu sync.Mutex
	held := true
	var heldQ []func()
	procs := sigCluster(t, 3, mem, func(i int, cfg *Config) {
		cfg.SendLanes, cfg.RecvLanes = 1, 1
		if i == 0 {
			cfg.AcceptQueue = 1
			cfg.OnAccept = serveCalls(0)
			rt := cfg.RT
			cfg.After = func(d time.Duration, fn func()) {
				hmu.Lock()
				if held {
					heldQ = append(heldQ, func() { rt.After(d, fn) })
					hmu.Unlock()
					return
				}
				hmu.Unlock()
				rt.After(d, fn)
			}
		}
	})
	release := func() {
		hmu.Lock()
		q := heldQ
		heldQ, held = nil, false
		hmu.Unlock()
		for _, fn := range q {
			fn()
		}
	}
	errs := make([]error, 3)
	for i := 1; i <= 2; i++ {
		i := i
		procs[i].TCreate("dial", mts.PrioDefault, func(th *Thread) {
			defer th.Send(0, 0, []byte("bye"))
			ch, err := procs[i].OpenCall(th, 0, CallConfig{
				SetupTimeout: 20 * time.Millisecond,
				Retries:      8,
			})
			if err != nil {
				errs[i] = err
				release() // the loser unblocks the queued winner
				return
			}
			ch.Recv(th, Any)
			errs[i] = ch.CloseCall(th)
		})
	}
	procs[0].TCreate("keeper", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any)
		th.Recv(Any, Any)
	})
	runReal(procs)
	var busy, ok int
	for i := 1; i <= 2; i++ {
		var oe *OpenError
		switch {
		case errs[i] == nil:
			ok++
		case errors.As(errs[i], &oe) && oe.Cause == CauseBusy:
			busy++
		default:
			t.Fatalf("caller %d: unexpected error %v", i, errs[i])
		}
	}
	if ok != 1 || busy != 1 {
		t.Fatalf("got %d connected / %d busy, want exactly 1/1", ok, busy)
	}
	st := procs[0].Lifecycle()
	if st.SetupsAccepted != 1 {
		t.Errorf("listener accepted %d, want 1", st.SetupsAccepted)
	}
	if st.SetupsRejected < 1 {
		t.Errorf("listener rejected %d, want >= 1 (the busy bounce)", st.SetupsRejected)
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
}

// TestCallIdleTimeoutOverride pins the per-call reaper override matrix on
// the virtual clock: a positive CallConfig.IdleTimeout arms the reaper
// even when the proc-wide knob is off, a negative one disables it even
// when the proc-wide knob is on, and zero inherits.
func TestCallIdleTimeoutOverride(t *testing.T) {
	run := func(procIdle, override time.Duration) (reaped bool, closed int64, err error) {
		vm := NewVirtualMesh(2, 1, VirtualMeshConfig{SigIdleTimeout: procIdle})
		vm.Procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
			defer th.Send(0, 1, []byte("bye"))
			ch, e := vm.Procs[0].OpenCall(th, 1, CallConfig{IdleTimeout: override})
			if e != nil {
				err = e
				return
			}
			// Model 50ms of compute: long enough for any armed reaper
			// (5ms period) to tear the idle channel down underneath us.
			th.Compute(50*time.Millisecond, func() {})
			reaped = ch.Closed()
			if !reaped {
				err = ch.CloseCall(th)
			}
		})
		// The callee needs a thread of its own: a proc with none never
		// reaches closing, and its periodic ticks would run to MaxTime.
		vm.Procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) {
			th.Recv(Any, 0)
		})
		vm.Run()
		return reaped, vm.Procs[0].Lifecycle().Closed, err
	}
	const idle = 5 * time.Millisecond
	cases := []struct {
		name              string
		procIdle, overrid time.Duration
		wantReaped        bool
	}{
		{"override-arms", 0, idle, true},
		{"override-disables", idle, -1, false},
		{"inherit", idle, 0, true},
		{"off", 0, 0, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			reaped, closed, err := run(tc.procIdle, tc.overrid)
			if err != nil {
				t.Fatalf("call: %v", err)
			}
			if reaped != tc.wantReaped {
				t.Fatalf("reaped = %v, want %v", reaped, tc.wantReaped)
			}
			if closed != 1 {
				t.Errorf("caller closed = %d, want 1", closed)
			}
		})
	}
}

// vmRand mirrors VirtualMesh.Rand's stream split for real-mode chaos
// workloads: seed x stream, deterministic per (seed, proc).
func vmRand(seed, stream int64) *rng { return newRng(uint64(seed)<<20 ^ uint64(stream)) }

// rng is a tiny splitmix64 stream: the chaos test only needs cheap,
// dependency-free, per-proc deterministic payload sizes.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) Intn(n int) int {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}
