package core

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// SelectiveRepeat is the second real error-control discipline: per-message
// acknowledgement and retransmission, with a receive window that buffers
// out-of-order arrivals instead of discarding them (go-back-N's weakness
// under loss). It demonstrates that the paper's "error control thread" slot
// is genuinely pluggable: the discipline is selected per application at
// NCS_init time, exactly like flow control in Figure 5.
type SelectiveRepeat struct {
	// Window bounds in-flight messages per destination.
	Window int
	// Timeout is the per-message retransmission timer.
	Timeout time.Duration
	// MaxRetries bounds per-message retransmissions before the message is
	// abandoned (dead peer). Defaults to 25.
	MaxRetries int

	p         *Proc
	peers     map[ProcID]*srPeer
	retrans   int64
	abandoned int64
}

type srPending struct {
	m       *transport.Message
	acked   bool
	retries int
}

type srPeer struct {
	// Sender side.
	nextSeq  uint32
	base     uint32
	inflight map[uint32]*srPending
	deferred []*sendReq

	// Receiver side: expected is the next in-order sequence; buffered
	// holds arrived-but-out-of-order messages.
	expected uint32
	buffered map[uint32]*transport.Message
}

// NewSelectiveRepeat returns a selective-repeat discipline.
func NewSelectiveRepeat(window int, timeout time.Duration) *SelectiveRepeat {
	if window < 1 || timeout <= 0 {
		panic("core: selective repeat needs window >= 1 and positive timeout")
	}
	return &SelectiveRepeat{Window: window, Timeout: timeout, MaxRetries: 25}
}

// Name implements ErrorControl.
func (s *SelectiveRepeat) Name() string { return "selective-repeat" }

// Retransmissions returns how many copies were re-sent.
func (s *SelectiveRepeat) Retransmissions() int64 { return s.retrans }

// Abandoned returns how many messages were given up on.
func (s *SelectiveRepeat) Abandoned() int64 { return s.abandoned }

func (s *SelectiveRepeat) init(p *Proc) {
	s.p = p
	s.peers = make(map[ProcID]*srPeer)
}

func (s *SelectiveRepeat) peer(id ProcID) *srPeer {
	pe := s.peers[id]
	if pe == nil {
		pe = &srPeer{
			nextSeq:  1,
			base:     1,
			expected: 1,
			inflight: make(map[uint32]*srPending),
			buffered: make(map[uint32]*transport.Message),
		}
		s.peers[id] = pe
	}
	return pe
}

func (s *SelectiveRepeat) admit(req *sendReq) bool {
	pe := s.peer(req.m.To)
	if pe.nextSeq-pe.base >= uint32(s.Window) {
		pe.deferred = append(pe.deferred, req)
		return false
	}
	req.m.ESeq = pe.nextSeq
	pe.nextSeq++
	cp := *req.m
	pending := &srPending{m: &cp}
	pe.inflight[cp.ESeq] = pending
	s.armTimer(req.m.To, cp.ESeq)
	return true
}

func (s *SelectiveRepeat) armTimer(dst ProcID, seq uint32) {
	s.p.cfg.After(s.Timeout, func() { s.timerFire(dst, seq) })
}

func (s *SelectiveRepeat) timerFire(dst ProcID, seq uint32) {
	pe := s.peers[dst]
	if pe == nil {
		return
	}
	pending, ok := pe.inflight[seq]
	if !ok || pending.acked {
		return
	}
	pending.retries++
	if pending.retries > s.MaxRetries {
		s.abandoned++
		delete(pe.inflight, seq)
		s.slide(pe)
		s.p.exception(fmt.Errorf("selective-repeat: gave up on seq %d to proc %d", seq, dst))
		s.p.checkShutdownWake()
		return
	}
	cp := *pending.m
	s.retrans++
	req := s.p.getReq()
	req.m = &cp
	req.raw = true
	s.p.enqueueSend(req)
	s.armTimer(dst, seq)
}

// slide advances base past acked/abandoned sequences and releases deferred
// requests into the freed window space.
func (s *SelectiveRepeat) slide(pe *srPeer) {
	for pe.base < pe.nextSeq {
		pending, ok := pe.inflight[pe.base]
		if ok && !pending.acked {
			break
		}
		delete(pe.inflight, pe.base)
		pe.base++
	}
	for len(pe.deferred) > 0 && pe.nextSeq-pe.base < uint32(s.Window) {
		req := pe.deferred[0]
		pe.deferred = pe.deferred[1:]
		s.p.enqueueSend(req)
	}
}

func (s *SelectiveRepeat) onData(m *transport.Message) bool {
	if m.ESeq == 0 {
		return true
	}
	pe := s.peer(m.From)
	// Ack every received copy individually (selective ack).
	s.p.enqueueControl(&transport.Message{
		From: s.p.cfg.ID,
		To:   m.From,
		Tag:  tagGBNAck, // same control channel; payload is the acked seq
		Data: putUint32(m.ESeq),
	})
	switch {
	case m.ESeq == pe.expected:
		pe.expected++
		// Flush buffered successors. They must be processed *before*
		// anything already queued behind the current message — a raw
		// arrival sitting in rxIn could otherwise match the advanced
		// expected sequence and leapfrog them — so they are prepended,
		// with sequences cleared so this discipline passes them through
		// instead of re-filtering them as duplicates.
		var flushed []*transport.Message
		for {
			next, ok := pe.buffered[pe.expected]
			if !ok {
				break
			}
			delete(pe.buffered, pe.expected)
			pe.expected++
			next.ESeq = 0
			flushed = append(flushed, next)
		}
		if len(flushed) > 0 {
			// Prepend ahead of the live (unconsumed) region of the
			// head-indexed queue.
			s.p.rxIn = append(flushed, s.p.rxIn[s.p.rxInHead:]...)
			s.p.rxInHead = 0
		}
		return true
	case m.ESeq > pe.expected:
		if _, dup := pe.buffered[m.ESeq]; !dup {
			pe.buffered[m.ESeq] = m
		}
		return false
	default:
		return false // duplicate of an already-delivered message
	}
}

func (s *SelectiveRepeat) onControl(m *transport.Message) {
	pe := s.peer(m.From)
	seq := getUint32(m.Data)
	if pending, ok := pe.inflight[seq]; ok {
		pending.acked = true
		s.slide(pe)
		s.p.checkShutdownWake()
	}
}

func (s *SelectiveRepeat) pending() int {
	total := 0
	for _, pe := range s.peers {
		for _, pending := range pe.inflight {
			if !pending.acked {
				total++
			}
		}
	}
	return total
}

func (s *SelectiveRepeat) shutdown() {}
