package core

import (
	"fmt"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// SelectiveRepeat is the second real error-control discipline: per-message
// acknowledgement and retransmission, with a receive window that buffers
// out-of-order arrivals instead of discarding them (go-back-N's weakness
// under loss). It demonstrates that the paper's "error control thread" slot
// is genuinely pluggable: the discipline is selected per channel, exactly
// like flow control in Figure 5. One instance serves one Channel.
type SelectiveRepeat struct {
	// Window bounds in-flight messages on the channel.
	Window int
	// Timeout is the per-message retransmission timer.
	Timeout time.Duration
	// MaxRetries bounds per-message retransmissions before the message is
	// abandoned (dead peer). Defaults to 25.
	MaxRetries int

	p  *Proc
	ch *Channel

	// Sender side.
	nextSeq  uint32
	base     uint32
	inflight map[uint32]*srPending
	deferred []*sendReq

	// Receiver side: expected is the next in-order sequence; buffered
	// holds arrived-but-out-of-order messages.
	expected uint32
	buffered map[uint32]*transport.Message

	retrans   int64
	abandoned int64
}

type srPending struct {
	m       *transport.Message
	acked   bool
	retries int
}

// NewSelectiveRepeat returns a selective-repeat discipline.
func NewSelectiveRepeat(window int, timeout time.Duration) *SelectiveRepeat {
	if window < 1 || timeout <= 0 {
		panic("core: selective repeat needs window >= 1 and positive timeout")
	}
	return &SelectiveRepeat{Window: window, Timeout: timeout, MaxRetries: 25}
}

// Name implements ErrorControl.
func (s *SelectiveRepeat) Name() string { return "selective-repeat" }

func (s *SelectiveRepeat) fork() ErrorControl {
	f := NewSelectiveRepeat(s.Window, s.Timeout)
	f.MaxRetries = s.MaxRetries
	return f
}

// Retransmissions returns how many copies were re-sent.
func (s *SelectiveRepeat) Retransmissions() int64 {
	s.ch.laneLock()
	defer s.ch.laneUnlock()
	return s.retrans
}

// Abandoned returns how many messages were given up on.
func (s *SelectiveRepeat) Abandoned() int64 {
	s.ch.laneLock()
	defer s.ch.laneUnlock()
	return s.abandoned
}

func (s *SelectiveRepeat) init(c *Channel) {
	if s.ch != nil {
		panic("core: ErrorControl instance bound to two channels; pass a fresh instance per channel")
	}
	s.ch = c
	s.p = c.p
	s.nextSeq = 1
	s.base = 1
	s.expected = 1
	s.inflight = make(map[uint32]*srPending)
	s.buffered = make(map[uint32]*transport.Message)
}

func (s *SelectiveRepeat) admit(req *sendReq) bool {
	if s.nextSeq-s.base >= uint32(s.Window) {
		s.deferred = append(s.deferred, req)
		return false
	}
	req.m.ESeq = s.nextSeq
	s.nextSeq++
	// Private copy, payload included — the caller may reuse its buffer
	// once the first transmission is serialized (see GoBackN.admit).
	cp := *req.m
	cp.Data = append([]byte(nil), req.m.Data...)
	pending := &srPending{m: &cp}
	s.inflight[cp.ESeq] = pending
	s.armTimer(cp.ESeq)
	return true
}

func (s *SelectiveRepeat) armTimer(seq uint32) {
	// Per-sequence timers need the sequence baked in, so unlike the other
	// disciplines each arm builds a fresh closure (wrapped into the lane
	// domain on sharded channels).
	s.p.cfg.After(s.Timeout, s.ch.wrapTimer(func() { s.timerFire(seq) }))
}

func (s *SelectiveRepeat) timerFire(seq uint32) {
	pending, ok := s.inflight[seq]
	if !ok || pending.acked {
		return
	}
	pending.retries++
	if pending.retries > s.MaxRetries {
		s.abandoned++
		delete(s.inflight, seq)
		s.slide()
		s.ch.raise(fmt.Errorf("selective-repeat: gave up on seq %d to proc %d (channel %d)", seq, s.ch.peer, s.ch.id))
		s.p.checkShutdownWake()
		return
	}
	cp := *pending.m
	s.retrans++
	req := s.p.getReq()
	req.m = &cp
	req.ch = s.ch
	req.raw = true
	s.p.enqueueSend(req)
	s.armTimer(seq)
}

// slide advances base past acked/abandoned sequences and releases deferred
// requests into the freed window space. base catches nextSeq one step at a
// time, so the loop condition is wrap-safe.
func (s *SelectiveRepeat) slide() {
	for s.base != s.nextSeq {
		pending, ok := s.inflight[s.base]
		if ok && !pending.acked {
			break
		}
		delete(s.inflight, s.base)
		s.base++
	}
	for len(s.deferred) > 0 && s.nextSeq-s.base < uint32(s.Window) {
		req := s.deferred[0]
		s.deferred = s.deferred[1:]
		s.p.enqueueSend(req)
	}
}

func (s *SelectiveRepeat) onData(m *transport.Message) bool {
	if m.ESeq == 0 {
		return true
	}
	// Ack every received copy individually (selective ack); acks queue
	// for piggybacking on reverse data, and the flush path batches a
	// burst's worth into one standalone frame when none flows.
	s.ch.queueAck(m.ESeq, false)
	switch {
	case m.ESeq == s.expected:
		s.expected++
		// Flush buffered successors. They must be processed *before*
		// anything already queued behind the current message — a raw
		// arrival sitting in rxIn could otherwise match the advanced
		// expected sequence and leapfrog them — so they are prepended to
		// the channel's receive level, with sequences cleared so this
		// discipline passes them through instead of re-filtering them as
		// duplicates.
		var flushed []*transport.Message
		for {
			next, ok := s.buffered[s.expected]
			if !ok {
				break
			}
			delete(s.buffered, s.expected)
			s.expected++
			next.ESeq = 0
			flushed = append(flushed, next)
		}
		if len(flushed) > 0 {
			s.ch.requeueRx(flushed)
		}
		return true
	case wire.SeqNewer(m.ESeq, s.expected):
		if _, dup := s.buffered[m.ESeq]; !dup {
			// Retained for the in-order flush: ownership (and the pooled
			// buffer) stays with the message until delivery. The
			// piggybacked control words were already applied on arrival —
			// clear them so the flush re-pass through recvLoop does not
			// consume them twice (harmless for the protocol, but it would
			// count phantom stale advertisements).
			m.HasCredit, m.HasAck = false, false
			s.buffered[m.ESeq] = m
		} else {
			m.Release() // copy of an already-buffered arrival
		}
		return false
	default:
		// Duplicate of an already-delivered message: never read again.
		m.Release()
		return false
	}
}

func (s *SelectiveRepeat) onControl(m *transport.Message) {
	forEachCtrlWord(m, s.onAck)
}

// onAck marks one selectively-acknowledged sequence, standalone or
// piggybacked.
func (s *SelectiveRepeat) onAck(seq uint32) {
	if pending, ok := s.inflight[seq]; ok {
		pending.acked = true
		s.slide()
		s.p.checkShutdownWake()
	}
}

func (s *SelectiveRepeat) pending() int {
	total := 0
	for _, pending := range s.inflight {
		if !pending.acked {
			total++
		}
	}
	return total
}

func (s *SelectiveRepeat) queued() int     { return len(s.deferred) }
func (s *SelectiveRepeat) sequenced() bool { return true }

// shutdown fails deferred requests so a Send gated on window space cannot
// hang across Channel.Close; the in-flight window keeps retransmitting
// until acked or abandoned, like GoBackN.
func (s *SelectiveRepeat) shutdown() {
	reqs := s.deferred
	s.deferred = nil
	s.p.failGated(s.ch, reqs, "selective repeat")
}

// abandon drops every unacked in-flight message: the peer is dead, nothing
// will ack them. Per-sequence timers self-cancel on fire (missing inflight
// entry re-arms nothing).
func (s *SelectiveRepeat) abandon() {
	for _, pd := range s.inflight {
		if !pd.acked {
			s.abandoned++
		}
	}
	s.inflight = make(map[uint32]*srPending)
	s.base = s.nextSeq
}
