package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// shardedCluster builds n NCS processes over the Mem transport with four
// send/recv lanes each — the sharded hot path, regardless of GOMAXPROCS.
func shardedCluster(t *testing.T, n int, net *transport.Mem, mk func(i int) (FlowControl, ErrorControl)) []*Proc {
	t.Helper()
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
		ep := net.Attach(ProcID(i), rt)
		var fc FlowControl
		var ec ErrorControl
		if mk != nil {
			fc, ec = mk(i)
		}
		procs[i] = New(Config{
			ID: ProcID(i), RT: rt, Endpoint: ep,
			Flow: fc, Error: ec,
			SendLanes: 4, RecvLanes: 4,
		})
	}
	return procs
}

func TestShardedEngages(t *testing.T) {
	net := transport.NewMem()
	procs := shardedCluster(t, 1, net, nil)
	if procs[0].Lanes() != 4 {
		t.Fatalf("Lanes() = %d, want 4", procs[0].Lanes())
	}
	procs[0].TCreate("noop", mts.PrioDefault, func(th *Thread) {})
	runReal(procs)

	// Lane count 1 must select the classic two-thread engine.
	rt := mts.New(mts.Config{Name: "classic", IdleTimeout: 10 * time.Second})
	ep := transport.NewMem().Attach(0, rt)
	p := New(Config{ID: 0, RT: rt, Endpoint: ep, SendLanes: 1, RecvLanes: 1})
	if p.Lanes() != 1 || p.sharded() {
		t.Fatalf("SendLanes=1 must run the classic path (lanes=%d sharded=%v)", p.Lanes(), p.sharded())
	}
	p.TCreate("noop", mts.PrioDefault, func(th *Thread) {})
	runReal([]*Proc{p})
}

func TestShardedRoundTrip(t *testing.T) {
	const msgs = 200
	net := transport.NewMem()
	procs := shardedCluster(t, 2, net, nil)
	var got [msgs]string
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for i := 0; i < msgs; i++ {
			th.SendTagged(i, 0, 1, []byte(fmt.Sprintf("msg-%d", i)))
		}
	})
	procs[1].TCreate("receiver", mts.PrioDefault, func(th *Thread) {
		for i := 0; i < msgs; i++ {
			data, _ := th.RecvTagged(i, Any, 0)
			got[i] = string(data)
		}
	})
	runReal(procs)
	for i := 0; i < msgs; i++ {
		if got[i] != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("msg %d: got %q", i, got[i])
		}
	}
	if procs[0].Sent() != msgs || procs[1].Received() != msgs {
		t.Fatalf("counters: sent=%d recv=%d", procs[0].Sent(), procs[1].Received())
	}
}

// TestShardedChannelFIFO opens many channels (spread across lanes, two
// pinned to the same lane explicitly) and checks per-channel FIFO when all
// of them blast concurrently from sibling threads.
func TestShardedChannelFIFO(t *testing.T) {
	const nch, msgs = 8, 100
	net := transport.NewMem()
	procs := shardedCluster(t, 2, net, nil)
	tx := make([]*Channel, nch)
	rx := make([]*Channel, nch)
	for i := 0; i < nch; i++ {
		cfg := ChannelConfig{ID: ChannelID(i + 1), Priority: i % NumChannelPriorities, Lane: i % 5}
		tx[i] = procs[0].Open(1, cfg)
		rx[i] = procs[1].Open(0, cfg)
	}
	order := make([][]int, nch)
	for i := 0; i < nch; i++ {
		i := i
		procs[0].TCreate(fmt.Sprintf("tx%d", i), mts.PrioDefault, func(th *Thread) {
			for k := 0; k < msgs; k++ {
				tx[i].SendTagged(th, k, i, nil)
			}
		})
		procs[1].TCreate(fmt.Sprintf("rx%d", i), mts.PrioDefault, func(th *Thread) {
			for k := 0; k < msgs; k++ {
				m := th.recvMsgOn(tx[i].id, Any, Any, 0)
				order[i] = append(order[i], m.Tag)
				m.Release()
			}
		})
	}
	runReal(procs)
	for i := 0; i < nch; i++ {
		for k, tag := range order[i] {
			if tag != k {
				t.Fatalf("channel %d: position %d saw tag %d (FIFO broken)", i, k, tag)
			}
		}
	}
}

// TestShardedLanePinning checks the ChannelConfig.Lane override and the
// default peer-hash placement.
func TestShardedLanePinning(t *testing.T) {
	net := transport.NewMem()
	procs := shardedCluster(t, 2, net, nil)
	p := procs[0]
	pinned := p.Open(1, ChannelConfig{ID: 1, Lane: 3})
	if want := p.lanes[(3-1)%4]; pinned.laneOf() != want {
		t.Fatalf("Lane:3 pinned to lane %d, want %d", pinned.laneOf().idx, want.idx)
	}
	hashed := p.Open(1, ChannelConfig{ID: 2})
	if want := p.lanes[1%4]; hashed.laneOf() != want {
		t.Fatalf("default pin landed on lane %d, want peer-hash lane %d", hashed.laneOf().idx, want.idx)
	}
	wrap := p.Open(1, ChannelConfig{ID: 3, Lane: 6})
	if want := p.lanes[(6-1)%4]; wrap.laneOf() != want {
		t.Fatalf("Lane:6 pinned to lane %d, want %d", wrap.laneOf().idx, want.idx)
	}
	procs[0].TCreate("noop", mts.PrioDefault, func(th *Thread) {})
	procs[1].TCreate("noop", mts.PrioDefault, func(th *Thread) {})
	runReal(procs)
}

// TestShardedCollectives drives the whole Group suite (dissemination
// barrier, tree bcast/gather/reduce, pairwise all-to-all) over sharded
// procs, exercising the fan-batched sharded send path.
func TestShardedCollectives(t *testing.T) {
	const n = 4
	net := transport.NewMem()
	procs := shardedCluster(t, n, net, nil)
	members := make([]Addr, n)
	for i := range members {
		members[i] = Addr{Proc: ProcID(i), Thread: 0}
	}
	results := make([][][]byte, n)
	sums := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("member", mts.PrioDefault, func(th *Thread) {
			g := procs[i].NewGroup(members, GroupConfig{})
			for round := 0; round < 5; round++ {
				g.Barrier(th)
			}
			data := g.Bcast(th, 0, []byte("payload"))
			if string(data) != "payload" {
				t.Errorf("member %d: bcast got %q", i, data)
			}
			gathered := g.Gather(th, 0, []byte{byte(i)})
			if i == 0 {
				results[0] = gathered
			}
			red := g.Reduce(th, 0, []byte{byte(i)}, func(acc, next []byte) []byte {
				return []byte{acc[0] + next[0]}
			})
			if i == 0 {
				sums[0] = int(red[0])
			}
			g.Barrier(th)
		})
	}
	runReal(procs)
	if len(results[0]) != n {
		t.Fatalf("gather returned %d entries", len(results[0]))
	}
	for i := 0; i < n; i++ {
		if len(results[0][i]) != 1 || results[0][i][0] != byte(i) {
			t.Fatalf("gather[%d] = %v", i, results[0][i])
		}
	}
	if sums[0] != 0+1+2+3 {
		t.Fatalf("reduce sum = %d", sums[0])
	}
}

// TestShardedStatsRace hammers ChannelStats and the proc-global counters
// from an outside goroutine while eight channels blast concurrently across
// four lanes — the counter-atomicity satellite; run under -race.
func TestShardedStatsRace(t *testing.T) {
	const nch, msgs = 8, 200
	net := transport.NewMem()
	procs := shardedCluster(t, 2, net, nil)
	chans := make([]*Channel, nch)
	peers := make([]*Channel, nch)
	for i := 0; i < nch; i++ {
		cfg := ChannelConfig{ID: ChannelID(i + 1), Priority: i % NumChannelPriorities}
		chans[i] = procs[0].Open(1, cfg)
		peers[i] = procs[1].Open(0, cfg)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sink int64
		for !stop.Load() {
			for i := 0; i < nch; i++ {
				s := chans[i].Stats()
				r := peers[i].Stats()
				sink += s.Sent + s.BytesSent + s.CtrlPiggybacked + s.CtrlStandalone
				sink += r.Received + r.BytesReceived
			}
			sink += procs[0].Sent() + procs[1].Received()
		}
		_ = sink
	}()
	payload := make([]byte, 64)
	for i := 0; i < nch; i++ {
		i := i
		procs[0].TCreate(fmt.Sprintf("tx%d", i), mts.PrioDefault, func(th *Thread) {
			for k := 0; k < msgs; k++ {
				chans[i].Send(th, i, payload)
			}
		})
		procs[1].TCreate(fmt.Sprintf("rx%d", i), mts.PrioDefault, func(th *Thread) {
			buf := make([]byte, 64)
			for k := 0; k < msgs; k++ {
				peers[i].RecvInto(th, buf, Any)
			}
		})
	}
	runReal(procs)
	stop.Store(true)
	wg.Wait()
	var sent, recv int64
	for i := 0; i < nch; i++ {
		sent += chans[i].Stats().Sent
		recv += peers[i].Stats().Received
	}
	if sent != nch*msgs || recv != nch*msgs {
		t.Fatalf("channel stats: sent=%d recv=%d want %d", sent, recv, nch*msgs)
	}
	if procs[0].Sent() != nch*msgs || procs[1].Received() != nch*msgs {
		t.Fatalf("proc counters: sent=%d recv=%d", procs[0].Sent(), procs[1].Received())
	}
}

// TestShardedWindowedFlow runs windowed flow control (deferred senders,
// credit advertisements) over the sharded path: the gated-send wakeup must
// survive lanes.
func TestShardedWindowedFlow(t *testing.T) {
	const msgs = 300
	net := transport.NewMem()
	procs := shardedCluster(t, 2, net, func(i int) (FlowControl, ErrorControl) {
		return NewWindowFlow(4), nil
	})
	tx := procs[0].Open(1, ChannelConfig{ID: 1, Flow: NewWindowFlow(4)})
	rx := procs[1].Open(0, ChannelConfig{ID: 1, Flow: NewWindowFlow(4)})
	var got int
	procs[0].TCreate("tx", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			tx.SendTagged(th, k, 0, []byte("x"))
		}
	})
	procs[1].TCreate("rx", mts.PrioDefault, func(th *Thread) {
		buf := make([]byte, 8)
		for k := 0; k < msgs; k++ {
			rx.RecvInto(th, buf, Any)
			got++
		}
	})
	runReal(procs)
	if got != msgs {
		t.Fatalf("received %d/%d", got, msgs)
	}
}
