package core

// MPI message-passing filter (paper §6: "We are also investigating the
// performance of NCS MTS/p4 implementation when p4 is replaced by PVM and
// MPI"; Figure 6 shows the filter layer). The mapping mirrors the p4 and
// PVM filters: an MPI rank is an NCS process, MPI_COMM_WORLD is the set of
// processes the harness assembled, and point-to-point calls ride the NCS
// system threads so they block only the calling thread.

// MPI wildcard constants.
const (
	MPIAnySource = Any
	MPIAnyTag    = Any
)

// MPIStatus mirrors MPI_Status: the actual source, tag, and byte count of
// a completed receive.
type MPIStatus struct {
	Source ProcID
	Tag    int
	Count  int
}

// MPIFilter presents MPI-style primitives on top of an NCS thread.
type MPIFilter struct {
	t *Thread
	// world lists the communicator's members in rank order.
	world []ProcID
	// gcfg configures the collective communicator (channel pinning, tree
	// fanout); group is built lazily on the first collective call.
	gcfg  GroupConfig
	group *Group
}

// MPI returns the MPI-style view of an NCS thread, with the given
// MPI_COMM_WORLD membership (rank i = world[i]).
func MPI(t *Thread, world []ProcID) *MPIFilter {
	return &MPIFilter{t: t, world: world}
}

// MPIOn is MPI with the collectives pinned to a channel and tree fanout of
// the caller's choosing: Bcast and Barrier ride cfg.Channel (which must be
// open to every other rank) instead of the default channel.
func MPIOn(t *Thread, world []ProcID, cfg GroupConfig) *MPIFilter {
	return &MPIFilter{t: t, world: world, gcfg: cfg}
}

// commGroup builds (once) the communicator's collective Group. Like the
// point-to-point calls, the filter uses the same-index thread convention:
// every rank must drive its filter from the same thread index.
func (f *MPIFilter) commGroup() *Group {
	if f.group == nil {
		members := make([]Addr, len(f.world))
		for i, id := range f.world {
			members[i] = Addr{Proc: id, Thread: f.t.idx}
		}
		f.group = f.t.proc.NewGroup(members, f.gcfg)
	}
	return f.group
}

// Rank returns this process's rank in the communicator.
func (f *MPIFilter) Rank() int {
	for i, id := range f.world {
		if id == f.t.proc.cfg.ID {
			return i
		}
	}
	panic("core: mpi rank not in communicator")
}

// Size returns the communicator size.
func (f *MPIFilter) Size() int { return len(f.world) }

// Send is MPI_Send: blocking standard-mode send to a rank.
func (f *MPIFilter) Send(buf []byte, dest, tag int) {
	f.t.SendTagged(tag, f.t.idx, f.world[dest], buf)
}

// Recv is MPI_Recv: blocking receive from a rank (or MPIAnySource) with a
// tag (or MPIAnyTag).
func (f *MPIFilter) Recv(source, tag int) ([]byte, MPIStatus) {
	from := ProcID(Any)
	if source != MPIAnySource {
		from = f.world[source]
	}
	data, addr, actualTag := f.t.recvTagOut(tag, Any, from)
	return data, MPIStatus{Source: addr.Proc, Tag: actualTag, Count: len(data)}
}

// Sendrecv is MPI_Sendrecv: the paired exchange that makes neighbour
// patterns deadlock-free. Under NCS the send is handed to the send system
// thread and only this thread parks, so send-then-receive cannot deadlock
// against a symmetric partner.
func (f *MPIFilter) Sendrecv(sendBuf []byte, dest, sendTag, source, recvTag int) ([]byte, MPIStatus) {
	f.Send(sendBuf, dest, sendTag)
	return f.Recv(source, recvTag)
}

// Bcast is MPI_Bcast over the communicator: the payload travels down the
// communicator's q-nomial tree (O(log N) critical path instead of the old
// root-serialized loop) and is returned on every rank.
func (f *MPIFilter) Bcast(buf []byte, root int) []byte {
	return f.commGroup().Bcast(f.t, root, buf)
}

// Barrier is MPI_Barrier over the communicator, as a dissemination barrier
// (no root; ceil(log2 N) rounds) on the communicator's group.
func (f *MPIFilter) Barrier() {
	f.commGroup().Barrier(f.t)
}
