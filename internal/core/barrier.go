package core

import (
	"fmt"

	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Cross-process barrier (paper §3.1, the synchronization primitive class).
//
// The protocol is root-collected: every non-root process sends a
// tagBarrier(group, generation) message to the root (group[0]); once the
// root has heard from everyone it sends tagBarrierRel(group, generation)
// back. One thread per process participates — the paper's barrier
// synchronizes processes, not individual threads.
//
// This is the *linear* barrier: every arrival funnels through the root, in
// two serial rounds. It is kept as the process-level primitive (no thread
// addressing needed) and as the O(N) baseline the scale benches measure
// against; Group.Barrier in coll.go is the logarithmic dissemination
// barrier that phase-synchronized applications should use.
//
// Barrier state is keyed by the group's membership hash, so independent
// groups — including sibling threads of one process synchronizing disjoint
// groups — proceed concurrently. Only re-entering the *same* group while a
// barrier on it is still in flight is an error.

type barrierState struct {
	key      uint32
	gen      uint32
	arrivals int
	waiter   *mts.Thread
	released map[uint32]bool // early releases (root raced ahead)
	arrived  map[uint32]int  // early arrivals at the root
}

// barrierFor returns (creating on first use) the state slot for a group
// key. The table lives for the process: a group's generation counter must
// survive between barriers so early arrivals bank correctly.
func (p *Proc) barrierFor(key uint32) *barrierState {
	if p.bars == nil {
		p.bars = make(map[uint32]*barrierState)
	}
	b := p.bars[key]
	if b == nil {
		b = &barrierState{
			key:      key,
			released: make(map[uint32]bool),
			arrived:  make(map[uint32]int),
		}
		p.bars[key] = b
	}
	return b
}

// groupKey hashes a barrier group's membership (FNV-1a over the ordered
// ProcIDs). All members derive the same key from the same group slice, so
// the key travels in the control payload and demultiplexes concurrent
// barriers onto their own state machines. The key is the group's only
// wire identity: two distinct groups colliding in 32 bits would share a
// state machine — a deliberate tradeoff (one word on the wire against a
// ~2^-32 chance per group pair; applications with many distinct groups at
// that scale should use coll.go's Group, whose identity is positional).
func groupKey(group []ProcID) uint32 {
	h := uint32(2166136261)
	for _, id := range group {
		v := uint32(id)
		for s := 0; s < 32; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 16777619
		}
	}
	return h
}

// Barrier blocks until every process in group has reached it. All
// processes must call Barrier with the same group (same order); group[0]
// is the root. The calling thread parks; sibling threads keep running, and
// sibling threads may concurrently run barriers over *different* groups.
func (t *Thread) Barrier(group []ProcID) {
	p := t.proc
	b := p.barrierFor(groupKey(group))
	if b.waiter != nil {
		panic(fmt.Sprintf("core(proc %d): concurrent Barrier calls on the same group %v", p.cfg.ID, group))
	}
	gen := b.gen
	b.gen++
	root := group[0]
	self := -1
	for i, id := range group {
		if id == p.cfg.ID {
			self = i
		}
	}
	if self < 0 {
		panic(fmt.Sprintf("core(proc %d): not a member of barrier group %v", p.cfg.ID, group))
	}

	if p.cfg.ID == root {
		need := len(group) - 1
		// Count early arrivals already banked for this generation.
		b.arrivals = b.arrived[gen]
		delete(b.arrived, gen)
		if b.arrivals < need {
			b.waiter = t.mt
			p.traceThread(t, trace.Idle)
			for b.arrivals < need {
				t.mt.Park("barrier root")
			}
			b.waiter = nil
			p.traceThread(t, trace.Compute)
		}
		b.arrivals = 0
		// Release everyone.
		for _, id := range group[1:] {
			p.sendCtrlVec(id, 0, tagBarrierRel, []uint32{b.key, gen})
		}
		return
	}

	// Non-root: announce arrival, then wait for the release.
	p.sendCtrlVec(root, 0, tagBarrier, []uint32{b.key, gen})
	if b.released[gen] {
		delete(b.released, gen)
		return
	}
	b.waiter = t.mt
	p.traceThread(t, trace.Idle)
	for !b.released[gen] {
		t.mt.Park("barrier wait")
	}
	delete(b.released, gen)
	b.waiter = nil
	p.traceThread(t, trace.Compute)
}

// onBarrierMsg routes barrier control traffic (receive system thread) to
// the group's state machine; the payload carries [group key, generation].
func (p *Proc) onBarrierMsg(m *transport.Message) {
	if len(m.Data) < 8 {
		p.exception(fmt.Errorf("short barrier control frame from proc %d", m.From))
		return
	}
	key := wire.Uint32(m.Data)
	gen := wire.Uint32(m.Data[4:])
	p.barrierFor(key).onMessage(p, m.Tag, gen)
}

// onMessage handles one barrier control word in the receive system thread.
func (b *barrierState) onMessage(p *Proc, tag int, gen uint32) {
	switch tag {
	case tagBarrier:
		// Arrival at the root. If the root's thread hasn't entered this
		// generation yet, bank the arrival.
		if b.waiter != nil && gen == b.gen-1 {
			b.arrivals++
			p.cfg.RT.Unblock(b.waiter, false)
			return
		}
		if gen >= b.gen {
			b.arrived[gen]++
			return
		}
		b.arrivals++
	case tagBarrierRel:
		b.released[gen] = true
		if b.waiter != nil {
			p.cfg.RT.Unblock(b.waiter, false)
		}
	}
}
