package core

import (
	"fmt"

	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Cross-process barrier (paper §3.1, the synchronization primitive class).
//
// The protocol is root-collected: every non-root process sends a
// tagBarrier(generation) message to the root (group[0]); once the root has
// heard from everyone it sends tagBarrierRel(generation) back. One thread
// per process participates — the paper's barrier synchronizes processes,
// not individual threads.

type barrierState struct {
	gen      uint32
	arrivals int
	waiter   *mts.Thread
	released map[uint32]bool // early releases (root raced ahead)
	arrived  map[uint32]int  // early arrivals at the root
}

func (b *barrierState) lazyInit() {
	if b.released == nil {
		b.released = make(map[uint32]bool)
		b.arrived = make(map[uint32]int)
	}
}

// Barrier blocks until every process in group has reached it. All
// processes must call Barrier with the same group (same order); group[0]
// is the root. The calling thread parks; sibling threads keep running.
func (t *Thread) Barrier(group []ProcID) {
	p := t.proc
	p.bar.lazyInit()
	if p.bar.waiter != nil {
		panic(fmt.Sprintf("core(proc %d): concurrent Barrier calls", p.cfg.ID))
	}
	gen := p.bar.gen
	p.bar.gen++
	root := group[0]
	self := -1
	for i, id := range group {
		if id == p.cfg.ID {
			self = i
		}
	}
	if self < 0 {
		panic(fmt.Sprintf("core(proc %d): not a member of barrier group %v", p.cfg.ID, group))
	}

	if p.cfg.ID == root {
		need := len(group) - 1
		// Count early arrivals already banked for this generation.
		p.bar.arrivals = p.bar.arrived[gen]
		delete(p.bar.arrived, gen)
		if p.bar.arrivals < need {
			p.bar.waiter = t.mt
			p.traceThread(t, trace.Idle)
			for p.bar.arrivals < need {
				t.mt.Park("barrier root")
			}
			p.bar.waiter = nil
			p.traceThread(t, trace.Compute)
		}
		p.bar.arrivals = 0
		// Release everyone.
		for _, id := range group[1:] {
			p.sendCtrl(id, 0, tagBarrierRel, gen, true)
		}
		return
	}

	// Non-root: announce arrival, then wait for the release.
	p.sendCtrl(root, 0, tagBarrier, gen, true)
	if p.bar.released[gen] {
		delete(p.bar.released, gen)
		return
	}
	p.bar.waiter = t.mt
	p.traceThread(t, trace.Idle)
	for !p.bar.released[gen] {
		t.mt.Park("barrier wait")
	}
	delete(p.bar.released, gen)
	p.bar.waiter = nil
	p.traceThread(t, trace.Compute)
}

// onMessage handles barrier control traffic in the receive system thread.
func (b *barrierState) onMessage(p *Proc, m *transport.Message) {
	b.lazyInit()
	gen := ctrlPayload(m)
	switch m.Tag {
	case tagBarrier:
		// Arrival at the root. If the root's thread hasn't entered this
		// generation yet, bank the arrival.
		if b.waiter != nil && gen == b.gen-1 {
			b.arrivals++
			p.cfg.RT.Unblock(b.waiter, false)
			return
		}
		if gen >= b.gen {
			b.arrived[gen]++
			return
		}
		b.arrivals++
	case tagBarrierRel:
		b.released[gen] = true
		if b.waiter != nil {
			p.cfg.RT.Unblock(b.waiter, false)
		}
	}
}
