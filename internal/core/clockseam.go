package core

import "time"

// This file is the package's only sanctioned contact with the wall clock,
// and CI greps enforce that (see the clock-seam lint step in ci.yml): every
// other time source in internal/core rides Config.After / RT.Now, so a
// virtual-time harness controls them all by injecting the engine's timer.
// What remains here is real-mode-only machinery that deliberately avoids
// cfg.After.

// rebalanceLoop drives rebalanceTick off one reusable ticker on its own
// goroutine. The tick touches only atomics and the hot lane's MPSC ring —
// nothing scheduler- or lane-domain — so in real mode it does not ride
// cfg.After, whose one-shot timers would allocate every interval and show
// up in the steady-state allocation pins. (Virtual mode has no allocation
// pins to protect and no goroutines to spare: startRebalance runs the tick
// as a chain of virtual-timer events instead.) The goroutine exits on the
// first tick after the process starts closing.
func (p *Proc) rebalanceLoop() {
	tk := time.NewTicker(p.rebalEvery)
	defer tk.Stop()
	for range tk.C {
		if p.closing.Load() {
			return
		}
		p.rebalanceTick()
	}
}
