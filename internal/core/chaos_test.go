package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// TestQuickChaosTraffic drives random all-to-all traffic through simulated
// clusters and checks conservation (every message sent is received exactly
// once), addressing (only by the addressed thread), and per-sender-pair
// FIFO order — for arbitrary seeds, process counts, and thread counts.
func TestQuickChaosTraffic(t *testing.T) {
	f := func(seed int64, pRaw, tRaw, mRaw uint8) bool {
		nProcs := int(pRaw%3) + 2   // 2..4 processes
		nThreads := int(tRaw%2) + 1 // 1..2 threads each
		msgs := int(mRaw%8) + 4     // 4..11 messages per thread
		rng := rand.New(rand.NewSource(seed))

		// Plan the traffic up front so receivers know what to expect.
		type slot struct{ proc, thread int }
		plan := make(map[slot][]slot) // sender -> ordered destinations
		expect := make(map[slot]int)  // receiver -> inbound count
		for p := 0; p < nProcs; p++ {
			for th := 0; th < nThreads; th++ {
				src := slot{p, th}
				for m := 0; m < msgs; m++ {
					dp := rng.Intn(nProcs)
					if dp == p {
						dp = (dp + 1) % nProcs
					}
					dst := slot{dp, rng.Intn(nThreads)}
					plan[src] = append(plan[src], dst)
					expect[dst]++
				}
			}
		}

		eng, procs := simCluster(t, nProcs, nil)
		type recvRec struct {
			from Addr
			seq  byte
		}
		received := make(map[slot][]recvRec)
		for p := 0; p < nProcs; p++ {
			for th := 0; th < nThreads; th++ {
				self := slot{p, th}
				procs[p].TCreate(fmt.Sprintf("w%d.%d", p, th), mts.PrioDefault, func(tt *Thread) {
					// Interleave sends and receives; finish both quotas.
					dests := plan[self]
					want := expect[self]
					sent := 0
					got := 0
					for sent < len(dests) || got < want {
						if sent < len(dests) {
							d := dests[sent]
							tt.Send(d.thread, ProcID(d.proc), []byte{byte(sent)})
							sent++
						}
						if got < want {
							if data, from, ok := tt.TryRecv(Any, Any); ok {
								received[self] = append(received[self], recvRec{from, data[0]})
								got++
								continue
							}
							if sent == len(dests) {
								data, from := tt.Recv(Any, Any)
								received[self] = append(received[self], recvRec{from, data[0]})
								got++
							}
						}
					}
				})
			}
		}
		eng.SetMaxTime(time.Hour)
		eng.Run()

		// Conservation + per-pair FIFO.
		total := 0
		for self, recs := range received {
			total += len(recs)
			lastSeq := map[Addr]int{}
			for _, r := range recs {
				if prev, ok := lastSeq[r.from]; ok && int(r.seq) <= prev {
					t.Logf("FIFO broken at %v from %v: %d after %d", self, r.from, r.seq, prev)
					return false
				}
				lastSeq[r.from] = int(r.seq)
			}
			if len(recs) != expect[self] {
				return false
			}
		}
		return total == nProcs*nThreads*msgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestChannelIsolationUnderLoss asserts the tentpole property of the
// channel layer: two channels with different error control share one lossy
// Mem transport, fault injection is aimed at the bulk channel only (data
// and acks alike), and the drops must never stall or reorder the video
// channel — its frames arrive complete and strictly in order while
// go-back-N is busy recovering the bulk stream.
func TestChannelIsolationUnderLoss(t *testing.T) {
	for _, seed := range []int64{1, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const (
				videoID ChannelID = 1
				bulkID  ChannelID = 2
				frames            = 25
				bulkN             = 20
			)
			mem := transport.NewMem()
			mem.SetDropRate(0.3, seed)
			mem.SetDropClass(func(m *transport.Message) bool { return m.Channel == bulkID })
			procs := realCluster(t, 2, mem, nil)
			procs[0].OnException(func(error) {}) // trailing-ack give-up after peer exit

			video0 := procs[0].Open(1, ChannelConfig{ID: videoID, Priority: 7})
			bulk0 := procs[0].Open(1, ChannelConfig{ID: bulkID, Error: NewGoBackN(4, 15*time.Millisecond)})
			video1 := procs[1].Open(0, ChannelConfig{ID: videoID, Priority: 7})
			bulk1 := procs[1].Open(0, ChannelConfig{ID: bulkID, Error: NewGoBackN(4, 15*time.Millisecond)})

			procs[0].TCreate("video", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < frames; k++ {
					video0.Send(th, 0, []byte{byte(k)})
				}
			})
			procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < bulkN; k++ {
					bulk0.Send(th, 1, []byte{byte(k)})
				}
			})
			var gotVideo, gotBulk []int
			procs[1].TCreate("viewer", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < frames; k++ {
					data, _ := video1.Recv(th, Any)
					gotVideo = append(gotVideo, int(data[0]))
				}
			})
			procs[1].TCreate("sink", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < bulkN; k++ {
					data, _ := bulk1.Recv(th, Any)
					gotBulk = append(gotBulk, int(data[0]))
				}
			})
			runReal(procs)

			if mem.Dropped() == 0 {
				t.Fatal("fault injection never dropped anything — test proves nothing")
			}
			// Video: no error control, yet complete and in order, because
			// only bulk traffic was lossy and the channels are isolated.
			if len(gotVideo) != frames {
				t.Fatalf("video delivered %d of %d frames", len(gotVideo), frames)
			}
			for i, v := range gotVideo {
				if v != i {
					t.Fatalf("video reordered at %d: %v", i, gotVideo)
				}
			}
			// Bulk: go-back-N recovered every message in order.
			if len(gotBulk) != bulkN {
				t.Fatalf("bulk delivered %d of %d", len(gotBulk), bulkN)
			}
			for i, v := range gotBulk {
				if v != i {
					t.Fatalf("bulk reordered at %d: %v", i, gotBulk)
				}
			}
			if bulk0.Error().(*GoBackN).Retransmissions() == 0 {
				t.Fatal("bulk channel never retransmitted — loss did not exercise recovery")
			}
		})
	}
}
