package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestQuickChaosTraffic drives random all-to-all traffic through simulated
// clusters and checks conservation (every message sent is received exactly
// once), addressing (only by the addressed thread), and per-sender-pair
// FIFO order — for arbitrary seeds, process counts, and thread counts.
func TestQuickChaosTraffic(t *testing.T) {
	f := func(seed int64, pRaw, tRaw, mRaw uint8) bool {
		nProcs := int(pRaw%3) + 2   // 2..4 processes
		nThreads := int(tRaw%2) + 1 // 1..2 threads each
		msgs := int(mRaw%8) + 4     // 4..11 messages per thread
		rng := rand.New(rand.NewSource(seed))

		// Plan the traffic up front so receivers know what to expect.
		type slot struct{ proc, thread int }
		plan := make(map[slot][]slot) // sender -> ordered destinations
		expect := make(map[slot]int)  // receiver -> inbound count
		for p := 0; p < nProcs; p++ {
			for th := 0; th < nThreads; th++ {
				src := slot{p, th}
				for m := 0; m < msgs; m++ {
					dp := rng.Intn(nProcs)
					if dp == p {
						dp = (dp + 1) % nProcs
					}
					dst := slot{dp, rng.Intn(nThreads)}
					plan[src] = append(plan[src], dst)
					expect[dst]++
				}
			}
		}

		eng, procs := simCluster(t, nProcs, nil)
		type recvRec struct {
			from Addr
			seq  byte
		}
		received := make(map[slot][]recvRec)
		for p := 0; p < nProcs; p++ {
			for th := 0; th < nThreads; th++ {
				self := slot{p, th}
				procs[p].TCreate(fmt.Sprintf("w%d.%d", p, th), mts.PrioDefault, func(tt *Thread) {
					// Interleave sends and receives; finish both quotas.
					dests := plan[self]
					want := expect[self]
					sent := 0
					got := 0
					for sent < len(dests) || got < want {
						if sent < len(dests) {
							d := dests[sent]
							tt.Send(d.thread, ProcID(d.proc), []byte{byte(sent)})
							sent++
						}
						if got < want {
							if data, from, ok := tt.TryRecv(Any, Any); ok {
								received[self] = append(received[self], recvRec{from, data[0]})
								got++
								continue
							}
							if sent == len(dests) {
								data, from := tt.Recv(Any, Any)
								received[self] = append(received[self], recvRec{from, data[0]})
								got++
							}
						}
					}
				})
			}
		}
		eng.SetMaxTime(time.Hour)
		eng.Run()

		// Conservation + per-pair FIFO.
		total := 0
		for self, recs := range received {
			total += len(recs)
			lastSeq := map[Addr]int{}
			for _, r := range recs {
				if prev, ok := lastSeq[r.from]; ok && int(r.seq) <= prev {
					t.Logf("FIFO broken at %v from %v: %d after %d", self, r.from, r.seq, prev)
					return false
				}
				lastSeq[r.from] = int(r.seq)
			}
			if len(recs) != expect[self] {
				return false
			}
		}
		return total == nProcs*nThreads*msgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestChannelIsolationUnderLoss asserts the tentpole property of the
// channel layer: two channels with different error control share one lossy
// Mem transport, fault injection is aimed at the bulk channel only (data
// and acks alike), and the drops must never stall or reorder the video
// channel — its frames arrive complete and strictly in order while
// go-back-N is busy recovering the bulk stream.
func TestChannelIsolationUnderLoss(t *testing.T) {
	for _, seed := range []int64{1, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const (
				videoID ChannelID = 1
				bulkID  ChannelID = 2
				frames            = 25
				bulkN             = 20
			)
			mem := transport.NewMem()
			mem.SetDropRate(0.3, seed)
			mem.SetDropClass(func(m *transport.Message) bool { return m.Channel == bulkID })
			procs := realCluster(t, 2, mem, nil)
			procs[0].OnException(func(error) {}) // trailing-ack give-up after peer exit

			video0 := procs[0].Open(1, ChannelConfig{ID: videoID, Priority: 7})
			bulk0 := procs[0].Open(1, ChannelConfig{ID: bulkID, Error: NewGoBackN(4, 15*time.Millisecond)})
			video1 := procs[1].Open(0, ChannelConfig{ID: videoID, Priority: 7})
			bulk1 := procs[1].Open(0, ChannelConfig{ID: bulkID, Error: NewGoBackN(4, 15*time.Millisecond)})

			procs[0].TCreate("video", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < frames; k++ {
					video0.Send(th, 0, []byte{byte(k)})
				}
			})
			procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < bulkN; k++ {
					bulk0.Send(th, 1, []byte{byte(k)})
				}
			})
			var gotVideo, gotBulk []int
			procs[1].TCreate("viewer", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < frames; k++ {
					data, _ := video1.Recv(th, Any)
					gotVideo = append(gotVideo, int(data[0]))
				}
			})
			procs[1].TCreate("sink", mts.PrioDefault, func(th *Thread) {
				for k := 0; k < bulkN; k++ {
					data, _ := bulk1.Recv(th, Any)
					gotBulk = append(gotBulk, int(data[0]))
				}
			})
			runReal(procs)

			if mem.Dropped() == 0 {
				t.Fatal("fault injection never dropped anything — test proves nothing")
			}
			// Video: no error control, yet complete and in order, because
			// only bulk traffic was lossy and the channels are isolated.
			if len(gotVideo) != frames {
				t.Fatalf("video delivered %d of %d frames", len(gotVideo), frames)
			}
			for i, v := range gotVideo {
				if v != i {
					t.Fatalf("video reordered at %d: %v", i, gotVideo)
				}
			}
			// Bulk: go-back-N recovered every message in order.
			if len(gotBulk) != bulkN {
				t.Fatalf("bulk delivered %d of %d", len(gotBulk), bulkN)
			}
			for i, v := range gotBulk {
				if v != i {
					t.Fatalf("bulk reordered at %d: %v", i, gotBulk)
				}
			}
			if bulk0.Error().(*GoBackN).Retransmissions() == 0 {
				t.Fatal("bulk channel never retransmitted — loss did not exercise recovery")
			}
		})
	}
}

// syncedWindow builds a WindowFlow with a sync period short enough that a
// lost trailing credit heals within test timescales.
func syncedWindow(window int) *WindowFlow {
	w := NewWindowFlow(window)
	w.SyncInterval = 5 * time.Millisecond
	return w
}

// TestWindowRecoveryUnderCreditLoss is the credit-protocol chaos test: the
// fabric eats flow-control frames (and, in the second variant, every kind
// of frame), and the windowed channel must keep its full window — under
// the old per-delivery credit pulses each lost tagFlowAck permanently
// shrank the window until the sender deadlocked. Cumulative advertisements
// plus the periodic window-sync timer make the window self-healing.
func TestWindowRecoveryUnderCreditLoss(t *testing.T) {
	// Variant 1: only control frames are lossy (50%!), data rides clean —
	// window flow alone, no error-control tier to lean on. The run
	// completing at all proves recovery: with window 4 and ~30 dropped
	// credits, a non-idempotent credit scheme deadlocks almost instantly.
	t.Run("credit-only-loss", func(t *testing.T) {
		const window, n = 4, 60
		mem := transport.NewMem()
		mem.SetDropRate(0.5, 1995)
		mem.SetDropClass(func(m *transport.Message) bool { return m.Tag < 0 })
		procs := realCluster(t, 2, mem, nil)
		ch0 := procs[0].Open(1, ChannelConfig{ID: 1, Flow: syncedWindow(window)})
		ch1 := procs[1].Open(0, ChannelConfig{ID: 1, Flow: syncedWindow(window)})
		flow0 := ch0.Flow().(*WindowFlow)

		windowHealed := false
		procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
			for k := 0; k < n; k++ {
				ch0.Send(th, 0, []byte{byte(k)})
				if out := flow0.Outstanding(); out > window {
					t.Errorf("window violated: %d outstanding", out)
				}
			}
			th.Recv(Any, 1) // receiver's done marker (default channel, lossless)
			// The advert for the last delivery may well have been dropped;
			// the receiver's periodic sync must re-open the window fully.
			deadline := time.Now().Add(5 * time.Second)
			for flow0.Outstanding() != 0 && time.Now().Before(deadline) {
				th.Yield()
			}
			windowHealed = flow0.Outstanding() == 0
			th.Send(0, 1, nil) // release the receiver
		})
		var got int
		procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
			for k := 0; k < n; k++ {
				ch1.Recv(th, Any)
				got++
			}
			th.Send(0, 0, []byte("done"))
			th.Recv(Any, 0) // stay alive: the sync timer must keep advertising
		})
		runReal(procs)

		if got != n {
			t.Fatalf("delivered %d of %d", got, n)
		}
		if mem.Dropped() == 0 {
			t.Fatal("fault injection never dropped anything — test proves nothing")
		}
		if !windowHealed {
			t.Fatalf("window never fully re-opened: %d still outstanding", flow0.Outstanding())
		}
	})

	// Variant 2: the acceptance scenario — 20% of *all* frames die, data
	// and control alike, with go-back-N recovering the data tier and the
	// cumulative-credit protocol recovering the flow tier. Nothing is
	// special-cased or protected.
	t.Run("all-frames-20pct", func(t *testing.T) {
		const window, n = 4, 60
		mem := transport.NewMem()
		mem.SetDropRate(0.20, 42)
		procs := realCluster(t, 2, mem, nil)
		for _, p := range procs {
			p.OnException(func(error) {}) // trailing-ack give-up after peer exit
		}
		gbn := func() ErrorControl { return NewGoBackN(8, 10*time.Millisecond) }
		ch0 := procs[0].Open(1, ChannelConfig{ID: 2, Flow: syncedWindow(window), Error: gbn()})
		ch1 := procs[1].Open(0, ChannelConfig{ID: 2, Flow: syncedWindow(window), Error: gbn()})
		flow0 := ch0.Flow().(*WindowFlow)

		procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
			for k := 0; k < n; k++ {
				ch0.Send(th, 0, []byte{byte(k)})
				if out := flow0.Outstanding(); out > window {
					t.Errorf("window violated: %d outstanding", out)
				}
			}
		})
		var got []int
		procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
			for k := 0; k < n; k++ {
				data, _ := ch1.Recv(th, Any)
				got = append(got, int(data[0]))
			}
		})
		runReal(procs)

		if len(got) != n {
			t.Fatalf("delivered %d of %d", len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("reordered at %d: %v", i, got)
			}
		}
		if mem.Dropped() == 0 {
			t.Fatal("fault injection never dropped anything — test proves nothing")
		}
	})
}

// TestWindowSyncHealsLostFinalCredit pins the window-sync timer
// specifically: every per-delivery credit advertisement is destroyed while
// the sender runs its window dry, then the credit path is restored with
// *no further deliveries happening* — only the periodic re-advertisement
// of the cumulative count can re-open the window.
func TestWindowSyncHealsLostFinalCredit(t *testing.T) {
	const window, n = 2, 6
	var blockCredits atomic.Bool
	blockCredits.Store(true)
	mem := transport.NewMem()
	mem.SetDropRate(1.0, 1)
	mem.SetDropClass(func(m *transport.Message) bool { return m.Tag < 0 && blockCredits.Load() })
	procs := realCluster(t, 2, mem, nil)
	ch0 := procs[0].Open(1, ChannelConfig{ID: 1, Flow: syncedWindow(window)})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 1, Flow: syncedWindow(window)})
	recvFlow := ch1.Flow().(*WindowFlow)

	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			ch0.Send(th, 0, []byte{byte(k)}) // stalls at k==window until a sync lands
		}
	})
	var got int
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			ch1.Recv(th, Any)
			got++
			if got == window {
				// The sender is now stalled and every credit so far is
				// gone. Re-opening the credit path lets only the *timer*
				// heal it: no new delivery will generate an advert.
				blockCredits.Store(false)
			}
		}
	})
	runReal(procs)

	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	if recvFlow.Syncs() == 0 {
		t.Fatal("window re-opened without a periodic sync — the stall never happened or credits leaked")
	}
}

// TestPiggybackChaosBidirectional is the piggyback loss test: both ends of
// one windowed go-back-N channel stream data at each other over a fabric
// eating 20% of *all* frames, so piggybacked credits and acks routinely
// die with the data frame carrying them. Recovery must not depend on the
// ride: a lost piggybacked credit is superseded by a later advertisement
// (or the window-sync timer), a lost piggybacked ack by retransmission and
// re-ack. The run proves credit monotonicity and go-back-N recovery hold
// with the piggyback path fully engaged.
func TestPiggybackChaosBidirectional(t *testing.T) {
	for _, seed := range []int64{7, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const window, n = 4, 50
			mem := transport.NewMem()
			mem.SetDropRate(0.20, seed)
			procs := realCluster(t, 2, mem, nil)
			for _, p := range procs {
				p.OnException(func(error) {}) // trailing-ack give-up after peer exit
			}
			gbn := func() ErrorControl { return NewGoBackN(8, 10*time.Millisecond) }
			ch0 := procs[0].Open(1, ChannelConfig{ID: 3, Flow: syncedWindow(window), Error: gbn()})
			ch1 := procs[1].Open(0, ChannelConfig{ID: 3, Flow: syncedWindow(window), Error: gbn()})
			flows := []*WindowFlow{ch0.Flow().(*WindowFlow), ch1.Flow().(*WindowFlow)}

			got := make([][]int, 2)
			for i, cc := range []*Channel{ch0, ch1} {
				i, cc, flow := i, cc, flows[i]
				procs[i].TCreate("dual", mts.PrioDefault, func(th *Thread) {
					buf := make([]byte, 1)
					sent, rcvd := 0, 0
					for sent < n || rcvd < n {
						if sent < n {
							cc.Send(th, 0, []byte{byte(sent)})
							sent++
							if out := flow.Outstanding(); out < 0 || out > window {
								t.Errorf("end %d: window violated: %d outstanding", i, out)
							}
						}
						if rcvd < n {
							cc.RecvInto(th, buf, Any)
							got[i] = append(got[i], int(buf[0]))
							rcvd++
						}
					}
				})
			}
			runReal(procs)

			if mem.Dropped() == 0 {
				t.Fatal("fault injection never dropped anything — test proves nothing")
			}
			piggy := int64(0)
			for i, cc := range []*Channel{ch0, ch1} {
				s := cc.Stats()
				piggy += s.CtrlPiggybacked
				if len(got[i]) != n {
					t.Fatalf("end %d delivered %d of %d", i, len(got[i]), n)
				}
				for k, v := range got[i] {
					if v != k {
						t.Fatalf("end %d reordered at %d: %v", i, k, got[i])
					}
				}
				if cc.Error().(*GoBackN).Retransmissions() == 0 {
					t.Fatalf("end %d never retransmitted — loss did not exercise recovery", i)
				}
				// Credit monotonicity survived whatever the fabric ate.
				if out := flows[i].Outstanding(); out < 0 || out > window {
					t.Fatalf("end %d: %d outstanding at exit", i, out)
				}
			}
			if piggy == 0 {
				t.Fatal("no control ever piggybacked — bidirectional traffic should ride constantly")
			}
		})
	}
}

// TestRetransmitSurvivesSenderBufferReuse pins the error-control copy
// semantics: Send lets the caller reuse its buffer the moment the first
// transmission is serialized (the idiom every RecvInto/BcastInto loop
// relies on), so a retransmission must carry the bytes as they were at
// admission — not whatever the buffer holds by the time the timer fires.
// The first data frame is destroyed, the sender immediately overwrites
// its buffer with the second payload, and go-back-N's retransmission must
// still deliver the original first payload.
func TestRetransmitSurvivesSenderBufferReuse(t *testing.T) {
	var droppedOne atomic.Bool
	mem := transport.NewMem()
	mem.SetDropRate(1.0, 1)
	mem.SetDropClass(func(m *transport.Message) bool {
		// Exactly the first data frame dies.
		return m.Tag >= 0 && droppedOne.CompareAndSwap(false, true)
	})
	procs := realCluster(t, 2, mem, nil)
	gbn := func() ErrorControl { return NewGoBackN(4, 10*time.Millisecond) }
	ch0 := procs[0].Open(1, ChannelConfig{ID: 1, Error: gbn()})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 1, Error: gbn()})

	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		buf := []byte{1}
		ch0.Send(th, 0, buf)
		buf[0] = 2 // legal: the transfer was serialized before Send returned
		ch0.Send(th, 0, buf)
	})
	var got []byte
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < 2; k++ {
			data, _ := ch1.Recv(th, Any)
			got = append(got, data[0])
		}
	})
	runReal(procs)

	if !droppedOne.Load() || mem.Dropped() == 0 {
		t.Fatal("fault injection never dropped the first frame — test proves nothing")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivered %v, want [1 2] — retransmission leaked the reused buffer", got)
	}
}

// TestCreditsNeverMoveBackwards is the cumulative-credit property test:
// for arbitrary interleavings of duplicated, reordered, and stale
// advertisements (including counter wrap-around), the sender's credited
// count is monotone in serial-number order, the window invariant holds,
// and the newest advertisement always heals the window completely.
func TestCreditsNeverMoveBackwards(t *testing.T) {
	f := func(seed int64, windowRaw uint8, start uint32, opsRaw uint8) bool {
		window := int(windowRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		w := NewWindowFlow(window)
		w.sent, w.credited = start, start
		delivered := start
		var adverts []uint32
		ops := int(opsRaw) + 20
		for i := 0; i < ops; i++ {
			if w.outstanding() < window && rng.Intn(2) == 0 {
				w.sent++    // sender admits a message
				delivered++ // ...and the peer eventually delivers it
				adverts = append(adverts, delivered)
			}
			if len(adverts) > 0 {
				// Replay a random advert: possibly stale, possibly a dup.
				prev := w.credited
				adv := adverts[rng.Intn(len(adverts))]
				w.onControl(&transport.Message{Data: wire.AppendUint32(nil, adv)})
				if wire.SeqNewer(prev, w.credited) {
					return false // credits moved backwards
				}
				if out := w.outstanding(); out < 0 || out > window {
					return false // window invariant broken
				}
			}
		}
		// The newest advertisement supersedes every lost or stale one.
		w.onControl(&transport.Message{Data: wire.AppendUint32(nil, delivered)})
		return w.credited == delivered && w.outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
