package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mts"
)

// TestQuickChaosTraffic drives random all-to-all traffic through simulated
// clusters and checks conservation (every message sent is received exactly
// once), addressing (only by the addressed thread), and per-sender-pair
// FIFO order — for arbitrary seeds, process counts, and thread counts.
func TestQuickChaosTraffic(t *testing.T) {
	f := func(seed int64, pRaw, tRaw, mRaw uint8) bool {
		nProcs := int(pRaw%3) + 2   // 2..4 processes
		nThreads := int(tRaw%2) + 1 // 1..2 threads each
		msgs := int(mRaw%8) + 4     // 4..11 messages per thread
		rng := rand.New(rand.NewSource(seed))

		// Plan the traffic up front so receivers know what to expect.
		type slot struct{ proc, thread int }
		plan := make(map[slot][]slot) // sender -> ordered destinations
		expect := make(map[slot]int)  // receiver -> inbound count
		for p := 0; p < nProcs; p++ {
			for th := 0; th < nThreads; th++ {
				src := slot{p, th}
				for m := 0; m < msgs; m++ {
					dp := rng.Intn(nProcs)
					if dp == p {
						dp = (dp + 1) % nProcs
					}
					dst := slot{dp, rng.Intn(nThreads)}
					plan[src] = append(plan[src], dst)
					expect[dst]++
				}
			}
		}

		eng, procs := simCluster(t, nProcs, nil)
		type recvRec struct {
			from Addr
			seq  byte
		}
		received := make(map[slot][]recvRec)
		for p := 0; p < nProcs; p++ {
			for th := 0; th < nThreads; th++ {
				self := slot{p, th}
				procs[p].TCreate(fmt.Sprintf("w%d.%d", p, th), mts.PrioDefault, func(tt *Thread) {
					// Interleave sends and receives; finish both quotas.
					dests := plan[self]
					want := expect[self]
					sent := 0
					got := 0
					for sent < len(dests) || got < want {
						if sent < len(dests) {
							d := dests[sent]
							tt.Send(d.thread, ProcID(d.proc), []byte{byte(sent)})
							sent++
						}
						if got < want {
							if data, from, ok := tt.TryRecv(Any, Any); ok {
								received[self] = append(received[self], recvRec{from, data[0]})
								got++
								continue
							}
							if sent == len(dests) {
								data, from := tt.Recv(Any, Any)
								received[self] = append(received[self], recvRec{from, data[0]})
								got++
							}
						}
					}
				})
			}
		}
		eng.SetMaxTime(time.Hour)
		eng.Run()

		// Conservation + per-pair FIFO.
		total := 0
		for self, recs := range received {
			total += len(recs)
			lastSeq := map[Addr]int{}
			for _, r := range recs {
				if prev, ok := lastSeq[r.from]; ok && int(r.seq) <= prev {
					t.Logf("FIFO broken at %v from %v: %d after %d", self, r.from, r.seq, prev)
					return false
				}
				lastSeq[r.from] = int(r.seq)
			}
			if len(recs) != expect[self] {
				return false
			}
		}
		return total == nProcs*nThreads*msgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
