package core

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// ErrorControl is the pluggable error-control discipline (the paper's error
// control thread, selected by NCS_init's second argument). Approach 1 needs
// none — p4/TCP is reliable — so NoErrorControl is the default; GoBackN
// provides reliability over lossy transports (the Mem transport's fault
// injection, or a raw ATM VC without SSCOP).
//
// Like FlowControl, admission is non-blocking: a full retransmission window
// defers the request instead of parking the send system thread, which must
// stay free to carry retransmissions and acknowledgements.
type ErrorControl interface {
	// Name identifies the discipline.
	Name() string
	init(p *Proc)
	// admit either stamps and buffers m for transmission (true) or takes
	// ownership of the request for deferred re-enqueue (false).
	admit(req *sendReq) bool
	// onData inspects an arriving data message; it returns false to
	// suppress delivery (duplicate or out-of-order under go-back-N).
	onData(m *transport.Message) bool
	// onControl consumes this discipline's control messages (acks).
	onControl(m *transport.Message)
	// pending reports in-flight messages still awaiting acknowledgement;
	// the process's system threads stay alive while it is non-zero.
	pending() int
	shutdown()
}

// NoErrorControl trusts the transport.
type NoErrorControl struct{}

// Name implements ErrorControl.
func (NoErrorControl) Name() string                   { return "none" }
func (NoErrorControl) init(*Proc)                     {}
func (NoErrorControl) admit(*sendReq) bool            { return true }
func (NoErrorControl) onData(*transport.Message) bool { return true }
func (NoErrorControl) onControl(*transport.Message)   {}
func (NoErrorControl) pending() int                   { return 0 }
func (NoErrorControl) shutdown()                      {}

// gbnPeer is per-remote-process go-back-N state.
type gbnPeer struct {
	// Sender side.
	nextSeq  uint32               // next ESeq to assign
	base     uint32               // oldest unacked
	unacked  []*transport.Message // in-flight copies, base..nextSeq-1
	deferred []*sendReq           // admission-deferred requests
	timerOn  bool
	// stall counts timer firings without base progress; MaxRetries bounds
	// it so a dead peer cannot keep the process alive forever.
	stall int

	// Receiver side.
	expected uint32
}

// GoBackN is sliding-window ARQ with cumulative acks and a retransmission
// timer, per destination process. ESeq numbers start at 1; an ack carries
// the highest in-order sequence received.
type GoBackN struct {
	// Window bounds in-flight messages per destination.
	Window int
	// Timeout is the retransmission timer.
	Timeout time.Duration
	// MaxRetries bounds consecutive timer firings without window progress
	// toward one destination; past it the stuck window is abandoned
	// (best-effort delivery to a dead peer). Defaults to 25.
	MaxRetries int

	p         *Proc
	peers     map[ProcID]*gbnPeer
	retrans   int64
	abandoned int64
}

// NewGoBackN returns a go-back-N discipline.
func NewGoBackN(window int, timeout time.Duration) *GoBackN {
	if window < 1 || timeout <= 0 {
		panic("core: go-back-N needs window >= 1 and positive timeout")
	}
	return &GoBackN{Window: window, Timeout: timeout, MaxRetries: 25}
}

// Name implements ErrorControl.
func (g *GoBackN) Name() string { return "go-back-n" }

// Retransmissions returns how many copies were re-sent; for tests and
// experiment reporting.
func (g *GoBackN) Retransmissions() int64 { return g.retrans }

// Abandoned returns how many messages were given up on (dead peer).
func (g *GoBackN) Abandoned() int64 { return g.abandoned }

func (g *GoBackN) init(p *Proc) {
	g.p = p
	g.peers = make(map[ProcID]*gbnPeer)
}

func (g *GoBackN) peer(id ProcID) *gbnPeer {
	pe := g.peers[id]
	if pe == nil {
		pe = &gbnPeer{nextSeq: 1, base: 1, expected: 1}
		g.peers[id] = pe
	}
	return pe
}

func (g *GoBackN) admit(req *sendReq) bool {
	pe := g.peer(req.m.To)
	if pe.nextSeq-pe.base >= uint32(g.Window) {
		pe.deferred = append(pe.deferred, req)
		return false
	}
	req.m.ESeq = pe.nextSeq
	pe.nextSeq++
	// Buffer a private copy for retransmission: the transport may mutate
	// Seq, and the application owns Data until delivery.
	cp := *req.m
	pe.unacked = append(pe.unacked, &cp)
	g.armTimer(req.m.To, pe)
	return true
}

func (g *GoBackN) armTimer(dst ProcID, pe *gbnPeer) {
	if pe.timerOn {
		return
	}
	pe.timerOn = true
	g.p.cfg.After(g.Timeout, func() { g.timerFire(dst) })
}

func (g *GoBackN) timerFire(dst ProcID) {
	pe := g.peers[dst]
	if pe == nil {
		return
	}
	pe.timerOn = false
	if len(pe.unacked) == 0 {
		return
	}
	pe.stall++
	if pe.stall > g.MaxRetries {
		// The peer looks dead: abandon the window so the process can
		// terminate instead of retransmitting forever. Deferred requests
		// flow out best-effort through the now-open window.
		g.abandoned += int64(len(pe.unacked))
		pe.base = pe.nextSeq
		pe.unacked = nil
		g.releaseDeferred(pe)
		g.p.exception(fmt.Errorf("go-back-N: gave up on %d messages to proc %d", g.abandoned, dst))
		g.p.checkShutdownWake()
		return
	}
	// Go-back-N: re-queue every unacked message through the send thread,
	// bypassing admission so the original sequence numbers are preserved.
	for _, m := range pe.unacked {
		cp := *m
		g.retrans++
		req := g.p.getReq()
		req.m = &cp
		req.raw = true
		g.p.enqueueSend(req)
	}
	g.armTimer(dst, pe)
}

func (g *GoBackN) onData(m *transport.Message) bool {
	if m.ESeq == 0 {
		// Peer not running error control (mixed configuration): accept.
		return true
	}
	pe := g.peer(m.From)
	switch {
	case m.ESeq == pe.expected:
		pe.expected++
		g.sendAck(m.From, pe.expected-1)
		return true
	case m.ESeq < pe.expected:
		// Duplicate: re-ack so the sender's window slides.
		g.sendAck(m.From, pe.expected-1)
		return false
	default:
		// Gap: discard and re-ack the last in-order sequence.
		g.sendAck(m.From, pe.expected-1)
		return false
	}
}

func (g *GoBackN) sendAck(to ProcID, upTo uint32) {
	g.p.enqueueControl(&transport.Message{
		From: g.p.cfg.ID,
		To:   to,
		Tag:  tagGBNAck,
		Data: putUint32(upTo),
	})
}

func (g *GoBackN) onControl(m *transport.Message) {
	pe := g.peer(m.From)
	acked := getUint32(m.Data)
	progressed := false
	for len(pe.unacked) > 0 && pe.unacked[0].ESeq <= acked {
		pe.unacked = pe.unacked[1:]
		pe.base++
		progressed = true
	}
	if progressed {
		pe.stall = 0
		g.releaseDeferred(pe)
		g.p.checkShutdownWake()
	}
}

// releaseDeferred re-enqueues admission-deferred requests while window
// space is available.
func (g *GoBackN) releaseDeferred(pe *gbnPeer) {
	for len(pe.deferred) > 0 && pe.nextSeq-pe.base < uint32(g.Window) {
		req := pe.deferred[0]
		pe.deferred = pe.deferred[1:]
		g.p.enqueueSend(req)
	}
}

func (g *GoBackN) pending() int {
	total := 0
	for _, pe := range g.peers {
		total += len(pe.unacked)
	}
	return total
}

func (g *GoBackN) shutdown() {}
