package core

import (
	"fmt"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrorControl is the pluggable error-control discipline (the paper's error
// control thread, selected by NCS_init's second argument). Approach 1 needs
// none — p4/TCP is reliable — so NoErrorControl is the default; GoBackN
// provides reliability over lossy transports (the Mem transport's fault
// injection, or a raw ATM VC without SSCOP). Like FlowControl, one
// instance serves one Channel: sequence numbers, windows, and timers are
// per-channel state, so loss on a bulk channel never stalls or reorders a
// stream channel sharing the process pair.
//
// Admission is non-blocking: a full retransmission window defers the
// request instead of parking the send system thread, which must stay free
// to carry retransmissions and acknowledgements.
type ErrorControl interface {
	// Name identifies the discipline.
	Name() string
	// fork returns a fresh, unbound instance with the same parameters.
	fork() ErrorControl
	init(c *Channel)
	// admit either stamps and buffers m for transmission (true) or takes
	// ownership of the request for deferred re-enqueue (false).
	admit(req *sendReq) bool
	// onData inspects an arriving data message; it returns false to
	// suppress delivery (duplicate or out-of-order under go-back-N).
	onData(m *transport.Message) bool
	// onControl consumes this discipline's control messages (acks).
	onControl(m *transport.Message)
	// onAck consumes one acknowledgement word, whether it arrived in a
	// standalone control frame (onControl routes each payload word here)
	// or piggybacked on a reverse-direction data frame. Its meaning is
	// discipline-defined: cumulative under go-back-N, selective under
	// selective repeat.
	onAck(v uint32)
	// pending reports in-flight messages still awaiting acknowledgement;
	// the process's system threads stay alive while it is non-zero.
	pending() int
	// queued reports admission-deferred requests the discipline is holding
	// — data that will re-emerge, which the flush wheel treats as an
	// imminent piggyback ride.
	queued() int
	// sequenced reports whether the discipline stamps and checks sequence
	// numbers on data. The hot-lane rebalancer migrates only sequenced
	// channels: a frame racing the lane handoff may be re-ordered, which a
	// sequenced receiver repairs (duplicate/gap handling) but an
	// unsequenced one would deliver out of order.
	sequenced() bool
	// shutdown fails admission-deferred requests (their callers unblock)
	// but leaves the in-flight window draining: already-admitted data
	// still flushes, timers and all. Idempotent.
	shutdown()
	// abandon drops the in-flight window without retransmission: the peer
	// is dead, so nothing unacked will ever be acknowledged and retrying
	// only burns timers. Deferred requests are left for shutdown to fail.
	// Idempotent.
	abandon()
}

// NoErrorControl trusts the transport.
type NoErrorControl struct{}

// Name implements ErrorControl.
func (NoErrorControl) Name() string                   { return "none" }
func (NoErrorControl) fork() ErrorControl             { return NoErrorControl{} }
func (NoErrorControl) init(*Channel)                  {}
func (NoErrorControl) admit(*sendReq) bool            { return true }
func (NoErrorControl) onData(*transport.Message) bool { return true }
func (NoErrorControl) onControl(*transport.Message)   {}
func (NoErrorControl) onAck(uint32)                   {}
func (NoErrorControl) pending() int                   { return 0 }
func (NoErrorControl) queued() int                    { return 0 }
func (NoErrorControl) sequenced() bool                { return false }
func (NoErrorControl) shutdown()                      {}
func (NoErrorControl) abandon()                       {}

// GoBackN is sliding-window ARQ with cumulative acks and a retransmission
// timer, per channel. ESeq numbers start at 1; an ack carries the highest
// in-order sequence received.
type GoBackN struct {
	// Window bounds in-flight messages on the channel.
	Window int
	// Timeout is the retransmission timer.
	Timeout time.Duration
	// MaxRetries bounds consecutive timer firings without window progress;
	// past it the stuck window is abandoned (best-effort delivery to a
	// dead peer). Defaults to 25.
	MaxRetries int

	p  *Proc
	ch *Channel

	// Sender side.
	nextSeq  uint32               // next ESeq to assign
	base     uint32               // oldest unacked
	unacked  []*transport.Message // in-flight copies, base..nextSeq-1
	deferred []*sendReq           // admission-deferred requests
	timerOn  bool
	// stall counts timer firings without base progress; MaxRetries bounds
	// it so a dead peer cannot keep the process alive forever.
	stall int

	// Receiver side.
	expected uint32

	// fireFn is the pre-bound (and, on sharded channels, lane-wrapped)
	// timer callback, so each re-arm schedules without a fresh closure.
	fireFn func()

	retrans   int64
	abandoned int64
}

// NewGoBackN returns a go-back-N discipline.
func NewGoBackN(window int, timeout time.Duration) *GoBackN {
	if window < 1 || timeout <= 0 {
		panic("core: go-back-N needs window >= 1 and positive timeout")
	}
	return &GoBackN{Window: window, Timeout: timeout, MaxRetries: 25}
}

// Name implements ErrorControl.
func (g *GoBackN) Name() string { return "go-back-n" }

func (g *GoBackN) fork() ErrorControl {
	f := NewGoBackN(g.Window, g.Timeout)
	f.MaxRetries = g.MaxRetries
	return f
}

// Retransmissions returns how many copies were re-sent; for tests and
// experiment reporting.
func (g *GoBackN) Retransmissions() int64 {
	g.ch.laneLock()
	defer g.ch.laneUnlock()
	return g.retrans
}

// Abandoned returns how many messages were given up on (dead peer).
func (g *GoBackN) Abandoned() int64 {
	g.ch.laneLock()
	defer g.ch.laneUnlock()
	return g.abandoned
}

func (g *GoBackN) init(c *Channel) {
	if g.ch != nil {
		panic("core: ErrorControl instance bound to two channels; pass a fresh instance per channel")
	}
	g.ch = c
	g.p = c.p
	g.nextSeq = 1
	g.base = 1
	g.expected = 1
	g.fireFn = c.wrapTimer(g.timerFire)
}

func (g *GoBackN) admit(req *sendReq) bool {
	if g.nextSeq-g.base >= uint32(g.Window) {
		g.deferred = append(g.deferred, req)
		return false
	}
	req.m.ESeq = g.nextSeq
	g.nextSeq++
	// Buffer a private copy for retransmission. The payload bytes are
	// copied too: Send's contract lets the caller reuse its buffer the
	// moment the first transmission is serialized, and collective hot
	// paths (BcastInto, Gather's pack buffer) do exactly that — an aliased
	// retransmission would carry the *next* operation's bytes under the
	// old sequence number. The copy is the price of reliability on this
	// channel; channels without error control pay nothing.
	cp := *req.m
	cp.Data = append([]byte(nil), req.m.Data...)
	g.unacked = append(g.unacked, &cp)
	g.armTimer()
	return true
}

func (g *GoBackN) armTimer() {
	if g.timerOn {
		return
	}
	g.timerOn = true
	g.p.cfg.After(g.Timeout, g.fireFn)
}

func (g *GoBackN) timerFire() {
	g.timerOn = false
	if len(g.unacked) == 0 {
		return
	}
	g.stall++
	if g.stall > g.MaxRetries {
		// The peer looks dead: abandon the window so the process can
		// terminate instead of retransmitting forever. Deferred requests
		// flow out best-effort through the now-open window.
		gaveUp := len(g.unacked)
		g.abandoned += int64(gaveUp)
		g.base = g.nextSeq
		g.unacked = nil
		g.releaseDeferred()
		g.ch.raise(fmt.Errorf("go-back-N: gave up on %d messages to proc %d (channel %d)", gaveUp, g.ch.peer, g.ch.id))
		g.p.checkShutdownWake()
		return
	}
	// Go-back-N: re-queue every unacked message through the send thread,
	// bypassing admission so the original sequence numbers are preserved.
	for _, m := range g.unacked {
		cp := *m
		g.retrans++
		req := g.p.getReq()
		req.m = &cp
		req.ch = g.ch
		req.raw = true
		g.p.enqueueSend(req)
	}
	g.armTimer()
}

func (g *GoBackN) onData(m *transport.Message) bool {
	if m.ESeq == 0 {
		// Peer not running error control (mixed configuration): accept.
		return true
	}
	switch {
	case m.ESeq == g.expected:
		g.expected++
		g.sendAck(g.expected - 1)
		return true
	case wire.SeqNewer(g.expected, m.ESeq):
		// Duplicate: re-ack so the sender's window slides. The frame will
		// never be read, so its pooled buffer recycles here.
		g.sendAck(g.expected - 1)
		m.Release()
		return false
	default:
		// Gap: discard and re-ack the last in-order sequence.
		g.sendAck(g.expected - 1)
		m.Release()
		return false
	}
}

// sendAck queues the cumulative ack for piggybacking on reverse data (or
// the channel's flush timer): being cumulative, a newer value simply
// supersedes a queued one, so a burst of arrivals costs one ack frame.
func (g *GoBackN) sendAck(upTo uint32) {
	g.ch.queueAck(upTo, true)
}

func (g *GoBackN) onControl(m *transport.Message) {
	forEachCtrlWord(m, g.onAck)
}

// onAck slides the window up to a cumulative ack, standalone or
// piggybacked. Comparisons are wrap-safe (wire.SeqNewer), like the flow
// tier's credit advertisements.
func (g *GoBackN) onAck(acked uint32) {
	progressed := false
	for len(g.unacked) > 0 && !wire.SeqNewer(g.unacked[0].ESeq, acked) {
		g.unacked = g.unacked[1:]
		g.base++
		progressed = true
	}
	if progressed {
		g.stall = 0
		g.releaseDeferred()
		g.p.checkShutdownWake()
	}
}

// releaseDeferred re-enqueues admission-deferred requests while window
// space is available.
func (g *GoBackN) releaseDeferred() {
	for len(g.deferred) > 0 && g.nextSeq-g.base < uint32(g.Window) {
		req := g.deferred[0]
		g.deferred = g.deferred[1:]
		g.p.enqueueSend(req)
	}
}

func (g *GoBackN) pending() int    { return len(g.unacked) }
func (g *GoBackN) queued() int     { return len(g.deferred) }
func (g *GoBackN) sequenced() bool { return true }

// shutdown fails deferred requests so a Send gated on window space cannot
// hang across Channel.Close. The unacked window keeps retransmitting —
// admitted data still flushes (pending() holds the system threads alive),
// bounded by MaxRetries if the peer is gone.
func (g *GoBackN) shutdown() {
	reqs := g.deferred
	g.deferred = nil
	g.p.failGated(g.ch, reqs, "go-back-N")
}

// abandon drops the unacked window: the peer is dead, retransmitting is
// futile. A pending timer self-cancels on fire (empty window re-arms
// nothing).
func (g *GoBackN) abandon() {
	g.abandoned += int64(len(g.unacked))
	g.base = g.nextSeq
	g.unacked = nil
}
