package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/list"
	"repro/internal/mts"
	"repro/internal/ring"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the sharded multi-core hot path: the per-proc send and
// receive system threads of the paper's Figure 8 split into independent
// *lanes*, each owning its own priority queues, freelists, wakeup, and
// engine goroutine. A channel is pinned to exactly one lane for its
// lifetime (default: hash of the peer, overridable via ChannelConfig.Lane),
// so strict priority and per-channel FIFO ordering are preserved within a
// channel while independent channels run on separate cores.
//
// Execution domains. Classic NCS has one domain — the mts scheduler, where
// exactly one thread runs at a time. Sharded NCS adds one domain per lane:
//
//   - Lane domain: everything a channel owns (discipline state, piggyback
//     words, counters' non-atomic neighbors, the lane's queues and
//     freelists) is guarded by lane.mu. Senders enter it inline (lane.send
//     locks, enqueues, services, unlocks — no system-thread hop at all);
//     arriving frames enter through a multi-producer ring drained by the
//     lane engine goroutine; timers enter through Channel.wrapTimer.
//   - Scheduler domain: thread wakeups, receive matching (waiters/store),
//     barrier state, and exception handlers stay where they always were.
//     Lane code never calls them directly — it appends to the lane's
//     out-queues (wake/fans/deliver/errs) and schedules a drain via
//     Runtime.PostAsync, which runs between dispatches.
//
// Lock order: Proc.chanMu (channel table) before lane.mu, never the
// reverse. Lane engines never block while holding lane.mu (PostAsync and
// ring pushes are non-blocking by construction), so a scheduler-domain
// thread waiting on lane.mu always makes progress.
//
// Lane count defaults to min(GOMAXPROCS, 4); a single lane keeps the
// classic two-system-thread path byte for byte (New only builds lanes when
// the resolved count exceeds one), which is the paper-faithful baseline the
// benches A/B against.

// rxItem is one arriving message routed to a lane: the decoded frame plus
// its channel, resolved in the *sender's* goroutine so the engine never
// touches the channel table. cc/ca name the channels a cross-channel
// piggybacked credit/ack word belongs to when that differs from the
// frame's own channel (lane-aware coalescing); fn, when set, is an
// engine-posted function (hot-lane rebalancing) the engine runs outside
// its lock after the batch it arrived in.
type rxItem struct {
	m      *transport.Message
	c      *Channel // nil for barrier control and unknown-channel traffic
	cc, ca *Channel // cross-channel credit / ack targets (usually nil)
	fn     func()   // engine-posted work (migration); m and c are nil
}

// lane is one send/recv engine shard.
type lane struct {
	p   *Proc
	idx int

	// rx is the MPSC hand-off ring: transports (any goroutine) push, the
	// engine drains.
	rx *ring.MPSC[rxItem]

	// mu guards everything below it, plus all state of every channel
	// pinned to this lane (discipline windows, piggyback words, flush
	// flags).
	mu sync.Mutex

	// pending is the lane's send scheduler — control strictly first, then
	// deficit round robin across the lane's data channels (see drr.go);
	// rxq is its receive priority queue (the classic rxIn).
	pending laneSched
	rxq     prioQueue[rxItem]

	// chans lists every channel currently served by this lane (membership
	// moves with the rebalancer, under both lane locks).
	chans []*Channel

	// pendCtrl indexes this lane's channels with pending reverse-direction
	// control by peer, so a departing data frame can pick a sibling
	// channel's credit/ack up (cross-channel coalescing). mustFlush queues
	// forced advertisements (window-threshold credits) for the end of the
	// current service pass: a data frame queued in the same pass carries
	// them for free, anything still pending then goes standalone.
	pendCtrl  map[ProcID][]*Channel
	mustFlush []*Channel

	// flushQ is the lane's flush wheel: channels whose piggyback window is
	// running, in deadline order (the delay is constant), covered by one
	// armed timer (wheelOn) for the head deadline.
	flushQ  list.FIFO[*Channel]
	wheelOn bool
	wheelFn func()

	// Adaptive-scheduler counters (under mu; LaneStats snapshots them).
	ctrlPiggyL      int64
	ctrlStandaloneL int64
	ctrlCoalescedL  int64
	migratedIn      int64
	migratedOut     int64
	steals          int64

	// Load tracking for the hot-lane rebalancer: loadAcc accumulates
	// enqueued bytes since the last rebalance tick (atomic — senders add
	// before taking the lane lock), ewma is the tick-smoothed load the
	// rebalancer compares lanes by.
	loadAcc atomic.Int64
	ewma    atomic.Int64

	// fnScratch batches engine-posted functions out of a drained ring
	// batch (engine goroutine only).
	fnScratch []func()

	// Per-lane freelists: the classic proc-level pools, sharded so lanes
	// never contend on recycling.
	reqFree  []*sendReq
	ctrlFree []*transport.Message
	dataFree []*transport.Message

	// Burst scratch, as in the classic send loop.
	sendRun   []*sendReq
	batchMsgs []*transport.Message
	rxScratch []rxItem

	// Out-queues: work that must complete in the scheduler domain.
	// Appended under mu, swapped out by runDrain. drainPosted collapses
	// redundant PostAsync calls into one pending drain.
	wake        []*mts.Thread
	fans        []*Thread
	deliver     []*transport.Message
	errs        []error
	drainPosted bool

	// Spare swap buffers (scheduler-domain only, see runDrain).
	spareWake    []*mts.Thread
	spareFans    []*Thread
	spareDeliver []*transport.Message
	spareErrs    []error

	drainFn   func()
	traceName string

	// Virtual-mode driver state (nil vd in real mode, where ring.Push wakes
	// the engine goroutine directly): stepArmed collapses redundant kicks
	// into one pending step event on the shared clock.
	vd        *virtualDriver
	stepFn    func()
	stepArmed atomic.Bool
}

// ---------------------------------------------------------------------------
// Engine drivers
//
// engineDriver is the seam between a lane's protocol logic and its execution
// vehicle. Real mode (the default) runs each lane engine as a goroutine that
// sleeps on its MPSC ring; virtual mode runs the same engine body as event
// callbacks scheduled on the discrete-event loop's vclock heap, so a whole
// mesh of procs shares one deterministic clock. The per-lane kick() is the
// hot-path half of the seam: producers call it after every ring push, and it
// compiles down to a single nil check in real mode.

type engineDriver interface {
	// start launches (real) or wires (virtual) one lane's engine.
	start(ln *lane)
	// stop tears the engines down at shutdown; runs in the scheduler domain.
	stop(p *Proc)
}

// goroutineDriver is today's behavior: one engine goroutine per lane,
// woken by ring pushes, stopped through laneStop.
type goroutineDriver struct{}

func (goroutineDriver) start(ln *lane) {
	ln.p.laneWG.Add(1)
	go ln.engine()
}

func (goroutineDriver) stop(p *Proc) {
	close(p.laneStop)
	p.laneWG.Wait()
}

// virtualDriver runs lane engines as events on the injected Clock: a kick
// schedules one zero-delay step on the vclock heap, and the step body runs
// in the simulation engine's single goroutine. No lane goroutines exist, so
// every lane mutex is uncontended and execution order is fully determined
// by the event queue's (time, seq) order — the determinism contract of
// core.NewVirtualMesh.
type virtualDriver struct {
	after func(d time.Duration, fn func())
}

func (d *virtualDriver) start(ln *lane) {
	ln.vd = d
	ln.stepFn = ln.step
}

func (d *virtualDriver) stop(p *Proc) {
	// Nothing to join: no goroutines were started, and a stale armed step
	// firing after shutdown finds empty queues and does nothing.
}

// kick notifies the lane's driver that work entered the rx ring. Real mode
// needs nothing — ring.Push already wakes the sleeping engine goroutine —
// so this is one predictable branch on the hot path.
func (ln *lane) kick() {
	if ln.vd != nil && ln.stepArmed.CompareAndSwap(false, true) {
		ln.vd.after(0, ln.stepFn)
	}
}

// ---------------------------------------------------------------------------
// Lane-local freelists (mirrors of the proc-level ones in core.go; callers
// hold ln.mu).

func (ln *lane) getReq() *sendReq {
	if n := len(ln.reqFree); n > 0 {
		req := ln.reqFree[n-1]
		ln.reqFree = ln.reqFree[:n-1]
		return req
	}
	return &sendReq{}
}

func (ln *lane) putReq(req *sendReq) {
	*req = sendReq{}
	ln.reqFree = append(ln.reqFree, req)
}

func (ln *lane) getCtrlMsg() *transport.Message {
	if n := len(ln.ctrlFree); n > 0 {
		m := ln.ctrlFree[n-1]
		ln.ctrlFree = ln.ctrlFree[:n-1]
		return m
	}
	return &transport.Message{Data: make([]byte, 0, 8)}
}

func (ln *lane) putCtrlMsg(m *transport.Message) {
	data := m.Data[:0]
	*m = transport.Message{Data: data}
	ln.ctrlFree = append(ln.ctrlFree, m)
}

func (ln *lane) getDataMsg() *transport.Message {
	if n := len(ln.dataFree); n > 0 {
		m := ln.dataFree[n-1]
		ln.dataFree = ln.dataFree[:n-1]
		return m
	}
	return &transport.Message{}
}

func (ln *lane) putDataMsg(m *transport.Message) {
	*m = transport.Message{}
	ln.dataFree = append(ln.dataFree, m)
}

// ---------------------------------------------------------------------------
// Proc-side setup

// sharded reports whether the proc runs the multi-lane hot path.
func (p *Proc) sharded() bool { return len(p.lanes) > 0 }

// Lanes returns the number of active send/recv lanes (1 in the classic
// two-system-thread configuration).
func (p *Proc) Lanes() int {
	if len(p.lanes) == 0 {
		return 1
	}
	return len(p.lanes)
}

// laneIndex picks the lane for a channel: an explicit ChannelConfig.Lane
// pins it (1-based, wrapped), otherwise Config.LaneHash (when set) or the
// peer hash spreads channels so traffic to different peers lands on
// different lanes.
func (p *Proc) laneIndex(peer ProcID, hint int) int {
	if hint > 0 {
		return (hint - 1) % len(p.lanes)
	}
	if p.cfg.LaneHash != nil {
		i := p.cfg.LaneHash(peer) % len(p.lanes)
		if i < 0 {
			i += len(p.lanes)
		}
		return i
	}
	return int(uint32(peer)) % len(p.lanes)
}

// initLanes builds the lane engines; called from New when the resolved lane
// count exceeds one and the endpoint can deliver raw frames.
func (p *Proc) initLanes(n int, fc transport.FrameCarrier) {
	p.laneBS, _ = p.cfg.Endpoint.(transport.BatchSender)
	p.laneStop = make(chan struct{})
	p.lanes = make([]*lane, n)
	for i := range p.lanes {
		ln := &lane{p: p, idx: i, rx: ring.New[rxItem]()}
		ln.drainFn = ln.runDrain
		ln.wheelFn = ln.wheelFire
		ln.pendCtrl = make(map[ProcID][]*Channel)
		if p.cfg.Tracer != nil {
			ln.traceName = fmt.Sprintf("%s/lane%d", p.cfg.TraceName, i)
		}
		p.lanes[i] = ln
	}
	p.shutdownFn = func() {
		if p.mayShutdownSharded() {
			p.wakeIfIdle(p.laneThread, "lanes idle")
		}
	}
	fc.SetFrameHandler(p.routeFrame)
	p.laneThread = p.cfg.RT.Create(fmt.Sprintf("ncs%d-lanes", p.cfg.ID), mts.PrioSystem, p.laneLoop)
	if p.cfg.VirtualTime {
		p.laneDriver = &virtualDriver{after: p.cfg.After}
	} else {
		p.laneDriver = goroutineDriver{}
	}
	for _, ln := range p.lanes {
		p.laneDriver.start(ln)
	}
}

// routeFrame is the transport's frame handler: it decodes the frame and
// resolves its channel — and the channels of any cross-channel
// piggybacked control words — in the *calling* goroutine (a peer's lane
// engine or scheduler thread), then hands the message to the owning
// lane's ring. The engine itself therefore never takes the channel-table
// lock. A channel may migrate between the load and the push; the stale
// lane's processLocked re-routes such items to the current owner.
func (p *Proc) routeFrame(fb *wire.Buf) {
	m, err := wire.UnmarshalPooled(fb)
	if err != nil {
		panic("core: self-produced message failed to decode: " + err.Error())
	}
	var c, cc, ca *Channel
	if m.Tag != tagBarrier && m.Tag != tagBarrierRel && !isSigTag(m.Tag) {
		c, _ = p.lookupChannel(m.From, m.Channel)
		if m.HasCredit && m.CreditChan != m.Channel {
			cc, _ = p.lookupChannel(m.From, m.CreditChan)
		}
		if m.HasAck && m.AckChan != m.Channel {
			ca, _ = p.lookupChannel(m.From, m.AckChan)
		}
	}
	ln := p.lanes[p.laneIndex(m.From, 0)]
	if c != nil {
		ln = c.lnp.Load()
	}
	p.statRingPush.Add(1)
	ln.rx.Push(rxItem{m: m, c: c, cc: cc, ca: ca})
	ln.kick()
}

// ---------------------------------------------------------------------------
// Engine

// engine is the lane's goroutine: drain the ring, process arrivals in
// priority order, service the send queue the processing may have fed
// (credit releases, acks opening windows, retransmissions), then hand
// scheduler-domain completions over in one PostAsync.
func (ln *lane) engine() {
	defer ln.p.laneWG.Done()
	tr := ln.p.cfg.Tracer
	for {
		items := ln.rx.Drain()
		if len(items) == 0 {
			if tr != nil {
				tr.Set(ln.traceName, trace.Idle)
			}
			if !ln.rx.Sleep(ln.p.laneStop) {
				if tr != nil {
					tr.Close(ln.traceName)
				}
				return
			}
			continue
		}
		if tr != nil {
			tr.Set(ln.traceName, trace.Comm)
			tr.Mark(ln.traceName, fmt.Sprintf("q=%d", len(items)))
		}
		ln.p.statRingDrain.Add(int64(len(items)))
		fns := ln.fnScratch[:0]
		ln.mu.Lock()
		for i := range items {
			it := items[i]
			if it.fn != nil {
				// Engine-posted work (rebalancing) runs outside the lock,
				// after the batch it arrived in.
				fns = append(fns, it.fn)
				items[i] = rxItem{}
				continue
			}
			level := ctrlLevel
			if it.m.Tag >= 0 && it.c != nil {
				level = it.c.priority
			}
			ln.rxq.push(level, it)
			items[i] = rxItem{}
		}
		ln.processLocked()
		ln.serviceLocked()
		post := ln.queueDrainLocked()
		ln.mu.Unlock()
		if post {
			ln.p.cfg.RT.PostAsync(ln.drainFn)
		}
		for i, fn := range fns {
			fn()
			fns[i] = nil
		}
		ln.fnScratch = fns[:0]
		// During shutdown the keeper thread parks until every lane is
		// quiescent; a frame the engine just consumed (the peer's last
		// ack or credit) may have been the very thing it was waiting out,
		// so re-run the shutdown check in the scheduler domain.
		if ln.p.closing.Load() {
			ln.p.cfg.RT.PostAsync(ln.p.shutdownFn)
		}
	}
}

// step is the virtual-mode engine body: one event callback doing what one
// wakeup of the engine goroutine does — drain the ring, process arrivals,
// service the send scheduler — repeated until the ring is empty. It differs
// from engine() in exactly the ways the discrete-event loop requires: it
// runs in the simulation engine's goroutine (scheduler domain) at a definite
// virtual instant, so the deferred out-queue drain runs inline instead of
// through Runtime.PostAsync (which the sim engine never services), and the
// closing-time shutdown re-check calls the predicate directly.
func (ln *lane) step() {
	ln.stepArmed.Store(false)
	tr := ln.p.cfg.Tracer
	worked := false
	for {
		items := ln.rx.Drain()
		if len(items) == 0 {
			break
		}
		worked = true
		if tr != nil {
			tr.Set(ln.traceName, trace.Comm)
			tr.Mark(ln.traceName, fmt.Sprintf("q=%d", len(items)))
		}
		ln.p.statRingDrain.Add(int64(len(items)))
		fns := ln.fnScratch[:0]
		ln.mu.Lock()
		for i := range items {
			it := items[i]
			if it.fn != nil {
				fns = append(fns, it.fn)
				items[i] = rxItem{}
				continue
			}
			level := ctrlLevel
			if it.m.Tag >= 0 && it.c != nil {
				level = it.c.priority
			}
			ln.rxq.push(level, it)
			items[i] = rxItem{}
		}
		ln.processLocked()
		ln.serviceLocked()
		post := ln.queueDrainLocked()
		ln.mu.Unlock()
		if post {
			ln.runDrain()
		}
		for i, fn := range fns {
			fn()
			fns[i] = nil
		}
		ln.fnScratch = fns[:0]
	}
	if tr != nil && worked {
		tr.Set(ln.traceName, trace.Idle)
	}
	if worked && ln.p.closing.Load() {
		ln.p.shutdownFn()
	}
}

// queueDrainLocked marks a drain as needed if the out-queues are non-empty;
// the caller PostAsyncs drainFn exactly when it returns true.
func (ln *lane) queueDrainLocked() bool {
	if ln.drainPosted {
		return false
	}
	if len(ln.wake) == 0 && len(ln.fans) == 0 && len(ln.deliver) == 0 && len(ln.errs) == 0 {
		return false
	}
	ln.drainPosted = true
	return true
}

// processLocked is the sharded recvLoop body: demultiplex everything queued
// in rxq — control to the disciplines, data through error/flow control —
// deferring scheduler-domain work (waiter dispatch, barrier state,
// exceptions) to the out-queues.
func (ln *lane) processLocked() {
	for !ln.rxq.empty() {
		it := ln.rxq.pop()
		m, c := it.m, it.c
		if c != nil && c.lnp.Load() != ln {
			// The channel migrated after this item was routed; the stale
			// lane must not touch its state. Forward to the current owner
			// in pop order (FIFO within the channel is preserved for the
			// forwarded items; the rebalancer only moves channels whose
			// error control sequences data, so a frame racing the handoff
			// is re-ordered at worst into a retransmission, never into a
			// mis-ordered delivery).
			dst := c.lnp.Load()
			ln.p.statRingPush.Add(1)
			dst.rx.Push(it)
			dst.kick()
			continue
		}
		if m.Tag < 0 {
			switch m.Tag {
			case tagFlowAck, tagGBNAck:
				if c == nil {
					// Control for a channel nobody has open: almost always
					// an ack or credit racing the channel's finalize (the
					// signaled close removed it from the table). Cumulative
					// control is supersede-safe, so drop it and count.
					ln.p.statLateCtrl.Add(1)
					m.Release()
					continue
				}
				if m.Tag == tagFlowAck {
					c.flow.onControl(m)
				} else {
					c.errc.onControl(m)
				}
				m.Release()
			case tagBarrier, tagBarrierRel:
				// Barrier state is proc-level scheduler-domain state.
				ln.deliver = append(ln.deliver, m)
			case tagSigSetup, tagSigConnect, tagSigReject, tagSigRelease, tagSigRelComp, tagSigBeat:
				// Signaling is proc-level scheduler-domain state, like
				// barriers: the drain dispatches to onSigMsg.
				ln.deliver = append(ln.deliver, m)
			default:
				ln.errs = append(ln.errs, fmt.Errorf("unknown control tag %d from proc %d", m.Tag, m.From))
				m.Release()
			}
			continue
		}
		if c == nil {
			ln.errs = append(ln.errs, fmt.Errorf("data on unopened channel %d from proc %d", m.Channel, m.From))
			m.Release()
			continue
		}
		if m.HasCredit {
			if it.cc != nil {
				ln.applyCrossLocked(it.cc, tagFlowAck, m.Credit)
			} else {
				c.flow.onCredit(m.Credit)
			}
		}
		if m.HasAck {
			if it.ca != nil {
				ln.applyCrossLocked(it.ca, tagGBNAck, m.Ack)
			} else {
				c.errc.onAck(m.Ack)
			}
		}
		if c.closed {
			ln.errs = append(ln.errs, fmt.Errorf("data on closed channel %d from proc %d", m.Channel, m.From))
			m.Release()
			continue
		}
		if !c.errc.onData(m) {
			continue
		}
		c.received.Add(1)
		c.bytesReceived.Add(int64(len(m.Data)))
		c.flow.onDelivered(m)
		ln.deliver = append(ln.deliver, m)
	}
}

// requeueRxLocked re-queues in-order flushes from a buffering discipline
// (selective repeat) ahead of anything already waiting at the channel's
// level, exactly as the classic path prepends into rxIn.
func (ln *lane) requeueRxLocked(c *Channel, flushed []*transport.Message) {
	items := ln.rxScratch[:0]
	for _, m := range flushed {
		items = append(items, rxItem{m: m, c: c})
	}
	ln.rxq.prependLevel(c.priority, items)
	ln.rxScratch = items[:0]
}

// ---------------------------------------------------------------------------
// Sending

// serviceLocked is the sharded sendLoop body: drain the lane's send
// scheduler (control first, then DRR across channels) through admission,
// piggyback attachment, cross-channel coalescing, and same-destination
// batching. Unlike the classic loop it runs inline in whatever context fed
// the queue — a sending thread, the engine, a timer — so an uncontended
// send completes with no context switch at all. Forced credit
// advertisements queued by the flow tier (mustFlush) are resolved at the
// end of the pass: a data frame serviced in the same pass carries them for
// free, anything still pending goes standalone.
func (ln *lane) serviceLocked() {
	p := ln.p
	run := ln.sendRun[:0]
	for {
		for !ln.pending.empty() {
			req := ln.pending.pop()
			if req.m.Tag >= 0 && !req.raw {
				if req.ch.sendUnavailable() {
					c := req.ch
					ln.failSendLocked(req)
					ln.errs = append(ln.errs, c.sendFailErr())
					continue
				}
				if !req.flowOK {
					if !req.ch.flow.admit(req) {
						continue
					}
					req.flowOK = true
				}
				if !req.ch.errc.admit(req) {
					continue
				}
			}
			if req.m.Tag >= 0 && req.ch != nil {
				req.ch.attachPiggy(req.m)
				ln.attachCrossLocked(req.ch, req.m)
			}
			if len(run) > 0 && (req.m.To != run[len(run)-1].m.To || len(run) >= maxSendBurst) {
				run = ln.flushRunLocked(run)
			}
			run = append(run, req)
			if p.laneBS == nil {
				run = ln.flushRunLocked(run)
			}
		}
		if len(ln.mustFlush) == 0 {
			break
		}
		mf := ln.mustFlush
		ln.mustFlush = nil
		for i, c := range mf {
			c.mustFlushOn = false
			if !c.closed && (c.pendCreditOn || len(c.pendAcks) > 0) {
				// No data frame in this pass picked the forced
				// advertisement up; it must go now (the peer's window is
				// at its sync threshold).
				c.flushCtrl()
			}
			mf[i] = nil
		}
		if ln.mustFlush == nil {
			ln.mustFlush = mf[:0]
		}
	}
	ln.sendRun = ln.flushRunLocked(run)
}

// attachCrossLocked fills a departing data frame's free credit/ack slots
// from *sibling* channels to the same peer that have control pending —
// the lane-aware cross-channel coalescing that keeps the piggyback share
// high when a peer's control and data flow on different channels. Each
// word is stamped with its owning channel (one extra wire byte per
// foreign word).
func (ln *lane) attachCrossLocked(c *Channel, m *transport.Message) {
	if m.HasCredit && m.HasAck {
		return
	}
	sibs := ln.pendCtrl[c.peer]
	for i := 0; i < len(sibs); {
		if m.HasCredit && m.HasAck {
			return
		}
		s := sibs[i]
		if s == c || s.closed {
			i++
			continue
		}
		attached := false
		if s.pendCreditOn && !m.HasCredit {
			m.Credit, m.HasCredit = s.pendCredit, true
			m.CreditChan = s.id
			s.pendCreditOn = false
			s.ctrlPiggy.Add(1)
			s.ctrlCoalesced.Add(1)
			ln.ctrlPiggyL++
			ln.ctrlCoalescedL++
			s.flow.creditSent(s.pendCredit)
			attached = true
		}
		if n := len(s.pendAcks); n > 0 && !m.HasAck {
			m.Ack, m.HasAck = s.pendAcks[0], true
			m.AckChan = s.id
			copy(s.pendAcks, s.pendAcks[1:])
			s.pendAcks = s.pendAcks[:n-1]
			s.ctrlPiggy.Add(1)
			s.ctrlCoalesced.Add(1)
			ln.ctrlPiggyL++
			ln.ctrlCoalescedL++
			attached = true
		}
		if attached {
			ln.markDecision(s, "coalesce")
		}
		if !s.pendCreditOn && len(s.pendAcks) == 0 {
			// Drained: pendDropLocked swap-removes s, moving the old tail
			// into slot i — re-read and revisit the slot.
			ln.pendDropLocked(s)
			sibs = ln.pendCtrl[c.peer]
			continue
		}
		i++
	}
}

// applyCrossLocked delivers a cross-channel piggybacked control word to
// its owning channel: inline when that channel lives on this lane,
// otherwise as a synthetic standalone control message forwarded to the
// owner's ring (rare — an explicit cross-lane pin or a migration window,
// so the allocation stays off the steady-state hot path).
func (ln *lane) applyCrossLocked(t *Channel, tag int, v uint32) {
	if t.lnp.Load() == ln {
		if tag == tagFlowAck {
			t.flow.onCredit(v)
		} else {
			t.errc.onAck(v)
		}
		return
	}
	m := &transport.Message{
		From: t.peer, To: ln.p.cfg.ID, Channel: t.id, Tag: tag,
		Data: wire.AppendUint32(nil, v),
	}
	dst := t.lnp.Load()
	ln.p.statRingPush.Add(1)
	dst.rx.Push(rxItem{m: m, c: t})
	dst.kick()
}

// ---------------------------------------------------------------------------
// Pending-control index and flush wheel

// pendAddLocked files c in the lane's pending-control index (by peer) so
// departing data frames can find its credit/ack.
func (ln *lane) pendAddLocked(c *Channel) {
	if c.inPend {
		return
	}
	c.inPend = true
	ln.pendCtrl[c.peer] = append(ln.pendCtrl[c.peer], c)
}

// pendDropLocked removes c from the pending-control index once nothing is
// pending (swap-remove; order within a peer's list is not meaningful).
func (ln *lane) pendDropLocked(c *Channel) {
	c.flushDeferred = false
	if !c.inPend {
		return
	}
	c.inPend = false
	s := ln.pendCtrl[c.peer]
	for i, x := range s {
		if x == c {
			s[i] = s[len(s)-1]
			s[len(s)-1] = nil
			ln.pendCtrl[c.peer] = s[:len(s)-1]
			break
		}
	}
}

// rideImminentLocked reports whether a data frame toward c's peer is
// queued or imminent on this lane — a frame the channel's pending control
// could ride instead of flushing standalone: queued sends awaiting
// service, sends parked inside a flow window or error-control tier that
// will re-emerge shortly.
func (ln *lane) rideImminentLocked(c *Channel) bool {
	sibs := ln.chans
	for _, s := range sibs {
		if s.peer != c.peer || s.closed {
			continue
		}
		if s.sq.Size() > 0 || s.flow.queued() > 0 || s.errc.queued() > 0 {
			return true
		}
	}
	return false
}

// armWheelLocked schedules the lane's flush wheel for its head deadline.
// Entries enter with a constant delay, so the queue is in deadline order
// and one armed timer covers every waiting channel on the lane.
func (ln *lane) armWheelLocked() {
	if ln.wheelOn || ln.flushQ.Size() == 0 {
		return
	}
	d := ln.flushQ.Peek().flushAt - time.Duration(ln.p.cfg.RT.Now())
	if d < 0 {
		d = 0
	}
	ln.wheelOn = true
	ln.p.flushTimers.Add(1)
	ln.p.cfg.After(d, ln.wheelFn)
}

// wheelFire is the lane flush wheel (scheduler domain, via Config.After):
// for every channel whose piggyback window expired, either flush its
// control standalone or — if a same-peer data frame is imminent on the
// lane — defer one extra window to ride it (bounded: the second expiry
// always flushes).
func (ln *lane) wheelFire() {
	ln.p.flushTimers.Add(-1)
	ln.mu.Lock()
	ln.wheelOn = false
	now := time.Duration(ln.p.cfg.RT.Now())
	for ln.flushQ.Size() > 0 && ln.flushQ.Peek().flushAt <= now {
		c := ln.flushQ.Pop()
		c.flushOn = false
		if c.closed {
			ln.pendDropLocked(c)
			continue
		}
		if !c.pendCreditOn && len(c.pendAcks) == 0 {
			// A data frame carried everything while the window ran.
			ln.pendDropLocked(c)
			continue
		}
		if !c.flushDeferred && ln.rideImminentLocked(c) {
			c.flushDeferred = true
			c.flushOn = true
			c.flushAt = now + ln.p.ctrlFlush
			ln.flushQ.Push(c)
			ln.markDecision(c, "ctrl-defer")
			continue
		}
		c.flushDeferred = false
		c.flushCtrl()
	}
	ln.armWheelLocked()
	ln.serviceLocked()
	ln.mu.Unlock()
	ln.runDrain()
}

// markDecision emits a scheduler-decision mark ("coalesce", "ctrl-defer",
// "migrate") on the lane's trace timeline.
func (ln *lane) markDecision(c *Channel, kind string) {
	if tr := ln.p.cfg.Tracer; tr != nil {
		tr.Mark(ln.traceName, kind+" "+c.lane)
	}
}

// flushRunLocked hands one same-destination run to the carrier and
// completes the requests: counters, deferred wakeups, freelist recycling.
func (ln *lane) flushRunLocked(run []*sendReq) []*sendReq {
	if len(run) == 0 {
		return run
	}
	p := ln.p
	if p.cfg.Tracer != nil {
		for _, req := range run {
			p.traceChan(req.ch, trace.Comm)
		}
	}
	if p.laneBS != nil && len(run) > 1 {
		ms := ln.batchMsgs[:0]
		for _, req := range run {
			ms = append(ms, req.m)
		}
		p.laneBS.SendBatch(nil, ms)
		for i := range ms {
			ms[i] = nil
		}
		ln.batchMsgs = ms[:0]
	} else {
		for _, req := range run {
			p.cfg.Endpoint.Send(nil, req.m)
		}
	}
	for i, req := range run {
		if req.ch != nil && !req.raw {
			req.ch.sent.Add(1)
			req.ch.bytesSent.Add(int64(len(req.m.Data)))
		}
		if p.cfg.Tracer != nil {
			p.traceChan(req.ch, trace.Idle)
		}
		if req.done != nil {
			// Inline sender still inside lane.send on this lane: it
			// observes the flag before parking, so no wakeup is needed.
			*req.done = true
		} else if req.caller != nil {
			ln.wake = append(ln.wake, req.caller)
		}
		if req.fan != nil {
			ln.fans = append(ln.fans, req.fan)
		}
		if req.ctrl {
			ln.putCtrlMsg(req.m)
		} else {
			ln.putDataMsg(req.m)
		}
		ln.putReq(req)
		run[i] = nil
	}
	return run[:0]
}

// detachChanLocked strips a finalizing channel out of every lane structure
// it participates in: queued sends fail with the typed closed error, the
// DRR ring and pending-control index forget it, and it leaves the lane's
// channel list. Caller holds ln.mu; the channel must already be in the
// CLOSED state so no new work can re-enter behind the sweep.
func (ln *lane) detachChanLocked(c *Channel) {
	for c.sq.Size() > 0 {
		req := c.sq.Pop()
		ln.failSendLocked(req)
		ln.errs = append(ln.errs, c.sendFailErr())
	}
	ln.pending.removeChan(c)
	ln.pendDropLocked(c)
	for i, x := range ln.chans {
		if x == c {
			ln.chans[i] = ln.chans[len(ln.chans)-1]
			ln.chans[len(ln.chans)-1] = nil
			ln.chans = ln.chans[:len(ln.chans)-1]
			break
		}
	}
}

// failSendLocked is the lane-domain failSend: recycle the request and
// defer its caller's wakeup to the drain.
func (ln *lane) failSendLocked(req *sendReq) {
	caller, fan, done := req.caller, req.fan, req.done
	if !req.ctrl && req.m != nil {
		ln.putDataMsg(req.m)
	}
	ln.putReq(req)
	if done != nil {
		*done = true
	} else if caller != nil {
		ln.wake = append(ln.wake, caller)
	}
	if fan != nil {
		ln.fans = append(ln.fans, fan)
	}
}

// laneSend is the sharded Thread.Send/Channel.Send body: build the message
// and request from the lane's freelists, enqueue, and service the lane
// inline. If the request flushed during the inline service (the common,
// uncongested case) the thread never parks — the send completes in the
// caller's own time slice, which is where the single-core speedup over the
// classic park/dispatch/park cycle comes from. If a discipline deferred
// it, the thread parks and the eventual flush (engine or timer) wakes it
// through the drain.
func (c *Channel) laneSend(t *Thread, tag, toThread int, data []byte) {
	p := c.p
	if pd := p.deadPeers[c.peer]; pd != nil {
		// Fail fast: the peer has been declared dead. Without this check a
		// send after the failure sweep would resurrect a fresh default
		// channel (the sweep removed the old one) and feed frames into the
		// void forever. Scheduler-domain read: thread bodies run there.
		p.exception(pd)
		return
	}
	p.traceThread(t, trace.Idle)
	cost := int64(wire.HeaderSize + len(data))
	c.loadAcc.Add(cost)
	if p.rebalEvery > 0 && c.sent.Load()&63 == 0 {
		c.maybeSteal()
	}
	ln := c.lockLane()
	ln.loadAcc.Add(cost)
	if c.sendUnavailable() {
		ln.mu.Unlock()
		p.exception(c.sendFailErr())
		p.traceThread(t, trace.Compute)
		return
	}
	m := ln.getDataMsg()
	m.From = p.cfg.ID
	m.To = c.peer
	m.FromThread = t.idx
	m.ToThread = toThread
	m.Tag = tag
	m.Channel = c.id
	m.Data = data
	req := ln.getReq()
	req.m = m
	req.ch = c
	t.sendDone = false
	req.done = &t.sendDone
	ln.pending.push(c.priority, req)
	ln.serviceLocked()
	done := t.sendDone
	if !done {
		// Deferred inside a discipline: completion happens under this same
		// lock later, so clearing the flag pointer and installing the
		// parked caller here is race-free. The engine may flush it before
		// this thread reaches Park, in which case the wakeup surfaces
		// either through drain's self-wake detection below or, after the
		// park, through a Posted drain — which runs only between
		// dispatches, i.e. strictly after the park takes effect.
		req.done = nil
		req.caller = t.mt
	}
	ln.mu.Unlock()
	// The inline service may have completed other requests (deferred sends
	// whose credit arrived) or raised errors; finish that scheduler-domain
	// work in this thread's context.
	if ln.drain(t.mt) {
		done = true
	}
	if !done {
		t.mt.Park("ncs send")
	}
	p.traceThread(t, trace.Compute)
	p.sent.Add(1)
}

// ---------------------------------------------------------------------------
// Scheduler-domain drain

// runDrain moves the lane's deferred scheduler-domain work into the
// scheduler: deliver data to waiters/store, route barrier control, wake
// send callers, retire fan requests, raise exceptions. Runs only in the
// scheduler domain (a sending thread inline, or PostAsync between
// dispatches).
func (ln *lane) runDrain() { ln.drain(nil) }

// drain is runDrain with self-wake detection: a thread draining inline on
// its own send path passes its own mts thread, and a wakeup addressed to it
// is reported through the return value instead of a no-op Unblock (the
// thread is still running — it has not parked yet — so Unblock would lose
// the wakeup and the thread would park forever). self carries at most one
// pending wakeup, because a thread has at most one outstanding send.
//
// Reentrancy: processing a barrier message can send control (sendCtrlVec),
// which drains a lane inline — possibly this one. The spare swap buffers
// are therefore *claimed* (nil'd) while in use so a nested drain allocates
// fresh scratch instead of aliasing the batch being processed.
func (ln *lane) drain(self *mts.Thread) (selfWoken bool) {
	p := ln.p
	for {
		ln.mu.Lock()
		wake, fans, del, errs := ln.wake, ln.fans, ln.deliver, ln.errs
		if len(wake) == 0 && len(fans) == 0 && len(del) == 0 && len(errs) == 0 {
			ln.drainPosted = false
			ln.mu.Unlock()
			return selfWoken
		}
		ln.wake = ln.spareWake[:0]
		ln.fans = ln.spareFans[:0]
		ln.deliver = ln.spareDeliver[:0]
		ln.errs = ln.spareErrs[:0]
		ln.spareWake, ln.spareFans, ln.spareDeliver, ln.spareErrs = nil, nil, nil, nil
		ln.mu.Unlock()

		for i, m := range del {
			if m.Tag < 0 {
				if isSigTag(m.Tag) {
					p.onSigMsg(m)
				} else {
					p.onBarrierMsg(m)
				}
				m.Release()
			} else {
				p.dispatchData(nil, m)
			}
			del[i] = nil
		}
		for i, t := range wake {
			if t == self {
				selfWoken = true
			} else {
				p.cfg.RT.Unblock(t, false)
			}
			wake[i] = nil
		}
		for i, f := range fans {
			p.fanDone(f)
			fans[i] = nil
		}
		for i, err := range errs {
			p.exception(err)
			errs[i] = nil
		}
		ln.spareWake = wake[:0]
		ln.spareFans = fans[:0]
		ln.spareDeliver = del[:0]
		ln.spareErrs = errs[:0]
	}
}

// ---------------------------------------------------------------------------
// Shutdown

// mayShutdownSharded is the lane-mode shutdown predicate: user threads are
// done, no channel's error control is awaiting acknowledgement, and every
// lane has drained its queues.
func (p *Proc) mayShutdownSharded() bool {
	if !p.closing.Load() {
		return false
	}
	p.chanMu.RLock()
	chans := make([]*Channel, 0, len(p.channels))
	for _, c := range p.channels {
		chans = append(chans, c)
	}
	p.chanMu.RUnlock()
	for _, c := range chans {
		ln := c.lockLane()
		pend := c.errc.pending()
		ln.mu.Unlock()
		if pend != 0 {
			return false
		}
	}
	for _, ln := range p.lanes {
		ln.mu.Lock()
		busy := !ln.pending.empty() || !ln.rxq.empty()
		ln.mu.Unlock()
		if busy || ln.rx.Len() > 0 {
			return false
		}
	}
	return true
}

// laneLoop is the lanes' shutdown supervisor: a system thread that parks
// until the process may terminate, then stops the engines and performs the
// final drain. It replaces the classic send/recv system threads' exit
// paths (the lane engines themselves run outside the mts scheduler — as
// plain goroutines in real mode, as clock events in virtual mode).
func (p *Proc) laneLoop(st *mts.Thread) {
	for !p.mayShutdownSharded() {
		st.Park("lanes idle")
	}
	p.laneDriver.stop(p)
	// Engines may have queued completions after their last scheduled
	// drain ran (or for drains the exiting Run loop would never execute).
	for _, ln := range p.lanes {
		ln.runDrain()
	}
}
