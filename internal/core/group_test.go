package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/work"
)

func TestAllToAll(t *testing.T) {
	const n = 4
	eng, procs := simCluster(t, n, nil)
	var group []Addr
	for i := 0; i < n; i++ {
		group = append(group, Addr{Proc: ProcID(i), Thread: 0})
	}
	results := make([][][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("member", mts.PrioDefault, func(th *Thread) {
			data := make([][]byte, n)
			for j := 0; j < n; j++ {
				data[j] = []byte(fmt.Sprintf("%d->%d", i, j))
			}
			results[i] = th.AllToAll(group, i, data)
		})
	}
	eng.Run()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := fmt.Sprintf("%d->%d", j, i)
			if i == j {
				want = fmt.Sprintf("%d->%d", i, i)
			}
			if string(results[i][j]) != want {
				t.Fatalf("results[%d][%d] = %q, want %q", i, j, results[i][j], want)
			}
		}
	}
}

func TestReduce(t *testing.T) {
	const n = 4
	eng, procs := simCluster(t, n, nil)
	var sum []byte
	for i := 1; i < n; i++ {
		i := i
		procs[i].TCreate("leaf", mts.PrioDefault, func(th *Thread) {
			th.Send(0, 0, []byte{byte(i * 10)})
		})
	}
	procs[0].TCreate("root", mts.PrioDefault, func(th *Thread) {
		list := []Addr{{Proc: 1}, {Proc: 2}, {Proc: 3}}
		sum = th.Reduce(list, []byte{5}, func(acc, next []byte) []byte {
			return []byte{acc[0] + next[0]}
		})
	})
	eng.Run()
	if len(sum) != 1 || sum[0] != 5+10+20+30 {
		t.Fatalf("reduce = %v, want 65", sum)
	}
}

// TestGoBackNOverLossyATM runs NCS error control above the raw ATM-API
// path with adapter-level frame drops: the scenario the paper's error
// control thread exists for (no TCP underneath to retransmit).
func TestGoBackNOverLossyATM(t *testing.T) {
	eng := sim.NewEngine()
	eng.SetMaxTime(time.Hour)
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 100e6})
	nicCfg := nic.Config{
		NumBuffers:      4,
		BufferSize:      2048,
		TrapCost:        10 * time.Microsecond,
		HostCopyPerByte: 100 * time.Nanosecond,
		// Drop every 7th received AAL5 frame. The period is chosen coprime
		// to the retransmission round size (window 4 x 3 frames/message =
		// 12 frames): a period dividing the round would phase-lock the
		// drops onto the same message every round and no ARQ could ever
		// progress — a hazard of deterministic loss, not of go-back-N.
		RxDropEvery: 7,
	}
	var procs [2]*Proc
	var adapters [2]*nic.SimATM
	for i := 0; i < 2; i++ {
		node := eng.NewNode(fmt.Sprintf("n%d", i))
		a := nic.NewSimATM(node, net, i, nicCfg)
		adapters[i] = a
		procs[i] = New(Config{
			ID:       ProcID(i),
			RT:       node.RT(),
			Endpoint: a,
			Compute:  work.Sim(node),
			Error:    NewGoBackN(4, 5*time.Millisecond),
			After:    func(d time.Duration, fn func()) { eng.Schedule(d, fn) },
		})
		procs[i].OnException(func(error) {}) // trailing-ack give-up is fine
	}
	const msgs = 12
	var got []int
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			// Multi-chunk messages so drops hit interior frames too.
			payload := make([]byte, 5000)
			payload[0] = byte(k)
			th.Send(0, 1, payload)
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			data, _ := th.Recv(Any, Any)
			got = append(got, int(data[0]))
		}
	})
	eng.Run()
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	if adapters[1].RxDropped() == 0 && adapters[0].RxDropped() == 0 {
		t.Fatal("fault injection dropped nothing — test proves nothing")
	}
}
