package core

import (
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// FlowControl is the pluggable discipline the paper's flow-control thread
// implements (Figure 5: different applications select different mechanisms
// at run time — NCS_init(flow, error)). One instance serves one Channel:
// the discipline is a per-channel state machine, so two channels between
// the same process pair pace and window independently. Instances passed to
// core.New act as templates for default channels (fork produces a fresh
// per-channel copy); instances passed to Proc.Open are used directly and
// must not be shared across channels.
//
// Admission is non-blocking by design: the send system thread must stay
// free to carry control traffic (credit returns, acknowledgements) even
// while data is gated, otherwise two peers with full windows toward each
// other could deadlock waiting for credits neither can send. A discipline
// that cannot admit a request queues it internally and re-enqueues it via
// Proc.enqueueSend when state changes.
type FlowControl interface {
	// Name identifies the discipline.
	Name() string
	// fork returns a fresh, unbound instance with the same parameters.
	fork() FlowControl
	init(c *Channel)
	// admit either clears m for transmission (true) or takes ownership of
	// the request for deferred re-enqueue (false).
	admit(req *sendReq) bool
	// onDelivered runs when a data message has been delivered locally and
	// may generate control traffic (e.g. a credit return).
	onDelivered(m *transport.Message)
	// onControl consumes this discipline's control messages.
	onControl(m *transport.Message)
	shutdown()
}

// NoFlowControl is the paper's Approach-1 default: rely on the transport
// underneath (p4 over TCP provides its own flow control).
type NoFlowControl struct{}

// Name implements FlowControl.
func (NoFlowControl) Name() string                   { return "none" }
func (NoFlowControl) fork() FlowControl              { return NoFlowControl{} }
func (NoFlowControl) init(*Channel)                  {}
func (NoFlowControl) admit(*sendReq) bool            { return true }
func (NoFlowControl) onDelivered(*transport.Message) {}
func (NoFlowControl) onControl(*transport.Message)   {}
func (NoFlowControl) shutdown()                      {}

// WindowFlow is credit-based flow control: at most Window messages may be
// outstanding (sent but not credited back) on the channel. Suited to the
// parallel/distributed application class in Figure 5 (bursty, loss-averse).
type WindowFlow struct {
	// Window is the channel's credit (>= 1).
	Window int

	c        *Channel
	credits  int
	deferred []*sendReq
}

// NewWindowFlow returns a window-based discipline.
func NewWindowFlow(window int) *WindowFlow {
	if window < 1 {
		panic("core: window must be >= 1")
	}
	return &WindowFlow{Window: window}
}

// Name implements FlowControl.
func (w *WindowFlow) Name() string { return "window" }

func (w *WindowFlow) fork() FlowControl { return NewWindowFlow(w.Window) }

func (w *WindowFlow) init(c *Channel) {
	if w.c != nil {
		panic("core: FlowControl instance bound to two channels; pass a fresh instance per channel")
	}
	w.c = c
	w.credits = w.Window
}

func (w *WindowFlow) admit(req *sendReq) bool {
	if w.credits > 0 {
		w.credits--
		return true
	}
	w.deferred = append(w.deferred, req)
	return false
}

func (w *WindowFlow) onDelivered(m *transport.Message) {
	// Return a credit to the sender on this channel.
	w.c.p.sendCtrl(w.c.peer, w.c.id, tagFlowAck, 0, false)
}

func (w *WindowFlow) onControl(m *transport.Message) {
	if len(w.deferred) > 0 {
		// Hand the freed credit straight to the oldest deferred request.
		req := w.deferred[0]
		w.deferred = w.deferred[1:]
		req.flowOK = true
		w.c.p.enqueueSend(req)
		return
	}
	w.credits++
}

func (w *WindowFlow) shutdown() {}

// Outstanding returns how many credits are currently consumed; tests use
// it to verify the window invariant.
func (w *WindowFlow) Outstanding() int {
	return w.Window - w.credits
}

// RateFlow is token-bucket pacing: data leaves at no more than Rate bytes
// per second with bursts up to Bucket bytes. This is the QOS discipline a
// Video-on-Demand application selects (Figure 5's FC1 vs FC2).
type RateFlow struct {
	// Rate is the sustained payload rate in bytes/second.
	Rate float64
	// Bucket is the burst capacity in bytes.
	Bucket float64

	c      *Channel
	tokens float64
	last   time.Duration // virtual/real time of last refill
}

// NewRateFlow returns a token-bucket discipline.
func NewRateFlow(bytesPerSecond, bucketBytes float64) *RateFlow {
	if bytesPerSecond <= 0 || bucketBytes <= 0 {
		panic("core: rate and bucket must be positive")
	}
	return &RateFlow{Rate: bytesPerSecond, Bucket: bucketBytes}
}

// Name implements FlowControl.
func (r *RateFlow) Name() string { return "rate" }

func (r *RateFlow) fork() FlowControl { return NewRateFlow(r.Rate, r.Bucket) }

func (r *RateFlow) init(c *Channel) {
	if r.c != nil {
		panic("core: FlowControl instance bound to two channels; pass a fresh instance per channel")
	}
	r.c = c
	r.tokens = r.Bucket
	r.last = time.Duration(c.p.cfg.RT.Now())
}

func (r *RateFlow) refill() {
	now := time.Duration(r.c.p.cfg.RT.Now())
	r.tokens += r.Rate * (now - r.last).Seconds()
	if r.tokens > r.Bucket {
		r.tokens = r.Bucket
	}
	r.last = now
}

func (r *RateFlow) admit(req *sendReq) bool {
	need := float64(len(req.m.Data))
	if need > r.Bucket {
		need = r.Bucket // oversized messages drain a full bucket
	}
	r.refill()
	if r.tokens >= need {
		r.tokens -= need
		return true
	}
	// Re-enqueue once enough tokens will have accumulated.
	deficit := need - r.tokens
	wait := time.Duration(deficit / r.Rate * float64(time.Second))
	if wait < time.Microsecond {
		wait = time.Microsecond
	}
	p := r.c.p
	p.cfg.After(wait, func() { p.enqueueSend(req) })
	return false
}

func (r *RateFlow) onDelivered(*transport.Message) {}
func (r *RateFlow) onControl(*transport.Message)   {}
func (r *RateFlow) shutdown()                      {}

// Tokens returns the current bucket level (after refill); for tests.
func (r *RateFlow) Tokens() float64 {
	r.refill()
	return r.tokens
}

// ctrlPayload reads the uint32 payload of a control message.
func ctrlPayload(m *transport.Message) uint32 { return wire.Uint32(m.Data) }
