package core

import (
	"encoding/binary"
	"time"

	"repro/internal/transport"
)

// FlowControl is the pluggable discipline the paper's flow-control thread
// implements (Figure 5: different applications select different mechanisms
// at run time — NCS_init(flow, error)).
//
// Admission is non-blocking by design: the send system thread must stay
// free to carry control traffic (credit returns, acknowledgements) even
// while data is gated, otherwise two peers with full windows toward each
// other could deadlock waiting for credits neither can send. A discipline
// that cannot admit a request queues it internally and re-enqueues it via
// Proc.enqueueSend when state changes.
type FlowControl interface {
	// Name identifies the discipline.
	Name() string
	init(p *Proc)
	// admit either clears m for transmission (true) or takes ownership of
	// the request for deferred re-enqueue (false).
	admit(req *sendReq) bool
	// onDelivered runs when a data message has been delivered locally and
	// may generate control traffic (e.g. a credit return).
	onDelivered(m *transport.Message)
	// onControl consumes this discipline's control messages.
	onControl(m *transport.Message)
	shutdown()
}

// NoFlowControl is the paper's Approach-1 default: rely on the transport
// underneath (p4 over TCP provides its own flow control).
type NoFlowControl struct{}

// Name implements FlowControl.
func (NoFlowControl) Name() string                   { return "none" }
func (NoFlowControl) init(*Proc)                     {}
func (NoFlowControl) admit(*sendReq) bool            { return true }
func (NoFlowControl) onDelivered(*transport.Message) {}
func (NoFlowControl) onControl(*transport.Message)   {}
func (NoFlowControl) shutdown()                      {}

// WindowFlow is credit-based flow control: at most Window messages may be
// outstanding (sent but not credited back) per destination. Suited to the
// parallel/distributed application class in Figure 5 (bursty, loss-averse).
type WindowFlow struct {
	// Window is the per-destination credit (>= 1).
	Window int

	p        *Proc
	credits  map[ProcID]int
	deferred map[ProcID][]*sendReq
}

// NewWindowFlow returns a window-based discipline.
func NewWindowFlow(window int) *WindowFlow {
	if window < 1 {
		panic("core: window must be >= 1")
	}
	return &WindowFlow{Window: window}
}

// Name implements FlowControl.
func (w *WindowFlow) Name() string { return "window" }

func (w *WindowFlow) init(p *Proc) {
	w.p = p
	w.credits = make(map[ProcID]int)
	w.deferred = make(map[ProcID][]*sendReq)
}

func (w *WindowFlow) creditsFor(dst ProcID) int {
	if c, ok := w.credits[dst]; ok {
		return c
	}
	w.credits[dst] = w.Window
	return w.Window
}

func (w *WindowFlow) admit(req *sendReq) bool {
	dst := req.m.To
	if w.creditsFor(dst) > 0 {
		w.credits[dst]--
		return true
	}
	w.deferred[dst] = append(w.deferred[dst], req)
	return false
}

func (w *WindowFlow) onDelivered(m *transport.Message) {
	// Return a credit to the sender.
	w.p.enqueueControl(&transport.Message{
		From: w.p.cfg.ID,
		To:   m.From,
		Tag:  tagFlowAck,
	})
}

func (w *WindowFlow) onControl(m *transport.Message) {
	src := m.From
	if q := w.deferred[src]; len(q) > 0 {
		// Hand the freed credit straight to the oldest deferred request.
		req := q[0]
		w.deferred[src] = q[1:]
		req.flowOK = true
		w.p.enqueueSend(req)
		return
	}
	w.credits[src] = w.creditsFor(src) + 1
}

func (w *WindowFlow) shutdown() {}

// Outstanding returns how many credits are currently consumed toward dst;
// tests use it to verify the window invariant.
func (w *WindowFlow) Outstanding(dst ProcID) int {
	return w.Window - w.creditsFor(dst)
}

// RateFlow is token-bucket pacing: data leaves at no more than Rate bytes
// per second with bursts up to Bucket bytes. This is the QOS discipline a
// Video-on-Demand application selects (Figure 5's FC1 vs FC2).
type RateFlow struct {
	// Rate is the sustained payload rate in bytes/second.
	Rate float64
	// Bucket is the burst capacity in bytes.
	Bucket float64

	p      *Proc
	tokens float64
	last   time.Duration // virtual/real time of last refill
}

// NewRateFlow returns a token-bucket discipline.
func NewRateFlow(bytesPerSecond, bucketBytes float64) *RateFlow {
	if bytesPerSecond <= 0 || bucketBytes <= 0 {
		panic("core: rate and bucket must be positive")
	}
	return &RateFlow{Rate: bytesPerSecond, Bucket: bucketBytes}
}

// Name implements FlowControl.
func (r *RateFlow) Name() string { return "rate" }

func (r *RateFlow) init(p *Proc) {
	r.p = p
	r.tokens = r.Bucket
	r.last = time.Duration(p.cfg.RT.Now())
}

func (r *RateFlow) refill() {
	now := time.Duration(r.p.cfg.RT.Now())
	r.tokens += r.Rate * (now - r.last).Seconds()
	if r.tokens > r.Bucket {
		r.tokens = r.Bucket
	}
	r.last = now
}

func (r *RateFlow) admit(req *sendReq) bool {
	need := float64(len(req.m.Data))
	if need > r.Bucket {
		need = r.Bucket // oversized messages drain a full bucket
	}
	r.refill()
	if r.tokens >= need {
		r.tokens -= need
		return true
	}
	// Re-enqueue once enough tokens will have accumulated.
	deficit := need - r.tokens
	wait := time.Duration(deficit / r.Rate * float64(time.Second))
	if wait < time.Microsecond {
		wait = time.Microsecond
	}
	p := r.p
	p.cfg.After(wait, func() { p.enqueueSend(req) })
	return false
}

func (r *RateFlow) onDelivered(*transport.Message) {}
func (r *RateFlow) onControl(*transport.Message)   {}
func (r *RateFlow) shutdown()                      {}

// Tokens returns the current bucket level (after refill); for tests.
func (r *RateFlow) Tokens() float64 {
	r.refill()
	return r.tokens
}

// putUint32 is a small helper shared by control-message payload writers.
func putUint32(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}

func getUint32(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
