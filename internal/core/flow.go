package core

import (
	"time"

	"repro/internal/list"
	"repro/internal/transport"
	"repro/internal/wire"
)

// FlowControl is the pluggable discipline the paper's flow-control thread
// implements (Figure 5: different applications select different mechanisms
// at run time — NCS_init(flow, error)). One instance serves one Channel:
// the discipline is a per-channel state machine, so two channels between
// the same process pair pace and window independently. Instances passed to
// core.New act as templates for default channels (fork produces a fresh
// per-channel copy); instances passed to Proc.Open are used directly and
// must not be shared across channels.
//
// Admission is non-blocking by design: the send system thread must stay
// free to carry control traffic (credit returns, acknowledgements) even
// while data is gated, otherwise two peers with full windows toward each
// other could deadlock waiting for credits neither can send. A discipline
// that cannot admit a request queues it internally and re-enqueues it via
// Proc.enqueueSend when state changes.
type FlowControl interface {
	// Name identifies the discipline.
	Name() string
	// fork returns a fresh, unbound instance with the same parameters.
	fork() FlowControl
	init(c *Channel)
	// admit either clears m for transmission (true) or takes ownership of
	// the request for deferred re-enqueue (false).
	admit(req *sendReq) bool
	// onDelivered runs when a data message has been delivered locally and
	// may generate control traffic (e.g. a credit advertisement).
	onDelivered(m *transport.Message)
	// onControl consumes this discipline's control messages.
	onControl(m *transport.Message)
	// onCredit consumes one credit advertisement word, whether it arrived
	// in a standalone control frame (onControl routes here) or
	// piggybacked on a reverse-direction data frame.
	onCredit(v uint32)
	// creditSent notifies the receiver role that a queued advertisement
	// actually left (piggybacked or flushed standalone), so threshold
	// bookkeeping tracks what the peer has really been told.
	creditSent(v uint32)
	// queued reports how many requests the discipline is holding deferred —
	// data the lane knows will re-emerge, which the flush wheel treats as
	// an imminent piggyback ride.
	queued() int
	// shutdown tears the discipline down: timers stop and requests still
	// gated inside it fail (their callers unblock; the proc's exception
	// handler reports them). Runs at Channel.Close and at process close;
	// it must be idempotent.
	shutdown()
}

// NoFlowControl is the paper's Approach-1 default: rely on the transport
// underneath (p4 over TCP provides its own flow control).
type NoFlowControl struct{}

// Name implements FlowControl.
func (NoFlowControl) Name() string                   { return "none" }
func (NoFlowControl) fork() FlowControl              { return NoFlowControl{} }
func (NoFlowControl) init(*Channel)                  {}
func (NoFlowControl) admit(*sendReq) bool            { return true }
func (NoFlowControl) onDelivered(*transport.Message) {}
func (NoFlowControl) onControl(*transport.Message)   {}
func (NoFlowControl) onCredit(uint32)                {}
func (NoFlowControl) creditSent(uint32)              {}
func (NoFlowControl) queued() int                    { return 0 }
func (NoFlowControl) shutdown()                      {}

// DefaultWindowSyncInterval is the period of WindowFlow's window-sync
// timer when the channel does not configure its own.
const DefaultWindowSyncInterval = 50 * time.Millisecond

// WindowFlow is credit-based flow control: at most Window messages may be
// outstanding (sent but not credited back) on the channel. Suited to the
// parallel/distributed application class in Figure 5 (bursty, loss-averse).
//
// The credit protocol is loss-proof by construction — it must be, because
// the carriers the paper targets (ATM fabrics under GCRA policing) drop
// cells, and a control frame is as mortal as a data frame. Instead of
// per-delivery credit pulses (where one lost pulse permanently shrinks the
// window), the receiver advertises its *cumulative* delivered count in
// every tagFlowAck payload. Credits are therefore idempotent and
// self-superseding: any later advertisement carries everything a lost one
// did, and wire.SeqNewer ordering makes duplicates and reorderings
// harmless. A periodic window-sync timer (cfg.After, so it ticks under
// both real and virtual clocks) re-advertises the count on idle channels,
// recovering even a lost *final* credit that no further delivery would
// ever repair.
//
// Flow control recovers lost credits, not lost data: a data message the
// carrier eats is the error-control tier's to retransmit (compose with
// GoBackN or SelectiveRepeat on lossy fabrics). Once error control
// redelivers it, the receiver's cumulative count advances and the window
// reopens.
//
// Advertisements ride the data plane when they can: between forced
// advertisements the cumulative count waits on the channel for a
// reverse-direction data frame to piggyback on (or the channel's flush
// timer). Every advertEvery = ¾·Window deliveries the count is flushed
// immediately so a one-way peer's window never runs dry waiting for
// reverse traffic — one standalone frame then covers the whole batch of
// deliveries, which is why steady one-way flow costs ~1/advertEvery
// control frames per message instead of one each. Loss semantics are
// untouched: a piggybacked advertisement that dies with its frame is
// superseded exactly like a standalone one.
type WindowFlow struct {
	// Window is the channel's credit (>= 1).
	Window int
	// SyncInterval is the window-sync re-advertisement period; 0 selects
	// DefaultWindowSyncInterval. Set it below the carrier's loss-recovery
	// timescale so a dropped credit stalls the sender at most one period.
	SyncInterval time.Duration

	c      *Channel
	closed bool

	// Sender side: absolute counters (serial-number arithmetic, so wrap is
	// fine). sent counts data messages admitted on the channel; credited is
	// the highest cumulative delivered count the peer has advertised.
	// outstanding = sent - credited, and admission holds it under Window.
	sent     uint32
	credited uint32
	deferred list.FIFO[*sendReq]

	// Receiver side: cumulative count of data messages delivered locally,
	// advertised to the peer piggybacked on reverse data or in standalone
	// control frames, and re-advertised on every sync tick. lastAdv is
	// the newest count actually sent; advertEvery is the delivery count
	// past lastAdv that forces an immediate standalone advertisement
	// (3/4 of the window) so the peer's window never runs dry waiting for
	// a piggyback opportunity — between thresholds the advertisement
	// rides reverse data frames or the channel's flush timer.
	delivered   uint32
	lastAdv     uint32
	advertEvery uint32
	syncOn      bool
	syncFn      func()
	// idleSyncs counts consecutive sync ticks with no intervening
	// delivery; past maxIdleSyncs the timer stops re-arming so a
	// long-lived idle channel does not chatter forever (the next delivery
	// re-arms it).
	idleSyncs int

	syncs int64 // periodic re-advertisements sent
	stale int64 // stale/duplicate advertisements ignored
}

// maxIdleSyncs bounds consecutive re-advertisements on an idle channel.
// Recovery of a lost final credit fails only if all of them are lost
// (loss-rate^25 — negligible on any fabric worth running on), and each
// delivery burst costs at most this many idle control frames.
const maxIdleSyncs = 25

// NewWindowFlow returns a window-based discipline.
func NewWindowFlow(window int) *WindowFlow {
	if window < 1 {
		panic("core: window must be >= 1")
	}
	return &WindowFlow{Window: window}
}

// Name implements FlowControl.
func (w *WindowFlow) Name() string { return "window" }

func (w *WindowFlow) fork() FlowControl {
	f := NewWindowFlow(w.Window)
	f.SyncInterval = w.SyncInterval
	return f
}

func (w *WindowFlow) init(c *Channel) {
	if w.c != nil {
		panic("core: FlowControl instance bound to two channels; pass a fresh instance per channel")
	}
	w.c = c
	if w.SyncInterval <= 0 {
		w.SyncInterval = DefaultWindowSyncInterval
	}
	w.advertEvery = uint32(3 * w.Window / 4)
	if w.advertEvery < 1 {
		w.advertEvery = 1
	}
	// Pre-bound so each re-arm schedules without a fresh closure; wrapped
	// so sharded channels run it in their lane's lock domain.
	w.syncFn = c.wrapTimer(w.syncFire)
}

func (w *WindowFlow) admit(req *sendReq) bool {
	// Admission preserves FIFO: while older requests wait for credit,
	// newer ones queue behind them even if the window has space again.
	// (The send loop never offers requests on a closed channel.)
	if w.deferred.Size() == 0 && w.outstanding() < w.Window {
		w.sent++
		return true
	}
	w.deferred.Push(req)
	return false
}

func (w *WindowFlow) outstanding() int { return int(w.sent - w.credited) }

func (w *WindowFlow) onDelivered(m *transport.Message) {
	w.delivered++
	w.idleSyncs = 0
	if w.delivered-w.lastAdv >= w.advertEvery {
		// Enough credit has accumulated that the peer's window may be
		// running dry: advertise right now, standalone if need be.
		w.advertise()
	} else {
		// Defer: the advertisement rides the next data frame toward the
		// peer, or the channel's flush timer sends it standalone. Either
		// way it is cumulative, so one frame covers every delivery since
		// the last advertisement.
		w.c.queueCredit(w.delivered)
	}
	w.armSync()
}

// advertise flushes the cumulative delivered count to the sender
// immediately. Absolute, not incremental: losing this frame costs nothing
// once any later one (or a sync tick's re-advertisement) gets through.
// On a sharded lane "immediately" means at the end of the current service
// pass: a data frame queued toward the peer in the same pass carries the
// advertisement for free (the cross-channel coalescing that keeps the
// piggyback share high at lane counts above one), and only a count still
// pending after the pass goes standalone. Classically the standalone
// frame flushes right here, as before.
func (w *WindowFlow) advertise() {
	w.c.pendCredit = w.delivered
	w.c.pendCreditOn = true
	if ln := w.c.laneOf(); ln != nil {
		ln.pendAddLocked(w.c)
		if !w.c.mustFlushOn {
			w.c.mustFlushOn = true
			ln.mustFlush = append(ln.mustFlush, w.c)
		}
		return
	}
	w.c.flushCtrl()
}

// creditSent implements FlowControl: a queued advertisement left the
// process (on a data frame or standalone), so the threshold counts from
// this value now.
func (w *WindowFlow) creditSent(v uint32) { w.lastAdv = v }

func (w *WindowFlow) onControl(m *transport.Message) {
	forEachCtrlWord(m, w.onCredit)
}

// onCredit consumes one cumulative advertisement, standalone or
// piggybacked.
func (w *WindowFlow) onCredit(adv uint32) {
	if !wire.SeqNewer(adv, w.credited) {
		// Duplicate or reordered advertisement: a newer one already
		// superseded it. Credits never move backwards.
		w.stale++
		return
	}
	w.credited = adv
	w.release()
}

// release drains deferred requests into the space the advertisement
// opened, oldest first.
func (w *WindowFlow) release() {
	for w.deferred.Size() > 0 && w.outstanding() < w.Window {
		req := w.deferred.Pop()
		w.sent++
		req.flowOK = true
		w.c.p.enqueueSend(req)
	}
}

func (w *WindowFlow) armSync() {
	if w.syncOn || w.closed {
		return
	}
	w.syncOn = true
	w.c.p.cfg.After(w.SyncInterval, w.syncFn)
}

// syncFire is the window-sync timer: re-advertise the cumulative count so
// an idle channel heals a lost trailing credit. armSync starts it lazily
// on first delivery (a send-only channel end never ticks), it re-arms
// while deliveries keep coming, and it stops after maxIdleSyncs ticks of
// silence or at shutdown.
func (w *WindowFlow) syncFire() {
	w.syncOn = false
	if w.closed || w.idleSyncs >= maxIdleSyncs {
		return
	}
	w.idleSyncs++
	w.syncs++
	w.advertise()
	w.armSync()
}

func (w *WindowFlow) queued() int { return w.deferred.Size() }

func (w *WindowFlow) shutdown() {
	if w.closed {
		return
	}
	w.closed = true
	var reqs []*sendReq
	for w.deferred.Size() > 0 {
		reqs = append(reqs, w.deferred.Pop())
	}
	w.c.p.failGated(w.c, reqs, "window flow")
}

// Outstanding returns how many messages are sent but not yet credited;
// tests use it to verify the window invariant. It can exceed zero
// transiently under credit loss, but never exceeds Window, and converges
// back as cumulative advertisements land.
func (w *WindowFlow) Outstanding() int {
	w.c.laneLock()
	defer w.c.laneUnlock()
	return w.outstanding()
}

// Syncs returns how many periodic window-sync re-advertisements this end
// has sent; for tests and experiment reporting.
func (w *WindowFlow) Syncs() int64 {
	w.c.laneLock()
	defer w.c.laneUnlock()
	return w.syncs
}

// StaleCredits returns how many stale or duplicate credit advertisements
// were ignored; for tests and experiment reporting.
func (w *WindowFlow) StaleCredits() int64 {
	w.c.laneLock()
	defer w.c.laneUnlock()
	return w.stale
}

// RateFlow is token-bucket pacing: data leaves at no more than Rate bytes
// per second with bursts up to Bucket bytes. This is the QOS discipline a
// Video-on-Demand application selects (Figure 5's FC1 vs FC2).
type RateFlow struct {
	// Rate is the sustained payload rate in bytes/second.
	Rate float64
	// Bucket is the burst capacity in bytes.
	Bucket float64

	c      *Channel
	closed bool
	tokens float64
	last   time.Duration // virtual/real time of last refill

	// deferred holds requests awaiting tokens in send order; a single
	// wakeup timer sized for the head request drains it FIFO, so a small
	// message paced behind a large one can never overtake it.
	deferred list.FIFO[*sendReq]
	timerOn  bool
	fireFn   func()
}

// NewRateFlow returns a token-bucket discipline.
func NewRateFlow(bytesPerSecond, bucketBytes float64) *RateFlow {
	if bytesPerSecond <= 0 || bucketBytes <= 0 {
		panic("core: rate and bucket must be positive")
	}
	return &RateFlow{Rate: bytesPerSecond, Bucket: bucketBytes}
}

// Name implements FlowControl.
func (r *RateFlow) Name() string { return "rate" }

func (r *RateFlow) fork() FlowControl { return NewRateFlow(r.Rate, r.Bucket) }

func (r *RateFlow) init(c *Channel) {
	if r.c != nil {
		panic("core: FlowControl instance bound to two channels; pass a fresh instance per channel")
	}
	r.c = c
	r.tokens = r.Bucket
	r.last = time.Duration(c.p.cfg.RT.Now())
	r.fireFn = c.wrapTimer(r.timerFire)
}

func (r *RateFlow) refill() {
	now := time.Duration(r.c.p.cfg.RT.Now())
	r.tokens += r.Rate * (now - r.last).Seconds()
	if r.tokens > r.Bucket {
		r.tokens = r.Bucket
	}
	r.last = now
}

// needFor is the token cost of a request; oversized messages drain a full
// bucket.
func (r *RateFlow) needFor(req *sendReq) float64 {
	need := float64(len(req.m.Data))
	if need > r.Bucket {
		need = r.Bucket
	}
	return need
}

func (r *RateFlow) admit(req *sendReq) bool {
	if r.deferred.Size() > 0 {
		// Older requests are still waiting for tokens: queue behind them
		// regardless of this one's size, preserving FIFO on the channel.
		r.deferred.Push(req)
		return false
	}
	r.refill()
	if need := r.needFor(req); r.tokens >= need {
		r.tokens -= need
		return true
	}
	r.deferred.Push(req)
	r.armTimer()
	return false
}

// armTimer schedules one wakeup for when the head request's deficit will
// have accumulated. One timer serves the whole queue; per-request timers
// would race each other and reorder the channel.
func (r *RateFlow) armTimer() {
	if r.timerOn || r.closed || r.deferred.Size() == 0 {
		return
	}
	deficit := r.needFor(r.deferred.Peek()) - r.tokens
	wait := time.Duration(deficit / r.Rate * float64(time.Second))
	if wait < time.Microsecond {
		wait = time.Microsecond
	}
	r.timerOn = true
	r.c.p.cfg.After(wait, r.fireFn)
}

func (r *RateFlow) timerFire() {
	r.timerOn = false
	if r.closed {
		// Channel closed while the timer was in flight: shutdown already
		// failed the deferred requests; nothing to pace.
		return
	}
	r.refill()
	for r.deferred.Size() > 0 {
		need := r.needFor(r.deferred.Peek())
		if r.tokens < need {
			break
		}
		r.tokens -= need
		req := r.deferred.Pop()
		req.flowOK = true
		r.c.p.enqueueSend(req)
	}
	r.armTimer()
}

func (r *RateFlow) onDelivered(*transport.Message) {}
func (r *RateFlow) onControl(*transport.Message)   {}
func (r *RateFlow) onCredit(uint32)                {}
func (r *RateFlow) creditSent(uint32)              {}
func (r *RateFlow) queued() int                    { return r.deferred.Size() }

func (r *RateFlow) shutdown() {
	if r.closed {
		return
	}
	r.closed = true
	var reqs []*sendReq
	for r.deferred.Size() > 0 {
		reqs = append(reqs, r.deferred.Pop())
	}
	r.c.p.failGated(r.c, reqs, "rate pacing")
}

// Tokens returns the current bucket level (after refill); for tests.
func (r *RateFlow) Tokens() float64 {
	r.c.laneLock()
	defer r.c.laneUnlock()
	r.refill()
	return r.tokens
}

// ctrlPayload reads the uint32 payload of a control message.
func ctrlPayload(m *transport.Message) uint32 { return wire.Uint32(m.Data) }

// forEachCtrlWord iterates the 4-byte words of a control payload in order.
// Flush frames batch several acknowledgements into one frame (selective
// repeat's ack bursts); cumulative consumers are word-order insensitive
// anyway.
func forEachCtrlWord(m *transport.Message, fn func(uint32)) {
	for b := m.Data; len(b) >= 4; b = b[4:] {
		fn(wire.Uint32(b))
	}
}
