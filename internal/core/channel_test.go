package core

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// TestTwoChannelsTwoDisciplines is the tentpole in miniature: one process
// pair runs a rate-paced channel and a windowed go-back-N channel
// concurrently, each with its own state machine and counters.
func TestTwoChannelsTwoDisciplines(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 2, mem, nil)
	const (
		frames    = 8
		frameSize = 2000
		bulkMsgs  = 6
		bulkSize  = 5000
	)
	// 200 KB/s with a one-frame bucket paces ~10ms/frame.
	video0 := procs[0].Open(1, ChannelConfig{ID: 1, Priority: 7, Flow: NewRateFlow(200e3, frameSize)})
	bulk0 := procs[0].Open(1, ChannelConfig{ID: 2, Flow: NewWindowFlow(2), Error: NewGoBackN(4, 50*time.Millisecond)})
	video1 := procs[1].Open(0, ChannelConfig{ID: 1, Priority: 7})
	bulk1 := procs[1].Open(0, ChannelConfig{ID: 2, Flow: NewWindowFlow(2), Error: NewGoBackN(4, 50*time.Millisecond)})

	procs[0].TCreate("video", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < frames; k++ {
			video0.Send(th, 0, make([]byte, frameSize))
		}
	})
	procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < bulkMsgs; k++ {
			bulk0.Send(th, 1, make([]byte, bulkSize))
		}
	})
	var gotFrames, gotBulk int
	procs[1].TCreate("viewer", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < frames; k++ {
			data, from := video1.Recv(th, Any)
			if len(data) != frameSize || from.Proc != 0 {
				t.Errorf("frame %d: %d bytes from %+v", k, len(data), from)
			}
			gotFrames++
		}
	})
	procs[1].TCreate("sink", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < bulkMsgs; k++ {
			data, _ := bulk1.Recv(th, Any)
			if len(data) != bulkSize {
				t.Errorf("bulk %d: %d bytes", k, len(data))
			}
			gotBulk++
		}
	})
	start := time.Now()
	runReal(procs)
	elapsed := time.Since(start)

	if gotFrames != frames || gotBulk != bulkMsgs {
		t.Fatalf("delivered %d/%d frames, %d/%d bulk", gotFrames, frames, gotBulk, bulkMsgs)
	}
	// The rate channel must actually pace: 8 frames of 2000 B at 200 KB/s
	// with a one-frame head start needs >= ~70 ms.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("run finished in %v: rate channel did not pace", elapsed)
	}
	vs, bs := video0.Stats(), bulk0.Stats()
	if vs.Sent != frames || vs.BytesSent != frames*frameSize {
		t.Fatalf("video stats: %+v", vs)
	}
	if bs.Sent != bulkMsgs || bs.BytesSent != bulkMsgs*bulkSize {
		t.Fatalf("bulk stats: %+v", bs)
	}
	if vs.Flow != "rate" || bs.Error != "go-back-n" {
		t.Fatalf("discipline names: video=%+v bulk=%+v", vs, bs)
	}
	rv, rb := video1.Stats(), bulk1.Stats()
	if rv.Received != frames || rb.Received != bulkMsgs || rb.BytesReceived != bulkMsgs*bulkSize {
		t.Fatalf("receiver stats: video=%+v bulk=%+v", rv, rb)
	}
}

// TestChannelTrafficInvisibleToDefaultRecv: channel matching is exact, so
// a wildcard Thread.Recv never steals an explicit channel's message.
func TestChannelTrafficInvisibleToDefaultRecv(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	ch0 := procs[0].Open(1, ChannelConfig{ID: 3})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 3})
	var gotDefault, gotChannel []byte
	procs[0].TCreate("send", mts.PrioDefault, func(th *Thread) {
		ch0.Send(th, 0, []byte("on the channel"))
		th.Send(0, 1, []byte("on default"))
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		// Wildcard default Recv first: it must match the default-channel
		// message even though the channel message arrived earlier.
		gotDefault, _ = th.Recv(Any, Any)
		gotChannel, _ = ch1.Recv(th, Any)
	})
	eng.Run()
	if string(gotDefault) != "on default" || string(gotChannel) != "on the channel" {
		t.Fatalf("default=%q channel=%q", gotDefault, gotChannel)
	}
}

// TestChannelPriorityDrainOrder: while the send system thread is busy
// draining a large transfer, a high-priority channel's queued message must
// reach the wire before a low-priority one queued earlier.
func TestChannelPriorityDrainOrder(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	low0 := procs[0].Open(1, ChannelConfig{ID: 1, Priority: 0})
	high0 := procs[0].Open(1, ChannelConfig{ID: 2, Priority: 7})
	low1 := procs[1].Open(0, ChannelConfig{ID: 1, Priority: 0})
	high1 := procs[1].Open(0, ChannelConfig{ID: 2, Priority: 7})

	// Creation order fixes run order at equal thread priority: the bulk
	// default send occupies the wire first, then "low" enqueues before
	// "high" does.
	procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, make([]byte, 512*1024))
	})
	procs[0].TCreate("low", mts.PrioDefault, func(th *Thread) {
		low0.Send(th, 1, []byte("low")) // receiver thread indices: drain=0, rlow=1, rhigh=2
	})
	procs[0].TCreate("high", mts.PrioDefault, func(th *Thread) {
		high0.Send(th, 2, []byte("high"))
	})

	var order []string
	procs[1].TCreate("drain", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any) // the bulk message
	})
	procs[1].TCreate("rlow", mts.PrioDefault, func(th *Thread) {
		low1.Recv(th, Any)
		order = append(order, "low")
	})
	procs[1].TCreate("rhigh", mts.PrioDefault, func(th *Thread) {
		high1.Recv(th, Any)
		order = append(order, "high")
	})
	eng.Run()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("arrival order = %v, want high first", order)
	}
}

// TestUnopenedChannelRaisesException: data arriving on a channel the
// receiver never opened is dropped through the exception handler instead
// of being misdelivered.
func TestUnopenedChannelRaisesException(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	ch := procs[0].Open(1, ChannelConfig{ID: 9})
	var caught error
	procs[1].OnException(func(err error) { caught = err })
	procs[0].TCreate("send", mts.PrioDefault, func(th *Thread) {
		ch.Send(th, 0, []byte("into the void"))
	})
	procs[1].TCreate("alive", mts.PrioDefault, func(th *Thread) {
		// Stay alive long enough for the message to arrive.
		th.Compute(50*time.Millisecond, nil)
	})
	eng.Run()
	if caught == nil {
		t.Fatal("no exception for data on an unopened channel")
	}
}

func TestChannelValidation(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 1, mem, nil)
	p := procs[0]
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("id 0", func() { p.Open(1, ChannelConfig{ID: 0}) })
	mustPanic("id too big", func() { p.Open(1, ChannelConfig{ID: MaxChannelID + 1}) })
	mustPanic("priority range", func() { p.Open(1, ChannelConfig{ID: 1, Priority: NumChannelPriorities}) })
	p.Open(1, ChannelConfig{ID: 1})
	mustPanic("duplicate", func() { p.Open(1, ChannelConfig{ID: 1}) })
	shared := NewWindowFlow(2)
	p.Open(1, ChannelConfig{ID: 2, Flow: shared})
	mustPanic("shared discipline", func() { p.Open(1, ChannelConfig{ID: 3, Flow: shared}) })
	// Drain the runtime so the leftover system threads don't trip the
	// deadlock detector in later tests.
	p.TCreate("noop", mts.PrioDefault, func(*Thread) {})
	runReal(procs)
}

// TestPrioQueueOrder pins the queue discipline the system threads dispatch
// by: higher levels drain first, FIFO within a level, prepend jumps the
// line of its own level only.
func TestPrioQueueOrder(t *testing.T) {
	var q prioQueue[int]
	q.push(0, 1)
	q.push(3, 2)
	q.push(0, 3)
	q.push(ctrlLevel, 4)
	q.push(3, 5)
	want := []int{4, 2, 5, 1, 3}
	for i, w := range want {
		if q.empty() {
			t.Fatalf("empty after %d pops", i)
		}
		if got := q.pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !q.empty() {
		t.Fatal("queue not empty")
	}

	q.push(2, 10)
	q.push(2, 11)
	q.prependLevel(2, []int{8, 9})
	for _, w := range []int{8, 9, 10, 11} {
		if got := q.pop(); got != w {
			t.Fatalf("after prepend: got %d, want %d", got, w)
		}
	}
}
