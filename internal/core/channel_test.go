package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
)

// TestTwoChannelsTwoDisciplines is the tentpole in miniature: one process
// pair runs a rate-paced channel and a windowed go-back-N channel
// concurrently, each with its own state machine and counters.
func TestTwoChannelsTwoDisciplines(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 2, mem, nil)
	const (
		frames    = 8
		frameSize = 2000
		bulkMsgs  = 6
		bulkSize  = 5000
	)
	// 200 KB/s with a one-frame bucket paces ~10ms/frame.
	video0 := procs[0].Open(1, ChannelConfig{ID: 1, Priority: 7, Flow: NewRateFlow(200e3, frameSize)})
	bulk0 := procs[0].Open(1, ChannelConfig{ID: 2, Flow: NewWindowFlow(2), Error: NewGoBackN(4, 50*time.Millisecond)})
	video1 := procs[1].Open(0, ChannelConfig{ID: 1, Priority: 7})
	bulk1 := procs[1].Open(0, ChannelConfig{ID: 2, Flow: NewWindowFlow(2), Error: NewGoBackN(4, 50*time.Millisecond)})

	procs[0].TCreate("video", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < frames; k++ {
			video0.Send(th, 0, make([]byte, frameSize))
		}
	})
	procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < bulkMsgs; k++ {
			bulk0.Send(th, 1, make([]byte, bulkSize))
		}
	})
	var gotFrames, gotBulk int
	procs[1].TCreate("viewer", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < frames; k++ {
			data, from := video1.Recv(th, Any)
			if len(data) != frameSize || from.Proc != 0 {
				t.Errorf("frame %d: %d bytes from %+v", k, len(data), from)
			}
			gotFrames++
		}
	})
	procs[1].TCreate("sink", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < bulkMsgs; k++ {
			data, _ := bulk1.Recv(th, Any)
			if len(data) != bulkSize {
				t.Errorf("bulk %d: %d bytes", k, len(data))
			}
			gotBulk++
		}
	})
	start := time.Now()
	runReal(procs)
	elapsed := time.Since(start)

	if gotFrames != frames || gotBulk != bulkMsgs {
		t.Fatalf("delivered %d/%d frames, %d/%d bulk", gotFrames, frames, gotBulk, bulkMsgs)
	}
	// The rate channel must actually pace: 8 frames of 2000 B at 200 KB/s
	// with a one-frame head start needs >= ~70 ms.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("run finished in %v: rate channel did not pace", elapsed)
	}
	vs, bs := video0.Stats(), bulk0.Stats()
	if vs.Sent != frames || vs.BytesSent != frames*frameSize {
		t.Fatalf("video stats: %+v", vs)
	}
	if bs.Sent != bulkMsgs || bs.BytesSent != bulkMsgs*bulkSize {
		t.Fatalf("bulk stats: %+v", bs)
	}
	if vs.Flow != "rate" || bs.Error != "go-back-n" {
		t.Fatalf("discipline names: video=%+v bulk=%+v", vs, bs)
	}
	rv, rb := video1.Stats(), bulk1.Stats()
	if rv.Received != frames || rb.Received != bulkMsgs || rb.BytesReceived != bulkMsgs*bulkSize {
		t.Fatalf("receiver stats: video=%+v bulk=%+v", rv, rb)
	}
}

// TestChannelTrafficInvisibleToDefaultRecv: channel matching is exact, so
// a wildcard Thread.Recv never steals an explicit channel's message.
func TestChannelTrafficInvisibleToDefaultRecv(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	ch0 := procs[0].Open(1, ChannelConfig{ID: 3})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 3})
	var gotDefault, gotChannel []byte
	procs[0].TCreate("send", mts.PrioDefault, func(th *Thread) {
		ch0.Send(th, 0, []byte("on the channel"))
		th.Send(0, 1, []byte("on default"))
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		// Wildcard default Recv first: it must match the default-channel
		// message even though the channel message arrived earlier.
		gotDefault, _ = th.Recv(Any, Any)
		gotChannel, _ = ch1.Recv(th, Any)
	})
	eng.Run()
	if string(gotDefault) != "on default" || string(gotChannel) != "on the channel" {
		t.Fatalf("default=%q channel=%q", gotDefault, gotChannel)
	}
}

// TestChannelPriorityDrainOrder: while the send system thread is busy
// draining a large transfer, a high-priority channel's queued message must
// reach the wire before a low-priority one queued earlier.
func TestChannelPriorityDrainOrder(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	low0 := procs[0].Open(1, ChannelConfig{ID: 1, Priority: 0})
	high0 := procs[0].Open(1, ChannelConfig{ID: 2, Priority: 7})
	low1 := procs[1].Open(0, ChannelConfig{ID: 1, Priority: 0})
	high1 := procs[1].Open(0, ChannelConfig{ID: 2, Priority: 7})

	// Creation order fixes run order at equal thread priority: the bulk
	// default send occupies the wire first, then "low" enqueues before
	// "high" does.
	procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, make([]byte, 512*1024))
	})
	procs[0].TCreate("low", mts.PrioDefault, func(th *Thread) {
		low0.Send(th, 1, []byte("low")) // receiver thread indices: drain=0, rlow=1, rhigh=2
	})
	procs[0].TCreate("high", mts.PrioDefault, func(th *Thread) {
		high0.Send(th, 2, []byte("high"))
	})

	var order []string
	procs[1].TCreate("drain", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any) // the bulk message
	})
	procs[1].TCreate("rlow", mts.PrioDefault, func(th *Thread) {
		low1.Recv(th, Any)
		order = append(order, "low")
	})
	procs[1].TCreate("rhigh", mts.PrioDefault, func(th *Thread) {
		high1.Recv(th, Any)
		order = append(order, "high")
	})
	eng.Run()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("arrival order = %v, want high first", order)
	}
}

// TestUnopenedChannelRaisesException: data arriving on a channel the
// receiver never opened is dropped through the exception handler instead
// of being misdelivered.
func TestUnopenedChannelRaisesException(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	ch := procs[0].Open(1, ChannelConfig{ID: 9})
	var caught error
	procs[1].OnException(func(err error) { caught = err })
	procs[0].TCreate("send", mts.PrioDefault, func(th *Thread) {
		ch.Send(th, 0, []byte("into the void"))
	})
	procs[1].TCreate("alive", mts.PrioDefault, func(th *Thread) {
		// Stay alive long enough for the message to arrive.
		th.Compute(50*time.Millisecond, nil)
	})
	eng.Run()
	if caught == nil {
		t.Fatal("no exception for data on an unopened channel")
	}
}

func TestChannelValidation(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 1, mem, nil)
	p := procs[0]
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("id 0", func() { p.Open(1, ChannelConfig{ID: 0}) })
	mustPanic("id too big", func() { p.Open(1, ChannelConfig{ID: MaxChannelID + 1}) })
	mustPanic("priority range", func() { p.Open(1, ChannelConfig{ID: 1, Priority: NumChannelPriorities}) })
	p.Open(1, ChannelConfig{ID: 1})
	mustPanic("duplicate", func() { p.Open(1, ChannelConfig{ID: 1}) })
	shared := NewWindowFlow(2)
	p.Open(1, ChannelConfig{ID: 2, Flow: shared})
	mustPanic("shared discipline", func() { p.Open(1, ChannelConfig{ID: 3, Flow: shared}) })
	// Drain the runtime so the leftover system threads don't trip the
	// deadlock detector in later tests.
	p.TCreate("noop", mts.PrioDefault, func(*Thread) {})
	runReal(procs)
}

// TestCloseFailsWindowGatedSends: a thread blocked in Send because window
// flow deferred its request must not hang forever when the channel closes
// — Close fails the gated send, the caller unblocks, and the exception
// handler reports the abandonment. Further sends fail with the typed
// ChannelClosedError through the exception handler.
func TestCloseFailsWindowGatedSends(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 2, mem, nil)
	var caught []error
	procs[0].OnException(func(err error) { caught = append(caught, err) })
	// The receiving end runs no flow control, so it never returns credits:
	// the sender's second message gates forever until Close fails it.
	ch0 := procs[0].Open(1, ChannelConfig{ID: 1, Flow: NewWindowFlow(1)})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 1})
	flow0 := ch0.Flow().(*WindowFlow)

	var sendReturned, sendAfterCloseReturned bool
	procs[0].TCreate("blocked", mts.PrioDefault, func(th *Thread) {
		ch0.Send(th, 0, []byte("one")) // consumes the single credit
		ch0.Send(th, 0, []byte("two")) // gated: returns only via Close
		sendReturned = true
	})
	procs[0].TCreate("closer", mts.PrioDefault, func(th *Thread) {
		for flow0.deferred.Size() == 0 { // until "blocked" gates
			th.Yield()
		}
		ch0.Close()
		if !ch0.Closed() {
			t.Error("Closed() false after Close")
		}
		ch0.Send(th, 0, []byte("three"))
		sendAfterCloseReturned = true
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		ch1.Recv(th, Any) // only the first message ever arrives
	})
	runReal(procs)

	if !sendReturned {
		t.Fatal("gated send never returned after Close")
	}
	if !sendAfterCloseReturned {
		t.Fatal("Send on a closed channel did not return")
	}
	if len(caught) == 0 {
		t.Fatal("Close failed a gated send without reporting it")
	}
	var cce *ChannelClosedError
	found := false
	for _, err := range caught {
		if errors.As(err, &cce) {
			found = true
			if cce.ID != 1 || cce.Peer != 1 {
				t.Fatalf("ChannelClosedError names channel %d to proc %d, want 1 to 1", cce.ID, cce.Peer)
			}
		}
	}
	if !found {
		t.Fatalf("no ChannelClosedError among exceptions: %v", caught)
	}
}

// TestCloseFailsRatePacedSends: same property for the pacing discipline —
// a send waiting for tokens fails at Close instead of hanging, and the
// pacing timer still in flight must no-op after close instead of
// re-enqueuing a dead request.
func TestCloseFailsRatePacedSends(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 2, mem, nil)
	var caught []error
	procs[0].OnException(func(err error) { caught = append(caught, err) })
	// 1 KB/s: the second 1 KB message waits ~1 s for tokens — far beyond
	// the close point.
	ch0 := procs[0].Open(1, ChannelConfig{ID: 1, Flow: NewRateFlow(1000, 1000)})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 1})
	rate0 := ch0.Flow().(*RateFlow)

	var sendReturned bool
	start := time.Now()
	procs[0].TCreate("blocked", mts.PrioDefault, func(th *Thread) {
		ch0.Send(th, 0, make([]byte, 1000)) // drains the bucket
		ch0.Send(th, 0, make([]byte, 1000)) // paced ~1 s out: fails at Close
		sendReturned = true
	})
	procs[0].TCreate("closer", mts.PrioDefault, func(th *Thread) {
		for rate0.deferred.Size() == 0 { // until "blocked" is paced
			th.Yield()
		}
		ch0.Close()
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		ch1.Recv(th, Any)
	})
	runReal(procs)

	if !sendReturned {
		t.Fatal("paced send never returned after Close")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("close took %v: the paced send waited for tokens instead of failing", elapsed)
	}
	if len(caught) == 0 {
		t.Fatal("Close failed a paced send without reporting it")
	}
}

// TestCloseFailsSendQueuedRequest drives the Send-races-Close window: the
// request is already past sendOn's closed check and queued in the send
// system thread's priority queue (the send thread is busy draining a bulk
// transfer) when Close runs. The send loop must fail it on pop — caller
// unblocked, exception raised — instead of admitting it into a torn-down
// discipline or panicking.
func TestCloseFailsSendQueuedRequest(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var caught []error
	procs[0].OnException(func(err error) { caught = append(caught, err) })
	ch0 := procs[0].Open(1, ChannelConfig{ID: 5, Flow: NewWindowFlow(4)})
	procs[1].Open(0, ChannelConfig{ID: 5, Flow: NewWindowFlow(4)})

	var sendReturned bool
	// Creation order fixes run order: "bulk" occupies the send thread with
	// a long wire drain; "racer" then queues a channel-5 send behind it;
	// "closer" closes the channel while that request still sits in sendQ.
	procs[0].TCreate("bulk", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, make([]byte, 4<<20)) // ~0.3 s of virtual drain time
	})
	procs[0].TCreate("racer", mts.PrioDefault, func(th *Thread) {
		th.Compute(time.Millisecond, nil)
		ch0.Send(th, 1, []byte("queued behind bulk"))
		sendReturned = true
	})
	procs[0].TCreate("closer", mts.PrioDefault, func(th *Thread) {
		th.Compute(2*time.Millisecond, nil) // after racer queued, before pop
		ch0.Close()
	})
	procs[1].TCreate("drain", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any) // the bulk message; channel-5 message must die
	})
	eng.Run()

	if !sendReturned {
		t.Fatal("queued send never returned after Close")
	}
	if len(caught) == 0 {
		t.Fatal("send-races-Close was not reported through the exception handler")
	}
}

// TestCloseFailsGoBackNGatedSends: the same no-hang property for the
// error-control tier — a send deferred by a full go-back-N window fails at
// Close, while the in-flight window keeps draining (and, with the peer
// never acking, is eventually abandoned through the exception handler).
func TestCloseFailsGoBackNGatedSends(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 2, mem, nil)
	var caught []error
	procs[0].OnException(func(err error) { caught = append(caught, err) })
	gbn := NewGoBackN(1, 5*time.Millisecond)
	gbn.MaxRetries = 3
	ch0 := procs[0].Open(1, ChannelConfig{ID: 1, Error: gbn})
	ch1 := procs[1].Open(0, ChannelConfig{ID: 1}) // no error control: never acks

	var sendReturned bool
	procs[0].TCreate("blocked", mts.PrioDefault, func(th *Thread) {
		ch0.Send(th, 0, []byte("one")) // fills the 1-message ARQ window
		ch0.Send(th, 0, []byte("two")) // deferred: returns only via Close
		sendReturned = true
	})
	procs[0].TCreate("closer", mts.PrioDefault, func(th *Thread) {
		for len(gbn.deferred) == 0 { // until "blocked" gates
			th.Yield()
		}
		ch0.Close()
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		ch1.Recv(th, Any)
	})
	runReal(procs)

	if !sendReturned {
		t.Fatal("go-back-N-gated send never returned after Close")
	}
	if len(caught) == 0 {
		t.Fatal("Close failed a gated send without reporting it")
	}
}

// TestRateFlowPreservesFIFO: a small message submitted while a large one
// is waiting for tokens must queue behind it, not overtake it on its
// smaller deficit — the paced channel is FIFO. (The old implementation
// re-enqueued each deferred request on its own timer, so the small
// message's shorter wait let it leapfrog the large one.)
func TestRateFlowPreservesFIFO(t *testing.T) {
	mem := transport.NewMem()
	// 100 KB/s with a one-big-message bucket: big #1 passes instantly,
	// big #2 waits ~80 ms for tokens.
	procs := realCluster(t, 2, mem, func(i int) (FlowControl, ErrorControl) {
		return NewRateFlow(1e5, 8000), nil
	})
	rate0 := procs[0].DefaultChannel(1).Flow().(*RateFlow)
	var order []int
	procs[0].TCreate("big", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, make([]byte, 8000))
		th.Send(0, 1, make([]byte, 8000))
	})
	procs[0].TCreate("small", mts.PrioDefault, func(th *Thread) {
		for rate0.deferred.Size() == 0 { // until big #2 is token-gated
			th.Yield()
		}
		// A 100 B message: its own deficit clears in ~1 ms, 80× sooner
		// than big #2's. It must still queue behind it.
		th.Send(0, 1, make([]byte, 100))
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < 3; k++ {
			data, _ := th.Recv(Any, Any)
			order = append(order, len(data))
		}
	})
	runReal(procs)
	want := []int{8000, 8000, 100}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("paced channel reordered: sizes %v, want %v", order, want)
		}
	}
}

// TestPrioQueueOrder pins the queue discipline the system threads dispatch
// by: higher levels drain first, FIFO within a level, prepend jumps the
// line of its own level only.
func TestPrioQueueOrder(t *testing.T) {
	var q prioQueue[int]
	q.push(0, 1)
	q.push(3, 2)
	q.push(0, 3)
	q.push(ctrlLevel, 4)
	q.push(3, 5)
	want := []int{4, 2, 5, 1, 3}
	for i, w := range want {
		if q.empty() {
			t.Fatalf("empty after %d pops", i)
		}
		if got := q.pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !q.empty() {
		t.Fatal("queue not empty")
	}

	q.push(2, 10)
	q.push(2, 11)
	q.prependLevel(2, []int{8, 9})
	for _, w := range []int{8, 9, 10, 11} {
		if got := q.pop(); got != w {
			t.Fatalf("after prepend: got %d, want %d", got, w)
		}
	}
}

// TestChannelTraceLanes: with a Tracer configured, every channel gets its
// own timeline lane named "<TraceName>/ch<id>><peer>", so a traced run
// shows which traffic class occupied the send path when.
func TestChannelTraceLanes(t *testing.T) {
	mem := transport.NewMem()
	rtA := mts.New(mts.Config{Name: "laneA", IdleTimeout: 10 * time.Second})
	rtB := mts.New(mts.Config{Name: "laneB", IdleTimeout: 10 * time.Second})
	rec := trace.NewRecorder(rtA.Clock())
	pa := New(Config{ID: 0, RT: rtA, Endpoint: mem.Attach(0, rtA), Tracer: rec, TraceName: "p0"})
	pb := New(Config{ID: 1, RT: rtB, Endpoint: mem.Attach(1, rtB)})

	ca := pa.Open(1, ChannelConfig{ID: 5, Priority: 3})
	cb := pb.Open(0, ChannelConfig{ID: 5, Priority: 3})
	pa.TCreate("tx", mts.PrioDefault, func(th *Thread) {
		for i := 0; i < 3; i++ {
			ca.Send(th, 0, []byte("lane"))
		}
	})
	var got int
	pb.TCreate("rx", mts.PrioDefault, func(th *Thread) {
		buf := make([]byte, 16)
		for i := 0; i < 3; i++ {
			cb.RecvInto(th, buf, Any)
			got++
		}
	})
	runReal([]*Proc{pa, pb})

	if got != 3 {
		t.Fatalf("delivered %d of 3", got)
	}
	if rec.Timeline("p0/ch5>1") == nil {
		t.Fatalf("no trace lane for channel 5; rows: %v", rec.Names())
	}
	// The default channel gets a lane too once it carries traffic — but
	// only channels that transmitted appear, so an unused ID is absent.
	if rec.Timeline("p0/ch9>1") != nil {
		t.Fatal("lane appeared for a channel that never existed")
	}
}
