package core

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/transport"
)

// Message-passing filters (paper Figures 6 and 12): adapters that map the
// primitives of existing tools onto NCS so "any parallel/distributed
// application written using these tools can be ported to NCS without any
// change". The p4 filter is implemented here; its API mirrors internal/p4
// but every call rides the NCS system threads, so a program ported through
// the filter gains non-blocking-process semantics for free when it runs
// multiple threads.

// P4Filter presents p4-style typed process-addressed primitives on top of
// an NCS thread.
type P4Filter struct {
	t *Thread
}

// P4 returns the p4-style view of an NCS thread.
func P4(t *Thread) *P4Filter { return &P4Filter{t: t} }

// Send is p4_send: typed, process-addressed. It maps onto an NCS tagged
// send targeted at the peer's same-index thread.
func (f *P4Filter) Send(typ int, to ProcID, data []byte) {
	f.t.SendTagged(typ, f.t.idx, to, data)
}

// Recv is p4_recv with -1 wildcards: *typ and *from are in/out parameters
// updated to the actual type and source.
func (f *P4Filter) Recv(typ *int, from *ProcID) []byte {
	wantTag := Any
	if typ != nil {
		wantTag = *typ
	}
	wantFrom := ProcID(Any)
	if from != nil {
		wantFrom = *from
	}
	p := f.t.proc
	// Match on tag and source process only (p4 has no thread addressing):
	// accept from any source thread.
	data, addr, tag := f.t.recvTagOut(wantTag, Any, wantFrom)
	_ = p
	if typ != nil {
		*typ = tag
	}
	if from != nil {
		*from = addr.Proc
	}
	return data
}

// MessagesAvailable is p4_messages_available.
func (f *P4Filter) MessagesAvailable() bool {
	return f.t.MessagesAvailable(Any, ProcID(Any))
}

// recvTagOut is RecvTagged that also reports the matched tag; it listens
// on the default channel.
func (t *Thread) recvTagOut(tag, fromThread int, fromProc ProcID) ([]byte, Addr, int) {
	return t.recvOn(0, tag, fromThread, fromProc)
}

// recvOn is the blocking receive body shared by Thread.Recv (channel 0)
// and Channel.Recv. The returned payload is the application's to keep, so
// the message's frame cannot recycle — RecvInto is the allocation-free
// variant.
func (t *Thread) recvOn(ch ChannelID, tag, fromThread int, fromProc ProcID) ([]byte, Addr, int) {
	m := t.recvMsgOn(ch, tag, fromThread, fromProc)
	return m.Data, Addr{Proc: m.From, Thread: m.FromThread}, m.Tag
}

// recvIntoOn is the blocking receive body of the RecvInto variants: the
// payload is copied into the caller's buffer and the message's pooled
// frame returns to the wire pool, so a steady-state receive loop on a
// pooled carrier allocates nothing.
func (t *Thread) recvIntoOn(buf []byte, ch ChannelID, tag, fromThread int, fromProc ProcID) (int, Addr) {
	m := t.recvMsgOn(ch, tag, fromThread, fromProc)
	if len(buf) < len(m.Data) {
		panic(fmt.Sprintf("core: RecvInto buffer (%d bytes) smaller than message (%d bytes)", len(buf), len(m.Data)))
	}
	n := copy(buf, m.Data)
	from := Addr{Proc: m.From, Thread: m.FromThread}
	m.Release()
	return n, from
}

// recvMsgOn blocks until a message matching the pattern is consumed and
// returns it.
func (t *Thread) recvMsgOn(ch ChannelID, tag, fromThread int, fromProc ProcID) *transport.Message {
	p := t.proc
	if i := p.matchStore(ch, tag, fromThread, fromProc, t.idx); i >= 0 {
		m := p.store[i]
		p.store = append(p.store[:i], p.store[i+1:]...)
		p.consume(t.mt, m)
		p.received.Add(1)
		return m
	}
	if e := p.deadRecvErr(fromProc, nil); e != nil {
		p.exception(e)
		panic(e)
	}
	w := p.getWaiter()
	w.t = t
	w.ch = ch
	w.fromThread = fromThread
	w.fromProc = fromProc
	w.tag = tag
	p.waiters = append(p.waiters, w)
	p.traceThread(t, trace.Idle)
	t.mt.Park("ncs recv")
	p.traceThread(t, trace.Compute)
	if w.err != nil {
		err := w.err
		p.putWaiter(w)
		p.exception(err)
		panic(err)
	}
	p.received.Add(1)
	got := w.got
	p.putWaiter(w)
	return got
}

// recvAnyOf blocks until a message on channel ch with the given tag (or
// Any) arrives from *any* address in set, and returns the message together
// with the matched set index. It is the multi-source receive under the
// out-of-order Gather/Reduce paths and the collective layer's child
// collection: arrivals complete in whatever order the network delivers
// them, so one slow peer never head-of-line-blocks the rest. The set is
// only read until the call returns; the caller may mutate it afterwards.
func (t *Thread) recvAnyOf(ch ChannelID, tag int, set []Addr) (*transport.Message, int) {
	p := t.proc
	for i, m := range p.store {
		if m.Channel != ch || m.ToThread != t.idx {
			continue
		}
		if tag != Any && m.Tag != tag {
			continue
		}
		if j := addrIndex(set, m); j >= 0 {
			p.store = append(p.store[:i], p.store[i+1:]...)
			p.consume(t.mt, m)
			p.received.Add(1)
			return m, j
		}
	}
	if e := p.deadRecvErr(Any, set); e != nil {
		p.exception(e)
		panic(e)
	}
	w := p.getWaiter()
	w.t = t
	w.ch = ch
	w.tag = tag
	w.multi = set
	p.waiters = append(p.waiters, w)
	p.traceThread(t, trace.Idle)
	t.mt.Park("ncs recv")
	p.traceThread(t, trace.Compute)
	if w.err != nil {
		err := w.err
		p.putWaiter(w)
		p.exception(err)
		panic(err)
	}
	p.received.Add(1)
	got := w.got
	p.putWaiter(w)
	return got, addrIndex(set, got)
}

// getWaiter draws a recvWaiter from the freelist (or allocates); putWaiter
// returns one once the woken receiver has read its match. Scheduler-domain
// only, like the queues it feeds.
func (p *Proc) getWaiter() *recvWaiter {
	if n := len(p.waiterFree); n > 0 {
		w := p.waiterFree[n-1]
		p.waiterFree = p.waiterFree[:n-1]
		return w
	}
	return &recvWaiter{}
}

func (p *Proc) putWaiter(w *recvWaiter) {
	*w = recvWaiter{}
	p.waiterFree = append(p.waiterFree, w)
}
