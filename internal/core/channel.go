package core

import (
	"fmt"

	"repro/internal/list"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the channel layer: the paper's claim (§3–§4) that NCS
// supplies *application-specific* communication services, made concrete. A
// Channel is an open (local proc → peer proc, class) pipe carrying its own
// flow-control discipline, error-control discipline, and priority — the
// per-application QoS selection of Figure 5, where a Video-on-Demand stream
// picks rate pacing while a parallel solver next to it picks windowed,
// reliable transfer. Each channel rides its own ATM virtual circuit in the
// cell-level carriers (the channel ID becomes the VPI), so a rate-class
// channel is policed by the network on its own VC.
//
// Thread.Send/Recv keep the paper's original single-protocol semantics by
// running on the default channel (ID 0), which every process pair has
// implicitly and which inherits the disciplines passed to core.New — the
// paper's NCS_init(flow, error) maps onto per-channel configuration with
// the process-wide arguments acting as the default channel's template.

// ChannelID identifies a channel between a process pair; 0 is the default
// channel.
type ChannelID = wire.ChannelID

// MaxChannelID bounds explicit channel IDs: the ATM carriers map the
// channel ID onto the 8-bit VPI so each channel rides a distinct VC.
const MaxChannelID = 255

// NumChannelPriorities is the number of channel priority levels. Higher
// values drain first; the default channel runs at priority 0 (lowest), and
// NCS-internal control traffic (credits, acks, retransmissions) drains
// above every data priority so windows can always open.
const NumChannelPriorities = 8

// numSendLevels is the internal queue level count: one level per channel
// priority plus the top control level.
const numSendLevels = NumChannelPriorities + 1

// ctrlLevel is the queue level for control traffic and raw
// retransmissions.
const ctrlLevel = NumChannelPriorities

// ChannelConfig selects a channel's QoS: the per-application choice the
// paper's NCS_init makes process-wide, here made per traffic class.
type ChannelConfig struct {
	// ID names the channel; both ends of a process pair must open the same
	// ID. 1..MaxChannelID (0 is the implicit default channel).
	ID ChannelID
	// Priority orders send/receive servicing across channels of this
	// process: 0..NumChannelPriorities-1, higher values drained first.
	Priority int
	// Flow is the channel's flow-control discipline (nil = NoFlowControl).
	// Instances hold per-channel state and must not be shared.
	Flow FlowControl
	// Error is the channel's error-control discipline (nil =
	// NoErrorControl). Instances hold per-channel state and must not be
	// shared.
	Error ErrorControl
}

// chanKey indexes a Proc's channel table.
type chanKey struct {
	peer ProcID
	id   ChannelID
}

// Channel is one open (local proc → peer proc, class) pipe with its own
// flow control, error control, priority, and counters.
type Channel struct {
	p        *Proc
	peer     ProcID
	id       ChannelID
	priority int
	flow     FlowControl
	errc     ErrorControl
	closed   bool

	sent, received           int64
	bytesSent, bytesReceived int64
}

// ChannelStats is a channel's traffic snapshot.
type ChannelStats struct {
	// Sent counts data messages transmitted (first transmissions only;
	// retransmissions are reported by the error-control discipline).
	Sent int64
	// Received counts data messages delivered by the peer on this channel.
	Received int64
	// BytesSent and BytesReceived total the payload bytes of the above.
	BytesSent, BytesReceived int64
	// Flow and Error name the channel's disciplines.
	Flow, Error string
}

// Open creates a channel to peer with its own QoS: per-channel flow
// control, error control, and priority. Both ends must open the same ID
// (with compatible disciplines) before traffic flows on it. Call before
// Start, or from a thread of this process.
func (p *Proc) Open(peer ProcID, cfg ChannelConfig) *Channel {
	if cfg.ID == 0 || cfg.ID > MaxChannelID {
		panic(fmt.Sprintf("core: channel ID must be 1..%d (0 is the default channel)", MaxChannelID))
	}
	if cfg.Priority < 0 || cfg.Priority >= NumChannelPriorities {
		panic(fmt.Sprintf("core: channel priority must be 0..%d", NumChannelPriorities-1))
	}
	key := chanKey{peer: peer, id: cfg.ID}
	if _, dup := p.channels[key]; dup {
		panic(fmt.Sprintf("core(proc %d): channel %d to proc %d already open", p.cfg.ID, cfg.ID, peer))
	}
	fc := cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	return p.addChannel(key, cfg.Priority, fc, ec)
}

// DefaultChannel returns the implicit channel 0 toward peer, creating it on
// first use from the process-wide Config.Flow/Config.Error templates.
func (p *Proc) DefaultChannel(peer ProcID) *Channel {
	if c, ok := p.channels[chanKey{peer: peer}]; ok {
		return c
	}
	fc := p.cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := p.cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	return p.addChannel(chanKey{peer: peer}, 0, fc.fork(), ec.fork())
}

func (p *Proc) addChannel(key chanKey, prio int, fc FlowControl, ec ErrorControl) *Channel {
	c := &Channel{p: p, peer: key.peer, id: key.id, priority: prio, flow: fc, errc: ec}
	p.channels[key] = c
	fc.init(c)
	ec.init(c)
	if p.closing {
		// Opened after the user threads finished (unusual, but legal from
		// an exception handler): give the disciplines their shutdown signal
		// immediately so the process can still terminate.
		fc.shutdown()
		ec.shutdown()
	}
	return c
}

// lookupChannel returns the channel a message belongs to. The default
// channel (id 0) is created on first reference — any peer may talk to us
// unannounced on it — while a nonzero channel must have been opened
// explicitly: ok is false for one nobody opened.
func (p *Proc) lookupChannel(peer ProcID, id ChannelID) (*Channel, bool) {
	if c, ok := p.channels[chanKey{peer: peer, id: id}]; ok {
		return c, true
	}
	if id == 0 {
		return p.DefaultChannel(peer), true
	}
	return nil, false
}

// Close tears the channel down from this end: the disciplines shut down —
// the window-sync and pacing timers stop, and sends still gated inside a
// discipline *fail* (their callers unblock and the proc's exception
// handler reports how many were abandoned) instead of hanging forever.
// Further Sends on the channel panic. The channel stays in the proc's
// table so late control traffic (credits, acks) is still consumed and
// error control can finish draining its in-flight window — data already
// admitted still flushes to the wire. Arriving data is dropped through the
// exception handler, like data on a channel that was never opened. Call
// from a thread of this process (or any scheduler-domain context);
// idempotent.
//
// Close is one-sided: there is no teardown signaling to the peer (the
// SVC signaling story is separate), so a peer still transmitting into a
// closed channel sees its error-control tier retry and eventually give
// up, exactly as against a dead process.
func (c *Channel) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.flow.shutdown()
	c.errc.shutdown()
	// Error control may have been holding the only reference that kept the
	// system threads alive; re-check now that deferred work is failed.
	c.p.checkShutdownWake()
}

// Closed reports whether Close has been called on this end.
func (c *Channel) Closed() bool { return c.closed }

// ID returns the channel identifier (0 for the default channel).
func (c *Channel) ID() ChannelID { return c.id }

// Peer returns the remote process the channel connects to.
func (c *Channel) Peer() ProcID { return c.peer }

// Priority returns the channel's drain priority.
func (c *Channel) Priority() int { return c.priority }

// Flow returns the channel's flow-control discipline (for stats and tests).
func (c *Channel) Flow() FlowControl { return c.flow }

// Error returns the channel's error-control discipline.
func (c *Channel) Error() ErrorControl { return c.errc }

// Stats returns the channel's traffic counters.
func (c *Channel) Stats() ChannelStats {
	return ChannelStats{
		Sent: c.sent, Received: c.received,
		BytesSent: c.bytesSent, BytesReceived: c.bytesReceived,
		Flow: c.flow.Name(), Error: c.errc.Name(),
	}
}

// Send transmits data to the channel's peer, addressed to toThread, from
// the calling thread t: NCS_send on an explicit channel. Like Thread.Send
// it parks only the calling thread.
func (c *Channel) Send(t *Thread, toThread int, data []byte) {
	c.SendTagged(t, 0, toThread, data)
}

// SendTagged is Send with a user message tag (>= 0).
func (c *Channel) SendTagged(t *Thread, tag, toThread int, data []byte) {
	if tag < 0 {
		panic("core: negative tags are reserved")
	}
	if t.proc != c.p {
		panic("core: thread sending on another process's channel")
	}
	c.p.sendOn(c, t, &transport.Message{
		From:       c.p.cfg.ID,
		To:         c.peer,
		FromThread: t.idx,
		ToThread:   toThread,
		Tag:        tag,
		Channel:    c.id,
		Data:       data,
	})
}

// Recv receives the next message the peer sent on this channel to the
// calling thread, from fromThread (or Any). Only the calling thread
// blocks.
func (c *Channel) Recv(t *Thread, fromThread int) ([]byte, Addr) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	data, addr, _ := t.recvOn(c.id, Any, fromThread, c.peer)
	return data, addr
}

// TryRecv is the non-blocking variant of Recv.
func (c *Channel) TryRecv(t *Thread, fromThread int) (data []byte, from Addr, ok bool) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	return t.tryRecvOn(c.id, fromThread, c.peer)
}

// sendOn queues m on channel c for the send system thread and parks the
// calling thread until the transfer is handed to the network — the shared
// body of Thread.Send and Channel.Send.
func (p *Proc) sendOn(c *Channel, t *Thread, m *transport.Message) {
	if c.closed {
		panic(fmt.Sprintf("core(proc %d): send on closed channel %d to proc %d", p.cfg.ID, c.id, c.peer))
	}
	p.traceThread(t, trace.Idle)
	req := p.getReq()
	req.m = m
	req.ch = c
	req.caller = t.mt
	p.enqueueSend(req)
	t.mt.Park("ncs send")
	p.traceThread(t, trace.Compute)
	p.sent++
}

// ---------------------------------------------------------------------------
// Priority queues

// prioQueue fans one logical queue into per-priority head-indexed FIFOs:
// push files an item under its level, pop drains the highest occupied
// level first. This is how the send and receive system threads service
// higher-priority channels ahead of bulk traffic.
type prioQueue[T any] struct {
	lvl [numSendLevels]list.FIFO[T]
	n   int
}

func (q *prioQueue[T]) push(level int, v T) {
	q.lvl[level].Push(v)
	q.n++
}

func (q *prioQueue[T]) empty() bool { return q.n == 0 }

func (q *prioQueue[T]) pop() T {
	for i := numSendLevels - 1; i >= 0; i-- {
		if q.lvl[i].Size() > 0 {
			q.n--
			return q.lvl[i].Pop()
		}
	}
	panic("core: pop from empty priority queue")
}

func (q *prioQueue[T]) prependLevel(level int, vs []T) {
	q.lvl[level].Prepend(vs)
	q.n += len(vs)
}
