package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/list"
	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the channel layer: the paper's claim (§3–§4) that NCS
// supplies *application-specific* communication services, made concrete. A
// Channel is an open (local proc → peer proc, class) pipe carrying its own
// flow-control discipline, error-control discipline, and priority — the
// per-application QoS selection of Figure 5, where a Video-on-Demand stream
// picks rate pacing while a parallel solver next to it picks windowed,
// reliable transfer. Each channel rides its own ATM virtual circuit in the
// cell-level carriers (the channel ID becomes the VPI), so a rate-class
// channel is policed by the network on its own VC.
//
// Thread.Send/Recv keep the paper's original single-protocol semantics by
// running on the default channel (ID 0), which every process pair has
// implicitly and which inherits the disciplines passed to core.New — the
// paper's NCS_init(flow, error) maps onto per-channel configuration with
// the process-wide arguments acting as the default channel's template.

// ChannelID identifies a channel between a process pair; 0 is the default
// channel.
type ChannelID = wire.ChannelID

// MaxChannelID bounds explicit channel IDs: the ATM carriers map the
// channel ID onto the 8-bit VPI so each channel rides a distinct VC.
const MaxChannelID = 255

// NumChannelPriorities is the number of channel priority levels. Higher
// values drain first; the default channel runs at priority 0 (lowest), and
// NCS-internal control traffic (credits, acks, retransmissions) drains
// above every data priority so windows can always open.
const NumChannelPriorities = 8

// numSendLevels is the internal queue level count: one level per channel
// priority plus the top control level.
const numSendLevels = NumChannelPriorities + 1

// ctrlLevel is the queue level for control traffic and raw
// retransmissions.
const ctrlLevel = NumChannelPriorities

// ChannelConfig selects a channel's QoS: the per-application choice the
// paper's NCS_init makes process-wide, here made per traffic class.
type ChannelConfig struct {
	// ID names the channel; both ends of a process pair must open the same
	// ID. 1..MaxChannelID (0 is the implicit default channel).
	ID ChannelID
	// Priority orders send/receive servicing across channels of this
	// process: 0..NumChannelPriorities-1, higher values drained first.
	Priority int
	// Flow is the channel's flow-control discipline (nil = NoFlowControl).
	// Instances hold per-channel state and must not be shared.
	Flow FlowControl
	// Error is the channel's error-control discipline (nil =
	// NoErrorControl). Instances hold per-channel state and must not be
	// shared.
	Error ErrorControl
	// Lane pins the channel to a specific send/recv lane in the sharded
	// configuration: 1-based (wrapped into the lane count), 0 selects the
	// default placement — a hash of the peer. Channels sharing a lane
	// serialize against each other; channels on different lanes run
	// concurrently. An explicitly pinned channel is never moved by the
	// hot-lane rebalancer; hash-placed channels are. Ignored in the classic
	// single-lane configuration.
	Lane int
	// Weight is the channel's deficit-round-robin service weight within its
	// lane (sharded configuration only): each round a backlogged channel
	// earns Weight quanta of transmission, so two channels sharing a lane
	// split bandwidth Weight-proportionally instead of the higher priority
	// starving the lower. 0 selects Priority+1, so by default higher
	// priority also means a larger share. The classic single-lane path
	// keeps the paper's strict priority and ignores Weight.
	Weight int
}

// chanKey indexes a Proc's channel table.
type chanKey struct {
	peer ProcID
	id   ChannelID
}

// Channel is one open (local proc → peer proc, class) pipe with its own
// flow control, error control, priority, and counters.
type Channel struct {
	p        *Proc
	peer     ProcID
	id       ChannelID
	priority int
	weight   int // DRR weight within the lane (Priority+1 by default)
	pinned   bool
	flow     FlowControl
	errc     ErrorControl
	closed   bool

	// Signaled-lifecycle state (see signal.go). state is atomic because
	// lane engines read it on the send path (sendUnavailable) without
	// entering the scheduler domain; everything else below is
	// scheduler-domain only. sigRef is the call reference the channel was
	// set up under (0 for statically opened channels, which signaling never
	// touches); sigInit marks the caller end, sigAdmitted an admission slot
	// to return at finalize, vcBound an installed per-call VC route.
	// relSent/relPeer/relAttempt/closeStarted/closedDone drive the close
	// handshake, and closeWaiters holds threads parked in CloseCall.
	state        atomic.Uint32
	everOpen     bool
	sigRef       uint32
	sigInit      bool
	sigAdmitted  bool
	vcBound      bool
	peerThread   int
	relSent      bool
	relPeer      bool
	relAttempt   int
	closeStarted bool
	closedDone   bool
	closeWaiters []*mts.Thread
	// deadErr, set by the failure sweep when the peer is declared dead,
	// replaces the generic ChannelClosedError on every subsequent send
	// failure so callers see the cause, not just the symptom. idleOver,
	// when non-zero, is the per-call SigIdleTimeout override negotiated at
	// setup (CallConfig.IdleTimeout; -1 disables the idle teardown).
	deadErr  *PeerDeadError
	idleOver time.Duration

	// lnp is the lane the channel currently runs on in the sharded
	// configuration (nil classically). All mutable channel state below —
	// discipline state, piggyback words, the closed flag — is guarded by
	// the *current* lane's mu when set, and by the scheduler domain
	// otherwise. The hot-lane rebalancer may move an idle-safe channel to
	// another lane (holding both lane locks), so out-of-lock readers use
	// lockLane, which loads, locks, and re-checks; in-lock contexts may
	// Load directly — the pointer cannot change while its lane's lock is
	// held.
	lnp atomic.Pointer[lane]

	// Pending reverse-direction control: the receiver role's credit
	// advertisement and error-control acks wait here for a data frame
	// toward the peer to piggyback on (attachPiggy or a same-lane
	// cross-channel ride) or for the lane's flush wheel, whichever comes
	// first. pendCredit is cumulative (a newer value supersedes); pendAcks
	// holds at most one word under go-back-N (cumulative) and a short
	// burst under selective repeat.
	pendCredit   uint32
	pendCreditOn bool
	pendAcks     []uint32

	// Flush-wheel state (owning lane's lock; scheduler domain classically):
	// flushOn marks an entry in the wheel, flushAt its deadline, and
	// flushDeferred that the wheel already granted one extra window waiting
	// for an imminent same-peer data ride (bounded: the second expiry
	// always flushes). inPend marks membership in the lane's
	// pending-control index; mustFlushOn marks a forced advertisement
	// queued for the end of the current service pass.
	flushOn       bool
	flushAt       time.Duration
	flushDeferred bool
	inPend        bool
	mustFlushOn   bool

	// DRR state (owning lane's lock): sq is the channel's FIFO of queued
	// send requests, deficit its byte deficit, inSched its membership in
	// the lane scheduler's active ring.
	sq      list.FIFO[*sendReq]
	deficit int64
	inSched bool

	// Rebalance state: loadAcc accumulates enqueued bytes since the last
	// rebalance scan (atomic — senders add outside any single lane's
	// lock); lastMoveTick is the rebalance tick of the last migration
	// (cooldown, under the lane lock).
	loadAcc      atomic.Int64
	lastMoveTick int64

	// lane names the channel's trace timeline (empty without a Tracer).
	lane string

	// Counters are atomic so Stats() can be read while lane engines (or,
	// classically, the system threads) are still updating them.
	sent, received           atomic.Int64
	bytesSent, bytesReceived atomic.Int64
	ctrlPiggy                atomic.Int64 // control words that rode data frames
	ctrlStandalone           atomic.Int64 // standalone control frames sent
	ctrlCoalesced            atomic.Int64 // words that rode another channel's frame
	migrations               atomic.Int64 // times the rebalancer moved this channel
}

// ChannelStats is a channel's traffic snapshot.
type ChannelStats struct {
	// Sent counts data messages transmitted (first transmissions only;
	// retransmissions are reported by the error-control discipline).
	Sent int64
	// Received counts data messages delivered by the peer on this channel.
	Received int64
	// BytesSent and BytesReceived total the payload bytes of the above.
	BytesSent, BytesReceived int64
	// CtrlPiggybacked counts control words (credit advertisements, acks)
	// this end attached to reverse-direction data frames;
	// CtrlStandalone counts standalone control frames it sent instead
	// (threshold advertisements, flush-timer fallbacks, window syncs).
	// Their ratio is the piggyback protocol's effectiveness.
	CtrlPiggybacked, CtrlStandalone int64
	// CtrlCoalesced counts the subset of CtrlPiggybacked that rode a
	// *different* channel's data frame toward the same peer (lane-aware
	// cross-channel coalescing, sharded mode only).
	CtrlCoalesced int64
	// Weight is the channel's DRR service weight and Deficit its current
	// byte deficit in the lane scheduler (sharded mode; zero classically).
	Weight  int
	Deficit int64
	// Lane is the index of the lane currently serving the channel (-1
	// classically) and Migrations how many times the hot-lane rebalancer
	// has moved it.
	Lane       int
	Migrations int64
	// Flow and Error name the channel's disciplines.
	Flow, Error string
}

// Open creates a channel to peer with its own QoS: per-channel flow
// control, error control, and priority. Both ends must open the same ID
// (with compatible disciplines) before traffic flows on it. Call before
// Start, or from a thread of this process.
func (p *Proc) Open(peer ProcID, cfg ChannelConfig) *Channel {
	if cfg.ID == 0 || cfg.ID > MaxChannelID {
		panic(fmt.Sprintf("core: channel ID must be 1..%d (0 is the default channel)", MaxChannelID))
	}
	if cfg.Priority < 0 || cfg.Priority >= NumChannelPriorities {
		panic(fmt.Sprintf("core: channel priority must be 0..%d", NumChannelPriorities-1))
	}
	if cfg.Weight < 0 {
		panic("core: channel weight must be >= 0 (0 selects Priority+1)")
	}
	key := chanKey{peer: peer, id: cfg.ID}
	fc := cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	return p.addChannel(key, cfg.Priority, cfg.Lane, cfg.Weight, fc, ec)
}

// DefaultChannel returns the implicit channel 0 toward peer, creating it on
// first use from the process-wide Config.Flow/Config.Error templates.
func (p *Proc) DefaultChannel(peer ProcID) *Channel {
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: peer}]
	p.chanMu.RUnlock()
	if ok {
		return c
	}
	fc := p.cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := p.cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	return p.addChannel(chanKey{peer: peer}, 0, 0, 0, fc.fork(), ec.fork())
}

// addChannel builds a channel and publishes it. The channel is fully
// initialized — lane pinned, disciplines init'd — *before* it enters the
// table: in sharded mode a foreign goroutine (routeFrame) may resolve it
// the instant it is visible. Two goroutines may race to create the same
// default channel; the loser's channel is discarded and the winner's
// returned. Explicit duplicate Opens still panic.
func (p *Proc) addChannel(key chanKey, prio, laneHint, weight int, fc FlowControl, ec ErrorControl) *Channel {
	if weight == 0 {
		weight = prio + 1
	}
	c := &Channel{p: p, peer: key.peer, id: key.id, priority: prio, weight: weight, flow: fc, errc: ec}
	if p.sharded() {
		c.lnp.Store(p.lanes[p.laneIndex(key.peer, laneHint)])
		c.pinned = laneHint > 0
		ln := c.lnp.Load()
		ln.mu.Lock()
		ln.chans = append(ln.chans, c)
		ln.mu.Unlock()
	}
	if p.cfg.Tracer != nil {
		c.lane = fmt.Sprintf("%s/ch%d>%d", p.cfg.TraceName, key.id, key.peer)
	}
	fc.init(c)
	ec.init(c)
	p.chanMu.Lock()
	if exist, dup := p.channels[key]; dup {
		p.chanMu.Unlock()
		if key.id == 0 {
			return exist
		}
		panic(fmt.Sprintf("core(proc %d): channel %d to proc %d already open", p.cfg.ID, key.id, key.peer))
	}
	p.channels[key] = c
	p.chanMu.Unlock()
	if p.closing.Load() {
		// Opened after the user threads finished (unusual, but legal from
		// an exception handler): give the disciplines their shutdown signal
		// immediately so the process can still terminate.
		if ln := c.lockLane(); ln != nil {
			fc.shutdown()
			ec.shutdown()
			ln.serviceLocked()
			post := ln.queueDrainLocked()
			ln.mu.Unlock()
			if post {
				p.postScheduler(ln.drainFn)
			}
		} else {
			fc.shutdown()
			ec.shutdown()
		}
	}
	return c
}

// lookupChannel returns the channel a message belongs to. The default
// channel (id 0) is created on first reference — any peer may talk to us
// unannounced on it — while a nonzero channel must have been opened
// explicitly: ok is false for one nobody opened.
func (p *Proc) lookupChannel(peer ProcID, id ChannelID) (*Channel, bool) {
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: peer, id: id}]
	p.chanMu.RUnlock()
	if ok {
		return c, true
	}
	if id == 0 {
		return p.DefaultChannel(peer), true
	}
	return nil, false
}

// Close tears the channel down from this end: the disciplines shut down —
// the window-sync and pacing timers stop, and sends still gated inside a
// discipline *fail* (their callers unblock and the proc's exception
// handler reports how many were abandoned) instead of hanging forever.
// Further Sends on the channel panic. The channel stays in the proc's
// table so late control traffic (credits, acks) is still consumed and
// error control can finish draining its in-flight window — data already
// admitted still flushes to the wire. Arriving data is dropped through the
// exception handler, like data on a channel that was never opened. Call
// from a thread of this process (or any scheduler-domain context);
// idempotent.
//
// Close is one-sided: there is no teardown signaling to the peer, so a
// peer still transmitting into a closed channel sees its error-control
// tier retry and eventually give up, exactly as against a dead process.
// Channels opened through the signaling band (Proc.OpenCall) should use
// CloseCall instead, which drains both ends and releases the VC.
func (c *Channel) Close() {
	if ln := c.lockLane(); ln != nil {
		if c.closed {
			ln.mu.Unlock()
			return
		}
		c.flushCtrl()
		c.closed = true
		c.state.Store(chanClosed)
		c.flow.shutdown()
		c.errc.shutdown()
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
		c.p.checkShutdownWake()
		return
	}
	if c.closed {
		return
	}
	// Flush pending piggyback control first: the peer's sender role may be
	// stalled on exactly the credit or ack sitting here, and a closed
	// channel produces no more data frames to carry it.
	c.flushCtrl()
	c.closed = true
	c.state.Store(chanClosed)
	c.flow.shutdown()
	c.errc.shutdown()
	// Error control may have been holding the only reference that kept the
	// system threads alive; re-check now that deferred work is failed.
	c.p.checkShutdownWake()
}

// Closed reports whether Close has been called on this end.
func (c *Channel) Closed() bool { return c.closed }

// sendUnavailable reports whether new sends must fail: the channel was
// closed locally, or the signaled close handshake has begun (CLOSING keeps
// the receiver role live so the peer can drain, but admits no new sends).
// Safe from any goroutine — lane engines call it on the send path.
func (c *Channel) sendUnavailable() bool {
	return c.closed || c.state.Load() >= chanClosing
}

// sendFailErr is the error a failed send raises: the typed *PeerDeadError
// when the failure sweep tore the channel down, the generic closed-channel
// error otherwise. Scheduler or lane domain (deadErr is written under the
// lane lock by the sweep, read on the same paths that observe the state
// bump that made sendUnavailable true).
func (c *Channel) sendFailErr() error {
	if c.deadErr != nil {
		return c.deadErr
	}
	return &ChannelClosedError{Local: c.p.cfg.ID, Peer: c.peer, ID: c.id}
}

// lockLane acquires the channel's *current* lane lock, returning the locked
// lane (nil classically). Because the rebalancer only moves a channel while
// holding both the source and destination lane locks, a loaded pointer that
// still matches after locking is stable until the caller unlocks — the
// load/lock/re-check loop below is the standard out-of-lock entry into a
// migratable channel's lane domain.
func (c *Channel) lockLane() *lane {
	for {
		ln := c.lnp.Load()
		if ln == nil {
			return nil
		}
		ln.mu.Lock()
		if c.lnp.Load() == ln {
			return ln
		}
		ln.mu.Unlock()
	}
}

// laneOf returns the channel's current lane without locking (nil
// classically). Only in-lock contexts — discipline callbacks, lane engine
// code — may treat the result as stable.
func (c *Channel) laneOf() *lane { return c.lnp.Load() }

// laneLock / laneUnlock guard lane-domain discipline state for the public
// introspection accessors (WindowFlow.Outstanding, GoBackN.Retransmissions,
// ...): on a sharded channel that state mutates under the lane lock in the
// engine goroutines, so a reader outside the lane must take it. Both are
// no-ops on classic channels (scheduler-domain state, scheduler-domain
// callers) and on a nil receiver (discipline not yet bound). laneUnlock
// releases the lane laneLock acquired: the channel cannot migrate while its
// current lane's lock is held, so the loaded pointer still names it.
func (c *Channel) laneLock() {
	if c != nil {
		c.lockLane()
	}
}

func (c *Channel) laneUnlock() {
	if c == nil {
		return
	}
	if ln := c.lnp.Load(); ln != nil {
		ln.mu.Unlock()
	}
}

// ID returns the channel identifier (0 for the default channel).
func (c *Channel) ID() ChannelID { return c.id }

// Peer returns the remote process the channel connects to.
func (c *Channel) Peer() ProcID { return c.peer }

// Proc returns the owning process (the local end). Accept hooks use it to
// create serving threads for incoming signaled calls.
func (c *Channel) Proc() *Proc { return c.p }

// PeerThread returns the calling-party thread index carried in the SETUP:
// on the callee end of a signaled call, the index of the thread that
// invoked OpenCall, so a serving thread knows where to address its first
// message before the peers have exchanged anything. Zero for statically
// opened channels and on the caller end.
func (c *Channel) PeerThread() int { return c.peerThread }

// Priority returns the channel's drain priority.
func (c *Channel) Priority() int { return c.priority }

// Flow returns the channel's flow-control discipline (for stats and tests).
func (c *Channel) Flow() FlowControl { return c.flow }

// Error returns the channel's error-control discipline.
func (c *Channel) Error() ErrorControl { return c.errc }

// Stats returns the channel's traffic counters. Safe to call while traffic
// is flowing (the counters are atomic; the scheduler fields take the lane
// lock briefly); the snapshot is per-counter consistent, not cross-counter.
func (c *Channel) Stats() ChannelStats {
	st := ChannelStats{
		Sent: c.sent.Load(), Received: c.received.Load(),
		BytesSent: c.bytesSent.Load(), BytesReceived: c.bytesReceived.Load(),
		CtrlPiggybacked: c.ctrlPiggy.Load(), CtrlStandalone: c.ctrlStandalone.Load(),
		CtrlCoalesced: c.ctrlCoalesced.Load(), Migrations: c.migrations.Load(),
		Weight: c.weight, Lane: -1,
		Flow: c.flow.Name(), Error: c.errc.Name(),
	}
	if ln := c.lockLane(); ln != nil {
		st.Deficit = c.deficit
		st.Lane = ln.idx
		ln.mu.Unlock()
	}
	return st
}

// ---------------------------------------------------------------------------
// Piggybacked control

// DefaultCtrlFlushDelay is the piggyback window when Config.CtrlFlushDelay
// is zero: how long queued reverse-direction control waits for a data
// frame before a standalone control frame flushes it. It is deliberately
// far below every discipline timescale (retransmission timeouts, window
// sync), so delaying control this long costs latency but never correctness.
const DefaultCtrlFlushDelay = time.Millisecond

// queueCredit files the flow tier's cumulative credit advertisement for
// piggybacking on the next data frame toward the peer. The value is
// cumulative, so a newer call simply supersedes a queued one. The flush
// timer bounds how long it may wait when no reverse data flows.
func (c *Channel) queueCredit(v uint32) {
	c.pendCredit = v
	c.pendCreditOn = true
	c.armFlush()
}

// queueAck files an error-control acknowledgement. Cumulative acks
// (go-back-N) supersede the queued word; selective acks (selective repeat)
// append, and the flush path batches them into one frame.
func (c *Channel) queueAck(v uint32, cumulative bool) {
	if cumulative && len(c.pendAcks) > 0 {
		c.pendAcks[len(c.pendAcks)-1] = v
	} else {
		c.pendAcks = append(c.pendAcks, v)
	}
	c.armFlush()
}

// armFlush schedules the standalone fallback for queued control by filing
// the channel on its flush wheel — one timer per lane (or per proc,
// classically) serves every channel with pending control, so 256 idle
// channels cost at most one armed timer each wheel, not 256. A negative
// CtrlFlushDelay disables the piggyback window entirely: control flushes
// standalone immediately, the pre-piggyback behavior.
func (c *Channel) armFlush() {
	if c.p.ctrlFlush < 0 {
		c.flushCtrl()
		return
	}
	if ln := c.lnp.Load(); ln != nil {
		ln.pendAddLocked(c)
		if c.flushOn || c.closed {
			return
		}
		c.flushOn = true
		c.flushAt = time.Duration(c.p.cfg.RT.Now()) + c.p.ctrlFlush
		ln.flushQ.Push(c)
		ln.armWheelLocked()
		return
	}
	if c.flushOn || c.closed {
		return
	}
	c.flushOn = true
	c.flushAt = time.Duration(c.p.cfg.RT.Now()) + c.p.ctrlFlush
	c.p.flushQ.Push(c)
	c.p.armWheel()
}

// armWheel schedules the classic proc-level flush wheel for its head
// deadline. Entries enter with a constant delay, so the queue is in
// deadline order and one armed timer covers them all.
func (p *Proc) armWheel() {
	if p.wheelOn || p.flushQ.Size() == 0 {
		return
	}
	d := p.flushQ.Peek().flushAt - time.Duration(p.cfg.RT.Now())
	if d < 0 {
		d = 0
	}
	p.wheelOn = true
	p.flushTimers.Add(1)
	p.cfg.After(d, p.wheelFn)
}

// wheelFire is the classic flush wheel: flush every channel whose piggyback
// window expired, then re-arm for the next deadline.
func (p *Proc) wheelFire() {
	p.flushTimers.Add(-1)
	p.wheelOn = false
	now := time.Duration(p.cfg.RT.Now())
	for p.flushQ.Size() > 0 && p.flushQ.Peek().flushAt <= now {
		c := p.flushQ.Pop()
		c.flushOn = false
		if c.closed {
			continue
		}
		c.flushCtrl()
	}
	p.armWheel()
}

// flushCtrl sends whatever control is still pending as standalone frames:
// one credit advertisement and one (possibly multi-word) ack frame. No-op
// when a data frame already carried everything. In sharded mode the
// caller holds the lane lock and is responsible for servicing the lane
// afterwards (the frames are queued, not yet transmitted).
func (c *Channel) flushCtrl() {
	ln := c.lnp.Load()
	if c.pendCreditOn {
		c.pendCreditOn = false
		c.ctrlStandalone.Add(1)
		if ln != nil {
			ln.ctrlStandaloneL++
		}
		c.sendCtrl(tagFlowAck, c.pendCredit, true)
		c.flow.creditSent(c.pendCredit)
	}
	if len(c.pendAcks) > 0 {
		c.ctrlStandalone.Add(1)
		if ln != nil {
			ln.ctrlStandaloneL++
		}
		c.sendCtrlVec(tagGBNAck, c.pendAcks)
		c.pendAcks = c.pendAcks[:0]
	}
	if ln != nil {
		ln.pendDropLocked(c)
	}
}

// sendCtrl queues one control frame on this channel's transmit path: the
// owning lane's queue in sharded mode (the caller holds the lane lock and
// services it afterwards), the proc-wide send queue classically.
func (c *Channel) sendCtrl(tag int, payload uint32, withPayload bool) {
	ln := c.lnp.Load()
	if ln == nil {
		c.p.sendCtrl(c.peer, c.id, tag, payload, withPayload)
		return
	}
	m := ln.getCtrlMsg()
	m.From = c.p.cfg.ID
	m.To = c.peer
	m.Channel = c.id
	m.Tag = tag
	if withPayload {
		m.Data = wire.AppendUint32(m.Data[:0], payload)
	}
	req := ln.getReq()
	req.m = m
	req.ctrl = true
	ln.pending.push(ctrlLevel, req)
}

// sendCtrlVec is sendCtrl with a multi-word payload (ack bursts).
func (c *Channel) sendCtrlVec(tag int, words []uint32) {
	ln := c.lnp.Load()
	if ln == nil {
		c.p.sendCtrlVec(c.peer, c.id, tag, words)
		return
	}
	m := ln.getCtrlMsg()
	m.From = c.p.cfg.ID
	m.To = c.peer
	m.Channel = c.id
	m.Tag = tag
	for _, w := range words {
		m.Data = wire.AppendUint32(m.Data, w)
	}
	req := ln.getReq()
	req.m = m
	req.ctrl = true
	ln.pending.push(ctrlLevel, req)
}

// wrapTimer adapts a discipline timer callback to the channel's execution
// domain. Classic channels run timers straight in the scheduler domain;
// sharded ones enter the lane domain — take the lane lock, run the
// callback, service whatever it queued (retransmissions, credit syncs),
// then drain the scheduler-domain completions. Timer callbacks fire via
// Config.After, which is always a scheduler-domain context, so the drain
// is legal here. The lane is resolved at fire time, not capture time: the
// rebalancer may have migrated the channel since the timer was armed.
func (c *Channel) wrapTimer(fn func()) func() {
	if c.lnp.Load() == nil {
		return fn
	}
	return func() {
		ln := c.lockLane()
		fn()
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
	}
}

// raise reports a channel-context exception: immediately in classic mode,
// deferred through the lane drain in sharded mode (callers hold the lane
// lock, and exception handlers are user code that must not run under it).
func (c *Channel) raise(err error) {
	if ln := c.lnp.Load(); ln != nil {
		ln.errs = append(ln.errs, err)
		return
	}
	c.p.exception(err)
}

// requeueRx re-queues in-order flushes from a buffering error-control
// discipline (selective repeat) ahead of anything already waiting at the
// channel's priority level, so release order equals sequence order.
func (c *Channel) requeueRx(flushed []*transport.Message) {
	if ln := c.lnp.Load(); ln != nil {
		ln.requeueRxLocked(c, flushed)
		return
	}
	c.p.rxIn.prependLevel(c.priority, flushed)
}

// attachPiggy moves pending control onto a departing data frame: the
// credit word and the oldest queued ack ride for free. Runs in the send
// system thread immediately before the frame is handed to the carrier.
// Slots a previous transmission already occupied are skipped (a go-back-N
// retransmission re-sends the exact bytes it carried the first time);
// cross-channel coalescing may then fill the free slot from a sibling
// channel, so each attached word is stamped with its owning channel.
func (c *Channel) attachPiggy(m *transport.Message) {
	ln := c.lnp.Load()
	if c.pendCreditOn && !m.HasCredit {
		m.Credit, m.HasCredit = c.pendCredit, true
		m.CreditChan = c.id
		c.pendCreditOn = false
		c.ctrlPiggy.Add(1)
		if ln != nil {
			ln.ctrlPiggyL++
		}
		c.flow.creditSent(c.pendCredit)
	}
	if n := len(c.pendAcks); n > 0 && !m.HasAck {
		m.Ack, m.HasAck = c.pendAcks[0], true
		m.AckChan = c.id
		copy(c.pendAcks, c.pendAcks[1:])
		c.pendAcks = c.pendAcks[:n-1]
		c.ctrlPiggy.Add(1)
		if ln != nil {
			ln.ctrlPiggyL++
		}
	}
	if ln != nil && !c.pendCreditOn && len(c.pendAcks) == 0 {
		ln.pendDropLocked(c)
	}
}

// Send transmits data to the channel's peer, addressed to toThread, from
// the calling thread t: NCS_send on an explicit channel. Like Thread.Send
// it parks only the calling thread.
func (c *Channel) Send(t *Thread, toThread int, data []byte) {
	c.SendTagged(t, 0, toThread, data)
}

// SendTagged is Send with a user message tag (>= 0).
func (c *Channel) SendTagged(t *Thread, tag, toThread int, data []byte) {
	if tag < 0 {
		panic("core: negative tags are reserved")
	}
	if t.proc != c.p {
		panic("core: thread sending on another process's channel")
	}
	if c.lnp.Load() != nil {
		c.laneSend(t, tag, toThread, data)
		return
	}
	m := c.p.getDataMsg()
	m.From = c.p.cfg.ID
	m.To = c.peer
	m.FromThread = t.idx
	m.ToThread = toThread
	m.Tag = tag
	m.Channel = c.id
	m.Data = data
	c.p.sendOn(c, t, m)
}

// Recv receives the next message the peer sent on this channel to the
// calling thread, from fromThread (or Any). Only the calling thread
// blocks.
func (c *Channel) Recv(t *Thread, fromThread int) ([]byte, Addr) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	data, addr, _ := t.recvOn(c.id, Any, fromThread, c.peer)
	return data, addr
}

// RecvInto is Recv delivering into the caller's buffer; see
// Thread.RecvInto for the contract (and the allocation-free property).
func (c *Channel) RecvInto(t *Thread, buf []byte, fromThread int) (int, Addr) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	return t.recvIntoOn(buf, c.id, Any, fromThread, c.peer)
}

// TryRecv is the non-blocking variant of Recv.
func (c *Channel) TryRecv(t *Thread, fromThread int) (data []byte, from Addr, ok bool) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	return t.tryRecvOn(c.id, fromThread, c.peer)
}

// sendOn queues m on channel c for the send system thread and parks the
// calling thread until the transfer is handed to the network — the shared
// body of Thread.Send and Channel.Send.
func (p *Proc) sendOn(c *Channel, t *Thread, m *transport.Message) {
	if pd := p.deadPeers[c.peer]; pd != nil {
		// Fail fast on a declared-dead peer: see laneSend. A send after
		// the failure sweep must not feed a resurrected channel.
		p.putDataMsg(m)
		p.exception(pd)
		return
	}
	if c.sendUnavailable() {
		p.putDataMsg(m)
		p.exception(c.sendFailErr())
		return
	}
	p.traceThread(t, trace.Idle)
	req := p.getReq()
	req.m = m
	req.ch = c
	req.caller = t.mt
	p.enqueueSend(req)
	t.mt.Park("ncs send")
	p.traceThread(t, trace.Compute)
	p.sent.Add(1)
}

// ---------------------------------------------------------------------------
// Priority queues

// prioQueue fans one logical queue into per-priority head-indexed FIFOs:
// push files an item under its level, pop drains the highest occupied
// level first. This is how the send and receive system threads service
// higher-priority channels ahead of bulk traffic. A bitmask tracks which
// levels are occupied, so the hot-path empty/pop pair is O(1) (bits.Len16
// finds the highest set bit) instead of scanning all nine levels on every
// system-thread iteration.
type prioQueue[T any] struct {
	lvl  [numSendLevels]list.FIFO[T]
	mask uint16 // bit i set ⇔ lvl[i] non-empty
}

func (q *prioQueue[T]) push(level int, v T) {
	q.lvl[level].Push(v)
	q.mask |= 1 << level
}

func (q *prioQueue[T]) empty() bool { return q.mask == 0 }

func (q *prioQueue[T]) pop() T {
	if q.mask == 0 {
		panic("core: pop from empty priority queue")
	}
	i := bits.Len16(q.mask) - 1
	v := q.lvl[i].Pop()
	if q.lvl[i].Size() == 0 {
		q.mask &^= 1 << i
	}
	return v
}

func (q *prioQueue[T]) prependLevel(level int, vs []T) {
	q.lvl[level].Prepend(vs)
	if len(vs) > 0 {
		q.mask |= 1 << level
	}
}
