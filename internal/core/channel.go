package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/list"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the channel layer: the paper's claim (§3–§4) that NCS
// supplies *application-specific* communication services, made concrete. A
// Channel is an open (local proc → peer proc, class) pipe carrying its own
// flow-control discipline, error-control discipline, and priority — the
// per-application QoS selection of Figure 5, where a Video-on-Demand stream
// picks rate pacing while a parallel solver next to it picks windowed,
// reliable transfer. Each channel rides its own ATM virtual circuit in the
// cell-level carriers (the channel ID becomes the VPI), so a rate-class
// channel is policed by the network on its own VC.
//
// Thread.Send/Recv keep the paper's original single-protocol semantics by
// running on the default channel (ID 0), which every process pair has
// implicitly and which inherits the disciplines passed to core.New — the
// paper's NCS_init(flow, error) maps onto per-channel configuration with
// the process-wide arguments acting as the default channel's template.

// ChannelID identifies a channel between a process pair; 0 is the default
// channel.
type ChannelID = wire.ChannelID

// MaxChannelID bounds explicit channel IDs: the ATM carriers map the
// channel ID onto the 8-bit VPI so each channel rides a distinct VC.
const MaxChannelID = 255

// NumChannelPriorities is the number of channel priority levels. Higher
// values drain first; the default channel runs at priority 0 (lowest), and
// NCS-internal control traffic (credits, acks, retransmissions) drains
// above every data priority so windows can always open.
const NumChannelPriorities = 8

// numSendLevels is the internal queue level count: one level per channel
// priority plus the top control level.
const numSendLevels = NumChannelPriorities + 1

// ctrlLevel is the queue level for control traffic and raw
// retransmissions.
const ctrlLevel = NumChannelPriorities

// ChannelConfig selects a channel's QoS: the per-application choice the
// paper's NCS_init makes process-wide, here made per traffic class.
type ChannelConfig struct {
	// ID names the channel; both ends of a process pair must open the same
	// ID. 1..MaxChannelID (0 is the implicit default channel).
	ID ChannelID
	// Priority orders send/receive servicing across channels of this
	// process: 0..NumChannelPriorities-1, higher values drained first.
	Priority int
	// Flow is the channel's flow-control discipline (nil = NoFlowControl).
	// Instances hold per-channel state and must not be shared.
	Flow FlowControl
	// Error is the channel's error-control discipline (nil =
	// NoErrorControl). Instances hold per-channel state and must not be
	// shared.
	Error ErrorControl
	// Lane pins the channel to a specific send/recv lane in the sharded
	// configuration: 1-based (wrapped into the lane count), 0 selects the
	// default placement — a hash of the peer. Channels sharing a lane
	// serialize against each other; channels on different lanes run
	// concurrently. Ignored in the classic single-lane configuration.
	Lane int
}

// chanKey indexes a Proc's channel table.
type chanKey struct {
	peer ProcID
	id   ChannelID
}

// Channel is one open (local proc → peer proc, class) pipe with its own
// flow control, error control, priority, and counters.
type Channel struct {
	p        *Proc
	peer     ProcID
	id       ChannelID
	priority int
	flow     FlowControl
	errc     ErrorControl
	closed   bool

	// ln is the lane the channel is pinned to for life in the sharded
	// configuration (nil classically). All mutable channel state below —
	// discipline state, piggyback words, the closed flag — is guarded by
	// ln.mu when ln is set, and by the scheduler domain otherwise.
	ln *lane

	// Pending reverse-direction control: the receiver role's credit
	// advertisement and error-control acks wait here for a data frame
	// toward the peer to piggyback on (attachPiggy) or for the flush
	// timer (flushFire), whichever comes first. pendCredit is cumulative
	// (a newer value supersedes); pendAcks holds at most one word under
	// go-back-N (cumulative) and a short burst under selective repeat.
	pendCredit   uint32
	pendCreditOn bool
	pendAcks     []uint32
	flushOn      bool
	flushFn      func()

	// lane names the channel's trace timeline (empty without a Tracer).
	lane string

	// Counters are atomic so Stats() can be read while lane engines (or,
	// classically, the system threads) are still updating them.
	sent, received           atomic.Int64
	bytesSent, bytesReceived atomic.Int64
	ctrlPiggy                atomic.Int64 // control words that rode data frames
	ctrlStandalone           atomic.Int64 // standalone control frames sent
}

// ChannelStats is a channel's traffic snapshot.
type ChannelStats struct {
	// Sent counts data messages transmitted (first transmissions only;
	// retransmissions are reported by the error-control discipline).
	Sent int64
	// Received counts data messages delivered by the peer on this channel.
	Received int64
	// BytesSent and BytesReceived total the payload bytes of the above.
	BytesSent, BytesReceived int64
	// CtrlPiggybacked counts control words (credit advertisements, acks)
	// this end attached to reverse-direction data frames;
	// CtrlStandalone counts standalone control frames it sent instead
	// (threshold advertisements, flush-timer fallbacks, window syncs).
	// Their ratio is the piggyback protocol's effectiveness.
	CtrlPiggybacked, CtrlStandalone int64
	// Flow and Error name the channel's disciplines.
	Flow, Error string
}

// Open creates a channel to peer with its own QoS: per-channel flow
// control, error control, and priority. Both ends must open the same ID
// (with compatible disciplines) before traffic flows on it. Call before
// Start, or from a thread of this process.
func (p *Proc) Open(peer ProcID, cfg ChannelConfig) *Channel {
	if cfg.ID == 0 || cfg.ID > MaxChannelID {
		panic(fmt.Sprintf("core: channel ID must be 1..%d (0 is the default channel)", MaxChannelID))
	}
	if cfg.Priority < 0 || cfg.Priority >= NumChannelPriorities {
		panic(fmt.Sprintf("core: channel priority must be 0..%d", NumChannelPriorities-1))
	}
	key := chanKey{peer: peer, id: cfg.ID}
	fc := cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	return p.addChannel(key, cfg.Priority, cfg.Lane, fc, ec)
}

// DefaultChannel returns the implicit channel 0 toward peer, creating it on
// first use from the process-wide Config.Flow/Config.Error templates.
func (p *Proc) DefaultChannel(peer ProcID) *Channel {
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: peer}]
	p.chanMu.RUnlock()
	if ok {
		return c
	}
	fc := p.cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := p.cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	return p.addChannel(chanKey{peer: peer}, 0, 0, fc.fork(), ec.fork())
}

// addChannel builds a channel and publishes it. The channel is fully
// initialized — lane pinned, disciplines init'd — *before* it enters the
// table: in sharded mode a foreign goroutine (routeFrame) may resolve it
// the instant it is visible. Two goroutines may race to create the same
// default channel; the loser's channel is discarded and the winner's
// returned. Explicit duplicate Opens still panic.
func (p *Proc) addChannel(key chanKey, prio, laneHint int, fc FlowControl, ec ErrorControl) *Channel {
	c := &Channel{p: p, peer: key.peer, id: key.id, priority: prio, flow: fc, errc: ec}
	if p.sharded() {
		c.ln = p.lanes[p.laneIndex(key.peer, laneHint)]
	}
	c.flushFn = c.wrapTimer(c.flushFire)
	if p.cfg.Tracer != nil {
		c.lane = fmt.Sprintf("%s/ch%d>%d", p.cfg.TraceName, key.id, key.peer)
	}
	fc.init(c)
	ec.init(c)
	p.chanMu.Lock()
	if exist, dup := p.channels[key]; dup {
		p.chanMu.Unlock()
		if key.id == 0 {
			return exist
		}
		panic(fmt.Sprintf("core(proc %d): channel %d to proc %d already open", p.cfg.ID, key.id, key.peer))
	}
	p.channels[key] = c
	p.chanMu.Unlock()
	if p.closing.Load() {
		// Opened after the user threads finished (unusual, but legal from
		// an exception handler): give the disciplines their shutdown signal
		// immediately so the process can still terminate.
		if ln := c.ln; ln != nil {
			ln.mu.Lock()
			fc.shutdown()
			ec.shutdown()
			ln.serviceLocked()
			post := ln.queueDrainLocked()
			ln.mu.Unlock()
			if post {
				p.cfg.RT.PostAsync(ln.drainFn)
			}
		} else {
			fc.shutdown()
			ec.shutdown()
		}
	}
	return c
}

// lookupChannel returns the channel a message belongs to. The default
// channel (id 0) is created on first reference — any peer may talk to us
// unannounced on it — while a nonzero channel must have been opened
// explicitly: ok is false for one nobody opened.
func (p *Proc) lookupChannel(peer ProcID, id ChannelID) (*Channel, bool) {
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: peer, id: id}]
	p.chanMu.RUnlock()
	if ok {
		return c, true
	}
	if id == 0 {
		return p.DefaultChannel(peer), true
	}
	return nil, false
}

// Close tears the channel down from this end: the disciplines shut down —
// the window-sync and pacing timers stop, and sends still gated inside a
// discipline *fail* (their callers unblock and the proc's exception
// handler reports how many were abandoned) instead of hanging forever.
// Further Sends on the channel panic. The channel stays in the proc's
// table so late control traffic (credits, acks) is still consumed and
// error control can finish draining its in-flight window — data already
// admitted still flushes to the wire. Arriving data is dropped through the
// exception handler, like data on a channel that was never opened. Call
// from a thread of this process (or any scheduler-domain context);
// idempotent.
//
// Close is one-sided: there is no teardown signaling to the peer (the
// SVC signaling story is separate), so a peer still transmitting into a
// closed channel sees its error-control tier retry and eventually give
// up, exactly as against a dead process.
func (c *Channel) Close() {
	if ln := c.ln; ln != nil {
		ln.mu.Lock()
		if c.closed {
			ln.mu.Unlock()
			return
		}
		c.flushCtrl()
		c.closed = true
		c.flow.shutdown()
		c.errc.shutdown()
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
		c.p.checkShutdownWake()
		return
	}
	if c.closed {
		return
	}
	// Flush pending piggyback control first: the peer's sender role may be
	// stalled on exactly the credit or ack sitting here, and a closed
	// channel produces no more data frames to carry it.
	c.flushCtrl()
	c.closed = true
	c.flow.shutdown()
	c.errc.shutdown()
	// Error control may have been holding the only reference that kept the
	// system threads alive; re-check now that deferred work is failed.
	c.p.checkShutdownWake()
}

// Closed reports whether Close has been called on this end.
func (c *Channel) Closed() bool { return c.closed }

// laneLock / laneUnlock guard lane-domain discipline state for the public
// introspection accessors (WindowFlow.Outstanding, GoBackN.Retransmissions,
// ...): on a sharded channel that state mutates under the lane lock in the
// engine goroutines, so a reader outside the lane must take it. Both are
// no-ops on classic channels (scheduler-domain state, scheduler-domain
// callers) and on a nil receiver (discipline not yet bound).
func (c *Channel) laneLock() {
	if c != nil && c.ln != nil {
		c.ln.mu.Lock()
	}
}

func (c *Channel) laneUnlock() {
	if c != nil && c.ln != nil {
		c.ln.mu.Unlock()
	}
}

// ID returns the channel identifier (0 for the default channel).
func (c *Channel) ID() ChannelID { return c.id }

// Peer returns the remote process the channel connects to.
func (c *Channel) Peer() ProcID { return c.peer }

// Priority returns the channel's drain priority.
func (c *Channel) Priority() int { return c.priority }

// Flow returns the channel's flow-control discipline (for stats and tests).
func (c *Channel) Flow() FlowControl { return c.flow }

// Error returns the channel's error-control discipline.
func (c *Channel) Error() ErrorControl { return c.errc }

// Stats returns the channel's traffic counters. Safe to call while traffic
// is flowing (the counters are atomic); the snapshot is per-counter
// consistent, not cross-counter.
func (c *Channel) Stats() ChannelStats {
	return ChannelStats{
		Sent: c.sent.Load(), Received: c.received.Load(),
		BytesSent: c.bytesSent.Load(), BytesReceived: c.bytesReceived.Load(),
		CtrlPiggybacked: c.ctrlPiggy.Load(), CtrlStandalone: c.ctrlStandalone.Load(),
		Flow: c.flow.Name(), Error: c.errc.Name(),
	}
}

// ---------------------------------------------------------------------------
// Piggybacked control

// DefaultCtrlFlushDelay is the piggyback window when Config.CtrlFlushDelay
// is zero: how long queued reverse-direction control waits for a data
// frame before a standalone control frame flushes it. It is deliberately
// far below every discipline timescale (retransmission timeouts, window
// sync), so delaying control this long costs latency but never correctness.
const DefaultCtrlFlushDelay = time.Millisecond

// queueCredit files the flow tier's cumulative credit advertisement for
// piggybacking on the next data frame toward the peer. The value is
// cumulative, so a newer call simply supersedes a queued one. The flush
// timer bounds how long it may wait when no reverse data flows.
func (c *Channel) queueCredit(v uint32) {
	c.pendCredit = v
	c.pendCreditOn = true
	c.armFlush()
}

// queueAck files an error-control acknowledgement. Cumulative acks
// (go-back-N) supersede the queued word; selective acks (selective repeat)
// append, and the flush path batches them into one frame.
func (c *Channel) queueAck(v uint32, cumulative bool) {
	if cumulative && len(c.pendAcks) > 0 {
		c.pendAcks[len(c.pendAcks)-1] = v
	} else {
		c.pendAcks = append(c.pendAcks, v)
	}
	c.armFlush()
}

// armFlush schedules the standalone fallback for queued control. A
// negative CtrlFlushDelay disables the piggyback window entirely: control
// flushes standalone immediately, the pre-piggyback behavior.
func (c *Channel) armFlush() {
	if c.p.ctrlFlush < 0 {
		c.flushCtrl()
		return
	}
	if c.flushOn || c.closed {
		return
	}
	c.flushOn = true
	c.p.cfg.After(c.p.ctrlFlush, c.flushFn)
}

// flushFire is the flush timer: no reverse data frame picked the pending
// control up within the piggyback window, so it goes standalone.
func (c *Channel) flushFire() {
	c.flushOn = false
	if c.closed {
		return
	}
	c.flushCtrl()
}

// flushCtrl sends whatever control is still pending as standalone frames:
// one credit advertisement and one (possibly multi-word) ack frame. No-op
// when a data frame already carried everything. In sharded mode the
// caller holds the lane lock and is responsible for servicing the lane
// afterwards (the frames are queued, not yet transmitted).
func (c *Channel) flushCtrl() {
	if c.pendCreditOn {
		c.pendCreditOn = false
		c.ctrlStandalone.Add(1)
		c.sendCtrl(tagFlowAck, c.pendCredit, true)
		c.flow.creditSent(c.pendCredit)
	}
	if len(c.pendAcks) > 0 {
		c.ctrlStandalone.Add(1)
		c.sendCtrlVec(tagGBNAck, c.pendAcks)
		c.pendAcks = c.pendAcks[:0]
	}
}

// sendCtrl queues one control frame on this channel's transmit path: the
// owning lane's queue in sharded mode (the caller holds the lane lock and
// services it afterwards), the proc-wide send queue classically.
func (c *Channel) sendCtrl(tag int, payload uint32, withPayload bool) {
	ln := c.ln
	if ln == nil {
		c.p.sendCtrl(c.peer, c.id, tag, payload, withPayload)
		return
	}
	m := ln.getCtrlMsg()
	m.From = c.p.cfg.ID
	m.To = c.peer
	m.Channel = c.id
	m.Tag = tag
	if withPayload {
		m.Data = wire.AppendUint32(m.Data[:0], payload)
	}
	req := ln.getReq()
	req.m = m
	req.ctrl = true
	ln.pending.push(ctrlLevel, req)
}

// sendCtrlVec is sendCtrl with a multi-word payload (ack bursts).
func (c *Channel) sendCtrlVec(tag int, words []uint32) {
	ln := c.ln
	if ln == nil {
		c.p.sendCtrlVec(c.peer, c.id, tag, words)
		return
	}
	m := ln.getCtrlMsg()
	m.From = c.p.cfg.ID
	m.To = c.peer
	m.Channel = c.id
	m.Tag = tag
	for _, w := range words {
		m.Data = wire.AppendUint32(m.Data, w)
	}
	req := ln.getReq()
	req.m = m
	req.ctrl = true
	ln.pending.push(ctrlLevel, req)
}

// wrapTimer adapts a discipline timer callback to the channel's execution
// domain. Classic channels run timers straight in the scheduler domain;
// sharded ones enter the lane domain — take the lane lock, run the
// callback, service whatever it queued (retransmissions, credit syncs),
// then drain the scheduler-domain completions. Timer callbacks fire via
// Config.After, which is always a scheduler-domain context, so the drain
// is legal here.
func (c *Channel) wrapTimer(fn func()) func() {
	ln := c.ln
	if ln == nil {
		return fn
	}
	return func() {
		ln.mu.Lock()
		fn()
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
	}
}

// raise reports a channel-context exception: immediately in classic mode,
// deferred through the lane drain in sharded mode (callers hold the lane
// lock, and exception handlers are user code that must not run under it).
func (c *Channel) raise(err error) {
	if c.ln != nil {
		c.ln.errs = append(c.ln.errs, err)
		return
	}
	c.p.exception(err)
}

// requeueRx re-queues in-order flushes from a buffering error-control
// discipline (selective repeat) ahead of anything already waiting at the
// channel's priority level, so release order equals sequence order.
func (c *Channel) requeueRx(flushed []*transport.Message) {
	if c.ln != nil {
		c.ln.requeueRxLocked(c, flushed)
		return
	}
	c.p.rxIn.prependLevel(c.priority, flushed)
}

// attachPiggy moves pending control onto a departing data frame: the
// credit word and the oldest queued ack ride for free. Runs in the send
// system thread immediately before the frame is handed to the carrier.
func (c *Channel) attachPiggy(m *transport.Message) {
	if c.pendCreditOn {
		m.Credit, m.HasCredit = c.pendCredit, true
		c.pendCreditOn = false
		c.ctrlPiggy.Add(1)
		c.flow.creditSent(c.pendCredit)
	}
	if n := len(c.pendAcks); n > 0 {
		m.Ack, m.HasAck = c.pendAcks[0], true
		copy(c.pendAcks, c.pendAcks[1:])
		c.pendAcks = c.pendAcks[:n-1]
		c.ctrlPiggy.Add(1)
	}
}

// Send transmits data to the channel's peer, addressed to toThread, from
// the calling thread t: NCS_send on an explicit channel. Like Thread.Send
// it parks only the calling thread.
func (c *Channel) Send(t *Thread, toThread int, data []byte) {
	c.SendTagged(t, 0, toThread, data)
}

// SendTagged is Send with a user message tag (>= 0).
func (c *Channel) SendTagged(t *Thread, tag, toThread int, data []byte) {
	if tag < 0 {
		panic("core: negative tags are reserved")
	}
	if t.proc != c.p {
		panic("core: thread sending on another process's channel")
	}
	if c.ln != nil {
		c.ln.send(c, t, tag, toThread, data)
		return
	}
	m := c.p.getDataMsg()
	m.From = c.p.cfg.ID
	m.To = c.peer
	m.FromThread = t.idx
	m.ToThread = toThread
	m.Tag = tag
	m.Channel = c.id
	m.Data = data
	c.p.sendOn(c, t, m)
}

// Recv receives the next message the peer sent on this channel to the
// calling thread, from fromThread (or Any). Only the calling thread
// blocks.
func (c *Channel) Recv(t *Thread, fromThread int) ([]byte, Addr) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	data, addr, _ := t.recvOn(c.id, Any, fromThread, c.peer)
	return data, addr
}

// RecvInto is Recv delivering into the caller's buffer; see
// Thread.RecvInto for the contract (and the allocation-free property).
func (c *Channel) RecvInto(t *Thread, buf []byte, fromThread int) (int, Addr) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	return t.recvIntoOn(buf, c.id, Any, fromThread, c.peer)
}

// TryRecv is the non-blocking variant of Recv.
func (c *Channel) TryRecv(t *Thread, fromThread int) (data []byte, from Addr, ok bool) {
	if t.proc != c.p {
		panic("core: thread receiving on another process's channel")
	}
	return t.tryRecvOn(c.id, fromThread, c.peer)
}

// sendOn queues m on channel c for the send system thread and parks the
// calling thread until the transfer is handed to the network — the shared
// body of Thread.Send and Channel.Send.
func (p *Proc) sendOn(c *Channel, t *Thread, m *transport.Message) {
	if c.closed {
		panic(fmt.Sprintf("core(proc %d): send on closed channel %d to proc %d", p.cfg.ID, c.id, c.peer))
	}
	p.traceThread(t, trace.Idle)
	req := p.getReq()
	req.m = m
	req.ch = c
	req.caller = t.mt
	p.enqueueSend(req)
	t.mt.Park("ncs send")
	p.traceThread(t, trace.Compute)
	p.sent.Add(1)
}

// ---------------------------------------------------------------------------
// Priority queues

// prioQueue fans one logical queue into per-priority head-indexed FIFOs:
// push files an item under its level, pop drains the highest occupied
// level first. This is how the send and receive system threads service
// higher-priority channels ahead of bulk traffic. A bitmask tracks which
// levels are occupied, so the hot-path empty/pop pair is O(1) (bits.Len16
// finds the highest set bit) instead of scanning all nine levels on every
// system-thread iteration.
type prioQueue[T any] struct {
	lvl  [numSendLevels]list.FIFO[T]
	mask uint16 // bit i set ⇔ lvl[i] non-empty
}

func (q *prioQueue[T]) push(level int, v T) {
	q.lvl[level].Push(v)
	q.mask |= 1 << level
}

func (q *prioQueue[T]) empty() bool { return q.mask == 0 }

func (q *prioQueue[T]) pop() T {
	if q.mask == 0 {
		panic("core: pop from empty priority queue")
	}
	i := bits.Len16(q.mask) - 1
	v := q.lvl[i].Pop()
	if q.lvl[i].Size() == 0 {
		q.mask &^= 1 << i
	}
	return v
}

func (q *prioQueue[T]) prependLevel(level int, vs []T) {
	q.lvl[level].Prepend(vs)
	if len(vs) > 0 {
		q.mask |= 1 << level
	}
}
