package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/wire"
)

// This file is the failure domain: detection, teardown, and recovery when a
// peer process crashes or the network partitions — the cases frame-loss
// chaos never exercises, where every retransmission is futile and a blocked
// caller would otherwise park forever.
//
//   - Detection: a heartbeat failure detector (Config.Heartbeat) rides the
//     channel-0 signaling band. Every Interval the proc pings each peer it
//     has channels to; a peer silent for Misses consecutive intervals is
//     declared DEAD. All timers ride Config.After, so detection is
//     deterministic under a VirtualTime mesh.
//   - Teardown: peerDead force-closes every channel to the dead peer
//     through the existing finalize machinery — parked sends fail, blocked
//     Recv/RecvInto/recvAnyOf waiters (and with them in-flight collectives)
//     unblock, error-control windows abandon instead of retransmitting into
//     the void, VC routes and admission slots release — all with the typed
//     *PeerDeadError, and Proc.Leaks() still balances to zero.
//   - Recovery: Proc.Redial retries OpenCall with capped exponential
//     backoff and deterministic jitter under a cause-aware policy, so an
//     application survives a peer restart or a healed partition.

// tagSigBeat extends the signaling tag space (signal.go) with the
// heartbeat: a one-word frame on channel 0, word 0 = ping, 1 = ack.
const tagSigBeat = -11

// Heartbeat configures the failure detector (Config.Heartbeat).
type Heartbeat struct {
	// Interval is the beat period; 0 disables detection entirely.
	Interval time.Duration
	// Misses is how many consecutive silent intervals declare a peer dead;
	// 0 selects DefaultHeartbeatMisses. Worst-case detection latency is
	// (Misses+1)×Interval of scheduler time: one interval of grace for the
	// first observation plus Misses silent ones.
	Misses int
}

// DefaultHeartbeatMisses is the miss budget when Heartbeat.Misses is zero.
const DefaultHeartbeatMisses = 3

// PeerDeadError is the typed failure the detector attaches to everything it
// tears down: failed sends, woken receivers, aborted call setups.
type PeerDeadError struct {
	Local, Peer ProcID
	// Missed is how many beat intervals went silent; Elapsed how long ago
	// the peer was last heard (scheduler time).
	Missed  int
	Elapsed time.Duration
}

func (e *PeerDeadError) Error() string {
	return fmt.Sprintf("core(proc %d): peer %d dead (%d beats missed, silent %v)",
		e.Local, e.Peer, e.Missed, e.Elapsed)
}

// hbPeer is one monitored peer's detector state (scheduler domain).
type hbPeer struct {
	heard     bool
	misses    int
	lastHeard time.Duration
}

// markFail records a failure-domain decision on the proc's trace timeline
// (no-op without a Tracer): beats missed, peers declared dead, channels
// force-closed, redial attempts.
func (p *Proc) markFail(label string) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Mark(p.cfg.TraceName+"/fail", label)
	}
}

// startHeartbeat arms the proc-wide beat chain: one self-rescheduling timer
// serves every monitored peer, so a proc with 255 channels costs one armed
// timer per interval, not 255. Called from New; the chain stops re-arming
// once the proc is closing, so a virtual-time engine can quiesce.
func (p *Proc) startHeartbeat() {
	hb := p.cfg.Heartbeat
	if hb.Interval <= 0 {
		return
	}
	p.hbMisses = hb.Misses
	if p.hbMisses <= 0 {
		p.hbMisses = DefaultHeartbeatMisses
	}
	p.hbPeers = make(map[ProcID]*hbPeer)
	var tick func()
	tick = func() {
		if p.closing.Load() {
			return
		}
		p.heartbeatTick()
		p.cfg.After(hb.Interval, tick)
	}
	p.cfg.After(hb.Interval, tick)
}

// heartbeatTick is one detector pass: for every peer this proc currently
// has a channel to, check whether a beat (or beat ack) arrived since the
// last pass, count the miss otherwise, and declare the peer dead past the
// budget. A peer's first observation is all grace — monitoring starts with
// heard=true — so a freshly opened channel is never charged for silence
// that predates it.
func (p *Proc) heartbeatTick() {
	now := time.Duration(p.cfg.RT.Now())
	var last ProcID
	first := true
	for _, c := range p.channelsOrdered() {
		peer := c.peer
		if !first && peer == last {
			continue // one beat per peer, not per channel
		}
		first, last = false, peer
		if peer == p.cfg.ID {
			continue
		}
		if _, dead := p.deadPeers[peer]; dead {
			continue
		}
		hp := p.hbPeers[peer]
		if hp == nil {
			hp = &hbPeer{heard: true, lastHeard: now}
			p.hbPeers[peer] = hp
		}
		if hp.heard {
			hp.heard = false
			hp.misses = 0
			hp.lastHeard = now
		} else {
			hp.misses++
			p.markFail(fmt.Sprintf("beat-miss p%d n%d", peer, hp.misses))
			if hp.misses >= p.hbMisses {
				p.peerDead(peer, &PeerDeadError{
					Local: p.cfg.ID, Peer: peer,
					Missed: hp.misses, Elapsed: now - hp.lastHeard,
				})
				continue
			}
		}
		p.sendBeat(peer, 0)
	}
}

// sendBeat queues one heartbeat frame (word 0 = ping, 1 = ack) on the
// channel-0 control level toward the peer — the same route signaling takes
// (sendSigMsg), minus the marshalled SigMessage a beat doesn't need.
func (p *Proc) sendBeat(to ProcID, word uint32) {
	if p.sharded() {
		ln := p.DefaultChannel(to).lockLane()
		m := ln.getCtrlMsg()
		m.From = p.cfg.ID
		m.To = to
		m.Channel = 0
		m.Tag = tagSigBeat
		m.Data = wire.AppendUint32(m.Data[:0], word)
		req := ln.getReq()
		req.m = m
		req.ctrl = true
		ln.pending.push(ctrlLevel, req)
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
		return
	}
	p.sendCtrl(to, 0, tagSigBeat, word, true)
}

// onBeat consumes one arriving heartbeat frame (scheduler domain, routed by
// onSigMsg). Any beat — ping or ack — proves the peer alive; pings are
// echoed unconditionally, so detection works even when only one side runs a
// detector, and acks are never re-echoed.
func (p *Proc) onBeat(from ProcID, word uint32) {
	if hp := p.hbPeers[from]; hp != nil {
		hp.heard = true
	}
	if word == 0 && !p.closing.Load() {
		p.sendBeat(from, 1)
	}
}

// PeerDead returns the death record for peer, or nil while the peer is
// considered alive. Call from a thread of this process (scheduler domain).
func (p *Proc) PeerDead(peer ProcID) *PeerDeadError { return p.deadPeers[peer] }

// peerDead is the fail-fast teardown sweep: record the death, abort
// outstanding call setups toward the peer, force-close every channel to it
// through finalizeChannel (parked and future sends fail with the typed
// error, error-control windows abandon, VC routes and admission slots
// release), and fail every receive waiter that can now never match.
// Scheduler domain; idempotent.
func (p *Proc) peerDead(peer ProcID, err *PeerDeadError) {
	if _, dead := p.deadPeers[peer]; dead {
		return
	}
	if p.deadPeers == nil {
		p.deadPeers = make(map[ProcID]*PeerDeadError)
	}
	p.deadPeers[peer] = err
	p.markFail(fmt.Sprintf("peer-dead p%d", peer))
	// Outstanding SETUPs toward the peer fail now instead of burning their
	// whole retry budget. Refs are sorted: map iteration order must never
	// reach the timeline (determinism contract).
	var refs []uint32
	for ref, call := range p.sigCalls {
		if call.peer == peer && call.state == sigCalling {
			refs = append(refs, ref)
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, ref := range refs {
		call := p.sigCalls[ref]
		call.state = sigFailed
		call.cause = CausePeerDead
		delete(p.sigCalls, ref)
		call.ch.deadErr = err
		p.finalizeChannel(call.ch)
		p.wakeIfIdle(call.caller, "ncs call")
	}
	// Force-close every channel to the peer, static and signaled alike.
	// deadErr and the abandon happen under the lane lock (with the state
	// bumped so lane engines admit nothing more); finalizeChannel then runs
	// the ordinary teardown, which fails everything still queued with the
	// channel's sendFailErr — now the typed death.
	for _, c := range p.channelsOrdered() {
		if c.peer != peer {
			continue
		}
		p.markFail(fmt.Sprintf("force-close ch%d>%d", c.id, peer))
		if ln := c.lockLane(); ln != nil {
			c.deadErr = err
			if c.state.Load() < chanClosing {
				c.state.Store(chanClosing)
			}
			c.errc.abandon()
			ln.mu.Unlock()
		} else {
			c.deadErr = err
			if c.state.Load() < chanClosing {
				c.state.Store(chanClosing)
			}
			c.errc.abandon()
		}
		p.finalizeChannel(c)
	}
	p.failDeadWaiters()
	p.checkShutdownWake()
}

// failDeadWaiters sweeps the parked receive waiters and fails every one
// whose pattern can only ever match dead peers: a single-source waiter on a
// dead proc, or an any-of waiter whose whole set is dead. Woken waiters see
// w.err and re-raise it in recvMsgOn/recvAnyOf. In-place filter, scheduler
// domain: no timer can interleave between a waiter's append and its park.
func (p *Proc) failDeadWaiters() {
	if len(p.waiters) == 0 || len(p.deadPeers) == 0 {
		return
	}
	ws := p.waiters
	kept := ws[:0]
	for _, w := range ws {
		var err *PeerDeadError
		if w.multi == nil {
			if w.fromProc != ProcID(Any) {
				err = p.deadPeers[w.fromProc]
			}
		} else if len(w.multi) > 0 {
			err = p.deadPeers[w.multi[0].Proc]
			for _, a := range w.multi[1:] {
				if err == nil {
					break
				}
				if p.deadPeers[a.Proc] == nil {
					err = nil
				}
			}
		}
		if err == nil {
			kept = append(kept, w)
			continue
		}
		w.err = err
		p.wakeIfIdle(w.t.mt, "ncs recv")
	}
	for i := len(kept); i < len(ws); i++ {
		ws[i] = nil
	}
	p.waiters = kept
}

// deadRecvErr reports the death record dooming a receive pattern before it
// parks: a single-source pattern on a dead peer, or an any-of set entirely
// dead. nil when the pattern can still complete.
func (p *Proc) deadRecvErr(fromProc ProcID, set []Addr) *PeerDeadError {
	if len(p.deadPeers) == 0 {
		return nil
	}
	if set == nil {
		if fromProc == ProcID(Any) {
			return nil
		}
		return p.deadPeers[fromProc]
	}
	if len(set) == 0 {
		return nil
	}
	err := p.deadPeers[set[0].Proc]
	for _, a := range set[1:] {
		if err == nil {
			return nil
		}
		if p.deadPeers[a.Proc] == nil {
			return nil
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Recovery: Redial

// Redial defaults.
const (
	DefaultRedialAttempts = 5
	DefaultRedialBase     = time.Millisecond
)

// RedialPolicy parameterizes Proc.Redial: how many OpenCall attempts to
// spend, how the backoff between them grows, and which failures are worth
// retrying at all.
type RedialPolicy struct {
	// Attempts bounds total OpenCall attempts (0 selects
	// DefaultRedialAttempts).
	Attempts int
	// Base is the backoff before the first retry (0 selects
	// DefaultRedialBase); it doubles per retry, capped at Max (0 selects
	// 64×Base). A deterministic per-(proc, peer, attempt) jitter spreads
	// synchronized redialers.
	Base time.Duration
	Max  time.Duration
	// Retry judges whether an attempt's error merits another try; nil
	// selects DefaultRedialRetry.
	Retry func(error) bool
}

// DefaultRedialRetry is the cause-aware policy table: peer death and the
// transient signaling causes (timeout, busy, admission pressure, peer
// shutting down) are worth retrying — the peer may restart, the partition
// heal, the load pass. CauseUnsupported is permanent: the callee will never
// accept this QoS, so retrying is futile.
func DefaultRedialRetry(err error) bool {
	var pd *PeerDeadError
	if errors.As(err, &pd) {
		return true
	}
	var oe *OpenError
	if errors.As(err, &oe) {
		switch oe.Cause {
		case CauseTimeout, CauseBusy, CauseAdmissionDenied, CausePeerClosed, CausePeerDead:
			return true
		}
	}
	return false
}

// Redial opens a signaled channel to peer like OpenCall, but retries
// retriable failures under pol with capped exponential backoff and
// deterministic jitter — the application-level survival path after a peer
// restart or a healed partition. Each attempt starts the failure detector's
// view of the peer over (OpenCall clears the death record), so a recovered
// peer is re-observed with a fresh grace period. Call from a running thread
// of this process.
func (p *Proc) Redial(t *Thread, peer ProcID, cfg CallConfig, pol RedialPolicy) (*Channel, error) {
	attempts := pol.Attempts
	if attempts <= 0 {
		attempts = DefaultRedialAttempts
	}
	base := pol.Base
	if base <= 0 {
		base = DefaultRedialBase
	}
	maxB := pol.Max
	if maxB <= 0 {
		maxB = 64 * base
	}
	retry := pol.Retry
	if retry == nil {
		retry = DefaultRedialRetry
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := base << (attempt - 1)
			if d > maxB || d <= 0 {
				d = maxB
			}
			d += sigJitter(uint32(p.cfg.ID), uint32(peer), uint32(attempt), d/2)
			p.markFail(fmt.Sprintf("redial p%d #%d", peer, attempt))
			p.cfg.After(d, func() { p.wakeIfIdle(t.mt, "ncs redial") })
			t.mt.Park("ncs redial")
		}
		c, err := p.OpenCall(t, peer, cfg)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if !retry(err) {
			return nil, err
		}
	}
	return nil, lastErr
}
