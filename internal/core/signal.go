package core

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the signaled channel lifecycle: Proc.Open's static,
// both-ends-agree channel model wired through the SVC signaling story the
// paper's NYNET substrate provides (atm.SigMessage, the Q.2931-flavoured
// SETUP/CONNECT/RELEASE family carried on VPI 0 / VCI 5 by the simulated
// switch). OpenCall performs a blocking end-to-end call setup — the callee
// allocates the VC and discipline state, the caller gets a live channel or
// a typed rejection — and CloseCall performs a signaled close handshake
// that drains in-flight data on both ends before either releases its VC,
// discipline, flush-wheel, and lane-scheduler state.
//
// State machine (per channel end):
//
//	OPENING --CONNECT--> OPEN --CloseCall/RELEASE--> CLOSING --drained--> CLOSED
//	   \--REJECT/timeout--> CLOSED
//
// During CLOSING the channel's *receiver* role stays live — arriving data
// is delivered, credits and acks keep flowing so the peer can drain — but
// new sends fail with *ChannelClosedError. The end that finishes draining
// sends RELEASE; the peer drains its own sender side, answers
// RELEASE-COMPLETE, and both ends finalize: the channel leaves the table,
// the carrier unbinds the per-call VC route, and the admission policy gets
// its slot back. Every transition is balance-counted (channels opened ==
// closed, VCs bound == released, ...) so churn scenarios can assert zero
// leaked state; see Proc.Lifecycle and Proc.Leaks.
//
// Everything here runs in the scheduler domain: signaling frames arrive
// through handleControl (classic) or the lane drain (sharded), and every
// timer rides Config.After — so the same code is deterministic under a
// VirtualTime mesh and needs no locking for the call table or the per-
// channel signaling flags. The one lane-visible field, Channel.state, is
// atomic: lane engines read it on the send path (sendUnavailable) without
// entering the scheduler domain.

// Signaling control tags (continuing the reserved negative tag space of
// core.go). The wire codec carries tags as int32, so negatives survive the
// trip.
const (
	tagSigSetup   = -6
	tagSigConnect = -7
	tagSigReject  = -8
	tagSigRelease = -9
	tagSigRelComp = -10
)

// isSigTag reports whether tag is one of the signaling control tags
// (including the heartbeat, tagSigBeat in failure.go).
func isSigTag(tag int) bool { return tag <= tagSigSetup && tag >= tagSigBeat }

// Channel lifecycle states (Channel.state). Statically opened channels
// (Proc.Open, default channels) stay chanStatic forever: their lifecycle is
// Close's local-only teardown, unchanged.
const (
	chanStatic uint32 = iota
	chanOpening
	chanOpen
	chanClosing
	chanClosed
)

// CallCause classifies why a call setup was rejected or a channel released
// — the RELEASE/REJECT cause codes of the signaling protocol, surfaced as
// the typed failure in OpenError.
type CallCause uint8

// Call rejection / release causes.
const (
	CauseNone CallCause = iota
	// CauseAdmissionDenied: the callee's AdmissionPolicy refused the call.
	CauseAdmissionDenied
	// CauseBusy: the requested channel ID is already in use (or no ID is
	// free) between this process pair.
	CauseBusy
	// CauseTimeout: no CONNECT or REJECT within the retry budget — the peer
	// is unreachable, dead, or overloaded past responding.
	CauseTimeout
	// CauseUnsupported: the callee could not decode the requested QoS
	// (unknown discipline, invalid parameters).
	CauseUnsupported
	// CausePeerClosed: the callee process is shutting down.
	CausePeerClosed
	// CausePeerDead: the heartbeat failure detector declared the peer dead
	// (see failure.go); outstanding call setups toward it fail with this.
	CausePeerDead
)

func (c CallCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseAdmissionDenied:
		return "admission-denied"
	case CauseBusy:
		return "busy"
	case CauseTimeout:
		return "timeout"
	case CauseUnsupported:
		return "unsupported"
	case CausePeerClosed:
		return "peer-closed"
	case CausePeerDead:
		return "peer-dead"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// OpenError is OpenCall's typed failure: the signaling cause plus how many
// SETUP attempts were spent.
type OpenError struct {
	Peer     ProcID
	ID       ChannelID
	Cause    CallCause
	Attempts int
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("core: open channel %d to proc %d failed after %d attempt(s): %s",
		e.ID, e.Peer, e.Attempts, e.Cause)
}

// ChannelClosedError reports a send on a closed (or closing) channel. It is
// raised through the proc's exception handler — Send returns no error, as
// in the paper's API — uniformly across all disciplines and both execution
// paths; the default handler still panics.
type ChannelClosedError struct {
	Local, Peer ProcID
	ID          ChannelID
}

func (e *ChannelClosedError) Error() string {
	return fmt.Sprintf("core(proc %d): send on closed channel %d to proc %d", e.Local, e.ID, e.Peer)
}

// Setup handshake defaults (see CallConfig).
const (
	DefaultSetupTimeout = 10 * time.Millisecond
	DefaultSetupRetries = 3
)

// Release-handshake tuning: how long the closing end waits for
// RELEASE-COMPLETE before retransmitting RELEASE, and how many attempts it
// spends before force-finalizing against an unresponsive peer.
const (
	sigReleaseTimeout     = 10 * time.Millisecond
	sigMaxReleaseAttempts = 10
)

// sigDrainPoll is the close handshake's drain-check period: how often a
// CLOSING channel re-checks that its send queue, flow tier, and error tier
// have gone empty before the RELEASE may be sent.
const sigDrainPoll = 200 * time.Microsecond

// CallConfig parameterizes OpenCall: the ChannelConfig QoS selection plus
// the setup handshake's retry budget. The Flow/Error instances configure
// *this* end; their parameters travel in the SETUP so the callee builds
// matching disciplines (only the built-in disciplines — WindowFlow,
// RateFlow, GoBackN, SelectiveRepeat, or none — can travel; anything else
// fails with CauseUnsupported).
type CallConfig struct {
	// ID requests a specific channel ID (1..MaxChannelID); 0 lets the
	// caller pick the lowest free ID toward the peer.
	ID ChannelID
	// Priority, Lane, Weight: as ChannelConfig.
	Priority int
	Lane     int
	Weight   int
	// Flow and Error select the disciplines, as ChannelConfig.
	Flow  FlowControl
	Error ErrorControl
	// SetupTimeout is the per-attempt wait for CONNECT/REJECT; 0 selects
	// DefaultSetupTimeout.
	SetupTimeout time.Duration
	// Retries is the total SETUP attempt budget (first transmission
	// included); 0 selects DefaultSetupRetries.
	Retries int
	// Backoff is the extra delay added per retry attempt (linear, plus a
	// deterministic per-call jitter so synchronized callers spread out);
	// 0 selects SetupTimeout/2.
	Backoff time.Duration
	// IdleTimeout overrides the proc-wide Config.SigIdleTimeout for this
	// call on *both* ends (it travels in the SETUP): positive arms the
	// idle reaper at that period, negative disables it for this channel,
	// 0 inherits the proc-wide setting.
	IdleTimeout time.Duration
}

// ---------------------------------------------------------------------------
// Admission control

// AdmissionPolicy is the callee-side seam judging incoming SETUPs. All
// calls run in the callee's scheduler domain, so implementations need no
// locking; now is the scheduler clock (virtual under a VirtualTime mesh),
// injected so policies never touch the wall clock. Admit returning false
// rejects the call with the given cause (CauseNone maps to
// CauseAdmissionDenied). Release is called once per admitted call when the
// channel finalizes, so stateful policies (per-peer caps) can return the
// slot.
type AdmissionPolicy interface {
	Name() string
	Admit(peer ProcID, id ChannelID, now time.Duration) (bool, CallCause)
	Release(peer ProcID)
}

// AlwaysAdmit accepts every call — the default when Config.Admission is
// nil.
type AlwaysAdmit struct{}

// Name implements AdmissionPolicy.
func (AlwaysAdmit) Name() string                                             { return "always" }
func (AlwaysAdmit) Admit(ProcID, ChannelID, time.Duration) (bool, CallCause) { return true, CauseNone }
func (AlwaysAdmit) Release(ProcID)                                           {}

// TokenBucketAdmission admits calls at a sustained rate with a burst
// allowance: each admitted call costs one token, tokens refill at
// ratePerSec up to burst. Overload fails fast with CauseAdmissionDenied
// instead of queueing.
type TokenBucketAdmission struct {
	rate, burst float64
	tokens      float64
	last        time.Duration
	primed      bool
}

// NewTokenBucketAdmission builds a token-bucket policy; the bucket starts
// full.
func NewTokenBucketAdmission(ratePerSec, burst float64) *TokenBucketAdmission {
	return &TokenBucketAdmission{rate: ratePerSec, burst: burst, tokens: burst}
}

// Name implements AdmissionPolicy.
func (a *TokenBucketAdmission) Name() string { return "token-bucket" }

// Admit implements AdmissionPolicy.
func (a *TokenBucketAdmission) Admit(_ ProcID, _ ChannelID, now time.Duration) (bool, CallCause) {
	if a.primed {
		if dt := (now - a.last).Seconds(); dt > 0 {
			a.tokens += dt * a.rate
			if a.tokens > a.burst {
				a.tokens = a.burst
			}
		}
	}
	a.primed = true
	a.last = now
	if a.tokens < 1 {
		return false, CauseAdmissionDenied
	}
	a.tokens--
	return true, CauseNone
}

// Release implements AdmissionPolicy (token buckets meter setup rate, not
// concurrency, so nothing returns).
func (a *TokenBucketAdmission) Release(ProcID) {}

// PeerCapAdmission bounds concurrently open signaled channels per calling
// peer; slots return when channels finalize.
type PeerCapAdmission struct {
	max  int
	open map[ProcID]int
}

// NewPeerCapAdmission builds a per-peer concurrency cap.
func NewPeerCapAdmission(maxPerPeer int) *PeerCapAdmission {
	return &PeerCapAdmission{max: maxPerPeer, open: make(map[ProcID]int)}
}

// Name implements AdmissionPolicy.
func (a *PeerCapAdmission) Name() string { return "peer-cap" }

// Admit implements AdmissionPolicy.
func (a *PeerCapAdmission) Admit(peer ProcID, _ ChannelID, _ time.Duration) (bool, CallCause) {
	if a.open[peer] >= a.max {
		return false, CauseAdmissionDenied
	}
	a.open[peer]++
	return true, CauseNone
}

// Release implements AdmissionPolicy.
func (a *PeerCapAdmission) Release(peer ProcID) {
	if a.open[peer] > 0 {
		a.open[peer]--
	}
}

// ---------------------------------------------------------------------------
// Caller side: OpenCall

// sigCall states.
const (
	sigCalling = iota
	sigConnected
	sigFailed
)

// sigCall is one outstanding outgoing call setup, keyed by call reference
// in Proc.sigCalls. Scheduler-domain state.
type sigCall struct {
	ref       uint32
	peer      ProcID
	id        ChannelID
	cfg       CallConfig
	caller    *mts.Thread
	callerIdx int
	state     int
	cause     CallCause
	attempt   int
	ch        *Channel
}

// OpenCall opens a signaled channel to peer: it sends SETUP through the
// signaling band, parks the calling thread until the callee answers
// CONNECT (returning the live channel) or REJECT (returning *OpenError
// with the callee's cause), retransmitting with linear jittered backoff up
// to cfg.Retries attempts before giving up with CauseTimeout. Unlike
// Proc.Open, only this end calls it — the callee allocates its channel and
// discipline state from the SETUP's parameters. Call from a running thread
// of this process.
func (p *Proc) OpenCall(t *Thread, peer ProcID, cfg CallConfig) (*Channel, error) {
	if t.proc != p {
		panic("core: thread opening a call on another process")
	}
	if peer == p.cfg.ID {
		panic("core: cannot open a signaled channel to self")
	}
	if cfg.Priority < 0 || cfg.Priority >= NumChannelPriorities {
		panic(fmt.Sprintf("core: channel priority must be 0..%d", NumChannelPriorities-1))
	}
	if cfg.Weight < 0 {
		panic("core: channel weight must be >= 0 (0 selects Priority+1)")
	}
	if cfg.SetupTimeout <= 0 {
		cfg.SetupTimeout = DefaultSetupTimeout
	}
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultSetupRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = cfg.SetupTimeout / 2
	}
	words, ok := encodeCallWords(cfg)
	if !ok {
		return nil, &OpenError{Peer: peer, ID: cfg.ID, Cause: CauseUnsupported}
	}
	id := cfg.ID
	if id == 0 {
		if id = p.freeChannelID(peer); id == 0 {
			return nil, &OpenError{Peer: peer, Cause: CauseBusy}
		}
	} else {
		if id > MaxChannelID {
			panic(fmt.Sprintf("core: channel ID must be 1..%d (0 picks a free ID)", MaxChannelID))
		}
		p.chanMu.RLock()
		_, dup := p.channels[chanKey{peer: peer, id: id}]
		p.chanMu.RUnlock()
		if dup {
			return nil, &OpenError{Peer: peer, ID: id, Cause: CauseBusy}
		}
	}
	fc := cfg.Flow
	if fc == nil {
		fc = NoFlowControl{}
	}
	ec := cfg.Error
	if ec == nil {
		ec = NoErrorControl{}
	}
	// Dialing (or re-dialing) a peer starts the failure detector's view of
	// it over: the death record clears and monitoring restarts with a fresh
	// grace period, so Redial can reach a restarted peer.
	delete(p.deadPeers, peer)
	delete(p.hbPeers, peer)
	c := p.addChannel(chanKey{peer: peer, id: id}, cfg.Priority, cfg.Lane, cfg.Weight, fc, ec)
	c.idleOver = cfg.IdleTimeout
	p.sigRefSeq++
	ref := p.sigRefSeq
	c.state.Store(chanOpening)
	c.sigInit = true
	c.sigRef = ref
	if p.sigCalls == nil {
		p.sigCalls = make(map[uint32]*sigCall)
	}
	call := &sigCall{ref: ref, peer: peer, id: id, cfg: cfg, caller: t.mt, callerIdx: t.idx, attempt: 1, ch: c}
	p.sigCalls[ref] = call
	p.statSetupsSent.Add(1)
	p.sendSetup(call, words)
	p.armSetupTimer(call, 1)
	// The signaling handlers and timers all run in the scheduler domain, so
	// the state cannot change between this check and the park — no lost
	// wakeup is possible.
	for call.state == sigCalling {
		t.mt.Park("ncs call")
	}
	if call.state == sigConnected {
		return c, nil
	}
	return nil, &OpenError{Peer: peer, ID: id, Cause: call.cause, Attempts: call.attempt}
}

// freeChannelID scans for the lowest unused explicit channel ID toward
// peer (0 when the whole space is occupied).
func (p *Proc) freeChannelID(peer ProcID) ChannelID {
	p.chanMu.RLock()
	defer p.chanMu.RUnlock()
	for id := 1; id <= MaxChannelID; id++ {
		if _, ok := p.channels[chanKey{peer: peer, id: ChannelID(id)}]; !ok {
			return ChannelID(id)
		}
	}
	return 0
}

func (p *Proc) sendSetup(call *sigCall, words [8]uint32) {
	sig := atm.SigMessage{
		Type:    atm.SigSetup,
		CallRef: call.ref,
		Caller:  int32(p.cfg.ID),
		Called:  int32(call.peer),
		Forward: atm.VC{VPI: uint8(call.id)},
	}
	// The 9th word after the QoS block is the calling-party thread index,
	// surfaced on the callee as Channel.PeerThread so a serving thread can
	// address the opener before any application rendezvous; the 10th is the
	// per-call idle-timeout override, so both ends arm the same reaper.
	p.sendSigMsg(call.peer, tagSigSetup, sig,
		append(words[:], uint32(call.callerIdx), encodeIdleWord(call.cfg.IdleTimeout))...)
}

// armSetupTimer schedules attempt's timeout: the per-attempt SetupTimeout
// plus linear backoff and a deterministic per-(proc, call, attempt) jitter
// so a mesh of synchronized callers doesn't retry in lockstep.
func (p *Proc) armSetupTimer(call *sigCall, attempt int) {
	d := call.cfg.SetupTimeout + time.Duration(attempt-1)*call.cfg.Backoff +
		sigJitter(uint32(p.cfg.ID), call.ref, uint32(attempt), call.cfg.Backoff)
	p.cfg.After(d, func() { p.setupTimeout(call, attempt) })
}

func (p *Proc) setupTimeout(call *sigCall, attempt int) {
	// Stale-timer guard: the call may have completed, failed, or already
	// moved past this attempt.
	cur, ok := p.sigCalls[call.ref]
	if !ok || cur != call || call.state != sigCalling || call.attempt != attempt {
		return
	}
	if attempt < call.cfg.Retries {
		call.attempt = attempt + 1
		p.statSetupRetries.Add(1)
		p.statSetupsSent.Add(1)
		words, _ := encodeCallWords(call.cfg)
		p.sendSetup(call, words)
		p.armSetupTimer(call, call.attempt)
		return
	}
	call.state = sigFailed
	call.cause = CauseTimeout
	delete(p.sigCalls, call.ref)
	// Fire-and-forget RELEASE: if the peer did accept (its CONNECT was
	// lost), this tears its half-open channel down instead of leaking it.
	p.sendReleaseRaw(call.peer, call.id, call.ref, CauseTimeout)
	p.finalizeChannel(call.ch)
	p.wakeIfIdle(call.caller, "ncs call")
}

// sigJitter derives a deterministic jitter in [0, span) from three words
// (FNV-1a), so retry/release timers spread without touching a global RNG —
// the virtual-time determinism contract.
func sigJitter(a, b, c uint32, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := uint32(2166136261)
	for _, v := range [3]uint32{a, b, c} {
		for i := 0; i < 4; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 16777619
		}
	}
	return time.Duration(h%1024) * span / 1024
}

// ---------------------------------------------------------------------------
// QoS parameter encoding
//
// A SETUP carries the call's QoS as 8 uint32 words after the marshalled
// SigMessage: [priority, weight, flowKind, flowA, flowB, errKind, errA,
// errB]. flowKind 0 = none, 1 = window (A = Window, B = SyncInterval µs),
// 2 = rate (A = bytes/s, B = bucket bytes); errKind 0 = none, 1 =
// go-back-N, 2 = selective repeat (A = Window, B = Timeout µs). A 9th
// word follows with the calling-party thread index (Channel.PeerThread),
// and a 10th with the per-call idle-timeout override (encodeIdleWord).

func encodeCallWords(cfg CallConfig) ([8]uint32, bool) {
	var w [8]uint32
	w[0] = uint32(cfg.Priority)
	w[1] = uint32(cfg.Weight)
	switch fc := cfg.Flow.(type) {
	case nil:
	case NoFlowControl:
	case *WindowFlow:
		w[2] = 1
		w[3] = satU32(int64(fc.Window))
		w[4] = satU32(int64(fc.SyncInterval / time.Microsecond))
	case *RateFlow:
		w[2] = 2
		w[3] = satU32f(fc.Rate)
		w[4] = satU32f(fc.Bucket)
	default:
		return w, false
	}
	switch ec := cfg.Error.(type) {
	case nil:
	case NoErrorControl:
	case *GoBackN:
		w[5] = 1
		w[6] = satU32(int64(ec.Window))
		w[7] = satU32(int64(ec.Timeout / time.Microsecond))
	case *SelectiveRepeat:
		w[5] = 2
		w[6] = satU32(int64(ec.Window))
		w[7] = satU32(int64(ec.Timeout / time.Microsecond))
	default:
		return w, false
	}
	return w, true
}

func decodeCallWords(w []uint32) (prio, weight int, fc FlowControl, ec ErrorControl, ok bool) {
	if len(w) < 8 {
		return 0, 0, nil, nil, false
	}
	prio, weight = int(w[0]), int(w[1])
	if prio >= NumChannelPriorities || weight < 0 {
		return 0, 0, nil, nil, false
	}
	switch w[2] {
	case 0:
		fc = NoFlowControl{}
	case 1:
		if w[3] < 1 {
			return 0, 0, nil, nil, false
		}
		f := NewWindowFlow(int(w[3]))
		f.SyncInterval = time.Duration(w[4]) * time.Microsecond
		fc = f
	case 2:
		if w[3] == 0 || w[4] == 0 {
			return 0, 0, nil, nil, false
		}
		fc = NewRateFlow(float64(w[3]), float64(w[4]))
	default:
		return 0, 0, nil, nil, false
	}
	switch w[5] {
	case 0:
		ec = NoErrorControl{}
	case 1:
		if w[6] < 1 || w[7] < 1 {
			return 0, 0, nil, nil, false
		}
		ec = NewGoBackN(int(w[6]), time.Duration(w[7])*time.Microsecond)
	case 2:
		if w[6] < 1 || w[7] < 1 {
			return 0, 0, nil, nil, false
		}
		ec = NewSelectiveRepeat(int(w[6]), time.Duration(w[7])*time.Microsecond)
	default:
		return 0, 0, nil, nil, false
	}
	return prio, weight, fc, ec, true
}

// encodeIdleWord packs CallConfig.IdleTimeout into its SETUP word:
// microseconds, with all-ones meaning "explicitly disabled" and zero
// "inherit the proc-wide SigIdleTimeout". decodeIdleWord inverts it.
func encodeIdleWord(d time.Duration) uint32 {
	if d < 0 {
		return ^uint32(0)
	}
	return satU32(int64(d / time.Microsecond))
}

func decodeIdleWord(w uint32) time.Duration {
	if w == ^uint32(0) {
		return -1
	}
	return time.Duration(w) * time.Microsecond
}

func satU32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

func satU32f(v float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > float64(1<<32-1) {
		return 1<<32 - 1
	}
	return uint32(v)
}

// ---------------------------------------------------------------------------
// Wire plumbing

// sendSigMsg queues one signaling frame toward the peer: sig marshalled
// plus the trailing uint32 words, riding the control level like every
// other control frame. Signaling always travels on channel 0 — the
// pre-provisioned default mesh, the analogue of ATM's well-known
// signaling circuit — because the channel under negotiation has no VC
// route yet (SETUP) or no longer has one (late RELEASE retries); the
// channel the call is about rides in sig.Forward's VPI.
func (p *Proc) sendSigMsg(to ProcID, tag int, sig atm.SigMessage, words ...uint32) {
	if p.sharded() {
		// Scheduler-domain control toward a peer, exactly as sendCtrlVec:
		// route through the peer's default-channel lane.
		ln := p.DefaultChannel(to).lockLane()
		m := ln.getCtrlMsg()
		m.From = p.cfg.ID
		m.To = to
		m.Channel = 0
		m.Tag = tag
		m.Data = append(m.Data[:0], sig.Marshal()...)
		for _, w := range words {
			m.Data = wire.AppendUint32(m.Data, w)
		}
		req := ln.getReq()
		req.m = m
		req.ctrl = true
		ln.pending.push(ctrlLevel, req)
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
		return
	}
	m := p.getCtrlMsg()
	m.From = p.cfg.ID
	m.To = to
	m.Channel = 0
	m.Tag = tag
	m.Data = append(m.Data[:0], sig.Marshal()...)
	for _, w := range words {
		m.Data = wire.AppendUint32(m.Data, w)
	}
	req := p.getReq()
	req.m = m
	req.ctrl = true
	p.enqueueSend(req)
}

// onSigMsg dispatches one arriving signaling frame. Scheduler domain; the
// caller releases m afterwards, so nothing here may retain it.
func (p *Proc) onSigMsg(m *transport.Message) {
	if m.Tag == tagSigBeat {
		// Heartbeats are bare one-word frames — no marshalled SigMessage.
		if len(m.Data) >= 4 {
			p.onBeat(m.From, wire.Uint32(m.Data))
		}
		return
	}
	if len(m.Data) < atm.SigWireSize {
		p.exception(fmt.Errorf("core: short signaling frame (%d bytes) from proc %d", len(m.Data), m.From))
		return
	}
	sig, err := atm.UnmarshalSig(m.Data[:atm.SigWireSize])
	if err != nil {
		p.exception(fmt.Errorf("core: bad signaling frame from proc %d: %v", m.From, err))
		return
	}
	rest := m.Data[atm.SigWireSize:]
	nw := len(rest) / 4
	if nw > 10 {
		nw = 10
	}
	var words [10]uint32
	for i := 0; i < nw; i++ {
		words[i] = wire.Uint32(rest[4*i:])
	}
	// Signaling frames ride channel 0; the channel under negotiation is
	// the forward VC's VPI (see sendSigMsg).
	id := ChannelID(sig.Forward.VPI)
	switch m.Tag {
	case tagSigSetup:
		if nw < 8 {
			p.exception(fmt.Errorf("core: SETUP from proc %d carries %d QoS words, want 8", m.From, nw))
			return
		}
		p.onSetup(m.From, id, sig, words)
	case tagSigConnect:
		p.onConnect(sig)
	case tagSigReject:
		cause := CauseAdmissionDenied
		if nw >= 1 {
			cause = CallCause(words[0])
		}
		p.onReject(sig, cause)
	case tagSigRelease:
		cause := CauseNone
		if nw >= 1 {
			cause = CallCause(words[0])
		}
		p.onRelease(m.From, id, sig, cause)
	case tagSigRelComp:
		p.onRelComp(m.From, id)
	}
}

// ---------------------------------------------------------------------------
// Callee side

// pendingSetup is one queued incoming call (Config.AcceptQueue).
type pendingSetup struct {
	from  ProcID
	id    ChannelID
	sig   atm.SigMessage
	words [10]uint32
}

// onSetup judges one incoming call: admission policy, QoS decode, channel
// allocation, VC bind — then CONNECT; any refusal answers REJECT with a
// cause instead of leaving the caller hanging. With Config.AcceptQueue set
// the SETUP instead joins a bounded listener-side queue and is served one
// per scheduler pass — backpressure instead of instant rejection when the
// app is slow in OnAccept — overflowing with CauseBusy.
func (p *Proc) onSetup(from ProcID, id ChannelID, sig atm.SigMessage, words [10]uint32) {
	// A peer dialing us is alive by definition: clear any stale death
	// record so its new call is monitored with a fresh grace period.
	delete(p.deadPeers, from)
	delete(p.hbPeers, from)
	if p.setupPrechecked(from, id, sig) {
		return
	}
	if p.cfg.AcceptQueue > 0 {
		for _, ps := range p.acceptQ {
			if ps.from == from && ps.id == id && ps.sig.CallRef == sig.CallRef {
				return // retransmitted SETUP; the original is still queued
			}
		}
		if len(p.acceptQ) >= p.cfg.AcceptQueue {
			p.rejectSetup(from, sig, CauseBusy)
			return
		}
		p.acceptQ = append(p.acceptQ, pendingSetup{from: from, id: id, sig: sig, words: words})
		if !p.acceptOn {
			p.acceptOn = true
			p.cfg.After(0, p.acceptNext)
		}
		return
	}
	p.acceptSetup(from, id, sig, words)
}

// rejectSetup answers a SETUP with REJECT and the given cause.
func (p *Proc) rejectSetup(from ProcID, sig atm.SigMessage, cause CallCause) {
	p.statSetupsRejected.Add(1)
	rs := atm.SigMessage{Type: atm.SigReject, CallRef: sig.CallRef, Caller: sig.Caller, Called: sig.Called, Forward: sig.Forward}
	p.sendSigMsg(from, tagSigReject, rs, uint32(cause))
}

// setupPrechecked runs the synchronous, idempotent SETUP checks — invalid
// ID, closing proc, duplicate call — answering directly (REJECT, or a
// repeated CONNECT for a call already accepted) and reporting whether the
// SETUP is fully dealt with. Runs both on arrival and again when a queued
// SETUP is finally served, since the state may have moved in between.
func (p *Proc) setupPrechecked(from ProcID, id ChannelID, sig atm.SigMessage) bool {
	if id == 0 || id > MaxChannelID {
		p.rejectSetup(from, sig, CauseUnsupported)
		return true
	}
	if p.closing.Load() {
		p.rejectSetup(from, sig, CausePeerClosed)
		return true
	}
	p.chanMu.RLock()
	exist, dup := p.channels[chanKey{peer: from, id: id}]
	p.chanMu.RUnlock()
	if dup {
		if exist.sigRef == sig.CallRef && !exist.sigInit && exist.state.Load() == chanOpen {
			// Duplicate SETUP for a call we already accepted (our CONNECT
			// was lost, or the retry raced it): answer again, idempotently.
			p.sendConnect(from, id, sig)
			return true
		}
		p.rejectSetup(from, sig, CauseBusy)
		return true
	}
	return false
}

// acceptNext serves the head of the accept queue and re-arms for the rest:
// one call per zero-delay scheduler event, so a burst of SETUPs cannot
// monopolize a pass, and each queued call is re-prechecked at serve time.
func (p *Proc) acceptNext() {
	if len(p.acceptQ) == 0 {
		p.acceptOn = false
		return
	}
	ps := p.acceptQ[0]
	n := copy(p.acceptQ, p.acceptQ[1:])
	p.acceptQ[n] = pendingSetup{}
	p.acceptQ = p.acceptQ[:n]
	if !p.setupPrechecked(ps.from, ps.id, ps.sig) {
		p.acceptSetup(ps.from, ps.id, ps.sig, ps.words)
	}
	if len(p.acceptQ) > 0 {
		p.cfg.After(0, p.acceptNext)
	} else {
		p.acceptOn = false
	}
}

// acceptSetup is the accept tail shared by the direct and queued paths:
// admission, QoS decode, channel allocation, VC bind, CONNECT, OnAccept.
func (p *Proc) acceptSetup(from ProcID, id ChannelID, sig atm.SigMessage, words [10]uint32) {
	pol := p.cfg.Admission
	if pol == nil {
		pol = AlwaysAdmit{}
	}
	if ok, cause := pol.Admit(from, id, time.Duration(p.cfg.RT.Now())); !ok {
		if cause == CauseNone {
			cause = CauseAdmissionDenied
		}
		p.rejectSetup(from, sig, cause)
		return
	}
	prio, weight, fc, ec, ok := decodeCallWords(words[:])
	if !ok {
		pol.Release(from)
		p.rejectSetup(from, sig, CauseUnsupported)
		return
	}
	c := p.addChannel(chanKey{peer: from, id: id}, prio, 0, weight, fc, ec)
	c.state.Store(chanOpen)
	c.everOpen = true
	c.sigRef = sig.CallRef
	c.sigAdmitted = true
	c.peerThread = int(words[8])
	c.idleOver = decodeIdleWord(words[9])
	p.statSetupsAccepted.Add(1)
	p.statOpened.Add(1)
	p.bindVC(c)
	p.armIdleTeardown(c)
	p.sendConnect(from, id, sig)
	if p.cfg.OnAccept != nil {
		p.cfg.OnAccept(c)
	}
}

func (p *Proc) sendConnect(to ProcID, id ChannelID, sig atm.SigMessage) {
	cs := atm.SigMessage{
		Type: atm.SigConnect, CallRef: sig.CallRef, Caller: sig.Caller, Called: sig.Called,
		Forward: atm.VC{VPI: uint8(id)}, Backward: atm.VC{VPI: uint8(id)},
	}
	p.sendSigMsg(to, tagSigConnect, cs)
}

func (p *Proc) onConnect(sig atm.SigMessage) {
	call, ok := p.sigCalls[sig.CallRef]
	if !ok || call.state != sigCalling {
		return // late or duplicate CONNECT; the call already resolved
	}
	c := call.ch
	c.state.Store(chanOpen)
	c.everOpen = true
	p.statOpened.Add(1)
	p.bindVC(c)
	p.armIdleTeardown(c)
	delete(p.sigCalls, sig.CallRef)
	call.state = sigConnected
	p.wakeIfIdle(call.caller, "ncs call")
}

func (p *Proc) onReject(sig atm.SigMessage, cause CallCause) {
	call, ok := p.sigCalls[sig.CallRef]
	if !ok || call.state != sigCalling {
		return
	}
	if cause == CauseNone {
		cause = CauseAdmissionDenied
	}
	call.state = sigFailed
	call.cause = cause
	delete(p.sigCalls, sig.CallRef)
	p.finalizeChannel(call.ch)
	p.wakeIfIdle(call.caller, "ncs call")
}

// ---------------------------------------------------------------------------
// Close handshake

// CloseCall closes a signaled channel with a full handshake: new sends on
// this end fail immediately, in-flight data and pending control drain,
// then a RELEASE tells the peer — which drains its own sender side and
// answers RELEASE-COMPLETE — and both ends release their VC, discipline,
// flush-wheel, and lane-scheduler state. The calling thread parks until
// this end has finalized. Idempotent; concurrent CloseCalls from several
// threads all wake when teardown completes. Statically opened channels
// (Proc.Open) are not signaled — use Close.
func (c *Channel) CloseCall(t *Thread) error {
	if t.proc != c.p {
		panic("core: thread closing another process's channel")
	}
	if c.sigRef == 0 {
		return fmt.Errorf("core: channel %d to proc %d is not signaled; use Close", c.id, c.peer)
	}
	if c.closedDone {
		return nil
	}
	p := c.p
	c.closeWaiters = append(c.closeWaiters, t.mt)
	p.startClose(c, CauseNone)
	for !c.closedDone {
		t.mt.Park("ncs close")
	}
	return nil
}

// startClose begins the active close: stop admitting sends, drain, then
// RELEASE. Idempotent; also the entry point for timer-driven closes (idle
// teardown), which have no waiter to wake.
func (p *Proc) startClose(c *Channel, cause CallCause) {
	if c.closeStarted || c.closedDone {
		return
	}
	c.closeStarted = true
	p.beginClosing(c)
	p.afterDrained(c, func() { p.sendRelease(c, cause) })
}

// beginClosing moves the channel to CLOSING: pending reverse control
// flushes, the disciplines shut down (gated sends fail; the in-flight
// error-control window keeps draining), and new sends start failing via
// sendUnavailable. The receiver role stays live so the peer can drain.
func (p *Proc) beginClosing(c *Channel) {
	if ln := c.lockLane(); ln != nil {
		if c.state.Load() >= chanClosing {
			ln.mu.Unlock()
			return
		}
		c.state.Store(chanClosing)
		c.flushCtrl()
		c.flow.shutdown()
		c.errc.shutdown()
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
		return
	}
	if c.state.Load() >= chanClosing {
		return
	}
	c.state.Store(chanClosing)
	c.flushCtrl()
	c.flow.shutdown()
	c.errc.shutdown()
}

// drainedForClose reports whether the channel's sender side has fully
// drained: nothing queued in the lane scheduler, nothing deferred in the
// flow tier, and nothing in flight awaiting acknowledgement. Termination
// is guaranteed — the disciplines' MaxRetries abandonment empties the
// in-flight window even against a dead peer.
func (p *Proc) drainedForClose(c *Channel) bool {
	c.laneLock()
	drained := c.sq.Size() == 0 && c.flow.queued() == 0 && c.errc.queued() == 0 && c.errc.pending() == 0
	c.laneUnlock()
	return drained
}

// afterDrained runs fn once drainedForClose holds, polling on the
// scheduler clock. The chain stops dead if the channel finalizes first
// (the peer's close won the race) so a virtual-time engine can quiesce.
func (p *Proc) afterDrained(c *Channel, fn func()) {
	var poll func()
	poll = func() {
		if c.closedDone {
			return
		}
		if p.drainedForClose(c) {
			fn()
			return
		}
		p.cfg.After(sigDrainPoll, poll)
	}
	poll()
}

// sendRelease transmits RELEASE and arms its retransmission: a lost
// RELEASE or RELEASE-COMPLETE is survived by retrying, an unresponsive
// peer by force-finalizing after sigMaxReleaseAttempts.
func (p *Proc) sendRelease(c *Channel, cause CallCause) {
	if c.closedDone {
		return
	}
	c.relSent = true
	c.relAttempt++
	attempt := c.relAttempt
	if attempt > sigMaxReleaseAttempts {
		p.finalizeChannel(c)
		return
	}
	p.sendReleaseRaw(c.peer, c.id, c.sigRef, cause)
	d := sigReleaseTimeout + sigJitter(uint32(p.cfg.ID), c.sigRef, uint32(attempt), sigReleaseTimeout/2)
	p.cfg.After(d, func() {
		if c.closedDone || c.relAttempt != attempt {
			return
		}
		p.sendRelease(c, cause)
	})
}

func (p *Proc) sendReleaseRaw(peer ProcID, id ChannelID, ref uint32, cause CallCause) {
	sig := atm.SigMessage{
		Type: atm.SigRelease, CallRef: ref,
		Caller: int32(p.cfg.ID), Called: int32(peer),
		Forward: atm.VC{VPI: uint8(id)},
	}
	p.sendSigMsg(peer, tagSigRelease, sig, uint32(cause))
}

// onRelease handles the peer's RELEASE: the passive side of the close
// handshake. It drains this end's sender side before answering
// RELEASE-COMPLETE, so data already admitted still arrives; every
// duplicate or late RELEASE is answered idempotently.
func (p *Proc) onRelease(from ProcID, id ChannelID, sig atm.SigMessage, cause CallCause) {
	relComp := func() {
		rc := atm.SigMessage{
			Type: atm.SigReleaseComplete, CallRef: sig.CallRef,
			Caller: sig.Caller, Called: sig.Called,
			Forward: atm.VC{VPI: uint8(id)},
		}
		p.sendSigMsg(from, tagSigRelComp, rc)
	}
	_ = cause
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: from, id: id}]
	p.chanMu.RUnlock()
	if !ok || c.closedDone {
		// Already finalized here (or never existed — a timed-out caller
		// releasing a half-open call): completing again is idempotent.
		relComp()
		return
	}
	if c.sigRef == 0 {
		return // statically opened channel; signaling doesn't own it
	}
	if c.relSent || c.closeStarted {
		// Simultaneous close, or the peer finished draining first:
		// whatever is still in flight from this end has no receiver
		// anymore, so cut the local drain short and complete.
		p.finalizeChannel(c)
		relComp()
		return
	}
	if c.relPeer {
		return // passive drain already running; RELCOMP follows when done
	}
	c.relPeer = true
	p.beginClosing(c)
	p.afterDrained(c, func() {
		// Finalize before answering: the instant RELEASE-COMPLETE reaches
		// the peer it may reuse this channel ID for a fresh SETUP, and that
		// SETUP must not find the old entry still in the table (a REJECT
		// busy on a correctly closed ID). A lost RELCOMP is already covered
		// by the idempotent not-found branch above when RELEASE retries.
		p.finalizeChannel(c)
		relComp()
	})
}

func (p *Proc) onRelComp(from ProcID, id ChannelID) {
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: from, id: id}]
	p.chanMu.RUnlock()
	if !ok || c.closedDone || !c.relSent {
		return
	}
	p.finalizeChannel(c)
}

// finalizeChannel is the terminal transition: the channel leaves the
// proc's table, its lane-scheduler and flush-wheel state detaches, queued
// sends fail with ChannelClosedError, the VC route unbinds, and the
// admission slot returns. Idempotent; scheduler domain.
func (p *Proc) finalizeChannel(c *Channel) {
	if c == nil || c.closedDone {
		return
	}
	if ln := c.lockLane(); ln != nil {
		if c.state.Load() == chanClosed {
			ln.mu.Unlock()
			return
		}
		c.flushCtrl()
		c.state.Store(chanClosed)
		c.closed = true
		c.flow.shutdown()
		c.errc.shutdown()
		ln.detachChanLocked(c)
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
	} else {
		if c.state.Load() == chanClosed {
			return
		}
		c.flushCtrl()
		c.state.Store(chanClosed)
		c.closed = true
		c.flow.shutdown()
		c.errc.shutdown()
	}
	p.chanMu.Lock()
	delete(p.channels, chanKey{peer: c.peer, id: c.id})
	p.chanMu.Unlock()
	if c.everOpen {
		p.statClosed.Add(1)
	}
	p.unbindVC(c)
	if c.sigAdmitted {
		c.sigAdmitted = false
		if p.cfg.Admission != nil {
			p.cfg.Admission.Release(c.peer)
		}
	}
	c.closedDone = true
	for _, mt := range c.closeWaiters {
		p.wakeIfIdle(mt, "ncs close")
	}
	c.closeWaiters = nil
	p.checkShutdownWake()
}

// bindVC / unbindVC install and remove the channel's per-call VC route in
// the carrier, when the carrier routes per call (transport.ChannelRouter).
// The balance counters tick regardless, so leak accounting is uniform
// across carriers.
func (p *Proc) bindVC(c *Channel) {
	if c.vcBound {
		return
	}
	c.vcBound = true
	p.statVCBound.Add(1)
	if cr, ok := p.cfg.Endpoint.(transport.ChannelRouter); ok {
		cr.BindChannel(c.peer, c.id)
	}
}

func (p *Proc) unbindVC(c *Channel) {
	if !c.vcBound {
		return
	}
	c.vcBound = false
	p.statVCRel.Add(1)
	if cr, ok := p.cfg.Endpoint.(transport.ChannelRouter); ok {
		cr.UnbindChannel(c.peer, c.id)
	}
}

// armIdleTeardown starts the idle-channel reaper chain: when
// Config.SigIdleTimeout (or the call's CallConfig.IdleTimeout override,
// carried in the SETUP so both ends agree) is set and a signaled channel
// moves no traffic for a full period, this end closes it — the survival
// path against a peer that crashed after CONNECT. The chain re-arms only
// while the channel is OPEN and the proc is running, so it cannot keep a
// virtual-time engine alive.
func (p *Proc) armIdleTeardown(c *Channel) {
	idle := p.cfg.SigIdleTimeout
	if c.idleOver != 0 {
		idle = c.idleOver
	}
	if idle <= 0 {
		return
	}
	last := c.sent.Load() + c.received.Load()
	var tick func()
	tick = func() {
		if p.closing.Load() || c.closedDone || c.state.Load() != chanOpen {
			return
		}
		cur := c.sent.Load() + c.received.Load()
		if cur == last {
			p.startClose(c, CauseTimeout)
			return
		}
		last = cur
		p.cfg.After(idle, tick)
	}
	p.cfg.After(idle, tick)
}

// ---------------------------------------------------------------------------
// Balance counters

// LifecycleStats is the proc's signaled-lifecycle ledger: paired counters
// that must balance at quiesce (opened/closed, bound/released,
// armed/fired, pushed/drained) plus the setup funnel a churn scenario
// measures (sent/accepted/rejected/retries).
type LifecycleStats struct {
	// Opened counts channels that reached OPEN on this end (both roles);
	// Closed counts those that reached CLOSED after being open.
	Opened, Closed int64
	// The setup funnel, caller side (SetupsSent includes retries) and
	// callee side (accepted/rejected).
	SetupsSent, SetupsAccepted, SetupsRejected, SetupRetries int64
	// VCsBound / VCsReleased count per-call VC route installs/removals.
	VCsBound, VCsReleased int64
	// TimersArmed / TimersFired count every Config.After scheduling and
	// firing (VirtualTime procs only; zero in real mode).
	TimersArmed, TimersFired int64
	// RingPushed / RingDrained count lane MPSC ring entries (sharded mode).
	RingPushed, RingDrained int64
	// LateCtrl counts control frames that arrived for a channel already
	// finalized (dropped; cumulative control is supersede-safe).
	LateCtrl int64
}

// Lifecycle snapshots the proc's lifecycle counters.
func (p *Proc) Lifecycle() LifecycleStats {
	return LifecycleStats{
		Opened:         p.statOpened.Load(),
		Closed:         p.statClosed.Load(),
		SetupsSent:     p.statSetupsSent.Load(),
		SetupsAccepted: p.statSetupsAccepted.Load(),
		SetupsRejected: p.statSetupsRejected.Load(),
		SetupRetries:   p.statSetupRetries.Load(),
		VCsBound:       p.statVCBound.Load(),
		VCsReleased:    p.statVCRel.Load(),
		TimersArmed:    p.statTimersArmed.Load(),
		TimersFired:    p.statTimersFired.Load(),
		RingPushed:     p.statRingPush.Load(),
		RingDrained:    p.statRingDrain.Load(),
		LateCtrl:       p.statLateCtrl.Load(),
	}
}

// Leaks reports every unbalanced lifecycle counter at quiesce (empty =
// nothing leaked). The timer and ring balances are asserted only under
// VirtualTime, where quiesce is exact: a real-mode proc may legitimately
// hold armed wall-clock timers and in-transit ring entries at any sampling
// instant.
func (p *Proc) Leaks() []string {
	var leaks []string
	st := p.Lifecycle()
	if st.Opened != st.Closed {
		leaks = append(leaks, fmt.Sprintf("channels opened %d != closed %d", st.Opened, st.Closed))
	}
	if st.VCsBound != st.VCsReleased {
		leaks = append(leaks, fmt.Sprintf("VCs bound %d != released %d", st.VCsBound, st.VCsReleased))
	}
	if p.cfg.VirtualTime {
		if st.TimersArmed != st.TimersFired {
			leaks = append(leaks, fmt.Sprintf("timers armed %d != fired %d", st.TimersArmed, st.TimersFired))
		}
		if st.RingPushed != st.RingDrained {
			leaks = append(leaks, fmt.Sprintf("ring entries pushed %d != drained %d", st.RingPushed, st.RingDrained))
		}
	}
	for _, c := range p.channelsOrdered() {
		if c.sigRef != 0 && !c.closedDone {
			leaks = append(leaks, fmt.Sprintf("signaled channel %d to proc %d still open", c.id, c.peer))
		}
	}
	return leaks
}
