package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// Channel churn: the lifecycle under sustained open/transfer/close cycling.
// TestChurnVirtual runs 1024 cycles on one deterministic event loop and
// pins the timeline hash; TestChurnChaosReal runs >1000 cycles across three
// seeds over a 20% lossy carrier with real goroutines. Both demand zero
// leaked lifecycle state at quiesce.

// churnServe is the accept hook for churn workloads: announce, receive
// msgs sequence-stamped payloads checking exactly-once in-order delivery,
// answer served.
func churnServe(t *testing.T, msgs int) func(*Channel) {
	return func(c *Channel) {
		c.Proc().TCreate("serve", mts.PrioDefault, func(th *Thread) {
			opener := c.PeerThread()
			c.Send(th, opener, []byte{0})
			for k := 0; k < msgs; k++ {
				data, _ := c.Recv(th, Any)
				if len(data) < 1 || data[0] != byte(k) {
					t.Errorf("proc %d channel %d: delivery %d has seq %d — duplicate or reorder",
						c.Proc().ID(), c.ID(), k, data[0])
				}
			}
			c.Send(th, opener, []byte{1})
		})
	}
}

// churnDial runs one dialer's cycles against peer: open (retrying typed
// admission rejections), rendezvous, send msgs sequence-stamped payloads
// with rng-drawn sizes, collect the served ack, close. Returns how many
// opens were rejected before admission.
func churnDial(t *testing.T, th *Thread, p *Proc, peer ProcID, cycles, msgs int, rng *rand.Rand) int {
	rejected := 0
	for cyc := 0; cyc < cycles; cyc++ {
		var ch *Channel
		for attempt := 0; ; attempt++ {
			c, err := p.OpenCall(th, peer, CallConfig{
				Flow:  NewWindowFlow(4),
				Error: NewGoBackN(8, 2*time.Millisecond),
			})
			if err == nil {
				ch = c
				break
			}
			var oe *OpenError
			if !errors.As(err, &oe) || oe.Cause != CauseAdmissionDenied {
				t.Errorf("proc %d cycle %d: open failed with %v", p.ID(), cyc, err)
				return rejected
			}
			rejected++
			if attempt > 2000 {
				t.Errorf("proc %d cycle %d: starved after %d rejections", p.ID(), cyc, attempt)
				return rejected
			}
		}
		srv := dialRendezvous(th, ch)
		for k := 0; k < msgs; k++ {
			buf := make([]byte, 1+64+rng.Intn(192))
			buf[0] = byte(k)
			ch.Send(th, srv, buf)
		}
		ch.Recv(th, Any) // served
		if err := ch.CloseCall(th); err != nil {
			t.Errorf("proc %d cycle %d: close failed: %v", p.ID(), cyc, err)
			return rejected
		}
	}
	return rejected
}

// buildChurnMesh constructs an n-proc virtual-time ring-churn mesh:
// every proc dials its successor for cycles short-lived calls through a
// shared token-bucket admission policy tight enough (burst 8 against 16
// simultaneous first dials) that rejections are guaranteed. Each proc's
// keeper thread holds it open until its predecessor finishes dialing.
func buildChurnMesh(t *testing.T, n, cycles, msgs int, seed int64) *VirtualMesh {
	vm := NewVirtualMesh(n, seed, VirtualMeshConfig{
		Lanes:     2,
		Admission: NewTokenBucketAdmission(20000, 8),
		OnAccept:  churnServe(t, msgs),
	})
	for i := 0; i < n; i++ {
		i := i
		p := vm.Procs[i]
		p.TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
		p.TCreate("dial", mts.PrioDefault, func(th *Thread) {
			peer := ProcID((i + 1) % n)
			churnDial(t, th, p, peer, cycles, msgs, vm.Rand(int64(i)))
			th.Send(0, peer, []byte("bye")) // release the peer's keeper
		})
	}
	return vm
}

// TestChurnVirtual: 16 procs × 64 signaled calls each — 1024 full
// open/transfer/close cycles — on the virtual-time mesh. Admission
// pressure must produce typed rejections, every proc must quiesce with
// zero leaked lifecycle state (including the VirtualTime-only timer and
// ring balances), and a second run from the same seed must reproduce the
// timeline hash bit for bit.
func TestChurnVirtual(t *testing.T) {
	const n, cycles, msgs = 16, 64, 2
	run := func() (*VirtualMesh, string) {
		vm := buildChurnMesh(t, n, cycles, msgs, 1995)
		vm.Run()
		return vm, vm.TimelineHash()
	}
	vm, hash := run()
	var opened, closed, rejected int64
	for i, p := range vm.Procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks after churn: %v", i, leaks)
		}
		st := p.Lifecycle()
		opened += st.Opened
		closed += st.Closed
		rejected += st.SetupsRejected
	}
	// Every cycle opens on both ends (caller and callee each count one).
	if want := int64(2 * n * cycles); opened != want || closed != want {
		t.Errorf("opened %d closed %d, want %d each", opened, closed, want)
	}
	if rejected == 0 {
		t.Error("admission rejected nothing: churn never hit the token bucket")
	}
	t.Logf("churn: %d opens, %d admission rejections, %v virtual time", opened, rejected, vm.Now())

	_, hash2 := run()
	if hash != hash2 {
		t.Fatalf("same-seed churn diverged: %s vs %s", hash, hash2)
	}
}

// TestChurnChaosReal: >1000 short-lived signaled calls across three seeds
// over a carrier dropping 20% of data-channel frames (signaling rides
// channel 0 and stays reliable, like a real SVC band with its own QoS).
// Go-back-N must deliver exactly-once in-order on every surviving channel,
// and every close must still drain and finalize both ends — zero leaks at
// quiesce despite the loss storms.
func TestChurnChaosReal(t *testing.T) {
	const n, cycles, msgs = 4, 84, 3
	for _, seed := range []int64{7, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mem := transport.NewMem()
			mem.SetDropRate(0.20, seed)
			mem.SetDropClass(func(m *transport.Message) bool { return m.Channel >= 1 })
			procs := sigCluster(t, n, mem, func(i int, cfg *Config) {
				cfg.Admission = NewPeerCapAdmission(8)
				cfg.OnAccept = churnServe(t, msgs)
			})
			for _, p := range procs {
				p.OnException(func(error) {}) // loss-storm noise is expected
			}
			for i := 0; i < n; i++ {
				i := i
				p := procs[i]
				p.TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
				p.TCreate("dial", mts.PrioDefault, func(th *Thread) {
					peer := ProcID((i + 1) % n)
					rng := rand.New(rand.NewSource(seed*31 + int64(i)))
					churnDial(t, th, p, peer, cycles, msgs, rng)
					th.Send(0, peer, []byte("bye"))
				})
			}
			runReal(procs)
			if mem.Dropped() == 0 {
				t.Fatal("carrier dropped nothing; chaos run did not exercise loss")
			}
			var opened, closed int64
			for i, p := range procs {
				if leaks := p.Leaks(); len(leaks) != 0 {
					t.Errorf("proc %d leaks after chaos churn: %v", i, leaks)
				}
				st := p.Lifecycle()
				opened += st.Opened
				closed += st.Closed
			}
			if want := int64(2 * n * cycles); opened != want || closed != want {
				t.Errorf("opened %d closed %d, want %d each", opened, closed, want)
			}
			t.Logf("chaos churn: %d opens over carrier that dropped %d frames", opened, mem.Dropped())
		})
	}
}
