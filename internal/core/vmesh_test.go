package core

import (
	"fmt"
	"testing"
	"time"
)

// vmeshRingWorkload drives a seeded neighbor-ring exchange on a virtual
// mesh: proc i sends msgs random-sized messages to (i+1) mod n on the
// default channel, then consumes the ones from (i-1) mod n. Returns the
// timeline hash of the completed run.
func vmeshRingWorkload(t *testing.T, n int, seed int64, msgs int, cfg VirtualMeshConfig) string {
	t.Helper()
	vm := NewVirtualMesh(n, seed, cfg)
	for i, p := range vm.Procs {
		i := i
		rng := vm.Rand(int64(i))
		sizes := make([]int, msgs)
		for k := range sizes {
			sizes[k] = 64 + rng.Intn(4096)
		}
		p.TCreate(fmt.Sprintf("ring%d", i), 5, func(th *Thread) {
			next := ProcID((i + 1) % n)
			prev := ProcID((i - 1 + n) % n)
			for _, sz := range sizes {
				th.Send(0, next, make([]byte, sz))
			}
			for k := 0; k < msgs; k++ {
				data, from := th.Recv(Any, prev)
				if from.Proc != prev {
					t.Errorf("proc %d: message from %d, want %d", i, from.Proc, prev)
				}
				if len(data) == 0 {
					t.Errorf("proc %d: empty payload", i)
				}
			}
		})
	}
	vm.Run()
	for i, p := range vm.Procs {
		if got := p.Received(); got != int64(msgs) {
			t.Fatalf("proc %d received %d messages, want %d", i, got, msgs)
		}
	}
	return vm.TimelineHash()
}

// TestVirtualMeshDeterminism is the determinism contract: two N=64 runs
// with the same seed must produce byte-identical timeline hashes; a third
// run with a different seed (different payload sizes → different
// serialization times) must not.
func TestVirtualMeshDeterminism(t *testing.T) {
	const n, msgs = 64, 4
	a := vmeshRingWorkload(t, n, 7, msgs, VirtualMeshConfig{})
	b := vmeshRingWorkload(t, n, 7, msgs, VirtualMeshConfig{})
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a, b)
	}
	c := vmeshRingWorkload(t, n, 8, msgs, VirtualMeshConfig{})
	if a == c {
		t.Fatalf("different seeds produced identical timeline %s", a)
	}
	t.Logf("n=%d seed=7 timeline %s", n, a)
}

// TestVirtualMeshDisciplines runs the ring under windowed flow + go-back-N
// so credit advertisements, acks, piggybacking, the flush wheel, and the
// retransmit timers all ride the virtual clock; determinism must hold for
// the full protocol stack, not just the bare path.
func TestVirtualMeshDisciplines(t *testing.T) {
	cfg := VirtualMeshConfig{
		Flow:  NewWindowFlow(4),
		Error: NewGoBackN(8, 5*time.Millisecond),
	}
	a := vmeshRingWorkload(t, 16, 3, 8, cfg)
	b := vmeshRingWorkload(t, 16, 3, 8, cfg)
	if a != b {
		t.Fatalf("same seed diverged under disciplines:\n  run1 %s\n  run2 %s", a, b)
	}
}

// TestVirtualMeshRace is the -race pass of the virtual harness at small N:
// correctness (payload counts) matters here, not hash equality, and the
// race detector checks that the event-loop execution of lane code really is
// single-threaded.
func TestVirtualMeshRace(t *testing.T) {
	vmeshRingWorkload(t, 8, 11, 6, VirtualMeshConfig{})
}

// TestVirtualMeshCollectives checks collectives on a virtual mesh: a
// dissemination barrier and a binomial bcast on the default channel across
// N=16, with payload integrity at every member.
func TestVirtualMeshCollectives(t *testing.T) {
	const n = 16
	vm := NewVirtualMesh(n, 1, VirtualMeshConfig{})
	members := make([]Addr, n)
	for i := range members {
		members[i] = Addr{Proc: ProcID(i), Thread: 0}
	}
	payload := []byte("virtual-mesh bcast payload")
	for i, p := range vm.Procs {
		i := i
		p.TCreate(fmt.Sprintf("coll%d", i), 5, func(th *Thread) {
			g := th.Proc().NewGroup(members, GroupConfig{})
			g.Barrier(th)
			got := g.Bcast(th, 0, append([]byte(nil), payload...))
			if string(got) != string(payload) {
				t.Errorf("member %d: bcast got %q", i, got)
			}
			g.Barrier(th)
		})
	}
	vm.Run()
	if vm.Now() <= 0 {
		t.Fatalf("no virtual time elapsed")
	}
}
