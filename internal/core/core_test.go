package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/work"
)

// simCluster builds n NCS processes over simulated TCP on a switched ATM
// LAN (fast, so protocol/thread behaviour dominates the tests).
func simCluster(t *testing.T, n int, mk func(i int) (FlowControl, ErrorControl)) (*sim.Engine, []*Proc) {
	t.Helper()
	eng := sim.NewEngine()
	eng.SetMaxTime(time.Hour)
	net := netsim.NewATMLAN(eng, n, netsim.ATMLANConfig{HostLinkBps: 100e6})
	cost := tcpip.CostModel{PerMessage: 100 * time.Microsecond, PerByteSend: 10 * time.Nanosecond, PerByteRecv: 10 * time.Nanosecond, MTU: 8192, FrameOverhead: 58}
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		node := eng.NewNode(fmt.Sprintf("node%d", i))
		ep := tcpip.NewSimTCP(node, net, i, cost)
		var fc FlowControl
		var ec ErrorControl
		if mk != nil {
			fc, ec = mk(i)
		}
		procs[i] = New(Config{
			ID:       ProcID(i),
			RT:       node.RT(),
			Endpoint: ep,
			Compute:  work.Sim(node),
			RecvCharge: func(mt *mts.Thread, sz int) {
				node.Compute(mt, cost.RecvCost(sz))
			},
			Flow:  fc,
			Error: ec,
			After: func(d time.Duration, fn func()) { eng.Schedule(d, fn) },
		})
	}
	return eng, procs
}

// realCluster builds n NCS processes over the Mem transport, each with its
// own real-time runtime.
func realCluster(t *testing.T, n int, net *transport.Mem, mk func(i int) (FlowControl, ErrorControl)) []*Proc {
	t.Helper()
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
		ep := net.Attach(ProcID(i), rt)
		var fc FlowControl
		var ec ErrorControl
		if mk != nil {
			fc, ec = mk(i)
		}
		procs[i] = New(Config{ID: ProcID(i), RT: rt, Endpoint: ep, Flow: fc, Error: ec})
	}
	return procs
}

func runReal(procs []*Proc) {
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() {
			p.Start()
			done <- struct{}{}
		}()
	}
	for range procs {
		<-done
	}
}

func TestSimSendRecvBasic(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var got []byte
	var from Addr
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, []byte("hello ncs"))
	})
	procs[1].TCreate("receiver", mts.PrioDefault, func(th *Thread) {
		got, from = th.Recv(Any, Any)
	})
	eng.Run()
	if string(got) != "hello ncs" {
		t.Fatalf("got %q", got)
	}
	if from.Proc != 0 || from.Thread != 0 {
		t.Fatalf("from = %+v", from)
	}
	if procs[0].Sent() != 1 || procs[1].Received() != 1 {
		t.Fatalf("counters: sent=%d recv=%d", procs[0].Sent(), procs[1].Received())
	}
}

func TestThreadAddressing(t *testing.T) {
	// Two threads per process; messages must route to the addressed
	// thread even when both are waiting (the paper's THREAD1/THREAD2
	// pattern from the matmul pseudo-code, Figure 14).
	eng, procs := simCluster(t, 2, nil)
	results := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		procs[1].TCreate(fmt.Sprintf("recv%d", i), mts.PrioDefault, func(th *Thread) {
			data, _ := th.Recv(Any, Any)
			results[th.Idx()] = string(data)
		})
	}
	procs[0].TCreate("send", mts.PrioDefault, func(th *Thread) {
		// Deliberately send to thread 1 first.
		th.Send(1, 1, []byte("for-thread-1"))
		th.Send(0, 1, []byte("for-thread-0"))
	})
	eng.Run()
	if results[0] != "for-thread-0" || results[1] != "for-thread-1" {
		t.Fatalf("results = %v", results)
	}
}

func TestRecvSourceMatching(t *testing.T) {
	eng, procs := simCluster(t, 3, nil)
	var first, second Addr
	procs[2].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		// Insist on proc 1 first even though proc 0's message arrives
		// earlier (proc 0 sends immediately; proc 1 after compute).
		_, first = th.Recv(Any, 1)
		_, second = th.Recv(Any, 0)
	})
	procs[0].TCreate("s0", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 2, []byte("from0"))
	})
	procs[1].TCreate("s1", mts.PrioDefault, func(th *Thread) {
		th.Compute(10*time.Millisecond, nil)
		th.Send(0, 2, []byte("from1"))
	})
	eng.Run()
	if first.Proc != 1 || second.Proc != 0 {
		t.Fatalf("order: first=%+v second=%+v", first, second)
	}
}

func TestOverlapComputationCommunication(t *testing.T) {
	// The paper's central claim (Figure 4): with two threads per process,
	// computation on already-arrived data hides the transfer of the rest.
	// Proc 0 sends two 1 MB blocks to proc 1; each block needs 100 ms of
	// computation.
	//
	// The single-threaded baseline follows the paper's p4 coding style
	// (Figure 13): receive *all* the data, then compute — so the second
	// transfer sits on the critical path. With two threads (Figure 14),
	// thread 0 computes on block 0 while block 1 is still on the wire.
	run := func(threads int) time.Duration {
		eng, procs := simCluster(t, 2, nil)
		const blocks = 2
		comp := 100 * time.Millisecond
		payload := make([]byte, 1<<20)
		procs[0].TCreate("host", mts.PrioDefault, func(th *Thread) {
			for b := 0; b < blocks; b++ {
				th.Send(b%threads, 1, payload)
			}
		})
		var finished vclock.Time
		if threads == 1 {
			procs[1].TCreate("worker", mts.PrioDefault, func(th *Thread) {
				for b := 0; b < blocks; b++ {
					th.Recv(Any, 0)
				}
				for b := 0; b < blocks; b++ {
					th.Compute(comp, nil)
				}
				finished = eng.Now()
			})
		} else {
			done := 0
			for i := 0; i < threads; i++ {
				procs[1].TCreate(fmt.Sprintf("worker%d", i), mts.PrioDefault, func(th *Thread) {
					th.Recv(Any, 0)
					th.Compute(comp, nil)
					done++
					if done == threads {
						finished = eng.Now()
					}
				})
			}
		}
		eng.Run()
		return time.Duration(finished)
	}
	serial := run(1)
	overlapped := run(2)
	if overlapped >= serial {
		t.Fatalf("multithreaded (%v) not faster than single-threaded (%v)", overlapped, serial)
	}
	// The second transfer (~90ms at 100Mbps+costs) should hide almost
	// entirely behind the first 100ms compute.
	gain := serial - overlapped
	if gain < 50*time.Millisecond {
		t.Fatalf("overlap gain only %v (serial %v, overlapped %v)", gain, serial, overlapped)
	}
}

func TestSendBlocksOnlyCallingThread(t *testing.T) {
	// While thread 0 is parked in Send (wire drain), thread 1 must run.
	eng, procs := simCluster(t, 2, nil)
	var computedDuringSend bool
	var sendDone bool
	procs[1].TCreate("sink", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any)
	})
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, make([]byte, 4<<20)) // long transfer
		sendDone = true
	})
	procs[0].TCreate("worker", mts.PrioDefault, func(th *Thread) {
		th.Compute(time.Millisecond, nil)
		if !sendDone {
			computedDuringSend = true
		}
	})
	eng.Run()
	if !computedDuringSend {
		t.Fatal("sibling thread did not run during Send: process blocked")
	}
}

func TestBcastGather(t *testing.T) {
	eng, procs := simCluster(t, 4, nil)
	var gathered [][]byte
	procs[0].TCreate("host", mts.PrioDefault, func(th *Thread) {
		list := []Addr{{Proc: 1, Thread: 0}, {Proc: 2, Thread: 0}, {Proc: 3, Thread: 0}}
		th.Bcast(list, []byte("work"))
		gathered = th.Gather(list)
	})
	for i := 1; i < 4; i++ {
		i := i
		procs[i].TCreate("node", mts.PrioDefault, func(th *Thread) {
			data, from := th.Recv(Any, 0)
			th.Send(from.Thread, from.Proc, append(data, byte('0'+i)))
		})
	}
	eng.Run()
	if len(gathered) != 3 {
		t.Fatalf("gathered %d", len(gathered))
	}
	for i, g := range gathered {
		want := fmt.Sprintf("work%d", i+1)
		if string(g) != want {
			t.Fatalf("gathered[%d] = %q, want %q", i, g, want)
		}
	}
}

func TestBarrier(t *testing.T) {
	eng, procs := simCluster(t, 3, nil)
	group := []ProcID{0, 1, 2}
	phase := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		procs[i].TCreate("w", mts.PrioDefault, func(th *Thread) {
			for ph := 0; ph < 3; ph++ {
				// Stagger arrival times.
				th.Compute(time.Duration(i+1)*10*time.Millisecond, nil)
				phase[i] = ph
				th.Barrier(group)
				for j := 0; j < 3; j++ {
					if phase[j] != ph {
						t.Errorf("after barrier %d: proc %d at phase %d", ph, j, phase[j])
					}
				}
				th.Barrier(group)
			}
		})
	}
	eng.Run()
}

func TestWindowFlowInvariant(t *testing.T) {
	eng, procs := simCluster(t, 2, func(i int) (FlowControl, ErrorControl) {
		return NewWindowFlow(2), nil
	})
	// The Config instance is a template; the live per-channel state machine
	// hangs off the default channel toward proc 1.
	senderFlow := procs[0].DefaultChannel(1).Flow().(*WindowFlow)
	const n = 12
	var received int
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			th.Send(0, 1, make([]byte, 10000))
			if out := senderFlow.Outstanding(); out > 2 {
				t.Errorf("window violated: %d outstanding", out)
			}
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			th.Recv(Any, Any)
			received++
		}
	})
	eng.Run()
	if received != n {
		t.Fatalf("received %d of %d", received, n)
	}
}

func TestRateFlowPaces(t *testing.T) {
	eng, procs := simCluster(t, 2, func(i int) (FlowControl, ErrorControl) {
		return NewRateFlow(1e6, 10e3), nil // 1 MB/s, 10 KB bucket
	})
	const msgs = 10
	const size = 10000
	var lastArrival vclock.Time
	procs[0].TCreate("vod", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			th.Send(0, 1, make([]byte, size))
		}
	})
	procs[1].TCreate("viewer", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			th.Recv(Any, Any)
		}
		lastArrival = eng.Now()
	})
	eng.Run()
	// 100 KB at 1 MB/s with a 10 KB head-start bucket: >= ~90 ms.
	if lastArrival < vclock.Time(85*time.Millisecond) {
		t.Fatalf("stream finished in %v: not paced", time.Duration(lastArrival))
	}
}

func TestGoBackNOverLossyTransport(t *testing.T) {
	mem := transport.NewMem()
	mem.SetDropRate(0.3, 42) // drop ~30% of messages, data and acks alike
	procs := realCluster(t, 2, mem, func(i int) (FlowControl, ErrorControl) {
		return nil, NewGoBackN(4, 20*time.Millisecond)
	})
	// The sender may legitimately give up on trailing acknowledgements
	// once the receiver has finished and shut down.
	procs[0].OnException(func(error) {})
	const n = 10
	var got []int
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			th.Send(0, 1, []byte{byte(k)})
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			data, _ := th.Recv(Any, Any)
			got = append(got, int(data[0]))
		}
	})
	runReal(procs)
	if len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if mem.Dropped() == 0 {
		t.Fatal("fault injection never dropped anything — test proves nothing")
	}
}

func TestRealModeMemBasic(t *testing.T) {
	mem := transport.NewMem()
	procs := realCluster(t, 2, mem, nil)
	var got string
	procs[0].TCreate("s", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, []byte("real mode"))
	})
	procs[1].TCreate("r", mts.PrioDefault, func(th *Thread) {
		data, _ := th.Recv(Any, Any)
		got = string(data)
	})
	runReal(procs)
	if got != "real mode" {
		t.Fatalf("got %q", got)
	}
}

func TestP4FilterPingPong(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var reply []byte
	procs[0].TCreate("a", mts.PrioDefault, func(th *Thread) {
		f := P4(th)
		f.Send(7, 1, []byte("ping"))
		typ, from := Any, ProcID(Any)
		reply = f.Recv(&typ, &from)
		if typ != 8 || from != 1 {
			t.Errorf("typ=%d from=%d", typ, from)
		}
	})
	procs[1].TCreate("b", mts.PrioDefault, func(th *Thread) {
		f := P4(th)
		typ, from := 7, ProcID(0)
		data := f.Recv(&typ, &from)
		f.Send(8, 0, append(data, []byte("-pong")...))
	})
	eng.Run()
	if string(reply) != "ping-pong" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTryRecvAndMessagesAvailable(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var beforeAvail, afterAvail, tryOK bool
	var polled []byte
	procs[1].TCreate("poller", mts.PrioDefault, func(th *Thread) {
		beforeAvail = th.MessagesAvailable(Any, Any)
		if _, _, ok := th.TryRecv(Any, Any); ok {
			t.Error("TryRecv succeeded before any send")
		}
		// Wait for the message the slow way, then re-probe.
		data, _ := th.Recv(Any, Any)
		_ = data
		// Second message should be queued by now or soon; spin on
		// compute+probe.
		for !th.MessagesAvailable(Any, Any) {
			th.Compute(time.Millisecond, nil)
		}
		afterAvail = true
		polled, _, tryOK = th.TryRecv(Any, Any)
	})
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, []byte("one"))
		th.Send(0, 1, []byte("two"))
	})
	eng.Run()
	if beforeAvail {
		t.Fatal("MessagesAvailable true before send")
	}
	if !afterAvail || !tryOK || string(polled) != "two" {
		t.Fatalf("poll path failed: avail=%v ok=%v data=%q", afterAvail, tryOK, polled)
	}
}

func TestBlockUnblock(t *testing.T) {
	// The paper's JPEG host (Figure 17): thread 2 blocks until thread 1
	// finishes reading the image, then both distribute halves.
	eng, procs := simCluster(t, 1, nil)
	var order []string
	var t2 *Thread
	procs[0].TCreate("t1", mts.PrioDefault, func(th *Thread) {
		th.Compute(time.Millisecond, nil) // "read the image file"
		order = append(order, "t1 read")
		th.Unblock(t2)
		th.Compute(time.Millisecond, nil)
		order = append(order, "t1 done")
	})
	t2 = procs[0].TCreate("t2", mts.PrioDefault, func(th *Thread) {
		th.Block()
		order = append(order, "t2 resumed")
	})
	eng.Run()
	if len(order) != 3 || order[0] != "t1 read" {
		t.Fatalf("order = %v", order)
	}
}

func TestExceptionHandler(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var caught error
	procs[1].OnException(func(err error) { caught = err })
	procs[1].TCreate("victim", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any)
	})
	procs[0].TCreate("evil", mts.PrioDefault, func(th *Thread) {
		// Hand-craft a bogus control message.
		th.proc.sendCtrl(1, 0, -99, 0, false)
		th.Send(0, 1, []byte("legit"))
	})
	eng.Run()
	if caught == nil {
		t.Fatal("exception handler not invoked for unknown control tag")
	}
}

func TestManyToOneInterleaving(t *testing.T) {
	const senders = 4
	const per = 5
	eng, procs := simCluster(t, senders+1, nil)
	counts := map[int]int{}
	procs[senders].TCreate("sink", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < senders*per; k++ {
			data, from := th.Recv(Any, Any)
			if int(data[0]) != counts[int(from.Proc)] {
				t.Errorf("per-source order broken: proc %d sent %d, want %d",
					from.Proc, data[0], counts[int(from.Proc)])
			}
			counts[int(from.Proc)]++
		}
	})
	for s := 0; s < senders; s++ {
		s := s
		procs[s].TCreate("src", mts.PrioDefault, func(th *Thread) {
			for k := 0; k < per; k++ {
				th.Send(0, ProcID(senders), []byte{byte(k)})
				th.Compute(time.Duration(s+1)*time.Millisecond, nil)
			}
		})
	}
	eng.Run()
	for s := 0; s < senders; s++ {
		if counts[s] != per {
			t.Fatalf("source %d delivered %d of %d", s, counts[s], per)
		}
	}
}

func TestSystemThreadsShutDownCleanly(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	procs[0].TCreate("s", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 1, []byte("x"))
	})
	procs[1].TCreate("r", mts.PrioDefault, func(th *Thread) {
		th.Recv(Any, Any)
	})
	eng.Run() // would panic on deadlock if system threads lingered
	for _, p := range procs {
		if p.RT().Live() != 0 {
			t.Fatalf("proc %d has %d live threads after run", p.ID(), p.RT().Live())
		}
	}
}
