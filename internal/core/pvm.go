package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// PVM message-passing filter (paper Figures 6 and 12; §6 notes the
// NCS_MTS/PVM investigation). PVM programs talk to typed pack buffers and
// task-addressed tagged messages:
//
//	pvm_initsend();  pvm_pkint(...);  pvm_send(tid, tag)
//	pvm_recv(tid, tag);  pvm_upkint(...)
//
// The filter maps a PVM "task" onto an NCS (process, same-index thread)
// address, exactly like the p4 filter, and implements the pack/unpack
// buffer with type-checked sections so mismatched unpacks fail loudly
// instead of silently misreading.

// PVMFilter presents PVM-style primitives on top of an NCS thread.
type PVMFilter struct {
	t    *Thread
	send *PVMBuffer
	// groups caches collective communicators by task list, so repeated
	// Barrier/Bcast calls over the same tids reuse one tree topology.
	groups map[string]*Group
}

// PVM returns the PVM-style view of an NCS thread.
func PVM(t *Thread) *PVMFilter { return &PVMFilter{t: t} }

// groupFor returns (building and caching on first use) the collective
// Group for an ordered task list, under the filter's same-index thread
// convention.
func (f *PVMFilter) groupFor(tids []ProcID) *Group {
	key := fmt.Sprint(tids)
	if g, ok := f.groups[key]; ok {
		return g
	}
	members := make([]Addr, len(tids))
	for i, tid := range tids {
		members[i] = Addr{Proc: tid, Thread: f.t.idx}
	}
	g := f.t.proc.NewGroup(members, GroupConfig{})
	if f.groups == nil {
		f.groups = make(map[string]*Group)
	}
	f.groups[key] = g
	return g
}

// Barrier blocks until every task in tids has entered it: pvm_barrier with
// an explicit member list, run as a dissemination barrier over the task
// group. All listed tasks must call it with the same list.
func (f *PVMFilter) Barrier(tids []ProcID) {
	f.groupFor(tids).Barrier(f.t)
}

// Bcast transmits the current send buffer from root to every task in tids
// down the binomial tree: pvm_bcast with an explicit member list. All
// listed tasks must call it with the same list and root; every call
// returns the broadcast unpack buffer (the root's own packed data).
func (f *PVMFilter) Bcast(tids []ProcID, root ProcID) *PVMBuffer {
	g := f.groupFor(tids)
	rootIdx := -1
	for i, tid := range tids {
		if tid == root {
			rootIdx = i
		}
	}
	if rootIdx < 0 {
		panic("core: pvm Bcast root not in tids")
	}
	var data []byte
	if f.t.proc.cfg.ID == root {
		if f.send == nil {
			panic("core: pvm Bcast without InitSend")
		}
		data = f.send.data
	}
	return &PVMBuffer{data: g.Bcast(f.t, rootIdx, data)}
}

// Section type codes in the buffer encoding.
const (
	pvmInt32   = 1
	pvmFloat64 = 2
	pvmBytes   = 3
)

// PVMBuffer is a typed pack/unpack buffer.
type PVMBuffer struct {
	data []byte
	pos  int
}

// ErrPVMUnpack reports a type or bounds mismatch during unpacking.
var ErrPVMUnpack = errors.New("core: pvm unpack mismatch")

// InitSend starts a fresh send buffer: pvm_initsend.
func (f *PVMFilter) InitSend() *PVMBuffer {
	f.send = &PVMBuffer{}
	return f.send
}

func (b *PVMBuffer) section(code byte, n int) {
	b.data = append(b.data, code)
	var len4 [4]byte
	binary.BigEndian.PutUint32(len4[:], uint32(n))
	b.data = append(b.data, len4[:]...)
}

// PackInt32s appends an int32 array: pvm_pkint.
func (b *PVMBuffer) PackInt32s(xs []int32) {
	b.section(pvmInt32, len(xs))
	for _, x := range xs {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], uint32(x))
		b.data = append(b.data, v[:]...)
	}
}

// PackFloat64s appends a float64 array: pvm_pkdouble.
func (b *PVMBuffer) PackFloat64s(xs []float64) {
	b.section(pvmFloat64, len(xs))
	for _, x := range xs {
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], math.Float64bits(x))
		b.data = append(b.data, v[:]...)
	}
}

// PackBytes appends raw bytes: pvm_pkbyte.
func (b *PVMBuffer) PackBytes(xs []byte) {
	b.section(pvmBytes, len(xs))
	b.data = append(b.data, xs...)
}

func (b *PVMBuffer) expect(code byte) (int, error) {
	if b.pos+5 > len(b.data) {
		return 0, ErrPVMUnpack
	}
	if b.data[b.pos] != code {
		return 0, ErrPVMUnpack
	}
	n := int(binary.BigEndian.Uint32(b.data[b.pos+1:]))
	b.pos += 5
	return n, nil
}

// UnpackInt32s reads the next section as int32s: pvm_upkint.
func (b *PVMBuffer) UnpackInt32s() ([]int32, error) {
	n, err := b.expect(pvmInt32)
	if err != nil {
		return nil, err
	}
	if b.pos+4*n > len(b.data) {
		return nil, ErrPVMUnpack
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(b.data[b.pos:]))
		b.pos += 4
	}
	return out, nil
}

// UnpackFloat64s reads the next section as float64s: pvm_upkdouble.
func (b *PVMBuffer) UnpackFloat64s() ([]float64, error) {
	n, err := b.expect(pvmFloat64)
	if err != nil {
		return nil, err
	}
	if b.pos+8*n > len(b.data) {
		return nil, ErrPVMUnpack
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b.data[b.pos:]))
		b.pos += 8
	}
	return out, nil
}

// UnpackBytes reads the next section as raw bytes: pvm_upkbyte.
func (b *PVMBuffer) UnpackBytes() ([]byte, error) {
	n, err := b.expect(pvmBytes)
	if err != nil {
		return nil, err
	}
	if b.pos+n > len(b.data) {
		return nil, ErrPVMUnpack
	}
	out := append([]byte(nil), b.data[b.pos:b.pos+n]...)
	b.pos += n
	return out, nil
}

// Send transmits the current send buffer to a task with a message tag:
// pvm_send. The buffer remains valid for Mcast-style resends.
func (f *PVMFilter) Send(tid ProcID, tag int) {
	if f.send == nil {
		panic("core: pvm Send without InitSend")
	}
	f.t.SendTagged(tag, f.t.idx, tid, f.send.data)
}

// Mcast transmits the current buffer to several tasks: pvm_mcast.
func (f *PVMFilter) Mcast(tids []ProcID, tag int) {
	for _, tid := range tids {
		f.Send(tid, tag)
	}
}

// Recv blocks until a message with the given source task and tag arrives
// (Any wildcards both): pvm_recv. It returns the unpack buffer.
func (f *PVMFilter) Recv(tid ProcID, tag int) *PVMBuffer {
	data, _ := f.t.RecvTagged(tag, Any, tid)
	return &PVMBuffer{data: data}
}

// NRecv is the non-blocking probe-and-receive: pvm_nrecv. ok reports
// whether a matching message was consumed.
func (f *PVMFilter) NRecv(tid ProcID, tag int) (*PVMBuffer, bool) {
	p := f.t.proc
	i := p.matchStore(0, tag, Any, tid, f.t.idx)
	if i < 0 {
		return nil, false
	}
	m := p.store[i]
	p.store = append(p.store[:i], p.store[i+1:]...)
	p.consume(f.t.mt, m)
	p.received.Add(1)
	return &PVMBuffer{data: m.Data}, true
}
