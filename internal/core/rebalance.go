package core

import (
	"time"
)

// This file is the hot-lane rebalancer: the third layer of the adaptive
// lane scheduler. The peer hash that places channels on lanes knows
// nothing about traffic, so a skewed workload (or a skewed hash) can run
// one lane hot while the other engines idle. Every RebalanceInterval the
// proc compares per-lane load EWMAs and, when one lane is running more
// than twice as hot as the coldest, migrates one *idle-safe* channel from
// hot to cold through an engine-posted handoff. A sending thread also
// probes cheaply on its own (maybeSteal) so a freshly skewed burst does
// not have to wait for tick cadence.
//
// Safety rules, in order of importance:
//
//   - A channel moves only while BOTH lane locks are held (lockPair, in
//     index order), and only when idle-safe: nothing queued in the lane
//     scheduler, no pending piggyback control or flush-wheel entry, no
//     discipline-deferred or in-flight frames, not explicitly pinned.
//     Out-of-lock readers re-check the lane pointer after locking
//     (Channel.lockLane), so the swap is invisible to them.
//   - Only channels whose error control sequences data (go-back-N,
//     selective repeat) are eligible: an arriving frame racing the
//     handoff can be re-ordered across the old and new lanes' rings, and
//     a sequenced receiver repairs that (duplicate/gap handling) while an
//     unsequenced one would deliver out of order.
//   - The handoff itself runs on the *hot* lane's engine (posted through
//     its ring), so it serializes behind every arrival batch already
//     queued there.
//   - Ping-pong is damped three ways: the hysteresis factor (hot > 2x
//     cold), the absolute gap floor (rebalMinGap bytes), and a per-channel
//     cooldown of two ticks after a move. Migration also shifts half the
//     observed gap between the two EWMAs immediately, so the next tick
//     sees the move it just made.

// DefaultRebalanceInterval is the rebalance scan period when
// Config.RebalanceInterval is zero.
const DefaultRebalanceInterval = 2 * time.Millisecond

// rebalMinGap is the minimum hot-cold EWMA gap (bytes per interval) worth
// acting on; below it the imbalance is noise.
const rebalMinGap = 8192

// rebalCooldownTicks is how many ticks a migrated channel sits out before
// it may move again.
const rebalCooldownTicks = 2

// startRebalance starts the rebalance cadence on a sharded proc: a wall
// ticker goroutine in real mode (clockseam.go), a self-rescheduling chain
// of virtual-timer events under a discrete-event loop. The chain stops
// re-arming once the process starts closing, so a finished simulation's
// event queue drains instead of ticking forever.
func (p *Proc) startRebalance() {
	if p.rebalEvery <= 0 || len(p.lanes) < 2 {
		p.rebalEvery = 0
		return
	}
	if p.cfg.VirtualTime {
		var tick func()
		tick = func() {
			if p.closing.Load() {
				return
			}
			p.rebalanceTick()
			p.cfg.After(p.rebalEvery, tick)
		}
		p.cfg.After(p.rebalEvery, tick)
		return
	}
	go p.rebalanceLoop()
}

// rebalanceTick folds each lane's load accumulator into its EWMA and, if
// the spread warrants it, posts a migration to the hottest lane's engine.
func (p *Proc) rebalanceTick() {
	tick := p.rebalTick.Add(1)
	var hot, cold *lane
	var hotE, coldE int64
	for _, ln := range p.lanes {
		acc := ln.loadAcc.Swap(0)
		e := (ln.ewma.Load() + acc) / 2
		ln.ewma.Store(e)
		if hot == nil || e > hotE {
			hot, hotE = ln, e
		}
		if cold == nil || e < coldE {
			cold, coldE = ln, e
		}
	}
	if hot != cold && hotE > 2*coldE && hotE-coldE >= rebalMinGap {
		dst := cold
		src := hot
		p.statRingPush.Add(1)
		src.rx.Push(rxItem{fn: func() { src.migrateOne(dst, tick) }})
		src.kick()
	}
}

// lockPair takes two lane locks in index order (the process-wide lane
// lock order, so a concurrent pair cannot deadlock).
func lockPair(a, b *lane) {
	if a.idx < b.idx {
		a.mu.Lock()
		b.mu.Lock()
	} else {
		b.mu.Lock()
		a.mu.Lock()
	}
}

// idleSafeLocked reports whether the channel can change lanes right now;
// caller holds the channel's (current) lane lock. A channel in the
// signaled lifecycle may migrate only while fully OPEN (or static):
// mid-handshake and mid-teardown channels stay put, so the close path
// tears lane state down on exactly one lane.
func (c *Channel) idleSafeLocked(tick int64) bool {
	if st := c.state.Load(); st != chanStatic && st != chanOpen {
		return false
	}
	return !c.closed && !c.pinned &&
		c.errc.sequenced() &&
		c.sq.Size() == 0 && !c.inSched &&
		!c.flushOn && !c.inPend && !c.mustFlushOn &&
		!c.pendCreditOn && len(c.pendAcks) == 0 &&
		c.flow.queued() == 0 && c.errc.queued() == 0 &&
		c.errc.pending() == 0 &&
		tick-c.lastMoveTick >= rebalCooldownTicks
}

// migrateOne moves the busiest idle-safe channel of ln to dst. Runs on
// ln's engine goroutine (posted through the ring), holding no locks on
// entry.
func (ln *lane) migrateOne(dst *lane, tick int64) {
	if ln == dst {
		return
	}
	lockPair(ln, dst)
	var best *Channel
	var bestLoad int64
	for _, c := range ln.chans {
		if !c.idleSafeLocked(tick) {
			continue
		}
		if load := c.loadAcc.Load(); best == nil || load > bestLoad {
			best, bestLoad = c, load
		}
	}
	if best != nil {
		ln.moveLocked(best, dst, tick)
		ln.markDecision(best, "migrate")
	}
	dst.mu.Unlock()
	ln.mu.Unlock()
}

// moveLocked rehomes c from ln to dst; caller holds both locks and has
// verified idle-safety. Arrivals still sitting in ln's ring or rxq are
// re-routed by ln.processLocked the moment it sees the changed lane
// pointer.
func (ln *lane) moveLocked(c *Channel, dst *lane, tick int64) {
	c.lnp.Store(dst)
	for i, x := range ln.chans {
		if x == c {
			ln.chans[i] = ln.chans[len(ln.chans)-1]
			ln.chans[len(ln.chans)-1] = nil
			ln.chans = ln.chans[:len(ln.chans)-1]
			break
		}
	}
	dst.chans = append(dst.chans, c)
	c.lastMoveTick = tick
	c.loadAcc.Store(0)
	c.migrations.Add(1)
	ln.migratedOut++
	dst.migratedIn++
	// Reflect the move in the EWMAs immediately (half the observed gap)
	// so the next tick does not re-act on the imbalance this move just
	// corrected.
	if gap := ln.ewma.Load() - dst.ewma.Load(); gap > 0 {
		ln.ewma.Add(-gap / 2)
		dst.ewma.Add(gap / 2)
	}
}

// maybeSteal is the enqueue-time fast path: a sending thread that notices
// its own lane running far hotter than the coldest one moves its channel
// there directly, without waiting for tick cadence. Called outside any
// lane lock, on a sampled subset of sends.
func (c *Channel) maybeSteal() {
	p := c.p
	ln := c.lnp.Load()
	if ln == nil || c.pinned {
		return
	}
	var cold *lane
	var coldE int64
	for _, l := range p.lanes {
		if e := l.ewma.Load(); cold == nil || e < coldE {
			cold, coldE = l, e
		}
	}
	if cold == ln || ln.ewma.Load() < 4*coldE+rebalMinGap {
		return
	}
	tick := p.rebalTick.Load()
	lockPair(ln, cold)
	if c.lnp.Load() == ln && c.idleSafeLocked(tick) {
		ln.moveLocked(c, cold, tick)
		ln.steals++
		ln.markDecision(c, "migrate")
	}
	cold.mu.Unlock()
	ln.mu.Unlock()
}

// LaneStats is one lane's scheduler snapshot.
type LaneStats struct {
	// Lane is the lane index and Channels how many channels it currently
	// serves.
	Lane     int
	Channels int
	// CtrlPiggybacked / CtrlStandalone count control words that rode data
	// frames vs standalone control frames sent by this lane's channels;
	// CtrlCoalesced is the subset of piggybacked words that rode a
	// *different* channel's frame. PiggyShare is
	// piggybacked/(piggybacked+standalone).
	CtrlPiggybacked int64
	CtrlStandalone  int64
	CtrlCoalesced   int64
	PiggyShare      float64
	// DRRRounds counts completed deficit-round-robin rounds of the lane's
	// send scheduler.
	DRRRounds int64
	// MigratedIn/MigratedOut count channels the rebalancer moved to/from
	// this lane; Steals is the subset of MigratedOut initiated by a
	// sending thread's enqueue-time probe.
	MigratedIn  int64
	MigratedOut int64
	Steals      int64
	// Load is the lane's current load EWMA (bytes per rebalance
	// interval).
	Load int64
}

// LaneStats returns a per-lane scheduler snapshot, nil on a classic
// (single-lane) proc. Safe to call while traffic is flowing.
func (p *Proc) LaneStats() []LaneStats {
	if !p.sharded() {
		return nil
	}
	out := make([]LaneStats, len(p.lanes))
	for i, ln := range p.lanes {
		ln.mu.Lock()
		st := LaneStats{
			Lane:            i,
			Channels:        len(ln.chans),
			CtrlPiggybacked: ln.ctrlPiggyL,
			CtrlStandalone:  ln.ctrlStandaloneL,
			CtrlCoalesced:   ln.ctrlCoalescedL,
			DRRRounds:       ln.pending.rounds,
			MigratedIn:      ln.migratedIn,
			MigratedOut:     ln.migratedOut,
			Steals:          ln.steals,
			Load:            ln.ewma.Load(),
		}
		ln.mu.Unlock()
		if t := st.CtrlPiggybacked + st.CtrlStandalone; t > 0 {
			st.PiggyShare = float64(st.CtrlPiggybacked) / float64(t)
		}
		out[i] = st
	}
	return out
}
