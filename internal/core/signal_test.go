package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/work"
)

// sigCluster builds n real-mode procs over mem with a per-proc Config hook
// (admission policies, accept hooks, lane counts). Lanes default to 4
// (sharded); set SendLanes/RecvLanes to 1 in mod for the classic path.
func sigCluster(t *testing.T, n int, mem *transport.Mem, mod func(i int, cfg *Config)) []*Proc {
	t.Helper()
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
		cfg := Config{
			ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt),
			SendLanes: 4, RecvLanes: 4,
		}
		if mod != nil {
			mod(i, &cfg)
		}
		procs[i] = New(cfg)
	}
	return procs
}

// serveCalls is the standard accept hook: every admitted call gets a
// serving thread that announces itself to the opener (message addressing
// is exact-thread, so the caller learns the server's index from the
// announcement's source address), receives msgs messages, and answers one
// "served" byte so the caller can close knowing the callee consumed
// everything. With msgs == 0 the announcement and the served byte
// collapse into a single message.
func serveCalls(msgs int) func(*Channel) {
	return func(c *Channel) {
		c.Proc().TCreate("serve", mts.PrioDefault, func(th *Thread) {
			opener := c.PeerThread()
			if msgs > 0 {
				c.Send(th, opener, []byte{0})
				for k := 0; k < msgs; k++ {
					c.Recv(th, Any)
				}
			}
			c.Send(th, opener, []byte{1})
		})
	}
}

// dialRendezvous consumes the serve thread's announcement and returns the
// serving thread's index to address data to.
func dialRendezvous(th *Thread, ch *Channel) int {
	_, from := ch.Recv(th, Any)
	return from.Thread
}

// TestOpenCallLifecycle is the tentpole end to end, on both execution
// paths: a signaled call sets up through SETUP/CONNECT, carries windowed
// go-back-N data, closes through RELEASE/RELEASE-COMPLETE, and leaves both
// procs with balanced lifecycle ledgers.
func TestOpenCallLifecycle(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		lanes := lanes
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			const msgs = 16
			mem := transport.NewMem()
			procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
				cfg.SendLanes, cfg.RecvLanes = lanes, lanes
				if i == 1 {
					cfg.OnAccept = serveCalls(msgs)
				}
			})
			var openErr, closeErr error
			var gotID ChannelID
			var reply []byte
			procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
				ch, err := procs[0].OpenCall(th, 1, CallConfig{
					Priority: 3,
					Flow:     NewWindowFlow(4),
					Error:    NewGoBackN(8, 50*time.Millisecond),
				})
				if err != nil {
					openErr = err
					th.Send(0, 1, []byte("bye"))
					return
				}
				gotID = ch.ID()
				srv := dialRendezvous(th, ch)
				for k := 0; k < msgs; k++ {
					ch.Send(th, srv, []byte{byte(k)})
				}
				reply, _ = ch.Recv(th, Any)
				closeErr = ch.CloseCall(th)
				th.Send(0, 1, []byte("bye"))
			})
			procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) {
				th.Recv(Any, Any) // hold the callee open until the caller says bye
			})
			runReal(procs)
			if openErr != nil {
				t.Fatalf("OpenCall: %v", openErr)
			}
			if closeErr != nil {
				t.Fatalf("CloseCall: %v", closeErr)
			}
			if gotID == 0 {
				t.Fatal("OpenCall handed out channel ID 0")
			}
			if len(reply) != 1 || reply[0] != 1 {
				t.Fatalf("serve reply = %v", reply)
			}
			for i, p := range procs {
				if leaks := p.Leaks(); len(leaks) != 0 {
					t.Errorf("proc %d leaks: %v", i, leaks)
				}
				st := p.Lifecycle()
				if st.Opened != 1 || st.Closed != 1 {
					t.Errorf("proc %d: opened %d closed %d, want 1/1", i, st.Opened, st.Closed)
				}
				if st.VCsBound != 1 || st.VCsReleased != 1 {
					t.Errorf("proc %d: VCs bound %d released %d, want 1/1", i, st.VCsBound, st.VCsReleased)
				}
			}
			if st := procs[0].Lifecycle(); st.SetupsSent != 1 {
				t.Errorf("caller setups sent = %d, want 1", st.SetupsSent)
			}
			if st := procs[1].Lifecycle(); st.SetupsAccepted != 1 || st.SetupsRejected != 0 {
				t.Errorf("callee accepted %d rejected %d, want 1/0", st.SetupsAccepted, st.SetupsRejected)
			}
		})
	}
}

// TestOpenCallBusy: an explicit channel ID already in use between the pair
// fails locally with CauseBusy, before any SETUP goes out.
func TestOpenCallBusy(t *testing.T) {
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		if i == 1 {
			cfg.OnAccept = serveCalls(0)
		}
	})
	var dupErr error
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		ch, err := procs[0].OpenCall(th, 1, CallConfig{ID: 7})
		if err != nil {
			t.Errorf("first open: %v", err)
			th.Send(0, 1, nil)
			return
		}
		_, dupErr = procs[0].OpenCall(th, 1, CallConfig{ID: 7})
		ch.Recv(th, Any) // serve ack
		ch.CloseCall(th)
		th.Send(0, 1, nil)
	})
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
	runReal(procs)
	var oe *OpenError
	if !errors.As(dupErr, &oe) || oe.Cause != CauseBusy || oe.ID != 7 {
		t.Fatalf("duplicate open error = %v, want *OpenError{Cause: busy, ID: 7}", dupErr)
	}
	if st := procs[0].Lifecycle(); st.SetupsSent != 1 {
		t.Fatalf("busy rejection sent %d SETUPs, want 1 (local fail only)", st.SetupsSent)
	}
}

// TestAdmissionPeerCap: the callee's per-peer concurrency cap rejects the
// over-cap call with a typed cause, and closing an admitted call returns
// its slot.
func TestAdmissionPeerCap(t *testing.T) {
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		if i == 1 {
			cfg.Admission = NewPeerCapAdmission(1)
			cfg.OnAccept = serveCalls(0)
		}
	})
	var overErr, reopenErr error
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		defer th.Send(0, 1, nil)
		first, err := procs[0].OpenCall(th, 1, CallConfig{})
		if err != nil {
			t.Errorf("first open: %v", err)
			return
		}
		_, overErr = procs[0].OpenCall(th, 1, CallConfig{})
		first.Recv(th, Any)
		if err := first.CloseCall(th); err != nil {
			t.Errorf("close: %v", err)
			return
		}
		// Slot returned: the next call must be admitted again.
		second, err := procs[0].OpenCall(th, 1, CallConfig{})
		reopenErr = err
		if err == nil {
			second.Recv(th, Any)
			second.CloseCall(th)
		}
	})
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
	runReal(procs)
	var oe *OpenError
	if !errors.As(overErr, &oe) || oe.Cause != CauseAdmissionDenied {
		t.Fatalf("over-cap open error = %v, want CauseAdmissionDenied", overErr)
	}
	if reopenErr != nil {
		t.Fatalf("reopen after close: %v (admission slot not returned)", reopenErr)
	}
	st := procs[1].Lifecycle()
	if st.SetupsRejected != 1 || st.SetupsAccepted != 2 {
		t.Fatalf("callee accepted %d rejected %d, want 2/1", st.SetupsAccepted, st.SetupsRejected)
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
}

// TestAdmissionTokenBucket: a drained token bucket fails calls fast with
// CauseAdmissionDenied instead of queueing them.
func TestAdmissionTokenBucket(t *testing.T) {
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		if i == 1 {
			cfg.Admission = NewTokenBucketAdmission(0.001, 2) // refill ~never within the test
			cfg.OnAccept = serveCalls(0)
		}
	})
	var errs []error
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		defer th.Send(0, 1, nil)
		var open []*Channel
		for k := 0; k < 3; k++ {
			ch, err := procs[0].OpenCall(th, 1, CallConfig{})
			errs = append(errs, err)
			if err == nil {
				open = append(open, ch)
			}
		}
		for _, ch := range open {
			ch.Recv(th, Any)
			ch.CloseCall(th)
		}
	})
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
	runReal(procs)
	if len(errs) != 3 || errs[0] != nil || errs[1] != nil {
		t.Fatalf("within-burst calls failed: %v", errs)
	}
	var oe *OpenError
	if !errors.As(errs[2], &oe) || oe.Cause != CauseAdmissionDenied {
		t.Fatalf("over-burst call error = %v, want CauseAdmissionDenied", errs[2])
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
}

// TestOpenCallTimeout: a peer whose SETUPs all vanish (crashed, partitioned)
// costs the caller its retry budget and a typed CauseTimeout — and leaks
// nothing on the caller.
func TestOpenCallTimeout(t *testing.T) {
	mem := transport.NewMem()
	mem.SetDropRate(1.0, 1)
	mem.SetDropClass(func(m *transport.Message) bool { return m.Tag == tagSigSetup })
	procs := sigCluster(t, 2, mem, nil)
	var openErr error
	start := time.Now()
	var took time.Duration
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		_, openErr = procs[0].OpenCall(th, 1, CallConfig{
			SetupTimeout: 2 * time.Millisecond,
			Retries:      2,
			Backoff:      time.Millisecond,
		})
		took = time.Since(start)
		th.Send(0, 1, []byte("bye"))
	})
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
	runReal(procs)
	var oe *OpenError
	if !errors.As(openErr, &oe) || oe.Cause != CauseTimeout || oe.Attempts != 2 {
		t.Fatalf("open error = %v, want CauseTimeout after 2 attempts", openErr)
	}
	if took > 2*time.Second {
		t.Fatalf("timeout took %v: retry budget did not bound the wait", took)
	}
	if st := procs[0].Lifecycle(); st.SetupsSent != 2 || st.SetupRetries != 1 {
		t.Fatalf("caller sent %d SETUPs with %d retries, want 2/1", st.SetupsSent, st.SetupRetries)
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
}

// TestSendAfterCloseTyped: sends on a closed signaled channel raise the
// same typed *ChannelClosedError through the exception handler regardless
// of discipline (windowed, rate, go-back-N, selective repeat) and
// execution path (classic, sharded).
func TestSendAfterCloseTyped(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() CallConfig
	}{
		{"window", func() CallConfig { return CallConfig{Flow: NewWindowFlow(4)} }},
		{"rate", func() CallConfig { return CallConfig{Flow: NewRateFlow(1e6, 8192)} }},
		{"gbn", func() CallConfig { return CallConfig{Error: NewGoBackN(4, 50*time.Millisecond)} }},
		{"sr", func() CallConfig { return CallConfig{Error: NewSelectiveRepeat(4, 50*time.Millisecond)} }},
	}
	for _, lanes := range []int{1, 4} {
		for _, tc := range cases {
			lanes, tc := lanes, tc
			t.Run(fmt.Sprintf("%s/lanes=%d", tc.name, lanes), func(t *testing.T) {
				mem := transport.NewMem()
				procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
					cfg.SendLanes, cfg.RecvLanes = lanes, lanes
					if i == 1 {
						cfg.OnAccept = serveCalls(1)
					}
				})
				var caught []error
				procs[0].OnException(func(err error) { caught = append(caught, err) })
				var sendReturned bool
				var chID ChannelID
				procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
					defer th.Send(0, 1, nil)
					ch, err := procs[0].OpenCall(th, 1, tc.cfg())
					if err != nil {
						t.Errorf("open: %v", err)
						return
					}
					chID = ch.ID()
					srv := dialRendezvous(th, ch)
					ch.Send(th, srv, []byte("payload"))
					ch.Recv(th, Any)
					if err := ch.CloseCall(th); err != nil {
						t.Errorf("close: %v", err)
						return
					}
					ch.Send(th, 0, []byte("too late"))
					sendReturned = true
				})
				procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
				runReal(procs)
				if !sendReturned {
					t.Fatal("send after close did not return")
				}
				var cce *ChannelClosedError
				found := false
				for _, err := range caught {
					if errors.As(err, &cce) {
						found = true
						if cce.ID != chID || cce.Peer != 1 || cce.Local != 0 {
							t.Fatalf("ChannelClosedError fields = %+v, want Local 0 Peer 1 ID %d", cce, chID)
						}
					}
				}
				if !found {
					t.Fatalf("no ChannelClosedError raised; exceptions: %v", caught)
				}
			})
		}
	}
}

// TestCloseRebalanceRace churns signaled go-back-N channels under a hot
// rebalancer with every channel hash-placed on lane 0, so migration
// decisions constantly overlap call teardown. The lifecycle state machine
// must keep mid-handshake and mid-teardown channels off the migration
// path (idleSafeLocked) — the regression this test pins is a close
// tearing down lane state while the channel migrates between lanes.
func TestCloseRebalanceRace(t *testing.T) {
	const dialers, cycles, msgs = 3, 25, 4
	mem := transport.NewMem()
	procs := sigCluster(t, 2, mem, func(i int, cfg *Config) {
		cfg.RebalanceInterval = 100 * time.Microsecond
		cfg.LaneHash = func(ProcID) int { return 0 } // force imbalance
		if i == 1 {
			cfg.OnAccept = serveCalls(msgs)
		}
	})
	procs[0].OnException(func(error) {})
	procs[1].OnException(func(error) {})
	done := 0
	for d := 0; d < dialers; d++ {
		procs[0].TCreate(fmt.Sprintf("dial%d", d), mts.PrioDefault, func(th *Thread) {
			for cyc := 0; cyc < cycles; cyc++ {
				ch, err := procs[0].OpenCall(th, 1, CallConfig{
					Error: NewGoBackN(8, 25*time.Millisecond),
				})
				if err != nil {
					t.Errorf("open: %v", err)
					break
				}
				srv := dialRendezvous(th, ch)
				for k := 0; k < msgs; k++ {
					ch.Send(th, srv, make([]byte, 512))
				}
				ch.Recv(th, Any)
				if err := ch.CloseCall(th); err != nil {
					t.Errorf("close: %v", err)
					break
				}
			}
			done++
			if done == dialers {
				th.Send(0, 1, nil)
			}
		})
	}
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
	runReal(procs)
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
	want := int64(dialers * cycles)
	if st := procs[0].Lifecycle(); st.Opened != want || st.Closed != want {
		t.Fatalf("caller opened %d closed %d, want %d/%d", st.Opened, st.Closed, want, want)
	}
}

// TestSignaledCallOverSimATM runs the signaled lifecycle above the
// simulated FORE adapter on a switched NYNET LAN: connecting a call must
// install the per-channel VC routes (without them the switch discards
// every data cell), releasing must remove them, and a re-dial of the same
// channel ID must install fresh routes. This is the carrier half of the
// paper's one-VC-per-channel model exercised end to end.
func TestSignaledCallOverSimATM(t *testing.T) {
	const msgs = 6
	eng := sim.NewEngine()
	eng.SetMaxTime(time.Hour)
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 100e6})
	nicCfg := nic.Config{
		NumBuffers:      4,
		BufferSize:      2048,
		TrapCost:        10 * time.Microsecond,
		HostCopyPerByte: 100 * time.Nanosecond,
	}
	var procs [2]*Proc
	for i := 0; i < 2; i++ {
		i := i
		node := eng.NewNode(fmt.Sprintf("n%d", i))
		a := nic.NewSimATM(node, net, i, nicCfg)
		cfg := Config{
			ID:       ProcID(i),
			RT:       node.RT(),
			Endpoint: a,
			Compute:  work.Sim(node),
			After:    func(d time.Duration, fn func()) { eng.Schedule(d, fn) },
		}
		if i == 1 {
			cfg.OnAccept = serveCalls(msgs)
		}
		procs[i] = New(cfg)
	}
	var rounds int
	procs[1].TCreate("keeper", mts.PrioDefault, func(th *Thread) { th.Recv(Any, Any) })
	procs[0].TCreate("dial", mts.PrioDefault, func(th *Thread) {
		defer th.Send(0, 1, []byte("bye"))
		// Two full dial/transfer/close rounds on the same explicit ID: the
		// second proves RemoveChannelRoute left the switch reusable.
		for round := 0; round < 2; round++ {
			ch, err := procs[0].OpenCall(th, 1, CallConfig{
				ID:    5,
				Error: NewGoBackN(4, 5*time.Millisecond),
			})
			if err != nil {
				t.Errorf("round %d open: %v", round, err)
				return
			}
			srv := dialRendezvous(th, ch)
			for k := 0; k < msgs; k++ {
				ch.Send(th, srv, make([]byte, 3000)) // multi-chunk, multi-cell
			}
			ch.Recv(th, Any)
			if err := ch.CloseCall(th); err != nil {
				t.Errorf("round %d close: %v", round, err)
				return
			}
			rounds++
		}
	})
	eng.Run()
	if rounds != 2 {
		t.Logf("caller %+v", procs[0].Lifecycle())
		t.Logf("callee %+v", procs[1].Lifecycle())
		t.Logf("switch dropped %d", net.Switches()[0].Dropped())
		t.Fatalf("completed %d rounds, want 2", rounds)
	}
	// Every data cell must have found a route: per-call install beat the
	// traffic, and removal never raced a live transfer.
	if d := net.Switches()[0].Dropped(); d != 0 {
		t.Fatalf("switch dropped %d cells: per-call VC routes missing or removed early", d)
	}
	for i, p := range procs {
		if leaks := p.Leaks(); len(leaks) != 0 {
			t.Errorf("proc %d leaks: %v", i, leaks)
		}
	}
	st := procs[0].Lifecycle()
	if st.Opened != 2 || st.Closed != 2 || st.VCsBound != 2 || st.VCsReleased != 2 {
		t.Fatalf("caller lifecycle %+v, want 2 opens/closes and 2 VC bind/release pairs", st)
	}
}
