package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

// Example reproduces the paper's generic application model (Figure 10):
// initialize the environment, create computation threads, start them, and
// communicate with thread-addressed send/receive.
func Example() {
	fabric := transport.NewMem()
	newProc := func(id core.ProcID) *core.Proc {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", id), IdleTimeout: 10 * time.Second})
		return core.New(core.Config{ID: id, RT: rt, Endpoint: fabric.Attach(transport.ProcID(id), rt)})
	}
	host, node := newProc(0), newProc(1)

	host.TCreate("host", mts.PrioDefault, func(t *core.Thread) {
		t.Send(0, 1, []byte("work item"))
		reply, from := t.Recv(core.Any, 1)
		fmt.Printf("host got %q from proc %d thread %d\n", reply, from.Proc, from.Thread)
	})
	node.TCreate("worker", mts.PrioDefault, func(t *core.Thread) {
		data, from := t.Recv(core.Any, core.Any)
		t.Send(from.Thread, from.Proc, append(data, []byte(" done")...))
	})

	done := make(chan struct{}, 2)
	for _, p := range []*core.Proc{host, node} {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	<-done
	<-done
	// Output: host got "work item done" from proc 1 thread 0
}

// ExampleThread_Block shows the paper's NCS_block/NCS_unblock pair (used
// by the JPEG host in Figure 17): thread 2 waits until thread 1 finishes a
// setup step.
func ExampleThread_Block() {
	fabric := transport.NewMem()
	rt := mts.New(mts.Config{Name: "node", IdleTimeout: 10 * time.Second})
	proc := core.New(core.Config{ID: 0, RT: rt, Endpoint: fabric.Attach(0, rt)})

	var t2 *core.Thread
	proc.TCreate("t1", mts.PrioDefault, func(t *core.Thread) {
		fmt.Println("t1: reading the image")
		t.Unblock(t2)
	})
	t2 = proc.TCreate("t2", mts.PrioDefault, func(t *core.Thread) {
		t.Block()
		fmt.Println("t2: image is ready")
	})
	proc.Start()
	// Output:
	// t1: reading the image
	// t2: image is ready
}

// ExamplePVM shows the PVM message-passing filter: pack a buffer, send it
// to a task, unpack on the other side.
func ExamplePVM() {
	fabric := transport.NewMem()
	newProc := func(id core.ProcID) *core.Proc {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("task%d", id), IdleTimeout: 10 * time.Second})
		return core.New(core.Config{ID: id, RT: rt, Endpoint: fabric.Attach(transport.ProcID(id), rt)})
	}
	a, b := newProc(0), newProc(1)

	a.TCreate("send", mts.PrioDefault, func(t *core.Thread) {
		f := core.PVM(t)
		buf := f.InitSend()
		buf.PackInt32s([]int32{1, 2, 3})
		f.Send(1, 9)
	})
	b.TCreate("recv", mts.PrioDefault, func(t *core.Thread) {
		buf := core.PVM(t).Recv(0, 9)
		ints, _ := buf.UnpackInt32s()
		fmt.Println("received", ints)
	})

	done := make(chan struct{}, 2)
	for _, p := range []*core.Proc{a, b} {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	<-done
	<-done
	// Output: received [1 2 3]
}
