package core

// Group communication beyond Bcast/Gather (paper §3.1 lists 1-to-many,
// many-to-1 and many-to-many classes). These are thin compositions of the
// point-to-point primitives, which is exactly how the paper layers them:
// group operations are library code above NCS_send/NCS_recv. They are the
// *linear* O(N) forms; the logarithmic, channel-pinnable tree collectives
// live in coll.go (Group), and the linear forms remain as the degenerate
// Fanout >= N case the scale benches measure against.

// AllToAll performs the many-to-many exchange: every participating thread
// contributes one payload per peer and receives one payload from each.
// group lists the participating (process, thread) addresses in a globally
// agreed order, and self must be this thread's position in it. data[i] is
// the payload for group[i] (data[self] is returned as-is). The result is
// indexed like group.
func (t *Thread) AllToAll(group []Addr, self int, data [][]byte) [][]byte {
	if len(group) != len(data) {
		panic("core: AllToAll group/data length mismatch")
	}
	out := make([][]byte, len(group))
	out[self] = data[self]
	// Send to everyone first (each Send parks only until the transfer is
	// handed off), then collect; ordering by group index keeps the
	// pattern deadlock-free since receives match on explicit sources.
	for i, a := range group {
		if i == self {
			continue
		}
		t.Send(a.Thread, a.Proc, data[i])
	}
	for i, a := range group {
		if i == self {
			continue
		}
		payload, _ := t.Recv(a.Thread, a.Proc)
		out[i] = payload
	}
	return out
}

// Reduce gathers one payload from every address in list and folds them
// with fn, seeded by own. Like the paper's many-to-1 class with a
// combining function; the root calls Reduce, the leaves just Send.
// Payloads fold in *arrival* order, not list order, so one slow peer never
// head-of-line-blocks contributions already delivered — fn must therefore
// be commutative as well as associative (true of every reduction the
// paper's workloads use: sums, maxima, concatenation-by-key).
// Group.Reduce is the tree-structured alternative for large N.
func (t *Thread) Reduce(list []Addr, own []byte, fn func(acc, next []byte) []byte) []byte {
	acc := own
	pending := append([]Addr(nil), list...)
	for len(pending) > 0 {
		m, i := t.recvAnyOf(0, Any, pending)
		acc = fn(acc, m.Data)
		pending = append(pending[:i], pending[i+1:]...)
	}
	return acc
}
