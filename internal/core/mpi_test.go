package core

import (
	"testing"
	"time"

	"repro/internal/mts"
)

func mpiWorld(n int) []ProcID {
	world := make([]ProcID, n)
	for i := range world {
		world[i] = ProcID(i)
	}
	return world
}

func TestMPIRankAndSize(t *testing.T) {
	eng, procs := simCluster(t, 3, nil)
	world := mpiWorld(3)
	for i := 0; i < 3; i++ {
		i := i
		procs[i].TCreate("r", mts.PrioDefault, func(th *Thread) {
			f := MPI(th, world)
			if f.Rank() != i || f.Size() != 3 {
				t.Errorf("rank/size = %d/%d, want %d/3", f.Rank(), f.Size(), i)
			}
		})
	}
	eng.Run()
}

func TestMPISendRecvWithStatus(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	world := mpiWorld(2)
	var status MPIStatus
	var data []byte
	procs[0].TCreate("r0", mts.PrioDefault, func(th *Thread) {
		MPI(th, world).Send([]byte("hello mpi"), 1, 42)
	})
	procs[1].TCreate("r1", mts.PrioDefault, func(th *Thread) {
		data, status = MPI(th, world).Recv(MPIAnySource, MPIAnyTag)
	})
	eng.Run()
	if string(data) != "hello mpi" || status.Source != 0 || status.Tag != 42 || status.Count != 9 {
		t.Fatalf("data %q status %+v", data, status)
	}
}

func TestMPISendrecvRing(t *testing.T) {
	// The classic neighbour exchange that deadlocks naive blocking MPI:
	// every rank sends right and receives from the left simultaneously.
	const n = 4
	eng, procs := simCluster(t, n, nil)
	world := mpiWorld(n)
	got := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("r", mts.PrioDefault, func(th *Thread) {
			f := MPI(th, world)
			right := (i + 1) % n
			left := (i + n - 1) % n
			data, _ := f.Sendrecv([]byte{byte(i)}, right, 1, left, 1)
			got[i] = int(data[0])
		})
	}
	eng.Run()
	for i := 0; i < n; i++ {
		if got[i] != (i+n-1)%n {
			t.Fatalf("rank %d got %d, want %d", i, got[i], (i+n-1)%n)
		}
	}
}

func TestMPIBcast(t *testing.T) {
	const n = 4
	eng, procs := simCluster(t, n, nil)
	world := mpiWorld(n)
	results := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("r", mts.PrioDefault, func(th *Thread) {
			f := MPI(th, world)
			var payload []byte
			if f.Rank() == 2 {
				payload = []byte("from-root-2")
			}
			results[i] = string(f.Bcast(payload, 2))
		})
	}
	eng.Run()
	for i, r := range results {
		if r != "from-root-2" {
			t.Fatalf("rank %d got %q", i, r)
		}
	}
}

func TestMPIBarrierSynchronizes(t *testing.T) {
	const n = 3
	eng, procs := simCluster(t, n, nil)
	world := mpiWorld(n)
	arrived := 0
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("r", mts.PrioDefault, func(th *Thread) {
			f := MPI(th, world)
			th.Compute(time.Duration(i+1)*5*time.Millisecond, nil)
			arrived++
			f.Barrier()
			if arrived != n {
				t.Errorf("rank %d passed barrier with %d arrivals", i, arrived)
			}
		})
	}
	eng.Run()
}
