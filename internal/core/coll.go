package core

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Tree-structured, channel-aware collectives: the logarithmic counterpart
// of the linear group operations in group.go/core.go. The paper's §3.1
// group-communication classes (1-to-many, many-to-1, many-to-many,
// synchronization) are library code above NCS_send/NCS_recv; once the
// point-to-point path is cheap, the linear compositions dominate scaling —
// a root-collected barrier funnels every arrival through one process and a
// broadcast loop serializes N-1 copies at the root. A Group replaces them
// with precomputed logarithmic topologies:
//
//   - Barrier: a radix-q dissemination barrier — ceil(log_q N) rounds, each
//     process sending and collecting q-1 tokens per round, no root at all.
//     Every process's critical path is ~2·ceil(log_q N) message costs,
//     against the root-collected star where all N-1 arrivals and N-1
//     releases serialize through one process.
//   - Bcast/Gather/Reduce: a q-nomial tree (binomial at the default q = 2),
//     children ordered largest-subtree-first so every informed process is
//     sending at every step of the critical path.
//   - AllToAll: pairwise exchange — an XOR schedule when N is a power of
//     two (each round is a perfect matching), a send-to-(i+r)/
//     receive-from-(i-r) ring schedule otherwise.
//
// Every collective rides a caller-chosen channel (GroupConfig.Channel), so
// a phase-synchronization group can pin its traffic to a high-priority,
// policed VC while bulk halo exchange uses its own class — the per-channel
// QoS story of Figure 5 extended to group communication. Fanout >= N
// degenerates every operation to the *old linear algorithms, preserved
// serial* — root-collected star barrier, one-Send-at-a-time broadcast and
// exchange, exactly the pre-tree code paths — which is how the scale
// benches A/B the rewrite against its baseline on identical plumbing.
// (Tree mode additionally fan-batches its hops: all of a node's copies
// are enqueued before one park, so the carrier sees the burst; that
// batching is part of what the A/B measures.)
//
// Collective messages are ordinary data messages in a reserved high tag
// band (collTagBase), so they obey the channel's flow control, error
// control, and priority like any other traffic; on a lossy carrier the
// group's channel needs an error-control discipline, exactly as
// point-to-point traffic does. Hot paths stay pooled: fan-out enqueues
// every copy before parking once (the send loop batches same-destination
// runs, and sender-side Message structs recycle through the proc
// freelist), barrier tokens and BcastInto payloads land via RecvInto
// semantics so pooled frames recycle, and alloc_test.go pins the
// per-collective budget.

// Collective tags occupy a reserved band far above application tags:
// bit 28 set, the operation in bits 24..27, the round index below. User
// tags this large would collide; none of the repo's workloads come close.
const (
	collTagBase = 1 << 28

	collOpBarrier = 0
	collOpRelease = 1
	collOpBcast   = 2
	collOpGather  = 3
	collOpReduce  = 4
	collOpA2A     = 5
)

// collTag builds the wire tag for one operation round.
func collTag(op, round int) int { return collTagBase | op<<24 | round }

// GroupConfig selects a Group's channel and topology.
type GroupConfig struct {
	// Channel pins every collective of the group to this channel ID toward
	// each member (0 = the default channel). A nonzero channel must already
	// be open to every other member, with compatible disciplines on both
	// ends, before NewGroup.
	Channel ChannelID
	// Fanout is the tree radix q: 0 selects 2 (binomial tree and combining
	// barrier); values >= len(members) degenerate to the serial linear
	// algorithms (root-collected star barrier, one-Send-at-a-time
	// broadcast) — the O(N) baseline the benches measure the trees against.
	Fanout int
}

// Group is a communicator: an agreed, ordered member list with precomputed
// collective topologies, bound to one channel class. Every member process
// constructs its own Group from the *same* member list and configuration;
// the member thread listed for this process is the only thread that may
// call the group's operations (they block only that thread, like every
// NCS primitive).
type Group struct {
	p       *Proc
	members []Addr
	self    int
	chID    ChannelID
	chans   []*Channel // per member index; nil at self
	radix   int
	linear  bool

	// q-nomial tree in relative-rank space (rank = (index - root) mod N):
	// relParent[r] is r's parent, relKids[r] its children largest-subtree-
	// first, relSub[r] its subtree size. Relative ranks make one set of
	// tables serve every root.
	relParent []int
	relKids   [][]int
	relSub    []int

	// Dissemination barrier schedule: absolute member indices to send to
	// and collect from, per round.
	barSend [][]int
	barRecv [][]int

	// AllToAll pairwise schedule: xor selects the perfect-matching XOR
	// schedule (N a power of two); otherwise the ring offsets are computed
	// per round.
	xor bool

	inBarrier bool

	// addrScratch and idxScratch are per-op scratch (member-thread only);
	// packBuf is Gather's concatenation buffer; laneScratch dedupes the
	// lanes a sharded fan-out touched. All retain capacity across calls so
	// steady-state collectives allocate nothing beyond payloads.
	addrScratch []Addr
	idxScratch  []int
	packBuf     []byte
	laneScratch []*lane

	// lane is the group's trace timeline (empty without a Tracer): Comm
	// while a collective holds the member thread, with per-round marks
	// carrying the round index and fan/subtree size.
	lane string
}

// NewGroup builds this process's handle on a communicator. members lists
// the participating (process, thread) addresses in an order every member
// agrees on; exactly one entry must name this process (members span
// distinct processes — sibling threads of one process share memory and do
// not need a network collective). Call after opening cfg.Channel to every
// other member.
func (p *Proc) NewGroup(members []Addr, cfg GroupConfig) *Group {
	n := len(members)
	if n < 1 {
		panic("core: a group needs at least one member")
	}
	// A single-member group (the nprocs=1 degenerate run every MPI-style
	// program has) is legal: every collective is a local no-op.
	self := -1
	for i, a := range members {
		for j := 0; j < i; j++ {
			if members[j].Proc == a.Proc {
				panic(fmt.Sprintf("core: group members must be distinct processes (proc %d listed twice)", a.Proc))
			}
		}
		if a.Proc == p.cfg.ID {
			self = i
		}
	}
	if self < 0 {
		panic(fmt.Sprintf("core(proc %d): not a member of the group", p.cfg.ID))
	}
	radix := cfg.Fanout
	if radix == 0 {
		radix = 2
	}
	if radix < 2 {
		panic("core: group fanout must be >= 2 (or 0 for the default)")
	}
	g := &Group{
		p: p, members: append([]Addr(nil), members...), self: self,
		chID: cfg.Channel, radix: radix, linear: radix >= n,
	}
	g.chans = make([]*Channel, n)
	for i, a := range members {
		if i == self {
			continue
		}
		if cfg.Channel == 0 {
			g.chans[i] = p.DefaultChannel(a.Proc)
		} else {
			c, ok := p.lookupChannel(a.Proc, cfg.Channel)
			if !ok {
				panic(fmt.Sprintf("core(proc %d): group channel %d not open to member proc %d", p.cfg.ID, cfg.Channel, a.Proc))
			}
			g.chans[i] = c
		}
	}
	g.buildTree(n)
	if !g.linear {
		g.buildBarrier(n)
	}
	g.xor = n&(n-1) == 0 && !g.linear
	if p.cfg.Tracer != nil {
		g.lane = fmt.Sprintf("%s/coll g%d ch%d", p.cfg.TraceName, p.groupSeq, cfg.Channel)
		p.groupSeq++
	}
	return g
}

// buildTree fills the q-nomial tree tables. Node r's children are
// r + j*q^k for every digit position k below r's lowest nonzero base-q
// digit (all of them for the root) and j = 1..q-1, enumerated highest k
// first — largest subtree first, which keeps every informed node busy on
// the broadcast critical path. With q >= N this is a flat star under
// rank 0: the linear baseline.
func (g *Group) buildTree(n int) {
	q := g.radix
	var pow []int
	for v := 1; v < n; v *= q {
		pow = append(pow, v)
	}
	rounds := len(pow)
	g.relParent = make([]int, n)
	g.relKids = make([][]int, n)
	g.relSub = make([]int, n)
	for r := 0; r < n; r++ {
		// low = position of r's lowest nonzero base-q digit (rounds for 0).
		low := rounds
		if r > 0 {
			low = 0
			v := r
			for v%q == 0 {
				v /= q
				low++
			}
			g.relParent[r] = r - (v%q)*pow[low]
		}
		for k := low - 1; k >= 0; k-- {
			for j := 1; j < q; j++ {
				c := r + j*pow[k]
				if c >= n {
					break
				}
				g.relKids[r] = append(g.relKids[r], c)
			}
		}
	}
	// Subtree sizes, computable children-first by walking ranks downward
	// (every child has a higher rank than its parent).
	for r := n - 1; r >= 0; r-- {
		g.relSub[r] = 1
		for _, c := range g.relKids[r] {
			g.relSub[r] += g.relSub[c]
		}
	}
}

// buildBarrier fills the radix-q dissemination schedule: in round k every
// process sends a token to (self + j*q^k) mod N and collects one from
// (self - j*q^k) mod N, j = 1..q-1. After round k each process has
// transitively heard from every process within q^(k+1)-1 behind it, so
// ceil(log_q N) rounds synchronize everyone with no root — and because no
// round has a funnel, the critical path stays logarithmic even when every
// process arrives simultaneously (a combining tree's root still serializes
// its q arrivals; the star serializes all N-1).
func (g *Group) buildBarrier(n int) {
	q := g.radix
	for step := 1; step < n; step *= q {
		var send, recv []int
		for j := 1; j < q; j++ {
			off := (j * step) % n
			if off == 0 {
				continue
			}
			dup := false
			for _, s := range send {
				if s == (g.self+off)%n {
					dup = true
				}
			}
			if dup {
				continue
			}
			send = append(send, (g.self+off)%n)
			recv = append(recv, (g.self-off+n)%n)
		}
		if len(send) > 0 {
			g.barSend = append(g.barSend, send)
			g.barRecv = append(g.barRecv, recv)
		}
	}
}

// Members returns the communicator's member list (shared; do not mutate).
func (g *Group) Members() []Addr { return g.members }

// Self returns this process's index in the member list.
func (g *Group) Self() int { return g.self }

// Linear reports whether the group degenerated to the linear algorithms
// (Fanout >= N).
func (g *Group) Linear() bool { return g.linear }

// rel converts this process's member index into rank space rooted at root.
func (g *Group) rel(root int) int { return (g.self - root + len(g.members)) % len(g.members) }

// abs converts a rank (rooted at root) back to a member index.
func (g *Group) abs(rank, root int) int { return (rank + root) % len(g.members) }

func (g *Group) checkCaller(t *Thread) {
	if t.proc != g.p || t.idx != g.members[g.self].Thread {
		panic(fmt.Sprintf("core(proc %d): group op called by thread %d, member thread is %d",
			g.p.cfg.ID, t.idx, g.members[g.self].Thread))
	}
}

func (g *Group) checkRoot(root int) {
	if root < 0 || root >= len(g.members) {
		panic(fmt.Sprintf("core: group root %d out of range [0,%d)", root, len(g.members)))
	}
}

// traceRound marks the group lane with one protocol step: operation, round
// index, and the fan/subtree size the step covers. No-op without a Tracer.
func (g *Group) traceRound(op string, round, size int) {
	tr := g.p.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Set(g.lane, trace.Comm)
	tr.Mark(g.lane, fmt.Sprintf("%s r%d n%d", op, round, size))
}

// traceIdle closes the lane's Comm segment at the end of a collective, so
// each operation renders as one segment whose end is the exit instant —
// trace.PhaseSkew over the group lanes of all members measures barrier-exit
// skew directly.
func (g *Group) traceIdle() {
	if tr := g.p.cfg.Tracer; tr != nil {
		tr.Set(g.lane, trace.Idle)
	}
}

// ---------------------------------------------------------------------------
// Fan-out send

// fanSend transmits one message per member index in idxs — the shared
// payload when datas is nil, datas[pos] otherwise — enqueuing every copy
// before parking the caller *once* until the send loop has handed the last
// one to the carrier. Compared with serial Sends this amortizes the
// park/unpark pair across the whole fan and lets the carrier's batch path
// see the run; the payload must stay stable until the wakeup, which is
// exactly what the single park guarantees (every copy is serialized before
// the last request retires).
func (g *Group) fanSend(t *Thread, tag int, idxs []int, datas [][]byte, shared []byte) {
	if len(idxs) == 0 {
		return
	}
	p := g.p
	if p.sharded() {
		g.fanSendSharded(t, tag, idxs, datas, shared)
		return
	}
	p.traceThread(t, trace.Idle)
	t.fanLeft = len(idxs)
	for pos, ki := range idxs {
		c := g.chans[ki]
		if c.closed {
			panic(fmt.Sprintf("core(proc %d): group send on closed channel %d to proc %d", p.cfg.ID, c.id, c.peer))
		}
		m := p.getDataMsg()
		m.From = p.cfg.ID
		m.To = c.peer
		m.FromThread = t.idx
		m.ToThread = g.members[ki].Thread
		m.Tag = tag
		m.Channel = c.id
		if datas != nil {
			m.Data = datas[pos]
		} else {
			m.Data = shared
		}
		req := p.getReq()
		req.m = m
		req.ch = c
		req.fan = t
		p.enqueueSend(req)
	}
	for t.fanLeft > 0 {
		t.mt.Park("ncs send")
	}
	p.traceThread(t, trace.Compute)
	p.sent.Add(int64(len(idxs)))
}

// fanSendSharded is fanSend over per-lane engines: every copy is staged on
// its channel's lane (under that lane's lock, from the lane freelists),
// then each touched lane is serviced once — so a lane sees its whole share
// of the fan as one burst and the carrier's batch path still fires. The
// caller's counter-park loop is identical to the classic path: fanLeft is
// scheduler-domain state, decremented by the drains this thread runs inline
// (runDrain) or that post behind its park.
func (g *Group) fanSendSharded(t *Thread, tag int, idxs []int, datas [][]byte, shared []byte) {
	p := g.p
	p.traceThread(t, trace.Idle)
	t.fanLeft = len(idxs)
	lanes := g.laneScratch[:0]
	for pos, ki := range idxs {
		c := g.chans[ki]
		ln := c.lockLane()
		if c.closed {
			ln.mu.Unlock()
			panic(fmt.Sprintf("core(proc %d): group send on closed channel %d to proc %d", p.cfg.ID, c.id, c.peer))
		}
		m := ln.getDataMsg()
		m.From = p.cfg.ID
		m.To = c.peer
		m.FromThread = t.idx
		m.ToThread = g.members[ki].Thread
		m.Tag = tag
		m.Channel = c.id
		if datas != nil {
			m.Data = datas[pos]
		} else {
			m.Data = shared
		}
		req := ln.getReq()
		req.m = m
		req.ch = c
		req.fan = t
		cost := int64(wire.HeaderSize + len(m.Data))
		c.loadAcc.Add(cost)
		ln.loadAcc.Add(cost)
		ln.pending.push(c.priority, req)
		ln.mu.Unlock()
		seen := false
		for _, l := range lanes {
			if l == ln {
				seen = true
				break
			}
		}
		if !seen {
			lanes = append(lanes, ln)
		}
	}
	g.laneScratch = lanes
	for _, ln := range lanes {
		ln.mu.Lock()
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
	}
	for t.fanLeft > 0 {
		t.mt.Park("ncs send")
	}
	p.traceThread(t, trace.Compute)
	p.sent.Add(int64(len(idxs)))
}

// kidIdxs maps the tree children of rank rel (rooted at root) to member
// indices, into the reusable scratch slice.
func (g *Group) kidIdxs(rel, root int) []int {
	kids := g.relKids[rel]
	out := g.idxScratch[:0]
	for _, c := range kids {
		out = append(out, g.abs(c, root))
	}
	g.idxScratch = out
	return out
}

// collectAnyOf receives one message from every member index in idxs (any
// arrival order — a slow subtree delays only itself), invoking fn with the
// member index and message. fn owns the message (Release it if the payload
// is copied out). idxs is clobbered (it tracks the pending set).
func (g *Group) collectAnyOf(t *Thread, tag int, idxs []int, fn func(member int, m *wireMessage)) {
	set := g.addrScratch[:0]
	for _, i := range idxs {
		set = append(set, g.members[i])
	}
	g.addrScratch = set
	left := len(set)
	for left > 0 {
		m, i := t.recvAnyOf(g.chID, tag, set[:left])
		member := idxs[i]
		set[i], idxs[i] = set[left-1], idxs[left-1]
		left--
		fn(member, m)
	}
}

// wireMessage aliases the transport message type for coll.go signatures.
type wireMessage = wire.Message

// sendAll transmits tag plus payload(s) to each member index: fan-batched
// in tree mode (every copy enqueued before one park), one serial Send per
// destination in linear mode — the pre-tree code's exact shape, preserved
// as the A/B baseline.
func (g *Group) sendAll(t *Thread, tag int, idxs []int, datas [][]byte, shared []byte) {
	if !g.linear {
		g.fanSend(t, tag, idxs, datas, shared)
		return
	}
	for pos, ki := range idxs {
		d := shared
		if datas != nil {
			d = datas[pos]
		}
		g.chans[ki].SendTagged(t, tag, g.members[ki].Thread, d)
	}
}

// ---------------------------------------------------------------------------
// Barrier

// Barrier blocks until every member has entered it: the synchronization
// class of §3.1 in logarithmic form — a radix-q dissemination barrier with
// no root (ceil(log_q N) rounds of send/collect tokens), against the
// root-collected star (the Fanout >= N degenerate form) where all N-1
// arrivals and N-1 releases serialize through member 0. Call from the
// member thread on every member; only that thread blocks.
func (g *Group) Barrier(t *Thread) {
	g.checkCaller(t)
	if g.inBarrier {
		panic("core: concurrent Barrier calls on the same group")
	}
	g.inBarrier = true
	if g.linear {
		g.starBarrier(t)
	} else {
		g.dissemBarrier(t)
	}
	g.inBarrier = false
	g.traceIdle()
}

func (g *Group) dissemBarrier(t *Thread) {
	for k, sends := range g.barSend {
		g.traceRound("bar", k, len(sends))
		g.fanSend(t, collTag(collOpBarrier, k), sends, nil, nil)
		recvs := g.barRecv[k]
		if len(recvs) == 1 {
			a := g.members[recvs[0]]
			t.recvIntoOn(nil, g.chID, collTag(collOpBarrier, k), a.Thread, a.Proc)
			continue
		}
		g.idxScratch = append(g.idxScratch[:0], recvs...)
		g.collectAnyOf(t, collTag(collOpBarrier, k), g.idxScratch, func(_ int, m *wireMessage) {
			m.Release()
		})
	}
}

// starBarrier is the linear baseline: the root-collected protocol of the
// original barrier, serial release loop included.
func (g *Group) starBarrier(t *Thread) {
	n := len(g.members)
	if g.self == 0 {
		g.traceRound("bar", 0, n-1)
		all := g.idxScratch[:0]
		for i := 1; i < n; i++ {
			all = append(all, i)
		}
		g.idxScratch = all
		g.collectAnyOf(t, collTag(collOpBarrier, 0), all, func(_ int, m *wireMessage) {
			m.Release()
		})
		g.traceRound("bar", 1, n-1)
		for i := 1; i < n; i++ {
			g.chans[i].SendTagged(t, collTag(collOpRelease, 0), g.members[i].Thread, nil)
		}
		return
	}
	g.traceRound("bar", 0, 1)
	g.chans[0].SendTagged(t, collTag(collOpBarrier, 0), g.members[0].Thread, nil)
	t.recvIntoOn(nil, g.chID, collTag(collOpRelease, 0), g.members[0].Thread, g.members[0].Proc)
}

// ---------------------------------------------------------------------------
// Broadcast

// Bcast distributes root's payload to every member down the q-nomial tree
// and returns it on every member (root returns data as passed). Non-root
// members receive an owned payload; use BcastInto for the pooled,
// allocation-free variant.
func (g *Group) Bcast(t *Thread, root int, data []byte) []byte {
	g.checkCaller(t)
	g.checkRoot(root)
	rel := g.rel(root)
	if rel != 0 {
		pa := g.members[g.abs(g.relParent[rel], root)]
		data, _, _ = t.recvOn(g.chID, collTag(collOpBcast, 0), pa.Thread, pa.Proc)
	}
	kids := g.kidIdxs(rel, root)
	g.traceRound("bcast", 0, g.relSub[rel])
	g.sendAll(t, collTag(collOpBcast, 0), kids, nil, data)
	g.traceIdle()
	return data
}

// BcastInto is Bcast delivering into the caller's buffer (the paper's
// receive-into-buffer shape): non-root members receive into buf — the
// pooled frame recycles — then forward buf[:n] down the tree; the root
// sends buf itself. Returns the payload length. Steady-state broadcast
// over a pooled carrier allocates nothing on any member.
func (g *Group) BcastInto(t *Thread, root int, buf []byte) int {
	g.checkCaller(t)
	g.checkRoot(root)
	rel := g.rel(root)
	n := len(buf)
	if rel != 0 {
		pa := g.members[g.abs(g.relParent[rel], root)]
		n, _ = t.recvIntoOn(buf, g.chID, collTag(collOpBcast, 0), pa.Thread, pa.Proc)
	}
	kids := g.kidIdxs(rel, root)
	g.traceRound("bcast", 0, g.relSub[rel])
	g.sendAll(t, collTag(collOpBcast, 0), kids, nil, buf[:n])
	g.traceIdle()
	return n
}

// ---------------------------------------------------------------------------
// Gather / Reduce

// Gather collects one payload from every member up the tree and returns
// them indexed by member on the root (nil elsewhere). Interior nodes
// concatenate their subtree's contributions — [member, length, bytes]
// entries framed with the wire codec — into one message per tree edge, so
// the message count stays N-1 while the critical path drops to
// ceil(log_q N) hops; arrivals from child subtrees complete out of order.
func (g *Group) Gather(t *Thread, root int, own []byte) [][]byte {
	g.checkCaller(t)
	g.checkRoot(root)
	rel := g.rel(root)
	buf := g.packBuf[:0]
	buf = wire.AppendUint32(buf, uint32(g.self))
	buf = wire.AppendUint32(buf, uint32(len(own)))
	buf = append(buf, own...)
	kids := g.kidIdxs(rel, root)
	g.traceRound("gather", 0, g.relSub[rel])
	if len(kids) > 0 {
		g.collectAnyOf(t, collTag(collOpGather, 0), kids, func(_ int, m *wireMessage) {
			buf = append(buf, m.Data...)
			m.Release()
		})
	}
	g.packBuf = buf[:0]
	if rel != 0 {
		pa := g.abs(g.relParent[rel], root)
		g.chans[pa].SendTagged(t, collTag(collOpGather, 0), g.members[pa].Thread, buf)
		g.traceIdle()
		return nil
	}
	out := make([][]byte, len(g.members))
	for b := buf; len(b) >= 8; {
		member := int(wire.Uint32(b))
		length := int(wire.Uint32(b[4:]))
		b = b[8:]
		out[member] = append([]byte(nil), b[:length]...)
		b = b[length:]
	}
	g.traceIdle()
	return out
}

// Reduce folds one payload from every member with fn up the tree, seeded
// at each member by own, and returns the reduction on the root (nil
// elsewhere). Children's partials arrive in any order and interior nodes
// fold eagerly, so fn must be associative and commutative (sums, maxima —
// the usual reductions). Message count is N-1 with ceil(log_q N) critical
// path, against the linear Thread.Reduce where the root folds all N-1.
func (g *Group) Reduce(t *Thread, root int, own []byte, fn func(acc, next []byte) []byte) []byte {
	g.checkCaller(t)
	g.checkRoot(root)
	rel := g.rel(root)
	acc := own
	kids := g.kidIdxs(rel, root)
	g.traceRound("reduce", 0, g.relSub[rel])
	if len(kids) > 0 {
		g.collectAnyOf(t, collTag(collOpReduce, 0), kids, func(_ int, m *wireMessage) {
			acc = fn(acc, m.Data)
		})
	}
	if rel != 0 {
		pa := g.abs(g.relParent[rel], root)
		g.chans[pa].SendTagged(t, collTag(collOpReduce, 0), g.members[pa].Thread, acc)
		g.traceIdle()
		return nil
	}
	g.traceIdle()
	return acc
}

// ---------------------------------------------------------------------------
// AllToAll

// AllToAll performs the many-to-many exchange: data[i] goes to member i,
// and the result holds one payload from each member (data[self] is
// returned in place). The tree groups run a pairwise-exchange schedule —
// XOR perfect matchings when N is a power of two, a ring schedule
// otherwise — so every round moves N/2 disjoint pairs concurrently instead
// of posting N-1 sends and draining receives in member order. Linear
// groups keep the old shape (fan out all sends, then collect in order) as
// the baseline.
func (g *Group) AllToAll(t *Thread, data [][]byte) [][]byte {
	g.checkCaller(t)
	n := len(g.members)
	if len(data) != n {
		panic("core: AllToAll group/data length mismatch")
	}
	out := make([][]byte, n)
	out[g.self] = data[g.self]
	if g.linear {
		idxs := g.idxScratch[:0]
		for i := range g.members {
			if i != g.self {
				idxs = append(idxs, i)
			}
		}
		g.idxScratch = idxs
		datas := make([][]byte, 0, n-1)
		for _, i := range idxs {
			datas = append(datas, data[i])
		}
		g.traceRound("a2a", 0, n-1)
		g.sendAll(t, collTag(collOpA2A, 0), idxs, datas, nil)
		for _, i := range idxs {
			a := g.members[i]
			out[i], _, _ = t.recvOn(g.chID, collTag(collOpA2A, 0), a.Thread, a.Proc)
		}
		g.traceIdle()
		return out
	}
	for r := 1; r < n; r++ {
		var sendTo, recvFrom int
		if g.xor {
			sendTo = g.self ^ r
			recvFrom = sendTo
		} else {
			sendTo = (g.self + r) % n
			recvFrom = (g.self - r + n) % n
		}
		tag := collTag(collOpA2A, r)
		g.traceRound("a2a", r, 1)
		g.chans[sendTo].SendTagged(t, tag, g.members[sendTo].Thread, data[sendTo])
		a := g.members[recvFrom]
		out[recvFrom], _, _ = t.recvOn(g.chID, tag, a.Thread, a.Proc)
	}
	g.traceIdle()
	return out
}
