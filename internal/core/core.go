// Package core is NCS, the NYNET Communication System — the paper's primary
// contribution (§3, §4). It glues the two subsystems together:
//
//   - NCS_MTS (internal/mts): user-level threads, 16-level priority
//     round-robin scheduling, block/unblock, synchronization.
//   - NCS_MPS (this package + a transport): thread-addressed message
//     passing. NCS_send and NCS_recv wake the *send* and *receive system
//     threads* and block only the calling thread, never the process, so
//     other threads compute while a transfer is in flight.
//
// A Proc is one NCS process (one per workstation). Its system threads run
// at the highest priority; user compute threads are created with TCreate
// and started with Start, mirroring the paper's generic application model
// (Figure 10):
//
//	NCS_init(flow, error)   ->  core.New(Config{Flow: ..., Error: ...})
//	NCS_t_create(fn, a, p)  ->  proc.TCreate(name, prio, fn)
//	NCS_start()             ->  proc.Start() / sim engine Run
//	NCS_send / NCS_recv     ->  Thread.Send / Thread.Recv
//	NCS_bcast               ->  Thread.Bcast
//	NCS_block / NCS_unblock ->  Thread.Block / Thread.Unblock
//
// NCS_init's flow/error arguments configure the *default channel*: every
// process pair has an implicit channel 0 whose disciplines fork from the
// Config templates, which is what Thread.Send/Recv ride. The paper's
// application-specific QoS (§3, Figure 5) goes further — each traffic
// class picks its own disciplines — and that is Proc.Open: an explicit
// Channel with its own FlowControl, ErrorControl, and priority, mapped to
// its own ATM virtual circuit in the cell-level carriers (see channel.go).
//
// The transport underneath decides the tier: the simulated or real TCP path
// gives the Normal Speed Mode (Approach 1, what the paper benchmarks); the
// ATM-API path (internal/nic) gives the High Speed Mode (Approach 2).
//
// # Threading model
//
// With Config.SendLanes/RecvLanes = 1 (the GOMAXPROCS=1 default) the
// process runs the paper's exact model: one send and one receive system
// thread at top priority, strict 9-level priority across channels,
// per-channel flush timers. At lane counts above one the pair shards into
// per-lane engines (lane.go), and each lane engine is an adaptive
// scheduler:
//
//   - Deficit round robin across the lane's data channels (drr.go):
//     ChannelConfig.Weight (default priority+1) × 2 KB of service per
//     round, control strictly above all data, higher priority still
//     preempting within the round — bounding starvation instead of
//     permitting it.
//   - Lane-aware control coalescing (lane.go): an expiring CtrlFlushDelay
//     window first tries to ride a sibling channel's queued or imminent
//     data frame toward the same peer, and flush timers share one
//     per-lane wheel instead of one timer per channel.
//   - Hot-lane rebalancing (rebalance.go): per-lane load EWMAs drive a
//     periodic tick (Config.RebalanceInterval; negative disables) that
//     migrates idle-safe sequenced channels from the hottest lane to the
//     coldest, plus an enqueue-time steal under extreme skew.
//     Config.LaneHash overrides initial placement; ChannelConfig.Lane
//     pins a channel immovably.
//
// Proc.LaneStats reports the per-lane view: piggyback share, coalesced
// control words, DRR rounds, migrations, and steals.
//
// # Execution modes
//
// The lane engines run in one of two modes, selected per Proc:
//
//   - Real mode (default): each lane engine is a goroutine; timers are
//     wall-clock (the rebalance ticker in clockseam.go — the package's one
//     sanctioned wall-clock contact — and whatever Config.After supplies).
//     This is what every live transport and benchmark uses.
//   - Virtual mode (Config.VirtualTime, requires Config.After): the same
//     lane code runs as event callbacks on a discrete-event engine's clock
//     — no lane goroutines at all. Events and the threads they dispatch
//     execute strictly one at a time in the engine's goroutine, ordered by
//     the event queue's (time, seq) heap, so a run is deterministic: the
//     same workload and seed reproduce the timeline byte for byte. Code in
//     this package must therefore never let ordering depend on Go map
//     iteration or goroutine scheduling (see Proc.channelsOrdered).
//
// NewVirtualMesh builds the standard virtual-mode arrangement — N procs on
// one engine over a frame-granular fabric — and TimelineHash fingerprints
// a run for determinism assertions. The seam between the modes is
// engineDriver in lane.go.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/list"
	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/work"
)

// ProcID aliases the transport process identifier.
type ProcID = transport.ProcID

// Any is the wildcard (-1) in receive matching, as in the paper's
// NCS_recv(-1, -1, ...).
const Any = transport.Any

// Reserved control tags (negative; user tags are >= 0).
const (
	tagFlowAck    = -2
	tagBarrier    = -3
	tagBarrierRel = -4
	tagGBNAck     = -5
)

// Addr addresses one NCS thread: the paper's (thread, process) pair.
type Addr struct {
	Proc   ProcID
	Thread int
}

// Config assembles a Proc.
type Config struct {
	// ID is the process identity; must match Endpoint.Proc().
	ID ProcID
	// RT is the process's thread runtime (one per workstation).
	RT *mts.Runtime
	// Endpoint carries messages (SimTCP, SimATM, Mem, UDP).
	Endpoint transport.Endpoint
	// Compute executes application work (sim: charge cost; real: run fn).
	Compute work.Compute
	// RecvCharge, if set, is the host CPU cost of moving an n-byte message
	// from the protocol stack to the application, charged at consume time.
	RecvCharge func(t *mts.Thread, n int)
	// Flow selects the flow-control discipline (nil = NoFlowControl, the
	// paper's Approach-1 default, which relies on p4/TCP underneath).
	Flow FlowControl
	// Error selects the error-control discipline (nil = NoErrorControl).
	Error ErrorControl
	// After schedules fn after a delay in the scheduler domain; retransmit
	// and rate timers use it. Defaults to RT.After (real time). Sim
	// harnesses must pass the engine's virtual timer.
	After func(d time.Duration, fn func())
	// VirtualTime declares that the proc executes on a discrete-event loop:
	// After is the simulation engine's virtual timer and every internal
	// engine (lane steps, the rebalancer tick, drain hand-offs) must ride
	// it as clock events instead of goroutines, tickers, or PostAsync.
	// This is what lets the sharded lane hot path run under a sim harness —
	// N procs on one shared clock with a deterministic timeline — instead
	// of falling back to the classic two-thread path. Requires After;
	// NewVirtualMesh sets both.
	VirtualTime bool
	// CtrlFlushDelay bounds how long a channel's pending reverse-direction
	// control (cumulative credit advertisements, acks) may wait to
	// piggyback on a data frame before a standalone control frame flushes
	// it. 0 selects DefaultCtrlFlushDelay; negative disables the piggyback
	// window entirely — every control word flushes standalone the moment
	// it is produced (the pre-v3 wire behavior, useful for experiments
	// isolating the piggyback effect).
	CtrlFlushDelay time.Duration
	// ArrivalPollDelay models Approach 1's receive discovery latency: the
	// NCS receive system thread polls p4 underneath (§4.2 — NCS_recv is
	// built on p4_messages_available/p4_recv), so a message that arrives
	// while the workstation is otherwise idle is noticed only at the next
	// poll. When compute threads keep the CPU busy the poll coincides
	// with the next context switch and costs nothing — that asymmetry is
	// precisely how multithreading hides latency. The hook returns the
	// extra delay to apply to the receive thread's wakeup for an arrival;
	// nil means zero (Approach 2's trap-driven receive path).
	ArrivalPollDelay func() time.Duration
	// Tracer, if set, records per-thread timelines named
	// "<TraceName>/t<idx>".
	Tracer    *trace.Recorder
	TraceName string
	// SendLanes and RecvLanes select the sharded multi-core hot path (see
	// lane.go): 0 defaults to min(GOMAXPROCS, 4), and the larger of the two
	// resolved values becomes the lane count (each lane is a combined
	// send/recv engine). A resolved count of 1 — always the case on a
	// single-core GOMAXPROCS — keeps the paper's classic two-system-thread
	// path exactly. Sharding also requires a transport.FrameCarrier
	// endpoint and engages in real mode (no RecvCharge, ArrivalPollDelay,
	// or custom After hook) or under a VirtualTime discrete-event loop;
	// the classic sim harnesses' RecvCharge/poll machinery remains
	// scheduler-domain by construction and keeps the classic path.
	SendLanes int
	RecvLanes int
	// RebalanceInterval is the hot-lane rebalancer's scan period (sharded
	// mode only): every interval the proc compares per-lane load EWMAs and
	// migrates one idle-safe channel from the hottest lane to the coldest.
	// 0 selects DefaultRebalanceInterval; negative disables rebalancing
	// (channels stay on their hash- or pin-assigned lane forever).
	RebalanceInterval time.Duration
	// LaneHash overrides the default peer→lane placement hash (sharded
	// mode only): a channel with no explicit ChannelConfig.Lane lands on
	// lane LaneHash(peer) mod lane count. Benchmarks use it to reproduce
	// skewed placements; channels placed through it remain migratable by
	// the rebalancer (unlike explicit pins).
	LaneHash func(ProcID) int
	// Admission judges incoming signaled call setups (Proc.OpenCall at the
	// peer): nil admits everything. Rejections travel back to the caller
	// as typed causes; see AdmissionPolicy in signal.go.
	Admission AdmissionPolicy
	// SigIdleTimeout, when positive, arms an idle reaper on every signaled
	// channel: a channel that moves no traffic for a full period is closed
	// from this end — the survival path against a peer that crashed after
	// call setup. 0 disables (the default).
	SigIdleTimeout time.Duration
	// OnAccept, when set, runs in the scheduler domain for every incoming
	// signaled call this process admits, handing the application its end of
	// the channel (typically to TCreate a serving thread). The channel is
	// OPEN and the CONNECT already on its way when the hook runs.
	OnAccept func(*Channel)
	// AcceptQueue, when positive, bounds a listener-side queue of incoming
	// SETUPs served one per scheduler pass — backpressure instead of the
	// instant synchronous accept when the app is slow in OnAccept; a SETUP
	// arriving into a full queue is rejected with CauseBusy. 0 keeps the
	// synchronous accept path (the default).
	AcceptQueue int
	// Heartbeat configures the per-peer failure detector (failure.go):
	// every Interval the proc beats each peer it has channels to over the
	// channel-0 signaling band and, after Misses consecutive silent
	// intervals, declares the peer dead — force-closing every channel to it
	// and failing blocked senders, receivers, and collectives with the
	// typed *PeerDeadError. Interval 0 disables detection (the default).
	// All timers ride Config.After, so detection is deterministic under a
	// VirtualTime mesh.
	Heartbeat Heartbeat
}

// sendReq is one queued transfer for the send system thread.
type sendReq struct {
	m *transport.Message
	// ch is the channel the message travels on; nil for control traffic
	// and raw retransmissions, which bypass admission.
	ch *Channel
	// caller is parked until the send thread finishes the transfer; nil
	// for internally generated traffic (acks, retransmissions).
	caller *mts.Thread
	// raw skips flow/error processing: the message was already stamped
	// (a go-back-N retransmission must keep its original sequence).
	raw bool
	// ctrl marks a pooled control message that returns to the control
	// freelist once the endpoint has serialized it.
	ctrl bool
	// flowOK records that flow control already admitted this request (a
	// deferred request re-enqueued with its credit attached).
	flowOK bool
	// fan, when non-nil, marks one request of a fan-out send: the thread
	// parked once for the whole fan and wakes when every member request has
	// flushed (or failed), since the shared payload must stay stable until
	// the last copy is serialized.
	fan *Thread
	// done, when non-nil, is the sharded inline-send completion flag
	// (Thread.sendDone): the sender is still inside lane.send holding the
	// lane lock, so completion just sets the flag instead of waking anyone.
	// Mutually exclusive with caller (see lane.send).
	done *bool
}

// recvWaiter is a thread parked in Recv.
type recvWaiter struct {
	t          *Thread
	ch         ChannelID
	fromThread int
	fromProc   ProcID
	tag        int
	// multi, when non-nil, overrides (fromThread, fromProc): the waiter
	// matches a message from *any* address in the set. Collectives and the
	// out-of-order Gather/Reduce paths use it so one slow peer cannot
	// head-of-line-block payloads that already arrived.
	multi []Addr
	got   *transport.Message
	// err, when set by the failure sweep (failDeadWaiters), marks a waiter
	// whose pattern can only match dead peers: the woken receiver re-raises
	// it instead of reading got.
	err error
}

// Proc is one NCS process.
type Proc struct {
	cfg Config

	sendThread *mts.Thread
	recvThread *mts.Thread

	// sendQ and rxIn are per-priority head-indexed FIFO queues: the send
	// and receive system threads service higher-priority channels first,
	// with control traffic (credits, acks, retransmissions) above every
	// data level.
	sendQ prioQueue[*sendReq]
	rxIn  prioQueue[*transport.Message]

	// store holds delivered-but-unclaimed data messages.
	store   []*transport.Message
	waiters []*recvWaiter

	// reqFree, waiterFree, ctrlFree, and dataFree recycle the per-call
	// bookkeeping structs of the send/recv hot paths. All access happens in
	// the scheduler domain, so no locking is needed. dataFree recycles
	// sender-side data Message structs: every carrier serializes before
	// Send returns and both error-control disciplines buffer private
	// copies, so once flushRun has handed a data frame to the endpoint
	// nothing references the struct and it can carry the next Send.
	reqFree    []*sendReq
	waiterFree []*recvWaiter
	ctrlFree   []*transport.Message
	dataFree   []*transport.Message

	// sendRun and batchMsgs are the send loop's burst scratch: the
	// same-destination run under accumulation and the message vector
	// handed to a transport.BatchSender. Only the send system thread
	// touches them.
	sendRun   []*sendReq
	batchMsgs []*transport.Message

	// ctrlFlush is the resolved CtrlFlushDelay.
	ctrlFlush time.Duration

	// Classic-mode flush wheel: one timer covers every channel whose
	// piggyback window is running (sharded lanes each carry their own, see
	// lane.go). flushTimers counts armed flush timers process-wide in both
	// modes — the per-lane-wheel invariant a test asserts.
	flushQ      list.FIFO[*Channel]
	wheelOn     bool
	wheelFn     func()
	flushTimers atomic.Int64

	// Hot-lane rebalancer (sharded mode; see rebalance.go): rebalEvery is
	// the resolved RebalanceInterval (0 = disabled), rebalTick the tick
	// counter migration cooldowns compare against.
	rebalEvery time.Duration
	rebalTick  atomic.Int64

	// channels holds every open channel, keyed by (peer, channel ID).
	// Default channels (ID 0) are created lazily from the Config
	// templates; explicit channels come from Open. chanMu guards the map
	// in both modes (in sharded mode foreign goroutines resolve channels
	// in routeFrame); channel *state* is guarded by the owning lane's
	// mutex in sharded mode and by the scheduler domain classically.
	chanMu   sync.RWMutex
	channels map[chanKey]*Channel

	threads  []*Thread
	userLive int
	closing  atomic.Bool
	started  bool

	// Sharded hot path (lane.go); empty in the classic configuration.
	// laneDriver is the execution seam: goroutine engines in real mode,
	// vclock event callbacks in virtual mode.
	lanes      []*lane
	laneDriver engineDriver
	laneThread *mts.Thread
	laneStop   chan struct{}
	laneWG     sync.WaitGroup
	laneBS     transport.BatchSender
	shutdownFn func()

	// bars holds root-collected barrier state machines keyed by group
	// membership hash (see barrier.go); groupSeq numbers Groups for their
	// trace lanes (see coll.go).
	bars     map[uint32]*barrierState
	groupSeq int

	onException func(error)

	// Signaled-call state (scheduler domain; see signal.go): sigCalls holds
	// outstanding outgoing setups by call reference, sigRefSeq allocates
	// references.
	sigCalls  map[uint32]*sigCall
	sigRefSeq uint32

	// Failure domain (scheduler domain; see failure.go): hbPeers is the
	// detector's per-peer beat state, hbMisses the resolved miss budget,
	// deadPeers the peers declared dead (cleared by a fresh OpenCall or an
	// incoming SETUP from the peer). acceptQ/acceptOn are the bounded
	// listener-side SETUP queue (Config.AcceptQueue).
	hbPeers   map[ProcID]*hbPeer
	hbMisses  int
	deadPeers map[ProcID]*PeerDeadError
	acceptQ   []pendingSetup
	acceptOn  bool

	// Stats. Atomic: in sharded mode the stats-reading side (tests,
	// benchmarks) races lane engines updating channel counters, and these
	// proc-wide totals are read the same way.
	sent, received atomic.Int64

	// Lifecycle balance counters (signal.go): paired ledgers that must
	// match at quiesce — the churn scenarios' zero-leak assertion — plus
	// the setup funnel. Atomic for the same reason as above.
	statOpened, statClosed               atomic.Int64
	statSetupsSent, statSetupsAccepted   atomic.Int64
	statSetupsRejected, statSetupRetries atomic.Int64
	statVCBound, statVCRel               atomic.Int64
	statTimersArmed, statTimersFired     atomic.Int64
	statRingPush, statRingDrain          atomic.Int64
	statLateCtrl                         atomic.Int64
}

// New builds an NCS process: the paper's NCS_init. System threads (send,
// receive, and whatever the flow/error controllers need) are created
// immediately at the highest priority.
func New(cfg Config) *Proc {
	if cfg.Endpoint.Proc() != cfg.ID {
		panic(fmt.Sprintf("core: id %d != endpoint proc %d", cfg.ID, cfg.Endpoint.Proc()))
	}
	if cfg.Compute == nil {
		cfg.Compute = work.Real()
	}
	customAfter := cfg.After != nil
	if cfg.VirtualTime && !customAfter {
		panic("core: VirtualTime requires Config.After (the engine's virtual timer)")
	}
	if cfg.After == nil {
		cfg.After = cfg.RT.After
	}
	p := &Proc{cfg: cfg}
	if cfg.VirtualTime {
		// Virtual-time runs assert exact timer balance at quiesce
		// (Proc.Leaks): wrap the injected timer so every arm and fire is
		// counted. Real mode skips the wrap — the closure costs
		// allocations the alloc-pinned hot paths cannot afford, and
		// wall-clock timers legitimately outlive a sampling instant.
		base := p.cfg.After
		p.cfg.After = func(d time.Duration, fn func()) {
			p.statTimersArmed.Add(1)
			base(d, func() {
				p.statTimersFired.Add(1)
				fn()
			})
		}
	}
	p.ctrlFlush = cfg.CtrlFlushDelay
	if p.ctrlFlush == 0 {
		p.ctrlFlush = DefaultCtrlFlushDelay
	}
	p.wheelFn = p.wheelFire
	p.rebalEvery = cfg.RebalanceInterval
	if p.rebalEvery == 0 {
		p.rebalEvery = DefaultRebalanceInterval
	} else if p.rebalEvery < 0 {
		p.rebalEvery = 0
	}
	p.channels = make(map[chanKey]*Channel)
	p.onException = func(err error) {
		// Wrap rather than format: a recovering thread (chaos harnesses,
		// redial loops) can still errors.As the typed cause — e.g.
		// *PeerDeadError — out of the panic value.
		panic(fmt.Errorf("core(proc %d): unhandled exception: %w", cfg.ID, err))
	}

	// Sharded mode engages only when it can be transparent: more than one
	// resolved lane, a frame-capable carrier, and none of the hooks that
	// assume all protocol work happens in the scheduler domain (receive
	// charging, arrival polls). A custom After hook normally means a
	// classic sim harness and keeps the two-thread path, unless the harness
	// declares VirtualTime — then the lanes themselves run as events on
	// that timer (see engineDriver in lane.go).
	lanes := resolveLanes(cfg.SendLanes)
	if r := resolveLanes(cfg.RecvLanes); r > lanes {
		lanes = r
	}
	fc, frames := cfg.Endpoint.(transport.FrameCarrier)
	if lanes > 1 && frames && cfg.RecvCharge == nil && cfg.ArrivalPollDelay == nil && (!customAfter || cfg.VirtualTime) {
		p.initLanes(lanes, fc)
		p.startRebalance()
		p.startHeartbeat()
		return p
	}

	cfg.Endpoint.SetHandler(p.deliver)
	p.sendThread = cfg.RT.Create(fmt.Sprintf("ncs%d-send", cfg.ID), mts.PrioSystem, p.sendLoop)
	p.recvThread = cfg.RT.Create(fmt.Sprintf("ncs%d-recv", cfg.ID), mts.PrioSystem, p.recvLoop)
	p.startHeartbeat()
	return p
}

// resolveLanes maps a Config lane count to an effective one: 0 defaults to
// min(GOMAXPROCS, 4), anything else clamps to at least 1.
func resolveLanes(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 4 {
			n = 4
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ID returns the process identity.
func (p *Proc) ID() ProcID { return p.cfg.ID }

// RT returns the process runtime.
func (p *Proc) RT() *mts.Runtime { return p.cfg.RT }

// Sent returns the number of user messages sent.
func (p *Proc) Sent() int64 { return p.sent.Load() }

// Received returns the number of user messages consumed.
func (p *Proc) Received() int64 { return p.received.Load() }

// OnException installs the process's exception handler (paper §3.1,
// "Exception Handling"). The default panics.
func (p *Proc) OnException(fn func(error)) { p.onException = fn }

func (p *Proc) exception(err error) { p.onException(err) }

// Thread is one NCS user thread: the handle the application body receives.
type Thread struct {
	proc *Proc
	idx  int
	mt   *mts.Thread
	// blockPermit banks an Unblock that raced ahead of the Block it was
	// meant to release, so NCS_block/NCS_unblock pairs cannot lose a
	// wakeup regardless of scheduling order.
	blockPermit bool
	// fanLeft counts this thread's in-flight fan-out requests (coll.go's
	// fanSend); the thread parks until the send loop retires the last one.
	fanLeft int
	// sendDone is the sharded inline-send completion flag (lane.send): a
	// thread has at most one outstanding send, so one reusable field
	// avoids a per-send heap escape. Written only under the lane lock.
	sendDone bool
}

// Idx returns the thread's NCS index within its process (the paper's
// THREAD0/THREAD1 numbering).
func (t *Thread) Idx() int { return t.idx }

// Proc returns the owning process.
func (t *Thread) Proc() *Proc { return t.proc }

// MT returns the underlying scheduler thread.
func (t *Thread) MT() *mts.Thread { return t.mt }

// TCreate registers a user compute thread: the paper's NCS_t_create. It may
// be called before Start or from a running thread.
func (p *Proc) TCreate(name string, prio int, body func(*Thread)) *Thread {
	t := &Thread{proc: p, idx: len(p.threads)}
	p.threads = append(p.threads, t)
	p.userLive++
	t.mt = p.cfg.RT.Create(name, prio, func(mt *mts.Thread) {
		p.traceThread(t, trace.Compute)
		body(t)
		p.traceThread(t, trace.Idle)
		p.traceClose(t)
		p.userDone()
	})
	return t
}

// Threads returns the user threads in creation order.
func (p *Proc) Threads() []*Thread { return p.threads }

// Start runs the process's runtime until all user threads finish: the
// paper's NCS_start. Only for real-time transports — simulation harnesses
// drive all processes through the engine instead.
func (p *Proc) Start() {
	p.started = true
	p.cfg.RT.Run()
}

// userDone runs when a user thread body returns; the last one shuts the
// system threads down so the runtime (or simulation) can terminate.
func (p *Proc) userDone() {
	p.userLive--
	if p.userLive > 0 {
		return
	}
	p.closing.Store(true)
	if p.sharded() {
		for _, c := range p.channelsOrdered() {
			ln := c.lockLane()
			c.flushCtrl()
			c.flow.shutdown()
			c.errc.shutdown()
			ln.serviceLocked()
			ln.mu.Unlock()
			ln.runDrain()
		}
		p.wakeIfIdle(p.laneThread, "lanes idle")
		return
	}
	for _, c := range p.channelsOrdered() {
		// Control still waiting for a piggyback ride must leave before
		// the system threads may exit: the peer's sender role may be
		// blocked on exactly this credit or ack, and the flush timer may
		// never fire once the runtime winds down.
		c.flushCtrl()
		c.flow.shutdown()
		c.errc.shutdown()
	}
	// Wake the system threads only if they are parked at their idle
	// points; a thread parked mid-transfer (wire drain, flow credit) will
	// notice closing when it next returns to its idle check.
	p.wakeIfIdle(p.sendThread, "send idle")
	p.wakeIfIdle(p.recvThread, "recv idle")
}

// postScheduler defers fn into the scheduler domain from a context that may
// hold a lane lock. In real mode that is Runtime.PostAsync (runs between
// dispatches); under a virtual-time loop nothing ever drains the PostAsync
// queue — the sim engine only Dispatches — so fn becomes a zero-delay clock
// event instead.
func (p *Proc) postScheduler(fn func()) {
	if p.cfg.VirtualTime {
		p.cfg.After(0, fn)
		return
	}
	p.cfg.RT.PostAsync(fn)
}

// channelsOrdered snapshots the channel table in (peer, id) order. Shutdown
// walks channels through state-changing steps (flushCtrl, discipline
// shutdown) whose relative order decides when each channel's last frames hit
// the wire; iterating the map directly would make that order — and with it
// the virtual-time timeline — depend on Go's randomized map iteration.
func (p *Proc) channelsOrdered() []*Channel {
	p.chanMu.RLock()
	chans := make([]*Channel, 0, len(p.channels))
	for _, c := range p.channels {
		chans = append(chans, c)
	}
	p.chanMu.RUnlock()
	sort.Slice(chans, func(i, j int) bool {
		if chans[i].peer != chans[j].peer {
			return chans[i].peer < chans[j].peer
		}
		return chans[i].id < chans[j].id
	})
	return chans
}

func (p *Proc) wakeIfIdle(t *mts.Thread, idleReason string) {
	if t.State() == mts.StateBlocked && t.BlockReason() == idleReason {
		p.cfg.RT.Unblock(t, false)
	}
}

// mayShutdown reports whether system threads are free to exit: user threads
// are done and no channel's error control has anything awaiting
// acknowledgement.
func (p *Proc) mayShutdown() bool {
	if !p.closing.Load() {
		return false
	}
	for _, c := range p.channels {
		if c.errc.pending() != 0 {
			return false
		}
	}
	return true
}

// checkShutdownWake nudges the system threads toward exit once the last
// in-flight acknowledgement lands (or is abandoned) after the user threads
// have already finished.
func (p *Proc) checkShutdownWake() {
	if p.sharded() {
		// May run under a lane lock (an engine processing the last ack);
		// the shutdown predicate itself takes lane locks, so evaluate it
		// from the scheduler domain instead.
		if p.closing.Load() {
			p.postScheduler(p.shutdownFn)
		}
		return
	}
	if !p.mayShutdown() {
		return
	}
	p.wakeIfIdle(p.sendThread, "send idle")
	p.wakeIfIdle(p.recvThread, "recv idle")
}

func (p *Proc) traceThread(t *Thread, s trace.State) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Set(fmt.Sprintf("%s/t%d", p.cfg.TraceName, t.idx), s)
	}
}

func (p *Proc) traceClose(t *Thread) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Close(fmt.Sprintf("%s/t%d", p.cfg.TraceName, t.idx))
	}
}

func (p *Proc) traceSys(name string, s trace.State) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Set(p.cfg.TraceName+"/"+name, s)
	}
}

// ---------------------------------------------------------------------------
// Sending

// Send transmits data to (toProc, toThread): the paper's NCS_send. It wakes
// the send system thread and parks the calling thread until the transfer is
// handed to the network; meanwhile other threads of this process run — the
// overlap mechanism of Figure 4.
func (t *Thread) Send(toThread int, toProc ProcID, data []byte) {
	t.SendTagged(0, toThread, toProc, data)
}

// SendTagged is Send with a user message tag (>= 0); an extension beyond
// the paper's primitives for library completeness. It travels on the
// default channel toward toProc.
func (t *Thread) SendTagged(tag int, toThread int, toProc ProcID, data []byte) {
	if tag < 0 {
		panic("core: negative tags are reserved")
	}
	p := t.proc
	c := p.DefaultChannel(toProc)
	if c.lnp.Load() != nil {
		c.laneSend(t, tag, toThread, data)
		return
	}
	m := p.getDataMsg()
	m.From = p.cfg.ID
	m.To = toProc
	m.FromThread = t.idx
	m.ToThread = toThread
	m.Tag = tag
	m.Data = data
	p.sendOn(c, t, m)
}

// getReq draws a sendReq from the freelist (or allocates); putReq returns
// one once the send loop has finished with it. Deferred requests (owned by
// a flow/error controller awaiting re-enqueue) are recycled only after
// they finally transmit.
func (p *Proc) getReq() *sendReq {
	if n := len(p.reqFree); n > 0 {
		req := p.reqFree[n-1]
		p.reqFree = p.reqFree[:n-1]
		return req
	}
	return &sendReq{}
}

func (p *Proc) putReq(req *sendReq) {
	*req = sendReq{}
	p.reqFree = append(p.reqFree, req)
}

// failSend completes a gated send without transmitting it: the request is
// recycled and its caller (a thread parked in Send) unblocks. Disciplines
// use it at shutdown so a channel closing with deferred requests never
// leaves a Send hung forever; the caller cannot observe the failure
// directly (Send returns no error), so the failure is reported through
// the proc's exception handler.
func (p *Proc) failSend(req *sendReq) {
	caller, fan := req.caller, req.fan
	if !req.ctrl && req.m != nil {
		p.putDataMsg(req.m)
	}
	p.putReq(req)
	if caller != nil {
		p.cfg.RT.Unblock(caller, false)
	}
	if fan != nil {
		p.fanDone(fan)
	}
}

// failGated fails a batch of gated sends at channel teardown and reports
// them once through the exception handler — the shared tail of every
// discipline's shutdown.
func (p *Proc) failGated(c *Channel, reqs []*sendReq, gate string) {
	if len(reqs) == 0 {
		return
	}
	if ln := c.lnp.Load(); ln != nil {
		// Lane domain: recycle under the held lane lock, defer wakeups and
		// the exception to the drain.
		for _, req := range reqs {
			ln.failSendLocked(req)
		}
		if c.deadErr != nil {
			ln.errs = append(ln.errs, fmt.Errorf("core: channel %d to proc %d closed with %d sends still gated by %s: %w", c.id, c.peer, len(reqs), gate, c.deadErr))
		} else {
			ln.errs = append(ln.errs, fmt.Errorf("core: channel %d to proc %d closed with %d sends still gated by %s", c.id, c.peer, len(reqs), gate))
		}
		return
	}
	for _, req := range reqs {
		p.failSend(req)
	}
	if c.deadErr != nil {
		p.exception(fmt.Errorf("core: channel %d to proc %d closed with %d sends still gated by %s: %w", c.id, c.peer, len(reqs), gate, c.deadErr))
		return
	}
	p.exception(fmt.Errorf("core: channel %d to proc %d closed with %d sends still gated by %s", c.id, c.peer, len(reqs), gate))
}

// enqueueSend queues a request under its channel's priority level and wakes
// the send thread if it is parked at its idle point. If it is instead
// parked mid-transfer (wire drain, flow credit, a charged CPU burst), it
// will find the queue when it loops — a targeted wake there would corrupt
// whatever it is blocked on. Safe from any scheduler-domain context
// (threads, event handlers, timers). Control traffic (credits, acks,
// barrier messages) drains above every data priority: it is what reopens
// stalled windows, so no amount of queued bulk data may starve it. Raw
// retransmissions, though they bypass admission, carry full data payloads
// and drain at their own channel's priority — a lossy bulk channel's
// go-back-N bursts must not preempt a high-priority stream. They cannot
// starve behind gated data either: admission never blocks this queue (a
// non-admitted request is deferred, not waited on).
func (p *Proc) enqueueSend(req *sendReq) {
	level := ctrlLevel
	if req.m.Tag >= 0 && req.ch != nil {
		level = req.ch.priority
	}
	if req.ch != nil {
		if ln := req.ch.lnp.Load(); ln != nil {
			// Sharded: the caller (a discipline releasing a deferred
			// request, a retransmission timer) already holds the channel's
			// lane lock; the request joins the lane's queue and is serviced
			// by whoever completes the current lane entry (see lane.go).
			ln.pending.push(level, req)
			return
		}
	}
	p.sendQ.push(level, req)
	p.wakeIfIdle(p.sendThread, "send idle")
}

// sendCtrl queues a pooled control message: tag < 0, an optional uint32
// payload, addressed to the given peer and channel. The message and its
// 4-byte payload buffer recycle once the endpoint has serialized them, so
// a steady stream of credits/acks allocates nothing. Flow- and error-
// control payloads are *cumulative* counters (credit advertisements,
// cumulative acks) compared wrap-safely with wire.SeqNewer at the
// receiver, so those control frames survive lossy carriers: any later
// frame supersedes a dropped one.
func (p *Proc) sendCtrl(to ProcID, ch ChannelID, tag int, payload uint32, withPayload bool) {
	m := p.getCtrlMsg()
	m.From = p.cfg.ID
	m.To = to
	m.Channel = ch
	m.Tag = tag
	if withPayload {
		m.Data = wire.AppendUint32(m.Data[:0], payload)
	}
	req := p.getReq()
	req.m = m
	req.ctrl = true
	p.enqueueSend(req)
}

// sendCtrlVec is sendCtrl with a multi-word payload: one control frame
// carries a whole batch of queued acknowledgements (4 bytes each) — the
// flush path's framing for selective-repeat ack bursts. Consumers iterate
// the words with forEachCtrlWord.
func (p *Proc) sendCtrlVec(to ProcID, ch ChannelID, tag int, words []uint32) {
	if p.sharded() {
		// Scheduler-domain control toward a peer (barrier arrivals and
		// releases): route through the peer's default-channel lane.
		ln := p.DefaultChannel(to).lockLane()
		m := ln.getCtrlMsg()
		m.From = p.cfg.ID
		m.To = to
		m.Channel = ch
		m.Tag = tag
		for _, w := range words {
			m.Data = wire.AppendUint32(m.Data, w)
		}
		req := ln.getReq()
		req.m = m
		req.ctrl = true
		ln.pending.push(ctrlLevel, req)
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
		return
	}
	m := p.getCtrlMsg()
	m.From = p.cfg.ID
	m.To = to
	m.Channel = ch
	m.Tag = tag
	for _, w := range words {
		m.Data = wire.AppendUint32(m.Data, w)
	}
	req := p.getReq()
	req.m = m
	req.ctrl = true
	p.enqueueSend(req)
}

// getCtrlMsg draws a control message from the freelist; its Data buffer is
// reset to zero length but keeps its backing array.
func (p *Proc) getCtrlMsg() *transport.Message {
	if n := len(p.ctrlFree); n > 0 {
		m := p.ctrlFree[n-1]
		p.ctrlFree = p.ctrlFree[:n-1]
		return m
	}
	return &transport.Message{Data: make([]byte, 0, 8)}
}

func (p *Proc) putCtrlMsg(m *transport.Message) {
	data := m.Data[:0]
	*m = transport.Message{Data: data}
	p.ctrlFree = append(p.ctrlFree, m)
}

// getDataMsg draws a sender-side data message from the freelist. Unlike
// control messages its Data field aliases the caller's payload, so put
// clears it entirely (pinning nothing between sends).
func (p *Proc) getDataMsg() *transport.Message {
	if n := len(p.dataFree); n > 0 {
		m := p.dataFree[n-1]
		p.dataFree = p.dataFree[:n-1]
		return m
	}
	return &transport.Message{}
}

func (p *Proc) putDataMsg(m *transport.Message) {
	*m = transport.Message{}
	p.dataFree = append(p.dataFree, m)
}

// maxSendBurst bounds one same-destination run handed to a carrier's
// batch path, so a saturating bulk stream cannot delay its own callers'
// wakeups (or a priority preemption point) indefinitely.
const maxSendBurst = 64

// sendLoop is the send system thread (Figure 8's "S"). It drains the
// priority queue highest level first — control traffic, then channels in
// descending priority order — a whole burst per wakeup: admitted requests
// accumulate into same-destination runs that go to the carrier through
// transport.BatchSender in one call when it offers batching, so
// per-message carrier costs (locks, wakeups, syscalls) amortize across
// the burst.
func (p *Proc) sendLoop(st *mts.Thread) {
	bs, batched := p.cfg.Endpoint.(transport.BatchSender)
	for {
		if p.sendQ.empty() {
			if p.mayShutdown() {
				p.traceSysClose("send")
				return
			}
			p.traceSys("send", trace.Idle)
			st.Park("send idle")
			continue
		}
		p.traceSys("send", trace.Comm)
		run := p.sendRun[:0]
		for !p.sendQ.empty() {
			req := p.sendQ.pop()
			// Data messages pass their channel's flow-control and
			// error-control admission; a controller that cannot admit now
			// takes ownership of the request and re-enqueues it later, so
			// this loop never blocks on data while control traffic
			// (credits, acks, retransmissions — raw requests bypass
			// admission) is waiting behind it.
			if req.m.Tag >= 0 && !req.raw {
				if req.ch.sendUnavailable() {
					// The channel closed while this request sat queued
					// (Send raced Close): fail it exactly like shutdown
					// failed the already-deferred ones, before any
					// discipline can admit it into a torn-down window.
					// Read the channel before failSend recycles the
					// request.
					c := req.ch
					p.failSend(req)
					p.exception(c.sendFailErr())
					continue
				}
				if !req.flowOK {
					if !req.ch.flow.admit(req) {
						continue
					}
					req.flowOK = true
				}
				if !req.ch.errc.admit(req) {
					continue
				}
			}
			// Reverse-direction control rides along: a departing data
			// frame (first transmission or retransmission alike) picks up
			// its channel's pending credit advertisement and ack.
			if req.m.Tag >= 0 && req.ch != nil {
				req.ch.attachPiggy(req.m)
			}
			if len(run) > 0 && (req.m.To != run[len(run)-1].m.To || len(run) >= maxSendBurst) {
				run = p.flushRun(st, bs, run)
			}
			run = append(run, req)
			if !batched {
				run = p.flushRun(st, bs, run)
			}
		}
		p.sendRun = p.flushRun(st, bs, run)
	}
}

// flushRun hands one same-destination run to the carrier — a single
// SendBatch call when it offers batching — then completes the requests:
// channel counters, caller wakeups, freelist recycling. It returns the
// emptied run slice for reuse.
func (p *Proc) flushRun(st *mts.Thread, bs transport.BatchSender, run []*sendReq) []*sendReq {
	if len(run) == 0 {
		return run
	}
	if p.cfg.Tracer != nil {
		for _, req := range run {
			p.traceChan(req.ch, trace.Comm)
		}
	}
	if bs != nil && len(run) > 1 {
		ms := p.batchMsgs[:0]
		for _, req := range run {
			ms = append(ms, req.m)
		}
		bs.SendBatch(st, ms)
		for i := range ms {
			ms[i] = nil
		}
		p.batchMsgs = ms[:0]
	} else {
		for _, req := range run {
			p.cfg.Endpoint.Send(st, req.m)
		}
	}
	for i, req := range run {
		if req.ch != nil && !req.raw {
			req.ch.sent.Add(1)
			req.ch.bytesSent.Add(int64(len(req.m.Data)))
		}
		p.traceChan(req.ch, trace.Idle)
		if req.caller != nil {
			p.cfg.RT.Unblock(req.caller, false)
		}
		if req.fan != nil {
			p.fanDone(req.fan)
		}
		// The transfer is on the wire and the caller woken: nothing
		// references the request anymore, so it (and its pooled message —
		// the endpoint serialized it, and the error-control disciplines
		// buffer private copies for retransmission) returns to the
		// freelist.
		if req.ctrl {
			p.putCtrlMsg(req.m)
		} else {
			p.putDataMsg(req.m)
		}
		p.putReq(req)
		run[i] = nil
	}
	return run[:0]
}

// fanDone retires one request of a fan-out send (coll.go's fanSend): the
// owning thread parks once for the whole fan and wakes when the last
// request has been handed to the carrier — or failed at teardown.
func (p *Proc) fanDone(t *Thread) {
	t.fanLeft--
	if t.fanLeft == 0 {
		p.cfg.RT.Unblock(t.mt, false)
	}
}

// traceChan records a channel-lane state change (no-op without a Tracer):
// each channel gets its own timeline next to the system threads', so a
// traced run shows which class was on the wire when.
func (p *Proc) traceChan(c *Channel, s trace.State) {
	if c == nil || p.cfg.Tracer == nil {
		return
	}
	p.cfg.Tracer.Set(c.lane, s)
}

func (p *Proc) traceSysClose(name string) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Close(p.cfg.TraceName + "/" + name)
	}
}

// ---------------------------------------------------------------------------
// Receiving

// Recv receives the next message addressed to this thread and matching
// (fromThread, fromProc), either of which may be Any: the paper's NCS_recv.
// Only the calling thread blocks. It returns the payload and the actual
// source address.
func (t *Thread) Recv(fromThread int, fromProc ProcID) ([]byte, Addr) {
	return t.RecvTagged(Any, fromThread, fromProc)
}

// RecvTagged is Recv constrained to a user tag (or Any).
func (t *Thread) RecvTagged(tag int, fromThread int, fromProc ProcID) ([]byte, Addr) {
	data, addr, _ := t.recvTagOut(tag, fromThread, fromProc)
	return data, addr
}

// RecvInto is Recv delivering into the caller's buffer — the shape of the
// paper's actual NCS_recv(thread, process, buffer) call. It blocks like
// Recv, copies the payload into buf (panicking if buf is too small — the
// caller declared its capacity, exactly as in the C API), and returns the
// payload length and source. Because the payload is copied out, the
// message's pooled frame recycles into the wire pool, so a steady-state
// RecvInto loop over a pooled carrier (Mem, real TCP, UDP/ATM) allocates
// nothing — the allocation-free receive the host-overhead argument wants.
func (t *Thread) RecvInto(buf []byte, fromThread int, fromProc ProcID) (int, Addr) {
	return t.recvIntoOn(buf, 0, Any, fromThread, fromProc)
}

// TryRecv is the non-blocking probe-and-receive variant; ok is false when
// no matching message is queued. It probes the default channel.
func (t *Thread) TryRecv(fromThread int, fromProc ProcID) (data []byte, from Addr, ok bool) {
	return t.tryRecvOn(0, fromThread, fromProc)
}

func (t *Thread) tryRecvOn(ch ChannelID, fromThread int, fromProc ProcID) (data []byte, from Addr, ok bool) {
	p := t.proc
	i := p.matchStore(ch, Any, fromThread, fromProc, t.idx)
	if i < 0 {
		return nil, Addr{}, false
	}
	m := p.store[i]
	p.store = append(p.store[:i], p.store[i+1:]...)
	p.consume(t.mt, m)
	p.received.Add(1)
	return m.Data, Addr{Proc: m.From, Thread: m.FromThread}, true
}

// MessagesAvailable reports whether a Recv with the given match would
// complete immediately on the default channel.
func (t *Thread) MessagesAvailable(fromThread int, fromProc ProcID) bool {
	return t.proc.matchStore(0, Any, fromThread, fromProc, t.idx) >= 0
}

// consume charges the host-side receive cost (stack-to-application copy) in
// the context of the consuming scheduler thread.
func (p *Proc) consume(mt *mts.Thread, m *transport.Message) {
	if p.cfg.RecvCharge != nil {
		p.cfg.RecvCharge(mt, len(m.Data)+transport.HeaderSize)
	}
}

func (p *Proc) matchStore(ch ChannelID, tag, fromThread int, fromProc ProcID, toThread int) int {
	for i, m := range p.store {
		if p.matches(m, ch, tag, fromThread, fromProc, toThread) {
			return i
		}
	}
	return -1
}

// matches tests a receive pattern. Channel matching is exact: default
// Recv sees only default-channel traffic, and a Channel.Recv sees only its
// own — the isolation that lets two disciplines coexist on one pair.
func (p *Proc) matches(m *transport.Message, ch ChannelID, tag, fromThread int, fromProc ProcID, toThread int) bool {
	if m.Channel != ch {
		return false
	}
	if m.ToThread != toThread {
		return false
	}
	if tag != Any && m.Tag != tag {
		return false
	}
	if fromThread != Any && m.FromThread != fromThread {
		return false
	}
	if fromProc != ProcID(Any) && m.From != fromProc {
		return false
	}
	return true
}

// rxLevel places an arriving message in the receive priority queue:
// control above all data, data under its channel's priority (an unopened
// channel files at the bottom; recvLoop raises the exception).
func (p *Proc) rxLevel(m *transport.Message) int {
	if m.Tag < 0 {
		return ctrlLevel
	}
	p.chanMu.RLock()
	c, ok := p.channels[chanKey{peer: m.From, id: m.Channel}]
	p.chanMu.RUnlock()
	if ok {
		return c.priority
	}
	return 0
}

// deliver is the transport handler: it queues the raw message for the
// receive system thread and wakes it (Figure 8's "R").
func (p *Proc) deliver(m *transport.Message) {
	p.rxIn.push(p.rxLevel(m), m)
	if p.cfg.ArrivalPollDelay != nil {
		if d := p.cfg.ArrivalPollDelay(); d > 0 {
			// Poll-discovered arrival: wake the receive thread when the
			// underlying p4 poll would notice it. An earlier wake (a
			// later arrival during compute, or a natural switch) finds
			// this message too — polls inspect the whole queue.
			p.cfg.After(d, func() { p.wakeIfIdle(p.recvThread, "recv idle") })
			return
		}
	}
	p.wakeIfIdle(p.recvThread, "recv idle")
}

// recvLoop is the receive system thread: it demultiplexes arrivals by
// channel into control handling, parked waiters, or the message store,
// draining higher-priority channels first.
func (p *Proc) recvLoop(rt *mts.Thread) {
	for {
		if p.rxIn.empty() {
			if p.mayShutdown() {
				p.traceSysClose("recv")
				return
			}
			p.traceSys("recv", trace.Idle)
			rt.Park("recv idle")
			continue
		}
		m := p.rxIn.pop()
		p.traceSys("recv", trace.Comm)

		// Control traffic is consumed by the channel it belongs to; its
		// payload is read on the spot, so a pooled frame recycles
		// immediately — steady credit/ack streams allocate no rx buffers.
		if m.Tag < 0 {
			p.handleControl(m)
			m.Release()
			continue
		}
		c, ok := p.lookupChannel(m.From, m.Channel)
		if !ok {
			p.exception(fmt.Errorf("data on unopened channel %d from proc %d", m.Channel, m.From))
			m.Release()
			continue
		}
		// Piggybacked control applies before anything else: it is the
		// peer's receiver-role state for this channel and stays valid
		// whether this data copy turns out fresh, duplicate, or addressed
		// to a closed channel (standalone control on closed channels is
		// consumed too, and both words are supersede-safe). A sharded peer
		// may have coalesced a *sibling* channel's word onto this frame;
		// the word's stamped channel routes it.
		if m.HasCredit {
			cc := c
			if m.CreditChan != m.Channel {
				cc, _ = p.lookupChannel(m.From, m.CreditChan)
			}
			if cc != nil {
				cc.flow.onCredit(m.Credit)
			}
		}
		if m.HasAck {
			ca := c
			if m.AckChan != m.Channel {
				ca, _ = p.lookupChannel(m.From, m.AckChan)
			}
			if ca != nil {
				ca.errc.onAck(m.Ack)
			}
		}
		if c.closed {
			// This end tore the channel down; without teardown signaling
			// the peer may still be transmitting. Drop, and let its error
			// control give up as against a dead process.
			p.exception(fmt.Errorf("data on closed channel %d from proc %d", m.Channel, m.From))
			m.Release()
			continue
		}
		// Error control may suppress duplicates / out-of-order arrivals.
		if !c.errc.onData(m) {
			continue
		}
		c.received.Add(1)
		c.bytesReceived.Add(int64(len(m.Data)))
		// Flow control acknowledges the delivery (credit return).
		c.flow.onDelivered(m)
		p.dispatchData(rt, m)
	}
}

// waiterMatches tests an arriving message against a parked waiter's
// pattern: the usual single-source pattern, or the any-of set used by
// out-of-order collection.
func (p *Proc) waiterMatches(w *recvWaiter, m *transport.Message) bool {
	if w.multi == nil {
		return p.matches(m, w.ch, w.tag, w.fromThread, w.fromProc, w.t.idx)
	}
	if m.Channel != w.ch || m.ToThread != w.t.idx {
		return false
	}
	if w.tag != Any && m.Tag != w.tag {
		return false
	}
	return addrIndex(w.multi, m) >= 0
}

// addrIndex returns the first index in set matching the message's source
// address (Any wildcards an entry's thread), or -1.
func addrIndex(set []Addr, m *transport.Message) int {
	for i, a := range set {
		if a.Proc == m.From && (a.Thread == Any || a.Thread == m.FromThread) {
			return i
		}
	}
	return -1
}

// dispatchData hands a data message to a parked waiter or stores it.
func (p *Proc) dispatchData(rt *mts.Thread, m *transport.Message) {
	for i, w := range p.waiters {
		if p.waiterMatches(w, m) {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			// The receive thread performs the stack-to-app copy in its
			// own context, then wakes the compute thread.
			p.consume(rt, m)
			w.got = m
			p.cfg.RT.Unblock(w.t.mt, false)
			return
		}
	}
	p.store = append(p.store, m)
}

func (p *Proc) handleControl(m *transport.Message) {
	switch m.Tag {
	case tagFlowAck, tagGBNAck:
		// A closed channel stays in the table and still consumes control:
		// error control needs late acks to finish draining its in-flight
		// window, and cumulative credit advertisements are idempotent. A
		// channel nobody has open is almost always one a signaled close
		// just finalized out of the table — drop the late word and count.
		c, ok := p.lookupChannel(m.From, m.Channel)
		if !ok {
			p.statLateCtrl.Add(1)
			return
		}
		if m.Tag == tagFlowAck {
			c.flow.onControl(m)
		} else {
			c.errc.onControl(m)
		}
	case tagBarrier, tagBarrierRel:
		p.onBarrierMsg(m)
	case tagSigSetup, tagSigConnect, tagSigReject, tagSigRelease, tagSigRelComp, tagSigBeat:
		p.onSigMsg(m)
	default:
		p.exception(fmt.Errorf("unknown control tag %d from proc %d", m.Tag, m.From))
	}
}

// ---------------------------------------------------------------------------
// Thread utilities

// Compute runs application work through the mode hook, tracing it as
// computation.
func (t *Thread) Compute(cost time.Duration, fn func()) {
	t.proc.traceThread(t, trace.Compute)
	t.proc.cfg.Compute(t.mt, cost, fn)
}

// Yield is the paper's voluntary context switch.
func (t *Thread) Yield() { t.mt.Yield() }

// Block parks the thread until another thread calls Unblock: the paper's
// NCS_block (used by the JPEG host, Figure 17). An Unblock that already
// happened is consumed immediately instead of being lost.
func (t *Thread) Block() {
	if t.blockPermit {
		t.blockPermit = false
		return
	}
	t.proc.traceThread(t, trace.Idle)
	t.mt.Park("ncs block")
	t.proc.traceThread(t, trace.Compute)
}

// Unblock wakes a thread parked in Block, or banks a permit if it has not
// blocked yet: the paper's NCS_unblock.
func (t *Thread) Unblock(other *Thread) {
	if other.mt.State() == mts.StateBlocked && other.mt.BlockReason() == "ncs block" {
		t.proc.cfg.RT.Unblock(other.mt, false)
		return
	}
	other.blockPermit = true
}

// Bcast sends data to every address in list: the paper's NCS_bcast
// (1-to-many group communication). Transfers are queued in list order
// through the send system thread. This is the linear O(N) path — the
// sender serializes one copy per destination; Group.Bcast is the
// logarithmic tree alternative (and degenerates to this shape at
// Fanout >= N, which is how the scale benches A/B the two).
func (t *Thread) Bcast(list []Addr, data []byte) {
	for _, a := range list {
		t.Send(a.Thread, a.Proc, data)
	}
}

// Gather receives one message from every address in list (many-to-1),
// returning payloads in list order. Arrivals complete out of order: a slow
// peer delays only its own slot, never payloads already delivered (each
// source's messages still fill its list slots in per-pair FIFO order).
// Group.Gather is the tree-structured alternative for large N.
func (t *Thread) Gather(list []Addr) [][]byte {
	out := make([][]byte, len(list))
	pending := append([]Addr(nil), list...)
	slot := make([]int, len(list))
	for i := range slot {
		slot[i] = i
	}
	for len(pending) > 0 {
		m, i := t.recvAnyOf(0, Any, pending)
		out[slot[i]] = m.Data
		pending = append(pending[:i], pending[i+1:]...)
		slot = append(slot[:i], slot[i+1:]...)
	}
	return out
}
