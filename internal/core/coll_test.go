package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// collGroup builds the standard one-thread-per-proc member list.
func collGroup(n int) []Addr {
	members := make([]Addr, n)
	for i := range members {
		members[i] = Addr{Proc: ProcID(i), Thread: 0}
	}
	return members
}

// TestGroupBcastShapes runs the tree broadcast across member counts
// (power-of-two and not), fanouts (binomial, ternary, linear), and every
// root, verifying every member sees the root's payload.
func TestGroupBcastShapes(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		for _, fanout := range []int{0, 3, 64} {
			n, fanout := n, fanout
			t.Run(fmt.Sprintf("n=%d/fanout=%d", n, fanout), func(t *testing.T) {
				eng, procs := simCluster(t, n, nil)
				members := collGroup(n)
				got := make([][]string, n)
				for i := 0; i < n; i++ {
					i := i
					procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
						g := procs[i].NewGroup(members, GroupConfig{Fanout: fanout})
						for root := 0; root < n; root++ {
							var data []byte
							if i == root {
								data = []byte(fmt.Sprintf("payload-from-%d", root))
							}
							got[i] = append(got[i], string(g.Bcast(th, root, data)))
						}
					})
				}
				eng.Run()
				for i := 0; i < n; i++ {
					for root := 0; root < n; root++ {
						want := fmt.Sprintf("payload-from-%d", root)
						if got[i][root] != want {
							t.Fatalf("member %d root %d: got %q, want %q", i, root, got[i][root], want)
						}
					}
				}
			})
		}
	}
}

// TestGroupBcastInto pins the pooled variant: payloads land in caller
// buffers and forward down the tree from them.
func TestGroupBcastInto(t *testing.T) {
	const n = 4
	eng, procs := simCluster(t, n, nil)
	members := collGroup(n)
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	ok := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
			g := procs[i].NewGroup(members, GroupConfig{})
			buf := make([]byte, len(payload))
			if i == 0 {
				copy(buf, payload)
			}
			ln := g.BcastInto(th, 0, buf)
			ok[i] = ln == len(payload) && bytes.Equal(buf[:ln], payload)
		})
	}
	eng.Run()
	for i, v := range ok {
		if !v {
			t.Fatalf("member %d did not receive the broadcast intact", i)
		}
	}
}

// TestGroupGatherReduce verifies tree gather (payloads indexed by member,
// variable lengths) and tree reduce (commutative fold) for tree and linear
// shapes.
func TestGroupGatherReduce(t *testing.T) {
	for _, fanout := range []int{0, 64} {
		fanout := fanout
		t.Run(fmt.Sprintf("fanout=%d", fanout), func(t *testing.T) {
			const n = 5
			eng, procs := simCluster(t, n, nil)
			members := collGroup(n)
			var gathered [][]byte
			var sum []byte
			for i := 0; i < n; i++ {
				i := i
				procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
					g := procs[i].NewGroup(members, GroupConfig{Fanout: fanout})
					own := bytes.Repeat([]byte{byte(10 + i)}, i+1) // distinct lengths
					if res := g.Gather(th, 1, own); i == 1 {
						gathered = res
					}
					if res := g.Reduce(th, 2, []byte{byte(i * 10)}, func(acc, next []byte) []byte {
						return []byte{acc[0] + next[0]}
					}); i == 2 {
						sum = res
					}
				})
			}
			eng.Run()
			if len(gathered) != n {
				t.Fatalf("gather returned %d slots", len(gathered))
			}
			for i, b := range gathered {
				want := bytes.Repeat([]byte{byte(10 + i)}, i+1)
				if !bytes.Equal(b, want) {
					t.Fatalf("gathered[%d] = %v, want %v", i, b, want)
				}
			}
			if len(sum) != 1 || sum[0] != 0+10+20+30+40 {
				t.Fatalf("reduce = %v, want 100", sum)
			}
		})
	}
}

// TestGroupAllToAll covers the XOR perfect-matching schedule (power of
// two), the ring schedule (odd N), and the linear baseline.
func TestGroupAllToAll(t *testing.T) {
	for _, tc := range []struct {
		n, fanout int
	}{{4, 0}, {5, 0}, {4, 64}} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d/fanout=%d", tc.n, tc.fanout), func(t *testing.T) {
			n := tc.n
			eng, procs := simCluster(t, n, nil)
			members := collGroup(n)
			results := make([][][]byte, n)
			for i := 0; i < n; i++ {
				i := i
				procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
					g := procs[i].NewGroup(members, GroupConfig{Fanout: tc.fanout})
					data := make([][]byte, n)
					for j := 0; j < n; j++ {
						data[j] = []byte(fmt.Sprintf("%d->%d", i, j))
					}
					results[i] = g.AllToAll(th, data)
				})
			}
			eng.Run()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := fmt.Sprintf("%d->%d", j, i)
					if i == j {
						want = fmt.Sprintf("%d->%d", i, i)
					}
					if string(results[i][j]) != want {
						t.Fatalf("results[%d][%d] = %q, want %q", i, j, results[i][j], want)
					}
				}
			}
		})
	}
}

// TestGroupBarrierSynchronizes is the dissemination-barrier counterpart of
// TestBarrier: staggered arrivals, repeated phases, no member may pass
// until every member reached the phase.
func TestGroupBarrierSynchronizes(t *testing.T) {
	for _, fanout := range []int{0, 3, 64} {
		fanout := fanout
		t.Run(fmt.Sprintf("fanout=%d", fanout), func(t *testing.T) {
			const n = 5
			eng, procs := simCluster(t, n, nil)
			members := collGroup(n)
			phase := make([]int, n)
			for i := 0; i < n; i++ {
				i := i
				procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
					g := procs[i].NewGroup(members, GroupConfig{Fanout: fanout})
					for ph := 0; ph < 3; ph++ {
						th.Compute(time.Duration(i+1)*7*time.Millisecond, nil)
						phase[i] = ph
						g.Barrier(th)
						for j := 0; j < n; j++ {
							if phase[j] != ph {
								t.Errorf("after barrier %d: member %d at phase %d", ph, j, phase[j])
							}
						}
						g.Barrier(th)
					}
				})
			}
			eng.Run()
		})
	}
}

// TestGroupChannelPinning asserts collectives actually ride the configured
// channel: a group pinned to an explicit priority channel leaves its
// traffic in that channel's counters, and the default channels stay idle.
func TestGroupChannelPinning(t *testing.T) {
	const n = 4
	eng, procs := simCluster(t, n, nil)
	members := collGroup(n)
	chans := make([][]*Channel, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				chans[i] = append(chans[i], nil)
				continue
			}
			chans[i] = append(chans[i], procs[i].Open(ProcID(j), ChannelConfig{ID: 7, Priority: 6}))
		}
	}
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
			g := procs[i].NewGroup(members, GroupConfig{Channel: 7})
			g.Barrier(th)
			var data []byte
			if i == 0 {
				data = []byte("pinned")
			}
			if string(g.Bcast(th, 0, data)) != "pinned" {
				t.Errorf("member %d: wrong broadcast", i)
			}
		})
	}
	eng.Run()
	var pinned, defaulted int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pinned += chans[i][j].Stats().Sent
			defaulted += procs[i].DefaultChannel(ProcID(j)).Stats().Sent
		}
	}
	if pinned == 0 {
		t.Fatal("no collective traffic on the pinned channel")
	}
	if defaulted != 0 {
		t.Fatalf("%d collective messages leaked onto default channels", defaulted)
	}
}

// TestSingleMemberGroupDegenerates pins the nprocs=1 degenerate run every
// MPI-style program has: one-member communicators are legal and every
// collective is a local no-op (the old linear Bcast/Barrier accepted
// world size 1 too).
func TestSingleMemberGroupDegenerates(t *testing.T) {
	eng, procs := simCluster(t, 1, nil)
	var bcast []byte
	procs[0].TCreate("solo", mts.PrioDefault, func(th *Thread) {
		f := MPI(th, []ProcID{0})
		f.Barrier()
		bcast = f.Bcast([]byte("solo"), 0)
		g := procs[0].NewGroup([]Addr{{Proc: 0, Thread: 0}}, GroupConfig{})
		g.Barrier(th)
		if res := g.Gather(th, 0, []byte{9}); len(res) != 1 || res[0][0] != 9 {
			t.Errorf("solo gather = %v", res)
		}
		if r := g.Reduce(th, 0, []byte{7}, func(acc, next []byte) []byte { return acc }); r[0] != 7 {
			t.Errorf("solo reduce = %v", r)
		}
		if a2a := g.AllToAll(th, [][]byte{{5}}); len(a2a) != 1 || a2a[0][0] != 5 {
			t.Errorf("solo alltoall = %v", a2a)
		}
	})
	eng.Run()
	if string(bcast) != "solo" {
		t.Fatalf("solo bcast = %q", bcast)
	}
}

// TestConcurrentBarriersSiblingThreads is the satellite bugfix: two
// threads of one process simultaneously in barriers over *different*
// groups. The old Proc-global barrier slot panicked ("concurrent Barrier
// calls"); keyed-by-group state lets both complete.
func TestConcurrentBarriersSiblingThreads(t *testing.T) {
	eng, procs := simCluster(t, 3, nil)
	groupA := []ProcID{0, 1}
	groupB := []ProcID{0, 2}
	done := make([]bool, 4)
	// Proc 0 runs both barriers from sibling threads; procs 1 and 2 delay
	// differently so the two barriers are in flight at the same time on
	// proc 0.
	procs[0].TCreate("a", mts.PrioDefault, func(th *Thread) {
		th.Barrier(groupA)
		done[0] = true
	})
	procs[0].TCreate("b", mts.PrioDefault, func(th *Thread) {
		th.Barrier(groupB)
		done[1] = true
	})
	procs[1].TCreate("a", mts.PrioDefault, func(th *Thread) {
		th.Compute(5*time.Millisecond, nil)
		th.Barrier(groupA)
		done[2] = true
	})
	procs[2].TCreate("b", mts.PrioDefault, func(th *Thread) {
		th.Compute(25*time.Millisecond, nil)
		th.Barrier(groupB)
		done[3] = true
	})
	eng.Run()
	for i, d := range done {
		if !d {
			t.Fatalf("participant %d never left its barrier", i)
		}
	}
}

// TestReduceFoldsInArrivalOrder is the out-of-order completion satellite:
// the linear Reduce must fold contributions as they arrive, not in list
// order, so a slow head-of-list peer cannot block payloads already
// delivered.
func TestReduceFoldsInArrivalOrder(t *testing.T) {
	eng, procs := simCluster(t, 3, nil)
	var order []byte
	procs[1].TCreate("slow", mts.PrioDefault, func(th *Thread) {
		th.Compute(50*time.Millisecond, nil)
		th.Send(0, 0, []byte{1})
	})
	procs[2].TCreate("fast", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 0, []byte{2})
	})
	procs[0].TCreate("root", mts.PrioDefault, func(th *Thread) {
		// List order names the slow peer first; arrival order is 2 then 1.
		th.Reduce([]Addr{{Proc: 1}, {Proc: 2}}, nil, func(acc, next []byte) []byte {
			order = append(order, next[0])
			return acc
		})
	})
	eng.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("fold order %v, want [2 1] (arrival order)", order)
	}
}

// TestGatherCompletesOutOfOrder mirrors the same property for Gather: the
// result is slotted by list position while arrivals complete in delivery
// order (the store never accumulates the fast peers behind the slow one).
func TestGatherCompletesOutOfOrder(t *testing.T) {
	eng, procs := simCluster(t, 4, nil)
	var gathered [][]byte
	for i := 1; i < 4; i++ {
		i := i
		procs[i].TCreate("s", mts.PrioDefault, func(th *Thread) {
			// Peer 1 (first in the list) arrives last.
			th.Compute(time.Duration(4-i)*10*time.Millisecond, nil)
			th.Send(0, 0, []byte{byte(i)})
		})
	}
	procs[0].TCreate("root", mts.PrioDefault, func(th *Thread) {
		gathered = th.Gather([]Addr{{Proc: 1}, {Proc: 2}, {Proc: 3}})
	})
	eng.Run()
	for i, b := range gathered {
		if len(b) != 1 || b[0] != byte(i+1) {
			t.Fatalf("gathered[%d] = %v, want [%d]", i, b, i+1)
		}
	}
}

// TestCollectiveChaosOverLossyCarrier drives tree collectives over a
// carrier eating 20% of all frames, with go-back-N restoring the channel:
// every barrier completes and every broadcast delivers exactly once per
// member, in order — no duplicates, no holes — across three seeds. Rides
// the CI chaos job (-race -count=2).
func TestCollectiveChaosOverLossyCarrier(t *testing.T) {
	for _, seed := range []int64{7, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n, rounds = 4, 12
			mem := transport.NewMem()
			mem.SetDropRate(0.20, seed)
			procs := realCluster(t, n, mem, nil)
			members := collGroup(n)
			for _, p := range procs {
				p.OnException(func(error) {}) // trailing-ack give-up after peers exit
			}
			chans := make([]map[int]*Channel, n)
			for i := 0; i < n; i++ {
				chans[i] = make(map[int]*Channel)
				for j := 0; j < n; j++ {
					if i != j {
						chans[i][j] = procs[i].Open(ProcID(j), ChannelConfig{
							ID: 5, Priority: 5, Error: NewGoBackN(8, 10*time.Millisecond),
						})
					}
				}
			}
			got := make([][]int, n)
			for i := 0; i < n; i++ {
				i := i
				procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
					g := procs[i].NewGroup(members, GroupConfig{Channel: 5})
					buf := make([]byte, 1)
					for r := 0; r < rounds; r++ {
						g.Barrier(th)
						root := r % n
						if i == root {
							buf[0] = byte(r)
						}
						ln := g.BcastInto(th, root, buf)
						if ln != 1 {
							t.Errorf("member %d round %d: %d-byte broadcast", i, r, ln)
							return
						}
						got[i] = append(got[i], int(buf[0]))
					}
				})
			}
			runReal(procs)
			if mem.Dropped() == 0 {
				t.Fatal("fault injection never dropped anything — test proves nothing")
			}
			retrans := int64(0)
			for i := 0; i < n; i++ {
				if len(got[i]) != rounds {
					t.Fatalf("member %d delivered %d of %d rounds", i, len(got[i]), rounds)
				}
				for r, v := range got[i] {
					if v != r {
						t.Fatalf("member %d: round %d delivered %d (duplicate or reorder): %v", i, r, v, got[i])
					}
				}
				for _, c := range chans[i] {
					retrans += c.Error().(*GoBackN).Retransmissions()
				}
			}
			if retrans == 0 {
				t.Fatal("no retransmissions — loss never exercised recovery")
			}
		})
	}
}

// TestCollectiveTraceLanes asserts the collective layer's trace
// annotation: each group gets its own lane, Comm during each operation
// with per-round marks (round index, fan size), and PhaseSkew over the
// members' lanes yields one barrier-exit skew per phase.
func TestCollectiveTraceLanes(t *testing.T) {
	const n, phases = 2, 3
	clock := vclock.NewRealClock()
	mem := transport.NewMem()
	procs := make([]*Proc, n)
	recorders := make([]*trace.Recorder, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("tr%d", i), IdleTimeout: 10 * time.Second, Clock: clock})
		recorders[i] = trace.NewRecorder(clock)
		procs[i] = New(Config{
			ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt),
			Tracer: recorders[i], TraceName: fmt.Sprintf("p%d", i),
		})
	}
	members := collGroup(n)
	for i := 0; i < n; i++ {
		i := i
		procs[i].TCreate("m", mts.PrioDefault, func(th *Thread) {
			g := procs[i].NewGroup(members, GroupConfig{})
			for ph := 0; ph < phases; ph++ {
				time.Sleep(time.Duration(i+1) * time.Millisecond) // phase skew
				g.Barrier(th)
			}
		})
	}
	runReal(procs)
	rows := make([]*trace.Timeline, n)
	for i := 0; i < n; i++ {
		recorders[i].CloseAll()
		name := fmt.Sprintf("p%d/coll g0 ch0", i)
		rows[i] = recorders[i].Timeline(name)
		if rows[i] == nil {
			t.Fatalf("proc %d has no collective lane %q (rows: %v)", i, name, recorders[i].Names())
		}
		if len(rows[i].Marks) == 0 {
			t.Fatalf("proc %d collective lane has no round marks", i)
		}
		if !strings.HasPrefix(rows[i].Marks[0].Label, "bar r0 ") {
			t.Fatalf("proc %d first mark %q, want a bar r0 annotation", i, rows[i].Marks[0].Label)
		}
	}
	skews := trace.PhaseSkew(rows, trace.Comm)
	if len(skews) != phases {
		t.Fatalf("PhaseSkew found %d phases, want %d", len(skews), phases)
	}
	for ph, s := range skews {
		if s < 0 {
			t.Fatalf("phase %d skew negative: %v", ph, s)
		}
	}
}
