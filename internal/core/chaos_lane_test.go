package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// TestShardedLaneChaos is the sharded-lanes chaos gauntlet: eight go-back-N
// channels spread (and partly pinned) across four forced lanes, 20% loss
// aimed at all of them — data and acks alike — with bidirectional traffic,
// over three seeds. Per-channel FIFO and exactly-once delivery must hold:
// go-back-N delivers in order without duplicates, so every receiver must
// see exactly the sequence 0..msgs-1 in its arrival tags.
func TestShardedLaneChaos(t *testing.T) {
	const nch, msgs = 8, 120
	for _, seed := range []int64{7, 42, 1995} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mem := transport.NewMem()
			mem.SetDropRate(0.20, seed)
			mem.SetDropClass(func(m *transport.Message) bool { return m.Channel >= 1 })
			procs := shardedCluster(t, 2, mem, nil)
			chans := [2][]*Channel{}
			for side := 0; side < 2; side++ {
				peer := ProcID(1 - side)
				for i := 0; i < nch; i++ {
					cfg := ChannelConfig{
						ID:       ChannelID(i + 1),
						Priority: i % NumChannelPriorities,
						Lane:     i % 5, // 0 = peer-hash default, 1..4 explicit pins
						Error:    NewGoBackN(8, 25*time.Millisecond),
					}
					chans[side] = append(chans[side], procs[side].Open(peer, cfg))
				}
			}
			order := [2][][]int{}
			for side := 0; side < 2; side++ {
				order[side] = make([][]int, nch)
			}
			for side := 0; side < 2; side++ {
				side := side
				// Trailing-ack give-up after the peer exits (the final
				// cumulative ack raced the peer's shutdown) is expected
				// under loss, as in the selective-repeat tests.
				procs[side].OnException(func(error) {})
				for i := 0; i < nch; i++ {
					i := i
					c := chans[side][i]
					procs[side].TCreate(fmt.Sprintf("tx%d", i), mts.PrioDefault, func(th *Thread) {
						// The peer's rx threads interleave with its tx
						// threads: channel i's receiver is thread 2i+1.
						for k := 0; k < msgs; k++ {
							c.SendTagged(th, k, 2*i+1, []byte{byte(k)})
						}
					})
					procs[side].TCreate(fmt.Sprintf("rx%d", i), mts.PrioDefault, func(th *Thread) {
						for k := 0; k < msgs; k++ {
							m := th.recvMsgOn(c.id, Any, Any, ProcID(1-side))
							order[side][i] = append(order[side][i], m.Tag)
							m.Release()
						}
					})
				}
			}
			runReal(procs)
			if mem.Dropped() == 0 {
				t.Fatal("no loss injected — chaos proves nothing")
			}
			for side := 0; side < 2; side++ {
				for i := 0; i < nch; i++ {
					got := order[side][i]
					if len(got) != msgs {
						t.Fatalf("side %d channel %d: %d messages, want %d", side, i, len(got), msgs)
					}
					for k, tag := range got {
						if tag != k {
							t.Fatalf("side %d channel %d: position %d saw tag %d (FIFO/exactly-once broken)", side, i, k, tag)
						}
					}
				}
			}
		})
	}
}

// TestShardedPriorityChaosDispatch pins a low- and a high-priority channel
// to the same lane, stages one message on each in the lane's queue (low
// first), and services the queue once — exactly the staging the fan-out and
// retransmission paths perform. The high-priority message must reach the
// wire, and therefore the receiver, first.
func TestShardedPriorityChaosDispatch(t *testing.T) {
	mem := transport.NewMem()
	procs := shardedCluster(t, 2, mem, nil)
	low0 := procs[0].Open(1, ChannelConfig{ID: 1, Priority: 0, Lane: 2})
	high0 := procs[0].Open(1, ChannelConfig{ID: 2, Priority: 7, Lane: 2})
	low1 := procs[1].Open(0, ChannelConfig{ID: 1, Priority: 0, Lane: 2})
	high1 := procs[1].Open(0, ChannelConfig{ID: 2, Priority: 7, Lane: 2})
	if low0.laneOf() != high0.laneOf() {
		t.Fatal("test setup: channels must share a lane")
	}

	var order []string
	procs[0].TCreate("stager", mts.PrioDefault, func(th *Thread) {
		// Wait for both receivers' ready announcements. Each receiver
		// sends its announcement and parks in Recv within one dispatch
		// (the sharded send completes inline), and deliveries only happen
		// between dispatches — so once both announcements are here, both
		// receivers are parked and arrival order is wire order.
		th.Recv(Any, Any)
		th.Recv(Any, Any)
		// Stage low first, then high, then service once — the staging
		// shape of the fan-out and retransmission paths.
		ln := low0.lockLane()
		for toThread, c := range []*Channel{low0, high0} {
			m := ln.getDataMsg()
			m.From = 0
			m.To = 1
			m.FromThread = th.Idx()
			m.ToThread = toThread
			m.Tag = 0
			m.Channel = c.id
			req := ln.getReq()
			req.m = m
			req.ch = c
			ln.pending.push(c.priority, req)
		}
		ln.serviceLocked()
		ln.mu.Unlock()
		ln.runDrain()
	})
	procs[1].TCreate("rlow", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 0, nil)
		low1.Recv(th, Any)
		order = append(order, "low")
	})
	procs[1].TCreate("rhigh", mts.PrioDefault, func(th *Thread) {
		th.Send(0, 0, nil)
		high1.Recv(th, Any)
		order = append(order, "high")
	})
	runReal(procs)
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("arrival order = %v, want high first", order)
	}
}
