package core

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

func runLossyARQ(t *testing.T, mk func() ErrorControl, msgs int) (got []int, dropped int, retrans int64) {
	t.Helper()
	mem := transport.NewMem()
	mem.SetDropRate(0.3, 99)
	procs := realCluster(t, 2, mem, func(i int) (FlowControl, ErrorControl) {
		return nil, mk()
	})
	procs[0].OnException(func(error) {}) // trailing-ack give-up after peer exit
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			th.Send(0, 1, []byte{byte(k)})
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			data, _ := th.Recv(Any, Any)
			got = append(got, int(data[0]))
		}
	})
	runReal(procs)
	// The Config instance is a template; read the stats off the live
	// per-channel state machine.
	switch ec := procs[0].DefaultChannel(1).Error().(type) {
	case *GoBackN:
		retrans = ec.Retransmissions()
	case *SelectiveRepeat:
		retrans = ec.Retransmissions()
	}
	return got, mem.Dropped(), retrans
}

func TestSelectiveRepeatOverLossyTransport(t *testing.T) {
	const n = 15
	got, dropped, _ := runLossyARQ(t, func() ErrorControl {
		return NewSelectiveRepeat(4, 20*time.Millisecond)
	}, n)
	if len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	if dropped == 0 {
		t.Fatal("no loss injected — test proves nothing")
	}
}

func TestSelectiveRepeatRetransmitsLessThanGBN(t *testing.T) {
	// Under the same loss pattern, selective repeat re-sends only the lost
	// messages while go-back-N re-sends whole windows.
	const n = 30
	_, _, srRetrans := runLossyARQ(t, func() ErrorControl {
		return NewSelectiveRepeat(8, 20*time.Millisecond)
	}, n)
	_, _, gbnRetrans := runLossyARQ(t, func() ErrorControl {
		return NewGoBackN(8, 20*time.Millisecond)
	}, n)
	if srRetrans >= gbnRetrans {
		t.Fatalf("selective repeat retransmitted %d, go-back-N %d — expected SR < GBN",
			srRetrans, gbnRetrans)
	}
}

func TestSelectiveRepeatInOrderDeliveryDespiteBuffering(t *testing.T) {
	// Heavier loss to force deep buffering of out-of-order arrivals.
	mem := transport.NewMem()
	mem.SetDropRate(0.4, 7)
	procs := realCluster(t, 2, mem, func(i int) (FlowControl, ErrorControl) {
		return nil, NewSelectiveRepeat(6, 15*time.Millisecond)
	})
	procs[0].OnException(func(error) {})
	const n = 20
	var got []int
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			th.Send(0, 1, []byte{byte(k)})
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < n; k++ {
			data, _ := th.Recv(Any, Any)
			got = append(got, int(data[0]))
		}
	})
	runReal(procs)
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestSelectiveRepeatValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad window accepted")
		}
	}()
	NewSelectiveRepeat(0, time.Second)
}
