package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/transport"
	"repro/internal/work"
)

// This file is the virtual-time mesh harness: N procs — sharded lanes, DRR,
// coalescing, rebalancing and all — executing on one discrete-event loop
// with a shared clock. It is how the modeled scaling results at N ∈ {64,
// 256, 1024} are produced: lane engines run as vclock events (Config.
// VirtualTime + the engineDriver seam in lane.go), frames travel as
// cost-model events on a frame-granular NYNET fabric (netsim.NewFrameMesh
// via transport.SimMesh), and every timer rides the engine's virtual timer.
//
// Determinism contract: a virtual mesh has no lane goroutines — events and
// the threads they dispatch execute strictly one at a time in the engine's
// goroutine, ordered by the event queue's (time, insertion seq) heap — so
// two runs of the same workload with the same seed produce byte-identical
// timelines (assert with TimelineHash). Anything order-sensitive inside
// core therefore must not depend on Go map iteration or goroutine
// scheduling; see Proc.channelsOrdered.

// VirtualMeshConfig parameterizes NewVirtualMesh. The zero value models the
// calibrated 1995 NYNET LAN with 2 lanes per proc and default disciplines.
type VirtualMeshConfig struct {
	// Lanes is the per-proc lane count (default 2). Values > 1 exercise the
	// full sharded hot path; 1 builds classic two-system-thread procs.
	Lanes int
	// Flow and Error are per-channel discipline templates, forked for every
	// default channel exactly as Config.Flow/Config.Error (nil = none).
	Flow  FlowControl
	Error ErrorControl
	// RebalanceInterval is passed through to Config.RebalanceInterval.
	RebalanceInterval time.Duration
	// Admission is the per-proc call admission policy for signaled opens
	// (nil = admit everything), passed through to Config.Admission.
	Admission AdmissionPolicy
	// SigIdleTimeout tears down signaled channels idle for this long
	// (zero = never), passed through to Config.SigIdleTimeout.
	SigIdleTimeout time.Duration
	// OnAccept runs for every admitted incoming signaled call, on every
	// proc (use Channel.Proc to tell whose); passed through to
	// Config.OnAccept.
	OnAccept func(*Channel)
	// Heartbeat configures every proc's failure detector (passed through to
	// Config.Heartbeat). Detection timers ride the engine's virtual clock,
	// so kill suites are deterministic.
	Heartbeat Heartbeat
	// Net overrides the fabric parameters; zero fields default to the NYNET
	// calibration (TAXI host links, 10 µs propagation and switch latency).
	Net netsim.FrameMeshConfig
	// MaxTime bounds the simulated horizon (default 1h) so a deadlocked
	// workload fails instead of looping.
	MaxTime time.Duration
}

// VirtualMesh is N procs on one discrete-event loop. Proc i is host i on
// the fabric and node i of the engine.
type VirtualMesh struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*sim.Node
	Procs []*Proc
	Seed  int64
}

// NewVirtualMesh builds an n-proc virtual-time mesh. The seed does not
// perturb the harness itself — it seeds the workload streams handed out by
// Rand, which is where run-to-run variation (payload sizes, traffic order)
// must come from for the determinism contract to be testable.
func NewVirtualMesh(n int, seed int64, cfg VirtualMeshConfig) *VirtualMesh {
	if n < 2 {
		panic("core: a virtual mesh needs at least two procs")
	}
	lanes := cfg.Lanes
	if lanes == 0 {
		lanes = 2
	}
	net := cfg.Net
	if net.HostLinkBps == 0 {
		net.HostLinkBps = sonet.EffectiveATMBps(sonet.TAXIRate, sonet.TAXIPayloadFraction)
	}
	if net.HostLinkProp == 0 {
		net.HostLinkProp = 10 * time.Microsecond
	}
	if net.SwitchLatency == 0 {
		net.SwitchLatency = 10 * time.Microsecond
	}
	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = time.Hour
	}

	eng := sim.NewEngine()
	eng.SetMaxTime(maxTime)
	fabric := netsim.NewFrameMesh(eng, n, net)
	mesh := transport.NewSimMesh(fabric)
	vm := &VirtualMesh{Eng: eng, Net: fabric, Seed: seed}
	after := func(d time.Duration, fn func()) { eng.Schedule(d, fn) }
	for i := 0; i < n; i++ {
		node := eng.NewNode(fmt.Sprintf("vp%d", i))
		p := New(Config{
			ID:                ProcID(i),
			RT:                node.RT(),
			Endpoint:          mesh.Attach(i),
			Compute:           work.Sim(node),
			After:             after,
			VirtualTime:       true,
			SendLanes:         lanes,
			RecvLanes:         lanes,
			Flow:              cfg.Flow,
			Error:             cfg.Error,
			RebalanceInterval: cfg.RebalanceInterval,
			Admission:         cfg.Admission,
			SigIdleTimeout:    cfg.SigIdleTimeout,
			OnAccept:          cfg.OnAccept,
			Heartbeat:         cfg.Heartbeat,
		})
		vm.Nodes = append(vm.Nodes, node)
		vm.Procs = append(vm.Procs, p)
	}
	return vm
}

// Rand returns a deterministic random stream for workload generation,
// derived from the mesh seed and a caller-chosen stream number (typically
// the proc index). Streams with distinct numbers are independent.
func (vm *VirtualMesh) Rand(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(vm.Seed<<20 ^ stream ^ 0x5e37_79b9_7f4a_7c15))
}

// Run executes the mesh to completion (every thread of every proc done).
func (vm *VirtualMesh) Run() { vm.Eng.Run() }

// Now returns the current virtual time as a duration since start.
func (vm *VirtualMesh) Now() time.Duration { return time.Duration(vm.Eng.Now()) }

// TimelineHash fingerprints the run: the engine's event-timeline hash
// extended with every proc's sent/received totals, so both "when things
// happened" and "what got through" must match for two runs to compare
// equal. Byte-identical for equal seeds, different (overwhelmingly) for
// different seeds once the workload consults Rand.
func (vm *VirtualMesh) TimelineHash() string {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	for _, p := range vm.Procs {
		mix(uint64(p.Sent()))
		mix(uint64(p.Received()))
	}
	return fmt.Sprintf("%s-%016x", vm.Eng.TimelineHash(), h)
}
