package core

import (
	"bytes"
	"testing"

	"repro/internal/mts"
)

func TestPVMBufferPackUnpack(t *testing.T) {
	b := &PVMBuffer{}
	b.PackInt32s([]int32{1, -2, 3})
	b.PackFloat64s([]float64{3.14, -2.72})
	b.PackBytes([]byte("tail"))

	r := &PVMBuffer{data: b.data}
	ints, err := r.UnpackInt32s()
	if err != nil || len(ints) != 3 || ints[1] != -2 {
		t.Fatalf("ints = %v, err %v", ints, err)
	}
	floats, err := r.UnpackFloat64s()
	if err != nil || floats[0] != 3.14 || floats[1] != -2.72 {
		t.Fatalf("floats = %v, err %v", floats, err)
	}
	raw, err := r.UnpackBytes()
	if err != nil || !bytes.Equal(raw, []byte("tail")) {
		t.Fatalf("bytes = %q, err %v", raw, err)
	}
}

func TestPVMBufferTypeMismatch(t *testing.T) {
	b := &PVMBuffer{}
	b.PackInt32s([]int32{1})
	r := &PVMBuffer{data: b.data}
	if _, err := r.UnpackFloat64s(); err != ErrPVMUnpack {
		t.Fatalf("err = %v, want ErrPVMUnpack", err)
	}
}

func TestPVMBufferTruncated(t *testing.T) {
	b := &PVMBuffer{}
	b.PackFloat64s([]float64{1, 2, 3})
	r := &PVMBuffer{data: b.data[:10]}
	if _, err := r.UnpackFloat64s(); err != ErrPVMUnpack {
		t.Fatalf("err = %v, want ErrPVMUnpack", err)
	}
}

func TestPVMSendRecvAcrossProcs(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var ints []int32
	var floats []float64
	procs[0].TCreate("pvm-sender", mts.PrioDefault, func(th *Thread) {
		f := PVM(th)
		buf := f.InitSend()
		buf.PackInt32s([]int32{10, 20})
		buf.PackFloat64s([]float64{1.5})
		f.Send(1, 99)
	})
	procs[1].TCreate("pvm-recv", mts.PrioDefault, func(th *Thread) {
		f := PVM(th)
		buf := f.Recv(0, 99)
		ints, _ = buf.UnpackInt32s()
		floats, _ = buf.UnpackFloat64s()
	})
	eng.Run()
	if len(ints) != 2 || ints[0] != 10 || ints[1] != 20 || floats[0] != 1.5 {
		t.Fatalf("ints=%v floats=%v", ints, floats)
	}
}

func TestPVMMcast(t *testing.T) {
	eng, procs := simCluster(t, 3, nil)
	got := make([]int32, 3)
	procs[0].TCreate("caster", mts.PrioDefault, func(th *Thread) {
		f := PVM(th)
		f.InitSend().PackInt32s([]int32{7})
		f.Mcast([]ProcID{1, 2}, 5)
	})
	for i := 1; i < 3; i++ {
		i := i
		procs[i].TCreate("member", mts.PrioDefault, func(th *Thread) {
			buf := PVM(th).Recv(Any, 5)
			v, _ := buf.UnpackInt32s()
			got[i] = v[0]
		})
	}
	eng.Run()
	if got[1] != 7 || got[2] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestPVMNRecv(t *testing.T) {
	eng, procs := simCluster(t, 2, nil)
	var firstProbe, laterProbe bool
	procs[1].TCreate("prober", mts.PrioDefault, func(th *Thread) {
		f := PVM(th)
		_, firstProbe = f.NRecv(Any, Any)
		// Block until something arrives, then probe again for the second.
		f.Recv(Any, Any)
		for {
			if _, ok := f.NRecv(Any, Any); ok {
				laterProbe = true
				return
			}
			th.Compute(1e6, nil) // 1 ms
		}
	})
	procs[0].TCreate("sender", mts.PrioDefault, func(th *Thread) {
		f := PVM(th)
		f.InitSend().PackBytes([]byte("a"))
		f.Send(1, 1)
		f.InitSend().PackBytes([]byte("b"))
		f.Send(1, 2)
	})
	eng.Run()
	if firstProbe {
		t.Fatal("NRecv matched before any send")
	}
	if !laterProbe {
		t.Fatal("NRecv never matched the queued message")
	}
}

func TestPVMSendWithoutInitPanics(t *testing.T) {
	eng, procs := simCluster(t, 1, nil)
	procs[0].TCreate("bad", mts.PrioDefault, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Send without InitSend accepted")
			}
		}()
		PVM(th).Send(0, 1)
	})
	eng.Run()
}
