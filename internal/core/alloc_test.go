package core

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// TestWindowedFlowAllocs pins steady-state heap allocations of the full
// NCS windowed-flow path — Send through admission, Mem wire crossing,
// delivery, credit return, and credit consumption — so regressions in the
// control-message path (the old putUint32 allocated a fresh slice per
// credit/ack) or the request/waiter freelists fail loudly.
//
// Both procs share one runtime so the measurement covers exactly one
// send/recv/credit cycle per round with no cross-goroutine noise beyond
// the Mem Post hand-off. The Mem wire crossing itself inherently allocates
// (one marshal frame + one decoded Message per direction); everything the
// core adds on top must come from the freelists.
func TestWindowedFlowAllocs(t *testing.T) {
	mem := transport.NewMem()
	rt := mts.New(mts.Config{Name: "alloc", IdleTimeout: 5 * time.Second})
	mk := func(id ProcID) *Proc {
		return New(Config{
			ID:       id,
			RT:       rt,
			Endpoint: mem.Attach(id, rt),
			Flow:     NewWindowFlow(2),
		})
	}
	pa, pb := mk(0), mk(1)

	payload := make([]byte, 4096)
	cmds := 0
	stop := false
	rounds := 0
	roundDone := make(chan struct{})
	runDone := make(chan struct{})

	var sender *Thread
	sender = pa.TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for {
			for cmds == 0 && !stop {
				th.mt.Park("await cmd")
			}
			if stop {
				// Zero-length sentinel releases the receiver.
				th.Send(0, 1, nil)
				return
			}
			cmds--
			th.Send(0, 1, payload)
		}
	})
	pb.TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for {
			data, _ := th.Recv(Any, 0)
			if len(data) == 0 {
				return // sentinel: shut down
			}
			rounds++
			roundDone <- struct{}{}
		}
	})
	go func() { rt.Run(); close(runDone) }()

	kick := func() {
		cmds++
		if sender.mt.State() == mts.StateBlocked && sender.mt.BlockReason() == "await cmd" {
			rt.Unblock(sender.mt, false)
		}
	}
	// Warm the freelists and the window machinery.
	for i := 0; i < 4; i++ {
		rt.Post(kick)
		<-roundDone
	}
	avg := testing.AllocsPerRun(200, func() {
		rt.Post(kick)
		<-roundDone
	})

	// Tear down: the sender emits the sentinel and exits, the receiver
	// consumes it and exits, both procs close their system threads.
	rt.Post(func() {
		stop = true
		if sender.mt.State() == mts.StateBlocked && sender.mt.BlockReason() == "await cmd" {
			rt.Unblock(sender.mt, false)
		}
	})
	<-runDone

	t.Logf("windowed-flow 4KB round: %.1f allocs/op over %d rounds", avg, rounds)
	// Baseline with pooled control messages and wire append-helpers: ~6
	// (two Mem frame+Message pairs — data and credit — plus scheduler
	// hand-off). The pre-refactor path allocated a fresh credit Message,
	// its 4-byte payload, and a sendReq per ack on top of that.
	if avg > 9 {
		t.Fatalf("windowed-flow round allocates %.1f/op, want <= 9", avg)
	}
}
