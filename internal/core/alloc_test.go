package core

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
)

// TestWindowedFlowAllocs pins steady-state heap allocations of the full
// NCS windowed-flow path — Send through admission, Mem wire crossing,
// delivery, cumulative-credit advertisement, and credit consumption — so
// regressions in the control-message path (the old putUint32 allocated a
// fresh slice per credit/ack) or the request/waiter freelists fail loudly.
// The absolute-credit protocol adds a 4-byte cumulative payload to every
// advertisement and a periodic window-sync timer; both must ride the
// pooled control path, keeping the lossless-path overhead at zero extra
// allocations per round.
//
// Both procs share one runtime so the measurement covers exactly one
// send/recv/credit cycle per round with no cross-goroutine noise beyond
// the Mem Post hand-off. The Mem wire crossing itself inherently allocates
// (one marshal frame + one decoded Message per direction); everything the
// core adds on top must come from the freelists.
func TestWindowedFlowAllocs(t *testing.T) {
	mem := transport.NewMem()
	rt := mts.New(mts.Config{Name: "alloc", IdleTimeout: 5 * time.Second})
	mk := func(id ProcID) *Proc {
		return New(Config{
			ID:       id,
			RT:       rt,
			Endpoint: mem.Attach(id, rt),
			Flow:     NewWindowFlow(2),
		})
	}
	pa, pb := mk(0), mk(1)

	payload := make([]byte, 4096)
	cmds := 0
	stop := false
	rounds := 0
	roundDone := make(chan struct{})
	runDone := make(chan struct{})

	var sender *Thread
	sender = pa.TCreate("sender", mts.PrioDefault, func(th *Thread) {
		for {
			for cmds == 0 && !stop {
				th.mt.Park("await cmd")
			}
			if stop {
				// Zero-length sentinel releases the receiver.
				th.Send(0, 1, nil)
				return
			}
			cmds--
			th.Send(0, 1, payload)
		}
	})
	pb.TCreate("recv", mts.PrioDefault, func(th *Thread) {
		for {
			data, _ := th.Recv(Any, 0)
			if len(data) == 0 {
				return // sentinel: shut down
			}
			rounds++
			roundDone <- struct{}{}
		}
	})
	go func() { rt.Run(); close(runDone) }()

	kick := func() {
		cmds++
		if sender.mt.State() == mts.StateBlocked && sender.mt.BlockReason() == "await cmd" {
			rt.Unblock(sender.mt, false)
		}
	}
	// Warm the freelists and the window machinery.
	for i := 0; i < 4; i++ {
		rt.Post(kick)
		<-roundDone
	}
	avg := testing.AllocsPerRun(200, func() {
		rt.Post(kick)
		<-roundDone
	})

	// Tear down: the sender emits the sentinel and exits, the receiver
	// consumes it and exits, both procs close their system threads.
	rt.Post(func() {
		stop = true
		if sender.mt.State() == mts.StateBlocked && sender.mt.BlockReason() == "await cmd" {
			rt.Unblock(sender.mt, false)
		}
	})
	<-runDone

	t.Logf("windowed-flow 4KB round: %.1f allocs/op over %d rounds", avg, rounds)
	// Baseline with pooled control/data messages and the pooled decode
	// path: ~3 (the kept payload's frame, whose ownership Recv hands to
	// the application, plus scheduler hand-off). The pre-refactor path
	// allocated a fresh credit Message, its 4-byte payload, and a sendReq
	// per ack on top of that; the pin's headroom covers the race
	// detector's deliberately leaky sync.Pool.
	if avg > 9 {
		t.Fatalf("windowed-flow round allocates %.1f/op, want <= 9", avg)
	}

	// Protocol bookkeeping must have stayed consistent across the run:
	// every data message (4 warmup + measured rounds + the sentinel) was
	// admitted and delivered, and the cumulative counters agree to within
	// the credits still in flight at teardown.
	sflow := pa.DefaultChannel(1).Flow().(*WindowFlow)
	rflow := pb.DefaultChannel(0).Flow().(*WindowFlow)
	wantMsgs := uint32(rounds) + 1 // + zero-length sentinel
	if sflow.sent != wantMsgs || rflow.delivered != wantMsgs {
		t.Fatalf("counter drift: sent %d, delivered %d, want %d", sflow.sent, rflow.delivered, wantMsgs)
	}
	if out := sflow.Outstanding(); out < 0 || out > 2 {
		t.Fatalf("outstanding %d beyond window at teardown", out)
	}
}

// TestCollectiveAllocs pins the collective hot path: a 4-member group on
// one shared runtime runs a dissemination barrier plus a binomial
// BcastInto per round. Steady state must stay on the freelists end to end —
// fan-out enqueues recycle sendReqs and pooled data Messages, barrier
// tokens and BcastInto payloads release their pooled frames via RecvInto
// semantics, and the precomputed topology/scratch slices never regrow — so
// the whole 4-process round (8 barrier tokens + 3 broadcast hops) is
// pinned to a near-zero allocation budget.
func TestCollectiveAllocs(t *testing.T) {
	const n = 4
	mem := transport.NewMem()
	rt := mts.New(mts.Config{Name: "collalloc", IdleTimeout: 5 * time.Second})
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = New(Config{ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt)})
	}
	members := make([]Addr, n)
	for i := range members {
		members[i] = Addr{Proc: ProcID(i), Thread: 0}
	}

	payload := make([]byte, 4096)
	cmds := 0
	stop := false
	rounds := 0
	roundDone := make(chan struct{})
	runDone := make(chan struct{})

	var root *Thread
	root = procs[0].TCreate("root", mts.PrioDefault, func(th *Thread) {
		g := procs[0].NewGroup(members, GroupConfig{})
		buf := make([]byte, len(payload))
		copy(buf, payload)
		for {
			for cmds == 0 && !stop {
				th.mt.Park("await cmd")
			}
			g.Barrier(th)
			if stop {
				g.BcastInto(th, 0, buf[:0]) // zero-length sentinel
				return
			}
			cmds--
			g.BcastInto(th, 0, buf)
		}
	})
	for i := 1; i < n; i++ {
		i := i
		procs[i].TCreate("leaf", mts.PrioDefault, func(th *Thread) {
			g := procs[i].NewGroup(members, GroupConfig{})
			buf := make([]byte, len(payload))
			for {
				g.Barrier(th)
				ln := g.BcastInto(th, 0, buf)
				if ln == 0 {
					return // sentinel
				}
				if i == n-1 {
					rounds++
					roundDone <- struct{}{}
				}
			}
		})
	}
	go func() { rt.Run(); close(runDone) }()

	kick := func() {
		cmds++
		if root.mt.State() == mts.StateBlocked && root.mt.BlockReason() == "await cmd" {
			rt.Unblock(root.mt, false)
		}
	}
	for i := 0; i < 4; i++ {
		rt.Post(kick)
		<-roundDone
	}
	avg := testing.AllocsPerRun(200, func() {
		rt.Post(kick)
		<-roundDone
	})
	rt.Post(func() {
		stop = true
		if root.mt.State() == mts.StateBlocked && root.mt.BlockReason() == "await cmd" {
			rt.Unblock(root.mt, false)
		}
	})
	<-runDone

	t.Logf("collective round (dissemination barrier + 4KB binomial bcast, 4 procs): %.1f allocs/op over %d rounds", avg, rounds)
	// Baseline measured 0.0/op: all 11 messages of a full round ride the
	// request/message freelists, the pooled wire frames, and the pooled
	// decoded-Message structs. The pin sits above that only because the
	// race detector intentionally makes sync.Pool leaky (CI runs this
	// suite under -race, where the same round measures ~8); a per-message
	// allocation sneaking back into the fan-out or token path would read
	// ~11+/op and still fail loudly.
	if avg > 9 {
		t.Fatalf("collective round allocates %.1f/op, want <= 9", avg)
	}
}

// TestPiggybackAllocs pins the piggybacked-control hot path: a windowed
// ping-pong where every credit advertisement rides a reverse-direction
// data frame. A piggybacked credit is four bytes written into the frame
// the data was leaving on anyway, so it must cost zero extra heap
// allocations — and with RecvInto recycling the pooled Mem frames, the
// whole round trip (two data frames, two credits) stays under the
// windowed-flow pin despite carrying twice the traffic.
func TestPiggybackAllocs(t *testing.T) {
	mem := transport.NewMem()
	rt := mts.New(mts.Config{Name: "piggy", IdleTimeout: 5 * time.Second})
	mk := func(id ProcID) *Proc {
		return New(Config{ID: id, RT: rt, Endpoint: mem.Attach(id, rt)})
	}
	pa, pb := mk(0), mk(1)
	// Window 4 → the credit threshold is 3, so between forced
	// advertisements every credit waits for the reverse data frame the
	// ping-pong is about to produce: the steady state piggybacks.
	ca := pa.Open(1, ChannelConfig{ID: 1, Flow: NewWindowFlow(4)})
	cb := pb.Open(0, ChannelConfig{ID: 1, Flow: NewWindowFlow(4)})

	payload := make([]byte, 4096)
	cmds := 0
	stop := false
	rounds := 0
	roundDone := make(chan struct{})
	runDone := make(chan struct{})

	var pinger *Thread
	pinger = pa.TCreate("ping", mts.PrioDefault, func(th *Thread) {
		buf := make([]byte, len(payload))
		for {
			for cmds == 0 && !stop {
				th.mt.Park("await cmd")
			}
			if stop {
				ca.Send(th, 0, nil) // zero-length sentinel
				return
			}
			cmds--
			ca.Send(th, 0, payload)
			ca.RecvInto(th, buf, Any)
		}
	})
	pb.TCreate("pong", mts.PrioDefault, func(th *Thread) {
		buf := make([]byte, len(payload))
		for {
			n, _ := cb.RecvInto(th, buf, Any)
			if n == 0 {
				return // sentinel
			}
			cb.Send(th, 0, buf[:n])
			rounds++
			roundDone <- struct{}{}
		}
	})
	go func() { rt.Run(); close(runDone) }()

	kick := func() {
		cmds++
		if pinger.mt.State() == mts.StateBlocked && pinger.mt.BlockReason() == "await cmd" {
			rt.Unblock(pinger.mt, false)
		}
	}
	for i := 0; i < 8; i++ {
		rt.Post(kick)
		<-roundDone
	}
	avg := testing.AllocsPerRun(200, func() {
		rt.Post(kick)
		<-roundDone
	})
	rt.Post(func() {
		stop = true
		if pinger.mt.State() == mts.StateBlocked && pinger.mt.BlockReason() == "await cmd" {
			rt.Unblock(pinger.mt, false)
		}
	})
	<-runDone

	sa, sb := ca.Stats(), cb.Stats()
	t.Logf("piggyback 4KB ping-pong: %.1f allocs/op over %d rounds; a: %d piggy / %d standalone, b: %d piggy / %d standalone",
		avg, rounds, sa.CtrlPiggybacked, sa.CtrlStandalone, sb.CtrlPiggybacked, sb.CtrlStandalone)
	// The round trip carries two data frames and both directions' credits.
	// With frames pooled end to end (RecvInto) and credits riding the data,
	// the whole round must stay under the one-way windowed-flow pin — a
	// piggybacked credit adding allocations would show up here first.
	if avg > 9 {
		t.Fatalf("piggybacked round allocates %.1f/op, want <= 9", avg)
	}
	// The steady state must actually have piggybacked: both ends attach
	// nearly every credit to reverse data, falling back standalone only at
	// threshold crossings and flush-timer tails.
	for name, s := range map[string]ChannelStats{"a": sa, "b": sb} {
		if s.CtrlPiggybacked == 0 {
			t.Fatalf("end %s never piggybacked a credit (standalone %d)", name, s.CtrlStandalone)
		}
		if s.CtrlPiggybacked < s.CtrlStandalone {
			t.Fatalf("end %s: piggybacked %d < standalone %d — the ride-along path is not engaging",
				name, s.CtrlPiggybacked, s.CtrlStandalone)
		}
	}
}
