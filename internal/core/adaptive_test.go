package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// DRR scheduler unit tests (laneSched, drr.go)

func drrChan(prio, weight int) *Channel {
	return &Channel{priority: prio, weight: weight}
}

func drrReq(c *Channel, tag, size int) *sendReq {
	return &sendReq{m: &transport.Message{Tag: tag, Data: make([]byte, size)}, ch: c}
}

// TestLaneSchedWeightedService checks the deficit-round-robin core: two
// equal-priority channels with weights 3 and 1 and quantum-sized frames
// must interleave 3:1, FIFO within each channel.
func TestLaneSchedWeightedService(t *testing.T) {
	var s laneSched
	size := drrQuantum - wire.HeaderSize // reqCost == drrQuantum exactly
	c3 := drrChan(4, 3)
	c1 := drrChan(4, 1)
	for k := 0; k < 8; k++ {
		s.push(c3.priority, drrReq(c3, k, size))
	}
	for k := 0; k < 8; k++ {
		s.push(c1.priority, drrReq(c1, k, size))
	}
	var pattern []*Channel
	next := map[*Channel]int{}
	for !s.empty() {
		req := s.pop()
		if req.m.Tag != next[req.ch] {
			t.Fatalf("FIFO broken: channel served tag %d, want %d", req.m.Tag, next[req.ch])
		}
		next[req.ch]++
		pattern = append(pattern, req.ch)
	}
	if next[c3] != 8 || next[c1] != 8 {
		t.Fatalf("served %d/%d, want 8/8", next[c3], next[c1])
	}
	// First two full rounds: three c3 frames per one c1 frame.
	want := []*Channel{c3, c3, c3, c1, c3, c3, c3, c1}
	for i, c := range want {
		if pattern[i] != c {
			t.Fatalf("position %d served weight-%d channel, want weight-%d (pattern %v)",
				i, pattern[i].weight, c.weight, pattern[:8])
		}
	}
	if s.rounds == 0 {
		t.Fatal("no completed DRR rounds counted")
	}
}

// TestLaneSchedControlFirst checks the strict control band: control pops
// before any queued data regardless of backlog.
func TestLaneSchedControlFirst(t *testing.T) {
	var s laneSched
	c := drrChan(7, 1)
	for k := 0; k < 4; k++ {
		s.push(c.priority, drrReq(c, k, 16))
	}
	ctrl := &sendReq{m: &transport.Message{Tag: tagFlowAck}, ctrl: true}
	s.push(ctrlLevel, ctrl)
	if got := s.pop(); got != ctrl {
		t.Fatal("control did not pop before queued data")
	}
	if got := s.pop(); got.m.Tag != 0 {
		t.Fatalf("data resumed at tag %d, want 0", got.m.Tag)
	}
}

// TestLaneSchedPriorityPreemption checks that a freshly-backlogged
// higher-priority channel takes the cursor immediately — the property that
// keeps the sharded dispatch test's strict-priority expectations intact.
func TestLaneSchedPriorityPreemption(t *testing.T) {
	var s laneSched
	low := drrChan(0, 1)
	high := drrChan(7, 1)
	s.push(low.priority, drrReq(low, 0, 16))
	s.push(low.priority, drrReq(low, 1, 16))
	if got := s.pop(); got.ch != low {
		t.Fatal("lone low-priority channel not served")
	}
	s.push(high.priority, drrReq(high, 0, 16))
	if got := s.pop(); got.ch != high {
		t.Fatal("high-priority newcomer did not preempt the round")
	}
	if got := s.pop(); got.ch != low || got.m.Tag != 1 {
		t.Fatal("low-priority backlog lost after preemption")
	}
}

// TestLaneSchedOversizedFrame checks the boost escalation: a frame far
// larger than quantum·weight must still be served (in one pop call — the
// deficit accumulates geometrically, not linearly).
func TestLaneSchedOversizedFrame(t *testing.T) {
	var s laneSched
	c := drrChan(0, 1)
	s.push(c.priority, drrReq(c, 0, 1<<20))
	if got := s.pop(); got.ch != c {
		t.Fatal("oversized frame never served")
	}
	if !s.empty() {
		t.Fatal("scheduler not empty after draining")
	}
}

// ---------------------------------------------------------------------------
// Flush-wheel timer coalescing (satellite: 256 idle channels ≠ 256 timers)

// TestFlushWheelTimerCount opens 255 reliable channels (every usable ID)
// spread over four lanes, pushes one message through each (so all 255
// receiver ends queue an acknowledgement inside the same piggyback
// window), and asserts the armed flush-timer count never exceeds the lane
// count: the per-lane wheel serves every waiting channel with one timer.
func TestFlushWheelTimerCount(t *testing.T) {
	const nch = 255
	mem := transport.NewMem()
	procs := shardedCluster(t, 2, mem, nil)
	tx := make([]*Channel, nch)
	for i := 0; i < nch; i++ {
		mk := func() ChannelConfig {
			return ChannelConfig{
				ID:    ChannelID(i + 1),
				Lane:  i%4 + 1, // spread explicitly over all four lanes
				Error: NewGoBackN(4, 50*time.Millisecond),
			}
		}
		tx[i] = procs[0].Open(1, mk())
		procs[1].Open(0, mk())
	}
	var maxTimers atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := procs[1].flushTimers.Load(); n > maxTimers.Load() {
				maxTimers.Store(n)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()
	procs[0].TCreate("tx", mts.PrioDefault, func(th *Thread) {
		for i := 0; i < nch; i++ {
			tx[i].SendTagged(th, 0, 0, []byte{byte(i)})
		}
	})
	procs[1].TCreate("rx", mts.PrioDefault, func(th *Thread) {
		for i := 0; i < nch; i++ {
			m := th.recvMsgOn(ChannelID(i+1), Any, Any, 0)
			m.Release()
		}
	})
	runReal(procs)
	close(stop)
	if got := maxTimers.Load(); got > 4 {
		t.Fatalf("observed %d armed flush timers for %d channels, want <= 4 (one per lane)", got, nch)
	}
	if maxTimers.Load() == 0 {
		t.Fatal("flush wheel never armed — the ack path did not engage")
	}
	// Every channel's ack must have flushed (no reverse data to ride here).
	for i := 0; i < nch; i++ {
		cs, _ := procs[1].lookupChannel(0, ChannelID(i+1))
		st := cs.Stats()
		if st.CtrlPiggybacked+st.CtrlStandalone == 0 {
			t.Fatalf("channel %d never sent its ack", i+1)
		}
	}
}

// ---------------------------------------------------------------------------
// Cross-channel control coalescing (tentpole layer 1)

// TestCrossChannelCoalesce runs data one way on a reliable channel and
// unrelated reverse traffic on a *sibling* channel to the same peer. The
// receiver's acknowledgements must ride the sibling's data frames
// (stamped with their owning channel), and the sender must route the
// foreign words back to the right discipline — the send side completes
// only if every cross-carried ack lands.
func TestCrossChannelCoalesce(t *testing.T) {
	const msgs = 200
	mem := transport.NewMem()
	procs := make([]*Proc, 2)
	for i := 0; i < 2; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
		procs[i] = New(Config{
			ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt),
			SendLanes: 4, RecvLanes: 4,
			RebalanceInterval: -1, // isolate coalescing from migration
		})
	}
	a0 := procs[0].Open(1, ChannelConfig{ID: 1, Error: NewGoBackN(8, 50*time.Millisecond)})
	a1 := procs[1].Open(0, ChannelConfig{ID: 1, Error: NewGoBackN(8, 50*time.Millisecond)})
	procs[0].Open(1, ChannelConfig{ID: 2})
	b1 := procs[1].Open(0, ChannelConfig{ID: 2})

	procs[0].OnException(func(error) {}) // trailing-ack give-up after peer exit
	procs[1].OnException(func(error) {})
	procs[0].TCreate("txA", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			a0.SendTagged(th, k, 0, []byte{byte(k)})
		}
	})
	procs[0].TCreate("rxB", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			m := th.recvMsgOn(2, Any, Any, 1)
			m.Release()
		}
	})
	procs[1].TCreate("fwd", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < msgs; k++ {
			m := th.recvMsgOn(1, Any, Any, 0)
			m.Release()
			// Reverse data on the *other* channel: the ack queued by the
			// arrival above should hitch a ride on this frame.
			b1.SendTagged(th, k, 1, []byte{byte(k)})
		}
	})
	runReal(procs)

	st := a1.Stats()
	if st.CtrlCoalesced == 0 {
		t.Fatalf("no acks rode the sibling channel (piggy %d standalone %d)",
			st.CtrlPiggybacked, st.CtrlStandalone)
	}
	t.Logf("receiver ack path: %d coalesced cross-channel, %d piggybacked total, %d standalone",
		st.CtrlCoalesced, st.CtrlPiggybacked, st.CtrlStandalone)
	ls := procs[1].LaneStats()
	var coal int64
	for _, l := range ls {
		coal += l.CtrlCoalesced
	}
	if coal != st.CtrlCoalesced {
		t.Fatalf("lane counters disagree with channel counters: %d vs %d", coal, st.CtrlCoalesced)
	}
}

// ---------------------------------------------------------------------------
// Hot-lane rebalancing (tentpole layer 3)

// TestHotLaneRebalance forces every channel onto lane 0 through a skewed
// Config.LaneHash, drives bursty reliable traffic with natural idle
// windows, and checks that the rebalancer migrates channels off the hot
// lane — while a concurrent goroutine hammers the stats surfaces (the
// migration-vs-stats race the -race runs verify) and an explicitly pinned
// channel stays put.
func TestHotLaneRebalance(t *testing.T) {
	const nch, rounds, burst = 8, 30, 10
	mem := transport.NewMem()
	procs := make([]*Proc, 2)
	for i := 0; i < 2; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
		procs[i] = New(Config{
			ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt),
			SendLanes: 4, RecvLanes: 4,
			LaneHash:          func(ProcID) int { return 0 }, // maximal skew
			RebalanceInterval: 200 * time.Microsecond,
		})
	}
	payload := make([]byte, 4096)
	chans := make([][2]*Channel, nch)
	for i := 0; i < nch; i++ {
		mk := func() ChannelConfig {
			return ChannelConfig{
				ID:    ChannelID(i + 1),
				Error: NewGoBackN(16, 50*time.Millisecond),
			}
		}
		chans[i] = [2]*Channel{procs[0].Open(1, mk()), procs[1].Open(0, mk())}
	}
	mkPin := func() ChannelConfig {
		return ChannelConfig{ID: 99, Lane: 2, Error: NewGoBackN(4, 50*time.Millisecond)}
	}
	pin0 := procs[0].Open(1, mkPin())
	procs[1].Open(0, mkPin())

	stop := make(chan struct{})
	go func() { // stats under migration: -race verifies the locking
		for {
			select {
			case <-stop:
				return
			default:
			}
			procs[0].LaneStats()
			for i := range chans {
				chans[i][0].Stats()
				chans[i][1].Stats()
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	procs[0].OnException(func(error) {})
	procs[1].OnException(func(error) {})
	order := make([][]int, nch)
	for i := 0; i < nch; i++ {
		i := i
		tx, rx := chans[i][0], chans[i][1]
		procs[0].TCreate(fmt.Sprintf("tx%d", i), mts.PrioDefault, func(th *Thread) {
			tag := 0
			for r := 0; r < rounds; r++ {
				for k := 0; k < burst; k++ {
					tx.SendTagged(th, tag, i, payload)
					tag++
				}
				// Wait for the receiver's echo: the idle window in which
				// the channel is migration-safe.
				m := th.recvMsgOn(tx.id, Any, Any, 1)
				m.Release()
			}
		})
		procs[1].TCreate(fmt.Sprintf("rx%d", i), mts.PrioDefault, func(th *Thread) {
			for r := 0; r < rounds; r++ {
				for k := 0; k < burst; k++ {
					m := th.recvMsgOn(rx.id, Any, Any, 0)
					order[i] = append(order[i], m.Tag)
					m.Release()
				}
				rx.SendTagged(th, r, i, nil)
			}
		})
	}
	procs[0].TCreate("pin", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < 20; k++ {
			pin0.SendTagged(th, k, nch, payload)
		}
	})
	procs[1].TCreate("pinrx", mts.PrioDefault, func(th *Thread) {
		for k := 0; k < 20; k++ {
			m := th.recvMsgOn(99, Any, Any, 0)
			m.Release()
		}
	})
	runReal(procs)
	close(stop)

	for i := 0; i < nch; i++ {
		if len(order[i]) != rounds*burst {
			t.Fatalf("channel %d: %d messages, want %d", i+1, len(order[i]), rounds*burst)
		}
		for k, tag := range order[i] {
			if tag != k {
				t.Fatalf("channel %d: position %d saw tag %d (FIFO broken across migration)", i+1, k, tag)
			}
		}
	}
	var out, in, steals int64
	for _, l := range procs[0].LaneStats() {
		out += l.MigratedOut
		in += l.MigratedIn
		steals += l.Steals
	}
	t.Logf("proc0 lanes: %d migrated out, %d in, %d via steal", out, in, steals)
	if out == 0 {
		t.Fatal("hot lane never shed a channel despite maximal skew")
	}
	if out != in {
		t.Fatalf("migration books unbalanced: %d out, %d in", out, in)
	}
	if want := procs[0].lanes[1]; pin0.laneOf() != want {
		t.Fatalf("pinned channel moved to lane %d", pin0.laneOf().idx)
	}
	if pin0.Stats().Migrations != 0 {
		t.Fatal("pinned channel recorded migrations")
	}
}

// ---------------------------------------------------------------------------
// Chaos: DRR weights + rebalancing under loss

// TestAdaptiveChaosLossy drives a priority (weight 6) and a bulk
// (weight 2) class — same priority level, so the weighted scheduler, not
// strict priority, shares the lane — through 20% frame loss with the
// rebalancer active and every channel hash-skewed onto lane 0, over three
// seeds. Go-back-N must deliver each class exactly-once in order, and the
// bulk class must keep at least half its weight share while the priority
// class saturates (the DRR starvation bound).
func TestAdaptiveChaosLossy(t *testing.T) {
	const msgs = 150
	for _, seed := range []int64{3, 41, 2026} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mem := transport.NewMem()
			mem.SetDropRate(0.20, seed)
			mem.SetDropClass(func(m *transport.Message) bool { return m.Channel >= 1 })
			procs := make([]*Proc, 2)
			for i := 0; i < 2; i++ {
				rt := mts.New(mts.Config{Name: fmt.Sprintf("node%d", i), IdleTimeout: 10 * time.Second})
				procs[i] = New(Config{
					ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt),
					SendLanes: 4, RecvLanes: 4,
					LaneHash:          func(ProcID) int { return 0 },
					RebalanceInterval: 500 * time.Microsecond,
				})
				procs[i].OnException(func(error) {})
			}
			mkCfg := func(id ChannelID, weight int) ChannelConfig {
				return ChannelConfig{
					ID: id, Priority: 5, Weight: weight,
					Error: NewGoBackN(8, 25*time.Millisecond),
				}
			}
			// arrivals interleaves both channels' tags per side; every
			// append runs in that side's scheduler domain (one thread at a
			// time), so the slice needs no lock.
			arrivals := [2][]ChannelID{}
			for side := 0; side < 2; side++ {
				side := side
				peer := ProcID(1 - side)
				prio := procs[side].Open(peer, mkCfg(1, 6))
				bulk := procs[side].Open(peer, mkCfg(2, 2))
				for ci, c := range []*Channel{prio, bulk} {
					ci, c := ci, c
					procs[side].TCreate(fmt.Sprintf("tx%d", ci), mts.PrioDefault, func(th *Thread) {
						for k := 0; k < msgs; k++ {
							c.SendTagged(th, k, 2*ci+1, []byte{byte(k)})
						}
					})
					procs[side].TCreate(fmt.Sprintf("rx%d", ci), mts.PrioDefault, func(th *Thread) {
						for k := 0; k < msgs; k++ {
							m := th.recvMsgOn(c.id, k, Any, peer)
							arrivals[side] = append(arrivals[side], m.Channel)
							m.Release()
						}
					})
				}
			}
			runReal(procs)
			if mem.Dropped() == 0 {
				t.Fatal("no loss injected — chaos proves nothing")
			}
			for side := 0; side < 2; side++ {
				got := arrivals[side]
				var nPrio, nBulk, bulkAtPrioDone int
				for _, ch := range got {
					if ch == 1 {
						nPrio++
						if nPrio == msgs {
							bulkAtPrioDone = nBulk
						}
					} else {
						nBulk++
					}
				}
				// recvMsgOn(k) enforces in-order tags; counts prove
				// exactly-once on top.
				if nPrio != msgs || nBulk != msgs {
					t.Fatalf("side %d: %d prio + %d bulk arrivals, want %d each", side, nPrio, nBulk, msgs)
				}
				// Starvation bound: by the time the priority class finished,
				// bulk must have kept at least half its weight share
				// (weight 2 of 8 → a quarter share → bound msgs/8).
				if bulkAtPrioDone < msgs/8 {
					t.Fatalf("side %d: bulk starved — only %d of %d delivered when the priority class finished (bound %d)",
						side, bulkAtPrioDone, msgs, msgs/8)
				}
				t.Logf("side %d: bulk had %d/%d through when prio finished", side, bulkAtPrioDone, msgs)
			}
		})
	}
}
