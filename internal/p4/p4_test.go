package p4

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/transport"
	"repro/internal/work"
)

// memGroup builds n real-mode p4 processes over a Mem transport.
func memGroup(t *testing.T, n int) (*transport.Mem, []*Process) {
	t.Helper()
	mem := transport.NewMem()
	procs := make([]*Process, n)
	for i := 0; i < n; i++ {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("p%d", i), IdleTimeout: 10 * time.Second})
		procs[i] = New(Config{ID: ProcID(i), RT: rt, Endpoint: mem.Attach(ProcID(i), rt)})
	}
	return mem, procs
}

func TestSendRecvTyped(t *testing.T) {
	_, procs := memGroup(t, 2)
	var got []byte
	var gotType int
	var gotFrom ProcID
	procs[0].Go(func(th *mts.Thread) {
		procs[0].Send(th, 42, 1, []byte("typed"))
	})
	procs[1].Go(func(th *mts.Thread) {
		typ, from := 42, ProcID(0)
		got = procs[1].Recv(th, &typ, &from)
		gotType, gotFrom = typ, from
	})
	(&Procgroup{Procs: procs}).RunReal()
	if string(got) != "typed" || gotType != 42 || gotFrom != 0 {
		t.Fatalf("got %q type %d from %d", got, gotType, gotFrom)
	}
}

func TestWildcardRecv(t *testing.T) {
	_, procs := memGroup(t, 3)
	received := map[ProcID]string{}
	for i := 1; i <= 2; i++ {
		i := i
		procs[i].Go(func(th *mts.Thread) {
			procs[i].Send(th, i*10, 0, []byte(fmt.Sprintf("from%d", i)))
		})
	}
	procs[0].Go(func(th *mts.Thread) {
		for k := 0; k < 2; k++ {
			typ, from := Any, ProcID(Any)
			data := procs[0].Recv(th, &typ, &from)
			received[from] = string(data)
			if typ != int(from)*10 {
				t.Errorf("type %d from %d", typ, from)
			}
		}
	})
	(&Procgroup{Procs: procs}).RunReal()
	if received[1] != "from1" || received[2] != "from2" {
		t.Fatalf("received %v", received)
	}
}

func TestTypeSelectiveRecv(t *testing.T) {
	// A typed recv must skip queued messages of other types.
	_, procs := memGroup(t, 2)
	var order []int
	procs[0].Go(func(th *mts.Thread) {
		procs[0].Send(th, 1, 1, []byte("low"))
		procs[0].Send(th, 2, 1, []byte("high"))
	})
	procs[1].Go(func(th *mts.Thread) {
		// Wait for both to be queued, then take type 2 first.
		for !procs[1].MessagesAvailable() {
			th.Yield()
		}
		typ := 2
		procs[1].Recv(th, &typ, nil)
		order = append(order, 2)
		typ = 1
		procs[1].Recv(th, &typ, nil)
		order = append(order, 1)
	})
	(&Procgroup{Procs: procs}).RunReal()
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestMessagesAvailable(t *testing.T) {
	_, procs := memGroup(t, 2)
	var before, after bool
	procs[1].Go(func(th *mts.Thread) {
		// Sample the empty state before green-lighting the sender: the
		// two runtimes run concurrently in real time, so without the
		// handshake the sends could land first.
		before = procs[1].MessagesAvailable()
		procs[1].Send(th, 2, 0, nil)
		procs[1].Recv(th, nil, nil)
		// Wait for the second message to be queued (delivery is
		// asynchronous), then probe it.
		for !procs[1].MessagesAvailable() {
			th.Yield()
		}
		after = procs[1].MessagesAvailable()
		procs[1].Recv(th, nil, nil)
	})
	procs[0].Go(func(th *mts.Thread) {
		procs[0].Recv(th, nil, nil) // green light
		procs[0].Send(th, 1, 1, []byte("a"))
		procs[0].Send(th, 1, 1, []byte("b"))
	})
	(&Procgroup{Procs: procs}).RunReal()
	if before {
		t.Fatal("MessagesAvailable true before any send")
	}
	if !after {
		t.Fatal("MessagesAvailable false with queued message")
	}
}

func TestNegativeTypePanics(t *testing.T) {
	_, procs := memGroup(t, 2)
	procs[1].Go(func(th *mts.Thread) {})
	procs[0].Go(func(th *mts.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("negative type accepted")
			}
		}()
		procs[0].Send(th, -5, 1, nil)
	})
	(&Procgroup{Procs: procs}).RunReal()
}

func TestRecvBlocksWholeProcess(t *testing.T) {
	// The defining baseline behaviour: while the single process thread is
	// in Recv, nothing else in that process runs (there is nothing else),
	// and in sim mode the node's CPU is idle.
	eng := sim.NewEngine()
	net := netsim.NewEthernetLAN(eng, 2, netsim.EthernetConfig{BitsPerSecond: 8e6})
	cost := tcpip.CostModel{MTU: 1460, PerMessage: time.Millisecond}
	var nodes [2]*sim.Node
	var procs [2]*Process
	for i := 0; i < 2; i++ {
		nodes[i] = eng.NewNode(fmt.Sprintf("n%d", i))
		ep := tcpip.NewSimTCP(nodes[i], net, i, cost)
		procs[i] = New(Config{ID: ProcID(i), RT: nodes[i].RT(), Endpoint: ep, Compute: work.Sim(nodes[i])})
	}
	procs[0].Go(func(th *mts.Thread) {
		// Delay, then send: the receiver's CPU must be idle meanwhile.
		procs[0].Compute(th, 100*time.Millisecond, nil)
		procs[0].Send(th, 1, 1, []byte("late"))
	})
	procs[1].Go(func(th *mts.Thread) {
		procs[1].Recv(th, nil, nil)
	})
	eng.Run()
	if nodes[1].BusyTime() != 0 {
		t.Fatalf("receiver burned %v CPU while blocked in recv", nodes[1].BusyTime())
	}
}

func TestBlockedRecvPenaltyCharged(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.NewEthernetLAN(eng, 2, netsim.EthernetConfig{BitsPerSecond: 8e6})
	cost := tcpip.CostModel{MTU: 1460}
	penalty := 30 * time.Millisecond
	var nodes [2]*sim.Node
	var procs [2]*Process
	for i := 0; i < 2; i++ {
		i := i
		nodes[i] = eng.NewNode(fmt.Sprintf("n%d", i))
		ep := tcpip.NewSimTCP(nodes[i], net, i, cost)
		procs[i] = New(Config{
			ID: ProcID(i), RT: nodes[i].RT(), Endpoint: ep, Compute: work.Sim(nodes[i]),
			BlockedRecvPenalty: func(t *mts.Thread) { nodes[i].Compute(t, penalty) },
		})
	}
	procs[0].Go(func(th *mts.Thread) {
		procs[0].Send(th, 1, 1, []byte("x"))
	})
	var recvDone time.Duration
	procs[1].Go(func(th *mts.Thread) {
		procs[1].Recv(th, nil, nil) // blocks -> penalty applies
		recvDone = time.Duration(eng.Now())
	})
	eng.Run()
	if recvDone < penalty {
		t.Fatalf("recv returned at %v, before the %v poll penalty", recvDone, penalty)
	}
}

func TestStats(t *testing.T) {
	_, procs := memGroup(t, 2)
	procs[0].Go(func(th *mts.Thread) {
		for i := 0; i < 3; i++ {
			procs[0].Send(th, 1, 1, nil)
		}
	})
	procs[1].Go(func(th *mts.Thread) {
		for i := 0; i < 3; i++ {
			procs[1].Recv(th, nil, nil)
		}
	})
	(&Procgroup{Procs: procs}).RunReal()
	if procs[0].Sends() != 3 || procs[1].Recvs() != 3 {
		t.Fatalf("sends=%d recvs=%d", procs[0].Sends(), procs[1].Recvs())
	}
}

func TestDoubleGoPanics(t *testing.T) {
	_, procs := memGroup(t, 1)
	procs[0].Go(func(th *mts.Thread) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Go accepted")
		}
	}()
	procs[0].Go(func(th *mts.Thread) {})
}
