// Package p4 reimplements the subset of Argonne's p4 message-passing
// library that the paper benchmarks against (Butler & Lusk; paper ref [8]):
// procgroup creation, typed blocking send/receive with -1 wildcards, and
// p4_messages_available.
//
// The defining property of the baseline is that a process is single-
// threaded: p4_recv blocks the *whole process*, so a workstation waiting
// for data computes nothing (Figure 16, upper half). NCS_MTS/p4 keeps
// exactly this library underneath and regains the lost time by
// multithreading above it.
//
// A p4 process here is one mts thread (the "process body") on its own
// runtime. Over the simulated TCP transport that reproduces 1995 blocking
// semantics in virtual time; over the Mem transport it runs for real.
package p4

import (
	"fmt"
	"time"

	"repro/internal/mts"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/work"
)

// Any is the p4 wildcard for type and source (-1).
const Any = transport.Any

// ProcID aliases the transport process identifier.
type ProcID = transport.ProcID

// Config assembles a Process.
type Config struct {
	// ID is the process identity; must match Endpoint.Proc().
	ID ProcID
	// RT is the process's thread runtime.
	RT *mts.Runtime
	// Endpoint carries messages.
	Endpoint transport.Endpoint
	// Compute executes application work (sim: charge cost; real: run fn).
	Compute work.Compute
	// RecvCharge, if set, is the CPU cost of pulling an n-byte message out
	// of the protocol stack, charged to the receiving thread at consume
	// time. The sim harness wires this to the TCP cost model.
	RecvCharge func(t *mts.Thread, n int)
	// BlockedRecvPenalty, if set, runs after a Recv that had to block,
	// before the data is returned. It models p4's receive discovery
	// latency: p4_recv polls its sockets (select with timeout + backoff),
	// so a message is noticed some fraction of a poll quantum after it
	// arrives. NCS avoids this cost structurally — its receive system
	// thread is woken by the transport — which is part of what Tables 1-3
	// measure.
	BlockedRecvPenalty func(t *mts.Thread)
	// Tracer, if set, records this process's activity timeline under
	// TraceName.
	Tracer    *trace.Recorder
	TraceName string
}

// Process is one p4 process.
type Process struct {
	cfg  Config
	body *mts.Thread

	queue   []*transport.Message
	waiting *recvWait

	sends, recvs int64
}

type recvWait struct {
	t        *mts.Thread
	wantTag  int
	wantFrom ProcID
	got      *transport.Message
}

// New creates a p4 process and hooks its endpoint. The process body is
// started by Go(); this mirrors p4_initenv + p4_create_procgroup splitting
// setup from execution.
func New(cfg Config) *Process {
	if cfg.Endpoint.Proc() != cfg.ID {
		panic(fmt.Sprintf("p4: id %d != endpoint proc %d", cfg.ID, cfg.Endpoint.Proc()))
	}
	if cfg.Compute == nil {
		cfg.Compute = work.Real()
	}
	p := &Process{cfg: cfg}
	cfg.Endpoint.SetHandler(p.deliver)
	return p
}

// ID returns the process identity.
func (p *Process) ID() ProcID { return p.cfg.ID }

// RT returns the process runtime.
func (p *Process) RT() *mts.Runtime { return p.cfg.RT }

// Sends returns the number of messages sent.
func (p *Process) Sends() int64 { return p.sends }

// Recvs returns the number of messages received.
func (p *Process) Recvs() int64 { return p.recvs }

// Go starts the process body (the single p4 "program").
func (p *Process) Go(body func(t *mts.Thread)) {
	if p.body != nil {
		panic("p4: process already started")
	}
	p.body = p.cfg.RT.Create(fmt.Sprintf("p4-proc%d", p.cfg.ID), mts.PrioDefault, func(t *mts.Thread) {
		p.setTrace(trace.Compute)
		body(t)
		p.setTrace(trace.Idle)
		p.closeTrace()
	})
}

func (p *Process) setTrace(s trace.State) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Set(p.cfg.TraceName, s)
	}
}

func (p *Process) closeTrace() {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Close(p.cfg.TraceName)
	}
}

// Send transmits data with a p4 message type to another process; the
// paper's p4_send. It blocks the process until the stack accepts the whole
// message (blocking socket write).
func (p *Process) Send(t *mts.Thread, typ int, to ProcID, data []byte) {
	if typ < 0 {
		panic("p4: negative message type is reserved for wildcards")
	}
	p.setTrace(trace.Comm)
	p.cfg.Endpoint.Send(t, &transport.Message{
		From: p.cfg.ID,
		To:   to,
		Tag:  typ,
		Data: data,
	})
	p.sends++
	p.setTrace(trace.Compute)
}

// Recv receives the next message matching (*typ, *from), where either may
// be Any (-1); the paper's p4_recv. On return *typ and *from hold the
// actual type and source. The whole process blocks while waiting — this is
// the baseline behaviour the paper improves on.
func (p *Process) Recv(t *mts.Thread, typ *int, from *ProcID) []byte {
	wantTag, wantFrom := Any, ProcID(Any)
	if typ != nil {
		wantTag = *typ
	}
	if from != nil {
		wantFrom = *from
	}
	var m *transport.Message
	if i := p.match(wantTag, wantFrom); i >= 0 {
		m = p.queue[i]
		p.queue = append(p.queue[:i], p.queue[i+1:]...)
	} else {
		if p.waiting != nil {
			panic("p4: concurrent Recv on a single-threaded process")
		}
		w := &recvWait{t: t, wantTag: wantTag, wantFrom: wantFrom}
		p.waiting = w
		p.setTrace(trace.Idle) // blocked process: the CPU sits idle
		t.Park("p4 recv")
		m = w.got
		if p.cfg.BlockedRecvPenalty != nil {
			p.cfg.BlockedRecvPenalty(t)
		}
	}
	// Pull the message through the protocol stack (copy to user space).
	p.setTrace(trace.Comm)
	if p.cfg.RecvCharge != nil {
		p.cfg.RecvCharge(t, len(m.Data)+transport.HeaderSize)
	}
	p.setTrace(trace.Compute)
	if typ != nil {
		*typ = m.Tag
	}
	if from != nil {
		*from = m.From
	}
	p.recvs++
	return m.Data
}

// MessagesAvailable reports whether a receive would complete immediately;
// the paper's p4_messages_available.
func (p *Process) MessagesAvailable() bool { return len(p.queue) > 0 }

// Compute runs application work through the mode hook, tracing it.
func (p *Process) Compute(t *mts.Thread, cost time.Duration, fn func()) {
	p.setTrace(trace.Compute)
	p.cfg.Compute(t, cost, fn)
}

func (p *Process) match(tag int, from ProcID) int {
	for i, m := range p.queue {
		if (tag == Any || m.Tag == tag) && (from == Any || m.From == from) {
			return i
		}
	}
	return -1
}

// deliver runs in the scheduler domain when a message arrives.
func (p *Process) deliver(m *transport.Message) {
	if w := p.waiting; w != nil &&
		(w.wantTag == Any || m.Tag == w.wantTag) &&
		(w.wantFrom == ProcID(Any) || m.From == w.wantFrom) {
		p.waiting = nil
		w.got = m
		p.cfg.RT.Unblock(w.t, false)
		return
	}
	p.queue = append(p.queue, m)
}

// Procgroup is a convenience for building and running a host+nodes group,
// the way p4_create_procgroup sets up the paper's benchmarks.
type Procgroup struct {
	Procs []*Process
}

// RunReal drives every process's runtime in its own goroutine and waits;
// only for real-time transports. Sim-mode groups are driven by the engine.
func (g *Procgroup) RunReal() {
	done := make(chan struct{}, len(g.Procs))
	for _, p := range g.Procs {
		p := p
		go func() {
			p.cfg.RT.Run()
			done <- struct{}{}
		}()
	}
	for range g.Procs {
		<-done
	}
}
