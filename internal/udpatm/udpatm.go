// Package udpatm is the real-mode ATM emulation: NCS messages are chunked
// into AAL5 CPCS-PDUs, segmented into genuine 53-octet ATM cells
// (internal/atm), and carried between processes in UDP datagrams on the
// loopback interface — one datagram per AAL5 frame, datagram payload being
// the frame's cells laid end to end.
//
// This substitutes for the paper's FORE SBA-200 + ATM switch fabric: the
// cell framing, HEC protection, per-VC reassembly and CRC-32 verification
// all execute exactly as they would on the adapter; only the physical
// layer is a UDP socket instead of a TAXI transceiver. Chunk framing and
// message reassembly are delegated to internal/wire, and the send path
// runs entirely on pooled buffers recycled once the kernel has copied each
// datagram.
package udpatm

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/atm"
	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/wire"
)

// VCFor mirrors internal/netsim's conventional VC numbering so traces from
// both fabrics read the same: VPI 0, VCI = 64 + src*256 + dst.
func VCFor(src, dst transport.ProcID) atm.VC {
	return atm.VC{VPI: 0, VCI: uint16(64 + int(src)*256 + int(dst))}
}

// MaxChunk is the message payload carried per AAL5 frame. The frame's
// cells (MaxChunk/48 · 53 bytes ≈ 9 KB) stay well under the UDP datagram
// limit.
const MaxChunk = 8192 - wire.ChunkHeaderSize

// Network is a mesh of UDP endpoints on loopback.
type Network struct {
	mu        sync.Mutex
	endpoints map[transport.ProcID]*Endpoint
}

// NewNetwork returns an empty mesh.
func NewNetwork() *Network {
	return &Network{endpoints: make(map[transport.ProcID]*Endpoint)}
}

// Endpoint is one process's ATM-over-UDP attachment.
type Endpoint struct {
	net  *Network
	proc transport.ProcID
	rt   *mts.Runtime
	conn *net.UDPConn

	mu      sync.Mutex
	handler transport.Handler
	seq     uint32

	// Receive-side state, touched only by the reader goroutine: per-VC
	// cell reassembly (AAL5 frames) feeding per-VC chunk assembly
	// (messages). Both tiers reuse grow-once buffers.
	reasm map[atm.VC]*atm.Reassembler
	asm   map[atm.VC]*wire.Assembler

	cellsSent int64
	cellsRecv int64
	badCells  int64

	closed chan struct{}
}

// Attach creates an endpoint for proc bound to an ephemeral loopback port.
// Deliveries are Posted into rt's scheduler domain.
func (n *Network) Attach(proc transport.ProcID, rt *mts.Runtime) (*Endpoint, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("udpatm: listen: %w", err)
	}
	// A large message bursts its AAL5 frames back to back (a 1 MB send is
	// ~130 × 9 KB datagrams); size the socket buffers so the kernel can
	// absorb the burst instead of silently dropping frames. The kernel
	// caps these at net.core.{r,w}mem_max — beyond that the fabric is
	// genuinely lossy, which is what NCS error control exists for.
	conn.SetReadBuffer(8 << 20)
	conn.SetWriteBuffer(4 << 20)
	e := &Endpoint{
		net:    n,
		proc:   proc,
		rt:     rt,
		conn:   conn,
		reasm:  make(map[atm.VC]*atm.Reassembler),
		asm:    make(map[atm.VC]*wire.Assembler),
		closed: make(chan struct{}),
	}
	n.mu.Lock()
	if _, dup := n.endpoints[proc]; dup {
		n.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("udpatm: duplicate proc %d", proc)
	}
	n.endpoints[proc] = e
	n.mu.Unlock()
	go e.readLoop()
	return e, nil
}

// Close shuts the endpoint's socket and reader down.
func (e *Endpoint) Close() error {
	select {
	case <-e.closed:
		return nil
	default:
	}
	close(e.closed)
	return e.conn.Close()
}

// Proc implements transport.Endpoint.
func (e *Endpoint) Proc() transport.ProcID { return e.proc }

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// CellsSent returns transmitted cell count.
func (e *Endpoint) CellsSent() int64 { return e.cellsSent }

// CellsReceived returns received cell count.
func (e *Endpoint) CellsReceived() int64 { return e.cellsRecv }

// BadCells returns cells rejected by HEC or reassembly checks.
func (e *Endpoint) BadCells() int64 { return e.badCells }

// addrOf resolves a peer's UDP address.
func (e *Endpoint) addrOf(p transport.ProcID) *net.UDPAddr {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if peer, ok := e.net.endpoints[p]; ok {
		return peer.conn.LocalAddr().(*net.UDPAddr)
	}
	return nil
}

// Send implements transport.Endpoint: the message is chunked, each chunk
// segmented into AAL5 cells, and each frame's cells written as one UDP
// datagram. Loopback writes complete quickly, so the calling thread is not
// parked; real network pacing would park here. The marshal, chunk, and
// datagram buffers all come from the wire pool and are recycled as soon as
// the kernel has copied the final datagram.
func (e *Endpoint) Send(t *mts.Thread, m *transport.Message) {
	if m.From != e.proc {
		panic(fmt.Sprintf("udpatm: proc %d sending as %d", e.proc, m.From))
	}
	dst := e.addrOf(m.To)
	if dst == nil {
		panic(fmt.Sprintf("udpatm: unknown destination proc %d", m.To))
	}
	e.mu.Lock()
	e.seq++
	m.Seq = e.seq
	e.mu.Unlock()

	wb := wire.GetBuf(m.WireSize())
	wb.B = m.MarshalAppend(wb.B)
	vc := VCFor(m.From, m.To)
	ck := wire.NewChunker(wb.B, m.Seq, MaxChunk)
	cb := wire.GetBuf(wire.ChunkHeaderSize + MaxChunk)
	db := wire.GetBuf(atm.CellCount(wire.ChunkHeaderSize+MaxChunk) * atm.CellSize)
	for {
		chunk, ok := ck.Next(cb.B[:0])
		if !ok {
			break
		}
		dgram, err := atm.AppendCells(db.B[:0], vc, chunk)
		if err != nil {
			panic("udpatm: segment: " + err.Error())
		}
		e.cellsSent += int64(len(dgram) / atm.CellSize)
		if _, err := e.conn.WriteToUDP(dgram, dst); err != nil {
			panic("udpatm: write: " + err.Error())
		}
	}
	wire.PutBuf(db)
	wire.PutBuf(cb)
	wire.PutBuf(wb)
}

// readLoop receives datagrams, validates and reassembles cells, and posts
// completed messages into the runtime.
func (e *Endpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
				return // socket broke; nothing sensible to do
			}
		}
		if n%atm.CellSize != 0 {
			e.badCells++
			continue
		}
		for off := 0; off < n; off += atm.CellSize {
			cell, err := atm.DecodeCell(buf[off : off+atm.CellSize])
			if err != nil {
				e.badCells++
				continue
			}
			e.cellsRecv++
			e.pushCell(cell)
		}
	}
}

// pushCell runs per validated cell: AAL5 reassembly per VC, then chunk
// assembly per VC; a completed message is decoded (copying its payload out
// of the reused assembly buffer) and posted into the runtime.
func (e *Endpoint) pushCell(cell atm.Cell) {
	vc := cell.Header.VC()
	r := e.reasm[vc]
	if r == nil {
		r = atm.NewReassembler(vc)
		e.reasm[vc] = r
	}
	chunk, done, err := r.Push(cell)
	if err != nil {
		e.badCells++
		return
	}
	if !done {
		return
	}
	a := e.asm[vc]
	if a == nil {
		a = &wire.Assembler{}
		e.asm[vc] = a
	}
	msgWire, done, err := a.Push(chunk)
	if err != nil {
		e.badCells++
		return
	}
	if !done {
		return
	}
	m, err := transport.Unmarshal(msgWire)
	if err != nil {
		e.badCells++
		return
	}
	e.rt.Post(func() {
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			h(m)
		}
	})
}
