// Package udpatm is the real-mode ATM emulation: NCS messages are chunked
// into AAL5 CPCS-PDUs, segmented into genuine 53-octet ATM cells
// (internal/atm), and carried between processes in UDP datagrams on the
// loopback interface. A datagram's payload is cells laid end to end: one
// AAL5 frame when traffic is sparse, or a *cell train* — consecutive
// queued frames of the same VC coalesced up to the emulated MTU — when a
// burst is in flight, so a burst costs one syscall per train instead of
// one per frame (AAL5 end-of-frame cells delimit the frames inside).
//
// This substitutes for the paper's FORE SBA-200 + ATM switch fabric: the
// cell framing, HEC protection, per-VC reassembly and CRC-32 verification
// all execute exactly as they would on the adapter; only the physical
// layer is a UDP socket instead of a TAXI transceiver. Chunk framing and
// message reassembly are delegated to internal/wire, and the send path
// runs entirely on pooled buffers recycled once the kernel has copied each
// datagram.
package udpatm

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/atm"
	"repro/internal/list"
	"repro/internal/mts"
	"repro/internal/transport"
	"repro/internal/wire"
)

// VCFor mirrors internal/netsim's conventional VC numbering so traces from
// both fabrics read the same: VPI 0, VCI = 64 + src*256 + dst.
func VCFor(src, dst transport.ProcID) atm.VC {
	return atm.VC{VPI: 0, VCI: uint16(64 + int(src)*256 + int(dst))}
}

// VCForChan maps an NCS channel onto its own VC, mirroring
// netsim.VCForChan: the channel ID becomes the VPI over the same VCI mesh.
// Channel 0 is identical to VCFor.
func VCForChan(src, dst transport.ProcID, ch wire.ChannelID) atm.VC {
	return atm.VC{VPI: uint8(ch), VCI: uint16(64 + int(src)*256 + int(dst))}
}

// MaxChunk is the message payload carried per AAL5 frame. The frame's
// cells (MaxChunk/48 · 53 bytes ≈ 9 KB) stay well under the UDP datagram
// limit.
const MaxChunk = 8192 - wire.ChunkHeaderSize

// Network is a mesh of UDP endpoints on loopback.
type Network struct {
	mu        sync.Mutex
	endpoints map[transport.ProcID]*Endpoint
}

// NewNetwork returns an empty mesh.
func NewNetwork() *Network {
	return &Network{endpoints: make(map[transport.ProcID]*Endpoint)}
}

// vcTx is one VC's transmit queue: AAL5 frames (each one UDP datagram)
// awaiting the writer, the VC's drain priority, and the optional GCRA
// policer enforcing the VC's traffic contract at the emulated UNI.
type vcTx struct {
	vc   atm.VC
	prio int
	gcra *atm.GCRA
	dst  *net.UDPAddr

	frames list.FIFO[*wire.Buf]

	cellsSent int64
	policed   int64
}

// Endpoint is one process's ATM-over-UDP attachment.
type Endpoint struct {
	net  *Network
	proc transport.ProcID
	rt   *mts.Runtime
	conn *net.UDPConn

	mu      sync.Mutex
	handler transport.Handler
	seq     uint32

	// Transmit side: per-VC queues drained by a single writer goroutine,
	// highest priority first (FIFO within a VC). NCS channels map onto
	// VCs (channel ID = VPI), so a channel's priority and traffic
	// contract are enforced here, at the cell layer. Send blocks once
	// maxQueuedFrames are outstanding (spaceCond) — the backpressure the
	// old synchronous write loop provided implicitly — and Close drains
	// the queues before closing the socket (writerDone).
	txMu       sync.Mutex
	txCond     *sync.Cond // work available
	spaceCond  *sync.Cond // queue space available
	queues     []*vcTx    // creation order; stable tie-break for equal priority
	txByVC     map[atm.VC]*vcTx
	queued     int // frames across all VC queues
	txClosed   bool
	writerDone chan struct{}
	epoch      time.Time // GCRA clock origin
	// linkClock emulates the cell clock of the physical link a real
	// adapter would pace cells onto (nominal TAXI rate): it advances one
	// cell time per transmitted cell, and GCRA conformance is judged at
	// each cell's modeled departure — not at the datagram burst instant —
	// mirroring nic.SimATM. Touched only by the writer goroutine.
	linkClock time.Duration

	// Receive-side state, touched only by the reader goroutine: per-VC
	// cell reassembly (AAL5 frames) feeding per-VC chunk assembly
	// (messages). Both tiers reuse grow-once buffers.
	reasm map[atm.VC]*atm.Reassembler
	asm   map[atm.VC]*wire.Assembler

	// Receive-side fault injection (guarded by mu): each arriving datagram
	// — one AAL5 frame, data or control alike — is dropped independently
	// with rxDropRate probability from the seeded generator, emulating a
	// lossy fabric beyond what GCRA policing at the UNI produces. Chaos
	// tests use it to prove NCS flow/error control recover end to end.
	rxDropRate float64
	rxDropRNG  *rand.Rand
	rxDropped  int64
	// blackhole, while set, drops every arriving frame (SetBlackhole).
	blackhole bool

	cellsSent int64 // guarded by txMu (writer updates, accessors read)
	cellsRecv int64
	badCells  int64

	// Cell-train accounting (guarded by txMu): datagrams that carried more
	// than one AAL5 frame, the total frames they carried, and the largest
	// train in cells.
	trains      int64
	trainFrames int64
	maxTrain    int64

	closed chan struct{}
}

// Attach creates an endpoint for proc bound to an ephemeral loopback port.
// Deliveries are Posted into rt's scheduler domain.
func (n *Network) Attach(proc transport.ProcID, rt *mts.Runtime) (*Endpoint, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("udpatm: listen: %w", err)
	}
	// A large message bursts its AAL5 frames back to back (a 1 MB send is
	// ~130 × 9 KB datagrams); size the socket buffers so the kernel can
	// absorb the burst instead of silently dropping frames. The kernel
	// caps these at net.core.{r,w}mem_max — beyond that the fabric is
	// genuinely lossy, which is what NCS error control exists for.
	conn.SetReadBuffer(8 << 20)
	conn.SetWriteBuffer(4 << 20)
	e := &Endpoint{
		net:        n,
		proc:       proc,
		rt:         rt,
		conn:       conn,
		txByVC:     make(map[atm.VC]*vcTx),
		writerDone: make(chan struct{}),
		epoch:      time.Now(),
		reasm:      make(map[atm.VC]*atm.Reassembler),
		asm:        make(map[atm.VC]*wire.Assembler),
		closed:     make(chan struct{}),
	}
	e.txCond = sync.NewCond(&e.txMu)
	e.spaceCond = sync.NewCond(&e.txMu)
	n.mu.Lock()
	if _, dup := n.endpoints[proc]; dup {
		n.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("udpatm: duplicate proc %d", proc)
	}
	n.endpoints[proc] = e
	n.mu.Unlock()
	go e.readLoop()
	go e.writeLoop()
	return e, nil
}

// Close shuts the endpoint's socket and reader down.
func (e *Endpoint) Close() error {
	select {
	case <-e.closed:
		return nil
	default:
	}
	close(e.closed)
	e.txMu.Lock()
	e.txClosed = true
	e.txCond.Broadcast()
	e.spaceCond.Broadcast()
	e.txMu.Unlock()
	// Drain before closing the socket: every frame Send accepted is
	// written (the guarantee the old synchronous write loop gave).
	<-e.writerDone
	return e.conn.Close()
}

// Proc implements transport.Endpoint.
func (e *Endpoint) Proc() transport.ProcID { return e.proc }

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// SetRecvDropRate makes the endpoint drop each arriving AAL5 frame (one
// UDP datagram) independently with the given probability, using a
// deterministic seed; rate 0 disables loss. Loss is frame-level and
// class-blind — data, credits, and acks all die alike, which is exactly
// the regime the cumulative-credit flow protocol and the error-control
// tier exist to survive.
func (e *Endpoint) SetRecvDropRate(rate float64, seed int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rxDropRate = rate
	e.rxDropRNG = rand.New(rand.NewSource(seed))
}

// RecvDropped returns how many arriving frames fault injection discarded.
func (e *Endpoint) RecvDropped() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rxDropped
}

// SetBlackhole toggles receive-side blackholing: while set, every arriving
// AAL5 frame is dropped (and counted in RecvDropped) before reassembly —
// the receive half of a crashed or partitioned host for chaos tests over
// the real UDP carrier.
func (e *Endpoint) SetBlackhole(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.blackhole = on
}

// dropArrival decides fault injection for one arriving frame.
func (e *Endpoint) dropArrival() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.blackhole {
		e.rxDropped++
		return true
	}
	if e.rxDropRate <= 0 || e.rxDropRNG.Float64() >= e.rxDropRate {
		return false
	}
	e.rxDropped++
	return true
}

// CellsSent returns transmitted cell count.
func (e *Endpoint) CellsSent() int64 {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	return e.cellsSent
}

// TrainStats reports cell-train coalescing: how many datagrams carried
// more than one AAL5 frame, the total frames those trains carried, and the
// largest train seen (in cells). A single-frame datagram is not a train.
func (e *Endpoint) TrainStats() (trains, frames, maxCells int64) {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	return e.trains, e.trainFrames, e.maxTrain
}

// CellsReceived returns received cell count.
func (e *Endpoint) CellsReceived() int64 { return e.cellsRecv }

// BadCells returns cells rejected by HEC or reassembly checks.
func (e *Endpoint) BadCells() int64 { return e.badCells }

// addrOf resolves a peer's UDP address.
func (e *Endpoint) addrOf(p transport.ProcID) *net.UDPAddr {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if peer, ok := e.net.endpoints[p]; ok {
		return peer.conn.LocalAddr().(*net.UDPAddr)
	}
	return nil
}

// ConfigureChannel sets the drain priority (0..7, higher drained first)
// and optional GCRA traffic contract of the VC that carries NCS channel ch
// toward dst. Call before traffic flows on the channel; cells beyond the
// contract are discarded at the emulated UNI (drop policy) — a frame that
// loses a cell fails AAL5 CRC at the receiver, exactly the loss the NCS
// error-control tier recovers.
func (e *Endpoint) ConfigureChannel(dst transport.ProcID, ch wire.ChannelID, prio int, g *atm.GCRA) {
	e.ConfigureVC(VCForChan(e.proc, dst, ch), prio, g)
}

// ConfigureVC is ConfigureChannel for an explicit VC.
func (e *Endpoint) ConfigureVC(vc atm.VC, prio int, g *atm.GCRA) {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	q := e.queue(vc)
	q.prio = prio
	q.gcra = g
}

// BindChannel implements transport.ChannelRouter. The UDP fabric has no
// switch tables to program — the per-VC transmit queue materializes lazily
// on first send — so connecting a signaled call needs no work here.
func (e *Endpoint) BindChannel(peer transport.ProcID, ch wire.ChannelID) {}

// UnbindChannel implements transport.ChannelRouter: a released call's
// transmit queue is dropped so channel churn cannot accrete per-VC state.
// Only the transmit side is touched (under txMu); receive-side reassembly
// state belongs to the reader goroutine and is bounded by the VC space,
// not by churn. The queue is left in place if frames are still pending —
// the writer drains every accepted frame (the Close guarantee), and a
// reused channel ID maps back onto the same VC anyway.
func (e *Endpoint) UnbindChannel(peer transport.ProcID, ch wire.ChannelID) {
	if ch == 0 {
		return
	}
	vc := VCForChan(e.proc, peer, ch)
	e.txMu.Lock()
	defer e.txMu.Unlock()
	q, ok := e.txByVC[vc]
	if !ok || q.frames.Size() > 0 {
		return
	}
	delete(e.txByVC, vc)
	for i, x := range e.queues {
		if x == q {
			e.queues = append(e.queues[:i], e.queues[i+1:]...)
			break
		}
	}
}

// VCStats reports a transmit VC's accounting: cells handed to the kernel
// and cells discarded by the VC's policer.
func (e *Endpoint) VCStats(vc atm.VC) (cellsSent, policed int64) {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	if q, ok := e.txByVC[vc]; ok {
		return q.cellsSent, q.policed
	}
	return 0, 0
}

// queue returns vc's transmit queue, creating it at default priority.
// Callers hold txMu.
func (e *Endpoint) queue(vc atm.VC) *vcTx {
	q, ok := e.txByVC[vc]
	if !ok {
		q = &vcTx{vc: vc}
		e.txByVC[vc] = q
		e.queues = append(e.queues, q)
	}
	return q
}

// Send implements transport.Endpoint: the message is chunked, each chunk
// segmented into AAL5 cells, and each frame is filed in its VC's transmit
// queue — the VC the message's channel rides. A single writer drains the
// queues highest-priority first, policing each VC's cells against its GCRA
// contract, and coalesces consecutive frames of one VC into a single
// cell-train datagram. The message is fully serialized into pooled frame
// buffers before Send returns, so the caller may reuse m and m.Data; the
// buffers recycle once the kernel has copied each datagram.
func (e *Endpoint) Send(t *mts.Thread, m *transport.Message) {
	dst := e.addrOf(m.To)
	if dst == nil {
		panic(fmt.Sprintf("udpatm: unknown destination proc %d", m.To))
	}
	e.enqueueFrames(m, dst)
}

// SendBatch implements transport.BatchSender: the destination resolves
// once for the whole same-destination run, and the burst's frames land in
// the VC queues back to back, which is what lets the writer goroutine form
// long cell trains.
func (e *Endpoint) SendBatch(t *mts.Thread, ms []*transport.Message) {
	if len(ms) == 0 {
		return
	}
	dst := e.addrOf(ms[0].To)
	if dst == nil {
		panic(fmt.Sprintf("udpatm: unknown destination proc %d", ms[0].To))
	}
	for _, m := range ms {
		if m.To != ms[0].To {
			panic("udpatm: SendBatch run mixes destinations")
		}
		e.enqueueFrames(m, dst)
	}
}

// enqueueFrames serializes one message into AAL5 frames on its VC's
// transmit queue; the shared body of Send and SendBatch.
func (e *Endpoint) enqueueFrames(m *transport.Message, dst *net.UDPAddr) {
	if m.From != e.proc {
		panic(fmt.Sprintf("udpatm: proc %d sending as %d", e.proc, m.From))
	}
	e.mu.Lock()
	e.seq++
	m.Seq = e.seq
	e.mu.Unlock()

	wb := wire.GetBuf(m.WireSize())
	wb.B = m.MarshalAppend(wb.B)
	vc := VCForChan(m.From, m.To, m.Channel)
	ck := wire.NewChunker(wb.B, m.Seq, MaxChunk)
	cb := wire.GetBuf(wire.ChunkHeaderSize + MaxChunk)
	e.txMu.Lock()
	q := e.queue(vc)
	q.dst = dst
	for {
		chunk, ok := ck.Next(cb.B[:0])
		if !ok {
			break
		}
		// Backpressure: past the high-water mark the producer waits for
		// the writer, pacing senders the way the old synchronous write
		// loop did implicitly.
		for e.queued >= maxQueuedFrames && !e.txClosed {
			e.spaceCond.Wait()
		}
		if e.txClosed {
			// The writer is gone; accepting frames would silently lose
			// them. Fail as loudly as the old write-to-closed-socket
			// path did.
			e.txMu.Unlock()
			wire.PutBuf(cb)
			wire.PutBuf(wb)
			panic(fmt.Sprintf("udpatm: proc %d Send after Close", e.proc))
		}
		fb := wire.GetBuf(atm.CellCount(len(chunk)) * atm.CellSize)
		dgram, err := atm.AppendCells(fb.B, vc, chunk)
		if err != nil {
			e.txMu.Unlock()
			panic("udpatm: segment: " + err.Error())
		}
		fb.B = dgram
		q.frames.Push(fb)
		e.queued++
		e.txCond.Signal()
	}
	e.txMu.Unlock()
	wire.PutBuf(cb)
	wire.PutBuf(wb)
}

// maxQueuedFrames bounds frames outstanding across all VC transmit queues
// (~2 MB of 8 KB AAL5 frames); past it Send waits for the writer.
const maxQueuedFrames = 256

// maxTrainBytes bounds one cell-train datagram: consecutive AAL5 frames of
// one VC are laid end to end (cells back to back) in a single UDP datagram
// up to this size — the emulated MTU of the UDP "physical layer". It stays
// under both the 64 KB read buffer and the UDP payload ceiling. Receivers
// need no train awareness: AAL5 end-of-frame cells delimit frames inside
// the train exactly as on a real link.
const maxTrainBytes = 60 * 1024

// nominalLinkBps is the modeled physical-link rate the GCRA departure
// clock paces cells at: the 140 Mbps TAXI interface of the paper's
// testbed. cellWireTime is one 53-octet cell's serialization time on it.
const nominalLinkBps = 140e6

var cellWireTime = time.Duration(atm.CellSize * 8 * int64(time.Second) / int64(nominalLinkBps))

// pickQueue returns the highest-priority non-empty transmit queue
// (creation order breaks ties). Callers hold txMu.
func (e *Endpoint) pickQueue() *vcTx {
	var best *vcTx
	for _, q := range e.queues {
		if q.frames.Size() > 0 && (best == nil || q.prio > best.prio) {
			best = q
		}
	}
	return best
}

// writeLoop is the single transmit drain: it services per-VC queues in
// priority order, applies each VC's GCRA policer cell by cell, and writes
// each surviving frame as one UDP datagram. It exits — signalling
// writerDone — only once the endpoint is closed *and* the queues are
// drained, so Close never loses accepted frames.
func (e *Endpoint) writeLoop() {
	defer close(e.writerDone)
	e.txMu.Lock()
	for {
		q := e.pickQueue()
		if q == nil {
			if e.txClosed {
				e.txMu.Unlock()
				return
			}
			e.txCond.Wait()
			continue
		}
		fb := q.frames.Pop()
		e.queued--
		e.spaceCond.Signal()
		// Cell train: coalesce consecutive frames of this VC into one
		// MTU-bounded datagram. The cells ride back to back exactly as a
		// real adapter would clock them out, AAL5 end-of-frame markers
		// keep the frame boundaries, and the per-cell GCRA judgement
		// below is unchanged — only the syscall count shrinks.
		framesInTrain := int64(1)
		for q.frames.Size() > 0 && len(fb.B)+len(q.frames.Peek().B) <= maxTrainBytes {
			nb := q.frames.Pop()
			e.queued--
			e.spaceCond.Signal()
			fb.B = append(fb.B, nb.B...)
			wire.PutBuf(nb)
			framesInTrain++
		}
		if framesInTrain > 1 {
			e.trains++
			e.trainFrames += framesInTrain
			if cells := int64(len(fb.B) / atm.CellSize); cells > e.maxTrain {
				e.maxTrain = cells
			}
		}
		gcra := q.gcra
		dst := q.dst
		e.txMu.Unlock()

		dgram := fb.B
		kept := len(dgram) / atm.CellSize
		dropped := 0
		if gcra != nil {
			// UPC: compact conforming cells forward, discard the rest.
			// Each cell is judged at its modeled wire departure on the
			// nominal link — cells of one datagram leave one cell time
			// apart, so a contract at or above the link's own cell rate
			// conforms exactly (mirrors nic.SimATM's departure clock).
			now := time.Since(e.epoch)
			if e.linkClock < now {
				e.linkClock = now
			}
			w := 0
			for off := 0; off+atm.CellSize <= len(dgram); off += atm.CellSize {
				depart := e.linkClock
				e.linkClock += cellWireTime
				if !gcra.Conforms(depart) {
					dropped++
					continue
				}
				if w != off {
					copy(dgram[w:w+atm.CellSize], dgram[off:off+atm.CellSize])
				}
				w += atm.CellSize
			}
			dgram = dgram[:w]
			kept = w / atm.CellSize
		}
		if len(dgram) > 0 {
			if _, err := e.conn.WriteToUDP(dgram, dst); err != nil {
				select {
				case <-e.closed:
					wire.PutBuf(fb)
					e.txMu.Lock()
					continue
				default:
					panic("udpatm: write: " + err.Error())
				}
			}
		}
		wire.PutBuf(fb)

		e.txMu.Lock()
		q.cellsSent += int64(kept)
		q.policed += int64(dropped)
		e.cellsSent += int64(kept)
	}
}

// readLoop receives datagrams, validates and reassembles cells, and posts
// completed messages into the runtime.
func (e *Endpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
				return // socket broke; nothing sensible to do
			}
		}
		if n%atm.CellSize != 0 {
			e.badCells++
			continue
		}
		if e.dropArrival() {
			continue
		}
		for off := 0; off < n; off += atm.CellSize {
			cell, err := atm.DecodeCell(buf[off : off+atm.CellSize])
			if err != nil {
				e.badCells++
				continue
			}
			e.cellsRecv++
			e.pushCell(cell)
		}
	}
}

// pushCell runs per validated cell: AAL5 reassembly per VC, then chunk
// assembly per VC; a completed message is decoded (copying its payload out
// of the reused assembly buffer) and posted into the runtime.
func (e *Endpoint) pushCell(cell atm.Cell) {
	vc := cell.Header.VC()
	r := e.reasm[vc]
	if r == nil {
		r = atm.NewReassembler(vc)
		e.reasm[vc] = r
	}
	chunk, done, err := r.Push(cell)
	if err != nil {
		e.badCells++
		return
	}
	if !done {
		return
	}
	a := e.asm[vc]
	if a == nil {
		a = &wire.Assembler{}
		e.asm[vc] = a
	}
	msgWire, done, err := a.Push(chunk)
	if err != nil {
		e.badCells++
		return
	}
	if !done {
		return
	}
	// Copy the completed message out of the reused assembly buffer into a
	// pooled frame that travels with it; the consumer recycles it
	// (RecvInto, control handlers), so the reassembly tail stops feeding
	// the allocator.
	fb := wire.GetBuf(len(msgWire))
	fb.B = append(fb.B, msgWire...)
	m, err := wire.UnmarshalPooled(fb)
	if err != nil {
		wire.PutBuf(fb)
		e.badCells++
		return
	}
	e.rt.Post(func() {
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			h(m)
		}
	})
}
