package udpatm

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func newRT(name string) *mts.Runtime {
	return mts.New(mts.Config{Name: name, IdleTimeout: 10 * time.Second})
}

func TestPingPongOverUDP(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, err := net.Attach(0, rtA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := net.Attach(1, rtB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	var reply []byte
	var waiterA, serverB *mts.Thread
	var inbound *transport.Message
	epA.SetHandler(func(m *transport.Message) {
		reply = m.Data
		rtA.Unblock(waiterA, false)
	})
	epB.SetHandler(func(m *transport.Message) {
		inbound = m
		rtB.Unblock(serverB, false)
	})

	serverB = rtB.Create("server", mts.PrioDefault, func(th *mts.Thread) {
		if inbound == nil {
			th.Park("request")
		}
		data := append(append([]byte{}, inbound.Data...), []byte("-pong")...)
		epB.Send(th, &transport.Message{From: 1, To: 0, Data: data})
	})
	waiterA = rtA.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Data: []byte("ping")})
		if reply == nil {
			th.Park("reply")
		}
	})

	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if string(reply) != "ping-pong" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestLargeMessageManyCells(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, _ := net.Attach(0, rtA)
	defer epA.Close()
	epB, _ := net.Attach(1, rtB)
	defer epB.Close()
	epA.SetHandler(func(m *transport.Message) {})

	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	var waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) {
		got = m.Data
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil { // guard: delivery may beat the park
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Data: payload})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted over UDP/ATM")
	}
	// 100 KB through 48-byte cell payloads: expect > 2000 cells.
	if epA.CellsSent() < int64(len(payload)/atm.PayloadSize) {
		t.Fatalf("cells sent = %d, implausibly few", epA.CellsSent())
	}
	if epB.CellsReceived() != epA.CellsSent() {
		t.Fatalf("cells recv %d != sent %d", epB.CellsReceived(), epA.CellsSent())
	}
	if epB.BadCells() != 0 {
		t.Fatalf("%d bad cells on loopback", epB.BadCells())
	}
}

func TestNCSOverUDPATM(t *testing.T) {
	// Full stack: NCS procs exchanging over real AAL5 cells on loopback.
	net := NewNetwork()
	var procs [2]*core.Proc
	var eps [2]*Endpoint
	for i := 0; i < 2; i++ {
		rt := newRT("n")
		ep, err := net.Attach(transport.ProcID(i), rt)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: ep})
	}
	var sum int
	procs[0].TCreate("send", mts.PrioDefault, func(th *core.Thread) {
		for k := 1; k <= 5; k++ {
			th.Send(0, 1, []byte{byte(k)})
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < 5; k++ {
			data, _ := th.Recv(core.Any, core.Any)
			sum += int(data[0])
		}
	})
	done := make(chan struct{}, 2)
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	<-done
	<-done
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func TestDuplicateProcRejected(t *testing.T) {
	net := NewNetwork()
	rt := newRT("x")
	ep, err := net.Attach(7, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := net.Attach(7, rt); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestVCForMatchesNetsimConvention(t *testing.T) {
	vc := VCFor(2, 3)
	if vc.VPI != 0 || vc.VCI != 64+2*256+3 {
		t.Fatalf("vc = %+v", vc)
	}
}

func TestCloseIdempotent(t *testing.T) {
	net := NewNetwork()
	ep, _ := net.Attach(1, newRT("x"))
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal("second close errored")
	}
}
