package udpatm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

func newRT(name string) *mts.Runtime {
	return mts.New(mts.Config{Name: name, IdleTimeout: 10 * time.Second})
}

func TestPingPongOverUDP(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, err := net.Attach(0, rtA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := net.Attach(1, rtB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	var reply []byte
	var waiterA, serverB *mts.Thread
	var inbound *transport.Message
	epA.SetHandler(func(m *transport.Message) {
		reply = m.Data
		rtA.Unblock(waiterA, false)
	})
	epB.SetHandler(func(m *transport.Message) {
		inbound = m
		rtB.Unblock(serverB, false)
	})

	serverB = rtB.Create("server", mts.PrioDefault, func(th *mts.Thread) {
		if inbound == nil {
			th.Park("request")
		}
		data := append(append([]byte{}, inbound.Data...), []byte("-pong")...)
		epB.Send(th, &transport.Message{From: 1, To: 0, Data: data})
	})
	waiterA = rtA.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Data: []byte("ping")})
		if reply == nil {
			th.Park("reply")
		}
	})

	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if string(reply) != "ping-pong" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestLargeMessageManyCells(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, _ := net.Attach(0, rtA)
	defer epA.Close()
	epB, _ := net.Attach(1, rtB)
	defer epB.Close()
	epA.SetHandler(func(m *transport.Message) {})

	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	var waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) {
		got = m.Data
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil { // guard: delivery may beat the park
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Data: payload})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted over UDP/ATM")
	}
	// 100 KB through 48-byte cell payloads: expect > 2000 cells.
	if epA.CellsSent() < int64(len(payload)/atm.PayloadSize) {
		t.Fatalf("cells sent = %d, implausibly few", epA.CellsSent())
	}
	if epB.CellsReceived() != epA.CellsSent() {
		t.Fatalf("cells recv %d != sent %d", epB.CellsReceived(), epA.CellsSent())
	}
	if epB.BadCells() != 0 {
		t.Fatalf("%d bad cells on loopback", epB.BadCells())
	}
}

func TestNCSOverUDPATM(t *testing.T) {
	// Full stack: NCS procs exchanging over real AAL5 cells on loopback.
	net := NewNetwork()
	var procs [2]*core.Proc
	var eps [2]*Endpoint
	for i := 0; i < 2; i++ {
		rt := newRT("n")
		ep, err := net.Attach(transport.ProcID(i), rt)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: ep})
	}
	var sum int
	procs[0].TCreate("send", mts.PrioDefault, func(th *core.Thread) {
		for k := 1; k <= 5; k++ {
			th.Send(0, 1, []byte{byte(k)})
		}
	})
	procs[1].TCreate("recv", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < 5; k++ {
			data, _ := th.Recv(core.Any, core.Any)
			sum += int(data[0])
		}
	})
	done := make(chan struct{}, 2)
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	<-done
	<-done
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func TestDuplicateProcRejected(t *testing.T) {
	net := NewNetwork()
	rt := newRT("x")
	ep, err := net.Attach(7, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := net.Attach(7, rt); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestVCForMatchesNetsimConvention(t *testing.T) {
	vc := VCFor(2, 3)
	if vc.VPI != 0 || vc.VCI != 64+2*256+3 {
		t.Fatalf("vc = %+v", vc)
	}
	cvc := VCForChan(2, 3, 9)
	if cvc.VPI != 9 || cvc.VCI != vc.VCI {
		t.Fatalf("channel vc = %+v", cvc)
	}
	if VCForChan(2, 3, 0) != vc {
		t.Fatal("channel 0 must ride the default VC")
	}
}

// TestChannelRidesOwnVCOverUDP: a nonzero-channel message reassembles on
// its own VC and the per-VC accounting sees it there, not on the default
// mesh.
func TestChannelRidesOwnVCOverUDP(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, _ := net.Attach(0, rtA)
	defer epA.Close()
	epB, _ := net.Attach(1, rtB)
	defer epB.Close()
	epA.SetHandler(func(m *transport.Message) {})

	var got *transport.Message
	var waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) {
		got = m
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil {
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Channel: 6, Data: make([]byte, 20000)})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if got == nil || got.Channel != 6 || len(got.Data) != 20000 {
		t.Fatalf("channel-6 message not delivered intact: %+v", got)
	}
	if cells, _ := epA.VCStats(VCForChan(0, 1, 6)); cells == 0 {
		t.Fatal("no cells accounted on the channel's VC")
	}
	if cells, _ := epA.VCStats(VCFor(0, 1)); cells != 0 {
		t.Fatalf("%d cells leaked onto the default VC", cells)
	}
}

// TestConformingContractOverUDP: a contract at the nominal link's own
// cell rate must pass a full frame burst untouched — conformance is
// judged at each cell's modeled wire departure, not at the datagram
// burst instant.
func TestConformingContractOverUDP(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, _ := net.Attach(0, rtA)
	defer epA.Close()
	epB, _ := net.Attach(1, rtB)
	defer epB.Close()
	epA.SetHandler(func(m *transport.Message) {})

	// ~330k cells/s is the 140 Mbps link's own cell rate; a small burst
	// tolerance suffices because departures are paced by the link clock.
	epA.ConfigureChannel(1, 8, 0, atm.NewGCRA(400000, 4))
	var got *transport.Message
	var waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) {
		got = m
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil {
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Channel: 8, Data: make([]byte, 20000)})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if _, policed := epA.VCStats(VCForChan(0, 1, 8)); policed != 0 {
		t.Fatalf("conforming traffic policed: %d cells", policed)
	}
	if got == nil || len(got.Data) != 20000 {
		t.Fatal("conforming message not delivered intact")
	}
}

// TestPolicedChannelOverUDP: a channel whose traffic exceeds its GCRA
// contract loses cells at the emulated UNI; a conforming message on the
// default VC sails through untouched.
func TestPolicedChannelOverUDP(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, _ := net.Attach(0, rtA)
	defer epA.Close()
	epB, _ := net.Attach(1, rtB)
	defer epB.Close()
	epA.SetHandler(func(m *transport.Message) {})

	// 100 cells/s with a 2-cell burst: a 20 KB burst (400+ cells back to
	// back) is mostly non-conforming.
	epA.ConfigureChannel(1, 4, 5, atm.NewGCRA(100, 2))

	var gotDefault *transport.Message
	var gotPoliced bool
	var waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) {
		if m.Channel == 4 {
			gotPoliced = true
			return
		}
		gotDefault = m
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if gotDefault == nil {
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		// The policed burst first (its VC has higher priority, so the
		// writer drains it before the default frame below).
		epA.Send(th, &transport.Message{From: 0, To: 1, Channel: 4, Data: make([]byte, 20000)})
		epA.Send(th, &transport.Message{From: 0, To: 1, Data: []byte("conforming")})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if gotDefault == nil || string(gotDefault.Data) != "conforming" {
		t.Fatalf("default-channel message lost: %+v", gotDefault)
	}
	if _, policed := epA.VCStats(VCForChan(0, 1, 4)); policed == 0 {
		t.Fatal("policer never fired on the over-contract channel")
	}
	if gotPoliced {
		t.Fatal("over-contract message survived cell-level policing intact")
	}
}

// TestWindowRecoveryOverPolicedUDP is the real-mode chaos variant of the
// credit protocol test: a windowed go-back-N channel runs over genuine
// AAL5 cells with its VC GCRA-policed at both emulated UNIs (bursts beyond
// the contract lose cells, so whole frames fail CRC) *and* seeded random
// frame loss at both receivers — destroying data, credit advertisements,
// and acks alike. Nothing is protected; the cumulative-credit protocol
// plus the window-sync timer must keep the window open until every
// message lands.
func TestWindowRecoveryOverPolicedUDP(t *testing.T) {
	const (
		chID = 3
		n    = 60
	)
	net := NewNetwork()
	var procs [2]*core.Proc
	var eps [2]*Endpoint
	for i := 0; i < 2; i++ {
		rt := newRT(fmt.Sprintf("n%d", i))
		ep, err := net.Attach(transport.ProcID(i), rt)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		procs[i] = core.New(core.Config{ID: core.ProcID(i), RT: rt, Endpoint: ep})
		procs[i].OnException(func(error) {}) // trailing-ack give-up after peer exit
	}
	// A contract tight enough that go-back-N's full-window retransmission
	// bursts (8 × ~7 cells back to back) overrun it, plus 25% random frame
	// loss on both receive sides.
	eps[0].ConfigureChannel(1, chID, 0, atm.NewGCRA(5e4, 30))
	eps[1].ConfigureChannel(0, chID, 0, atm.NewGCRA(5e4, 30))
	eps[0].SetRecvDropRate(0.25, 7)
	eps[1].SetRecvDropRate(0.25, 8)

	mkWin := func() *core.WindowFlow {
		w := core.NewWindowFlow(4)
		w.SyncInterval = 5 * time.Millisecond
		return w
	}
	ch0 := procs[0].Open(1, core.ChannelConfig{ID: chID, Flow: mkWin(), Error: core.NewGoBackN(8, 15*time.Millisecond)})
	ch1 := procs[1].Open(0, core.ChannelConfig{ID: chID, Flow: mkWin(), Error: core.NewGoBackN(8, 15*time.Millisecond)})
	flow0 := ch0.Flow().(*core.WindowFlow)

	procs[0].TCreate("send", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < n; k++ {
			// Fresh buffer per message: go-back-N's retransmission copies
			// alias Data, so the application must not recycle it.
			payload := make([]byte, 256)
			payload[0] = byte(k)
			ch0.Send(th, 0, payload)
			if out := flow0.Outstanding(); out > 4 {
				t.Errorf("window violated: %d outstanding", out)
			}
		}
	})
	var got []int
	procs[1].TCreate("recv", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < n; k++ {
			data, _ := ch1.Recv(th, core.Any)
			got = append(got, int(data[0]))
		}
	})
	done := make(chan struct{}, 2)
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	<-done
	<-done

	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: %v", i, got)
		}
	}
	if eps[0].RecvDropped()+eps[1].RecvDropped() == 0 {
		t.Fatal("fault injection never dropped a frame — test proves nothing")
	}
	_, policed0 := eps[0].VCStats(VCForChan(0, 1, chID))
	t.Logf("drops: rx %d+%d frames, %d cells policed at the sender UNI; %d retransmissions",
		eps[0].RecvDropped(), eps[1].RecvDropped(), policed0,
		ch0.Error().(*core.GoBackN).Retransmissions())
}

func TestCloseIdempotent(t *testing.T) {
	net := NewNetwork()
	ep, _ := net.Attach(1, newRT("x"))
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

// TestCellTrainsCoalesce: a burst of AAL5 frames queued on one VC must
// leave as cell-train datagrams (several frames per syscall) and still
// reassemble into the exact original message — the train is a wire-layout
// no-op because AAL5 end-of-frame cells delimit the frames inside it.
func TestCellTrainsCoalesce(t *testing.T) {
	net := NewNetwork()
	rtA, rtB := newRT("a"), newRT("b")
	epA, err := net.Attach(0, rtA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := net.Attach(1, rtB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	// A 512 KB message spans ~64 AAL5 frames queued back to back on one
	// VC: exactly the burst shape the writer coalesces.
	payload := make([]byte, 512*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	var waiter *mts.Thread
	epB.SetHandler(func(m *transport.Message) {
		got = m.Data
		rtB.Unblock(waiter, false)
	})
	epA.SetHandler(func(m *transport.Message) {})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil { // guard: delivery may beat the park
			th.Park("msg")
		}
	})
	rtA.Create("send", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &transport.Message{From: 0, To: 1, Data: payload})
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done

	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes", len(got))
	}
	trains, frames, maxCells := epA.TrainStats()
	if trains == 0 {
		t.Fatal("no cell trains formed for a 64-frame burst")
	}
	if frames <= trains {
		t.Fatalf("trains carried %d frames over %d trains — no coalescing", frames, trains)
	}
	if maxCells*53 > 60*1024 {
		t.Fatalf("train of %d cells exceeds the MTU bound", maxCells)
	}
	t.Logf("cell trains: %d trains carried %d frames (largest %d cells)", trains, frames, maxCells)
}
