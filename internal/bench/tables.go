package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/fft"
	"repro/internal/apps/jpegpipe"
	"repro/internal/apps/matmul"
)

// Calibration constants. Per-operation compute costs are fitted ONLY to
// the paper's 1-node columns (Tables 1 and 3) or, for JPEG which has no
// 1-node column, to the 2-node p4 rows; all other cells are model output.
// EXPERIMENTS.md records the paper-vs-measured comparison cell by cell.
const (
	// Table 1: 128×128 matmul. 1-node p4 times: 25.77 s (Ethernet ELC),
	// 24.89 s (NYNET IPX); 128³ = 2,097,152 multiply-adds.
	MatmulDim        = 128
	matmulOps        = MatmulDim * MatmulDim * MatmulDim
	matmulOpEthernet = time.Duration(25_770_000_000 / matmulOps)
	matmulOpNYNET    = time.Duration(24_890_000_000 / matmulOps)
	// Table 3: DIF FFT, M=512, 8 sets. 1-node p4: 5.76 s / 5.25 s;
	// 512·log2(512)·8 = 36,864 element updates.
	FFTPoints     = 512
	FFTSets       = 8
	fftUpdates    = FFTPoints * 9 * FFTSets
	fftOpEthernet = time.Duration(5_760_000_000 / fftUpdates)
	fftOpNYNET    = time.Duration(5_250_000_000 / fftUpdates)
	// Table 2: JPEG pipeline on a 600 KB image (960×640 = 614,400 px).
	// No 1-node column; per-pixel costs fitted to the 2-node p4 rows
	// (10.721 s Ethernet, 6.248 s NYNET).
	JPEGW              = 960
	JPEGH              = 640
	jpegCompEthernet   = 5000 * time.Nanosecond
	jpegDecompEthernet = 3900 * time.Nanosecond
	jpegCompNYNET      = 3300 * time.Nanosecond
	jpegDecompNYNET    = 2600 * time.Nanosecond
	jpegMasterPerByte  = 200 * time.Nanosecond
	jpegQuality        = 75
	// jpegModelRatio approximates the codec's compressed/raw ratio for
	// continuous-tone content when the real codec is not run.
	jpegModelRatio = 0.15
)

func matmulOp(pl Platform) time.Duration {
	if pl.ATM {
		return matmulOpNYNET
	}
	return matmulOpEthernet
}

func fftOp(pl Platform) time.Duration {
	if pl.ATM {
		return fftOpNYNET
	}
	return fftOpEthernet
}

func jpegCfg(pl Platform, workers int) jpegpipe.Config {
	cfg := jpegpipe.Config{
		W: JPEGW, H: JPEGH,
		Workers:       workers,
		Quality:       jpegQuality,
		MasterPerByte: jpegMasterPerByte,
		ModelRatio:    jpegModelRatio,
	}
	if pl.ATM {
		cfg.CompressPerPixel = jpegCompNYNET
		cfg.DecompressPerPixel = jpegDecompNYNET
	} else {
		cfg.CompressPerPixel = jpegCompEthernet
		cfg.DecompressPerPixel = jpegDecompEthernet
	}
	return cfg
}

// Row is one line of a reproduction table.
type Row struct {
	Nodes       int
	P4          float64 // seconds
	NCS         float64 // seconds
	Improvement float64 // percent, (P4-NCS)/P4
}

func improvement(p4s, ncss float64) float64 {
	if p4s == 0 {
		return 0
	}
	return (p4s - ncss) / p4s * 100
}

// --- Table 1: matrix multiplication -----------------------------------

// MatmulP4 runs the Figure 13 program and returns the host's elapsed time.
func MatmulP4(pl Platform, workers int) float64 {
	cfg := matmul.Config{Dim: MatmulDim, Workers: workers, OpCost: matmulOp(pl), Seed: 1}
	if workers == 1 {
		// 1-node row: the whole computation on one workstation.
		c, procs := NewP4Cluster(pl, 1, false)
		res := matmul.BuildSequential(procs[0], cfg)
		c.Eng.Run()
		return res.Elapsed.Seconds()
	}
	c, procs := NewP4Cluster(pl, workers+1, false)
	res := matmul.BuildP4(procs, cfg)
	c.Eng.Run()
	return res.Elapsed.Seconds()
}

// MatmulNCS runs the Figure 14 program (2 threads per process).
func MatmulNCS(pl Platform, workers int) float64 {
	cfg := matmul.Config{Dim: MatmulDim, Workers: workers, OpCost: matmulOp(pl), Seed: 1}
	if workers == 1 {
		// The paper's 1-node NCS row is the sequential run plus thread
		// maintenance overhead (it is slightly *slower* than p4).
		c, procs := NewP4Cluster(pl, 1, false)
		cfg2 := cfg
		cfg2.OpCost = cfg.OpCost + cfg.OpCost/300 // scheduler upkeep
		res := matmul.BuildSequential(procs[0], cfg2)
		c.Eng.Run()
		return res.Elapsed.Seconds()
	}
	c, procs := NewNCSCluster(pl, workers+1, false, false)
	res := matmul.BuildNCS(procs, cfg, 2)
	c.Eng.Run()
	return res.Elapsed.Seconds()
}

// Table1 regenerates Table 1 for one platform.
func Table1(pl Platform, nodeCounts []int) []Row {
	var rows []Row
	for _, n := range nodeCounts {
		p4s := MatmulP4(pl, n)
		ncss := MatmulNCS(pl, n)
		rows = append(rows, Row{Nodes: n, P4: p4s, NCS: ncss, Improvement: improvement(p4s, ncss)})
	}
	return rows
}

// --- Table 2: JPEG pipeline -------------------------------------------

// JPEGP4 runs the single-threaded pipeline.
func JPEGP4(pl Platform, workers int) float64 {
	c, procs := NewP4Cluster(pl, workers+1, false)
	res := jpegpipe.BuildP4(procs, jpegCfg(pl, workers))
	c.Eng.Run()
	return res.Elapsed.Seconds()
}

// JPEGNCS runs the two-thread pipeline.
func JPEGNCS(pl Platform, workers int) float64 {
	c, procs := NewNCSCluster(pl, workers+1, false, false)
	res := jpegpipe.BuildNCS(procs, jpegCfg(pl, workers))
	c.Eng.Run()
	return res.Elapsed.Seconds()
}

// Table2 regenerates Table 2 for one platform.
func Table2(pl Platform, nodeCounts []int) []Row {
	var rows []Row
	for _, n := range nodeCounts {
		p4s := JPEGP4(pl, n)
		ncss := JPEGNCS(pl, n)
		rows = append(rows, Row{Nodes: n, P4: p4s, NCS: ncss, Improvement: improvement(p4s, ncss)})
	}
	return rows
}

// --- Table 3: FFT -------------------------------------------------------

// FFTP4 runs the Figure 19 program.
func FFTP4(pl Platform, workers int) float64 {
	cfg := fft.Config{M: FFTPoints, Sets: FFTSets, Workers: workers, OpCost: fftOp(pl), Seed: 1}
	if workers == 1 {
		c, procs := NewP4Cluster(pl, 1, false)
		res := fft.BuildSequential(procs[0], cfg)
		c.Eng.Run()
		return res.Elapsed.Seconds()
	}
	c, procs := NewP4Cluster(pl, workers+1, false)
	res := fft.BuildP4(procs, cfg)
	c.Eng.Run()
	return res.Elapsed.Seconds()
}

// FFTNCS runs the Figure 20/21 program (2 threads per node).
func FFTNCS(pl Platform, workers int) float64 {
	cfg := fft.Config{M: FFTPoints, Sets: FFTSets, Workers: workers, OpCost: fftOp(pl), Seed: 1}
	if workers == 1 {
		c, procs := NewP4Cluster(pl, 1, false)
		cfg2 := cfg
		cfg2.OpCost = cfg.OpCost + cfg.OpCost/75 // thread upkeep
		res := fft.BuildSequential(procs[0], cfg2)
		c.Eng.Run()
		return res.Elapsed.Seconds()
	}
	c, procs := NewNCSCluster(pl, workers+1, false, false)
	res := fft.BuildNCS(procs, cfg)
	c.Eng.Run()
	return res.Elapsed.Seconds()
}

// Table3 regenerates Table 3 for one platform.
func Table3(pl Platform, nodeCounts []int) []Row {
	var rows []Row
	for _, n := range nodeCounts {
		p4s := FFTP4(pl, n)
		ncss := FFTNCS(pl, n)
		rows = append(rows, Row{Nodes: n, P4: p4s, NCS: ncss, Improvement: improvement(p4s, ncss)})
	}
	return rows
}

// --- Rendering -----------------------------------------------------------

// PaperRow holds the published numbers for side-by-side comparison.
type PaperRow struct {
	Nodes   int
	P4, NCS float64 // seconds; 0 = not reported ("-")
}

// Paper values (Tables 1-3).
var (
	PaperTable1Ethernet = []PaperRow{{1, 25.77, 25.85}, {2, 16.89, 13.72}, {4, 10.64, 7.88}, {8, 5.90, 4.62}}
	PaperTable1NYNET    = []PaperRow{{1, 24.89, 25.03}, {2, 14.4, 11.51}, {4, 7.52, 5.41}}
	PaperTable2Ethernet = []PaperRow{{2, 10.721, 9.037}, {4, 15.325, 8.849}, {8, 17.343, 6.541}}
	PaperTable2NYNET    = []PaperRow{{2, 6.248, 4.837}, {4, 10.154, 4.074}}
	PaperTable3Ethernet = []PaperRow{{1, 5.76, 5.84}, {2, 5.09, 4.76}, {4, 4.58, 4.32}, {8, 3.91, 3.47}}
	PaperTable3NYNET    = []PaperRow{{1, 5.25, 5.32}, {2, 3.65, 3.34}, {4, 2.72, 2.43}}
)

// RenderTable formats measured rows beside the paper's numbers.
func RenderTable(title string, rows []Row, paper []PaperRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s  %10s %10s %8s   %10s %10s %8s\n",
		"Nodes", "p4(model)", "NCS(model)", "impr%", "p4(paper)", "NCS(paper)", "impr%")
	for _, r := range rows {
		var pp *PaperRow
		for i := range paper {
			if paper[i].Nodes == r.Nodes {
				pp = &paper[i]
			}
		}
		fmt.Fprintf(&b, "%-6d  %10.2f %10.2f %7.1f%%", r.Nodes, r.P4, r.NCS, r.Improvement)
		if pp != nil && pp.P4 > 0 {
			fmt.Fprintf(&b, "   %10.2f %10.2f %7.1f%%\n", pp.P4, pp.NCS, improvement(pp.P4, pp.NCS))
		} else {
			fmt.Fprintf(&b, "   %10s %10s %8s\n", "-", "-", "-")
		}
	}
	return b.String()
}
