package bench

import (
	"fmt"
	"testing"

	"repro/internal/atm"
	"repro/internal/wire"
)

// BenchmarkWireCodec measures the shared framing hot path in isolation so
// future PRs have a before/after number that is independent of the
// scheduler and the transports: marshal → chunk → (optionally AAL5 cell
// packing) → reassemble → unmarshal, all on pooled buffers.
func BenchmarkWireCodec(b *testing.B) {
	sizes := []int{64, 1024, 4096, 65536}

	b.Run("frame", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
				m := &wire.Message{From: 0, To: 1, Data: make([]byte, size)}
				var a wire.Assembler
				wb := wire.GetBuf(m.WireSize())
				cb := wire.GetBuf(8192)
				defer wire.PutBuf(wb)
				defer wire.PutBuf(cb)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Seq++
					wb.B = m.MarshalAppend(wb.B[:0])
					ck := wire.NewChunker(wb.B, m.Seq, 8192-wire.ChunkHeaderSize)
					for {
						chunk, ok := ck.Next(cb.B[:0])
						if !ok {
							break
						}
						msg, done, err := a.Push(chunk)
						if err != nil {
							b.Fatal(err)
						}
						if done && len(msg) != m.WireSize() {
							b.Fatalf("reassembled %d bytes, want %d", len(msg), m.WireSize())
						}
					}
				}
			})
		}
	})

	b.Run("frame+cells", func(b *testing.B) {
		vc := atm.VC{VCI: 64}
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
				m := &wire.Message{From: 0, To: 1, Data: make([]byte, size)}
				wb := wire.GetBuf(m.WireSize())
				cb := wire.GetBuf(8192)
				db := wire.GetBuf(atm.CellCount(8192) * atm.CellSize)
				defer wire.PutBuf(wb)
				defer wire.PutBuf(cb)
				defer wire.PutBuf(db)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Seq++
					wb.B = m.MarshalAppend(wb.B[:0])
					ck := wire.NewChunker(wb.B, m.Seq, 8192-wire.ChunkHeaderSize)
					for {
						chunk, ok := ck.Next(cb.B[:0])
						if !ok {
							break
						}
						dgram, err := atm.AppendCells(db.B[:0], vc, chunk)
						if err != nil {
							b.Fatal(err)
						}
						_ = dgram
					}
				}
			})
		}
	})

	b.Run("unmarshal", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
				m := &wire.Message{From: 0, To: 1, Data: make([]byte, size)}
				frame := m.Marshal()
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := wire.Unmarshal(frame); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}
