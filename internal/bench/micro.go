package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/vclock"
)

// Message-size microbenchmark: one-way latency and sustained bandwidth of
// the two NCS tiers on the NYNET platform, swept over message sizes. The
// paper reports no such table, but it is the standard way to see where
// Approach 2's savings live: the fixed trap-vs-socket gap dominates small
// messages, the 3-vs-5-access copy path dominates large ones.

// MicroRow is one message size.
type MicroRow struct {
	Bytes      int
	NSMLatency time.Duration
	HSMLatency time.Duration
	NSMMBps    float64
	HSMMBps    float64
}

// burstMsgs is the message count for the bandwidth half of the sweep.
const burstMsgs = 16

// microRun measures one (tier, size) cell: one-way latency of a single
// message, then delivery time of a pipelined burst.
func microRun(hsm bool, size int) (lat time.Duration, mbps float64) {
	pl := NYNET1995()
	c, procs := NewNCSCluster(pl, 2, hsm, false)
	var first, last vclock.Time
	procs[0].TCreate("src", mts.PrioDefault, func(t *core.Thread) {
		t.Send(0, 1, make([]byte, size))
		for k := 0; k < burstMsgs; k++ {
			t.Send(0, 1, make([]byte, size))
		}
	})
	procs[1].TCreate("dst", mts.PrioDefault, func(t *core.Thread) {
		t.Recv(core.Any, core.Any)
		first = c.Eng.Now()
		for k := 0; k < burstMsgs; k++ {
			t.Recv(core.Any, core.Any)
		}
		last = c.Eng.Now()
	})
	c.Eng.Run()
	lat = time.Duration(first)
	burst := time.Duration(last - first)
	if burst > 0 {
		mbps = float64(size*burstMsgs) / burst.Seconds() / 1e6
	}
	return lat, mbps
}

// MicroSweep runs both tiers across the sizes.
func MicroSweep(sizes []int) []MicroRow {
	var rows []MicroRow
	for _, size := range sizes {
		nl, nb := microRun(false, size)
		hl, hb := microRun(true, size)
		rows = append(rows, MicroRow{Bytes: size, NSMLatency: nl, HSMLatency: hl, NSMMBps: nb, HSMMBps: hb})
	}
	return rows
}

// RenderMicro formats the sweep.
func RenderMicro(rows []MicroRow) string {
	var b strings.Builder
	b.WriteString("Microbenchmark — NCS one-way latency and bandwidth by tier (NYNET model)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %12s %12s\n", "size", "NSM latency", "HSM latency", "NSM MB/s", "HSM MB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %14v %14v %12.2f %12.2f\n",
			r.Bytes, r.NSMLatency.Round(time.Microsecond), r.HSMLatency.Round(time.Microsecond), r.NSMMBps, r.HSMMBps)
	}
	return b.String()
}
