package bench

import (
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Fatalf("%s = %.3f, want %.3f ±%.0f%%", what, got, want, tol*100)
	}
}

func TestCalibration1NodeRows(t *testing.T) {
	// The calibrated cells must match the paper essentially exactly —
	// they are fits, and a drift means the cost plumbing changed.
	approx(t, MatmulP4(Ethernet1995(), 1), 25.77, 0.01, "matmul p4 eth 1-node")
	approx(t, MatmulP4(NYNET1995(), 1), 24.89, 0.01, "matmul p4 nynet 1-node")
	approx(t, FFTP4(Ethernet1995(), 1), 5.76, 0.01, "fft p4 eth 1-node")
	approx(t, FFTP4(NYNET1995(), 1), 5.25, 0.01, "fft p4 nynet 1-node")
}

func TestOneNodeNCSSlightlySlower(t *testing.T) {
	// The paper's 1-node NCS rows carry thread-maintenance overhead.
	for _, pl := range []Platform{Ethernet1995(), NYNET1995()} {
		if MatmulNCS(pl, 1) <= MatmulP4(pl, 1) {
			t.Fatalf("%s: 1-node NCS not slower than p4", pl.Name)
		}
		if FFTNCS(pl, 1) <= FFTP4(pl, 1) {
			t.Fatalf("%s: 1-node FFT NCS not slower than p4", pl.Name)
		}
	}
}

func TestJPEGCalibration2Node(t *testing.T) {
	// JPEG per-pixel costs were fitted to the 2-node p4 rows; allow a
	// looser band since communication is part of the cell.
	approx(t, JPEGP4(Ethernet1995(), 2), 10.721, 0.10, "jpeg p4 eth 2-node")
	approx(t, JPEGP4(NYNET1995(), 2), 6.248, 0.12, "jpeg p4 nynet 2-node")
}

func TestNCSWinsMultiNodeJPEGAndFFT(t *testing.T) {
	for _, pl := range []Platform{Ethernet1995(), NYNET1995()} {
		for _, n := range []int{2, 4} {
			if p4s, ncss := JPEGP4(pl, n), JPEGNCS(pl, n); ncss >= p4s {
				t.Fatalf("%s jpeg %d nodes: NCS %.2f !< p4 %.2f", pl.Name, n, ncss, p4s)
			}
			if p4s, ncss := FFTP4(pl, n), FFTNCS(pl, n); ncss >= p4s {
				t.Fatalf("%s fft %d nodes: NCS %.2f !< p4 %.2f", pl.Name, n, ncss, p4s)
			}
		}
	}
}

func TestFFTImprovementInPaperBand(t *testing.T) {
	// The paper's FFT improvements are modest (5-11%); the model should
	// land in a single-digit-to-low-twenties band, not at 50%.
	rows := Table3(NYNET1995(), []int{2, 4})
	for _, r := range rows {
		if r.Improvement < 2 || r.Improvement > 25 {
			t.Fatalf("fft %d nodes: improvement %.1f%% outside plausible band", r.Nodes, r.Improvement)
		}
	}
}

func TestNYNETFasterThanEthernet(t *testing.T) {
	// Faster machines + faster fabric: every NYNET cell beats its
	// Ethernet counterpart (as in the paper).
	for _, n := range []int{2, 4} {
		if NY, eth := MatmulP4(NYNET1995(), n), MatmulP4(Ethernet1995(), n); NY >= eth {
			t.Fatalf("matmul %d nodes: NYNET %.2f !< Ethernet %.2f", n, NY, eth)
		}
		if NY, eth := JPEGNCS(NYNET1995(), n), JPEGNCS(Ethernet1995(), n); NY >= eth {
			t.Fatalf("jpeg %d nodes: NYNET %.2f !< Ethernet %.2f", n, NY, eth)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	a := Table3(NYNET1995(), []int{2, 4})
	b := Table3(NYNET1995(), []int{2, 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFigure2PipelineGain(t *testing.T) {
	rows := Figure2(256*1024, []int{1, 2, 4})
	if rows[1].Seconds >= rows[0].Seconds {
		t.Fatalf("2 buffers (%.3fs) not faster than 1 (%.3fs)", rows[1].Seconds, rows[0].Seconds)
	}
	if rows[2].Seconds > rows[1].Seconds {
		t.Fatalf("4 buffers slower than 2")
	}
}

func TestFigure3AccessCounts(t *testing.T) {
	rows := Figure3(16*1024, 3)
	if rows[0].AccessesPerWord != 5 || rows[1].AccessesPerWord != 3 {
		t.Fatalf("accesses/word = %d,%d; want 5,3", rows[0].AccessesPerWord, rows[1].AccessesPerWord)
	}
}

func TestE8HSMFaster(t *testing.T) {
	for _, r := range E8ApproachTwo() {
		if r.Speedup <= 1.0 {
			t.Fatalf("%s: HSM speedup %.2f <= 1", r.Workload, r.Speedup)
		}
	}
}

func TestWANSweepMonotoneTrunkCost(t *testing.T) {
	rows := WANSweep()
	if len(rows) < 2 {
		t.Fatal("empty WAN sweep")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].P4 < rows[i-1].P4-1e-9 {
			t.Fatalf("p4 time decreased with longer trunk: %.3f -> %.3f", rows[i-1].P4, rows[i].P4)
		}
	}
	for _, r := range rows {
		if r.Improvement <= 0 {
			t.Fatalf("WAN NCS improvement %.1f%% not positive at prop %v", r.Improvement, r.TrunkProp)
		}
	}
}

func TestRenderTableShape(t *testing.T) {
	out := RenderTable("T", []Row{{Nodes: 2, P4: 1, NCS: 0.5, Improvement: 50}}, []PaperRow{{Nodes: 2, P4: 2, NCS: 1}})
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "Nodes") {
		t.Fatalf("render output:\n%s", out)
	}
	// Unreported paper cells render as dashes.
	out = RenderTable("T", []Row{{Nodes: 8, P4: 1, NCS: 0.5}}, nil)
	if !strings.Contains(out, "-") {
		t.Fatalf("missing dash for absent paper row:\n%s", out)
	}
}

func TestFigureRenderersProduceOutput(t *testing.T) {
	if s := Figure4(); !strings.Contains(s, "legend") || !strings.Contains(s, "p4") {
		t.Fatal("Figure4 output malformed")
	}
	if s := Figure16(); !strings.Contains(s, "proc1") {
		t.Fatal("Figure16 output malformed")
	}
}

func TestMicroSweepShape(t *testing.T) {
	rows := MicroSweep([]int{64, 8192, 65536})
	for _, r := range rows {
		if r.HSMLatency >= r.NSMLatency {
			t.Fatalf("%dB: HSM latency %v !< NSM %v", r.Bytes, r.HSMLatency, r.NSMLatency)
		}
	}
	// Bandwidth grows with size and HSM beats NSM at the large end.
	last := rows[len(rows)-1]
	if last.HSMMBps <= last.NSMMBps {
		t.Fatalf("HSM bandwidth %.2f !< NSM %.2f at %dB", last.HSMMBps, last.NSMMBps, last.Bytes)
	}
	if rows[0].NSMMBps >= last.NSMMBps {
		t.Fatal("bandwidth did not grow with message size")
	}
}

func TestHSMRequiresATM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HSM on Ethernet accepted")
		}
	}()
	NewNCSCluster(Ethernet1995(), 2, true, false)
}
