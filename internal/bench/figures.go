package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/jpegpipe"
	"repro/internal/apps/matmul"
	"repro/internal/hostif"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// --- Figure 2: parallel data transfer via multiple I/O buffers ----------

// Fig2Row reports one buffer-count configuration.
type Fig2Row struct {
	Buffers    int
	Seconds    float64
	SpeedupVs1 float64
}

// Figure2 sweeps the SBA-200 output-buffer count for a fixed transfer and
// reports delivery time: the k=1 row is store-and-forward (copy, drain,
// copy, ...); k>=2 overlaps the host copy with the NIC drain, the claim of
// the paper's Figure 2.
func Figure2(msgBytes int, bufferCounts []int) []Fig2Row {
	pl := NYNET1995()
	run := func(k int) float64 {
		eng := sim.NewEngine()
		net := netsim.NewATMLAN(eng, 2, pl.ATMLAN)
		cfg := pl.NIC
		cfg.NumBuffers = k
		var arrived vclock.Time
		nodes := [2]*sim.Node{eng.NewNode("tx"), eng.NewNode("rx")}
		tx := nic.NewSimATM(nodes[0], net, 0, cfg)
		rx := nic.NewSimATM(nodes[1], net, 1, cfg)
		rx.SetHandler(func(m *transport.Message) { arrived = eng.Now() })
		tx.SetHandler(func(m *transport.Message) {})
		nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
			tx.Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, msgBytes)})
		})
		eng.Run()
		return vclock.Time(arrived).Seconds()
	}
	var rows []Fig2Row
	base := 0.0
	for _, k := range bufferCounts {
		s := run(k)
		if base == 0 {
			base = s
		}
		rows = append(rows, Fig2Row{Buffers: k, Seconds: s, SpeedupVs1: base / s})
	}
	return rows
}

// RenderFig2 formats the buffer sweep.
func RenderFig2(rows []Fig2Row, msgBytes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — multiple I/O buffers, %d KB transfer over the SBA-200 model\n", msgBytes/1024)
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "Buffers", "delivery(ms)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12.3f %9.2fx\n", r.Buffers, r.Seconds*1e3, r.SpeedupVs1)
	}
	return b.String()
}

// --- Figure 3: datapath bus accesses ------------------------------------

// Fig3Row reports one datapath.
type Fig3Row struct {
	Path            string
	AccessesPerWord int
	CountedAccesses int64
	NsPerKB         float64 // measured on this machine, real copies
}

// Figure3 runs both host datapaths over a transfer of the given size,
// reporting the paper's per-word access counts (verified by counting, not
// asserting) and a real measured cost on the current machine.
func Figure3(transferBytes int, reps int) []Fig3Row {
	app := make([]byte, transferBytes)
	for i := range app {
		app[i] = byte(i * 31)
	}
	var rows []Fig3Row
	for _, p := range []hostif.Datapath{hostif.NewSocketPath(transferBytes), hostif.NewNCSPath(transferBytes)} {
		start := time.Now()
		for r := 0; r < reps; r++ {
			p.Transmit(app)
		}
		elapsed := time.Since(start)
		perWord := p.BusAccesses() / int64(reps) * int64(hostif.WordSize) / int64(transferBytes)
		rows = append(rows, Fig3Row{
			Path:            p.Name(),
			AccessesPerWord: int(perWord),
			CountedAccesses: p.BusAccesses() / int64(reps),
			NsPerKB:         float64(elapsed.Nanoseconds()) / float64(reps) / (float64(transferBytes) / 1024),
		})
	}
	return rows
}

// RenderFig3 formats the datapath comparison.
func RenderFig3(rows []Fig3Row, transferBytes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — datapath bus accesses, %d KB transfer (paper: 5 vs 3 accesses/word)\n", transferBytes/1024)
	fmt.Fprintf(&b, "%-14s %14s %16s %12s\n", "Path", "accesses/word", "total accesses", "ns/KB (real)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14d %16d %12.1f\n", r.Path, r.AccessesPerWord, r.CountedAccesses, r.NsPerKB)
	}
	return b.String()
}

// --- Figures 4 and 16: overlap timelines ---------------------------------

// Figure4 runs a small 2-node matmul with and without threads and renders
// the virtual-time Gantt charts side by side (the paper's Figure 4).
func Figure4() string {
	pl := NYNET1995()
	width := 72

	render := func(threaded bool) string {
		var c *Cluster
		var tr *trace.Recorder
		cfg := matmul.Config{Dim: 64, Workers: 2, OpCost: matmulOpNYNET, Seed: 1}
		if threaded {
			cc, procs := NewNCSCluster(pl, 3, false, true)
			matmul.BuildNCS(procs, cfg, 2)
			c, tr = cc, cc.Tracer
		} else {
			cc, procs := NewP4Cluster(pl, 3, true)
			matmul.BuildP4(procs, cfg)
			c, tr = cc, cc.Tracer
		}
		c.Eng.Run()
		tr.CloseAll()
		var rows []*trace.Timeline
		for _, name := range tr.Names() {
			rows = append(rows, tr.Timeline(name))
		}
		return trace.Render(rows, width) + trace.Summary(rows)
	}

	var b strings.Builder
	b.WriteString("Figure 4 — matrix multiplication overlap, 2 nodes (64x64 to keep rows readable)\n\n")
	b.WriteString("Without threads (p4):\n")
	b.WriteString(render(false))
	b.WriteString("\nWith two threads per process (NCS):\n")
	b.WriteString(render(true))
	return b.String()
}

// Figure16 runs the JPEG pipeline on 4 workers both ways and renders
// per-processor compute/comm/idle bars (the paper's Figure 16).
func Figure16() string {
	pl := NYNET1995()
	width := 72
	workers := 4

	render := func(threaded bool) string {
		var c *Cluster
		var tr *trace.Recorder
		cfg := jpegCfg(pl, workers)
		if threaded {
			cc, procs := NewNCSCluster(pl, workers+1, false, true)
			jpegpipe.BuildNCS(procs, cfg)
			c, tr = cc, cc.Tracer
		} else {
			cc, procs := NewP4Cluster(pl, workers+1, true)
			jpegpipe.BuildP4(procs, cfg)
			c, tr = cc, cc.Tracer
		}
		c.Eng.Run()
		tr.CloseAll()
		// Merge each process's thread rows into one processor bar.
		byProc := map[string][]*trace.Timeline{}
		var order []string
		for _, name := range tr.Names() {
			proc := name
			if i := strings.IndexByte(name, '/'); i >= 0 {
				proc = name[:i]
			}
			if _, seen := byProc[proc]; !seen {
				order = append(order, proc)
			}
			byProc[proc] = append(byProc[proc], tr.Timeline(name))
		}
		var rows []*trace.Timeline
		for _, proc := range order {
			rows = append(rows, trace.Merge(proc, byProc[proc]))
		}
		return trace.Render(rows, width) + trace.Summary(rows)
	}

	var b strings.Builder
	b.WriteString("Figure 16 — JPEG pipeline processor states, 4 workers + master\n\n")
	b.WriteString("Single-threaded (p4):\n")
	b.WriteString(render(false))
	b.WriteString("\nMultithreaded (NCS, 2 threads/processor):\n")
	b.WriteString(render(true))
	return b.String()
}

// --- Experiment E8: Approach 2 (NCS over the ATM API) --------------------

// E8Row compares NSM (Approach 1, TCP path) against HSM (Approach 2, ATM
// API path) for one workload size.
type E8Row struct {
	Workload string
	NSM      float64
	HSM      float64
	Speedup  float64
}

// E8ApproachTwo runs the three table workloads over both NCS tiers on the
// NYNET platform. The paper's second implementation was "not fully
// operational" at publication; this reproduces the projected gain from
// traps + the 3-access datapath + NIC buffer pipelining.
func E8ApproachTwo() []E8Row {
	pl := NYNET1995()
	matmulRun := func(hsm bool) float64 {
		c, procs := NewNCSCluster(pl, 5, hsm, false)
		res := matmul.BuildNCS(procs, matmul.Config{Dim: MatmulDim, Workers: 4, OpCost: matmulOpNYNET, Seed: 1}, 2)
		c.Eng.Run()
		return res.Elapsed.Seconds()
	}
	jpegRun := func(hsm bool) float64 {
		c, procs := NewNCSCluster(pl, 5, hsm, false)
		res := jpegpipe.BuildNCS(procs, jpegCfg(pl, 4))
		c.Eng.Run()
		return res.Elapsed.Seconds()
	}
	var rows []E8Row
	for _, w := range []struct {
		name string
		run  func(bool) float64
	}{
		{"matmul 128x128, 4 nodes", matmulRun},
		{"jpeg 600KB, 4 nodes", jpegRun},
	} {
		nsm := w.run(false)
		hsm := w.run(true)
		rows = append(rows, E8Row{Workload: w.name, NSM: nsm, HSM: hsm, Speedup: nsm / hsm})
	}
	return rows
}

// RenderE8 formats the tier comparison.
func RenderE8(rows []E8Row) string {
	var b strings.Builder
	b.WriteString("E8 — NCS Approach 1 (NSM, over TCP) vs Approach 2 (HSM, over ATM API)\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %9s\n", "Workload", "NSM (s)", "HSM (s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10.2f %10.2f %8.2fx\n", r.Workload, r.NSM, r.HSM, r.Speedup)
	}
	return b.String()
}
