package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/jpegpipe"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/work"
)

// The WAN experiment backs the paper's §3 motivation: "in wide area network
// based distributed computing, the propagation delay ... is several orders
// of magnitude greater than the time it takes to actually transmit the
// data", so overlapping computation with communication matters *more* as
// the trunk gets longer. The paper reports no WAN table (the testbed's
// upstate-downstate DS-3 path existed but the benchmarks ran on the LAN);
// this sweep is the natural extension experiment: matmul across two sites
// with growing trunk propagation, p4 vs NCS.

// WANRow is one trunk-propagation configuration.
type WANRow struct {
	TrunkProp   time.Duration
	P4          float64
	NCS         float64
	Improvement float64
}

// buildWAN assembles a 6-host two-site WAN (3 per site) and returns the
// engine plus the network. Host 0 is the matmul host; workers 1-2 are at
// site A with it, workers 3-5 at site B across the trunk.
func buildWAN(prop time.Duration) (*sim.Engine, *netsim.Network) {
	pl := NYNET1995()
	eng := sim.NewEngine()
	eng.SetMaxTime(24 * time.Hour)
	cfg := netsim.ATMWANConfig{
		LAN:       pl.ATMLAN,
		TrunkBps:  40.7e6, // DS-3 payload after PLCP framing
		TrunkProp: prop,
	}
	return eng, netsim.NewATMWAN(eng, 3, cfg)
}

// WANSweep runs the 4-worker JPEG pipeline across the two-site WAN for
// several trunk propagation delays: the master and compressors sit at site
// A, the decompressors at site B, so every compressed piece and every
// reconstructed piece crosses the trunk. A one-shot distribution (matmul)
// has no round trips to hide; the pipeline does.
func WANSweep() []WANRow {
	pl := NYNET1995()
	const workers = 4
	cfg := jpegCfg(pl, workers)

	runP4 := func(prop time.Duration) float64 {
		eng, net := buildWAN(prop)
		procs := make([]*p4.Process, workers+1)
		for i := 0; i <= workers; i++ {
			node := eng.NewNode(fmt.Sprintf("node%d", i))
			ep := tcpip.NewSimTCP(node, net, i, pl.TCP)
			cost := pl.TCP
			quantum := pl.PollQuantum
			procs[i] = p4.New(p4.Config{
				ID: p4.ProcID(i), RT: node.RT(), Endpoint: ep,
				Compute: work.Sim(node),
				RecvCharge: func(t *mts.Thread, sz int) {
					node.Compute(t, cost.RecvCost(sz))
				},
				BlockedRecvPenalty: func(t *mts.Thread) {
					node.Compute(t, quantum/2)
				},
			})
		}
		res := jpegpipe.BuildP4(procs, cfg)
		eng.Run()
		return res.Elapsed.Seconds()
	}

	runNCS := func(prop time.Duration) float64 {
		eng, net := buildWAN(prop)
		procs := make([]*core.Proc, workers+1)
		for i := 0; i <= workers; i++ {
			node := eng.NewNode(fmt.Sprintf("node%d", i))
			ep := tcpip.NewSimTCP(node, net, i, pl.TCP)
			cost := pl.TCP
			quantum := pl.PollQuantum
			procs[i] = core.New(core.Config{
				ID: core.ProcID(i), RT: node.RT(), Endpoint: ep,
				Compute: work.Sim(node),
				RecvCharge: func(t *mts.Thread, sz int) {
					node.Compute(t, cost.RecvCost(sz))
				},
				After: func(d time.Duration, fn func()) { eng.Schedule(d, fn) },
				ArrivalPollDelay: func() time.Duration {
					if node.CPUActive() {
						return 0
					}
					return quantum / 2
				},
			})
		}
		res := jpegpipe.BuildNCS(procs, cfg)
		eng.Run()
		return res.Elapsed.Seconds()
	}

	var rows []WANRow
	for _, prop := range []time.Duration{0, 2 * time.Millisecond, 8 * time.Millisecond, 15 * time.Millisecond} {
		p4s := runP4(prop)
		ncss := runNCS(prop)
		rows = append(rows, WANRow{TrunkProp: prop, P4: p4s, NCS: ncss, Improvement: improvement(p4s, ncss)})
	}
	return rows
}

// RenderWAN formats the sweep.
func RenderWAN(rows []WANRow) string {
	var b strings.Builder
	b.WriteString("WAN extension — JPEG pipeline across two sites over a DS-3 trunk, 4 workers\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %8s\n", "trunk prop", "p4 (s)", "NCS (s)", "impr%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %7.1f%%\n", r.TrunkProp, r.P4, r.NCS, r.Improvement)
	}
	return b.String()
}
