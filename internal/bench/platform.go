// Package bench is the experiment harness: it models the paper's two
// evaluation platforms (§2), assembles simulated clusters of p4 and NCS
// processes on them, and regenerates every table and figure of the
// evaluation section (see the per-experiment index in DESIGN.md and the
// paper-vs-measured record in EXPERIMENTS.md).
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/p4"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/tcpip"
	"repro/internal/trace"
	"repro/internal/work"
)

// Platform models one of the paper's testbeds: the workstation class, the
// network fabric, and the protocol-stack costs.
type Platform struct {
	// Name labels output rows ("Ethernet", "NYNET").
	Name string
	// ATM selects the switched ATM fabric (vs shared Ethernet).
	ATM bool
	// TCP is the socket/TCP/IP cost model for this workstation class.
	TCP tcpip.CostModel
	// PollQuantum is p4's receive-poll discovery latency (charged once
	// per blocking receive).
	PollQuantum time.Duration
	// Ethernet fabric parameters.
	Ether netsim.EthernetConfig
	// ATM fabric parameters.
	ATMLAN netsim.ATMLANConfig
	// NIC parameterizes the SBA-200 model for the HSM (Approach 2) path.
	NIC nic.Config
}

// Ethernet1995 is the SUN/Ethernet configuration of §2: SPARCstation ELCs
// (33 MHz) on shared 10 Mbps Ethernet, p4 over TCP/IP.
//
// Calibration notes: the per-byte protocol cost reflects the 5-access
// datapath of Figure 3a plus p4's XDR data conversion on a 33 MHz CPU; the
// poll quantum reflects p4's select/backoff receive loop. Per-op compute
// costs are calibrated per experiment from the paper's 1-node columns
// (EXPERIMENTS.md records the fit).
func Ethernet1995() Platform {
	return Platform{
		Name: "Ethernet",
		ATM:  false,
		TCP: tcpip.CostModel{
			PerMessage:    1500 * time.Microsecond,
			PerByteSend:   1200 * time.Nanosecond,
			PerByteRecv:   1200 * time.Nanosecond,
			MTU:           1460,
			FrameOverhead: 58,
		},
		PollQuantum: 60 * time.Millisecond,
		Ether: netsim.EthernetConfig{
			BitsPerSecond: sonet.EthernetRate * sonet.EthernetPayloadFraction,
			Propagation:   50 * time.Microsecond,
			PerFrame:      100 * time.Microsecond, // preamble, gap, CSMA deference
		},
	}
}

// NYNET1995 is the SUN/ATM LAN configuration of §2: SPARCstation IPXs
// (40 MHz) on a FORE ASX switch over 140 Mbps TAXI, p4 over TCP/IP over
// Classical-IP-over-ATM (MTU 9180).
func NYNET1995() Platform {
	return Platform{
		Name: "NYNET",
		ATM:  true,
		TCP: tcpip.CostModel{
			PerMessage:    1200 * time.Microsecond,
			PerByteSend:   1000 * time.Nanosecond,
			PerByteRecv:   1000 * time.Nanosecond,
			MTU:           9180,
			FrameOverhead: 48,
		},
		PollQuantum: 50 * time.Millisecond,
		ATMLAN: netsim.ATMLANConfig{
			HostLinkBps:   sonet.EffectiveATMBps(sonet.TAXIRate, sonet.TAXIPayloadFraction),
			HostLinkProp:  10 * time.Microsecond,
			SwitchLatency: 10 * time.Microsecond,
		},
		NIC: nic.Config{
			NumBuffers:      4,
			BufferSize:      16 * 1024,
			TrapCost:        40 * time.Microsecond,
			HostCopyPerByte: 600 * time.Nanosecond, // 3-access path, Figure 3b
		},
	}
}

// NYNETWAN1995 extends NYNET1995 with the wide-area topology of Figure 1:
// two sites joined by the DS-3 upstate-downstate trunk.
type WANPlatform struct {
	Platform
	Trunk netsim.ATMWANConfig
}

// NYNETWAN returns the two-site wide-area configuration.
func NYNETWAN() WANPlatform {
	p := NYNET1995()
	p.Name = "NYNET-WAN"
	return WANPlatform{
		Platform: p,
		Trunk: netsim.ATMWANConfig{
			LAN:       p.ATMLAN,
			TrunkBps:  sonet.EffectiveATMBps(sonet.DS3Rate, 1.0),
			TrunkProp: 4 * time.Millisecond, // upstate <-> downstate fiber
		},
	}
}

// BuildNet constructs the platform's fabric for n hosts.
func (pl Platform) BuildNet(eng *sim.Engine, n int) *netsim.Network {
	if pl.ATM {
		return netsim.NewATMLAN(eng, n, pl.ATMLAN)
	}
	return netsim.NewEthernetLAN(eng, n, pl.Ether)
}

// Cluster is an assembled simulation: engine, fabric, nodes.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*sim.Node
	// Tracer records timelines when attached via WithTrace.
	Tracer *trace.Recorder
}

// newCluster builds the common substrate.
func newCluster(pl Platform, n int, traced bool) *Cluster {
	eng := sim.NewEngine()
	eng.SetMaxTime(24 * time.Hour)
	c := &Cluster{Eng: eng, Net: pl.BuildNet(eng, n)}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, eng.NewNode(fmt.Sprintf("node%d", i)))
	}
	if traced {
		c.Tracer = trace.NewRecorder(eng.Clock())
	}
	return c
}

// NewP4Cluster assembles n p4 processes (proc i on host i) over the
// platform's TCP path.
func NewP4Cluster(pl Platform, n int, traced bool) (*Cluster, []*p4.Process) {
	c := newCluster(pl, n, traced)
	procs := make([]*p4.Process, n)
	for i := 0; i < n; i++ {
		node := c.Nodes[i]
		ep := tcpip.NewSimTCP(node, c.Net, i, pl.TCP)
		cost := pl.TCP
		quantum := pl.PollQuantum
		cfg := p4.Config{
			ID:       p4.ProcID(i),
			RT:       node.RT(),
			Endpoint: ep,
			Compute:  work.Sim(node),
			RecvCharge: func(t *mts.Thread, sz int) {
				node.Compute(t, cost.RecvCost(sz))
			},
		}
		if quantum > 0 {
			cfg.BlockedRecvPenalty = func(t *mts.Thread) {
				node.Compute(t, quantum/2) // expected poll discovery delay
			}
		}
		if c.Tracer != nil {
			cfg.Tracer = c.Tracer
			cfg.TraceName = fmt.Sprintf("proc%d", i)
		}
		procs[i] = p4.New(cfg)
	}
	return c, procs
}

// NewNCSCluster assembles n NCS processes over the platform. hsm selects
// Approach 2 (the ATM-API endpoint with the SBA-200 model and the 3-access
// host path) instead of Approach 1 (NCS over the TCP path, what the paper
// benchmarks).
func NewNCSCluster(pl Platform, n int, hsm bool, traced bool) (*Cluster, []*core.Proc) {
	c := newCluster(pl, n, traced)
	procs := make([]*core.Proc, n)
	for i := 0; i < n; i++ {
		node := c.Nodes[i]
		cfg := core.Config{
			ID:      core.ProcID(i),
			RT:      node.RT(),
			Compute: work.Sim(node),
			After:   func(d time.Duration, fn func()) { c.Eng.Schedule(d, fn) },
		}
		if hsm {
			if !pl.ATM {
				panic("bench: HSM requires an ATM platform")
			}
			ep := nic.NewSimATM(node, c.Net, i, pl.NIC)
			cfg.Endpoint = ep
			cfg.RecvCharge = func(t *mts.Thread, sz int) {
				node.Compute(t, ep.RecvCost(sz))
			}
		} else {
			ep := tcpip.NewSimTCP(node, c.Net, i, pl.TCP)
			cost := pl.TCP
			cfg.Endpoint = ep
			cfg.RecvCharge = func(t *mts.Thread, sz int) {
				node.Compute(t, cost.RecvCost(sz))
			}
			// Approach 1 polls p4 underneath: an arrival on an idle
			// workstation waits for poll discovery, exactly like the p4
			// baseline; an arrival during computation is free.
			if q := pl.PollQuantum; q > 0 {
				cfg.ArrivalPollDelay = func() time.Duration {
					if node.CPUActive() {
						return 0
					}
					return q / 2
				}
			}
		}
		if c.Tracer != nil {
			cfg.Tracer = c.Tracer
			cfg.TraceName = fmt.Sprintf("proc%d", i)
		}
		procs[i] = core.New(cfg)
	}
	return c, procs
}
