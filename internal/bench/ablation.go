package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/matmul"
)

// Ablations probe the design space around the calibrated configuration.
// They exist to make one analysis in EXPERIMENTS.md concrete: the paper's
// Table 1 multithreading gains require a much larger communication share
// than any consistent 1995 TCP/Ethernet cost model produces for 128×128
// matrices, and the model's NCS advantage indeed grows with communication
// share — the mechanism is present, the workload as published just doesn't
// exercise it.

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label       string
	P4          float64
	NCS         float64
	Improvement float64
}

// scaleComm returns the platform with communication made k× more expensive
// (per-byte protocol cost up, wire rate down).
func scaleComm(pl Platform, k float64) Platform {
	pl.TCP.PerByteSend = time.Duration(float64(pl.TCP.PerByteSend) * k)
	pl.TCP.PerByteRecv = time.Duration(float64(pl.TCP.PerByteRecv) * k)
	pl.Ether.BitsPerSecond /= k
	pl.ATMLAN.HostLinkBps /= k
	return pl
}

// AblationCommScale sweeps the communication-cost multiplier for 4-node
// matmul: at 1× (the calibrated point) threading hides almost nothing
// because compute dominates 12:1; as communication grows, the Figure 4
// overlap surfaces.
func AblationCommScale(scales []float64) []AblationRow {
	var rows []AblationRow
	for _, k := range scales {
		pl := scaleComm(Ethernet1995(), k)
		p4s := MatmulP4(pl, 4)
		ncss := MatmulNCS(pl, 4)
		rows = append(rows, AblationRow{
			Label:       fmt.Sprintf("comm x%.0f", k),
			P4:          p4s,
			NCS:         ncss,
			Improvement: improvement(p4s, ncss),
		})
	}
	return rows
}

// AblationThreads sweeps threads-per-process for the NCS matmul (the paper
// fixes 2): more threads mean finer row blocks, earlier first compute, and
// more scheduler upkeep.
func AblationThreads(counts []int) []AblationRow {
	pl := scaleComm(NYNET1995(), 4) // a comm share where threading matters
	p4s := MatmulP4(pl, 4)
	var rows []AblationRow
	for _, threads := range counts {
		cfg := matmul.Config{Dim: MatmulDim, Workers: 4, OpCost: matmulOpNYNET, Seed: 1}
		c, procs := NewNCSCluster(pl, 5, false, false)
		res := matmul.BuildNCS(procs, cfg, threads)
		c.Eng.Run()
		ncss := res.Elapsed.Seconds()
		rows = append(rows, AblationRow{
			Label:       fmt.Sprintf("%d threads/proc", threads),
			P4:          p4s,
			NCS:         ncss,
			Improvement: improvement(p4s, ncss),
		})
	}
	return rows
}

// AblationPollQuantum sweeps p4's receive-poll quantum for 4-node FFT: the
// quantum is the main structural p4-vs-NCS difference the FFT exposes
// (lockstep exchanges leave little compute to hide transfers behind).
func AblationPollQuantum(quanta []time.Duration) []AblationRow {
	var rows []AblationRow
	for _, q := range quanta {
		pl := NYNET1995()
		pl.PollQuantum = q
		p4s := FFTP4(pl, 4)
		ncss := FFTNCS(pl, 4)
		rows = append(rows, AblationRow{
			Label:       fmt.Sprintf("quantum %v", q),
			P4:          p4s,
			NCS:         ncss,
			Improvement: improvement(p4s, ncss),
		})
	}
	return rows
}

// AblationBuffers sweeps the SBA-200 buffer count for the HSM matmul,
// isolating the Figure 2 mechanism inside a full application.
func AblationBuffers(counts []int) []AblationRow {
	var rows []AblationRow
	for _, k := range counts {
		pl := NYNET1995()
		pl.NIC.NumBuffers = k
		c, procs := NewNCSCluster(pl, 5, true, false)
		res := matmul.BuildNCS(procs, matmul.Config{Dim: MatmulDim, Workers: 4, OpCost: matmulOpNYNET, Seed: 1}, 2)
		c.Eng.Run()
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("%d NIC buffers", k),
			NCS:   res.Elapsed.Seconds(),
		})
	}
	// Improvements relative to the 1-buffer row.
	base := rows[0].NCS
	for i := range rows {
		rows[i].P4 = base
		rows[i].Improvement = improvement(base, rows[i].NCS)
	}
	return rows
}

// AblationContention sweeps the Ethernet CSMA/CD backoff slot for the
// 8-node p4 JPEG pipeline — the probe for Table 2's anomalous p4 growth
// with node count (see EXPERIMENTS.md): contention bends p4 upward in the
// right direction but falls far short of the paper's measured 17 s.
func AblationContention(slots []time.Duration) []AblationRow {
	var rows []AblationRow
	for _, slot := range slots {
		pl := Ethernet1995()
		pl.Ether.ContentionSlot = slot
		p4s := JPEGP4(pl, 8)
		ncss := JPEGNCS(pl, 8)
		rows = append(rows, AblationRow{
			Label:       fmt.Sprintf("slot %v", slot),
			P4:          p4s,
			NCS:         ncss,
			Improvement: improvement(p4s, ncss),
		})
	}
	return rows
}

// RenderAblation formats a sweep.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %10s %10s %8s\n", "config", "p4/base(s)", "NCS (s)", "impr%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.2f %10.2f %7.1f%%\n", r.Label, r.P4, r.NCS, r.Improvement)
	}
	return b.String()
}
