// Package sim is the discrete-event simulation engine that executes
// multi-node NCS programs in virtual time.
//
// Why virtual time: the paper's Tables 1-3 are wall-clock seconds on 1995
// hardware (40 MHz SPARC IPX on ATM, 33 MHz ELC on 10 Mbps Ethernet). The
// results hinge on the ratio of computation speed to communication speed,
// and that ratio cannot be reproduced in wall-clock time on modern machines.
// The engine therefore runs the *same application communication code* (built
// on internal/mts and internal/core) with computation charged as calibrated
// virtual CPU bursts and the network modelled by events (internal/netsim).
//
// Execution model: each Node is a 1995 workstation with one CPU running a
// cooperative mts.Runtime. A thread that calls Compute holds the node's CPU
// for the burst — no other thread of that node runs meanwhile — while NIC
// and network events proceed in the background. That is precisely the
// overlap mechanism of the paper (Figures 4 and 16): with one thread, a
// blocked receive idles the CPU; with two threads, the second thread's
// compute fills the gap.
//
// The engine is single-goroutine from the scheduler's point of view: events
// fire and threads execute strictly one at a time, with deterministic FIFO
// tie-breaking, so every simulation is bit-reproducible.
package sim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mts"
	"repro/internal/vclock"
)

// Engine owns virtual time and all simulated nodes.
type Engine struct {
	clock *vclock.VirtualClock
	queue *vclock.EventQueue
	nodes []*Node

	// maxTime aborts runaway simulations; zero means unlimited.
	maxTime vclock.Time

	// hash and fired fingerprint the timeline: every popped event folds its
	// firing time into an FNV-1a accumulator. Two runs with identical hashes
	// executed the same number of events at the same virtual instants — the
	// determinism contract virtual-mode harnesses assert against.
	hash  uint64
	fired uint64
}

// fnv64Offset/fnv64Prime are the FNV-1a parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		clock: vclock.NewVirtualClock(),
		queue: vclock.NewEventQueue(),
		hash:  fnv64Offset,
	}
}

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() vclock.Clock { return e.clock }

// Now returns the current virtual time.
func (e *Engine) Now() vclock.Time { return e.clock.Now() }

// SetMaxTime bounds the simulated horizon; Run panics past it. Tests use it
// to convert infinite loops into failures.
func (e *Engine) SetMaxTime(d time.Duration) { e.maxTime = vclock.Time(d) }

// Schedule runs fn after virtual duration d (d >= 0).
func (e *Engine) Schedule(d time.Duration, fn func()) *vclock.Event {
	if d < 0 {
		panic("sim: negative schedule delay")
	}
	return e.queue.Schedule(e.clock.Now().Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual time t (not before now).
func (e *Engine) ScheduleAt(t vclock.Time, fn func()) *vclock.Event {
	if t < e.clock.Now() {
		panic("sim: ScheduleAt in the past")
	}
	return e.queue.Schedule(t, fn)
}

// Cancel cancels a pending event.
func (e *Engine) Cancel(ev *vclock.Event) { e.queue.Cancel(ev) }

// Nodes returns all nodes in creation order.
func (e *Engine) Nodes() []*Node { return e.nodes }

// Node is a simulated workstation: one CPU, one cooperative thread runtime.
type Node struct {
	eng  *Engine
	id   int
	name string
	rt   *mts.Runtime

	// holder is the thread that currently owns the CPU across a Compute
	// burst; while non-nil, no other thread of this node is dispatched.
	holder *mts.Thread
	// busy accumulates total CPU busy time for utilization reporting.
	busy time.Duration
}

// NewNode adds a workstation to the simulation.
func (e *Engine) NewNode(name string) *Node {
	n := &Node{eng: e, id: len(e.nodes), name: name}
	n.rt = mts.New(mts.Config{Name: name, Clock: e.clock})
	e.nodes = append(e.nodes, n)
	return n
}

// ID returns the node's index in creation order.
func (n *Node) ID() int { return n.id }

// Name returns the node's label.
func (n *Node) Name() string { return n.name }

// RT returns the node's thread runtime.
func (n *Node) RT() *mts.Runtime { return n.rt }

// Engine returns the owning engine.
func (n *Node) Engine() *Engine { return n.eng }

// BusyTime returns accumulated CPU busy time.
func (n *Node) BusyTime() time.Duration { return n.busy }

// CPUActive reports whether the node's CPU currently has work: a thread is
// holding it through a compute burst or runnable threads are queued.
// Cost models use it to decide whether a poll-driven event would be
// discovered "for free" at the next context switch.
func (n *Node) CPUActive() bool {
	return n.holder != nil || n.rt.HasRunnable()
}

// Compute charges a CPU burst of duration d to the calling thread. The
// thread holds the node's CPU for the whole burst: no other thread of this
// node runs (non-preemptive user-level threading on a uniprocessor), but
// network and NIC events elsewhere in the simulation proceed. On return the
// virtual clock has advanced by d from the thread's perspective.
func (n *Node) Compute(t *mts.Thread, d time.Duration) {
	if d < 0 {
		panic("sim: negative compute duration")
	}
	if n.holder != nil {
		panic(fmt.Sprintf("sim(%s): Compute while CPU held by %q", n.name, n.holder.Name()))
	}
	if d == 0 {
		return
	}
	n.holder = t
	n.busy += d
	n.eng.Schedule(d, func() {
		n.holder = nil
		// Front placement: the burst's owner resumes before same-priority
		// peers, as a non-preempted thread would.
		n.rt.Unblock(t, true)
	})
	t.Park("compute")
}

// Sleep parks the thread for virtual duration d without holding the CPU
// (e.g. a pacing delay); other threads of the node run meanwhile.
func (n *Node) Sleep(t *mts.Thread, d time.Duration) {
	if d <= 0 {
		return
	}
	n.eng.Schedule(d, func() { n.rt.Unblock(t, false) })
	t.Park("vsleep")
}

// dispatchable reports whether the node can give its CPU to a thread now.
func (n *Node) dispatchable() bool {
	return n.holder == nil && n.rt.HasRunnable()
}

// Run executes the simulation until every thread on every node has finished.
// It panics on deadlock (live threads, nothing runnable, no pending events)
// with a full state dump, and on exceeding MaxTime.
func (e *Engine) Run() {
	for {
		progress := false
		for _, n := range e.nodes {
			for n.dispatchable() {
				n.rt.Dispatch()
				progress = true
			}
		}
		if progress {
			continue
		}
		ev := e.queue.Pop()
		if ev == nil {
			if live := e.liveThreads(); live > 0 {
				panic(fmt.Sprintf("sim: deadlock at t=%v — %d live threads, no events\n%s",
					e.Now().Seconds(), live, e.DumpState()))
			}
			return
		}
		if e.maxTime > 0 && ev.Time() > e.maxTime {
			panic(fmt.Sprintf("sim: exceeded max simulated time %v\n%s",
				time.Duration(e.maxTime), e.DumpState()))
		}
		e.recordFire(ev.Time())
		e.clock.Advance(ev.Time())
		ev.Fire()
	}
}

// recordFire folds one fired event into the timeline fingerprint.
func (e *Engine) recordFire(t vclock.Time) {
	e.fired++
	h := e.hash
	v := uint64(t)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnv64Prime
	}
	e.hash = h
}

// TimelineHash returns the timeline fingerprint as "<hash>-<events fired>".
// Equal strings mean the two runs popped the same number of events at the
// same virtual times in the same order; a virtual-mode mesh seeded
// identically must reproduce it byte for byte.
func (e *Engine) TimelineHash() string {
	return fmt.Sprintf("%016x-%d", e.hash, e.fired)
}

// Step advances the simulation by exactly one event (after draining all
// zero-time dispatches). It reports false when the simulation is finished.
// Tools use it for single-stepping traces.
func (e *Engine) Step() bool {
	for _, n := range e.nodes {
		for n.dispatchable() {
			n.rt.Dispatch()
		}
	}
	ev := e.queue.Pop()
	if ev == nil {
		return e.liveThreads() > 0
	}
	e.recordFire(ev.Time())
	e.clock.Advance(ev.Time())
	ev.Fire()
	return true
}

func (e *Engine) liveThreads() int {
	total := 0
	for _, n := range e.nodes {
		total += n.rt.Live()
	}
	return total
}

// DumpState renders all nodes' scheduler state for deadlock diagnostics.
func (e *Engine) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine t=%.6fs, %d pending events\n", e.Now().Seconds(), e.queue.Len())
	for _, n := range e.nodes {
		holder := "-"
		if n.holder != nil {
			holder = n.holder.Name()
		}
		fmt.Fprintf(&b, "node %s (cpu holder=%s busy=%v):\n%s", n.name, holder, n.busy, n.rt.DumpState())
	}
	return b.String()
}
