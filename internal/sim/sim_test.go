package sim

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/vclock"
)

func TestComputeAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	var after vclock.Time
	n.RT().Create("worker", mts.PrioDefault, func(th *mts.Thread) {
		n.Compute(th, 3*time.Second)
		after = e.Now()
	})
	e.Run()
	if after != vclock.Time(3*time.Second) {
		t.Fatalf("time after compute = %v, want 3s", after.Seconds())
	}
	if n.BusyTime() != 3*time.Second {
		t.Fatalf("busy = %v, want 3s", n.BusyTime())
	}
}

func TestComputeHoldsCPU(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	var order []string
	n.RT().Create("burst", mts.PrioDefault, func(th *mts.Thread) {
		n.Compute(th, 2*time.Second)
		order = append(order, "burst-done")
	})
	n.RT().Create("other", mts.PrioDefault, func(th *mts.Thread) {
		order = append(order, "other")
	})
	e.Run()
	// "other" must not run during the burst — it runs only after the CPU
	// is released, and the burst owner resumes first.
	if len(order) != 2 || order[0] != "burst-done" || order[1] != "other" {
		t.Fatalf("order = %v, want [burst-done other]", order)
	}
}

func TestNodesComputeInParallel(t *testing.T) {
	e := NewEngine()
	a := e.NewNode("a")
	b := e.NewNode("b")
	var aDone, bDone vclock.Time
	a.RT().Create("wa", mts.PrioDefault, func(th *mts.Thread) {
		a.Compute(th, 5*time.Second)
		aDone = e.Now()
	})
	b.RT().Create("wb", mts.PrioDefault, func(th *mts.Thread) {
		b.Compute(th, 5*time.Second)
		bDone = e.Now()
	})
	e.Run()
	// Two nodes are two CPUs: both finish at t=5s, not 10s.
	if aDone != vclock.Time(5*time.Second) || bDone != vclock.Time(5*time.Second) {
		t.Fatalf("aDone=%v bDone=%v, want both 5s", aDone.Seconds(), bDone.Seconds())
	}
}

func TestSleepDoesNotHoldCPU(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	var otherRanAt vclock.Time = -1
	n.RT().Create("sleeper", mts.PrioDefault, func(th *mts.Thread) {
		n.Sleep(th, 10*time.Second)
	})
	n.RT().Create("other", mts.PrioDefault, func(th *mts.Thread) {
		otherRanAt = e.Now()
	})
	e.Run()
	if otherRanAt != 0 {
		t.Fatalf("other ran at %v, want 0 (during the sleep)", otherRanAt.Seconds())
	}
}

func TestOverlapComputeAndEvent(t *testing.T) {
	// The paper's core claim in miniature: a message "arrives" (event at
	// t=1s) while the CPU is busy until t=4s; the receiver thread runs at
	// t=4s, not t=1s (non-preemptive), but no extra time is lost.
	e := NewEngine()
	n := e.NewNode("n0")
	var recvAt vclock.Time = -1
	var receiver *mts.Thread
	receiver = n.RT().Create("receiver", mts.PrioSystem, func(th *mts.Thread) {
		th.Park("wait msg")
		recvAt = e.Now()
	})
	n.RT().Create("computer", mts.PrioDefault, func(th *mts.Thread) {
		e.Schedule(1*time.Second, func() { n.RT().Unblock(receiver, false) })
		n.Compute(th, 4*time.Second)
	})
	e.Run()
	if recvAt != vclock.Time(4*time.Second) {
		t.Fatalf("receiver ran at %v, want 4s (after the burst)", recvAt.Seconds())
	}
}

func TestBurstOwnerResumesBeforePeers(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	var order []string
	n.RT().Create("a", mts.PrioDefault, func(th *mts.Thread) {
		n.Compute(th, 1*time.Second)
		order = append(order, "a-after-burst")
		th.Yield()
		order = append(order, "a-end")
	})
	n.RT().Create("b", mts.PrioDefault, func(th *mts.Thread) {
		order = append(order, "b")
	})
	e.Run()
	if order[0] != "a-after-burst" {
		t.Fatalf("order = %v: burst owner did not resume first", order)
	}
}

func TestScheduleOrderingAndCancel(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	ev := e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(3*time.Second, func() { fired = append(fired, 3) })
	e.Cancel(ev)
	e.Run()
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [2 3]", fired)
	}
}

func TestDeadlockPanicsWithDump(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	n.RT().Create("stuck", mts.PrioDefault, func(th *mts.Thread) { th.Park("never") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked Run did not panic")
		}
		n.RT().Kill()
	}()
	e.Run()
}

func TestMaxTimeAborts(t *testing.T) {
	e := NewEngine()
	e.SetMaxTime(1 * time.Second)
	n := e.NewNode("n0")
	n.RT().Create("loop", mts.PrioDefault, func(th *mts.Thread) {
		for {
			n.Compute(th, time.Second)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic at MaxTime")
		}
		n.RT().Kill()
	}()
	e.Run()
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 3; i++ {
			n := e.NewNode("n")
			i := i
			n.RT().Create("w", mts.PrioDefault, func(th *mts.Thread) {
				n.Compute(th, time.Duration(i+1)*time.Second)
				log = append(log, n.Name()+"-done")
				n.Compute(th, time.Second)
				log = append(log, n.Name()+"-done2")
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestStepSingleStepsEvents(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	n.RT().Create("w", mts.PrioDefault, func(th *mts.Thread) {
		n.Compute(th, time.Second)
		n.Compute(th, time.Second)
	})
	steps := 0
	for e.Step() {
		steps++
		if steps > 100 {
			t.Fatal("Step never terminated")
		}
	}
	if e.Now() != vclock.Time(2*time.Second) {
		t.Fatalf("final time = %v, want 2s", e.Now().Seconds())
	}
}

func TestZeroComputeIsFree(t *testing.T) {
	e := NewEngine()
	n := e.NewNode("n0")
	n.RT().Create("w", mts.PrioDefault, func(th *mts.Thread) {
		n.Compute(th, 0)
	})
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("zero compute advanced time to %v", e.Now().Seconds())
	}
}
