package ring

import (
	"sync"
	"testing"
)

func TestPushDrainOrderSingleProducer(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	got := q.Drain()
	if len(got) != 100 {
		t.Fatalf("drained %d items, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
	if q.Drain() != nil {
		t.Fatal("second drain should be empty")
	}
}

func TestConcurrentProducersDeliverAll(t *testing.T) {
	const producers, perProducer = 8, 1000
	q := New[int]()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(base + i)
			}
		}(p * perProducer)
	}
	seen := make(map[int]bool)
	lastPer := make(map[int]int) // producer -> last value seen, checks per-producer FIFO
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProducer {
			if !q.Sleep(stop) {
				return
			}
			for _, v := range q.Drain() {
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
					return
				}
				seen[v] = true
				prod := v / perProducer
				if last, ok := lastPer[prod]; ok && v <= last {
					t.Errorf("producer %d out of order: %d after %d", prod, v, last)
					return
				}
				lastPer[prod] = v
			}
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("consumer saw %d items, want %d", len(seen), producers*perProducer)
	}
}

func TestSleepStop(t *testing.T) {
	q := New[int]()
	stop := make(chan struct{})
	close(stop)
	if q.Sleep(stop) {
		t.Fatal("Sleep on closed stop with empty queue should return false")
	}
	q.Push(1)
	if !q.Sleep(stop) {
		t.Fatal("Sleep with pending items should return true even when stopped")
	}
}

func TestDrainReusesCapacitySteadyState(t *testing.T) {
	q := New[int]()
	// Warm both swap buffers.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		q.Drain()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		q.Drain()
	})
	if avg > 0 {
		t.Fatalf("steady-state push/drain allocated %.1f/op, want 0", avg)
	}
}
