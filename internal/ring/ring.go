// Package ring provides the multi-producer single-consumer hand-off queue
// that feeds NCS lane engines. Application threads (and the transport's
// delivery goroutines) push items from arbitrary goroutines; exactly one
// lane engine drains. The design goal is the same as the rest of the NCS
// hot path: zero steady-state allocation and no producer-side blocking —
// a push is one short mutex hold plus, at most, one non-blocking channel
// send to wake a sleeping consumer.
package ring

import "sync"

// MPSC is a multi-producer single-consumer queue of T. Producers call Push
// from any goroutine; the single consumer alternates Drain and Sleep. Two
// backing slices are swapped between producer and consumer so steady-state
// operation reuses their capacity and allocates nothing.
type MPSC[T any] struct {
	mu       sync.Mutex
	buf      []T // producer side: pending items
	spare    []T // consumer side: recycled after each Drain
	sleeping bool

	// wake has capacity 1 and only ever receives a value when a producer
	// observes sleeping==true (clearing it in the same critical section),
	// so the send can never block.
	wake chan struct{}
}

// New returns an empty queue.
func New[T any]() *MPSC[T] {
	return &MPSC[T]{wake: make(chan struct{}, 1)}
}

// Push appends v. If the consumer is asleep it is woken exactly once.
func (q *MPSC[T]) Push(v T) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	doWake := q.sleeping
	q.sleeping = false
	q.mu.Unlock()
	if doWake {
		q.wake <- struct{}{}
	}
}

// Drain returns all pending items, or nil if the queue is empty. The
// returned slice is owned by the consumer until its next Drain call (the
// two backing slices are swapped, not copied). Consumer-only.
func (q *MPSC[T]) Drain() []T {
	q.mu.Lock()
	items := q.buf
	q.buf = q.spare[:0]
	q.mu.Unlock()
	if len(items) == 0 {
		q.spare = items
		return nil
	}
	q.spare = items
	return items
}

// Sleep blocks until a producer pushes or stop is closed. It returns true
// if woken by a push (or if items raced in before sleeping), false if stop
// fired. Consumer-only. A spurious true (empty Drain afterwards) is
// possible and harmless.
func (q *MPSC[T]) Sleep(stop <-chan struct{}) bool {
	q.mu.Lock()
	if len(q.buf) > 0 {
		q.mu.Unlock()
		return true
	}
	q.sleeping = true
	q.mu.Unlock()
	select {
	case <-q.wake:
		return true
	case <-stop:
		// A racing producer may have claimed the sleeping flag and sent a
		// wake token; absorb it so a future Sleep doesn't wake spuriously
		// and the producer's send never dangles.
		q.mu.Lock()
		q.sleeping = false
		q.mu.Unlock()
		select {
		case <-q.wake:
		default:
		}
		return false
	}
}

// Len reports the number of pending items (racy, for stats/tests only).
func (q *MPSC[T]) Len() int {
	q.mu.Lock()
	n := len(q.buf)
	q.mu.Unlock()
	return n
}
