package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * time.Second)
	if t1 != Time(3e9) {
		t.Fatalf("Add = %d, want 3e9", t1)
	}
	if d := t1.Sub(t0); d != 3*time.Second {
		t.Fatalf("Sub = %v, want 3s", d)
	}
	if s := t1.Seconds(); s != 3.0 {
		t.Fatalf("Seconds = %v, want 3", s)
	}
}

func TestRealClockMonotone(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("real clock went backwards: %d then %d", a, b)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	if c.Now() != 0 {
		t.Fatal("virtual clock should start at 0")
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d, want 100", c.Now())
	}
	c.Advance(100) // same time is allowed
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Advance did not panic")
		}
	}()
	c.Advance(50)
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(30, func() { fired = append(fired, 3) })
	q.Schedule(10, func() { fired = append(fired, 1) })
	q.Schedule(20, func() { fired = append(fired, 2) })
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", fired)
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(42, func() { fired = append(fired, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("simultaneous events fired out of insertion order: %v", fired)
		}
	}
}

func TestEventCancel(t *testing.T) {
	q := NewEventQueue()
	ran := false
	e := q.Schedule(5, func() { ran = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if q.Len() != 0 {
		t.Fatal("cancelled event still queued")
	}
	if ran {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice, or cancelling nil, is harmless.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelInteriorEvent(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(1, func() { fired = append(fired, 1) })
	e2 := q.Schedule(2, func() { fired = append(fired, 2) })
	q.Schedule(3, func() { fired = append(fired, 3) })
	q.Cancel(e2)
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

func TestPeekTime(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime of empty queue should report !ok")
	}
	q.Schedule(7, func() {})
	q.Schedule(3, func() {})
	if tt, ok := q.PeekTime(); !ok || tt != 3 {
		t.Fatalf("PeekTime = %d,%v, want 3,true", tt, ok)
	}
}

// TestQuickPopsMonotone: for arbitrary schedules, pops are non-decreasing in
// time and FIFO within equal times.
func TestQuickPopsMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewEventQueue()
		type stamp struct {
			at  Time
			seq int
		}
		for i := 0; i < int(n); i++ {
			at := Time(rng.Intn(16)) // dense range forces ties
			i := i
			_ = i
			q.Schedule(at, nil)
		}
		var last Time = -1
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time() < last {
				return false
			}
			last = e.Time()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
