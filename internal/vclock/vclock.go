// Package vclock provides the time substrate for the reproduction: a Clock
// interface with both a real (wall-clock) and a virtual (discrete-event)
// implementation, plus the event heap that drives virtual time.
//
// The paper's evaluation reports wall-clock seconds on 1995 hardware (40 MHz
// SPARC IPX on ATM, 33 MHz ELC on Ethernet). On modern hardware the
// compute/communication ratio those tables hinge on cannot be reproduced in
// wall-clock time, so the benchmark harness runs applications in virtual
// time: computation charges calibrated virtual durations and the network is
// a discrete-event simulation. Real mode exists for examples and functional
// tests.
package vclock

import (
	"container/heap"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start. Using a
// distinct type from time.Duration keeps "points in virtual time" from being
// confused with durations in signatures, while arithmetic stays trivial.
type Time int64

// Duration re-exports time.Duration for call-site clarity.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Clock abstracts "now" so the MTS scheduler and NIC/network models run
// identically under virtual and real time.
type Clock interface {
	Now() Time
}

// RealClock reports wall-clock time relative to its creation.
type RealClock struct {
	start time.Time
}

// NewRealClock returns a RealClock anchored at the current instant.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }

// Event is a scheduled occurrence in virtual time. Fire runs in the
// simulation goroutine with the clock already advanced to the event time.
type Event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among simultaneous events
	index int    // heap index; -1 once popped or cancelled
	fire  func()
}

// Time returns the event's scheduled time.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// EventQueue is a min-heap of events ordered by (time, insertion sequence).
// Deterministic FIFO tie-breaking makes simulation runs bit-reproducible,
// which the scheduler tests rely on.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fire to run at time at. It returns the Event so callers
// can cancel it (e.g. a retransmission timer that the ack beats).
func (q *EventQueue) Schedule(at Time, fire func()) *Event {
	e := &Event{at: at, seq: q.seq, fire: fire}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Cancel removes e from the queue if still pending. It is safe to call on an
// already-fired or already-cancelled event.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -2
}

// PeekTime returns the time of the earliest pending event. ok is false when
// the queue is empty.
func (q *EventQueue) PeekTime() (t Time, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Pop removes and returns the earliest event, or nil if empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	e.index = -1
	return e
}

// Fire invokes the event's function.
func (e *Event) Fire() {
	if e.fire != nil {
		e.fire()
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// VirtualClock is a Clock whose time advances only when the simulation
// engine pops events.
type VirtualClock struct {
	now Time
}

// NewVirtualClock returns a clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now implements Clock.
func (c *VirtualClock) Now() Time { return c.now }

// Advance moves the clock forward to t. It panics if t is in the past:
// virtual time is monotone by construction and a regression means the event
// queue ordering was violated.
func (c *VirtualClock) Advance(t Time) {
	if t < c.now {
		panic("vclock: time moved backwards")
	}
	c.now = t
}
