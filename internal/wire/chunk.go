package wire

import (
	"encoding/binary"
	"errors"
)

// Chunk framing: a marshalled message larger than a carrier's frame payload
// is split into chunks, each prefixed by an 8-byte header — message
// sequence (4), chunk index (2), flags (1: last), reserved (1). This is the
// one chunk-header layout in the tree; the ATM carriers put one chunk per
// AAL5 CPCS-PDU, and the reassembly side rebuilds the message with
// Assembler.

// ChunkHeaderSize is the encoded chunk header length in bytes.
const ChunkHeaderSize = 8

const chunkFlagLast = 1

// ChunkHeader is the decoded per-chunk prefix.
type ChunkHeader struct {
	// Seq is the transport-level sequence of the message this chunk
	// belongs to.
	Seq uint32
	// Index is the chunk's position within the message, starting at 0.
	Index uint16
	// Last marks the final chunk of the message.
	Last bool
}

// Errors returned by chunk parsing and reassembly.
var (
	ErrChunkShort = errors.New("wire: chunk shorter than header")
	ErrChunkStray = errors.New("wire: chunk for a message whose head was lost")
	ErrChunkGap   = errors.New("wire: chunk index discontinuity")
)

// AppendChunkHeader encodes h onto dst.
func AppendChunkHeader(dst []byte, h ChunkHeader) []byte {
	var b [ChunkHeaderSize]byte
	binary.BigEndian.PutUint32(b[0:], h.Seq)
	binary.BigEndian.PutUint16(b[4:], h.Index)
	if h.Last {
		b[6] = chunkFlagLast
	}
	return append(dst, b[:]...)
}

// ParseChunkHeader decodes the prefix of a chunk frame.
func ParseChunkHeader(b []byte) (ChunkHeader, error) {
	if len(b) < ChunkHeaderSize {
		return ChunkHeader{}, ErrChunkShort
	}
	return ChunkHeader{
		Seq:   binary.BigEndian.Uint32(b[0:]),
		Index: binary.BigEndian.Uint16(b[4:]),
		Last:  b[6]&chunkFlagLast != 0,
	}, nil
}

// Fragments returns how many maxPayload-sized fragments an n-byte blob
// needs; an empty blob still takes one (the frame must exist to carry the
// header). Shared by the chunker and the TCP MTU model.
func Fragments(n, maxPayload int) int {
	if n <= 0 {
		return 1
	}
	return (n + maxPayload - 1) / maxPayload
}

// Extent returns the [lo, hi) byte range of fragment i of an n-byte blob
// split at maxPayload.
func Extent(n, maxPayload, i int) (lo, hi int) {
	lo = i * maxPayload
	hi = lo + maxPayload
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Chunker iterates the chunk frames of one marshalled message. It holds no
// buffers of its own: Next appends each frame (header + payload slice) onto
// a caller-provided buffer, so one pooled scratch buffer serves the whole
// message.
type Chunker struct {
	wire       []byte
	seq        uint32
	maxPayload int
	i, n       int
}

// NewChunker returns a chunker over the marshalled message wire, stamping
// every chunk with seq and carrying at most maxPayload message bytes per
// chunk (maxPayload must be > 0).
func NewChunker(wire []byte, seq uint32, maxPayload int) Chunker {
	if maxPayload <= 0 {
		panic("wire: chunk payload must be positive")
	}
	return Chunker{wire: wire, seq: seq, maxPayload: maxPayload, n: Fragments(len(wire), maxPayload)}
}

// NumChunks returns the total number of chunks the message splits into.
func (c *Chunker) NumChunks() int { return c.n }

// Next appends the next chunk frame onto dst (pass scratch[:0] to reuse a
// buffer) and returns the extended slice. ok is false when all chunks have
// been produced.
func (c *Chunker) Next(dst []byte) (chunk []byte, ok bool) {
	if c.i >= c.n {
		return dst, false
	}
	lo, hi := Extent(len(c.wire), c.maxPayload, c.i)
	dst = AppendChunkHeader(dst, ChunkHeader{
		Seq:   c.seq,
		Index: uint16(c.i),
		Last:  c.i == c.n-1,
	})
	dst = append(dst, c.wire[lo:hi]...)
	c.i++
	return dst, true
}

// Assembler rebuilds marshalled messages from a stream of chunk frames.
// One Assembler serves one ordered stream (one VC); its buffer grows once
// and is reused for every subsequent message on the stream.
//
// The assembler is strict: a chunk whose sequence differs from the message
// under assembly abandons that message (counted in Dropped), a chunk index
// discontinuity abandons and returns ErrChunkGap, and a chunk arriving for
// a message whose head was never seen returns ErrChunkStray. This is the
// loss behaviour the paper's error-control tier (go-back-N) recovers from.
type Assembler struct {
	buf     []byte
	seq     uint32
	next    uint16
	active  bool
	dropped int64
}

// Dropped returns how many partially-assembled messages were abandoned.
func (a *Assembler) Dropped() int64 { return a.dropped }

// Reset discards any partial message without counting a drop.
func (a *Assembler) Reset() {
	a.buf = a.buf[:0]
	a.active = false
	a.next = 0
}

func (a *Assembler) abandon() {
	a.dropped++
	a.Reset()
}

// Push adds the next chunk frame. When the chunk completes a message, Push
// returns the marshalled bytes with done=true; the returned slice is valid
// only until the next Push or Reset (decode or copy before continuing —
// Unmarshal copies). A nil error with done=false means the chunk was
// absorbed into a partial message.
func (a *Assembler) Push(chunk []byte) (msg []byte, done bool, err error) {
	h, err := ParseChunkHeader(chunk)
	if err != nil {
		return nil, false, err
	}
	if a.active && h.Seq != a.seq {
		// A frame of the previous message was lost: abandon the partial
		// so the new message assembles cleanly.
		a.abandon()
	}
	if !a.active {
		if h.Index != 0 {
			// Mid-message start: the head chunk was lost; skip the rest.
			return nil, false, ErrChunkStray
		}
		a.active = true
		a.seq = h.Seq
		a.next = 0
		a.buf = a.buf[:0]
	}
	if h.Index != a.next {
		// Interior chunk lost: the message cannot be completed.
		a.abandon()
		return nil, false, ErrChunkGap
	}
	a.next++
	a.buf = append(a.buf, chunk[ChunkHeaderSize:]...)
	if !h.Last {
		return nil, false, nil
	}
	a.active = false
	return a.buf, true, nil
}
