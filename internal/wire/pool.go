package wire

import "sync"

// Buf is a pooled byte buffer. B is the working slice; Append into it and
// write the result back (wb.B = m.MarshalAppend(wb.B)). The wrapper struct
// travels with the bytes through the pool so a steady-state Get/Put cycle
// allocates nothing.
type Buf struct {
	B []byte
}

// Size classes: powers of two from 64 B to 64 KB. Buffers outside the range
// are served by plain allocation and dropped on PutBuf.
const (
	minClassBits = 6
	maxClassBits = 16
	numClasses   = maxClassBits - minClassBits + 1
)

var pools [numClasses]sync.Pool

// classFor returns the pool index whose buffers have capacity >= n, or -1
// if n exceeds the largest class.
func classFor(n int) int {
	for c := 0; c < numClasses; c++ {
		if n <= 1<<(minClassBits+c) {
			return c
		}
	}
	return -1
}

// GetBuf returns a buffer with len(B) == 0 and cap(B) >= capacity, drawn
// from the size-classed pool when possible. Pair with PutBuf at the point
// the bytes are no longer referenced — after the kernel copied a datagram,
// after a frame was decoded, after segmentation copied a chunk into cells.
func GetBuf(capacity int) *Buf {
	c := classFor(capacity)
	if c < 0 {
		return &Buf{B: make([]byte, 0, capacity)}
	}
	if b, ok := pools[c].Get().(*Buf); ok {
		b.B = b.B[:0]
		return b
	}
	return &Buf{B: make([]byte, 0, 1<<(minClassBits+c))}
}

// PutBuf recycles b. The caller must no longer reference b.B (nor slices of
// it): the backing array is handed to the next GetBuf of the same class.
func PutBuf(b *Buf) {
	if b == nil {
		return
	}
	// Oversized buffers (beyond the largest class) are dropped so a rare
	// huge message cannot pin its backing array in the pool forever; a
	// buffer that grew within range is re-classed by its new capacity.
	if cap(b.B) > 1<<maxClassBits {
		return
	}
	for i := numClasses - 1; i >= 0; i-- {
		if cap(b.B) >= 1<<(minClassBits+i) {
			pools[i].Put(b)
			return
		}
	}
}
